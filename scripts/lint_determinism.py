#!/usr/bin/env python3
"""Determinism lint: ban constructs that silently break bit-for-bit pins.

Usage:
    lint_determinism.py [path ...]      (default: src/)
    lint_determinism.py --list-rules

The repo's headline guarantees — multi-session service runs identical
to solo runs, wire-driven trajectories identical to in-process runs,
SIGKILL recovery identical to uninterrupted runs — are bit-for-bit
comparisons of serialized trajectories. A single unseeded RNG, a
wall-clock read that leaks into committed state, or an
iteration-order-dependent container in a serialization path breaks
them *silently*: tests keep passing until the schedule, the hash seed,
or the clock changes. This lint makes those constructs compile-time
(well, CI-time) errors instead of latent bugs.

Rules (see docs/static-analysis.md for the rationale table):

  raw-rng         std::random_device / rand() / srand() / unseeded
                  engines outside src/common/rng — all randomness must
                  flow from an explicitly seeded Rng.
  wall-clock      chrono clock reads and time() outside the allowlist
                  (logging, service/server timers, the one
                  optimizer-seconds token normalized out of
                  checkpoints) — time must never feed trajectories.
  unordered-container
                  std::unordered_{map,set,...} in serialization /
                  checkpoint / wire paths — iteration order is
                  hash-seed- and libc++-dependent, so any byte it
                  touches is unstable.
  lossy-float-format
                  %f/%e/%g formatting or setprecision in serde-adjacent
                  code — doubles cross serialization boundaries as
                  bit-exact hex (serde::EncodeDoubleBits), never as
                  rounded decimal.
  raw-mutex       std::mutex / lock_guard / unique_lock /
                  condition_variable outside src/common/sync.h — all
                  locking goes through the clang-thread-safety-
                  annotated wrappers so -Wthread-safety sees it.
  raw-thread      std::thread outside src/common/sync.h and the
                  ThreadPool — ad-hoc threads dodge the pool's
                  determinism contract (one index, one executor).

Escape hatch: a finding is suppressed when the offending line, or the
line directly above it, carries `lint:allow(<rule>)` in a comment.
Suppressions are expected to justify themselves in the surrounding
comment (reviewed like any other code), e.g.:

    // lint:allow(raw-thread) — dedicated poll-loop thread (see header)
    loop_ = std::thread(&TuningServer::EventLoop, this);

Exit status: 0 clean, 1 findings, 2 usage error.
"""

import os
import re
import sys

# ---------------------------------------------------------------------------
# Rule table. `pattern` is matched per line after comment stripping
# (string literals are preserved — lossy-float-format needs them).
# `allow` prefixes are repo-relative POSIX paths; a file whose path
# starts with one of them is exempt from that rule.
# ---------------------------------------------------------------------------

# Paths whose bytes end up inside checkpoints, WAL records, or wire
# frames; iteration order and float rounding there ARE the protocol.
SERDE_PATHS = (
    "src/common/serde.",
    "src/core/session_log.",
    "src/core/tuning_session.",
    "src/optimizer/history_io.",
    "src/net/",
    "src/service/",
)

RULES = [
    {
        "name": "raw-rng",
        "pattern": re.compile(
            r"std::random_device"
            r"|(?<![\w:])s?rand\s*\("
            r"|std::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine"
            r"|ranlux\w+|knuth_b)\s+\w+\s*;"
        ),
        "allow": ("src/common/rng.",),
        "why": "all randomness must flow from an explicitly seeded Rng",
    },
    {
        "name": "wall-clock",
        "pattern": re.compile(
            r"(?:system_clock|steady_clock|high_resolution_clock)::now"
            r"|(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
        ),
        "allow": (
            "src/common/logging.",
            # The optimizer-seconds token, normalized out of checkpoints
            # before comparison (see docs/checkpoint-format.md).
            "src/core/tuning_session.cc",
            # Session activity timestamps and server/client timers:
            # operational metadata, never part of a trajectory.
            "src/service/tuning_service.cc",
            "src/net/",
        ),
        "why": "wall-clock reads must never feed committed trajectories",
    },
    {
        "name": "unordered-container",
        "pattern": re.compile(r"std::unordered_(?:multi)?(?:map|set)"),
        "only": SERDE_PATHS,
        "allow": (),
        "why": "hash iteration order is unstable across runs/platforms",
    },
    {
        "name": "lossy-float-format",
        "pattern": re.compile(
            r"%[-+ #0-9.*]*[fFeEgG][\"']"  # %f at end of a literal
            r"|%[-+ #0-9.*]*[fFeEgG]\s"    # or followed by whitespace
            r"|std::setprecision\s*\("
        ),
        "only": SERDE_PATHS,
        "allow": (),
        "why": "serialized doubles must be bit-exact (EncodeDoubleBits)",
    },
    {
        "name": "raw-mutex",
        "pattern": re.compile(
            r"std::(?:mutex|recursive_mutex|shared_mutex|timed_mutex"
            r"|lock_guard|unique_lock|scoped_lock|shared_lock"
            r"|condition_variable(?:_any)?)\b"
        ),
        "allow": ("src/common/sync.h",),
        "why": "locking must use the annotated wrappers in common/sync.h",
    },
    {
        "name": "raw-thread",
        "pattern": re.compile(r"std::thread\b(?!::hardware_concurrency)"),
        "allow": ("src/common/sync.h", "src/common/thread_pool."),
        "why": "ad-hoc threads bypass the ThreadPool determinism contract",
    },
]

ALLOW_RE = re.compile(r"lint:allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")
SOURCE_EXTENSIONS = (".cc", ".h", ".cpp", ".hpp", ".cxx")


def allowed_rules(line):
    """Rule names suppressed by a lint:allow(...) marker on this line."""
    match = ALLOW_RE.search(line)
    if not match:
        return frozenset()
    return frozenset(part.strip() for part in match.group(1).split(","))


def strip_comments(line, in_block_comment):
    """Removes // and /* */ comment text (string literals survive).

    Returns (code_text, still_in_block_comment). Comment markers inside
    string literals are honored as string content, not comments.
    """
    out = []
    i = 0
    in_string = None  # the quote char when inside a literal
    while i < len(line):
        ch = line[i]
        nxt = line[i + 1] if i + 1 < len(line) else ""
        if in_block_comment:
            if ch == "*" and nxt == "/":
                in_block_comment = False
                i += 2
                continue
            i += 1
            continue
        if in_string:
            out.append(ch)
            if ch == "\\":
                if nxt:
                    out.append(nxt)
                    i += 2
                    continue
            elif ch == in_string:
                in_string = None
            i += 1
            continue
        if ch in "\"'":
            in_string = ch
            out.append(ch)
            i += 1
            continue
        if ch == "/" and nxt == "/":
            break  # rest of line is a comment
        if ch == "/" and nxt == "*":
            in_block_comment = True
            i += 2
            continue
        out.append(ch)
        i += 1
    return "".join(out), in_block_comment


def applicable_rules(rel_path):
    rules = []
    for rule in RULES:
        only = rule.get("only")
        if only and not rel_path.startswith(only):
            continue
        if rel_path.startswith(rule["allow"]):
            continue
        rules.append(rule)
    return rules


def lint_file(path, rel_path):
    """Returns a list of (rel_path, line_number, rule, line) findings."""
    rules = applicable_rules(rel_path)
    if not rules:
        return []
    try:
        with open(path, encoding="utf-8", errors="replace") as handle:
            lines = handle.read().splitlines()
    except OSError as error:
        print(f"lint_determinism: cannot read {path}: {error}",
              file=sys.stderr)
        return []

    findings = []
    in_block = False
    previous_allows = frozenset()
    for number, raw in enumerate(lines, start=1):
        # The allow marker lives in comment text, so scan the raw line
        # (this line's marker or the previous line's both apply).
        line_allows = allowed_rules(raw) | previous_allows
        previous_allows = allowed_rules(raw)
        code, in_block = strip_comments(raw, in_block)
        if not code.strip():
            continue
        for rule in rules:
            if not rule["pattern"].search(code):
                continue
            if rule["name"] in line_allows:
                continue
            findings.append((rel_path, number, rule, raw.strip()))
    return findings


def iter_source_files(roots):
    for root in roots:
        if os.path.isfile(root):
            yield root
            continue
        for dirpath, _, filenames in os.walk(root):
            for filename in sorted(filenames):
                if filename.endswith(SOURCE_EXTENSIONS):
                    yield os.path.join(dirpath, filename)


def main(argv):
    args = argv[1:]
    if "--list-rules" in args:
        for rule in RULES:
            print(f"{rule['name']}: {rule['why']}")
        return 0
    if any(arg.startswith("-") for arg in args):
        print(__doc__, file=sys.stderr)
        return 2
    roots = args or ["src"]
    for root in roots:
        if not os.path.exists(root):
            print(f"lint_determinism: no such path: {root}", file=sys.stderr)
            return 2

    findings = []
    for path in iter_source_files(roots):
        rel_path = os.path.relpath(path).replace(os.sep, "/")
        findings.extend(lint_file(path, rel_path))

    for rel_path, number, rule, line in findings:
        print(f"{rel_path}:{number}: [{rule['name']}] {line}")
        print(f"    rule: {rule['why']}; suppress with "
              f"`// lint:allow({rule['name']})` + a justifying comment")
    if findings:
        print(f"\nlint_determinism: {len(findings)} finding(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
