// Fixture: src/common/rng is THE allowlisted home for raw randomness —
// none of these may be reported.
#include <random>

unsigned SeedFromEntropy() {
  std::random_device device;
  return device();
}

double Draw() {
  std::mt19937 engine;  // wrapped and re-seeded by the real Rng class
  return static_cast<double>(engine());
}
