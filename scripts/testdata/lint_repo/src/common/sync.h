// Fixture: src/common/sync.h is the one allowed home for std::mutex
// and std::condition_variable — must lint clean.
#pragma once
#include <condition_variable>
#include <mutex>

struct FixtureMutex {
  std::mutex mu;
  std::condition_variable cv;
  std::lock_guard<std::mutex> Hold() = delete;
};
