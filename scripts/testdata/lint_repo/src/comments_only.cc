// Fixture: banned constructs that appear only inside comments must
// not be reported — e.g. std::mutex, rand(), std::thread here.
/* Block comments too:
   std::random_device device;
   std::chrono::system_clock::now();
*/
int Answer() {
  int value = 42;  // was once: value = rand() % 100 (std::mutex held)
  return value;
}
