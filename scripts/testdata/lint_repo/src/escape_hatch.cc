// Fixture: lint:allow suppressions — every construct here is banned
// but carries a justified escape hatch, so the file must lint clean.
#include <chrono>
#include <thread>

void DedicatedWatchdog() {
  // This thread must outlive the pool during shutdown.
  // lint:allow(raw-thread)
  std::thread watchdog([] {});
  watchdog.join();
}

long OperationalTimestamp() {
  // Operational log timestamp, never serialized.
  return std::chrono::system_clock::now()  // lint:allow(wall-clock)
      .time_since_epoch()
      .count();
}
