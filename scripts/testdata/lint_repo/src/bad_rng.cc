// Fixture: every line here must trip raw-rng.
#include <random>

int EntropyFromDevice() {
  std::random_device device;  // nondeterministic seed source
  return static_cast<int>(device());
}

int LibcRand() { return rand() % 7; }

void SeedLibc() { srand(42); }

double UnseededEngine() {
  std::mt19937 engine;  // default-seeded: mt19937::default_seed
  return static_cast<double>(engine());
}
