// Fixture: lossy double formatting in a serde-adjacent path.
#include <cstdio>
#include <iomanip>
#include <sstream>
#include <string>

std::string FormatPerformance(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6f", value);
  return buffer;
}

std::string StreamPerformance(double value) {
  std::ostringstream out;
  out << std::setprecision(6) << value;
  return out.str();
}
