// Fixture: unordered containers in a wire path (src/net/) — the
// serialized byte order would depend on the hash seed.
#include <string>
#include <unordered_map>
#include <unordered_set>

std::string SerializeCounts(
    const std::unordered_map<std::string, int>& counts) {
  std::string out;
  for (const auto& [key, value] : counts) {
    out += key + "=" + std::to_string(value) + ";";
  }
  return out;
}

int CountDistinct(const std::unordered_set<std::string>& seen) {
  return static_cast<int>(seen.size());
}
