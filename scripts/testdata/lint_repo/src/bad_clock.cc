// Fixture: wall-clock reads outside the allowlist.
#include <chrono>
#include <ctime>

long NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

long SteadyTick() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

long UnixSeconds() { return time(nullptr); }
