// Fixture: raw standard-library locking outside src/common/sync.h.
#include <condition_variable>
#include <mutex>

std::mutex g_mu;
std::condition_variable g_cv;

void Locked() {
  std::lock_guard<std::mutex> lock(g_mu);
}

void Waiting() {
  std::unique_lock<std::mutex> lock(g_mu);
  g_cv.wait(lock);
}
