// Fixture: an ad-hoc thread outside the ThreadPool.
#include <thread>

void FireAndForget() {
  std::thread worker([] {});
  worker.detach();
}
