#!/usr/bin/env python3
"""Self-test for lint_determinism.py (run in CI next to the lint).

Usage:
    python3 scripts/lint_determinism_test.py      # unittest runner
    pytest scripts/lint_determinism_test.py      # also works

End-to-end cases run the linter as a subprocess over the fixture tree
in scripts/testdata/lint_repo (a miniature fake repo, so the
path-scoped rules — serde-only, rng-allowlist — resolve exactly as
they do against the real src/). Unit cases import the module and
exercise the comment stripper and the escape-hatch parser directly.
"""

import os
import re
import subprocess
import sys
import unittest

SCRIPTS_DIR = os.path.dirname(os.path.abspath(__file__))
LINTER = os.path.join(SCRIPTS_DIR, "lint_determinism.py")
FIXTURE_REPO = os.path.join(SCRIPTS_DIR, "testdata", "lint_repo")

sys.path.insert(0, SCRIPTS_DIR)
import lint_determinism  # noqa: E402  (path set up just above)

FINDING_RE = re.compile(r"^(?P<path>[^:\s]+):(?P<line>\d+): \[(?P<rule>[a-z-]+)\]")


def run_linter(args, cwd):
    proc = subprocess.run(
        [sys.executable, LINTER, *args],
        cwd=cwd, capture_output=True, text=True, check=False)
    findings = set()
    for line in proc.stdout.splitlines():
        match = FINDING_RE.match(line)
        if match:
            findings.add((match.group("path"), match.group("rule")))
    return proc.returncode, findings, proc


class EndToEndTest(unittest.TestCase):
    """The linter over the fixture repo: every rule trips exactly where
    intended, allowlisted files pass, suppressions hold, exit codes."""

    @classmethod
    def setUpClass(cls):
        cls.returncode, cls.findings, cls.proc = run_linter(
            ["src"], cwd=FIXTURE_REPO)

    def test_findings_exit_nonzero(self):
        self.assertEqual(self.returncode, 1, self.proc.stdout)

    def test_each_rule_trips_its_fixture(self):
        expected = {
            ("src/bad_rng.cc", "raw-rng"),
            ("src/bad_clock.cc", "wall-clock"),
            ("src/net/bad_unordered.cc", "unordered-container"),
            ("src/net/bad_format.cc", "lossy-float-format"),
            ("src/bad_mutex.cc", "raw-mutex"),
            ("src/bad_thread.cc", "raw-thread"),
        }
        self.assertEqual(expected, self.findings, self.proc.stdout)

    def test_every_rule_has_a_fixture(self):
        tripped = {rule for _, rule in self.findings}
        all_rules = {rule["name"] for rule in lint_determinism.RULES}
        self.assertEqual(all_rules, tripped,
                         "a rule has no fixture proving it fires")

    def test_allowlisted_rng_home_passes(self):
        files = {path for path, _ in self.findings}
        self.assertNotIn("src/common/rng.cc", files)
        self.assertNotIn("src/common/sync.h", files)

    def test_escape_hatch_suppresses(self):
        files = {path for path, _ in self.findings}
        self.assertNotIn("src/escape_hatch.cc", files)

    def test_comments_do_not_trip(self):
        files = {path for path, _ in self.findings}
        self.assertNotIn("src/comments_only.cc", files)

    def test_clean_subset_exits_zero(self):
        returncode, findings, proc = run_linter(
            ["src/common", "src/escape_hatch.cc", "src/comments_only.cc"],
            cwd=FIXTURE_REPO)
        self.assertEqual(returncode, 0, proc.stdout)
        self.assertEqual(findings, set())

    def test_missing_path_is_usage_error(self):
        returncode, _, _ = run_linter(["no/such/dir"], cwd=FIXTURE_REPO)
        self.assertEqual(returncode, 2)

    def test_list_rules(self):
        proc = subprocess.run(
            [sys.executable, LINTER, "--list-rules"],
            capture_output=True, text=True, check=False)
        self.assertEqual(proc.returncode, 0)
        for rule in lint_determinism.RULES:
            self.assertIn(rule["name"], proc.stdout)


class RealTreeTest(unittest.TestCase):
    """The real src/ must stay clean — the same invariant CI enforces."""

    def test_repo_src_is_clean(self):
        repo_root = os.path.dirname(SCRIPTS_DIR)
        returncode, findings, proc = run_linter(["src"], cwd=repo_root)
        self.assertEqual(returncode, 0,
                         f"determinism lint regressions:\n{proc.stdout}")
        self.assertEqual(findings, set())


class StripCommentsTest(unittest.TestCase):
    def strip(self, line, in_block=False):
        return lint_determinism.strip_comments(line, in_block)

    def test_line_comment_removed(self):
        code, in_block = self.strip("int x;  // std::mutex here")
        self.assertEqual(code, "int x;  ")
        self.assertFalse(in_block)

    def test_block_comment_spans_lines(self):
        code, in_block = self.strip("start /* std::thread t;")
        self.assertEqual(code, "start ")
        self.assertTrue(in_block)
        code, in_block = self.strip("still comment */ int y;", in_block)
        self.assertEqual(code, " int y;")
        self.assertFalse(in_block)

    def test_string_literals_survive(self):
        code, _ = self.strip('Log("deadline %f reached");')
        self.assertIn("%f", code)

    def test_comment_markers_inside_strings_are_content(self):
        code, in_block = self.strip('std::string url = "http://x"; int z;')
        self.assertIn("http://x", code)
        self.assertIn("int z;", code)
        self.assertFalse(in_block)

    def test_escaped_quote_does_not_end_string(self):
        code, _ = self.strip(r'const char* s = "say \" // not comment";')
        self.assertIn("not comment", code)


class AllowMarkerTest(unittest.TestCase):
    def test_single_rule(self):
        self.assertEqual(
            lint_determinism.allowed_rules("x; // lint:allow(raw-thread)"),
            frozenset({"raw-thread"}))

    def test_multiple_rules(self):
        self.assertEqual(
            lint_determinism.allowed_rules(
                "// lint:allow(raw-mutex, wall-clock)"),
            frozenset({"raw-mutex", "wall-clock"}))

    def test_no_marker(self):
        self.assertEqual(lint_determinism.allowed_rules("int x;"),
                         frozenset())


class RulePatternTest(unittest.TestCase):
    """Spot-check regex edges that the fixture files can't isolate."""

    def pattern(self, name):
        for rule in lint_determinism.RULES:
            if rule["name"] == name:
                return rule["pattern"]
        raise KeyError(name)

    def test_time_since_epoch_is_not_wall_clock(self):
        self.assertIsNone(
            self.pattern("wall-clock").search("x.time_since_epoch()"))

    def test_member_named_time_is_not_wall_clock(self):
        self.assertIsNone(
            self.pattern("wall-clock").search("status.time(now)"))

    def test_grand_is_not_rand(self):
        self.assertIsNone(self.pattern("raw-rng").search("grand(1)"))

    def test_seeded_engine_is_allowed(self):
        self.assertIsNone(
            self.pattern("raw-rng").search("std::mt19937 engine(seed);"))

    def test_hardware_concurrency_is_not_raw_thread(self):
        self.assertIsNone(
            self.pattern("raw-thread").search(
                "unsigned hc = std::thread::hardware_concurrency();"))

    def test_thread_member_is_raw_thread(self):
        self.assertIsNotNone(
            self.pattern("raw-thread").search("std::thread loop_;"))


if __name__ == "__main__":
    unittest.main(verbosity=2)
