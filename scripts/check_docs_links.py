#!/usr/bin/env python3
"""Fail on dead relative links in the repo's markdown docs.

Usage:
    check_docs_links.py [file-or-dir ...]   (default: README.md docs/)

Scans markdown files for inline links/images `[text](target)` and
reference definitions `[label]: target`, and verifies that every
relative target resolves to an existing file or directory (anchors and
query strings are stripped; absolute URLs, mailto:, and pure-anchor
links are skipped). Exits 1 listing every dead link — this is the CI
gate that keeps README/docs cross-references from rotting as files
move.
"""

import os
import re
import sys

# Inline [text](target) / ![alt](target); stops at the first ')' or
# whitespace (titles like [x](y "t") keep only y).
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)\s>]+)>?[^)]*\)")
# Reference definitions: [label]: target
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+<?(\S+?)>?\s*$", re.MULTILINE)
SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://", "#")


def iter_markdown_files(roots):
    for root in roots:
        if os.path.isfile(root):
            yield root
        elif os.path.isdir(root):
            for dirpath, _dirnames, filenames in os.walk(root):
                for name in sorted(filenames):
                    if name.endswith(".md"):
                        yield os.path.join(dirpath, name)


def blank_code_spans(text):
    """Replaces fenced code blocks and inline code spans with
    whitespace (newlines preserved, so line numbers stay stable):
    C++ lambdas like `[](const T&)` would otherwise parse as links."""
    out = []
    in_fence = False
    for line in text.split("\n"):
        stripped = line.lstrip()
        if stripped.startswith("```") or stripped.startswith("~~~"):
            in_fence = not in_fence
            out.append("")
            continue
        if in_fence:
            out.append("")
        else:
            out.append(re.sub(r"`[^`]*`", lambda m: " " * len(m.group(0)),
                              line))
    return "\n".join(out)


def check_file(path):
    """Returns [(line_number, target)] for every dead relative link."""
    with open(path, encoding="utf-8") as f:
        text = blank_code_spans(f.read())
    dead = []
    targets = []
    for match in INLINE_LINK.finditer(text):
        targets.append((match.start(), match.group(1)))
    for match in REF_DEF.finditer(text):
        targets.append((match.start(), match.group(1)))
    base = os.path.dirname(path)
    for offset, target in targets:
        if target.startswith(SKIP_PREFIXES):
            continue
        resolved = target.split("#", 1)[0].split("?", 1)[0]
        if not resolved:
            continue
        if not os.path.exists(os.path.join(base, resolved)):
            line = text.count("\n", 0, offset) + 1
            dead.append((line, target))
    return dead


def main():
    roots = sys.argv[1:] or ["README.md", "docs"]
    dead_total = 0
    files_checked = 0
    for path in iter_markdown_files(roots):
        files_checked += 1
        for line, target in check_file(path):
            print(f"{path}:{line}: dead relative link: {target}")
            dead_total += 1
    if dead_total:
        print(f"\n{dead_total} dead link(s) across {files_checked} "
              "markdown file(s)")
        return 1
    print(f"OK: no dead relative links in {files_checked} markdown file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
