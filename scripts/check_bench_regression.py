#!/usr/bin/env python3
"""Compare a fresh bench JSON against the committed baseline.

Usage:
    check_bench_regression.py <current.json> <baseline.json> [--threshold 0.20]

Handles the three bench formats, keyed by their "bench" field:

* ``hotpath`` (BENCH_hotpath.json) — wall-clock metrics only.
* ``batch`` (BENCH_batch.json) — per-(optimizer, batch size) series:
  sample-efficiency metrics (``mean_evals_to_fallback_best``, lower is
  better — deterministic for fixed seeds, so any drift is a real
  behavior change) and optimizer wall-clock (noisy). Metric names embed
  the run configuration, so a baseline generated with different
  iterations/seeds simply fails to intersect instead of comparing
  incomparable numbers.
* ``largen`` (BENCH_largen.json) — per-n exact/sparse suggest-loop
  wall-clock (noisy) plus the deterministic sparse-quality metric
  ``sparse_evals_to_98pct`` (evals for the sparse arm's mean curve to
  reach 98% of the exact arm's final best on the fixed-seed grid;
  names embed the grid configuration like ``batch``). A baseline from
  a full run (n up to 2000) still intersects a smoke run capped at a
  smaller --max-n: missing n entries are skipped, not flagged.
* ``service`` (BENCH_service.json) — wire front-end load driver:
  per-session lifecycle wall-clock and ask round-trip latency over
  real sockets. All compared metrics are lower-is-better seconds
  (noisy); the headline ``sessions_per_sec`` is higher-is-better and
  deliberately not compared. Metric names embed the run configuration
  so mismatched settings fail to intersect instead of comparing
  incomparable numbers.

Surfaces regressions beyond the threshold in the GitHub Actions job
summary ($GITHUB_STEP_SUMMARY) and as ::warning:: annotations. Always
exits 0: CI runners have noisy wall clocks, so the check reports trends
rather than gating merges — a sustained >20% regression across commits
is the signal to investigate.
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def collect_hotpath_metrics(doc):
    """Flattens the wall-clock fields of BENCH_hotpath.json into
    {metric_name: seconds}."""
    metrics = {}
    for entry in doc.get("fit_predict", []):
        n = entry.get("n")
        for field in ("fast_per_iter_seconds", "fast_pooled_per_iter_seconds"):
            if field in entry:
                metrics[f"{field}[n={n}]"] = entry[field]
    scaling = doc.get("update_scaling", {})
    for field in ("incremental_update_seconds_lo",
                  "incremental_update_seconds_hi"):
        if field in scaling:
            metrics[f"update_scaling.{field}"] = scaling[field]
    batch = doc.get("batch", {})
    for field in ("batch1_seconds", "batch8_seconds"):
        if field in batch:
            metrics[f"batch.{field}"] = batch[field]
    return metrics


# Threshold applied to metrics that are deterministic for fixed seeds
# (evals-to-target): any drift beyond float formatting is a real
# behavior change, not clock noise, so it is flagged immediately
# instead of hiding under the wall-clock threshold.
DETERMINISTIC_THRESHOLD = 0.001


def collect_batch_metrics(doc):
    """Flattens BENCH_batch.json series into
    {metric_name: (value, deterministic)}.

    All collected metrics are lower-is-better, matching the shared
    ratio check: evals-to-target counts evaluations (deterministic for
    fixed seeds), *_seconds counts wall-clock (noisy)."""
    config = doc.get("config", {})
    suffix = (f"iters={config.get('iterations')},"
              f"seeds={config.get('seeds')}")
    metrics = {}
    for entry in doc.get("series", []):
        key = (f"{entry.get('optimizer')},q={entry.get('batch_size')},"
               f"{suffix}")
        if "mean_evals_to_fallback_best" in entry:
            metrics[f"mean_evals_to_fallback_best[{key}]"] = (
                entry["mean_evals_to_fallback_best"], True)
        if "mean_optimizer_seconds" in entry:
            metrics[f"mean_optimizer_seconds[{key}]"] = (
                entry["mean_optimizer_seconds"], False)
    return metrics


def collect_largen_metrics(doc):
    """Flattens BENCH_largen.json into {metric_name: (value,
    deterministic)}.

    Per-n suggest-loop seconds are wall-clock (noisy); the sparse
    quality metric (evals for the sparse arm to reach 98% of the exact
    arm's best on the fixed-seed grid) is deterministic. All collected
    metrics are lower-is-better."""
    config = doc.get("config", {})
    metrics = {}
    for entry in doc.get("scaling", []):
        n = entry.get("n")
        for field in ("exact_per_iter_seconds", "sparse_per_iter_seconds"):
            if field in entry:
                metrics[f"{field}[n={n}]"] = (entry[field], False)
    quality = doc.get("quality", {})
    if "sparse_evals_to_98pct" in quality:
        key = (f"iters={config.get('grid_iterations')},"
               f"seeds={config.get('grid_seeds')}")
        metrics[f"sparse_evals_to_98pct[{key}]"] = (
            quality["sparse_evals_to_98pct"], True)
    return metrics


def collect_service_metrics(doc):
    """Flattens BENCH_service.json into {metric_name: (value,
    deterministic)}.

    All collected metrics are lower-is-better wall-clock seconds
    (noisy). ``sessions_per_sec`` is higher-is-better, so it is
    reported in the JSON for humans but never compared here."""
    config = doc.get("config", {})
    key = (f"sessions={config.get('sessions')},"
           f"iters={config.get('iterations')},"
           f"clients={config.get('clients')}")
    metrics = {}
    if "per_session_seconds" in doc:
        metrics[f"per_session_seconds[{key}]"] = (
            doc["per_session_seconds"], False)
    ask = doc.get("ask_seconds", {})
    for field in ("p50", "p99"):
        if field in ask:
            metrics[f"ask_seconds.{field}[{key}]"] = (ask[field], False)
    # Overload phase: admitted-ask latency under 4x saturation plus its
    # ratio to the unloaded p99 — the load-shedding contract ("admitted
    # work stays fast because the queue is bounded"). The shed/hint
    # counters stay human-only: their magnitude tracks scheduling luck,
    # not a lower-is-better cost.
    overload = doc.get("overload", {})
    ov_key = f"{key},ov_clients={overload.get('clients')}"
    admitted = overload.get("admitted_ask_seconds", {})
    for field in ("p50", "p99"):
        if field in admitted:
            metrics[f"overload.admitted_ask_seconds.{field}[{ov_key}]"] = (
                admitted[field], False)
    if "admitted_p99_over_unloaded_p99" in overload:
        metrics[f"overload.admitted_p99_over_unloaded_p99[{ov_key}]"] = (
            overload["admitted_p99_over_unloaded_p99"], False)
    return metrics


def collect_racing_metrics(doc):
    """Flattens BENCH_racing.json into {metric_name: (value,
    deterministic)}.

    Both summary metrics are lower-is-better ratios and bit-for-bit
    deterministic for fixed seeds (the DES grid is seeded), so any
    drift is a real behavior change in the racing stage. Metric names
    embed the run configuration so mismatched settings fail to
    intersect instead of comparing incomparable numbers."""
    config = doc.get("config", {})
    key = (f"seeds={config.get('seeds')},fixed={config.get('fixed_iters')},"
           f"races={config.get('races')},cohort={config.get('cohort')},"
           f"rungs={config.get('rungs')},minfid={config.get('min_fidelity')}")
    metrics = {}
    summary = doc.get("summary", {})
    for field in ("work_ratio", "fixed_over_racing_best"):
        if field in summary:
            metrics[f"{field}[{key}]"] = (summary[field], True)
    return metrics


def collect_metrics(doc):
    """Returns {metric_name: (value, deterministic)}."""
    if doc.get("bench") == "batch":
        return collect_batch_metrics(doc)
    if doc.get("bench") == "racing":
        return collect_racing_metrics(doc)
    if doc.get("bench") == "largen":
        return collect_largen_metrics(doc)
    if doc.get("bench") == "service":
        return collect_service_metrics(doc)
    return {name: (value, False)
            for name, value in collect_hotpath_metrics(doc).items()}


def main():
    parser = argparse.ArgumentParser(
        description="Compare a bench JSON against the committed baseline "
                    "and surface regressions.")
    parser.add_argument("current", help="freshly generated bench JSON")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="relative regression threshold (default 0.20)")
    args = parser.parse_args()
    threshold = args.threshold

    current_doc = load(args.current)
    baseline_doc = load(args.baseline)
    bench = current_doc.get("bench", "hotpath")
    if baseline_doc.get("bench", "hotpath") != bench:
        print(f"::warning title=bench mismatch::current is '{bench}', "
              f"baseline is '{baseline_doc.get('bench')}' — nothing compared")
        return 0

    current = collect_metrics(current_doc)
    baseline = collect_metrics(baseline_doc)

    rows = []
    regressions = []
    for name, (base_value, deterministic) in sorted(baseline.items()):
        cur_entry = current.get(name)
        if cur_entry is None or base_value <= 0:
            continue
        cur_value = cur_entry[0]
        ratio = cur_value / base_value
        # Deterministic metrics tolerate only float-formatting jitter;
        # wall-clock metrics use the (noisy-CI) threshold.
        limit = DETERMINISTIC_THRESHOLD if deterministic else threshold
        flag = ""
        if ratio > 1.0 + limit:
            flag = "REGRESSION (deterministic)" if deterministic \
                else "REGRESSION"
            regressions.append((name, base_value, cur_value, ratio))
        elif ratio < 1.0 - limit:
            flag = "improved"
        rows.append((name, base_value, cur_value, ratio, flag))

    lines = []
    lines.append(f"## bm_{bench} vs committed baseline")
    lines.append("")
    if not rows:
        lines.append("No comparable metrics found (baseline generated with "
                     "different settings?).")
    elif regressions:
        lines.append(
            f"**{len(regressions)} metric(s) regressed more than "
            f"{threshold:.0%}** (wall-clock metrics are noisy on CI; "
            "evals-to-target metrics are deterministic — treat any drift "
            "there as a real behavior change):")
    else:
        lines.append(
            f"No metric regressed more than {threshold:.0%} "
            "against the committed baseline.")
    lines.append("")
    lines.append("| metric | baseline | current | ratio | |")
    lines.append("|---|---|---|---|---|")
    for name, base_value, cur_value, ratio, flag in rows:
        lines.append(f"| `{name}` | {base_value:.3e} | {cur_value:.3e} "
                     f"| {ratio:.2f}x | {flag} |")
    summary = "\n".join(lines) + "\n"

    print(summary)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as f:
            f.write(summary)
    for name, base_value, cur_value, ratio in regressions:
        print(f"::warning title=bm_{bench} regression::{name} "
              f"{base_value:.3e} -> {cur_value:.3e} ({ratio:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
