#!/usr/bin/env python3
"""Compare a fresh BENCH_hotpath.json against the committed baseline.

Usage:
    check_bench_regression.py <current.json> <baseline.json> [--threshold 0.20]

Surfaces wall-clock regressions beyond the threshold in the GitHub
Actions job summary ($GITHUB_STEP_SUMMARY) and as ::warning::
annotations. Always exits 0: CI runners have noisy wall clocks, so the
check reports trends rather than gating merges — a sustained >20%
regression across commits is the signal to investigate.
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def collect_metrics(doc):
    """Flattens the wall-clock fields of BENCH_hotpath.json into
    {metric_name: seconds}."""
    metrics = {}
    for entry in doc.get("fit_predict", []):
        n = entry.get("n")
        for field in ("fast_per_iter_seconds", "fast_pooled_per_iter_seconds"):
            if field in entry:
                metrics[f"{field}[n={n}]"] = entry[field]
    scaling = doc.get("update_scaling", {})
    for field in ("incremental_update_seconds_lo",
                  "incremental_update_seconds_hi"):
        if field in scaling:
            metrics[f"update_scaling.{field}"] = scaling[field]
    batch = doc.get("batch", {})
    for field in ("batch1_seconds", "batch8_seconds"):
        if field in batch:
            metrics[f"batch.{field}"] = batch[field]
    return metrics


def main():
    parser = argparse.ArgumentParser(
        description="Compare BENCH_hotpath.json against the committed "
                    "baseline and surface wall-clock regressions.")
    parser.add_argument("current", help="freshly generated BENCH_hotpath.json")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="relative regression threshold (default 0.20)")
    args = parser.parse_args()
    threshold = args.threshold

    current = collect_metrics(load(args.current))
    baseline = collect_metrics(load(args.baseline))

    rows = []
    regressions = []
    for name, base_value in sorted(baseline.items()):
        cur_value = current.get(name)
        if cur_value is None or base_value <= 0:
            continue
        ratio = cur_value / base_value
        flag = ""
        if ratio > 1.0 + threshold:
            flag = "REGRESSION"
            regressions.append((name, base_value, cur_value, ratio))
        elif ratio < 1.0 - threshold:
            flag = "improved"
        rows.append((name, base_value, cur_value, ratio, flag))

    lines = []
    lines.append("## bm_hotpath vs committed baseline")
    lines.append("")
    if regressions:
        lines.append(
            f"**{len(regressions)} metric(s) regressed more than "
            f"{threshold:.0%} wall-clock** (noisy CI clocks — treat "
            "sustained regressions across commits as the signal):")
    else:
        lines.append(
            f"No wall-clock metric regressed more than {threshold:.0%} "
            "against the committed baseline.")
    lines.append("")
    lines.append("| metric | baseline (s) | current (s) | ratio | |")
    lines.append("|---|---|---|---|---|")
    for name, base_value, cur_value, ratio, flag in rows:
        lines.append(f"| `{name}` | {base_value:.3e} | {cur_value:.3e} "
                     f"| {ratio:.2f}x | {flag} |")
    summary = "\n".join(lines) + "\n"

    print(summary)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as f:
            f.write(summary)
    for name, base_value, cur_value, ratio in regressions:
        print(f"::warning title=bm_hotpath regression::{name} "
              f"{base_value:.3e}s -> {cur_value:.3e}s ({ratio:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
