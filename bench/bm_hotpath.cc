// Math-core hot path benchmark (the first entry in the perf
// trajectory): measures the incremental-GP + flat-matrix + thread-pool
// rewrite against a faithful replica of the pre-PR path, and the
// batch-evaluation speedup over a clonable objective.
//
// Emits machine-readable BENCH_hotpath.json in the working directory:
//   fit_predict[]   — per-n mean fit+predict seconds per GP-BO
//                     iteration, legacy vs fast, and the speedup
//   update_scaling  — fast-path model-update cost at n=100 vs n=200
//                     (a ratio near 4 = O(n^2); near 8 = O(n^3))
//   batch           — batch-1 vs batch-8 session wall-clock over a
//                     clonable spin objective (speedup tracks
//                     min(cores, batch))
//
// Usage: bm_hotpath [--max-n=N] (default 200; lower for smoke runs)

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/common/math_util.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/core/adapter_registry.h"
#include "src/core/tuning_session.h"
#include "src/model/acquisition.h"
#include "src/model/gp.h"
#include "src/model/kernels.h"
#include "src/optimizer/random_search.h"
#include "src/optimizer/search_space.h"

namespace llamatune {
namespace {

double NowSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------------------
// LegacyGp: a line-for-line replica of the pre-PR GaussianProcess hot
// path — full O(n^2 d) KernelMatrix + O(n^3) CholeskyFactor on every
// Fit (per hyperparameter restart), vector<vector> storage, and
// per-candidate O(n^2) Predict. This is the measurement baseline; the
// production GP lives in src/model/gp.
// ---------------------------------------------------------------------------

class LegacyGp {
 public:
  LegacyGp(const SearchSpace& space, GpOptions options, uint64_t seed)
      : space_(space), options_(options), seed_(seed) {}

  Status Fit(const std::vector<std::vector<double>>& xs,
             const std::vector<double>& ys) {
    train_x_ = xs;
    y_mean_ = Mean(ys);
    y_std_ = std::max(Stddev(ys), 1e-9);
    std::vector<double> ys_std(ys.size());
    for (size_t i = 0; i < ys.size(); ++i) {
      ys_std[i] = (ys[i] - y_mean_) / y_std_;
    }
    bool reopt = (fit_count_ % std::max(1, options_.reopt_interval)) == 0 ||
                 !fitted_;
    ++fit_count_;
    KernelParams best = params_;
    if (reopt) {
      Rng rng(HashCombine(seed_, static_cast<uint64_t>(fit_count_)));
      double best_lml = -std::numeric_limits<double>::infinity();
      for (int r = 0; r < options_.hyperparameter_restarts; ++r) {
        KernelParams cand;
        cand.signal_variance =
            std::exp(rng.Uniform(std::log(0.25), std::log(4.0)));
        cand.lengthscale =
            std::exp(rng.Uniform(std::log(0.05), std::log(3.0)));
        cand.hamming_weight =
            std::exp(rng.Uniform(std::log(0.1), std::log(5.0)));
        cand.noise_variance =
            std::exp(rng.Uniform(std::log(1e-6), std::log(1e-1)));
        cand.noise_variance =
            std::max(cand.noise_variance, options_.min_noise_variance);
        double lml = EvaluateLml(cand, train_x_, ys_std);
        if (lml > best_lml) {
          best_lml = lml;
          best = cand;
        }
      }
      if (!std::isfinite(best_lml)) best = KernelParams{};
    }
    Status st = FactorAndCache(best, train_x_, ys_std);
    if (!st.ok()) return st;
    fitted_ = true;
    return Status::OK();
  }

  void Predict(const std::vector<double>& x, double* mean,
               double* variance) const {
    int n = static_cast<int>(train_x_.size());
    std::vector<double> k_star(n);
    for (int i = 0; i < n; ++i) {
      k_star[i] = MixedKernel(space_, params_, x, train_x_[i]);
    }
    double mu_std = Dot(k_star, alpha_);
    std::vector<double> v = ForwardSolve(chol_, k_star);
    double k_xx = MixedKernel(space_, params_, x, x) + params_.noise_variance;
    double var_std = std::max(k_xx - Dot(v, v), 1e-12);
    *mean = mu_std * y_std_ + y_mean_;
    *variance = var_std * y_std_ * y_std_;
  }

 private:
  Status FactorAndCache(const KernelParams& params,
                        const std::vector<std::vector<double>>& xs,
                        const std::vector<double>& ys_std) {
    KernelParams p = params;
    for (int attempt = 0; attempt < 6; ++attempt) {
      auto gram = KernelMatrix(space_, p, xs);  // rebuilt every attempt
      std::vector<std::vector<double>> l;
      Status st = CholeskyFactor(std::move(gram), &l);
      if (st.ok()) {
        chol_ = std::move(l);
        std::vector<double> z = ForwardSolve(chol_, ys_std);
        alpha_ = BackwardSolve(chol_, z);
        params_ = p;
        return Status::OK();
      }
      p.noise_variance = std::max(p.noise_variance, 1e-8) * 10.0;
    }
    return Status::Internal("legacy GP fit failed");
  }

  double EvaluateLml(const KernelParams& params,
                     const std::vector<std::vector<double>>& xs,
                     const std::vector<double>& ys_std) const {
    auto gram = KernelMatrix(space_, params, xs);
    std::vector<std::vector<double>> l;
    if (!CholeskyFactor(std::move(gram), &l).ok()) {
      return -std::numeric_limits<double>::infinity();
    }
    std::vector<double> z = ForwardSolve(l, ys_std);
    std::vector<double> alpha = BackwardSolve(l, z);
    double lml = 0.0;
    for (size_t i = 0; i < ys_std.size(); ++i) {
      lml -= 0.5 * ys_std[i] * alpha[i];
    }
    for (size_t i = 0; i < l.size(); ++i) lml -= std::log(l[i][i]);
    lml -= 0.5 * static_cast<double>(ys_std.size()) *
           std::log(2.0 * 3.14159265358979323846);
    return lml;
  }

  SearchSpace space_;
  GpOptions options_;
  uint64_t seed_;
  int fit_count_ = 0;
  KernelParams params_;
  std::vector<std::vector<double>> train_x_;
  std::vector<std::vector<double>> chol_;
  std::vector<double> alpha_;
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
  bool fitted_ = false;
};

// ---------------------------------------------------------------------------
// Part 1: GP fit+predict vs n, legacy vs fast.
// ---------------------------------------------------------------------------

SearchSpace BenchSpace() {
  std::vector<SearchDim> dims;
  for (int i = 0; i < 16; ++i) dims.push_back(SearchDim::Continuous(0.0, 1.0));
  for (int i = 0; i < 4; ++i) dims.push_back(SearchDim::Categorical(4));
  return SearchSpace(dims);
}

std::vector<double> DrawPoint(const SearchSpace& space, Rng* rng) {
  std::vector<double> x(space.num_dims());
  for (int i = 0; i < space.num_dims(); ++i) {
    const SearchDim& dim = space.dim(i);
    x[i] = dim.type == SearchDim::Type::kCategorical
               ? static_cast<double>(rng->UniformInt(0, dim.num_categories - 1))
               : rng->Uniform(dim.lo, dim.hi);
  }
  return x;
}

double SyntheticObjective(const std::vector<double>& x) {
  double acc = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    acc += std::sin(3.0 * x[i] + static_cast<double>(i));
  }
  return acc;
}

struct Checkpoint {
  int n = 0;
  double per_iter_seconds = 0.0;   // mean fit+predict, window before n
  double update_seconds = 0.0;     // mean fit-only, window before n
  /// Mean fit-only seconds over the window's non-reopt iterations —
  /// the pure incremental model update (reopt-boundary refits are
  /// scheduled O(n^3) work in every path).
  double incremental_update_seconds = 0.0;
  double cumulative_seconds = 0.0;
};

// Simulates the model side of a GP-BO session from 10 to max_n
// observations: each iteration refits the GP on everything seen, scores
// 550 candidates, then receives one new observation. The observation
// stream and candidate pools are identical for every path (regenerated
// from fixed seeds), so timings are apples-to-apples.
template <typename FitFn, typename PredictFn>
std::vector<Checkpoint> RunModelLoop(const SearchSpace& space, int max_n,
                                     const std::vector<int>& checkpoints,
                                     FitFn fit, PredictFn predict) {
  constexpr int kCandidates = 550;
  constexpr int kWindow = 10;
  Rng data_rng(4242);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 10; ++i) {
    xs.push_back(DrawPoint(space, &data_rng));
    ys.push_back(SyntheticObjective(xs.back()));
  }
  std::vector<Checkpoint> out;
  std::vector<double> iter_seconds, fit_seconds;
  std::vector<bool> is_reopt;
  double cumulative = 0.0;
  for (int n = 10; n <= max_n; ++n) {
    // Mirrors GpOptions::reopt_interval: the GP re-optimizes
    // hyperparameters on fit calls 0, 5, 10, ... (fit call n-10 here).
    is_reopt.push_back((n - 10) % 5 == 0);
    double t0 = NowSeconds();
    fit(xs, ys);
    double t1 = NowSeconds();
    Rng cand_rng(HashCombine(9000, static_cast<uint64_t>(n)));
    std::vector<std::vector<double>> candidates;
    candidates.reserve(kCandidates);
    for (int c = 0; c < kCandidates; ++c) {
      candidates.push_back(DrawPoint(space, &cand_rng));
    }
    predict(candidates);
    double t2 = NowSeconds();
    iter_seconds.push_back(t2 - t0);
    fit_seconds.push_back(t1 - t0);
    cumulative += t2 - t0;
    for (int cp : checkpoints) {
      if (n == cp) {
        int w = std::min<int>(kWindow, iter_seconds.size());
        std::vector<double> iter_window(iter_seconds.end() - w,
                                        iter_seconds.end());
        std::vector<double> fit_window(fit_seconds.end() - w,
                                       fit_seconds.end());
        std::vector<double> incr_window;
        for (int k = 0; k < w; ++k) {
          size_t idx = fit_seconds.size() - w + k;
          if (!is_reopt[idx]) incr_window.push_back(fit_seconds[idx]);
        }
        Checkpoint c;
        c.n = cp;
        c.per_iter_seconds = Mean(iter_window);
        c.update_seconds = Mean(fit_window);
        c.incremental_update_seconds = Mean(incr_window);
        c.cumulative_seconds = cumulative;
        out.push_back(c);
      }
    }
    xs.push_back(DrawPoint(space, &data_rng));
    ys.push_back(SyntheticObjective(xs.back()));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Part 2: batch-1 vs batch-8 session wall-clock over a clonable
// objective with a fixed CPU cost per evaluation.
// ---------------------------------------------------------------------------

class SpinObjective : public ObjectiveFunction {
 public:
  explicit SpinObjective(int spin_iters)
      : spin_iters_(spin_iters),
        space_(*ConfigSpace::Create({IntegerKnob("a", 0, 100, 50),
                                     RealKnob("b", 0.0, 1.0, 0.5)})) {}

  EvalResult Evaluate(const Configuration& config) override {
    // Deterministic fixed-cost busy loop standing in for a workload run.
    volatile double sink = 0.0;
    for (int i = 0; i < spin_iters_; ++i) {
      sink = sink + std::sqrt(static_cast<double>(i) + 1.0);
    }
    EvalResult result;
    result.value = config[0] + 10.0 * config[1] + sink * 0.0;
    return result;
  }

  const ConfigSpace& config_space() const override { return space_; }

  std::unique_ptr<ObjectiveFunction> Clone() const override {
    return std::make_unique<SpinObjective>(spin_iters_);
  }

 private:
  int spin_iters_;
  ConfigSpace space_;
};

struct BatchResult {
  double seconds = 0.0;
  double best = 0.0;
};

BatchResult RunBatchSession(int batch_size, int spin_iters) {
  SpinObjective objective(spin_iters);
  std::unique_ptr<SpaceAdapter> adapter =
      std::move(AdapterRegistry::Global().Create(
                    "identity", &objective.config_space(), 77))
          .ValueOrDie();
  RandomSearchOptimizer optimizer(adapter->search_space(), /*seed=*/77);
  SessionOptions options;
  options.num_iterations = 48;
  options.batch_size = batch_size;
  TuningSession session(&objective, adapter.get(), &optimizer, options);
  double t0 = NowSeconds();
  SessionResult result = session.Run();
  BatchResult out;
  out.seconds = NowSeconds() - t0;
  out.best = result.best_performance;
  return out;
}

}  // namespace
}  // namespace llamatune

int main(int argc, char** argv) {
  using namespace llamatune;

  int max_n = 200;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--max-n=", 8) == 0) {
      max_n = std::atoi(argv[i] + 8);
    }
  }
  std::vector<int> checkpoints;
  for (int cp : {50, 100, 200}) {
    if (cp <= max_n) checkpoints.push_back(cp);
  }

  SearchSpace space = BenchSpace();
  GpOptions gp_options;  // paper defaults: 24 restarts, reopt every 5

  std::printf("[hotpath] legacy path (pre-PR replica), max n=%d...\n", max_n);
  LegacyGp legacy(space, gp_options, 1);
  std::vector<Checkpoint> legacy_cp = RunModelLoop(
      space, max_n, checkpoints,
      [&](const std::vector<std::vector<double>>& xs,
          const std::vector<double>& ys) { legacy.Fit(xs, ys); },
      [&](const std::vector<std::vector<double>>& candidates) {
        double best_ei = -1.0;
        for (const auto& c : candidates) {
          double mean = 0.0, variance = 0.0;
          legacy.Predict(c, &mean, &variance);
          best_ei = std::max(best_ei,
                             ExpectedImprovement(mean, variance, 0.0));
        }
      });

  // The fast path is measured twice: serial (num_threads = 1) to
  // isolate the algorithmic gain over the equally-serial legacy
  // replica, and pooled (num_threads = 0) for the wall-clock the
  // default configuration actually delivers on this machine.
  auto run_fast = [&](GpOptions opts) {
    GaussianProcess fast(space, opts, 1);
    return RunModelLoop(
        space, max_n, checkpoints,
        [&](const std::vector<std::vector<double>>& xs,
            const std::vector<double>& ys) {
          // The session feeds observations as they arrive; replicate
          // that by appending only the yet-unseen suffix.
          for (size_t i = static_cast<size_t>(fast.num_observations());
               i < xs.size(); ++i) {
            fast.AddObservation(xs[i], ys[i]);
          }
          fast.Refit();
        },
        [&](const std::vector<std::vector<double>>& candidates) {
          std::vector<double> means, variances;
          fast.PredictBatch(candidates, &means, &variances);
          double best_ei = -1.0;
          for (size_t i = 0; i < candidates.size(); ++i) {
            best_ei = std::max(
                best_ei, ExpectedImprovement(means[i], variances[i], 0.0));
          }
        });
  };
  std::printf("[hotpath] fast path, serial (algorithmic speedup)...\n");
  GpOptions serial_options = gp_options;
  serial_options.num_threads = 1;
  std::vector<Checkpoint> fast_cp = run_fast(serial_options);
  std::printf("[hotpath] fast path, pooled (wall-clock)...\n");
  std::vector<Checkpoint> pooled_cp = run_fast(gp_options);

  std::printf("[hotpath] batch sessions (spin objective)...\n");
  const int spin_iters = 400000;  // ~1-3 ms per evaluation
  BatchResult batch1 = RunBatchSession(1, spin_iters);
  BatchResult batch8 = RunBatchSession(8, spin_iters);
  BatchResult batch8_repeat = RunBatchSession(8, spin_iters);
  bool deterministic = batch8.best == batch8_repeat.best;

  int cores = ThreadPool::DefaultThreads();
  FILE* json = std::fopen("BENCH_hotpath.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_hotpath.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"hotpath\",\n");
  std::fprintf(json, "  \"hardware_cores\": %d,\n", cores);
  std::fprintf(json, "  \"candidates_per_iteration\": 550,\n");
  std::fprintf(json, "  \"fit_predict\": [\n");
  for (size_t i = 0; i < legacy_cp.size(); ++i) {
    // "speedup" is serial-vs-serial (pure algorithmic gain);
    // "pooled_speedup" additionally uses the shared thread pool.
    double speedup = legacy_cp[i].per_iter_seconds /
                     std::max(fast_cp[i].per_iter_seconds, 1e-12);
    double pooled_speedup = legacy_cp[i].per_iter_seconds /
                            std::max(pooled_cp[i].per_iter_seconds, 1e-12);
    std::fprintf(json,
                 "    {\"n\": %d, \"legacy_per_iter_seconds\": %.6e, "
                 "\"fast_per_iter_seconds\": %.6e, \"speedup\": %.2f, "
                 "\"fast_pooled_per_iter_seconds\": %.6e, "
                 "\"pooled_speedup\": %.2f, "
                 "\"legacy_cumulative_seconds\": %.4f, "
                 "\"fast_cumulative_seconds\": %.4f}%s\n",
                 legacy_cp[i].n, legacy_cp[i].per_iter_seconds,
                 fast_cp[i].per_iter_seconds, speedup,
                 pooled_cp[i].per_iter_seconds, pooled_speedup,
                 legacy_cp[i].cumulative_seconds,
                 fast_cp[i].cumulative_seconds,
                 i + 1 < legacy_cp.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  if (fast_cp.size() >= 2) {
    const Checkpoint& a = fast_cp[fast_cp.size() - 2];
    const Checkpoint& b = fast_cp.back();
    // Pure incremental updates (non-reopt iterations): a doubling of n
    // should cost ~4x (O(n^2) Cholesky extension + alpha recompute),
    // not the ~8x a full O(n^3) refit would.
    std::fprintf(json,
                 "  \"update_scaling\": {\"n_lo\": %d, "
                 "\"incremental_update_seconds_lo\": %.6e, \"n_hi\": %d, "
                 "\"incremental_update_seconds_hi\": %.6e, \"ratio\": %.2f, "
                 "\"o_n2_reference\": %.2f, \"o_n3_reference\": %.2f},\n",
                 a.n, a.incremental_update_seconds, b.n,
                 b.incremental_update_seconds,
                 b.incremental_update_seconds /
                     std::max(a.incremental_update_seconds, 1e-12),
                 static_cast<double>(b.n) * b.n / (a.n * a.n),
                 static_cast<double>(b.n) * b.n * b.n /
                     (static_cast<double>(a.n) * a.n * a.n));
  }
  std::fprintf(json,
               "  \"batch\": {\"iterations\": 48, \"batch_sizes\": [1, 8], "
               "\"batch1_seconds\": %.4f, \"batch8_seconds\": %.4f, "
               "\"speedup\": %.2f, \"deterministic_repeat\": %s}\n",
               batch1.seconds, batch8.seconds,
               batch1.seconds / std::max(batch8.seconds, 1e-12),
               deterministic ? "true" : "false");
  std::fprintf(json, "}\n");
  std::fclose(json);

  for (size_t i = 0; i < legacy_cp.size(); ++i) {
    std::printf("[hotpath] n=%3d  legacy %.3f ms/iter (fit %.3f)  "
                "fast %.3f ms/iter (fit %.3f)  speedup %.1fx  "
                "(pooled %.3f ms/iter, %.1fx)\n",
                legacy_cp[i].n, legacy_cp[i].per_iter_seconds * 1e3,
                legacy_cp[i].update_seconds * 1e3,
                fast_cp[i].per_iter_seconds * 1e3,
                fast_cp[i].update_seconds * 1e3,
                legacy_cp[i].per_iter_seconds /
                    std::max(fast_cp[i].per_iter_seconds, 1e-12),
                pooled_cp[i].per_iter_seconds * 1e3,
                legacy_cp[i].per_iter_seconds /
                    std::max(pooled_cp[i].per_iter_seconds, 1e-12));
  }
  std::printf("[hotpath] batch: %d cores, batch1 %.3f s, batch8 %.3f s, "
              "speedup %.2fx, deterministic=%s\n",
              cores, batch1.seconds, batch8.seconds,
              batch1.seconds / std::max(batch8.seconds, 1e-12),
              deterministic ? "true" : "false");
  std::printf("[hotpath] wrote BENCH_hotpath.json\n");
  return 0;
}
