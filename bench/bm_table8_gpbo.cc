// Reproduces paper Table 8: LlamaTune coupled with GP-BO (Gaussian
// process with Matérn-5/2 x Hamming kernel) vs vanilla GP-BO, for all
// six workloads.

#include "bench/bench_common.h"

using namespace llamatune;
using namespace llamatune::bench;
using namespace llamatune::harness;

int main() {
  PrintPaperNote("Table 8",
                 "mean ~8.4x time-to-optimal; YCSB-B +21.5% (19.4x), "
                 "TPC-C +18.6% (10.4x), RS ~flat");

  std::vector<ComparisonRow> rows;
  for (const auto& workload : dbsim::AllWorkloads()) {
    ExperimentSpec spec = PaperSpec(workload);
    spec.optimizer_key = "gpbo";
    PairResult pair = RunPair(spec);
    rows.push_back({workload.name, pair.comparison});
  }
  PrintComparisonTable("Table 8: LlamaTune vs vanilla GP-BO",
                       "Final Throughput Improvement", rows);
  return 0;
}
