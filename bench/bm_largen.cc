// Large-n GP scaling benchmark (ISSUE 5): the exact incremental GP
// against the inducing-point sparse GP as the training set grows past
// the point where O(n^3) reopts and O(n^2 * pool) scoring dominate.
//
// Part 1 — suggest-loop wall-clock. For each n in {200, 500, 1000,
// 2000} (capped by --max-n), a fixed synthetic observation stream is
// loaded into each model, then a measured window of 5 iterations runs
// the full suggest loop: AddObservation + Refit + PredictBatch over a
// 550-candidate pool + EI argmax. With reopt_interval = 5 the window
// amortizes exactly one hyperparameter re-optimization, matching the
// steady-state cost of a real GP-BO session. Both arms share the
// stream, the candidate pools, and the serial executor (num_threads =
// 1) so the ratio is the algorithmic gain, not pool luck.
//
// Part 2 — quality. The fixed-seed noiseless TPC-C / hesbo8 grid
// (shared definition: bench_common.h, the same cells bm_batch and
// tests/batch_quality_test.cc pin): exact "gpbo" vs a sparse arm
// whose switchover engages right after the init design (threshold 16,
// m = 20 — the tests/sparse_gp_test.cc configuration). Best-so-far
// means and evals-to-target are bit-for-bit deterministic for fixed
// seeds, so CI treats any drift there as a real behavior change.
//
// Emits machine-readable BENCH_largen.json:
//   scaling[] — per-n exact/sparse fit+suggest seconds and speedup
//   quality   — mean final best per arm, relative gap, evals-to-target
//
// Usage: bm_largen [--max-n=N] [--grid-iterations=I] [--grid-seeds=S]
//        CI smoke passes --max-n=500 --grid-iterations=64
//        --grid-seeds=5 (the committed baseline's exact flags: the
//        quality metric names embed (iterations, seeds), so mismatched
//        settings silently compare nothing).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/math_util.h"
#include "src/common/rng.h"
#include "src/model/acquisition.h"
#include "src/model/gp.h"
#include "src/model/sparse_gp.h"
#include "src/optimizer/gp_bo.h"
#include "src/optimizer/optimizer_registry.h"
#include "src/optimizer/search_space.h"

namespace llamatune {
namespace {

double NowSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

// The bm_hotpath synthetic space: 16 continuous + 4 categorical dims.
SearchSpace BenchSpace() {
  std::vector<SearchDim> dims;
  for (int i = 0; i < 16; ++i) dims.push_back(SearchDim::Continuous(0.0, 1.0));
  for (int i = 0; i < 4; ++i) dims.push_back(SearchDim::Categorical(4));
  return SearchSpace(dims);
}

std::vector<double> DrawPoint(const SearchSpace& space, Rng* rng) {
  std::vector<double> x(space.num_dims());
  for (int i = 0; i < space.num_dims(); ++i) {
    const SearchDim& dim = space.dim(i);
    x[i] = dim.type == SearchDim::Type::kCategorical
               ? static_cast<double>(rng->UniformInt(0, dim.num_categories - 1))
               : rng->Uniform(dim.lo, dim.hi);
  }
  return x;
}

double SyntheticObjective(const std::vector<double>& x) {
  double acc = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    acc += std::sin(3.0 * x[i] + static_cast<double>(i));
  }
  return acc;
}

constexpr int kCandidates = 550;
constexpr int kWindow = 5;  // one reopt boundary per window (interval 5)
constexpr int kScalingNumInducing = 64;   // sparse arm of the scaling rows
constexpr int kQualitySparseThreshold = 16;  // quality-grid sparse arm
constexpr int kQualityNumInducing = 20;

/// Measured suggest-loop window at size n for one model. `model` must
/// already hold n observations and be warm-fitted; the window then
/// runs kWindow full iterations (observe + refit + score). Returns
/// mean seconds per iteration.
template <typename Model>
double MeasureWindow(const SearchSpace& space, Model* model, int n) {
  Rng data_rng(HashCombine(7777, static_cast<uint64_t>(n)));
  double t0 = NowSeconds();
  for (int w = 0; w < kWindow; ++w) {
    std::vector<double> x = DrawPoint(space, &data_rng);
    model->AddObservation(x, SyntheticObjective(x));
    if (!model->Refit().ok()) std::abort();
    Rng cand_rng(HashCombine(9000, static_cast<uint64_t>(n * 10 + w)));
    std::vector<std::vector<double>> candidates;
    candidates.reserve(kCandidates);
    for (int c = 0; c < kCandidates; ++c) {
      candidates.push_back(DrawPoint(space, &cand_rng));
    }
    std::vector<double> means, variances;
    model->PredictBatch(candidates, &means, &variances);
    int pick = ArgmaxExpectedImprovement(means, variances, 0.0);
    if (pick < 0) std::abort();
  }
  return (NowSeconds() - t0) / kWindow;
}

struct ScalingEntry {
  int n = 0;
  double exact_per_iter_seconds = 0.0;
  double sparse_per_iter_seconds = 0.0;
  double speedup = 0.0;
};

ScalingEntry MeasureAtN(const SearchSpace& space, int n) {
  // Identical observation stream for both arms.
  Rng rng(4242);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < n; ++i) {
    xs.push_back(DrawPoint(space, &rng));
    ys.push_back(SyntheticObjective(xs.back()));
  }
  GpOptions options;  // paper defaults: 24 restarts, reopt every 5
  options.num_threads = 1;

  ScalingEntry entry;
  entry.n = n;
  {
    GaussianProcess exact(space, options, 1);
    for (int i = 0; i < n; ++i) exact.AddObservation(xs[i], ys[i]);
    if (!exact.Refit().ok()) std::abort();  // warm-up (full reopt)
    entry.exact_per_iter_seconds = MeasureWindow(space, &exact, n);
  }
  {
    GpOptions sparse_options = options;
    sparse_options.num_inducing = kScalingNumInducing;
    SparseGaussianProcess sparse(space, sparse_options, 1);
    for (int i = 0; i < n; ++i) sparse.AddObservation(xs[i], ys[i]);
    if (!sparse.Refit().ok()) std::abort();
    entry.sparse_per_iter_seconds = MeasureWindow(space, &sparse, n);
  }
  entry.speedup = entry.exact_per_iter_seconds /
                  std::max(entry.sparse_per_iter_seconds, 1e-12);
  return entry;
}

struct QualityResult {
  double exact_mean_best = 0.0;
  double sparse_mean_best = 0.0;
  double relative_gap = 0.0;  // (exact - sparse) / |exact|; < 0 = sparse won
  int exact_evals_to_best = 0;
  int sparse_evals_to_exact_best = 0;
  /// Evals for the sparse mean curve to reach 98% of the exact arm's
  /// final mean best. The CI-tracked deterministic quality metric:
  /// unlike evals-to-exact-best (which can pin at budget + 1 when the
  /// last needle-jump lands later), this sits mid-curve, so both
  /// regressions and improvements move it.
  int sparse_evals_to_98pct = 0;
};

QualityResult RunQualityGrid(int iterations, int seeds) {
  // The sparse arm the unit test pins (tests/sparse_gp_test.cc):
  // switchover right past the init design, 20 inducing points.
  if (!OptimizerRegistry::Global().Contains("gpbo-sparse-bench")) {
    OptimizerRegistry::Global().Register(
        "gpbo-sparse-bench",
        [](const SearchSpace& space,
           uint64_t seed) -> Result<std::unique_ptr<Optimizer>> {
          GpBoOptions options;
          options.gp.sparse_threshold = kQualitySparseThreshold;
          options.gp.num_inducing = kQualityNumInducing;
          return std::unique_ptr<Optimizer>(
              new GpBoOptimizer(space, options, seed));
        });
  }
  std::vector<double> exact_mean(iterations, 0.0);
  std::vector<double> sparse_mean(iterations, 0.0);
  for (int s = 0; s < seeds; ++s) {
    uint64_t seed = bench::kBatchGridBaseSeed + static_cast<uint64_t>(s);
    std::vector<double> exact_curve =
        bench::RunBatchGridCell("gpbo", seed, iterations, 1).kb
            .BestSoFarObjective();
    std::vector<double> sparse_curve =
        bench::RunBatchGridCell("gpbo-sparse-bench", seed, iterations, 1).kb
            .BestSoFarObjective();
    for (int i = 0; i < iterations; ++i) {
      exact_mean[i] += exact_curve[i];
      sparse_mean[i] += sparse_curve[i];
    }
  }
  for (double& v : exact_mean) v /= seeds;
  for (double& v : sparse_mean) v /= seeds;
  QualityResult out;
  out.exact_mean_best = exact_mean.back();
  out.sparse_mean_best = sparse_mean.back();
  out.relative_gap = (out.exact_mean_best - out.sparse_mean_best) /
                     std::max(std::abs(out.exact_mean_best), 1e-12);
  out.exact_evals_to_best =
      bench::EvalsToReach(exact_mean, out.exact_mean_best);
  out.sparse_evals_to_exact_best =
      bench::EvalsToReach(sparse_mean, out.exact_mean_best);
  out.sparse_evals_to_98pct =
      bench::EvalsToReach(sparse_mean, 0.98 * out.exact_mean_best);
  return out;
}

}  // namespace
}  // namespace llamatune

int main(int argc, char** argv) {
  using namespace llamatune;

  int max_n = 2000;
  int grid_iterations = 64;
  int grid_seeds = 5;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--max-n=", 8) == 0) {
      max_n = std::atoi(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--grid-iterations=", 18) == 0) {
      grid_iterations = std::atoi(argv[i] + 18);
    } else if (std::strncmp(argv[i], "--grid-seeds=", 13) == 0) {
      grid_seeds = std::atoi(argv[i] + 13);
    }
  }

  SearchSpace space = BenchSpace();
  std::vector<ScalingEntry> scaling;
  for (int n : {200, 500, 1000, 2000}) {
    if (n > max_n) continue;
    std::printf("[largen] n=%d: exact vs sparse suggest loop...\n", n);
    scaling.push_back(MeasureAtN(space, n));
    const ScalingEntry& e = scaling.back();
    std::printf("[largen] n=%4d  exact %8.2f ms/iter  sparse %7.2f ms/iter  "
                "speedup %5.1fx\n",
                e.n, e.exact_per_iter_seconds * 1e3,
                e.sparse_per_iter_seconds * 1e3, e.speedup);
  }

  std::printf("[largen] quality grid (%d iterations, %d seeds)...\n",
              grid_iterations, grid_seeds);
  QualityResult quality = RunQualityGrid(grid_iterations, grid_seeds);
  std::printf("[largen] quality: exact best %.4f, sparse best %.4f "
              "(gap %.2f%%), sparse reached exact's best in %d evals "
              "(exact: %d)\n",
              quality.exact_mean_best, quality.sparse_mean_best,
              quality.relative_gap * 100.0,
              quality.sparse_evals_to_exact_best,
              quality.exact_evals_to_best);

  FILE* json = std::fopen("BENCH_largen.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_largen.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"largen\",\n");
  // Provenance for both arms: the scaling rows use num_inducing; the
  // quality grid uses (quality_sparse_threshold, quality_num_inducing)
  // — recorded so a baseline drift can be traced to the right arm.
  std::fprintf(json,
               "  \"config\": {\"candidates\": %d, \"window\": %d, "
               "\"num_inducing\": %d, \"grid_iterations\": %d, "
               "\"grid_seeds\": %d, \"quality_sparse_threshold\": %d, "
               "\"quality_num_inducing\": %d, \"workload\": \"tpcc\", "
               "\"adapter\": \"hesbo8\", \"noise_sigma\": 0.0},\n",
               kCandidates, kWindow, kScalingNumInducing, grid_iterations,
               grid_seeds, kQualitySparseThreshold, kQualityNumInducing);
  std::fprintf(json, "  \"scaling\": [\n");
  for (size_t i = 0; i < scaling.size(); ++i) {
    const ScalingEntry& e = scaling[i];
    std::fprintf(json,
                 "    {\"n\": %d, \"exact_per_iter_seconds\": %.6e, "
                 "\"sparse_per_iter_seconds\": %.6e, \"speedup\": %.2f}%s\n",
                 e.n, e.exact_per_iter_seconds, e.sparse_per_iter_seconds,
                 e.speedup, i + 1 < scaling.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json,
               "  \"quality\": {\"exact_mean_best\": %.6f, "
               "\"sparse_mean_best\": %.6f, \"relative_gap\": %.4f, "
               "\"exact_evals_to_best\": %d, "
               "\"sparse_evals_to_exact_best\": %d, "
               "\"sparse_evals_to_98pct\": %d}\n",
               quality.exact_mean_best, quality.sparse_mean_best,
               quality.relative_gap, quality.exact_evals_to_best,
               quality.sparse_evals_to_exact_best,
               quality.sparse_evals_to_98pct);
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("[largen] wrote BENCH_largen.json\n");
  return 0;
}
