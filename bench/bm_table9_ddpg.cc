// Reproduces paper Table 9: LlamaTune coupled with the DDPG
// reinforcement-learning tuner (CDBTune-style actor-critic fed by 27
// internal DBMS metrics) vs vanilla DDPG, for YCSB-B, TPC-C, Twitter
// and RS.

#include "bench/bench_common.h"

using namespace llamatune;
using namespace llamatune::bench;
using namespace llamatune::harness;

int main() {
  PrintPaperNote("Table 9",
                 "mean ~4.14x time-to-optimal; YCSB-B +24.95% (5.17x)");

  std::vector<ComparisonRow> rows;
  for (const auto& workload : {dbsim::YcsbB(), dbsim::TpcC(),
                               dbsim::Twitter(), dbsim::ResourceStresser()}) {
    ExperimentSpec spec = PaperSpec(workload);
    spec.optimizer_key = "ddpg";
    PairResult pair = RunPair(spec);
    rows.push_back({workload.name, pair.comparison});
  }
  PrintComparisonTable("Table 9: LlamaTune vs vanilla DDPG",
                       "Final Throughput Improvement", rows);
  return 0;
}
