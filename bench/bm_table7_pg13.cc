// Reproduces paper Table 7: LlamaTune vs vanilla SMAC on the newer
// simulated PostgreSQL v13.6 (112 knobs, 23 hybrid), same
// hyperparameters as the v9.6 experiments.

#include "bench/bench_common.h"

using namespace llamatune;
using namespace llamatune::bench;
using namespace llamatune::harness;

int main() {
  PrintPaperNote("Table 7",
                 "avg ~3.86x time-to-optimal on v13.6; YCSB-B narrows to "
                 "+3.6% (engine improvements), SEATS widens to +20%");

  ConfigSpace catalog = dbsim::PostgresV136Catalog();
  std::printf("v13.6 catalog: %d knobs, %zu hybrid\n", catalog.num_knobs(),
              catalog.hybrid_knob_indices().size());

  std::vector<ComparisonRow> rows;
  for (const auto& workload : dbsim::AllWorkloads()) {
    ExperimentSpec spec = PaperSpec(workload);
    spec.version = dbsim::PostgresVersion::kV136;
    PairResult pair = RunPair(spec);
    rows.push_back({workload.name, pair.comparison});
  }
  PrintComparisonTable(
      "Table 7: LlamaTune vs SMAC on simulated PostgreSQL v13.6",
      "Final Throughput Improvement", rows);
  return 0;
}
