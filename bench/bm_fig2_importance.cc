// Reproduces paper Table 1 and Figure 2: SHAP-style importance ranking
// of the 90 knobs from a 2,500-configuration LHS corpus on YCSB-A, the
// top-8 list vs a hand-picked top-8, and tuning sessions restricted to
// each knob subset — on YCSB-A (Fig. 2a) and transferred to TPC-C
// (Fig. 2b).

#include <memory>

#include "bench/bench_common.h"
#include "src/core/adapter_registry.h"
#include "src/analysis/importance.h"
#include "src/analysis/shap.h"
#include "src/core/subset_adapter.h"
#include "src/core/tuning_session.h"
#include "src/optimizer/smac.h"

using namespace llamatune;
using namespace llamatune::bench;
using namespace llamatune::harness;

namespace {

// The paper's hand-picked top-8 for YCSB-A (Table 1, right column).
const std::vector<std::string> kHandPicked = {
    "autovacuum_analyze_scale_factor",
    "autovacuum_vacuum_scale_factor",
    "commit_delay",
    "full_page_writes",
    "geqo_selection_bias",
    "max_wal_size",
    "shared_buffers",
    "wal_writer_flush_after",
};

CurveSummary RunSubsetSessions(const dbsim::WorkloadSpec& workload,
                               const std::vector<std::string>& knobs,
                               int num_seeds) {
  std::vector<std::vector<double>> curves;
  for (int s = 0; s < num_seeds; ++s) {
    uint64_t seed = 42 + static_cast<uint64_t>(s) * 1000003ULL;
    dbsim::SimulatedPostgresOptions db_options;
    db_options.noise_seed = seed;
    dbsim::SimulatedPostgres db(workload, db_options);
    std::unique_ptr<SpaceAdapter> adapter;
    if (knobs.empty()) {
      adapter = std::move(AdapterRegistry::Global().Create(
                              "identity", &db.config_space(), seed))
                    .ValueOrDie();
    } else {
      adapter = std::make_unique<SubsetAdapter>(
          std::move(SubsetAdapter::Create(&db.config_space(), knobs))
              .ValueOrDie());
    }
    SmacOptimizer optimizer(adapter->search_space(), {}, seed);
    SessionOptions options;
    options.num_iterations = 100;
    TuningSession session(&db, adapter.get(), &optimizer, options);
    curves.push_back(session.Run().kb.BestSoFarMeasured());
  }
  return SummarizeCurves(curves);
}

}  // namespace

int main() {
  PrintPaperNote("Table 1 / Figure 2",
                 "SHAP top-8 underperforms hand-picked top-8 and all "
                 "knobs on YCSB-A; YCSB-A's top-8 transfers poorly to "
                 "TPC-C");

  // --- Importance ranking from a 2,500-sample LHS corpus (paper
  // §2.3.2).
  dbsim::SimulatedPostgres db(dbsim::YcsbA(), {});
  std::unique_ptr<SpaceAdapter> identity_owned =
      std::move(AdapterRegistry::Global().Create(
                    "identity", &db.config_space(), 7))
          .ValueOrDie();
  SpaceAdapter& identity = *identity_owned;
  std::printf("\nBuilding 2,500-configuration LHS corpus on YCSB-A...\n");
  ImportanceCorpus corpus = BuildCorpus(&db, identity, 2500, 7);
  std::printf("corpus: %zu non-crashed samples\n", corpus.points.size());

  // Baseline point = default configuration in the identity search
  // space (SHAP explains deviation from the default, paper §2.3.2).
  const ConfigSpace& space = db.config_space();
  std::vector<double> baseline(space.num_knobs());
  Configuration def = space.DefaultConfiguration();
  for (int i = 0; i < space.num_knobs(); ++i) {
    baseline[i] = space.knob(i).type == KnobType::kCategorical
                      ? def[i]
                      : space.ValueToUnit(i, def[i]);
  }
  auto shap = ShapImportance(corpus, identity, baseline, {}, 11);
  std::vector<std::string> shap_top8 = TopKnobs(shap, 8);

  std::printf("\n=== Table 1: SHAP top-8 vs hand-picked top-8 (YCSB-A) "
              "===\n%-36s %s\n", "SHAP (top-8)", "Hand-picked (top-8)");
  for (int i = 0; i < 8; ++i) {
    std::printf("%-36s %s\n", shap_top8[i].c_str(), kHandPicked[i].c_str());
  }
  std::printf("\nSHAP scores (top-12):\n");
  for (int i = 0; i < 12 && i < static_cast<int>(shap.size()); ++i) {
    std::printf("  %-36s %.4f\n", shap[i].knob.c_str(), shap[i].score);
  }

  // --- Figure 2a: tuning YCSB-A with each knob set.
  const int kSeeds = 5;
  CurveSummary all_a = RunSubsetSessions(dbsim::YcsbA(), {}, kSeeds);
  CurveSummary shap_a = RunSubsetSessions(dbsim::YcsbA(), shap_top8, kSeeds);
  CurveSummary hand_a = RunSubsetSessions(dbsim::YcsbA(), kHandPicked, kSeeds);
  PrintCurves("Figure 2a: best throughput on YCSB-A by knob set",
              {"All knobs", "SHAP (top-8)", "Hand-picked (top-8)"},
              {all_a, shap_a, hand_a}, 20);

  // --- Figure 2b: transferring YCSB-A's top-8 sets to TPC-C.
  CurveSummary all_c = RunSubsetSessions(dbsim::TpcC(), {}, kSeeds);
  CurveSummary shap_c = RunSubsetSessions(dbsim::TpcC(), shap_top8, kSeeds);
  CurveSummary hand_c = RunSubsetSessions(dbsim::TpcC(), kHandPicked, kSeeds);
  PrintCurves(
      "Figure 2b: best throughput on TPC-C when tuning YCSB-A's top-8",
      {"All knobs", "Top-8 YCSB-A (SHAP)", "Top-8 YCSB-A (hand-picked)"},
      {all_c, shap_c, hand_c}, 20);

  std::printf("\nFinal means — YCSB-A: all=%.0f shap8=%.0f hand8=%.0f | "
              "TPC-C: all=%.0f shap8=%.0f hand8=%.0f\n",
              all_a.mean.back(), shap_a.mean.back(), hand_a.mean.back(),
              all_c.mean.back(), shap_c.mean.back(), hand_c.mean.back());
  return 0;
}
