// Service/wire front-end load benchmark: many short-lived tuning
// sessions driven over real TCP sockets against an in-process
// TuningServer, from several concurrent client threads.
//
// Each "session" is the full caller-measured lifecycle — Hello,
// CreateSession, ask/tell for a fixed iteration budget, Checkpoint,
// Close — so throughput covers framing, dispatch, quota bookkeeping
// and service work, not just raw socket echo.
//
// A second, overload phase reruns the same workload at 4x the client
// parallelism against a server whose expensive-admission queue is
// deliberately tiny: most asks are shed with kOverloaded + a
// retry-after hint that the resilient clients honor. The phase pins
// the load-shedding contract — admitted asks keep a p99 near the
// unloaded number because queue depth is bounded, and the shed/hint
// counters prove the cooperation happened.
//
// Emits machine-readable BENCH_service.json in the working directory:
//   sessions_per_sec     — completed session lifecycles per second
//                          (headline, higher is better)
//   per_session_seconds  — mean wall-clock per session lifecycle
//                          (lower is better; what the regression
//                          check compares)
//   ask_seconds p50/p99  — per-Ask round-trip latency over the wire
//   overload {...}       — shed counters, hinted retries, admitted-ask
//                          percentiles and their ratio to unloaded p99
//
// Usage: bm_service [--sessions=N] [--iterations=N] [--clients=N]
//        (defaults: 200 sessions, 6 ask/tell rounds each, 4 clients;
//        the overload phase always uses 4x clients)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/knobs/knob.h"
#include "src/net/tuning_client.h"
#include "src/net/tuning_server.h"

namespace llamatune {
namespace {

double NowSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

double Measure(const Configuration& config) {
  double x = config[0] / 100.0;
  double y = config[1];
  return 1000.0 - 900.0 * ((x - 0.37) * (x - 0.37) + (y - 0.58) * (y - 0.58));
}

net::WireSessionSpec BenchSpec(int iterations, uint64_t seed) {
  net::WireSessionSpec spec;
  spec.space_knobs = {IntegerKnob("cache_mb", 0, 100, 50),
                      RealKnob("target_ratio", 0.0, 1.0, 0.5)};
  spec.optimizer_key = "random";
  spec.adapter_key = "identity";
  spec.seed = seed;
  spec.num_iterations = iterations;
  return spec;
}

double Percentile(std::vector<double> sorted_ascending, double p) {
  if (sorted_ascending.empty()) return 0.0;
  double rank = p * static_cast<double>(sorted_ascending.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted_ascending.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted_ascending[lo] * (1.0 - frac) + sorted_ascending[hi] * frac;
}

struct ClientStats {
  int sessions_completed = 0;
  int errors = 0;
  std::vector<double> ask_seconds;
  std::vector<double> session_seconds;
  /// Overload phase only: retry sleeps driven by a server retry-after
  /// hint instead of the client's own jitter.
  int64_t hinted_retries = 0;
};

// One worker: connects once, then runs its share of session
// lifecycles back to back over that connection.
ClientStats RunClient(uint16_t port, int client_id, int sessions,
                      int iterations) {
  ClientStats stats;
  net::TuningClient client;
  if (!client.Connect("127.0.0.1", port).ok() ||
      !client.Hello("bench-tenant-" + std::to_string(client_id)).ok()) {
    stats.errors = sessions;
    return stats;
  }
  for (int s = 0; s < sessions; ++s) {
    const std::string name =
        "job-" + std::to_string(client_id) + "-" + std::to_string(s);
    double t0 = NowSeconds();
    uint64_t seed = 1000 + static_cast<uint64_t>(client_id) * 100000 + s;
    if (!client.CreateSession(name, BenchSpec(iterations, seed)).ok()) {
      ++stats.errors;
      continue;
    }
    bool ok = true;
    for (int round = 0; round < iterations && ok; ++round) {
      double a0 = NowSeconds();
      Result<Trial> trial = client.Ask(name);
      stats.ask_seconds.push_back(NowSeconds() - a0);
      if (!trial.ok()) {
        ok = false;
        break;
      }
      TrialResult result;
      result.trial_id = trial->id;
      result.value = Measure(trial->config);
      ok = client.Tell(name, result).ok();
    }
    ok = ok && client.Checkpoint(name).ok();
    ok = ok && client.Close(name).ok();
    if (ok) {
      ++stats.sessions_completed;
      stats.session_seconds.push_back(NowSeconds() - t0);
    } else {
      ++stats.errors;
      (void)client.Close(name);  // best-effort cleanup
    }
  }
  return stats;
}

// One overload worker: the same lifecycle as RunClient, but through a
// resilient client with per-request deadlines, hammering a server
// whose admission queue is deliberately tiny. An Ask that completes
// without ever seeing a retry-after hint was admitted on its first
// attempt — only those latencies count toward the admitted-ask
// percentiles; hinted retries are tallied instead of timed.
ClientStats RunOverloadClient(uint16_t port, int client_id, int sessions,
                              int iterations) {
  ClientStats stats;
  net::TuningClientOptions copts;
  copts.request_deadline_ms = 500;
  copts.retry.max_attempts = 20;
  copts.retry.initial_backoff_ms = 1;
  copts.retry.max_backoff_ms = 50;
  copts.retry.retry_budget_ms = 60000;
  copts.retry.jitter_seed = 100 + static_cast<uint64_t>(client_id);
  net::TuningClient client(copts);
  if (!client.Connect("127.0.0.1", port).ok() ||
      !client.Hello("overload-tenant-" + std::to_string(client_id)).ok()) {
    stats.errors = sessions;
    return stats;
  }
  for (int s = 0; s < sessions; ++s) {
    const std::string name =
        "ov-" + std::to_string(client_id) + "-" + std::to_string(s);
    double t0 = NowSeconds();
    uint64_t seed = 500000 + static_cast<uint64_t>(client_id) * 100000 + s;
    if (!client.CreateSession(name, BenchSpec(iterations, seed)).ok()) {
      ++stats.errors;
      continue;
    }
    bool ok = true;
    for (int round = 0; round < iterations && ok; ++round) {
      int64_t hints_before = client.retry_hints_seen();
      double a0 = NowSeconds();
      Result<Trial> trial = client.Ask(name);
      double elapsed = NowSeconds() - a0;
      if (!trial.ok()) {
        ok = false;
        break;
      }
      if (client.retry_hints_seen() == hints_before) {
        stats.ask_seconds.push_back(elapsed);
      }
      TrialResult result;
      result.trial_id = trial->id;
      result.value = Measure(trial->config);
      ok = client.Tell(name, result).ok();
    }
    ok = ok && client.Checkpoint(name).ok();
    ok = ok && client.Close(name).ok();
    if (ok) {
      ++stats.sessions_completed;
      stats.session_seconds.push_back(NowSeconds() - t0);
    } else {
      ++stats.errors;
      (void)client.Close(name);  // best-effort cleanup
    }
  }
  stats.hinted_retries = client.retry_hints_seen();
  return stats;
}

}  // namespace
}  // namespace llamatune

int main(int argc, char** argv) {
  using namespace llamatune;

  int sessions = 200;
  int iterations = 6;
  int clients = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--sessions=", 11) == 0) {
      sessions = std::atoi(argv[i] + 11);
    } else if (std::strncmp(argv[i], "--iterations=", 13) == 0) {
      iterations = std::atoi(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--clients=", 10) == 0) {
      clients = std::atoi(argv[i] + 10);
    } else {
      std::fprintf(stderr,
                   "usage: bm_service [--sessions=N] [--iterations=N] "
                   "[--clients=N]\n");
      return 2;
    }
  }
  sessions = std::max(sessions, 1);
  iterations = std::max(iterations, 1);
  clients = std::max(clients, 1);

  net::TuningServerOptions options;
  net::TuningServer server(options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("[service] %d sessions x %d iterations over %d clients "
              "(port %u)...\n",
              sessions, iterations, clients, server.port());

  // Split the session budget across clients; the first few absorb the
  // remainder so the total is exact.
  std::vector<int> share(clients, sessions / clients);
  for (int i = 0; i < sessions % clients; ++i) ++share[i];

  std::vector<ClientStats> stats(clients);
  double t0 = NowSeconds();
  {
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        stats[c] = RunClient(server.port(), c, share[c], iterations);
      });
    }
    for (std::thread& w : workers) w.join();
  }
  double wall = NowSeconds() - t0;
  server.Stop();

  int completed = 0;
  int errors = 0;
  std::vector<double> ask_seconds;
  std::vector<double> session_seconds;
  for (const ClientStats& s : stats) {
    completed += s.sessions_completed;
    errors += s.errors;
    ask_seconds.insert(ask_seconds.end(), s.ask_seconds.begin(),
                       s.ask_seconds.end());
    session_seconds.insert(session_seconds.end(), s.session_seconds.begin(),
                           s.session_seconds.end());
  }
  std::sort(ask_seconds.begin(), ask_seconds.end());
  double session_sum = 0.0;
  for (double v : session_seconds) session_sum += v;
  double per_session =
      completed > 0 ? session_sum / static_cast<double>(completed) : 0.0;
  double sessions_per_sec =
      wall > 0.0 ? static_cast<double>(completed) / wall : 0.0;
  double ask_p50 = Percentile(ask_seconds, 0.50);
  double ask_p99 = Percentile(ask_seconds, 0.99);

  // --- Overload phase: 4x the clients against a tiny admission
  // queue. Shedding keeps queue depth (and so admitted-ask latency)
  // bounded while the retry-after hints pace the herd.
  net::TuningServerOptions ov_options;
  ov_options.max_pending_requests = 6;
  ov_options.cheap_admission_reserve = 2;  // expensive-class cap: 4
  ov_options.default_request_deadline_ms = 500;
  ov_options.shed_retry_base_ms = 2;  // keep the bench brisk
  ov_options.shed_retry_max_ms = 25;
  net::TuningServer ov_server(ov_options);
  Status ov_started = ov_server.Start();
  if (!ov_started.ok()) {
    std::fprintf(stderr, "overload server start failed: %s\n",
                 ov_started.ToString().c_str());
    return 1;
  }
  int ov_clients = clients * 4;
  std::printf("[service] overload: %d sessions x %d iterations over %d "
              "clients, %d admission slots (port %u)...\n",
              sessions, iterations, ov_clients,
              ov_options.max_pending_requests, ov_server.port());

  std::vector<int> ov_share(ov_clients, sessions / ov_clients);
  for (int i = 0; i < sessions % ov_clients; ++i) ++ov_share[i];
  std::vector<ClientStats> ov_stats(ov_clients);
  double ov_t0 = NowSeconds();
  {
    std::vector<std::thread> workers;
    workers.reserve(ov_clients);
    for (int c = 0; c < ov_clients; ++c) {
      workers.emplace_back([&, c] {
        ov_stats[c] =
            RunOverloadClient(ov_server.port(), c, ov_share[c], iterations);
      });
    }
    for (std::thread& w : workers) w.join();
  }
  double ov_wall = NowSeconds() - ov_t0;

  // Scrape the shed counters the way an operator would — over the
  // wire via kServerStats — before stopping the server.
  long long shed_overload = 0;
  long long shed_deadline = 0;
  {
    net::TuningClient probe;
    if (probe.Connect("127.0.0.1", ov_server.port()).ok()) {
      Result<net::WireServerStats> wire = probe.ServerStats();
      if (wire.ok()) {
        shed_overload = wire->shed_overload;
        shed_deadline = wire->shed_deadline;
      }
    }
  }
  ov_server.Stop();

  int ov_completed = 0;
  int ov_errors = 0;
  long long hinted_retries = 0;
  std::vector<double> admitted_ask;
  for (const ClientStats& s : ov_stats) {
    ov_completed += s.sessions_completed;
    ov_errors += s.errors;
    hinted_retries += s.hinted_retries;
    admitted_ask.insert(admitted_ask.end(), s.ask_seconds.begin(),
                        s.ask_seconds.end());
  }
  std::sort(admitted_ask.begin(), admitted_ask.end());
  double ov_ask_p50 = Percentile(admitted_ask, 0.50);
  double ov_ask_p99 = Percentile(admitted_ask, 0.99);
  double p99_ratio = ask_p99 > 0.0 ? ov_ask_p99 / ask_p99 : 0.0;

  FILE* json = std::fopen("BENCH_service.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_service.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"service\",\n");
  std::fprintf(json,
               "  \"config\": {\"sessions\": %d, \"iterations\": %d, "
               "\"clients\": %d},\n",
               sessions, iterations, clients);
  std::fprintf(json, "  \"sessions_completed\": %d,\n", completed);
  std::fprintf(json, "  \"errors\": %d,\n", errors);
  std::fprintf(json, "  \"wall_seconds\": %.4f,\n", wall);
  std::fprintf(json, "  \"sessions_per_sec\": %.2f,\n", sessions_per_sec);
  std::fprintf(json, "  \"per_session_seconds\": %.6e,\n", per_session);
  std::fprintf(json,
               "  \"ask_seconds\": {\"count\": %zu, \"p50\": %.6e, "
               "\"p99\": %.6e},\n",
               ask_seconds.size(), ask_p50, ask_p99);
  std::fprintf(json,
               "  \"overload\": {\"clients\": %d, \"sessions_completed\": "
               "%d, \"errors\": %d, \"wall_seconds\": %.4f,\n",
               ov_clients, ov_completed, ov_errors, ov_wall);
  std::fprintf(json,
               "    \"shed_overload\": %lld, \"shed_deadline\": %lld, "
               "\"retry_hints_seen\": %lld,\n",
               shed_overload, shed_deadline, hinted_retries);
  std::fprintf(json,
               "    \"admitted_ask_seconds\": {\"count\": %zu, "
               "\"p50\": %.6e, \"p99\": %.6e},\n",
               admitted_ask.size(), ov_ask_p50, ov_ask_p99);
  std::fprintf(json, "    \"admitted_p99_over_unloaded_p99\": %.3f}\n",
               p99_ratio);
  std::fprintf(json, "}\n");
  std::fclose(json);

  std::printf("[service] %d/%d sessions ok (%d errors) in %.2f s — "
              "%.1f sessions/s, per-session %.3f ms, "
              "ask p50 %.3f ms p99 %.3f ms\n",
              completed, sessions, errors, wall, sessions_per_sec,
              per_session * 1e3, ask_p50 * 1e3, ask_p99 * 1e3);
  std::printf("[service] overload: %d/%d sessions ok (%d errors), "
              "shed %lld (+%lld deadline), %lld hinted retries, "
              "admitted ask p50 %.3f ms p99 %.3f ms (%.2fx unloaded)\n",
              ov_completed, sessions, ov_errors, shed_overload,
              shed_deadline, hinted_retries, ov_ask_p50 * 1e3,
              ov_ask_p99 * 1e3, p99_ratio);
  std::printf("[service] wrote BENCH_service.json\n");
  return (errors == 0 && ov_errors == 0) ? 0 : 1;
}
