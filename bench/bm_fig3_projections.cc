// Reproduces paper Figure 3: SMAC over REMBO / HeSBO projections of the
// 90-knob space at d = 8, 16, 24 vs tuning the original space, on
// YCSB-A. Also reports the REMBO clipping pathology (fraction of
// coordinates clipped).

#include "bench/bench_common.h"
#include "src/projection/rembo.h"
#include "src/sampling/uniform.h"

using namespace llamatune;
using namespace llamatune::bench;
using namespace llamatune::harness;

int main() {
  PrintPaperNote("Figure 3",
                 "HeSBO beats the high-dim baseline for all d; REMBO ends "
                 "10-15% below baseline (clipping)");

  ExperimentSpec spec = PaperSpec(dbsim::YcsbA());

  std::vector<std::string> labels = {"High-Dim (SMAC, 90 knobs)"};
  std::vector<CurveSummary> curves;
  spec.adapter_key = "identity";
  MultiSeedResult baseline = RunExperiment(spec);
  curves.push_back(SummarizeCurves(baseline.measured_curves));

  // The case-study pipeline is the plain projection (no SVB, no
  // bucketization) against vanilla SMAC on all knobs (paper §3.4) —
  // a bare "hesbo<d>" / "rembo<d>" stage key.
  for (const char* stage : {"hesbo", "rembo"}) {
    for (int d : {8, 16, 24}) {
      spec.adapter_key = stage + std::to_string(d);
      MultiSeedResult result = RunExperiment(spec);
      const char* name = std::string(stage) == "hesbo" ? "HeSBO" : "REMBO";
      labels.push_back(std::string(name) + "-" + std::to_string(d));
      curves.push_back(SummarizeCurves(result.measured_curves));
      Comparison cmp = Compare(baseline, result);
      std::printf("%s-%d final improvement over high-dim: %+.2f%%\n", name, d,
                  cmp.mean_improvement_pct);
    }
  }

  PrintCurves("Figure 3: best throughput on YCSB-A by projection", labels,
              curves, 20);

  // Quantify the REMBO clipping behaviour the paper blames (§3.4).
  RemboProjection rembo(90, 16, 1);
  Rng rng(1);
  double clipped = 0.0;
  const int n = 2000;
  SearchSpace low = rembo.LowDimSpace();
  for (int i = 0; i < n; ++i) {
    clipped += rembo.ClippedFraction(UniformSample(low, &rng));
  }
  std::printf(
      "\nREMBO-16 diagnostic: %.1f%% of projected coordinates land on the "
      "[-1,1] facets (uniform low-dim draws)\n",
      100.0 * clipped / n);
  return 0;
}
