// Batch-suggestion sample-efficiency benchmark: the batch-aware
// SuggestBatch modes (GP-BO greedy q-EI, GP-BO local penalization,
// SMAC near-duplicate exclusion) against the optimizer-agnostic
// sequential fallback, at batch sizes 1/2/4/8 on the fixed-seed
// simulator grid — TPC-C on the noiseless simulator (noise_sigma = 0,
// so best-seen values measure configurations found, not noise draws)
// through the hesbo8 projection, matching tests/batch_quality_test.cc.
//
// Best-so-far curves are averaged over the seed grid, then each
// batch-aware arm is scored against its family's sequential fallback
// at the same batch size. Emits machine-readable BENCH_batch.json:
//   series[] — one entry per (batch-aware key, batch size):
//     mean_evals_to_fallback_best   evaluations the batch-aware mode's
//                                   mean curve needed to reach the
//                                   fallback mean curve's final best
//     mean_fallback_evals_to_best   evaluations the fallback spent
//                                   getting there itself
//     sample_efficiency             ratio of the two (higher = better;
//                                   mean_evals capped at budget + 1
//                                   when the target is never reached)
//     mean_best_objective           mean final best (internal objective)
//     mean_optimizer_seconds        suggest+observe wall-clock per
//                                   session, vs the fallback's (batch
//                                   suggestion must stay within a
//                                   small constant factor of
//                                   single-point cost)
//     identical_at_q1               q==1 batches must degrade to the
//                                   plain suggestion bit-for-bit
//
// The quality metrics (evals-to-target, best objective) are
// deterministic for fixed seeds at any thread count; only the
// *_seconds fields carry wall-clock noise. CI regenerates this file
// with the committed baseline's exact flags and compares via
// scripts/check_bench_regression.py.
//
// Usage: bm_batch [--iterations=N] [--seeds=S]   (defaults 64, 5 —
//        the same settings CI's bench-smoke job passes explicitly and
//        the committed baseline was generated with; regenerate the
//        baseline with identical flags or the name-embedded configs
//        stop intersecting and the check compares nothing)

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "src/optimizer/optimizer_registry.h"
#include "src/optimizer/smac.h"

namespace llamatune {
namespace {

using bench::EvalsToReach;
using bench::RunBatchGridCell;

struct BenchConfig {
  int iterations = 64;
  int seeds = 5;
  uint64_t base_seed = bench::kBatchGridBaseSeed;
};

struct CellResult {
  std::vector<double> mean_curve;      // mean best-so-far over seeds
  double mean_optimizer_seconds = 0.0;
};

CellResult RunCell(const BenchConfig& config,
                   const std::string& optimizer_key, int batch_size) {
  CellResult out;
  out.mean_curve.assign(config.iterations, 0.0);
  for (int s = 0; s < config.seeds; ++s) {
    uint64_t seed = config.base_seed + static_cast<uint64_t>(s);
    SessionResult result = RunBatchGridCell(optimizer_key, seed,
                                            config.iterations, batch_size);
    std::vector<double> curve = result.kb.BestSoFarObjective();
    for (int i = 0; i < config.iterations &&
                    i < static_cast<int>(curve.size());
         ++i) {
      out.mean_curve[i] += curve[i];
    }
    out.mean_optimizer_seconds += result.optimizer_seconds;
  }
  for (double& v : out.mean_curve) v /= config.seeds;
  out.mean_optimizer_seconds /= config.seeds;
  return out;
}

struct SeriesEntry {
  std::string optimizer;
  std::string fallback;
  int batch_size = 0;
  double mean_evals_to_fallback_best = 0.0;
  double mean_fallback_evals_to_best = 0.0;
  double sample_efficiency = 0.0;
  double mean_best_objective = 0.0;
  double mean_fallback_best_objective = 0.0;
  double mean_optimizer_seconds = 0.0;
  double mean_fallback_optimizer_seconds = 0.0;
  bool identical_at_q1 = false;
};

SeriesEntry MakeEntry(const std::string& aware_key,
                      const std::string& fallback_key, int batch_size,
                      const CellResult& aware, const CellResult& fallback) {
  SeriesEntry entry;
  entry.optimizer = aware_key;
  entry.fallback = fallback_key;
  entry.batch_size = batch_size;
  double target = fallback.mean_curve.back();
  entry.mean_fallback_evals_to_best =
      EvalsToReach(fallback.mean_curve, target);
  entry.mean_evals_to_fallback_best = EvalsToReach(aware.mean_curve, target);
  entry.sample_efficiency = entry.mean_fallback_evals_to_best /
                            entry.mean_evals_to_fallback_best;
  entry.mean_best_objective = aware.mean_curve.back();
  entry.mean_fallback_best_objective = target;
  entry.mean_optimizer_seconds = aware.mean_optimizer_seconds;
  entry.mean_fallback_optimizer_seconds = fallback.mean_optimizer_seconds;
  if (batch_size == 1) {
    entry.identical_at_q1 = aware.mean_curve == fallback.mean_curve;
  }
  return entry;
}

}  // namespace
}  // namespace llamatune

int main(int argc, char** argv) {
  using namespace llamatune;

  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--iterations=", 13) == 0) {
      config.iterations = std::atoi(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--seeds=", 8) == 0) {
      config.seeds = std::atoi(argv[i] + 8);
    }
  }

  // The sequential-fallback SMAC arm: diversification disabled, so
  // SuggestBatch is n successive Suggest() calls. The registry is
  // open — register the arm instead of special-casing the harness.
  if (!OptimizerRegistry::Global().Contains("smac-seq")) {
    OptimizerRegistry::Global().Register(
        "smac-seq",
        [](const SearchSpace& space,
           uint64_t seed) -> Result<std::unique_ptr<Optimizer>> {
          SmacOptions options;
          options.batch_min_distance = 0.0;
          return std::unique_ptr<Optimizer>(
              new SmacOptimizer(space, options, seed));
        });
  }

  struct Family {
    const char* fallback;
    std::vector<const char*> aware;
  };
  const std::vector<Family> families = {
      {"gpbo", {"gpbo-qei", "gpbo-lp"}},
      {"smac-seq", {"smac"}},
  };
  const std::vector<int> batch_sizes = {1, 2, 4, 8};

  std::vector<SeriesEntry> series;
  for (const Family& family : families) {
    for (int q : batch_sizes) {
      std::printf("[batch] %s fallback, q=%d (%d iterations, %d seeds)...\n",
                  family.fallback, q, config.iterations, config.seeds);
      CellResult fallback = RunCell(config, family.fallback, q);
      for (const char* aware_key : family.aware) {
        std::printf("[batch] %s, q=%d...\n", aware_key, q);
        CellResult aware = RunCell(config, aware_key, q);
        series.push_back(
            MakeEntry(aware_key, family.fallback, q, aware, fallback));
      }
    }
  }

  FILE* json = std::fopen("BENCH_batch.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_batch.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"batch\",\n");
  std::fprintf(json,
               "  \"config\": {\"iterations\": %d, \"seeds\": %d, "
               "\"base_seed\": %llu, \"workload\": \"tpcc\", "
               "\"adapter\": \"hesbo8\", \"noise_sigma\": 0.0},\n",
               config.iterations, config.seeds,
               static_cast<unsigned long long>(config.base_seed));
  std::fprintf(json, "  \"series\": [\n");
  for (size_t i = 0; i < series.size(); ++i) {
    const SeriesEntry& e = series[i];
    std::fprintf(
        json,
        "    {\"optimizer\": \"%s\", \"fallback\": \"%s\", "
        "\"batch_size\": %d, \"mean_evals_to_fallback_best\": %.2f, "
        "\"mean_fallback_evals_to_best\": %.2f, "
        "\"sample_efficiency\": %.3f, \"mean_best_objective\": %.6f, "
        "\"mean_fallback_best_objective\": %.6f, "
        "\"mean_optimizer_seconds\": %.4f, "
        "\"mean_fallback_optimizer_seconds\": %.4f%s}%s\n",
        e.optimizer.c_str(), e.fallback.c_str(), e.batch_size,
        e.mean_evals_to_fallback_best, e.mean_fallback_evals_to_best,
        e.sample_efficiency, e.mean_best_objective,
        e.mean_fallback_best_objective, e.mean_optimizer_seconds,
        e.mean_fallback_optimizer_seconds,
        e.batch_size == 1
            ? (e.identical_at_q1 ? ", \"identical_at_q1\": true"
                                 : ", \"identical_at_q1\": false")
            : "",
        i + 1 < series.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);

  for (const SeriesEntry& e : series) {
    std::printf(
        "[batch] %-9s q=%d  evals-to-fallback-best %6.2f (fallback %6.2f, "
        "efficiency %.2fx)  best %.4f vs %.4f  opt %.3fs vs %.3fs%s\n",
        e.optimizer.c_str(), e.batch_size, e.mean_evals_to_fallback_best,
        e.mean_fallback_evals_to_best, e.sample_efficiency,
        e.mean_best_objective, e.mean_fallback_best_objective,
        e.mean_optimizer_seconds, e.mean_fallback_optimizer_seconds,
        e.batch_size == 1 ? (e.identical_at_q1 ? "  [q1 identical]"
                                               : "  [q1 DIVERGED]")
                          : "");
  }
  std::printf("[batch] wrote BENCH_batch.json\n");
  return 0;
}
