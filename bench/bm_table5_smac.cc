// Reproduces paper Table 5 (LlamaTune vs vanilla SMAC, throughput, six
// workloads), Figure 9 (best-throughput convergence curves for YCSB-A,
// TPC-C, Twitter) and Figure 10 (iteration-equivalence mapping).

#include "bench/bench_common.h"

using namespace llamatune;
using namespace llamatune::bench;
using namespace llamatune::harness;

int main() {
  PrintPaperNote("Table 5",
                 "avg +7.13% final tput, ~5.62x mean time-to-optimal; "
                 "YCSB-B +20.85%, TPC-C 11.0x");

  std::vector<ComparisonRow> rows;
  std::vector<std::string> fig9_labels;
  std::vector<CurveSummary> fig9_smac, fig9_llama;
  std::vector<std::string> fig10_labels;
  std::vector<std::vector<int>> fig10_mappings;

  for (const auto& workload : dbsim::AllWorkloads()) {
    PairResult pair = RunPair(PaperSpec(workload));
    rows.push_back({workload.name, pair.comparison});

    CurveSummary base = SummarizeCurves(pair.baseline.measured_curves);
    CurveSummary treat = SummarizeCurves(pair.treatment.measured_curves);
    if (workload.name == "YCSB-A" || workload.name == "TPC-C" ||
        workload.name == "Twitter") {
      fig9_labels.push_back("SMAC " + workload.name);
      fig9_smac.push_back(base);
      fig9_labels.push_back("LlamaTune " + workload.name);
      fig9_llama.push_back(treat);
    }
    fig10_labels.push_back(workload.name);
    fig10_mappings.push_back(
        ConvergenceMapping(SummarizeCurves(pair.treatment.objective_curves),
                           SummarizeCurves(pair.baseline.objective_curves)));
  }

  PrintComparisonTable(
      "Table 5: LlamaTune (HeSBO-16 + SVB 20% + K=10000) vs vanilla SMAC",
      "Final Throughput Improvement", rows);

  for (size_t i = 0; i < fig9_smac.size(); ++i) {
    PrintCurves("Figure 9: best throughput (reqs/sec), " +
                    fig9_labels[2 * i].substr(5),
                {fig9_labels[2 * i], fig9_labels[2 * i + 1]},
                {fig9_smac[i], fig9_llama[i]});
  }

  PrintConvergenceMapping(
      "Figure 10: LlamaTune iteration -> earliest SMAC iteration with "
      "equal best performance",
      fig10_labels, fig10_mappings);
  return 0;
}
