// Reproduces paper Figure 11: component ablation of LlamaTune on
// YCSB-A, YCSB-B and TPC-C — vanilla SMAC vs HeSBO-16 only vs
// HeSBO-16 + special-value biasing vs the full pipeline (+ search
// space bucketization).

#include "bench/bench_common.h"

using namespace llamatune;
using namespace llamatune::bench;
using namespace llamatune::harness;

int main() {
  PrintPaperNote("Figure 11",
                 "all variants >= SMAC; SVB drives YCSB-B (2x -> 5.5x); "
                 "bucketization slightly hurts TPC-C but helps elsewhere");

  struct Variant {
    const char* label;
    const char* adapter_key;
  };
  // Each ablation arm is an adapter-registry key — dropping a stage
  // from the pipeline is dropping a component from the string.
  std::vector<Variant> variants = {
      {"Low-Dim (HeSBO-16)", "hesbo16"},
      {"Low-Dim + SVB", "hesbo16+svb0.2"},
      {"LlamaTune (full)", "hesbo16+svb0.2+bucket10000"},
  };

  for (const auto& workload :
       {dbsim::YcsbA(), dbsim::YcsbB(), dbsim::TpcC()}) {
    ExperimentSpec spec = PaperSpec(workload);
    spec.adapter_key = "identity";
    MultiSeedResult baseline = RunExperiment(spec);

    std::vector<std::string> labels = {"SMAC"};
    std::vector<CurveSummary> curves = {
        SummarizeCurves(baseline.measured_curves)};

    std::printf("\n%s:\n", workload.name.c_str());
    for (const Variant& variant : variants) {
      spec.adapter_key = variant.adapter_key;
      MultiSeedResult result = RunExperiment(spec);
      Comparison cmp = Compare(baseline, result);
      std::printf("  %-22s final %+6.2f%%  speedup %5.2fx [%3.0f iter]\n",
                  variant.label, cmp.mean_improvement_pct, cmp.mean_speedup,
                  cmp.mean_iterations_to_optimal);
      labels.push_back(variant.label);
      curves.push_back(SummarizeCurves(result.measured_curves));
    }
    PrintCurves("Figure 11: ablation on " + workload.name, labels, curves,
                20);
  }
  return 0;
}
