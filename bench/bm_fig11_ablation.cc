// Reproduces paper Figure 11: component ablation of LlamaTune on
// YCSB-A, YCSB-B and TPC-C — vanilla SMAC vs HeSBO-16 only vs
// HeSBO-16 + special-value biasing vs the full pipeline (+ search
// space bucketization).

#include "bench/bench_common.h"

using namespace llamatune;
using namespace llamatune::bench;
using namespace llamatune::harness;

int main() {
  PrintPaperNote("Figure 11",
                 "all variants >= SMAC; SVB drives YCSB-B (2x -> 5.5x); "
                 "bucketization slightly hurts TPC-C but helps elsewhere");

  struct Variant {
    const char* label;
    double svb;
    int64_t buckets;
  };
  std::vector<Variant> variants = {
      {"Low-Dim (HeSBO-16)", 0.0, 0},
      {"Low-Dim + SVB", 0.20, 0},
      {"LlamaTune (full)", 0.20, 10000},
  };

  for (const auto& workload :
       {dbsim::YcsbA(), dbsim::YcsbB(), dbsim::TpcC()}) {
    ExperimentSpec spec = PaperSpec(workload);
    spec.use_llamatune = false;
    MultiSeedResult baseline = RunExperiment(spec);

    std::vector<std::string> labels = {"SMAC"};
    std::vector<CurveSummary> curves = {
        SummarizeCurves(baseline.measured_curves)};

    std::printf("\n%s:\n", workload.name.c_str());
    spec.use_llamatune = true;
    for (const Variant& variant : variants) {
      spec.llamatune.special_value_bias = variant.svb;
      spec.llamatune.bucket_values = variant.buckets;
      MultiSeedResult result = RunExperiment(spec);
      Comparison cmp = Compare(baseline, result);
      std::printf("  %-22s final %+6.2f%%  speedup %5.2fx [%3.0f iter]\n",
                  variant.label, cmp.mean_improvement_pct, cmp.mean_speedup,
                  cmp.mean_iterations_to_optimal);
      labels.push_back(variant.label);
      curves.push_back(SummarizeCurves(result.measured_curves));
    }
    PrintCurves("Figure 11: ablation on " + workload.name, labels, curves,
                20);
  }
  return 0;
}
