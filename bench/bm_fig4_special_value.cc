// Reproduces paper Figure 4: throughput of YCSB-B as a function of
// backend_flush_after, showing the special value 0 (writeback
// disabled) breaking the numeric order of the knob.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/dbsim/simulated_postgres.h"

using namespace llamatune;
using namespace llamatune::bench;

int main() {
  PrintPaperNote("Figure 4",
                 "special value 0 yields ~60k reqs/sec; small regular "
                 "values are worst (~30k); large values recover partially");

  dbsim::SimulatedPostgres db(dbsim::YcsbB(), {});
  const ConfigSpace& space = db.config_space();
  int idx = space.IndexOf("backend_flush_after");

  std::printf("\n=== Figure 4: YCSB-B throughput vs backend_flush_after ===\n");
  std::printf("%-22s %s\n", "backend_flush_after", "throughput (reqs/sec)");
  for (double bfa :
       {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 192.0, 256.0}) {
    Configuration config = space.DefaultConfiguration();
    config[idx] = bfa;
    auto out = db.RunNoiseless(config);
    std::printf("%-22.0f %10.0f%s\n", bfa, out.throughput,
                bfa == 0.0 ? "   <- special value (writeback disabled)" : "");
  }

  // The paper's probability argument (§4.1): chance of hitting the
  // special value within 10 uniform init samples, without biasing.
  double p_plain = 1.0 - std::pow(256.0 / 257.0, 10.0);
  double p_svb = 1.0 - std::pow(0.8, 10.0);
  std::printf(
      "\nP(special value sampled at least once in 10 init samples):\n"
      "  uniform sampling: %.1f%%   with 20%% SVB: %.1f%%\n",
      100.0 * p_plain, 100.0 * p_svb);
  return 0;
}
