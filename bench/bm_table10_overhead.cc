// Reproduces paper Table 10: optimizer computational overhead (time
// spent in Suggest + Observe over a 100-iteration session, excluding
// workload runs) for SMAC, GP-BO and DDPG, on the full 90-knob space
// vs the LlamaTune 16-dim space.
//
// Two views: (a) google-benchmark microbenchmarks of one model-based
// suggestion at a 50-observation history; (b) whole-session totals
// matching the paper's table.

#include <benchmark/benchmark.h>

#include <memory>
#include <utility>

#include "src/core/adapter_registry.h"

#include "src/dbsim/metrics.h"
#include "src/dbsim/simulated_postgres.h"
#include "src/harness/experiment.h"
#include "src/optimizer/ddpg.h"
#include "src/optimizer/gp_bo.h"
#include "src/optimizer/smac.h"
#include "src/sampling/uniform.h"

namespace llamatune {
namespace {

SearchSpace SpaceFor(bool llamatune_space) {
  if (llamatune_space) {
    std::vector<SearchDim> dims(16, SearchDim::Continuous(-1.0, 1.0, 10000));
    return SearchSpace(std::move(dims));
  }
  ConfigSpace catalog = dbsim::PostgresV96Catalog();
  std::unique_ptr<SpaceAdapter> adapter =
      std::move(AdapterRegistry::Global().Create("identity", &catalog, 1))
          .ValueOrDie();
  return adapter->search_space();
}

template <typename Opt>
void WarmUp(Opt* opt, const SearchSpace& space, int n, Rng* rng) {
  for (int i = 0; i < n; ++i) {
    auto p = UniformSample(space, rng);
    opt->Observe(p, rng->Uniform(0.0, 1.0));
  }
}

void BM_SmacSuggest(benchmark::State& state) {
  SearchSpace space = SpaceFor(state.range(0) == 1);
  SmacOptimizer opt(space, {}, 1);
  Rng rng(2);
  WarmUp(&opt, space, 50, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt.Suggest());
  }
}
BENCHMARK(BM_SmacSuggest)->Arg(0)->Arg(1)->ArgName("llamatune");

void BM_GpBoSuggest(benchmark::State& state) {
  SearchSpace space = SpaceFor(state.range(0) == 1);
  GpBoOptimizer opt(space, {}, 1);
  Rng rng(2);
  WarmUp(&opt, space, 50, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt.Suggest());
  }
}
BENCHMARK(BM_GpBoSuggest)->Arg(0)->Arg(1)->ArgName("llamatune");

void BM_DdpgSuggestObserve(benchmark::State& state) {
  SearchSpace space = SpaceFor(state.range(0) == 1);
  DdpgOptions options;
  options.state_dim = dbsim::kNumMetrics;
  DdpgOptimizer opt(space, options, 1);
  Rng rng(2);
  std::vector<double> metrics(dbsim::kNumMetrics, 0.5);
  opt.ObserveMetrics(metrics);
  WarmUp(&opt, space, 40, &rng);
  for (auto _ : state) {
    auto p = opt.Suggest();
    opt.ObserveMetrics(metrics);
    opt.Observe(p, rng.Uniform(0.0, 1.0));
  }
}
BENCHMARK(BM_DdpgSuggestObserve)->Arg(0)->Arg(1)->ArgName("llamatune");

// Whole-session optimizer time, Table 10 style.
void SessionOverheadReport() {
  std::printf(
      "\n=== Table 10: optimizer overhead over a 100-iteration session "
      "(seconds) ===\n");
  std::printf("%-10s %-12s %-12s %s\n", "Optimizer", "Baseline",
              "LlamaTune", "Reduction");
  using harness::ExperimentSpec;
  for (const char* key : {"smac", "gpbo", "ddpg"}) {
    ExperimentSpec spec;
    spec.workload = dbsim::YcsbA();
    spec.num_iterations = 100;
    spec.num_seeds = 1;
    spec.optimizer_key = key;
    spec.adapter_key = "identity";
    double base = harness::RunExperiment(spec).mean_optimizer_seconds;
    spec.adapter_key = "llamatune";
    double llama = harness::RunExperiment(spec).mean_optimizer_seconds;
    std::printf("%-10s %-12.3f %-12.3f %.0f%%\n", key, base, llama,
                base > 0 ? 100.0 * (1.0 - llama / base) : 0.0);
  }
  std::printf("(paper: SMAC -86%%, GP-BO -75%%, DDPG -12%%)\n");
}

}  // namespace
}  // namespace llamatune

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  llamatune::SessionOverheadReport();
  return 0;
}
