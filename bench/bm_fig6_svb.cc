// Reproduces paper Figure 6: effect of the special-value bias
// percentage (0/5/10/20/30%) on YCSB-A and YCSB-B when tuning the
// HeSBO-16 space with SMAC.

#include "bench/bench_common.h"

using namespace llamatune;
using namespace llamatune::bench;
using namespace llamatune::harness;

int main() {
  PrintPaperNote("Figure 6",
                 "YCSB-A: biasing roughly neutral; YCSB-B: gains grow with "
                 "bias up to 20%");

  for (const auto& workload : {dbsim::YcsbA(), dbsim::YcsbB()}) {
    ExperimentSpec spec = PaperSpec(workload);

    std::vector<std::string> labels;
    std::vector<CurveSummary> curves;
    MultiSeedResult baseline;
    for (double bias : {0.0, 0.05, 0.10, 0.20, 0.30}) {
      // Isolate SVB on the HeSBO-16 space (no bucketization): the
      // sweep is just a family of adapter keys.
      std::string key = "hesbo16";
      if (bias > 0.0) {
        char suffix[16];
        std::snprintf(suffix, sizeof(suffix), "+svb%g", bias);
        key += suffix;
      }
      spec.adapter_key = key;
      MultiSeedResult result = RunExperiment(spec);
      labels.push_back(bias == 0.0 ? "No SVB"
                                   : "SVB=" + std::to_string(
                                                  static_cast<int>(bias * 100)) +
                                         "%");
      curves.push_back(SummarizeCurves(result.measured_curves));
      if (bias == 0.0) {
        baseline = result;
      } else {
        Comparison cmp = Compare(baseline, result);
        std::printf("%s SVB=%2.0f%%: final %+.2f%% vs no biasing\n",
                    workload.name.c_str(), bias * 100,
                    cmp.mean_improvement_pct);
      }
    }
    PrintCurves("Figure 6: best throughput on " + workload.name +
                    " by special-value bias",
                labels, curves, 20);
  }
  return 0;
}
