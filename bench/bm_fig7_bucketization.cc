// Reproduces paper Figure 7: tuning the bucketized original space
// (every knob limited to K unique values) vs the raw space, on YCSB-A
// and YCSB-B with SMAC. Also reports the fraction of knobs affected
// per K (the paper's P% policy).

#include "bench/bench_common.h"
#include "src/lowdim/bucketizer.h"

using namespace llamatune;
using namespace llamatune::bench;
using namespace llamatune::harness;

int main() {
  PrintPaperNote("Figure 7",
                 "bucketized space reaches better configs faster for most K "
                 "(YCSB-B benefits most, K >= 5000)");

  ConfigSpace catalog = dbsim::PostgresV96Catalog();
  std::printf("\nKnobs affected by bucketization (of %d):\n",
              catalog.num_knobs());
  for (int64_t k : {1000, 5000, 10000, 20000}) {
    Bucketizer bucketizer(k);
    std::printf("  K=%6lld: %d knobs (%.0f%%)\n",
                static_cast<long long>(k),
                bucketizer.NumAffectedKnobs(catalog),
                100.0 * bucketizer.NumAffectedKnobs(catalog) /
                    catalog.num_knobs());
  }

  for (const auto& workload : {dbsim::YcsbA(), dbsim::YcsbB()}) {
    ExperimentSpec spec = PaperSpec(workload);

    std::vector<std::string> labels;
    std::vector<CurveSummary> curves;
    MultiSeedResult baseline;
    for (int64_t k : {0LL, 1000LL, 5000LL, 10000LL, 20000LL}) {
      // Identity space, bucketized per Fig. 7: "identity+bucket<K>".
      spec.adapter_key = k == 0 ? std::string("identity")
                                : "identity+bucket" + std::to_string(k);
      MultiSeedResult result = RunExperiment(spec);
      labels.push_back(k == 0 ? "No Bucketization"
                              : "K=" + std::to_string(k));
      curves.push_back(SummarizeCurves(result.measured_curves));
      if (k == 0) {
        baseline = result;
      } else {
        Comparison cmp = Compare(baseline, result);
        std::printf("%s K=%6lld: final %+.2f%% vs raw space\n",
                    workload.name.c_str(), static_cast<long long>(k),
                    cmp.mean_improvement_pct);
      }
    }
    PrintCurves(
        "Figure 7: best throughput on " + workload.name + " by bucket K",
        labels, curves, 20);
  }
  return 0;
}
