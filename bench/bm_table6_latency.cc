// Reproduces paper Table 6: LlamaTune vs vanilla SMAC when optimizing
// 95th-percentile latency at a fixed request rate (half the best
// throughput of the throughput experiments), for TPC-C, SEATS and
// Twitter.

#include "bench/bench_common.h"

using namespace llamatune;
using namespace llamatune::bench;
using namespace llamatune::harness;

int main() {
  PrintPaperNote("Table 6",
                 "avg ~9.68% better final tail latency, ~1.96x "
                 "time-to-optimal");

  struct Cell {
    dbsim::WorkloadSpec workload;
    double rate;  // fixed request rate: ~half of our best throughput
  };
  // The paper uses 2000/8000/60000 on its testbed; these are the
  // equivalent half-of-best-throughput rates for the simulator.
  std::vector<Cell> cells = {{dbsim::TpcC(), 1200.0},
                             {dbsim::Seats(), 4800.0},
                             {dbsim::Twitter(), 65000.0}};

  std::vector<ComparisonRow> rows;
  for (const Cell& cell : cells) {
    ExperimentSpec spec = PaperSpec(cell.workload);
    spec.target = dbsim::TuningTarget::kP95Latency;
    spec.fixed_rate = cell.rate;
    PairResult pair = RunPair(spec);
    rows.push_back({cell.workload.name, pair.comparison});
    std::printf("%s @ %.0f req/s: default p95 %.2f ms, SMAC best %.2f ms, "
                "LlamaTune best %.2f ms\n",
                cell.workload.name.c_str(), cell.rate,
                pair.baseline.sessions[0].default_performance,
                pair.baseline.mean_final_measured,
                pair.treatment.mean_final_measured);
  }

  // Under the negated-objective convention the improvement column is
  // directly the tail-latency reduction percentage.
  PrintComparisonTable("Table 6: 95th-percentile latency tuning",
                       "Final p95 Latency Reduction", rows);
  return 0;
}
