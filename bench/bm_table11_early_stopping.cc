// Reproduces paper Table 11 (appendix): three early-stopping policies
// (min-improvement %, patience) applied to LlamaTune sessions, against
// the full-budget vanilla SMAC optimum, for all six workloads.

#include "bench/bench_common.h"

using namespace llamatune;
using namespace llamatune::bench;
using namespace llamatune::harness;

int main() {
  PrintPaperNote("Table 11",
                 "(1%,10) stops around iter 29 with near-baseline or "
                 "better perf; (1%,20) recovers near-full gains by ~iter 70");

  struct Policy {
    double min_improvement_pct;
    int patience;
  };
  std::vector<Policy> policies = {{0.5, 10}, {1.0, 10}, {1.0, 20}};

  std::printf("\n=== Table 11: early-stopped LlamaTune vs full-budget SMAC "
              "===\n");
  std::printf("%-10s", "Workload");
  for (const Policy& p : policies) {
    std::printf(" | (%.1f%%, %2d)  perf%%  iters", p.min_improvement_pct,
                p.patience);
  }
  std::printf("\n");

  for (const auto& workload : dbsim::AllWorkloads()) {
    // Full-budget vanilla SMAC baseline.
    ExperimentSpec base_spec = PaperSpec(workload);
    MultiSeedResult baseline = RunExperiment(base_spec);
    double baseline_final = baseline.mean_final_objective;

    std::printf("%-10s", workload.name.c_str());
    for (const Policy& policy : policies) {
      ExperimentSpec spec = PaperSpec(workload);
      spec.adapter_key = "llamatune";
      spec.early_stopping =
          EarlyStoppingPolicy(policy.min_improvement_pct, policy.patience);
      MultiSeedResult result = RunExperiment(spec);
      double iters = 0.0;
      for (const auto& session : result.sessions) {
        iters += session.iterations_run;
      }
      iters /= result.sessions.size();
      double improvement = (result.mean_final_objective - baseline_final) /
                           std::abs(baseline_final) * 100.0;
      std::printf(" | %12s %+6.2f  %5.1f", "", improvement, iters);
    }
    std::printf("\n");
  }
  return 0;
}
