// Racing evaluation bench: multi-fidelity successive halving vs the
// fixed-budget session on the noisy TPC-C DES grid (ISSUE 9 / ROADMAP
// "multi-fidelity racing evaluation").
//
// Per seed, two cells run to completion on the identical simulator:
//
//   fixed   — the classic session: --fixed-iters full-fidelity
//             measurements, one committed observation each.
//   racing  — --races races (cohort 8, rungs 3, min fidelity 0.25,
//             eta 2, 95% CI elimination): each race screens 8
//             candidates through short runs and commits one champion.
//
// "Work" is simulated measurement work in full-run units (each
// committed result contributes its fidelity; the DES actually runs
// round(transactions * fidelity) transactions, so this is real
// simulated effort, not an accounting fiction). "Quality" is the
// noise-free model throughput of the best configuration found, so a
// win measures configurations, not lucky noise draws.
//
// Targets (pinned by tests/racing_test.cc on the same grid):
//   work:    racing <= 0.5x the fixed-budget session's work
//   quality: racing within 2% of the fixed-budget best-found
//
// Every cell is bit-for-bit deterministic for a fixed seed at any
// thread count, so all emitted metrics use the deterministic
// regression threshold.
//
// Emits machine-readable BENCH_racing.json in the working directory.
//
// Usage: bm_racing [--seeds=N] [--fixed-iters=N] [--races=N]
//   (defaults 5 / 40 / 3; CI smoke and the committed baseline must use
//   identical settings — metric names embed them.)

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace llamatune {
namespace {

struct Args {
  int seeds = 5;
  int fixed_iters = 40;
  int races = 5;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seeds=", 8) == 0) {
      args.seeds = std::atoi(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--fixed-iters=", 14) == 0) {
      args.fixed_iters = std::atoi(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--races=", 8) == 0) {
      args.races = std::atoi(argv[i] + 8);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
    }
  }
  return args;
}

int Main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  bench::PrintPaperNote(
      "racing",
      "successive halving / Hyperband-style racing screens many "
      "configurations with short runs and spends full measurements on "
      "survivors only");

  struct SeedRow {
    uint64_t seed = 0;
    double fixed_work = 0.0, racing_work = 0.0;
    double fixed_true = 0.0, racing_true = 0.0;
    double fixed_measured = 0.0, racing_measured = 0.0;
  };
  std::vector<SeedRow> rows;
  double sum_work_ratio = 0.0;
  double sum_quality_ratio = 0.0;
  for (int s = 0; s < args.seeds; ++s) {
    uint64_t seed = bench::kRacingGridBaseSeed + s;
    bench::RacingCell fixed =
        bench::RunRacingGridCell(seed, args.fixed_iters, /*racing=*/false);
    bench::RacingCell racing =
        bench::RunRacingGridCell(seed, args.races, /*racing=*/true);
    SeedRow row;
    row.seed = seed;
    row.fixed_work = fixed.session.simulated_work;
    row.racing_work = racing.session.simulated_work;
    row.fixed_true = fixed.true_best;
    row.racing_true = racing.true_best;
    row.fixed_measured = fixed.session.best_performance;
    row.racing_measured = racing.session.best_performance;
    sum_work_ratio += row.racing_work / row.fixed_work;
    sum_quality_ratio += row.fixed_true / row.racing_true;
    std::printf(
        "seed %llu: fixed best %.1f txn/s (work %.2f) | racing best %.1f "
        "txn/s (work %.2f) | work ratio %.3f\n",
        static_cast<unsigned long long>(seed), row.fixed_true,
        row.fixed_work, row.racing_true, row.racing_work,
        row.racing_work / row.fixed_work);
    rows.push_back(row);
  }
  double work_ratio = sum_work_ratio / args.seeds;
  double quality_ratio = sum_quality_ratio / args.seeds;
  std::printf(
      "mean work ratio %.3f (target <= 0.5) | mean fixed/racing best-found "
      "%.4f (target <= 1.02)\n",
      work_ratio, quality_ratio);

  FILE* json = std::fopen("BENCH_racing.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_racing.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"racing\",\n");
  std::fprintf(json,
               "  \"config\": {\"seeds\": %d, \"fixed_iters\": %d, "
               "\"races\": %d, \"cohort\": %d, \"rungs\": %d, "
               "\"min_fidelity\": %g, \"eta\": %g, \"ci_z\": %g, "
               "\"transactions\": %d},\n",
               args.seeds, args.fixed_iters, args.races,
               bench::RacingGridOptions().cohort,
               bench::RacingGridOptions().rungs,
               bench::RacingGridOptions().min_fidelity,
               bench::RacingGridOptions().eta,
               bench::RacingGridOptions().ci_z,
               bench::kRacingGridTransactions);
  std::fprintf(json, "  \"seeds\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const SeedRow& row = rows[i];
    std::fprintf(json,
                 "    {\"seed\": %llu, \"fixed_work\": %.17g, "
                 "\"racing_work\": %.17g, \"fixed_true_best\": %.17g, "
                 "\"racing_true_best\": %.17g, \"fixed_measured_best\": "
                 "%.17g, \"racing_measured_best\": %.17g}%s\n",
                 static_cast<unsigned long long>(row.seed), row.fixed_work,
                 row.racing_work, row.fixed_true, row.racing_true,
                 row.fixed_measured, row.racing_measured,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"summary\": {\"work_ratio\": %.17g, "
               "\"fixed_over_racing_best\": %.17g}\n", work_ratio,
               quality_ratio);
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("wrote BENCH_racing.json\n");
  return 0;
}

}  // namespace
}  // namespace llamatune

int main(int argc, char** argv) { return llamatune::Main(argc, argv); }
