#pragma once

// Shared plumbing for the paper-reproduction bench binaries: standard
// session settings (paper §6.1: 100 iterations, first 10 LHS, 5 seeds)
// and a baseline-vs-LlamaTune pair runner.

#include <cstdio>
#include <string>
#include <vector>

#include "src/harness/experiment.h"
#include "src/harness/report.h"

namespace llamatune {
namespace bench {

inline harness::ExperimentSpec PaperSpec(const dbsim::WorkloadSpec& workload) {
  harness::ExperimentSpec spec;
  spec.workload = workload;
  spec.num_iterations = 100;
  spec.num_seeds = 5;
  spec.base_seed = 42;
  return spec;
}

struct PairResult {
  harness::MultiSeedResult baseline;
  harness::MultiSeedResult treatment;
  harness::Comparison comparison;
};

/// Runs vanilla-optimizer baseline vs LlamaTune treatment on one
/// workload (identical settings otherwise). Both cells go through the
/// adapter registry: "identity" vs the "llamatune" pipeline alias.
inline PairResult RunPair(harness::ExperimentSpec spec) {
  PairResult out;
  spec.adapter_key = "identity";
  out.baseline = harness::RunExperiment(spec);
  spec.adapter_key = "llamatune";
  out.treatment = harness::RunExperiment(spec);
  out.comparison = harness::Compare(out.baseline, out.treatment);
  return out;
}

inline void PrintPaperNote(const char* experiment, const char* paper_result) {
  std::printf("[%s] paper reference: %s\n", experiment, paper_result);
}

}  // namespace bench
}  // namespace llamatune
