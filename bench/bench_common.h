#pragma once

// Shared plumbing for the paper-reproduction bench binaries: standard
// session settings (paper §6.1: 100 iterations, first 10 LHS, 5 seeds),
// a baseline-vs-LlamaTune pair runner, and the fixed-seed batch-quality
// simulator grid.

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/adapter_registry.h"
#include "src/core/tuning_session.h"
#include "src/dbsim/simulated_postgres.h"
#include "src/dbsim/workloads.h"
#include "src/harness/experiment.h"
#include "src/harness/report.h"
#include "src/optimizer/optimizer_registry.h"

namespace llamatune {
namespace bench {

inline harness::ExperimentSpec PaperSpec(const dbsim::WorkloadSpec& workload) {
  harness::ExperimentSpec spec;
  spec.workload = workload;
  spec.num_iterations = 100;
  spec.num_seeds = 5;
  spec.base_seed = 42;
  return spec;
}

struct PairResult {
  harness::MultiSeedResult baseline;
  harness::MultiSeedResult treatment;
  harness::Comparison comparison;
};

/// Runs vanilla-optimizer baseline vs LlamaTune treatment on one
/// workload (identical settings otherwise). Both cells go through the
/// adapter registry: "identity" vs the "llamatune" pipeline alias.
inline PairResult RunPair(harness::ExperimentSpec spec) {
  PairResult out;
  spec.adapter_key = "identity";
  out.baseline = harness::RunExperiment(spec);
  spec.adapter_key = "llamatune";
  out.treatment = harness::RunExperiment(spec);
  out.comparison = harness::Compare(out.baseline, out.treatment);
  return out;
}

inline void PrintPaperNote(const char* experiment, const char* paper_result) {
  std::printf("[%s] paper reference: %s\n", experiment, paper_result);
}

/// \name The fixed-seed batch-quality simulator grid
///
/// TPC-C on the noiseless simulator (noise_sigma = 0, so a best-seen
/// value measures the configurations found, not lucky noise draws)
/// through the hesbo8 projection, seeds kBatchGridBaseSeed + s. One
/// definition shared by bench/bm_batch.cc (which CI regression-tracks
/// via BENCH_batch.json) and tests/batch_quality_test.cc (which pins
/// the ISSUE 4 acceptance bound on it), so the pinned grid and the
/// tracked grid cannot drift apart.
/// @{

constexpr uint64_t kBatchGridBaseSeed = 42;

/// Runs one (optimizer, seed) cell of the grid to completion.
inline SessionResult RunBatchGridCell(const std::string& optimizer_key,
                                      uint64_t seed, int iterations,
                                      int batch_size) {
  dbsim::SimulatedPostgresOptions db_options;
  db_options.noise_sigma = 0.0;
  db_options.noise_seed = seed;
  dbsim::SimulatedPostgres objective(dbsim::TpcC(), db_options);
  std::unique_ptr<SpaceAdapter> adapter =
      std::move(AdapterRegistry::Global().Create(
                    "hesbo8", &objective.config_space(), seed))
          .ValueOrDie();
  std::unique_ptr<Optimizer> optimizer =
      std::move(OptimizerRegistry::Global().Create(
                    optimizer_key, adapter->search_space(), seed))
          .ValueOrDie();
  SessionOptions options;
  options.num_iterations = iterations;
  options.batch_size = batch_size;
  TuningSession session(&objective, adapter.get(), optimizer.get(), options);
  return session.Run();
}

/// 1-based evaluation count at which the best-so-far `curve` first
/// reaches `target`; curve size + 1 when it never does.
inline int EvalsToReach(const std::vector<double>& curve, double target) {
  for (size_t i = 0; i < curve.size(); ++i) {
    if (curve[i] >= target) return static_cast<int>(i) + 1;
  }
  return static_cast<int>(curve.size()) + 1;
}

/// @}

/// \name The fixed-seed racing grid (noisy TPC-C DES)
///
/// TPC-C through the discrete-event engine — run-to-run noise is
/// measured from the sampled transaction stream, so a short (low
/// fidelity) run is genuinely noisier, not synthetically so — with the
/// hesbo8 projection and random search. Random search isolates what
/// racing actually changes: both cells draw candidates from the same
/// RNG stream (racing's 5 SuggestBatch(8) draws are the fixed cell's
/// first 40 Suggest draws), so the comparison measures measurement
/// *allocation* — full runs for everyone vs short screening runs with
/// full runs for survivors — on an identical candidate pool, free of
/// the model-feedback confound a learning optimizer would add. One
/// definition shared by bench/bm_racing.cc (which CI regression-tracks
/// via BENCH_racing.json) and tests/racing_test.cc (which pins the
/// ISSUE 9 work/quality acceptance bound on it), so the pinned grid
/// and the tracked grid cannot drift apart. Every cell is bit-for-bit
/// deterministic at any thread count.
/// @{

constexpr uint64_t kRacingGridBaseSeed = 42;
/// Transactions per full-fidelity DES run. Short enough for CI, long
/// enough that fidelity-0.25 runs keep a usable signal-to-noise ratio.
constexpr int kRacingGridTransactions = 6000;

inline RacingOptions RacingGridOptions() {
  RacingOptions racing;
  racing.cohort = 8;
  racing.rungs = 3;
  racing.min_fidelity = 0.125;
  racing.eta = 2.0;
  racing.ci_z = 1.96;
  return racing;
}

struct RacingCell {
  SessionResult session;
  /// Noise-free model throughput of the best configuration found —
  /// measures the configuration, not a lucky noise draw.
  double true_best = 0.0;
};

/// Runs one (seed, racing on/off) cell of the grid to completion.
inline RacingCell RunRacingGridCell(uint64_t seed, int iterations,
                                    bool racing) {
  dbsim::SimulatedPostgresOptions db_options;
  db_options.engine = dbsim::EngineKind::kDiscreteEvent;
  db_options.des_transactions = kRacingGridTransactions;
  db_options.noise_seed = seed;
  dbsim::SimulatedPostgres objective(dbsim::TpcC(), db_options);
  std::unique_ptr<SpaceAdapter> adapter =
      std::move(AdapterRegistry::Global().Create(
                    "hesbo8", &objective.config_space(), seed))
          .ValueOrDie();
  std::unique_ptr<Optimizer> optimizer =
      std::move(OptimizerRegistry::Global().Create(
                    "random", adapter->search_space(), seed))
          .ValueOrDie();
  SessionOptions options;
  options.num_iterations = iterations;
  if (racing) options.racing = RacingGridOptions();
  TuningSession session(&objective, adapter.get(), optimizer.get(), options);
  RacingCell cell;
  cell.session = session.Run();
  cell.true_best =
      objective.RunNoiseless(cell.session.best_config).throughput;
  return cell;
}

/// @}

}  // namespace bench
}  // namespace llamatune
