#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/adapter_registry.h"
#include "src/core/tuning_session.h"
#include "src/dbsim/simulated_postgres.h"
#include "src/dbsim/workloads.h"
#include "src/harness/tuner.h"
#include "src/optimizer/optimizer_registry.h"
#include "src/optimizer/random_search.h"

namespace llamatune {
namespace {

// ---------------------------------------------------------------------------
// Oracle: a verbatim replica of the pre-ask/tell TuningSession's Run
// loop (the push model this PR re-implemented over Ask/Tell). The
// equivalence tests below pin the redesigned session to this replica
// bit-for-bit across a (seed, optimizer, adapter, batch) grid, so the
// API inversion provably preserved behavior.
// ---------------------------------------------------------------------------
class LegacyTuningSession {
 public:
  LegacyTuningSession(ObjectiveFunction* objective, SpaceAdapter* adapter,
                      Optimizer* optimizer, SessionOptions options)
      : objective_(objective),
        adapter_(adapter),
        optimizer_(optimizer),
        options_(std::move(options)) {}

  SessionResult Run() {
    if (options_.early_stopping.has_value()) options_.early_stopping->Reset();
    while (Step()) {
    }
    SessionResult result;
    result.kb = kb_;
    result.default_performance = default_performance_;
    result.iterations_run = iterations_run_;
    result.optimizer_seconds = 0.0;
    int best = kb_.BestIndex();
    if (best >= 0) {
      result.best_performance = kb_.record(best).measured;
      result.best_config = kb_.record(best).config;
    }
    return result;
  }

  bool Step() {
    if (stopped_) return false;
    if (!baseline_done_) return StepBaseline();

    if (iterations_run_ >= options_.num_iterations) {
      stopped_ = true;
      return false;
    }

    if (options_.batch_size > 1) return StepBatch();

    std::vector<double> point = optimizer_->Suggest();
    Configuration config = adapter_->Project(point);
    EvalResult result = objective_->Evaluate(config);

    double objective_value = 0.0;
    double measured = 0.0;
    ScoreResult(result, &objective_value, &measured);
    optimizer_->ObserveMetrics(result.metrics);
    optimizer_->Observe(point, objective_value);
    AppendRecord(point, config, result, objective_value, measured);
    return true;
  }

 private:
  double Penalized() const {
    if (worst_objective_ >= 0.0) {
      return worst_objective_ / options_.crash_penalty_divisor;
    }
    return worst_objective_ * options_.crash_penalty_divisor;
  }

  bool StepBaseline() {
    const bool maximize = objective_->maximize();
    Configuration def = objective_->config_space().DefaultConfiguration();
    EvalResult result = objective_->Evaluate(def);
    double objective_value = maximize ? result.value : -result.value;
    default_performance_ = result.value;
    worst_objective_ = objective_value;
    optimizer_->ObserveMetrics(result.metrics);
    baseline_done_ = true;
    return true;
  }

  void ScoreResult(const EvalResult& result, double* objective_value,
                   double* measured) {
    const bool maximize = objective_->maximize();
    if (result.crashed) {
      *objective_value = Penalized();
      *measured = maximize ? *objective_value : -*objective_value;
    } else {
      *objective_value = maximize ? result.value : -result.value;
      *measured = result.value;
      worst_objective_ = std::min(worst_objective_, *objective_value);
    }
  }

  void AppendRecord(const std::vector<double>& point,
                    const Configuration& config, const EvalResult& result,
                    double objective_value, double measured) {
    IterationRecord record;
    record.iteration = ++iterations_run_;
    record.point = point;
    record.config = config;
    record.measured = measured;
    record.objective = objective_value;
    record.crashed = result.crashed;
    record.metrics = result.metrics;
    kb_.Add(std::move(record));

    if (options_.early_stopping.has_value()) {
      double best = kb_.BestSoFarObjective().back();
      if (options_.early_stopping->Update(best)) {
        stopped_ = true;
      }
    }
    if (iterations_run_ >= options_.num_iterations) stopped_ = true;
  }

  bool StepBatch() {
    int n = std::min(options_.batch_size,
                     options_.num_iterations - iterations_run_);
    std::vector<std::vector<double>> points = optimizer_->SuggestBatch(n);
    if (static_cast<int>(points.size()) > n) points.resize(n);
    n = static_cast<int>(points.size());
    if (n == 0) {
      stopped_ = true;
      return false;
    }

    std::vector<Configuration> configs;
    configs.reserve(n);
    for (const auto& point : points) {
      configs.push_back(adapter_->Project(point));
    }

    if (!clone_pool_built_) {
      clone_pool_built_ = true;
      for (int i = 0; i < options_.batch_size; ++i) {
        std::unique_ptr<ObjectiveFunction> clone = objective_->Clone();
        if (clone == nullptr) {
          clone_pool_.clear();
          break;
        }
        clone_pool_.push_back(std::move(clone));
      }
    }

    std::vector<EvalResult> results(n);
    if (clone_pool_.empty()) {
      for (int i = 0; i < n; ++i) {
        results[i] = objective_->Evaluate(configs[i]);
      }
    } else {
      ThreadPool::Global().ParallelFor(
          n,
          [this, &configs, &results](int i) {
            ObjectiveFunction* instance =
                clone_pool_[i % clone_pool_.size()].get();
            results[i] = instance->Evaluate(configs[i]);
          },
          options_.num_threads);
    }

    std::vector<double> values(n);
    std::vector<double> measured(n);
    for (int i = 0; i < n; ++i) {
      ScoreResult(results[i], &values[i], &measured[i]);
    }
    for (int i = 0; i < n; ++i) {
      optimizer_->ObserveMetrics(results[i].metrics);
    }
    optimizer_->ObserveBatch(points, values);
    for (int i = 0; i < n; ++i) {
      AppendRecord(points[i], configs[i], results[i], values[i], measured[i]);
    }
    return true;
  }

  ObjectiveFunction* objective_;
  SpaceAdapter* adapter_;
  Optimizer* optimizer_;
  SessionOptions options_;
  KnowledgeBase kb_;
  std::vector<std::unique_ptr<ObjectiveFunction>> clone_pool_;
  bool clone_pool_built_ = false;
  double default_performance_ = 0.0;
  double worst_objective_ = 0.0;
  bool baseline_done_ = false;
  bool stopped_ = false;
  int iterations_run_ = 0;
};

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

::testing::AssertionResult ResultsBitIdentical(const SessionResult& a,
                                               const SessionResult& b) {
  if (a.iterations_run != b.iterations_run) {
    return ::testing::AssertionFailure()
           << "iterations_run " << a.iterations_run << " vs "
           << b.iterations_run;
  }
  if (!SameBits(a.default_performance, b.default_performance)) {
    return ::testing::AssertionFailure()
           << "default_performance " << a.default_performance << " vs "
           << b.default_performance;
  }
  if (!SameBits(a.best_performance, b.best_performance)) {
    return ::testing::AssertionFailure()
           << "best_performance " << a.best_performance << " vs "
           << b.best_performance;
  }
  if (!(a.best_config == b.best_config)) {
    return ::testing::AssertionFailure() << "best_config differs";
  }
  if (a.kb.size() != b.kb.size()) {
    return ::testing::AssertionFailure()
           << "kb size " << a.kb.size() << " vs " << b.kb.size();
  }
  for (int i = 0; i < a.kb.size(); ++i) {
    const IterationRecord& ra = a.kb.record(i);
    const IterationRecord& rb = b.kb.record(i);
    if (ra.iteration != rb.iteration || ra.crashed != rb.crashed ||
        !SameBits(ra.measured, rb.measured) ||
        !SameBits(ra.objective, rb.objective) ||
        ra.point.size() != rb.point.size() ||
        !(ra.config == rb.config) || ra.metrics.size() != rb.metrics.size()) {
      return ::testing::AssertionFailure() << "record " << i << " differs";
    }
    for (size_t j = 0; j < ra.point.size(); ++j) {
      if (!SameBits(ra.point[j], rb.point[j])) {
        return ::testing::AssertionFailure()
               << "record " << i << " point[" << j << "] differs";
      }
    }
    for (size_t j = 0; j < ra.metrics.size(); ++j) {
      if (!SameBits(ra.metrics[j], rb.metrics[j])) {
        return ::testing::AssertionFailure()
               << "record " << i << " metrics[" << j << "] differs";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

/// One fully wired component stack (objective + adapter + optimizer),
/// reconstructible identically for the legacy and redesigned sessions.
struct Stack {
  std::unique_ptr<ObjectiveFunction> objective;
  std::unique_ptr<SpaceAdapter> adapter;
  std::unique_ptr<Optimizer> optimizer;
};

Stack MakeSimStack(const std::string& optimizer_key,
                   const std::string& adapter_key, uint64_t seed) {
  Stack stack;
  dbsim::SimulatedPostgresOptions db_options;
  db_options.noise_seed = seed;
  stack.objective = std::make_unique<dbsim::SimulatedPostgres>(
      dbsim::YcsbA(), db_options);
  stack.adapter = std::move(AdapterRegistry::Global().Create(
                                adapter_key,
                                &stack.objective->config_space(), seed))
                      .ValueOrDie();
  stack.optimizer = std::move(OptimizerRegistry::Global().Create(
                                  optimizer_key,
                                  stack.adapter->search_space(), seed))
                        .ValueOrDie();
  return stack;
}

// ---------------------------------------------------------------------------
// Equivalence grid: Run() over ask/tell vs the pre-PR push loop.
// ---------------------------------------------------------------------------

struct GridCase {
  const char* optimizer_key;
  const char* adapter_key;
  uint64_t seed;
  int batch_size;
  int iterations;
};

class RunEquivalence : public ::testing::TestWithParam<GridCase> {};

TEST_P(RunEquivalence, BitForBitMatchesLegacyLoop) {
  const GridCase& c = GetParam();
  SessionOptions options;
  options.num_iterations = c.iterations;
  options.batch_size = c.batch_size;

  Stack legacy_stack = MakeSimStack(c.optimizer_key, c.adapter_key, c.seed);
  LegacyTuningSession legacy(legacy_stack.objective.get(),
                             legacy_stack.adapter.get(),
                             legacy_stack.optimizer.get(), options);
  SessionResult expected = legacy.Run();

  Stack stack = MakeSimStack(c.optimizer_key, c.adapter_key, c.seed);
  TuningSession session(stack.objective.get(), stack.adapter.get(),
                        stack.optimizer.get(), options);
  SessionResult actual = session.Run();

  EXPECT_TRUE(ResultsBitIdentical(expected, actual));
  EXPECT_EQ(expected.iterations_run, c.iterations);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RunEquivalence,
    ::testing::Values(
        GridCase{"random", "identity", 1, 1, 25},
        GridCase{"random", "llamatune", 7, 1, 25},
        GridCase{"random", "hesbo8+svb0.1", 3, 4, 24},
        GridCase{"smac", "identity", 42, 1, 14},
        GridCase{"smac", "llamatune", 42, 4, 16},
        GridCase{"gpbo", "llamatune", 42, 1, 14},
        GridCase{"gpbo", "hesbo8", 11, 4, 16},
        GridCase{"bestconfig", "identity", 5, 1, 12},
        GridCase{"ddpg", "llamatune", 5, 1, 12}));

TEST(RunEquivalenceExtras, EarlyStoppingMatchesLegacyLoop) {
  SessionOptions options;
  options.num_iterations = 60;
  options.early_stopping = EarlyStoppingPolicy(5.0, 3);

  Stack legacy_stack = MakeSimStack("random", "llamatune", 9);
  LegacyTuningSession legacy(legacy_stack.objective.get(),
                             legacy_stack.adapter.get(),
                             legacy_stack.optimizer.get(), options);
  SessionResult expected = legacy.Run();

  Stack stack = MakeSimStack("random", "llamatune", 9);
  TuningSession session(stack.objective.get(), stack.adapter.get(),
                        stack.optimizer.get(), options);
  SessionResult actual = session.Run();

  EXPECT_LT(expected.iterations_run, 60);
  EXPECT_TRUE(ResultsBitIdentical(expected, actual));
}

TEST(RunEquivalenceExtras, StepMatchesRunTrajectory) {
  SessionOptions options;
  options.num_iterations = 20;
  options.batch_size = 2;

  Stack a = MakeSimStack("smac", "llamatune", 13);
  TuningSession run_session(a.objective.get(), a.adapter.get(),
                            a.optimizer.get(), options);
  SessionResult via_run = run_session.Run();

  Stack b = MakeSimStack("smac", "llamatune", 13);
  TuningSession step_session(b.objective.get(), b.adapter.get(),
                             b.optimizer.get(), options);
  while (step_session.Step()) {
  }
  EXPECT_TRUE(ResultsBitIdentical(via_run, step_session.Snapshot()));
}

// ---------------------------------------------------------------------------
// Protocol semantics.
// ---------------------------------------------------------------------------

// A tiny controllable objective over a 2-knob space.
class FakeObjective : public ObjectiveFunction {
 public:
  FakeObjective()
      : space_(*ConfigSpace::Create({IntegerKnob("a", 0, 100, 50),
                                     RealKnob("b", 0.0, 1.0, 0.5)})) {}

  EvalResult Evaluate(const Configuration& config) override {
    EvalResult result;
    result.value = config[0] + 10.0 * config[1];
    result.metrics = {1.0, 2.0};
    return result;
  }

  const ConfigSpace& config_space() const override { return space_; }

 private:
  ConfigSpace space_;
};

struct ProtocolFixture {
  explicit ProtocolFixture(SessionOptions options = MakeOptions()) {
    adapter = std::move(AdapterRegistry::Global().Create(
                            "identity", &objective.config_space(), 1))
                  .ValueOrDie();
    optimizer = std::make_unique<RandomSearchOptimizer>(
        adapter->search_space(), 1);
    session = std::make_unique<TuningSession>(&objective, adapter.get(),
                                              optimizer.get(), options);
  }

  static SessionOptions MakeOptions() {
    SessionOptions options;
    options.num_iterations = 10;
    return options;
  }

  FakeObjective objective;
  std::unique_ptr<SpaceAdapter> adapter;
  std::unique_ptr<Optimizer> optimizer;
  std::unique_ptr<TuningSession> session;
};

TrialResult Measure(FakeObjective& objective, const Trial& trial) {
  EvalResult eval = objective.Evaluate(trial.config);
  TrialResult result;
  result.trial_id = trial.id;
  result.value = eval.value;
  result.outcome = eval.EffectiveOutcome();
  result.metrics = eval.metrics;
  return result;
}

TEST(AskTellProtocol, FirstAskIsBaselineAndBlocksUntilTold) {
  ProtocolFixture f;
  Result<Trial> baseline = f.session->Ask();
  ASSERT_TRUE(baseline.ok());
  EXPECT_TRUE(baseline->is_baseline);
  EXPECT_TRUE(baseline->point.empty());
  EXPECT_EQ(baseline->config,
            f.objective.config_space().DefaultConfiguration());

  // No more trials until the baseline is told.
  Result<Trial> blocked = f.session->Ask();
  EXPECT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kFailedPrecondition);

  ASSERT_TRUE(f.session->Tell(Measure(f.objective, *baseline)).ok());
  Result<Trial> next = f.session->Ask();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next->is_baseline);
  EXPECT_FALSE(next->point.empty());
}

TEST(AskTellProtocol, AskBatchBeforeBaselineYieldsBaselineOnly) {
  ProtocolFixture f;
  Result<std::vector<Trial>> batch = f.session->AskBatch(4);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 1u);
  EXPECT_TRUE((*batch)[0].is_baseline);
}

TEST(AskTellProtocol, TellErrors) {
  ProtocolFixture f;
  Result<Trial> baseline = f.session->Ask();
  ASSERT_TRUE(baseline.ok());

  TrialResult bogus;
  bogus.trial_id = 999;
  EXPECT_EQ(f.session->Tell(bogus).code(), StatusCode::kNotFound);

  TrialResult result = Measure(f.objective, *baseline);
  ASSERT_TRUE(f.session->Tell(result).ok());
  // Baseline already committed.
  EXPECT_EQ(f.session->Tell(result).code(), StatusCode::kAlreadyExists);

  // Duplicate tell while a round is still open (batch of 2, one told
  // twice).
  Result<std::vector<Trial>> batch = f.session->AskBatch(2);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 2u);
  TrialResult first = Measure(f.objective, (*batch)[0]);
  ASSERT_TRUE(f.session->Tell(first).ok());
  EXPECT_EQ(f.session->Tell(first).code(), StatusCode::kAlreadyExists);
}

TEST(AskTellProtocol, BudgetCountsPendingTrials) {
  SessionOptions options;
  options.num_iterations = 5;
  ProtocolFixture f(options);
  Result<Trial> baseline = f.session->Ask();
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(f.session->Tell(Measure(f.objective, *baseline)).ok());

  Result<std::vector<Trial>> batch = f.session->AskBatch(10);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->size(), 5u);  // clamped to the remaining budget
  EXPECT_EQ(f.session->pending_trials(), 5);

  // Budget exhausted while those are pending.
  Result<Trial> over = f.session->Ask();
  EXPECT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kOutOfRange);

  std::vector<TrialResult> results;
  for (const Trial& trial : *batch) results.push_back(Measure(f.objective, trial));
  ASSERT_TRUE(f.session->TellBatch(results).ok());
  EXPECT_EQ(f.session->iterations_run(), 5);
  EXPECT_TRUE(f.session->finished());
  EXPECT_FALSE(f.session->Step());
}

TEST(AskTellProtocol, NonFiniteValuesAreRejected) {
  ProtocolFixture f;
  Result<Trial> baseline = f.session->Ask();
  ASSERT_TRUE(baseline.ok());

  // NaN and Inf on an ok outcome are caller bugs, not measurements:
  // they would poison the optimizer's history silently.
  TrialResult bad;
  bad.trial_id = baseline->id;
  bad.value = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(f.session->Tell(bad).code(), StatusCode::kInvalidArgument);
  bad.value = std::numeric_limits<double>::infinity();
  EXPECT_EQ(f.session->Tell(bad).code(), StatusCode::kInvalidArgument);
  bad.value = -std::numeric_limits<double>::infinity();
  EXPECT_EQ(f.session->Tell(bad).code(), StatusCode::kInvalidArgument);
  // The rejected tells committed nothing: the baseline is still open.
  EXPECT_EQ(f.session->pending_trials(), 1);
  EXPECT_EQ(f.session->iterations_run(), 0);

  ASSERT_TRUE(f.session->Tell(Measure(f.objective, *baseline)).ok());

  // A failure outcome ignores `value`, so a NaN there is legal — the
  // evaluator may have nothing meaningful to report for a crash.
  Result<Trial> next = f.session->Ask();
  ASSERT_TRUE(next.ok());
  TrialResult crashed;
  crashed.trial_id = next->id;
  crashed.value = std::numeric_limits<double>::quiet_NaN();
  crashed.outcome = TrialOutcome::kCrashed;
  EXPECT_TRUE(f.session->Tell(crashed).ok());

  // TellBatch validates before buffering anything.
  Result<std::vector<Trial>> batch = f.session->AskBatch(2);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 2u);
  std::vector<TrialResult> results = {Measure(f.objective, (*batch)[0]),
                                      Measure(f.objective, (*batch)[1])};
  results[1].value = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(f.session->TellBatch(results).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(f.session->pending_trials(), 2);
  results[1].value = 1.0;
  EXPECT_TRUE(f.session->TellBatch(results).ok());
}

TEST(AskTellProtocol, ExpireDropsTrialAndReclaimsBudget) {
  SessionOptions options;
  options.num_iterations = 3;
  ProtocolFixture f(options);
  Result<Trial> baseline = f.session->Ask();
  ASSERT_TRUE(baseline.ok());

  // The baseline can never expire — no session starts without its
  // penalty floor.
  EXPECT_EQ(f.session->Expire(baseline->id).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(f.session->Tell(Measure(f.objective, *baseline)).ok());

  Result<Trial> t2 = f.session->Ask();
  Result<Trial> t3 = f.session->Ask();
  Result<Trial> t4 = f.session->Ask();
  ASSERT_TRUE(t2.ok() && t3.ok() && t4.ok());
  EXPECT_EQ(f.session->Ask().status().code(), StatusCode::kOutOfRange);

  // Expiring a pending trial reclaims its budget slot...
  ASSERT_TRUE(f.session->Expire(t3->id).ok());
  // ...idempotently (WAL replay may re-apply the same expiry)...
  EXPECT_TRUE(f.session->Expire(t3->id).ok());
  // ...and a late Tell for it earns the typed terminal status.
  EXPECT_EQ(f.session->Tell(Measure(f.objective, *t3)).code(),
            StatusCode::kTrialExpired);

  Result<Trial> t5 = f.session->Ask();
  ASSERT_TRUE(t5.ok()) << "expiry must free the budget slot";

  ASSERT_TRUE(f.session->Tell(Measure(f.objective, *t2)).ok());
  ASSERT_TRUE(f.session->Tell(Measure(f.objective, *t4)).ok());
  ASSERT_TRUE(f.session->Tell(Measure(f.objective, *t5)).ok());
  EXPECT_EQ(f.session->iterations_run(), 3);
  EXPECT_TRUE(f.session->finished());

  // Expired ids answer TrialExpired forever; committed ids answer
  // AlreadyExists; unknown ids NotFound.
  EXPECT_EQ(f.session->Expire(t3->id).code(), StatusCode::kOk);
  EXPECT_EQ(f.session->Expire(t2->id).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(f.session->Expire(999).code(), StatusCode::kNotFound);
}

TEST(AskTellProtocol, ExpireOverdueHonorsDeadlineAndSparesBaseline) {
  SessionOptions options;
  options.num_iterations = 5;
  options.pending_deadline_ms = 60000;
  ProtocolFixture f(options);
  Result<Trial> baseline = f.session->Ask();
  ASSERT_TRUE(baseline.ok());

  // The untold baseline is never swept, no matter how stale.
  EXPECT_TRUE(f.session->ExpireOverdue(int64_t{1} << 60).empty());
  ASSERT_TRUE(f.session->Tell(Measure(f.objective, *baseline)).ok());

  Result<std::vector<Trial>> batch = f.session->AskBatch(3);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 3u);
  // A trial with a buffered (uncommitted) result is not overdue: its
  // evaluator did answer, the round is just waiting on siblings.
  ASSERT_TRUE(f.session->Tell(Measure(f.objective, (*batch)[1])).ok());

  std::vector<int64_t> expired = f.session->ExpireOverdue(int64_t{1} << 60);
  ASSERT_EQ(expired.size(), 2u);
  EXPECT_EQ(expired[0], (*batch)[0].id);
  EXPECT_EQ(expired[1], (*batch)[2].id);

  // Nothing is overdue right after asking (now ~= asked_at).
  Result<Trial> fresh = f.session->Ask();
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(f.session->ExpireOverdue(0).empty());
}

TEST(AskTellProtocol, PerOutcomePenaltiesUseTheirDivisors) {
  SessionOptions options;
  options.num_iterations = 4;
  options.crash_penalty_divisor = 4.0;
  options.timeout_penalty_divisor = 2.0;
  options.lost_penalty_divisor = 8.0;
  ProtocolFixture f(options);
  Result<Trial> baseline = f.session->Ask();
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(f.session->Tell(Measure(f.objective, *baseline)).ok());

  const auto tell_outcome = [&](TrialOutcome outcome) {
    Result<Trial> trial = f.session->Ask();
    ASSERT_TRUE(trial.ok());
    TrialResult result;
    result.trial_id = trial->id;
    result.outcome = outcome;
    ASSERT_TRUE(f.session->Tell(result).ok());
  };
  tell_outcome(TrialOutcome::kCrashed);
  tell_outcome(TrialOutcome::kTimedOut);
  tell_outcome(TrialOutcome::kLost);

  // The baseline measurement (not a KB record) is the only real
  // observation, so it is the penalty floor for all three failures.
  const double worst = f.session->default_performance();
  ASSERT_GT(worst, 0.0);
  const KnowledgeBase& kb = f.session->knowledge_base();
  ASSERT_EQ(kb.size(), 3);
  EXPECT_DOUBLE_EQ(kb.record(0).objective, worst / 4.0);
  EXPECT_DOUBLE_EQ(kb.record(1).objective, worst / 2.0);
  EXPECT_DOUBLE_EQ(kb.record(2).objective, worst / 8.0);
  EXPECT_EQ(kb.record(0).outcome, TrialOutcome::kCrashed);
  EXPECT_EQ(kb.record(1).outcome, TrialOutcome::kTimedOut);
  EXPECT_EQ(kb.record(2).outcome, TrialOutcome::kLost);
  EXPECT_TRUE(kb.record(0).crashed);
  EXPECT_FALSE(kb.record(1).crashed);
}

TEST(AskTellProtocol, CheckpointRoundTripsExpiredSlotsAndOutcomes) {
  SessionOptions options;
  options.num_iterations = 6;
  ProtocolFixture f(options);
  Result<Trial> baseline = f.session->Ask();
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(f.session->Tell(Measure(f.objective, *baseline)).ok());

  // One committed round with an expired slot, one failure outcome.
  Result<std::vector<Trial>> batch = f.session->AskBatch(3);
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(f.session->Expire((*batch)[1].id).ok());
  ASSERT_TRUE(f.session->Tell(Measure(f.objective, (*batch)[0])).ok());
  TrialResult timed_out;
  timed_out.trial_id = (*batch)[2].id;
  timed_out.outcome = TrialOutcome::kTimedOut;
  ASSERT_TRUE(f.session->Tell(timed_out).ok());

  const std::string saved = f.session->Save();

  // The "state" line's last token is accumulated wall-clock optimizer
  // seconds — the only bytes Restore cannot replay bit-for-bit.
  const auto normalize = [](const std::string& checkpoint) {
    std::istringstream in(checkpoint);
    std::ostringstream out;
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("state ", 0) == 0) {
        line = line.substr(0, line.find_last_of(' ')) + " <wall-clock>";
      }
      out << line << '\n';
    }
    return out.str();
  };

  // Restore into a fresh identically-seeded session.
  ProtocolFixture g(options);
  Status restored = g.session->Restore(saved);
  ASSERT_TRUE(restored.ok()) << restored.ToString();
  EXPECT_EQ(normalize(g.session->Save()), normalize(saved));
  EXPECT_EQ(g.session->next_trial_id(), f.session->next_trial_id());
  EXPECT_EQ(g.session->iterations_run(), f.session->iterations_run());

  // The expiry survived the round trip: the id still answers
  // TrialExpired, not NotFound.
  TrialResult late;
  late.trial_id = (*batch)[1].id;
  late.value = 1.0;
  EXPECT_EQ(g.session->Tell(late).code(), StatusCode::kTrialExpired);

  // Both sessions, driven to completion, stay bit-for-bit equal.
  auto drain = [](ProtocolFixture& fixture) {
    for (;;) {
      Result<Trial> trial = fixture.session->Ask();
      if (!trial.ok()) break;
      TrialResult result = Measure(fixture.objective, *trial);
      ASSERT_TRUE(fixture.session->Tell(result).ok());
    }
  };
  drain(f);
  drain(g);
  EXPECT_EQ(normalize(f.session->Save()), normalize(g.session->Save()));
}

TEST(AskTellProtocol, OutOfOrderTellsCommitInAskOrder) {
  SessionOptions options;
  options.num_iterations = 8;

  // Session A: tell a 4-trial round in reverse order.
  ProtocolFixture a(options);
  {
    Result<Trial> baseline = a.session->Ask();
    ASSERT_TRUE(baseline.ok());
    ASSERT_TRUE(a.session->Tell(Measure(a.objective, *baseline)).ok());
    Result<std::vector<Trial>> batch = a.session->AskBatch(4);
    ASSERT_TRUE(batch.ok());
    std::vector<TrialResult> results;
    for (const Trial& trial : *batch) {
      results.push_back(Measure(a.objective, trial));
    }
    std::reverse(results.begin(), results.end());
    // Nothing commits until the round's last result arrives.
    ASSERT_TRUE(a.session->Tell(results[0]).ok());
    EXPECT_EQ(a.session->iterations_run(), 0);
    for (size_t i = 1; i < results.size(); ++i) {
      ASSERT_TRUE(a.session->Tell(results[i]).ok());
    }
    EXPECT_EQ(a.session->iterations_run(), 4);
  }

  // Session B: identical stack, told in order.
  ProtocolFixture b(options);
  {
    Result<Trial> baseline = b.session->Ask();
    ASSERT_TRUE(baseline.ok());
    ASSERT_TRUE(b.session->Tell(Measure(b.objective, *baseline)).ok());
    Result<std::vector<Trial>> batch = b.session->AskBatch(4);
    ASSERT_TRUE(batch.ok());
    for (const Trial& trial : *batch) {
      ASSERT_TRUE(b.session->Tell(Measure(b.objective, trial)).ok());
    }
  }

  EXPECT_TRUE(ResultsBitIdentical(a.session->Snapshot(), b.session->Snapshot()));
}

TEST(AskTellProtocol, InterleavedSingleRoundsCommitInAskOrder) {
  SessionOptions options;
  options.num_iterations = 4;
  ProtocolFixture f(options);
  Result<Trial> baseline = f.session->Ask();
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(f.session->Tell(Measure(f.objective, *baseline)).ok());

  Result<Trial> t1 = f.session->Ask();
  Result<Trial> t2 = f.session->Ask();
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  // Telling the later round first buffers it.
  ASSERT_TRUE(f.session->Tell(Measure(f.objective, *t2)).ok());
  EXPECT_EQ(f.session->iterations_run(), 0);
  ASSERT_TRUE(f.session->Tell(Measure(f.objective, *t1)).ok());
  EXPECT_EQ(f.session->iterations_run(), 2);
  // kb order follows ask order, not tell order.
  EXPECT_EQ(f.session->knowledge_base().record(0).point, t1->point);
  EXPECT_EQ(f.session->knowledge_base().record(1).point, t2->point);
}

TEST(AskTellProtocol, DetachedSessionMatchesAttachedRun) {
  FakeObjective objective;
  SessionOptions options;
  options.num_iterations = 12;

  // Attached push-model run.
  Result<std::unique_ptr<harness::Tuner>> attached =
      harness::TunerBuilder()
          .Objective(&objective)
          .Optimizer("random")
          .Adapter("identity")
          .Seed(21)
          .Iterations(12)
          .Build();
  ASSERT_TRUE(attached.ok());
  SessionResult expected = (*attached)->Run();

  // Detached ask/tell over the bare space; the caller measures with
  // an identical objective.
  FakeObjective measurer;
  Result<std::unique_ptr<harness::Tuner>> detached =
      harness::TunerBuilder()
          .Space(&objective.config_space())
          .Optimizer("random")
          .Adapter("identity")
          .Seed(21)
          .Iterations(12)
          .BuildDetached();
  ASSERT_TRUE(detached.ok());
  harness::Tuner& tuner = **detached;
  EXPECT_FALSE(tuner.has_objective());
  EXPECT_FALSE(tuner.Step());  // push loop is inert when detached
  while (true) {
    Result<Trial> trial = tuner.Ask();
    if (!trial.ok()) break;
    tuner.Tell(Measure(measurer, *trial));
  }
  EXPECT_TRUE(tuner.finished());
  EXPECT_TRUE(ResultsBitIdentical(expected, tuner.session().Snapshot()));
}

TEST(AskTellProtocol, BareSpaceRequiresBuildDetached) {
  FakeObjective objective;
  Result<std::unique_ptr<harness::Tuner>> built =
      harness::TunerBuilder()
          .Space(&objective.config_space())
          .Optimizer("random")
          .Adapter("identity")
          .Build();
  EXPECT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// SessionOptions validation (satellite): invalid settings surface as
// Status instead of silently misbehaving.
// ---------------------------------------------------------------------------

TEST(SessionOptionsValidation, RejectsOutOfDomainSettings) {
  SessionOptions bad_batch;
  bad_batch.batch_size = 0;
  EXPECT_EQ(bad_batch.Validate().code(), StatusCode::kInvalidArgument);

  SessionOptions bad_threads;
  bad_threads.num_threads = -1;
  EXPECT_EQ(bad_threads.Validate().code(), StatusCode::kInvalidArgument);

  SessionOptions bad_iters;
  bad_iters.num_iterations = -5;
  EXPECT_EQ(bad_iters.Validate().code(), StatusCode::kInvalidArgument);

  SessionOptions bad_divisor;
  bad_divisor.crash_penalty_divisor = 0.0;
  EXPECT_EQ(bad_divisor.Validate().code(), StatusCode::kInvalidArgument);

  EXPECT_TRUE(SessionOptions{}.Validate().ok());
  SessionOptions baseline_only;
  baseline_only.num_iterations = 0;
  EXPECT_TRUE(baseline_only.Validate().ok());
}

TEST(SessionOptionsValidation, InvalidOptionsSurfaceFromSessionAndBuilder) {
  SessionOptions options;
  options.batch_size = -2;
  ProtocolFixture f(options);
  EXPECT_FALSE(f.session->init_status().ok());
  Result<Trial> trial = f.session->Ask();
  EXPECT_FALSE(trial.ok());
  EXPECT_EQ(trial.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(f.session->Step());
  SessionResult result = f.session->Run();
  EXPECT_EQ(result.iterations_run, 0);
  EXPECT_EQ(result.kb.size(), 0);

  FakeObjective objective;
  Result<std::unique_ptr<harness::Tuner>> built =
      harness::TunerBuilder()
          .Objective(&objective)
          .Optimizer("random")
          .Adapter("identity")
          .BatchSize(-1)
          .Build();
  EXPECT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace llamatune
