#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/matrix.h"
#include "src/common/rng.h"

namespace llamatune {
namespace {

TEST(MatrixTest, FlatRowMajorAccess) {
  Matrix m(2, 3, 0.0);
  m.at(0, 0) = 1.0;
  m.at(0, 2) = 2.0;
  m.at(1, 1) = 3.0;
  EXPECT_EQ(m.data(), (std::vector<double>{1, 0, 2, 0, 3, 0}));
  EXPECT_EQ(m.Row(1)[1], 3.0);
}

TEST(MatrixTest, ApplyAndTranspose) {
  Matrix m(2, 3);
  // [[1,2,3],[4,5,6]]
  for (int c = 0; c < 3; ++c) {
    m.at(0, c) = c + 1.0;
    m.at(1, c) = c + 4.0;
  }
  EXPECT_EQ(m.Apply({1.0, 1.0, 1.0}), (std::vector<double>{6.0, 15.0}));
  EXPECT_EQ(m.ApplyTransposed({1.0, 1.0}),
            (std::vector<double>{5.0, 7.0, 9.0}));
}

TEST(MatrixTest, ResizePreserveKeepsTopLeftBlock) {
  Matrix m(2, 2);
  m.at(0, 0) = 1.0;
  m.at(0, 1) = 2.0;
  m.at(1, 0) = 3.0;
  m.at(1, 1) = 4.0;
  m.ResizePreserve(3, 3, -1.0);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.at(0, 0), 1.0);
  EXPECT_EQ(m.at(0, 1), 2.0);
  EXPECT_EQ(m.at(1, 0), 3.0);
  EXPECT_EQ(m.at(1, 1), 4.0);
  EXPECT_EQ(m.at(0, 2), -1.0);
  EXPECT_EQ(m.at(2, 2), -1.0);
  m.ResizePreserve(2, 2);
  EXPECT_EQ(m.at(1, 1), 4.0);
}

TEST(MatrixTest, AppendRowGrowsWithoutMovingCells) {
  Matrix m(1, 2);
  m.at(0, 0) = 1.0;
  m.at(0, 1) = 2.0;
  double row[] = {3.0, 4.0};
  m.AppendRow(row);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.at(1, 0), 3.0);
  EXPECT_EQ(m.at(1, 1), 4.0);
}

TEST(FlatCholeskyTest, FactorsKnownMatrix) {
  // A = [[4,2],[2,3]] => L = [[2,0],[1,sqrt(2)]]
  Matrix a(2, 2);
  a.at(0, 0) = 4.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 3.0;
  ASSERT_TRUE(CholeskyFactorInPlace(&a).ok());
  EXPECT_NEAR(a.at(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(a.at(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(a.at(1, 1), std::sqrt(2.0), 1e-12);
  EXPECT_EQ(a.at(0, 1), 0.0);
}

TEST(FlatCholeskyTest, RejectsIndefinite) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 1.0;
  EXPECT_FALSE(CholeskyFactorInPlace(&a).ok());
}

// Builds a random SPD matrix A = B B^T + n I.
Matrix RandomSpd(int n, Rng* rng) {
  Matrix b(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) b.at(i, j) = rng->Gaussian();
  }
  Matrix a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int k = 0; k < n; ++k) acc += b.at(i, k) * b.at(j, k);
      a.at(i, j) = acc;
    }
    a.at(i, i) += n;
  }
  return a;
}

TEST(FlatCholeskyTest, ExtendMatchesFullFactorizationBitForBit) {
  Rng rng(11);
  int n = 12;
  Matrix a = RandomSpd(n, &rng);

  // Full factorization of the whole matrix.
  Matrix full = a;
  ASSERT_TRUE(CholeskyFactorInPlace(&full).ok());

  // Factor the leading 6x6 block, then extend row by row.
  int start = 6;
  Matrix inc(start, start);
  for (int i = 0; i < start; ++i) {
    for (int j = 0; j < start; ++j) inc.at(i, j) = a.at(i, j);
  }
  ASSERT_TRUE(CholeskyFactorInPlace(&inc).ok());
  std::vector<double> row;
  for (int r = start; r < n; ++r) {
    row.assign(a.Row(r), a.Row(r) + r + 1);
    ASSERT_TRUE(CholeskyExtend(&inc, row.data()).ok());
  }

  ASSERT_EQ(inc.rows(), n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      // Incremental extension is bit-for-bit a suffix of the full
      // factorization — exact equality, not approximate.
      EXPECT_EQ(inc.at(i, j), full.at(i, j)) << "(" << i << "," << j << ")";
    }
  }
}

TEST(FlatCholeskyTest, ExtendRejectsIndefiniteExtension) {
  Matrix l(1, 1);
  l.at(0, 0) = 1.0;  // A = [1]
  // Extended matrix [[1, 2], [2, 1]] is indefinite.
  double row[] = {2.0, 1.0};
  EXPECT_FALSE(CholeskyExtend(&l, row).ok());
  EXPECT_EQ(l.rows(), 1);  // untouched on failure
}

TEST(FlatSolveTest, RoundTripSolvesSystem) {
  Rng rng(7);
  int n = 9;
  Matrix a = RandomSpd(n, &rng);
  Matrix l = a;
  ASSERT_TRUE(CholeskyFactorInPlace(&l).ok());
  std::vector<double> b(n);
  for (int i = 0; i < n; ++i) b[i] = rng.Gaussian();
  std::vector<double> z(n, 0.0), x(n, 0.0);
  TriangularSolveLower(l, b.data(), z.data());
  TriangularSolveLowerTransposed(l, z.data(), x.data());
  // Check A x == b.
  for (int i = 0; i < n; ++i) {
    double acc = 0.0;
    for (int j = 0; j < n; ++j) acc += a.at(i, j) * x[j];
    EXPECT_NEAR(acc, b[i], 1e-9);
  }
}

TEST(FlatSolveTest, MultiRhsMatchesSingleSolvesBitForBit) {
  Rng rng(3);
  int n = 10, m = 7;
  Matrix l = RandomSpd(n, &rng);
  ASSERT_TRUE(CholeskyFactorInPlace(&l).ok());
  Matrix rhs(n, m);
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < m; ++c) rhs.at(i, c) = rng.Gaussian();
  }
  Matrix multi = rhs;
  TriangularSolveLowerMulti(l, &multi);
  std::vector<double> column(n), solved(n);
  for (int c = 0; c < m; ++c) {
    for (int i = 0; i < n; ++i) column[i] = rhs.at(i, c);
    TriangularSolveLower(l, column.data(), solved.data());
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(multi.at(i, c), solved[i]) << "col " << c << " row " << i;
    }
  }
}

}  // namespace
}  // namespace llamatune
