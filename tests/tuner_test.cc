#include <gtest/gtest.h>

#include <memory>

#include "src/dbsim/workloads.h"
#include "src/harness/experiment.h"
#include "src/harness/tuner.h"

namespace llamatune {
namespace harness {
namespace {

// ---------------------------------------------------------------------------
// TunerBuilder validation
// ---------------------------------------------------------------------------

TEST(TunerBuilderTest, RequiresAnObjectiveSource) {
  auto result = TunerBuilder().Build();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

class ConstantObjective : public ObjectiveFunction {
 public:
  ConstantObjective()
      : space_(ConfigSpace::Create({RealKnob("x", 0.0, 1.0, 0.5)})
                   .ValueOrDie()) {}
  EvalResult Evaluate(const Configuration& config) override {
    EvalResult result;
    result.value = 1.0 + config[0];
    return result;
  }
  const ConfigSpace& config_space() const override { return space_; }

 private:
  ConfigSpace space_;
};

TEST(TunerBuilderTest, WorkloadAndObjectiveAreMutuallyExclusive) {
  ConstantObjective objective;
  auto result =
      TunerBuilder().Workload(dbsim::YcsbA()).Objective(&objective).Build();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(TunerBuilderTest, UnknownRegistryKeysSurfaceAsErrors) {
  auto bad_optimizer = TunerBuilder()
                           .Workload(dbsim::YcsbA())
                           .Optimizer("simulated-annealing")
                           .Build();
  ASSERT_FALSE(bad_optimizer.ok());
  EXPECT_EQ(bad_optimizer.status().code(), StatusCode::kNotFound);

  auto bad_adapter = TunerBuilder()
                         .Workload(dbsim::YcsbA())
                         .Adapter("tesseract4")
                         .Build();
  ASSERT_FALSE(bad_adapter.ok());
  EXPECT_EQ(bad_adapter.status().code(), StatusCode::kNotFound);
}

TEST(TunerBuilderTest, RejectsNonPositiveBudgets) {
  EXPECT_FALSE(
      TunerBuilder().Workload(dbsim::YcsbA()).Iterations(0).Build().ok());
  EXPECT_FALSE(
      TunerBuilder().Workload(dbsim::YcsbA()).BatchSize(0).Build().ok());
}

// ---------------------------------------------------------------------------
// End-to-end runs
// ---------------------------------------------------------------------------

TEST(TunerTest, QuickstartShapeRunsThroughRegistries) {
  auto tuner = TunerBuilder()
                   .Workload(dbsim::YcsbA())
                   .Optimizer("random")
                   .Adapter("llamatune")
                   .Seed(42)
                   .Iterations(10)
                   .Build();
  ASSERT_TRUE(tuner.ok()) << tuner.status().ToString();
  EXPECT_EQ((*tuner)->adapter().search_space().num_dims(), 16);

  SessionResult result = (*tuner)->Run();
  EXPECT_EQ(result.kb.size(), 10);
  EXPECT_GT(result.best_performance, 0.0);
  EXPECT_GT(result.default_performance, 0.0);
}

TEST(TunerTest, ExternalObjective) {
  ConstantObjective objective;
  auto tuner = TunerBuilder()
                   .Objective(&objective)
                   .Optimizer("random")
                   .Adapter("identity")
                   .Iterations(5)
                   .Build();
  ASSERT_TRUE(tuner.ok()) << tuner.status().ToString();
  SessionResult result = (*tuner)->Run();
  EXPECT_EQ(result.kb.size(), 5);
  EXPECT_GE(result.best_performance, 1.0);
  EXPECT_LE(result.best_performance, 2.0);
}

TEST(TunerTest, BatchedSessionEvaluatesFullBudget) {
  auto tuner = TunerBuilder()
                   .Workload(dbsim::YcsbB())
                   .Optimizer("random")
                   .Adapter("llamatune")
                   .Seed(7)
                   .Iterations(10)
                   .BatchSize(4)  // 4 + 4 + 2
                   .Build();
  ASSERT_TRUE(tuner.ok()) << tuner.status().ToString();
  SessionResult result = (*tuner)->Run();
  EXPECT_EQ(result.iterations_run, 10);
  EXPECT_EQ(result.kb.size(), 10);
  for (int i = 0; i < result.kb.size(); ++i) {
    EXPECT_EQ(result.kb.record(i).iteration, i + 1);
  }
}

TEST(TunerTest, BatchedSessionIsDeterministic) {
  auto run_once = []() {
    auto tuner = TunerBuilder()
                     .Workload(dbsim::YcsbA())
                     .Optimizer("random")
                     .Adapter("llamatune")
                     .Seed(11)
                     .Iterations(12)
                     .BatchSize(3)
                     .Build();
    EXPECT_TRUE(tuner.ok());
    return (*tuner)->Run().kb.BestSoFarObjective();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(TunerTest, BatchFallsBackWhenObjectiveCannotClone) {
  ConstantObjective objective;  // no Clone() override
  auto tuner = TunerBuilder()
                   .Objective(&objective)
                   .Optimizer("random")
                   .Adapter("identity")
                   .Iterations(6)
                   .BatchSize(4)
                   .Build();
  ASSERT_TRUE(tuner.ok());
  SessionResult result = (*tuner)->Run();
  EXPECT_EQ(result.kb.size(), 6);
}

// ---------------------------------------------------------------------------
// ExperimentSpec through the registries
// ---------------------------------------------------------------------------

TEST(ExperimentSpecTest, DefaultsToSmacOverIdentity) {
  ExperimentSpec spec;
  EXPECT_EQ(spec.optimizer_key, "smac");
  EXPECT_EQ(spec.adapter_key, "identity");
}

TEST(ExperimentSpecTest, AliasAndExplicitPipelineKeysProduceIdenticalRuns) {
  ExperimentSpec aliased;
  aliased.workload = dbsim::YcsbB();
  aliased.num_seeds = 1;
  aliased.num_iterations = 8;
  aliased.optimizer_key = "random";
  aliased.adapter_key = "llamatune";  // alias for the paper pipeline

  ExperimentSpec keyed = aliased;
  keyed.adapter_key = "hesbo16+svb0.2+bucket10000";

  MultiSeedResult a = RunExperiment(aliased);
  MultiSeedResult b = RunExperiment(keyed);
  EXPECT_EQ(a.objective_curves, b.objective_curves);
}

TEST(ExperimentSpecTest, BatchedExperimentRuns) {
  ExperimentSpec spec;
  spec.workload = dbsim::YcsbA();
  spec.num_seeds = 1;
  spec.num_iterations = 9;
  spec.optimizer_key = "random";
  spec.adapter_key = "llamatune";
  spec.batch_size = 4;
  MultiSeedResult result = RunExperiment(spec);
  EXPECT_EQ(result.objective_curves[0].size(), 9u);
}

}  // namespace
}  // namespace harness
}  // namespace llamatune
