#include <gtest/gtest.h>

#include <memory>

#include "src/core/adapter_registry.h"
#include "src/core/tuning_session.h"
#include "src/dbsim/simulated_postgres.h"
#include "src/optimizer/ddpg.h"
#include "src/optimizer/gp_bo.h"
#include "src/optimizer/smac.h"

namespace llamatune {
namespace {

using dbsim::SimulatedPostgres;
using dbsim::SimulatedPostgresOptions;

std::unique_ptr<SpaceAdapter> MakeAdapter(const std::string& key,
                                          const ConfigSpace* space,
                                          uint64_t seed = 1) {
  return std::move(AdapterRegistry::Global().Create(key, space, seed))
      .ValueOrDie();
}

TEST(IntegrationTest, SmacLlamaTuneImprovesOverDefault) {
  SimulatedPostgres db(dbsim::YcsbA(), {});
  auto adapter = MakeAdapter("llamatune", &db.config_space());
  SmacOptimizer optimizer(adapter->search_space(), {}, 42);
  SessionOptions options;
  options.num_iterations = 40;
  TuningSession session(&db, adapter.get(), &optimizer, options);
  SessionResult result = session.Run();
  EXPECT_GT(result.best_performance, result.default_performance * 1.05);
  EXPECT_TRUE(
      db.config_space().ValidateConfiguration(result.best_config).ok());
}

TEST(IntegrationTest, SmacIdentityImprovesOverDefault) {
  SimulatedPostgres db(dbsim::YcsbA(), {});
  auto adapter = MakeAdapter("identity", &db.config_space());
  SmacOptimizer optimizer(adapter->search_space(), {}, 42);
  SessionOptions options;
  options.num_iterations = 40;
  TuningSession session(&db, adapter.get(), &optimizer, options);
  SessionResult result = session.Run();
  EXPECT_GT(result.best_performance, result.default_performance);
}

TEST(IntegrationTest, GpBoLlamaTuneRunsAndImproves) {
  SimulatedPostgres db(dbsim::TpcC(), {});
  auto adapter = MakeAdapter("llamatune", &db.config_space());
  GpBoOptimizer optimizer(adapter->search_space(), {}, 7);
  SessionOptions options;
  options.num_iterations = 25;
  TuningSession session(&db, adapter.get(), &optimizer, options);
  SessionResult result = session.Run();
  EXPECT_GT(result.best_performance, result.default_performance);
}

TEST(IntegrationTest, DdpgSessionRunsEndToEnd) {
  SimulatedPostgres db(dbsim::YcsbB(), {});
  auto adapter = MakeAdapter("llamatune", &db.config_space());
  DdpgOptions ddpg_options;
  ddpg_options.state_dim = dbsim::kNumMetrics;
  ddpg_options.updates_per_observe = 3;
  DdpgOptimizer optimizer(adapter->search_space(), ddpg_options, 7);
  SessionOptions options;
  options.num_iterations = 20;
  TuningSession session(&db, adapter.get(), &optimizer, options);
  SessionResult result = session.Run();
  EXPECT_EQ(result.iterations_run, 20);
  EXPECT_GT(result.best_performance, 0.0);
}

TEST(IntegrationTest, LatencyTuningReducesP95) {
  SimulatedPostgresOptions db_options;
  db_options.target = dbsim::TuningTarget::kP95Latency;
  db_options.fixed_rate = 700.0;
  SimulatedPostgres db(dbsim::TpcC(), db_options);
  auto adapter = MakeAdapter("llamatune", &db.config_space());
  SmacOptimizer optimizer(adapter->search_space(), {}, 11);
  SessionOptions options;
  options.num_iterations = 30;
  TuningSession session(&db, adapter.get(), &optimizer, options);
  SessionResult result = session.Run();
  // Minimization: best found p95 is no worse than the default's.
  EXPECT_LE(result.best_performance, result.default_performance);
}

TEST(IntegrationTest, FullyDeterministicSessionReplay) {
  auto run = []() {
    SimulatedPostgresOptions db_options;
    db_options.noise_seed = 5;
    SimulatedPostgres db(dbsim::Twitter(), db_options);
    auto adapter = MakeAdapter("llamatune", &db.config_space(), 5);
    SmacOptimizer optimizer(adapter->search_space(), {}, 5);
    SessionOptions options;
    options.num_iterations = 20;
    TuningSession session(&db, adapter.get(), &optimizer, options);
    return session.Run();
  };
  SessionResult a = run();
  SessionResult b = run();
  ASSERT_EQ(a.kb.size(), b.kb.size());
  for (int i = 0; i < a.kb.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.kb.record(i).objective, b.kb.record(i).objective);
    EXPECT_EQ(a.kb.record(i).config, b.kb.record(i).config);
  }
}

TEST(IntegrationTest, PostgresV136SessionRuns) {
  SimulatedPostgresOptions db_options;
  db_options.version = dbsim::PostgresVersion::kV136;
  SimulatedPostgres db(dbsim::Seats(), db_options);
  EXPECT_EQ(db.config_space().num_knobs(), 112);
  auto adapter = MakeAdapter("llamatune", &db.config_space());
  SmacOptimizer optimizer(adapter->search_space(), {}, 3);
  SessionOptions options;
  options.num_iterations = 20;
  TuningSession session(&db, adapter.get(), &optimizer, options);
  SessionResult result = session.Run();
  EXPECT_GT(result.best_performance, 0.0);
}

}  // namespace
}  // namespace llamatune
