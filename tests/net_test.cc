#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/serde.h"
#include "src/core/trial.h"
#include "src/net/frame.h"
#include "src/net/message.h"

namespace llamatune {
namespace net {
namespace {

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

TEST(FrameTest, RoundTripsSingleFrame) {
  std::string bytes = EncodeFrame(MessageKind::kPing, "payload bytes");
  ASSERT_EQ(bytes.size(), kFrameHeaderBytes + 13);

  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Result<std::optional<Frame>> frame = decoder.Next();
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(frame->has_value());
  EXPECT_EQ((*frame)->kind, MessageKind::kPing);
  EXPECT_EQ((*frame)->payload, "payload bytes");
  EXPECT_EQ(decoder.buffered_bytes(), 0u);

  // No second frame.
  Result<std::optional<Frame>> none = decoder.Next();
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none->has_value());
}

TEST(FrameTest, PartialReadsYieldNothingUntilComplete) {
  std::string bytes = EncodeFrame(MessageKind::kAsk, "0123456789");
  FrameDecoder decoder;
  // Feed one byte at a time: every prefix must decode to "not yet".
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.Feed(bytes.data() + i, 1);
    Result<std::optional<Frame>> frame = decoder.Next();
    ASSERT_TRUE(frame.ok()) << "at byte " << i;
    EXPECT_FALSE(frame->has_value()) << "at byte " << i;
  }
  decoder.Feed(bytes.data() + bytes.size() - 1, 1);
  Result<std::optional<Frame>> frame = decoder.Next();
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(frame->has_value());
  EXPECT_EQ((*frame)->payload, "0123456789");
}

TEST(FrameTest, DecodesBackToBackFramesFromOneFeed) {
  std::string bytes = EncodeFrame(MessageKind::kPing, "one") +
                      EncodeFrame(MessageKind::kClose, "") +
                      EncodeFrame(MessageKind::kTell, "three");
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());

  std::vector<Frame> frames;
  for (;;) {
    Result<std::optional<Frame>> next = decoder.Next();
    ASSERT_TRUE(next.ok());
    if (!next->has_value()) break;
    frames.push_back(std::move(**next));
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].payload, "one");
  EXPECT_EQ(frames[1].kind, MessageKind::kClose);
  EXPECT_EQ(frames[1].payload, "");
  EXPECT_EQ(frames[2].payload, "three");
}

TEST(FrameTest, BadMagicIsStickyError) {
  FrameDecoder decoder;
  std::string junk = "GET / HTTP/1.1\r\n";
  decoder.Feed(junk.data(), junk.size());
  Result<std::optional<Frame>> first = decoder.Next();
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kInvalidArgument);

  // Even a valid frame afterwards cannot clear the desync.
  std::string good = EncodeFrame(MessageKind::kPing, "");
  decoder.Feed(good.data(), good.size());
  EXPECT_FALSE(decoder.Next().ok());
}

TEST(FrameTest, RejectsFutureProtocolVersion) {
  std::string bytes = EncodeFrame(MessageKind::kPing, "");
  bytes[1] = static_cast<char>(kProtocolVersion + 1);
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Result<std::optional<Frame>> frame = decoder.Next();
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kFailedPrecondition);
}

TEST(FrameTest, RejectsOversizedPayloadBeforeBuffering) {
  // A 64-byte cap: the header alone must trip the error, without
  // waiting for (or allocating) the declared payload.
  FrameDecoder decoder(/*max_payload=*/64);
  std::string bytes = EncodeFrame(MessageKind::kTell, std::string(65, 'x'));
  decoder.Feed(bytes.data(), kFrameHeaderBytes);  // header only
  Result<std::optional<Frame>> frame = decoder.Next();
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kOutOfRange);
}

TEST(FrameTest, GarbageKindSurvivesFramingLayer) {
  // Framing is agnostic to kind values: an unassigned kind byte must
  // still deframe (the server answers it with an UnknownKind error,
  // pinned in server_test.cc).
  std::string bytes = EncodeFrame(static_cast<MessageKind>(201), "zzz");
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Result<std::optional<Frame>> frame = decoder.Next();
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(frame->has_value());
  EXPECT_EQ(static_cast<int>((*frame)->kind), 201);
  EXPECT_EQ((*frame)->payload, "zzz");
}

// ---------------------------------------------------------------------------
// Payload codecs
// ---------------------------------------------------------------------------

TEST(MessageTest, HelloRoundTripsIncludingEmptyAndSpacedTenants) {
  for (const std::string& tenant : {std::string(""), std::string("team-a"),
                                    std::string("has space\tand\ttabs")}) {
    Result<std::string> back = DecodeHello(EncodeHello(tenant));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(*back, tenant);
  }
}

WireSessionSpec SpaceSpecForTest() {
  WireSessionSpec spec;
  KnobSpec cache = IntegerKnob("cache_mb", 0, 4096, 128);
  cache = WithSpecialValues(std::move(cache), {0.0, -1.0});
  cache = WithLogScale(std::move(cache));
  cache.unit = "MB";
  KnobSpec policy = CategoricalKnob("policy", {"lru", "fifo", "clock"}, 1);
  KnobSpec ratio = RealKnob("ratio", 0.0, 1.0, 0.25);
  spec.space_knobs = {cache, policy, ratio};
  spec.maximize = false;
  spec.optimizer_key = "random";
  spec.adapter_key = "identity";
  spec.seed = 0xDEADBEEFCAFEF00DULL;  // needs the full u64 range
  spec.num_iterations = 33;
  spec.batch_size = 4;
  spec.num_threads = 2;
  return spec;
}

TEST(MessageTest, SessionSpecRoundTripsSpaceSource) {
  WireSessionSpec spec = SpaceSpecForTest();
  Result<WireSessionSpec> back = DecodeSessionSpec(EncodeSessionSpec(spec));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->workload, "");
  ASSERT_EQ(back->space_knobs.size(), 3u);
  const KnobSpec& cache = back->space_knobs[0];
  EXPECT_EQ(cache.name, "cache_mb");
  EXPECT_EQ(cache.type, KnobType::kInteger);
  EXPECT_TRUE(SameBits(cache.min_value, 0.0));
  EXPECT_TRUE(SameBits(cache.max_value, 4096.0));
  EXPECT_TRUE(cache.log_scale);
  EXPECT_TRUE(SameBits(cache.default_value, 128.0));
  EXPECT_EQ(cache.special_values, (std::vector<double>{0.0, -1.0}));
  EXPECT_EQ(cache.unit, "MB");
  const KnobSpec& policy = back->space_knobs[1];
  EXPECT_EQ(policy.type, KnobType::kCategorical);
  EXPECT_EQ(policy.categories,
            (std::vector<std::string>{"lru", "fifo", "clock"}));
  EXPECT_FALSE(back->maximize);
  EXPECT_EQ(back->optimizer_key, "random");
  EXPECT_EQ(back->adapter_key, "identity");
  EXPECT_EQ(back->seed, 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(back->num_iterations, 33);
  EXPECT_EQ(back->batch_size, 4);
  EXPECT_EQ(back->num_threads, 2);
}

TEST(MessageTest, SessionSpecRoundTripsWorkloadSource) {
  WireSessionSpec spec;
  spec.workload = "YCSB-A";
  spec.seed = 7;
  Result<WireSessionSpec> back = DecodeSessionSpec(EncodeSessionSpec(spec));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->workload, "YCSB-A");
  EXPECT_TRUE(back->space_knobs.empty());
  EXPECT_EQ(back->seed, 7u);
}

TEST(MessageTest, SessionSpecRejectsZeroOrTwoSources) {
  WireSessionSpec neither;  // no workload, no knobs
  EXPECT_FALSE(DecodeSessionSpec(EncodeSessionSpec(neither)).ok());

  WireSessionSpec both = SpaceSpecForTest();
  both.workload = "YCSB-A";
  EXPECT_FALSE(DecodeSessionSpec(EncodeSessionSpec(both)).ok());
}

TEST(MessageTest, CreateAndResumeCarryNameSpecCheckpoint) {
  WireSessionSpec spec = SpaceSpecForTest();
  std::string name, checkpoint;
  WireSessionSpec got;
  ASSERT_TRUE(
      DecodeCreateSession(EncodeCreateSession("job one", spec), &name, &got)
          .ok());
  EXPECT_EQ(name, "job one");
  EXPECT_EQ(got.seed, spec.seed);

  std::string multiline_checkpoint = "llamatune-checkpoint v3\nline two\n";
  ASSERT_TRUE(DecodeResume(EncodeResume("j", spec, multiline_checkpoint),
                           &name, &got, &checkpoint)
                  .ok());
  EXPECT_EQ(name, "j");
  EXPECT_EQ(checkpoint, multiline_checkpoint);
}

TEST(MessageTest, TrialAndResultRepliesAreBitExact) {
  Trial trial;
  trial.id = 42;
  trial.point = {0.125, std::nextafter(1.0, 2.0), -0.0};
  trial.config = Configuration{std::vector<double>{3.0, 0.5}};
  trial.is_baseline = false;
  Result<Trial> back = DecodeTrialReply(EncodeTrialReply(trial));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->id, 42);
  ASSERT_EQ(back->point.size(), 3u);
  EXPECT_TRUE(SameBits(back->point[1], std::nextafter(1.0, 2.0)));
  EXPECT_TRUE(SameBits(back->point[2], -0.0));

  TrialResult result;
  result.trial_id = 42;
  result.value = std::numeric_limits<double>::quiet_NaN();
  result.outcome = TrialOutcome::kCrashed;
  result.metrics = {1.0, 2.5};
  std::string rname;
  TrialResult rback;
  ASSERT_TRUE(DecodeTell(EncodeTell("job", result), &rname, &rback).ok());
  EXPECT_EQ(rname, "job");
  EXPECT_EQ(rback.trial_id, 42);
  EXPECT_TRUE(std::isnan(rback.value));
  EXPECT_TRUE(rback.crashed());
  EXPECT_EQ(rback.metrics, (std::vector<double>{1.0, 2.5}));
}

TEST(MessageTest, FidelityTokenRoundTripsAndLegacyDecodes) {
  // Racing rung trials carry a fidelity in (0, 1]; it must survive the
  // wire bit-for-bit.
  Trial trial;
  trial.id = 7;
  trial.point = {0.5};
  trial.fidelity = 0.25;
  Result<Trial> back = DecodeTrialReply(EncodeTrialReply(trial));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(SameBits(back->fidelity, 0.25));

  TrialResult result;
  result.trial_id = 7;
  result.value = 2.0;
  result.fidelity = std::nextafter(0.5, 1.0);
  std::string rname;
  TrialResult rback;
  ASSERT_TRUE(DecodeTell(EncodeTell("job", result), &rname, &rback).ok());
  EXPECT_TRUE(SameBits(rback.fidelity, std::nextafter(0.5, 1.0)));

  // Full fidelity is the default and emits no token: the encoding is
  // byte-identical to the pre-fidelity format, so pre-racing peers
  // decode full-fidelity traffic unchanged and their own encodings
  // decode here as full fidelity (old clients = full fidelity).
  Trial full = trial;
  full.fidelity = 1.0;
  std::string legacy = SerializeTrial(full);
  EXPECT_EQ(legacy.find(" fid "), std::string::npos);
  Result<Trial> legacy_back = ParseTrial(legacy);
  ASSERT_TRUE(legacy_back.ok()) << legacy_back.status().ToString();
  EXPECT_TRUE(SameBits(legacy_back->fidelity, 1.0));
  TrialResult full_result = result;
  full_result.fidelity = 1.0;
  std::string legacy_result = SerializeTrialResult(full_result);
  EXPECT_EQ(legacy_result.find(" fid "), std::string::npos);
  Result<TrialResult> legacy_result_back = ParseTrialResult(legacy_result);
  ASSERT_TRUE(legacy_result_back.ok());
  EXPECT_TRUE(SameBits(legacy_result_back->fidelity, 1.0));

  // Unknown trailing sections and out-of-range fidelities are
  // rejected, not clamped or ignored.
  EXPECT_FALSE(ParseTrial(SerializeTrial(trial) + " zzz").ok());
  EXPECT_FALSE(ParseTrial(legacy + " fid").ok());
  EXPECT_FALSE(
      ParseTrial(legacy + " fid " + EncodeDoubleBits(0.0)).ok());
  EXPECT_FALSE(
      ParseTrial(legacy + " fid " + EncodeDoubleBits(1.5)).ok());
  EXPECT_FALSE(
      ParseTrial(legacy + " fid " +
                 EncodeDoubleBits(std::numeric_limits<double>::quiet_NaN()))
          .ok());
}

TEST(FuzzTest, FidelityTokenParserNeverCrashesOnMutatedBytes) {
  // Byte-level fuzz of the fidelity-carrying serde forms: truncations
  // and random mutations must return a Status, never crash, and any
  // accepted fidelity must be in (0, 1].
  Trial trial;
  trial.id = 9;
  trial.point = {0.25, 0.75};
  trial.fidelity = 0.5;
  TrialResult result;
  result.trial_id = 9;
  result.value = 3.5;
  result.fidelity = 0.125;
  const std::string trial_line = SerializeTrial(trial);
  const std::string result_line = SerializeTrialResult(result);
  for (size_t cut = 0; cut <= trial_line.size(); ++cut) {
    Result<Trial> got = ParseTrial(trial_line.substr(0, cut));
    if (got.ok()) EXPECT_TRUE(got->fidelity > 0.0 && got->fidelity <= 1.0);
  }
  for (size_t cut = 0; cut <= result_line.size(); ++cut) {
    Result<TrialResult> got = ParseTrialResult(result_line.substr(0, cut));
    if (got.ok()) EXPECT_TRUE(got->fidelity > 0.0 && got->fidelity <= 1.0);
  }
  Rng rng(20260808);
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = rng.Bernoulli(0.5) ? trial_line : result_line;
    for (int m = 0; m < 3 && !mutated.empty(); ++m) {
      mutated[rng.UniformInt(0, mutated.size() - 1)] =
          static_cast<char>(rng.UniformInt(0, 255));
    }
    Result<Trial> t = ParseTrial(mutated);
    if (t.ok()) EXPECT_TRUE(t->fidelity > 0.0 && t->fidelity <= 1.0);
    Result<TrialResult> r = ParseTrialResult(mutated);
    if (r.ok()) EXPECT_TRUE(r->fidelity > 0.0 && r->fidelity <= 1.0);
  }
}

TEST(MessageTest, BatchesRoundTrip) {
  std::string name;
  int n = 0;
  ASSERT_TRUE(DecodeAskBatch(EncodeAskBatch("s", 5), &name, &n).ok());
  EXPECT_EQ(name, "s");
  EXPECT_EQ(n, 5);

  std::vector<Trial> trials(2);
  trials[0].id = 1;
  trials[0].is_baseline = true;
  trials[1].id = 2;
  trials[1].point = {0.5};
  Result<std::vector<Trial>> tback =
      DecodeTrialsReply(EncodeTrialsReply(trials));
  ASSERT_TRUE(tback.ok());
  ASSERT_EQ(tback->size(), 2u);
  EXPECT_TRUE((*tback)[0].is_baseline);
  EXPECT_EQ((*tback)[1].point, (std::vector<double>{0.5}));

  std::vector<TrialResult> results(2);
  results[0].trial_id = 1;
  results[0].value = 10.0;
  results[1].trial_id = 2;
  results[1].outcome = TrialOutcome::kCrashed;
  std::vector<TrialResult> rback;
  ASSERT_TRUE(
      DecodeTellBatch(EncodeTellBatch("s", results), &name, &rback).ok());
  ASSERT_EQ(rback.size(), 2u);
  EXPECT_TRUE(SameBits(rback[0].value, 10.0));
  EXPECT_TRUE(rback[1].crashed());
}

TEST(MessageTest, StatusRepliesCarryTimestampsAndDriving) {
  WireSessionStatus status;
  status.status.name = "job";
  status.status.optimizer_key = "smac";
  status.status.adapter_key = "llamatune";
  status.status.external = true;
  status.status.iterations_run = 7;
  status.status.num_iterations = 100;
  status.status.pending_trials = 3;
  status.status.finished = false;
  status.status.default_performance = 123.5;
  status.status.best_performance = 456.25;
  status.status.created_unix_ms = 1754500000000LL;
  status.status.last_activity_unix_ms = 1754500001234LL;
  status.driving = true;

  Result<WireSessionStatus> back = DecodeStatusReply(EncodeStatusReply(status));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->status.name, "job");
  EXPECT_EQ(back->status.pending_trials, 3);
  EXPECT_EQ(back->status.created_unix_ms, 1754500000000LL);
  EXPECT_EQ(back->status.last_activity_unix_ms, 1754500001234LL);
  EXPECT_TRUE(back->driving);

  Result<std::vector<WireSessionStatus>> list =
      DecodeStatusListReply(EncodeStatusListReply({status, status}));
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 2u);
  EXPECT_EQ((*list)[1].status.name, "job");
}

TEST(MessageTest, ErrorRoundTripsEveryCode) {
  for (int code = 1; code <= 17; ++code) {
    WireError in = static_cast<WireError>(code);
    WireError out = WireError::kInternal;
    std::string message;
    ASSERT_TRUE(
        DecodeError(EncodeError(in, "why it failed"), &out, &message).ok());
    EXPECT_EQ(out, in);
    EXPECT_EQ(message, "why it failed");
  }
}

TEST(MessageTest, StatusToWireErrorMappingRoundTrips) {
  // The session/hardening codes must survive the wire as themselves —
  // that is the whole point of satellite-typed errors.
  const std::vector<Status> statuses = {
      Status::SessionNotFound("a"),    Status::SessionAlreadyExists("b"),
      Status::Unavailable("c"),        Status::ResourceExhausted("d"),
      Status::InvalidArgument("e"),    Status::NotFound("f"),
      Status::FailedPrecondition("g"), Status::Internal("h"),
      Status::TrialExpired("i"),
  };
  for (const Status& status : statuses) {
    Status back =
        StatusFromWireError(WireErrorFromStatus(status), status.message());
    EXPECT_EQ(back.code(), status.code()) << status.ToString();
    EXPECT_EQ(back.message(), status.message());
  }
}

TEST(MessageTest, CheckpointAndClosedRepliesRoundTrip) {
  std::string checkpoint = "v3\nwith\nnewlines and spaces\n";
  Result<std::string> cback =
      DecodeCheckpointReply(EncodeCheckpointReply(checkpoint));
  ASSERT_TRUE(cback.ok());
  EXPECT_EQ(*cback, checkpoint);

  WireCloseResult close;
  close.iterations_run = 20;
  close.best_performance = 999.125;
  close.default_performance = -3.5;
  Result<WireCloseResult> back = DecodeClosedReply(EncodeClosedReply(close));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->iterations_run, 20);
  EXPECT_TRUE(SameBits(back->best_performance, 999.125));
  EXPECT_TRUE(SameBits(back->default_performance, -3.5));
}

TEST(MessageTest, TrialExpiredSurvivesTheWire) {
  // New code 16: a late Tell against an expired trial must arrive as
  // kTrialExpired, not as a stringly Internal error.
  Status typed = Status::TrialExpired("trial 7 expired");
  Status back = StatusFromWireError(WireErrorFromStatus(typed), typed.message());
  EXPECT_EQ(back.code(), StatusCode::kTrialExpired);
  EXPECT_EQ(back.message(), "trial 7 expired");

  WireError code = WireError::kInternal;
  std::string message;
  ASSERT_TRUE(DecodeError(EncodeError(WireError::kTrialExpired, "late"),
                          &code, &message)
                  .ok());
  EXPECT_EQ(code, WireError::kTrialExpired);
}

TEST(MessageTest, SessionSpecRoundTripsPendingDeadlineAndLegacyV1) {
  WireSessionSpec spec;
  spec.workload = "YCSB-A";
  spec.pending_deadline_ms = 45000;
  std::string payload = EncodeSessionSpec(spec);
  Result<WireSessionSpec> back = DecodeSessionSpec(payload);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->pending_deadline_ms, 45000);
  EXPECT_FALSE(back->racing);

  // A v2 payload (pre-racing peer) ends at the deadline token; it must
  // still decode, with racing off.
  size_t racing = payload.rfind(" racing ");
  ASSERT_NE(racing, std::string::npos);
  std::string v2 = payload.substr(0, racing);
  size_t version = v2.find("spec 3");
  ASSERT_NE(version, std::string::npos);
  v2.replace(version, 6, "spec 2");
  Result<WireSessionSpec> pre_racing = DecodeSessionSpec(v2);
  ASSERT_TRUE(pre_racing.ok()) << pre_racing.status().ToString();
  EXPECT_EQ(pre_racing->pending_deadline_ms, 45000);
  EXPECT_FALSE(pre_racing->racing);

  // A v1 payload (older still) also carries no deadline token; it must
  // still decode, with the deadline at 0.
  size_t deadline = v2.rfind(" deadline ");
  ASSERT_NE(deadline, std::string::npos);
  std::string v1 = v2.substr(0, deadline);
  version = v1.find("spec 2");
  ASSERT_NE(version, std::string::npos);
  v1.replace(version, 6, "spec 1");
  Result<WireSessionSpec> old = DecodeSessionSpec(v1);
  ASSERT_TRUE(old.ok()) << old.status().ToString();
  EXPECT_EQ(old->workload, "YCSB-A");
  EXPECT_EQ(old->pending_deadline_ms, 0);
  EXPECT_FALSE(old->racing);
}

TEST(MessageTest, SessionSpecRoundTripsRacingBlock) {
  WireSessionSpec spec;
  spec.workload = "TPC-C";
  spec.racing = true;
  spec.racing_cohort = 6;
  spec.racing_rungs = 4;
  spec.racing_min_fidelity = 0.125;
  spec.racing_eta = 3.0;
  spec.racing_ci_z = 2.33;
  Result<WireSessionSpec> back = DecodeSessionSpec(EncodeSessionSpec(spec));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back->racing);
  EXPECT_EQ(back->racing_cohort, 6);
  EXPECT_EQ(back->racing_rungs, 4);
  EXPECT_EQ(back->racing_min_fidelity, 0.125);
  EXPECT_EQ(back->racing_eta, 3.0);
  EXPECT_EQ(back->racing_ci_z, 2.33);
}

TEST(MessageTest, PendingReplyRoundTrips) {
  std::vector<Trial> trials(2);
  trials[0].id = 5;
  trials[0].point = {0.25, 0.5};
  trials[1].id = 6;
  trials[1].is_baseline = true;

  int64_t next = 0;
  std::vector<Trial> back;
  ASSERT_TRUE(
      DecodePendingReply(EncodePendingReply(7, trials), &next, &back).ok());
  EXPECT_EQ(next, 7);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].id, 5);
  EXPECT_EQ(back[0].point, (std::vector<double>{0.25, 0.5}));
  EXPECT_EQ(back[1].id, 6);
  EXPECT_TRUE(back[1].is_baseline);

  // Empty pending set is representable (session quiesced).
  ASSERT_TRUE(DecodePendingReply(EncodePendingReply(1, {}), &next, &back).ok());
  EXPECT_EQ(next, 1);
  EXPECT_TRUE(back.empty());

  EXPECT_FALSE(DecodePendingReply("garbage", &next, &back).ok());
}

TEST(MessageTest, ErrorRetryAfterHintRoundTripsAndLegacyDecodes) {
  // New trailing token: kOverloaded/kShuttingDown replies carry a
  // retry-after hint the resilient client honors.
  std::string payload =
      EncodeError(WireError::kOverloaded, "shed under load", 1250);
  WireError code = WireError::kInternal;
  std::string message;
  int64_t retry_ms = 0;
  ASSERT_TRUE(DecodeError(payload, &code, &message, &retry_ms).ok());
  EXPECT_EQ(code, WireError::kOverloaded);
  EXPECT_EQ(message, "shed under load");
  EXPECT_EQ(retry_ms, 1250);

  // A pre-hint decoder (no retry pointer) must still parse the hinted
  // payload — the append-only versioning rule.
  WireError legacy_code = WireError::kInternal;
  std::string legacy_message;
  ASSERT_TRUE(DecodeError(payload, &legacy_code, &legacy_message).ok());
  EXPECT_EQ(legacy_code, WireError::kOverloaded);
  EXPECT_EQ(legacy_message, "shed under load");

  // And a hint-aware decoder reading a hint-less payload sees 0.
  retry_ms = 99;
  ASSERT_TRUE(DecodeError(EncodeError(WireError::kBusy, "no hint"), &code,
                          &message, &retry_ms)
                  .ok());
  EXPECT_EQ(retry_ms, 0);

  // kOverloaded arrives client-side as Unavailable — retryable.
  EXPECT_EQ(StatusFromWireError(WireError::kOverloaded, "m").code(),
            StatusCode::kUnavailable);
}

TEST(MessageTest, HealthReplyRoundTrips) {
  WireServerHealth health;
  health.lifecycle = ServerLifecycle::kDraining;
  health.pending_requests = 17;
  health.sessions = 4;
  Result<WireServerHealth> back = DecodeHealthReply(EncodeHealthReply(health));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->lifecycle, ServerLifecycle::kDraining);
  EXPECT_EQ(back->pending_requests, 17);
  EXPECT_EQ(back->sessions, 4);

  EXPECT_FALSE(DecodeHealthReply("").ok());
  // An out-of-range lifecycle value must not decode into the enum.
  EXPECT_FALSE(DecodeHealthReply("health lifecycle 9 pending 0 sessions 0")
                   .ok());
}

TEST(MessageTest, StatsReplyRoundTripsIncludingTenantBreakdown) {
  WireServerStats stats;
  stats.lifecycle = ServerLifecycle::kRunning;
  stats.pending_requests = 3;
  stats.pending_expensive = 2;
  stats.sessions = 5;
  stats.busy_rejections = 7;
  stats.shed_overload = 11;
  stats.shed_deadline = 13;
  stats.sessions_evicted = 17;
  stats.autosaves_written = 19;
  stats.sessions_restored = 23;
  stats.tenant_sessions = {{"", 1}, {"tenant a", 3}, {"z", 1}};
  Result<WireServerStats> back = DecodeStatsReply(EncodeStatsReply(stats));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->lifecycle, ServerLifecycle::kRunning);
  EXPECT_EQ(back->pending_requests, 3);
  EXPECT_EQ(back->pending_expensive, 2);
  EXPECT_EQ(back->sessions, 5);
  EXPECT_EQ(back->busy_rejections, 7);
  EXPECT_EQ(back->shed_overload, 11);
  EXPECT_EQ(back->shed_deadline, 13);
  EXPECT_EQ(back->sessions_evicted, 17);
  EXPECT_EQ(back->autosaves_written, 19);
  EXPECT_EQ(back->sessions_restored, 23);
  ASSERT_EQ(back->tenant_sessions.size(), 3u);
  EXPECT_EQ(back->tenant_sessions[0].first, "");
  EXPECT_EQ(back->tenant_sessions[1].first, "tenant a");
  EXPECT_EQ(back->tenant_sessions[1].second, 3);

  EXPECT_FALSE(DecodeStatsReply("stats truncated").ok());
}

TEST(MessageTest, DeadlineRiderIsInvisibleToRequestDecoders) {
  // The rider rides any request payload; decoders that stop after
  // their required fields must not see it, and DeadlineRiderMs must
  // recover it exactly.
  std::string payload = EncodeNameOnly("job-1");
  AppendDeadlineRider(&payload, 750);
  EXPECT_EQ(DeadlineRiderMs(payload), 750);
  Result<std::string> name = DecodeNameOnly(payload);
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(*name, "job-1");

  // No-op cases: non-positive deadline appends nothing; garbage or
  // rider-less payloads read back as 0.
  std::string untouched = EncodeNameOnly("job-1");
  AppendDeadlineRider(&untouched, 0);
  EXPECT_EQ(untouched, EncodeNameOnly("job-1"));
  EXPECT_EQ(DeadlineRiderMs(untouched), 0);
  EXPECT_EQ(DeadlineRiderMs(""), 0);
  EXPECT_EQ(DeadlineRiderMs("ddl"), 0);
  EXPECT_EQ(DeadlineRiderMs("ddl -5"), 0);
  EXPECT_EQ(DeadlineRiderMs("ddl notanumber"), 0);
  EXPECT_EQ(DeadlineRiderMs("x ddl 5 trailing"), 0);

  // An empty payload (kPing-style) still carries a rider cleanly.
  std::string empty;
  AppendDeadlineRider(&empty, 42);
  EXPECT_EQ(DeadlineRiderMs(empty), 42);
}

TEST(FrameTest, ByteAtATimeDecodesEveryMessageKind) {
  // One frame of every request and reply kind, pushed through a
  // single decoder one byte at a time: no kind may depend on its
  // payload arriving in fewer reads.
  WireSessionSpec spec = SpaceSpecForTest();
  TrialResult result;
  result.trial_id = 3;
  result.value = 12.5;
  result.fidelity = 0.5;  // rung result: exercises the fid token
  Trial trial;
  trial.id = 4;
  trial.point = {0.5};
  trial.fidelity = 0.25;  // rung trial: exercises the fid token
  WireSessionStatus status;
  status.status.name = "job";
  WireCloseResult close;
  close.iterations_run = 2;

  const std::vector<std::pair<MessageKind, std::string>> messages = {
      {MessageKind::kHello, EncodeHello("tenant x")},
      {MessageKind::kCreateSession, EncodeCreateSession("job", spec)},
      {MessageKind::kResume, EncodeResume("job", spec, "ckpt\ntext\n")},
      {MessageKind::kResumeSaved, EncodeNameOnly("job")},
      {MessageKind::kAsk, EncodeNameOnly("job")},
      {MessageKind::kAskBatch, EncodeAskBatch("job", 3)},
      {MessageKind::kTell, EncodeTell("job", result)},
      {MessageKind::kTellBatch, EncodeTellBatch("job", {result, result})},
      {MessageKind::kStep, EncodeNameOnly("job")},
      {MessageKind::kStartDrive, EncodeNameOnly("job")},
      {MessageKind::kGetStatus, EncodeNameOnly("job")},
      {MessageKind::kListSessions, ""},
      {MessageKind::kCheckpoint, EncodeNameOnly("job")},
      {MessageKind::kClose, EncodeNameOnly("job")},
      {MessageKind::kPing, ""},
      {MessageKind::kGetPending, EncodeNameOnly("job")},
      {MessageKind::kOk, ""},
      {MessageKind::kError, EncodeError(WireError::kTrialExpired, "late")},
      {MessageKind::kTrialReply, EncodeTrialReply(trial)},
      {MessageKind::kTrialsReply, EncodeTrialsReply({trial})},
      {MessageKind::kSteppedReply, EncodeSteppedReply(true)},
      {MessageKind::kStatusReply, EncodeStatusReply(status)},
      {MessageKind::kStatusListReply, EncodeStatusListReply({status})},
      {MessageKind::kCheckpointReply, EncodeCheckpointReply("text")},
      {MessageKind::kClosedReply, EncodeClosedReply(close)},
      {MessageKind::kPongReply, ""},
      {MessageKind::kPendingReply, EncodePendingReply(2, {trial})},
  };

  FrameDecoder decoder;
  for (const auto& message : messages) {
    std::string bytes = EncodeFrame(message.first, message.second);
    std::optional<Frame> got;
    for (size_t i = 0; i < bytes.size(); ++i) {
      decoder.Feed(bytes.data() + i, 1);
      Result<std::optional<Frame>> next = decoder.Next();
      ASSERT_TRUE(next.ok()) << "kind " << static_cast<int>(message.first)
                             << " byte " << i;
      if (next->has_value()) {
        EXPECT_EQ(i, bytes.size() - 1) << "frame completed early";
        got = std::move(*next);
      }
    }
    ASSERT_TRUE(got.has_value())
        << "kind " << static_cast<int>(message.first) << " never completed";
    EXPECT_EQ(got->kind, message.first);
    EXPECT_EQ(got->payload, message.second);
  }
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Fuzz: decoders are total functions
// ---------------------------------------------------------------------------

std::string RandomBytes(Rng& rng, int max_len) {
  int len = static_cast<int>(rng.UniformInt(0, max_len));
  std::string out;
  out.reserve(len);
  for (int i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(rng.UniformInt(0, 255)));
  }
  return out;
}

TEST(FuzzTest, FrameDecoderNeverCrashesOnRandomBytes) {
  Rng rng(20260807);
  for (int round = 0; round < 2000; ++round) {
    FrameDecoder decoder(/*max_payload=*/1 << 16);
    std::string bytes = RandomBytes(rng, 256);
    // Occasionally give the stream a valid prelude so decoding gets
    // past the magic/version checks and exercises the length path.
    if (rng.Bernoulli(0.5)) {
      std::string valid = EncodeFrame(MessageKind::kPing, "seed");
      bytes = valid.substr(0, rng.UniformInt(0, valid.size())) + bytes;
    }
    size_t offset = 0;
    while (offset < bytes.size()) {
      size_t chunk = static_cast<size_t>(rng.UniformInt(1, 32));
      chunk = std::min(chunk, bytes.size() - offset);
      decoder.Feed(bytes.data() + offset, chunk);
      offset += chunk;
      // Drain; both errors and frames are acceptable, crashing is not.
      for (;;) {
        Result<std::optional<Frame>> next = decoder.Next();
        if (!next.ok() || !next->has_value()) break;
      }
    }
  }
}

TEST(FuzzTest, PayloadDecodersNeverCrashOnRandomBytes) {
  Rng rng(77002);
  // Seed corpus: valid payloads that get truncated/mutated, plus pure
  // noise.
  WireSessionSpec spec = SpaceSpecForTest();
  Trial trial;
  trial.id = 3;
  trial.point = {0.5, 0.25};
  trial.fidelity = 0.5;
  TrialResult result;
  result.trial_id = 3;
  result.value = 1.5;
  result.fidelity = 0.25;
  WireSessionStatus status;
  status.status.name = "s";
  const std::vector<std::string> corpus = {
      EncodeHello("tenant"),
      EncodeSessionSpec(spec),
      EncodeCreateSession("n", spec),
      EncodeResume("n", spec, "checkpoint text"),
      EncodeNameOnly("n"),
      EncodeAskBatch("n", 3),
      EncodeTell("n", result),
      EncodeTellBatch("n", {result, result}),
      EncodeError(WireError::kBusy, "m"),
      EncodeError(WireError::kOverloaded, "shed", 125),
      EncodeTrialReply(trial),
      EncodeTrialsReply({trial}),
      EncodeSteppedReply(true),
      EncodeStatusReply(status),
      EncodeStatusListReply({status}),
      EncodeCheckpointReply("cp"),
      EncodeClosedReply(WireCloseResult()),
      EncodeHealthReply(WireServerHealth()),
      EncodeStatsReply(WireServerStats()),
      EncodeNameOnly("n") + " ddl 500",
  };

  for (int round = 0; round < 3000; ++round) {
    std::string payload;
    int mode = static_cast<int>(rng.UniformInt(0, 2));
    if (mode == 0) {
      payload = RandomBytes(rng, 200);
    } else {
      payload = corpus[rng.UniformInt(0, corpus.size() - 1)];
      if (mode == 1 && !payload.empty()) {
        payload.resize(rng.UniformInt(0, payload.size()));  // truncate
      } else {
        for (int m = 0; m < 4 && !payload.empty(); ++m) {   // mutate
          payload[rng.UniformInt(0, payload.size() - 1)] =
              static_cast<char>(rng.UniformInt(0, 255));
        }
      }
    }

    // Every decoder must return (ok or error), never crash or throw.
    std::string s1, s2;
    int n = 0;
    WireSessionSpec d_spec;
    TrialResult d_result;
    std::vector<TrialResult> d_results;
    WireError d_code = WireError::kInternal;
    DecodeHello(payload);
    DecodeSessionSpec(payload);
    DecodeCreateSession(payload, &s1, &d_spec);
    DecodeResume(payload, &s1, &d_spec, &s2);
    DecodeNameOnly(payload);
    DecodeAskBatch(payload, &s1, &n);
    DecodeTell(payload, &s1, &d_result);
    DecodeTellBatch(payload, &s1, &d_results);
    int64_t d_retry = 0;
    DecodeError(payload, &d_code, &s1);
    DecodeError(payload, &d_code, &s1, &d_retry);
    DecodeTrialReply(payload);
    DecodeTrialsReply(payload);
    DecodeSteppedReply(payload);
    DecodeStatusReply(payload);
    DecodeStatusListReply(payload);
    DecodeCheckpointReply(payload);
    DecodeClosedReply(payload);
    DecodeHealthReply(payload);
    DecodeStatsReply(payload);
    DeadlineRiderMs(payload);
  }
}

}  // namespace
}  // namespace net
}  // namespace llamatune
