#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench/bench_common.h"

// Batch quality on the fixed-seed simulator grid (ISSUE 4 acceptance
// criterion): at batch size 4, gpbo-qei must reach the sequential
// fallback's best-seen objective in <= 0.75x the evaluations, and
// gpbo-lp must not lose to the fallback.
//
// The grid definition (TPC-C, noiseless simulator, hesbo8 projection,
// base seed) is shared with bench/bm_batch.cc via
// bench::RunBatchGridCell, so the grid this test pins is exactly the
// grid CI regression-tracks through BENCH_batch.json. Curves are
// averaged over the seed grid before comparison: per-seed "reach the
// final best" comparisons on this landscape measure which run's last
// needle-jump landed later, not batch quality. Every cell is
// bit-for-bit deterministic at any thread count, so these are pinned
// inequalities guarding the batch suggestion logic — they either hold
// exactly or the logic changed.

namespace llamatune {
namespace {

constexpr int kIterations = 64;
constexpr int kBatch = 4;
constexpr int kNumSeeds = 5;

/// Mean best-so-far curve over the seed grid.
std::vector<double> MeanCurve(const std::string& optimizer_key) {
  std::vector<double> mean(kIterations, 0.0);
  for (int s = 0; s < kNumSeeds; ++s) {
    uint64_t seed = bench::kBatchGridBaseSeed + static_cast<uint64_t>(s);
    std::vector<double> curve =
        bench::RunBatchGridCell(optimizer_key, seed, kIterations, kBatch)
            .kb.BestSoFarObjective();
    EXPECT_EQ(curve.size(), static_cast<size_t>(kIterations));
    for (int i = 0; i < kIterations && i < static_cast<int>(curve.size());
         ++i) {
      mean[i] += curve[i];
    }
  }
  for (double& v : mean) v /= kNumSeeds;
  return mean;
}

TEST(BatchQualityTest, QeiReachesFallbackBestIn075xEvaluations) {
  std::vector<double> fallback = MeanCurve("gpbo");
  std::vector<double> qei = MeanCurve("gpbo-qei");
  double target = fallback.back();
  int fallback_evals = bench::EvalsToReach(fallback, target);
  int qei_evals = bench::EvalsToReach(qei, target);

  // The batch-aware mode must reach the fallback's best at all...
  EXPECT_LE(qei_evals, kIterations);
  // ...and within 0.75x the evaluations (the ISSUE 4 acceptance
  // bound; the pinned grid currently measures ~0.52x).
  EXPECT_LE(qei_evals, 0.75 * fallback_evals)
      << "qEI took " << qei_evals << " evaluations to reach " << target
      << " vs " << fallback_evals << " for the sequential fallback";
}

TEST(BatchQualityTest, LocalPenalizationDoesNotLoseToFallback) {
  std::vector<double> fallback = MeanCurve("gpbo");
  std::vector<double> lp = MeanCurve("gpbo-lp");
  double target = fallback.back();
  int fallback_evals = bench::EvalsToReach(fallback, target);
  int lp_evals = bench::EvalsToReach(lp, target);

  // LP is the cheaper mode; it must still dominate the naive fallback
  // on this grid (currently ~0.39x).
  EXPECT_LE(lp_evals, kIterations);
  EXPECT_LE(lp_evals, fallback_evals)
      << "LP took " << lp_evals << " evaluations to reach " << target
      << " vs " << fallback_evals << " for the sequential fallback";
}

}  // namespace
}  // namespace llamatune
