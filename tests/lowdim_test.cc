#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/dbsim/knob_catalog.h"
#include "src/lowdim/bucketizer.h"
#include "src/lowdim/special_value_bias.h"

namespace llamatune {
namespace {

KnobSpec HybridKnob() {
  return WithSpecialValues(IntegerKnob("backend_flush_after", 0, 256, 0),
                           {0});
}

TEST(SvbTest, BelowBiasYieldsSpecial) {
  SpecialValueBias svb(0.2);
  KnobSpec k = HybridKnob();
  EXPECT_EQ(svb.Apply(k, 0.0), 0.0);
  EXPECT_EQ(svb.Apply(k, 0.1), 0.0);
  EXPECT_EQ(svb.Apply(k, 0.199), 0.0);
}

TEST(SvbTest, AboveBiasMapsOntoRegularRange) {
  SpecialValueBias svb(0.2);
  KnobSpec k = HybridKnob();
  EXPECT_EQ(svb.Apply(k, 0.2), 1.0);  // regular minimum
  EXPECT_EQ(svb.Apply(k, 1.0), 256.0);
  double mid = svb.Apply(k, 0.6);
  EXPECT_GT(mid, 1.0);
  EXPECT_LT(mid, 256.0);
  EXPECT_FALSE(k.IsSpecialValue(mid));
}

TEST(SvbTest, RegularBandIsMonotone) {
  SpecialValueBias svb(0.2);
  KnobSpec k = HybridKnob();
  double prev = svb.Apply(k, 0.2);
  for (double u = 0.25; u <= 1.0; u += 0.05) {
    double cur = svb.Apply(k, u);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(SvbTest, NonHybridPassthroughScaling) {
  SpecialValueBias svb(0.2);
  KnobSpec k = IntegerKnob("plain", 0, 100, 50);
  EXPECT_EQ(svb.Apply(k, 0.0), 0.0);
  EXPECT_EQ(svb.Apply(k, 0.5), 50.0);
  EXPECT_EQ(svb.Apply(k, 1.0), 100.0);
  EXPECT_EQ(svb.SpecialMass(k), 0.0);
}

TEST(SvbTest, CategoricalBinning) {
  SpecialValueBias svb(0.2);
  KnobSpec k = CategoricalKnob("c", {"x", "y"}, 0);
  EXPECT_EQ(svb.Apply(k, 0.2), 0.0);
  EXPECT_EQ(svb.Apply(k, 0.7), 1.0);
}

TEST(SvbTest, ZeroBiasDisablesSpecialHandling) {
  SpecialValueBias svb(0.0);
  KnobSpec k = HybridKnob();
  // Plain min-max scaling over the full (special-inclusive) range.
  EXPECT_EQ(svb.Apply(k, 0.0), 0.0);
  EXPECT_EQ(svb.Apply(k, 0.5), 128.0);
}

TEST(SvbTest, MultipleSpecialsSplitTheBand) {
  SpecialValueBias svb(0.2);
  KnobSpec k = WithSpecialValues(IntegerKnob("multi", -1, 100, 1), {-1, 0});
  EXPECT_EQ(svb.Apply(k, 0.01), -1.0);  // first half of the band
  EXPECT_EQ(svb.Apply(k, 0.05), -1.0);
  EXPECT_EQ(svb.Apply(k, 0.15), 0.0);  // second half
  EXPECT_EQ(svb.Apply(k, 0.2), 1.0);   // regular minimum
}

TEST(SvbTest, NegativeSpecialBelowRegularRange) {
  SpecialValueBias svb(0.2);
  KnobSpec k = WithSpecialValues(IntegerKnob("wal_buffers", -1, 262143, -1),
                                 {-1});
  EXPECT_EQ(svb.Apply(k, 0.1), -1.0);
  EXPECT_EQ(svb.Apply(k, 0.2), 0.0);
  EXPECT_EQ(svb.Apply(k, 1.0), 262143.0);
}

// Property sweep: empirical special mass tracks the configured bias.
class SvbMassProperty : public ::testing::TestWithParam<double> {};

TEST_P(SvbMassProperty, EmpiricalMassMatchesBias) {
  double bias = GetParam();
  SpecialValueBias svb(bias);
  KnobSpec k = HybridKnob();
  Rng rng(17);
  int specials = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (k.IsSpecialValue(svb.Apply(k, rng.Uniform(0.0, 1.0)))) ++specials;
  }
  EXPECT_NEAR(static_cast<double>(specials) / n, bias, 0.012);
}

INSTANTIATE_TEST_SUITE_P(Biases, SvbMassProperty,
                         ::testing::Values(0.05, 0.1, 0.2, 0.3, 0.5));

// ------------------------------------------------------------ Bucketizer

TEST(BucketizerTest, ApplyLimitsContinuousDims) {
  Bucketizer b(100);
  SearchSpace s({SearchDim::Continuous(0, 1), SearchDim::Categorical(3)});
  SearchSpace out = b.Apply(s);
  EXPECT_EQ(out.dim(0).num_buckets, 100);
  EXPECT_EQ(out.dim(1).type, SearchDim::Type::kCategorical);
}

TEST(BucketizerTest, KnobSpaceBucketsMatchDistinctCounts) {
  ConfigSpace space = dbsim::PostgresV96Catalog();
  Bucketizer b(10000);
  SearchSpace s = b.BucketizedKnobSpace(space);
  ASSERT_EQ(s.num_dims(), space.num_knobs());
  for (int i = 0; i < space.num_knobs(); ++i) {
    const KnobSpec& spec = space.knob(i);
    if (spec.type == KnobType::kCategorical) {
      EXPECT_EQ(s.dim(i).num_categories,
                static_cast<int64_t>(spec.categories.size()));
      continue;
    }
    int64_t distinct = spec.NumDistinctValues();
    if (distinct != 0 && distinct <= 10000) {
      EXPECT_EQ(s.dim(i).num_buckets, distinct) << spec.name;
    } else {
      EXPECT_EQ(s.dim(i).num_buckets, 10000) << spec.name;
    }
  }
}

TEST(BucketizerTest, PaperPolicyAffectsAboutHalfTheKnobs) {
  // Paper §4.2: K = 10,000 was chosen so that P% ~ 50% of knobs are
  // bucketized.
  ConfigSpace space = dbsim::PostgresV96Catalog();
  Bucketizer b(10000);
  int affected = b.NumAffectedKnobs(space);
  double fraction = static_cast<double>(affected) / space.num_knobs();
  EXPECT_GT(fraction, 0.25);
  EXPECT_LT(fraction, 0.75);
}

TEST(BucketizerTest, LargerKAffectsFewerKnobs) {
  ConfigSpace space = dbsim::PostgresV96Catalog();
  int prev = space.num_knobs() + 1;
  for (int64_t k : {100, 10000, 1000000}) {
    int affected = Bucketizer(k).NumAffectedKnobs(space);
    EXPECT_LE(affected, prev);
    prev = affected;
  }
}

}  // namespace
}  // namespace llamatune
