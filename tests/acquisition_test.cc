#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "src/model/acquisition.h"

namespace llamatune {
namespace {

TEST(EiTest, NonNegative) {
  EXPECT_GE(ExpectedImprovement(0.0, 1.0, 10.0), 0.0);
  EXPECT_GE(ExpectedImprovement(-5.0, 0.01, 10.0), 0.0);
}

TEST(EiTest, ZeroVarianceDegeneratesToReluImprovement) {
  EXPECT_DOUBLE_EQ(ExpectedImprovement(12.0, 0.0, 10.0), 2.0);
  EXPECT_DOUBLE_EQ(ExpectedImprovement(8.0, 0.0, 10.0), 0.0);
}

TEST(EiTest, IncreasingInMean) {
  double prev = ExpectedImprovement(0.0, 1.0, 5.0);
  for (double mean = 1.0; mean <= 10.0; mean += 1.0) {
    double cur = ExpectedImprovement(mean, 1.0, 5.0);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(EiTest, PositiveWithUncertaintyEvenBelowIncumbent) {
  EXPECT_GT(ExpectedImprovement(9.0, 4.0, 10.0), 0.0);
}

TEST(EiTest, MoreVarianceMoreExplorationValue) {
  double low = ExpectedImprovement(9.0, 0.25, 10.0);
  double high = ExpectedImprovement(9.0, 4.0, 10.0);
  EXPECT_GT(high, low);
}

TEST(EiTest, XiShrinksAcquisition) {
  EXPECT_LT(ExpectedImprovement(11.0, 1.0, 10.0, 0.5),
            ExpectedImprovement(11.0, 1.0, 10.0, 0.0));
}

TEST(EiTest, BatchMatchesScalar) {
  std::vector<double> means = {1.0, 5.0, 12.0};
  std::vector<double> variances = {1.0, 2.0, 0.5};
  auto batch = ExpectedImprovementBatch(means, variances, 10.0);
  ASSERT_EQ(batch.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(batch[i],
                     ExpectedImprovement(means[i], variances[i], 10.0));
  }
}

// The SoA kernel's branch-free select must reproduce the scalar EI to
// the last bit across the degenerate boundary (zero / negative /
// subnormal variance), where the smooth lane holds NaN or Inf.
TEST(EiTest, SoaKernelMatchesScalarAcrossDegenerateVariance) {
  std::vector<double> means = {12.0, 8.0, 10.0, 11.0, 9.5, 10.0};
  std::vector<double> variances = {0.0, 0.0, 0.0, 1e-30, -1.0, 4.0};
  std::vector<double> out(means.size());
  ExpectedImprovementInto(means.data(), variances.data(),
                          static_cast<int>(means.size()), 10.0, 0.0,
                          out.data());
  for (size_t i = 0; i < means.size(); ++i) {
    double scalar = ExpectedImprovement(means[i], variances[i], 10.0);
    EXPECT_DOUBLE_EQ(out[i], scalar) << "entry " << i;
    EXPECT_TRUE(std::isfinite(out[i])) << "entry " << i;
  }
}

TEST(ArgmaxEiTest, PicksFirstMaximumInIndexOrder) {
  std::vector<double> means = {10.5, 11.0, 11.0, 10.0};
  std::vector<double> variances = {1.0, 1.0, 1.0, 1.0};
  EXPECT_EQ(ArgmaxExpectedImprovement(means, variances, 10.0), 1);
}

// A degenerate pool entry (NaN mean / variance from a blown-up
// surrogate) must never win the argmax — and must not poison the
// running maximum through a NaN comparison.
TEST(ArgmaxEiTest, NanEntriesNeverWin) {
  double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> means = {nan, 10.2, 12.0, 11.0};
  std::vector<double> variances = {1.0, nan, 1.0, 1.0};
  EXPECT_EQ(ArgmaxExpectedImprovement(means, variances, 10.0), 2);
  // All-degenerate pool: still a valid index.
  std::vector<double> all_nan = {nan, nan};
  std::vector<double> unit = {1.0, 1.0};
  EXPECT_EQ(ArgmaxExpectedImprovement(all_nan, unit, 10.0), 0);
}

// Constant-objective pool: every variance collapses to ~0 and every
// EI to exactly 0 — the reduction must return a valid index instead of
// tripping on the degenerate scores.
TEST(ArgmaxEiTest, AllZeroEiReturnsFirstIndex) {
  std::vector<double> means(8, 5.0);
  std::vector<double> variances(8, 0.0);
  EXPECT_EQ(ArgmaxExpectedImprovement(means, variances, 5.0), 0);
}

// Property: EI at huge mean surplus approaches the surplus itself.
class EiAsymptote : public ::testing::TestWithParam<double> {};

TEST_P(EiAsymptote, LargeImprovementAsymptote) {
  double surplus = GetParam();
  double ei = ExpectedImprovement(10.0 + surplus, 1.0, 10.0);
  EXPECT_NEAR(ei, surplus, 0.05 + surplus * 0.01);
}

INSTANTIATE_TEST_SUITE_P(Surplus, EiAsymptote,
                         ::testing::Values(5.0, 10.0, 50.0, 100.0));

}  // namespace
}  // namespace llamatune
