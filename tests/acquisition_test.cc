#include <gtest/gtest.h>

#include "src/model/acquisition.h"

namespace llamatune {
namespace {

TEST(EiTest, NonNegative) {
  EXPECT_GE(ExpectedImprovement(0.0, 1.0, 10.0), 0.0);
  EXPECT_GE(ExpectedImprovement(-5.0, 0.01, 10.0), 0.0);
}

TEST(EiTest, ZeroVarianceDegeneratesToReluImprovement) {
  EXPECT_DOUBLE_EQ(ExpectedImprovement(12.0, 0.0, 10.0), 2.0);
  EXPECT_DOUBLE_EQ(ExpectedImprovement(8.0, 0.0, 10.0), 0.0);
}

TEST(EiTest, IncreasingInMean) {
  double prev = ExpectedImprovement(0.0, 1.0, 5.0);
  for (double mean = 1.0; mean <= 10.0; mean += 1.0) {
    double cur = ExpectedImprovement(mean, 1.0, 5.0);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(EiTest, PositiveWithUncertaintyEvenBelowIncumbent) {
  EXPECT_GT(ExpectedImprovement(9.0, 4.0, 10.0), 0.0);
}

TEST(EiTest, MoreVarianceMoreExplorationValue) {
  double low = ExpectedImprovement(9.0, 0.25, 10.0);
  double high = ExpectedImprovement(9.0, 4.0, 10.0);
  EXPECT_GT(high, low);
}

TEST(EiTest, XiShrinksAcquisition) {
  EXPECT_LT(ExpectedImprovement(11.0, 1.0, 10.0, 0.5),
            ExpectedImprovement(11.0, 1.0, 10.0, 0.0));
}

TEST(EiTest, BatchMatchesScalar) {
  std::vector<double> means = {1.0, 5.0, 12.0};
  std::vector<double> variances = {1.0, 2.0, 0.5};
  auto batch = ExpectedImprovementBatch(means, variances, 10.0);
  ASSERT_EQ(batch.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(batch[i],
                     ExpectedImprovement(means[i], variances[i], 10.0));
  }
}

// Property: EI at huge mean surplus approaches the surplus itself.
class EiAsymptote : public ::testing::TestWithParam<double> {};

TEST_P(EiAsymptote, LargeImprovementAsymptote) {
  double surplus = GetParam();
  double ei = ExpectedImprovement(10.0 + surplus, 1.0, 10.0);
  EXPECT_NEAR(ei, surplus, 0.05 + surplus * 0.01);
}

INSTANTIATE_TEST_SUITE_P(Surplus, EiAsymptote,
                         ::testing::Values(5.0, 10.0, 50.0, 100.0));

}  // namespace
}  // namespace llamatune
