#include <gtest/gtest.h>

#include <algorithm>

#include <memory>
#include <utility>

#include "src/analysis/importance.h"
#include "src/analysis/shap.h"
#include "src/core/adapter_registry.h"

namespace llamatune {
namespace {

// A synthetic objective with two planted important knobs out of ten.
class PlantedObjective : public ObjectiveFunction {
 public:
  PlantedObjective() : space_(MakeSpace()) {}

  static ConfigSpace MakeSpace() {
    std::vector<KnobSpec> knobs;
    for (int i = 0; i < 10; ++i) {
      knobs.push_back(
          RealKnob("knob_" + std::to_string(i), 0.0, 1.0, 0.5));
    }
    return *ConfigSpace::Create(std::move(knobs));
  }

  EvalResult Evaluate(const Configuration& config) override {
    EvalResult result;
    // knob_3 dominates, knob_7 matters, the rest are noise-free inert.
    result.value = 100.0 * config[3] + 30.0 * config[7];
    return result;
  }

  const ConfigSpace& config_space() const override { return space_; }

 private:
  ConfigSpace space_;
};

std::unique_ptr<SpaceAdapter> MakeIdentity(const ConfigSpace* space) {
  return std::move(AdapterRegistry::Global().Create("identity", space, 1))
      .ValueOrDie();
}

class AnalysisFixture : public ::testing::Test {
 protected:
  AnalysisFixture() : adapter_owned_(MakeIdentity(&objective_.config_space())),
                      adapter_(*adapter_owned_) {}
  PlantedObjective objective_;
  std::unique_ptr<SpaceAdapter> adapter_owned_;
  SpaceAdapter& adapter_;
};

TEST_F(AnalysisFixture, CorpusHasRequestedSize) {
  ImportanceCorpus corpus = BuildCorpus(&objective_, adapter_, 120, 1);
  EXPECT_EQ(corpus.points.size(), 120u);
  EXPECT_EQ(corpus.values.size(), 120u);
}

TEST_F(AnalysisFixture, PermutationImportanceFindsPlantedKnobs) {
  ImportanceCorpus corpus = BuildCorpus(&objective_, adapter_, 300, 2);
  auto ranking = PermutationImportance(corpus, adapter_, 3);
  ASSERT_EQ(ranking.size(), 10u);
  EXPECT_EQ(ranking[0].knob, "knob_3");
  EXPECT_EQ(ranking[1].knob, "knob_7");
  EXPECT_GT(ranking[0].score, ranking[1].score);
  // Scores are normalized and descending.
  double total = 0.0, prev = 1e18;
  for (const auto& ki : ranking) {
    total += ki.score;
    EXPECT_LE(ki.score, prev);
    prev = ki.score;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(AnalysisFixture, ShapImportanceFindsPlantedKnobs) {
  ImportanceCorpus corpus = BuildCorpus(&objective_, adapter_, 300, 4);
  std::vector<double> baseline(10, 0.5);
  auto ranking = ShapImportance(corpus, adapter_, baseline, {}, 5);
  ASSERT_EQ(ranking.size(), 10u);
  EXPECT_EQ(ranking[0].knob, "knob_3");
  EXPECT_EQ(ranking[1].knob, "knob_7");
}

TEST_F(AnalysisFixture, TopKnobsTruncates) {
  ImportanceCorpus corpus = BuildCorpus(&objective_, adapter_, 200, 6);
  auto ranking = PermutationImportance(corpus, adapter_, 7);
  auto top = TopKnobs(ranking, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], "knob_3");
  auto all = TopKnobs(ranking, 99);
  EXPECT_EQ(all.size(), 10u);
}

TEST_F(AnalysisFixture, TinyCorpusDegradesGracefully) {
  ImportanceCorpus corpus;
  corpus.points = {{0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5}};
  corpus.values = {1.0};
  auto ranking = PermutationImportance(corpus, adapter_, 8);
  EXPECT_EQ(ranking.size(), 10u);  // zero scores, but well-formed
}

TEST_F(AnalysisFixture, CrashedSamplesAreDropped) {
  class CrashyObjective : public PlantedObjective {
   public:
    EvalResult Evaluate(const Configuration& config) override {
      EvalResult result = PlantedObjective::Evaluate(config);
      if (config[0] > 0.8) result.crashed = true;
      return result;
    }
  };
  CrashyObjective objective;
  auto adapter_owned = MakeIdentity(&objective.config_space());
  SpaceAdapter& adapter = *adapter_owned;
  ImportanceCorpus corpus = BuildCorpus(&objective, adapter, 200, 9);
  EXPECT_LT(corpus.points.size(), 200u);
  EXPECT_GT(corpus.points.size(), 120u);
  EXPECT_EQ(corpus.points.size(), corpus.values.size());
  for (const auto& p : corpus.points) EXPECT_LE(p[0], 0.8001);
}

// Property: importance rankings are deterministic per seed.
class ImportanceDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(ImportanceDeterminism, SameSeedSameRanking) {
  PlantedObjective objective;
  auto adapter_owned = MakeIdentity(&objective.config_space());
  SpaceAdapter& adapter = *adapter_owned;
  ImportanceCorpus corpus = BuildCorpus(&objective, adapter, 150, 10);
  auto a = PermutationImportance(corpus, adapter, GetParam());
  auto b = PermutationImportance(corpus, adapter, GetParam());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].knob, b[i].knob);
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImportanceDeterminism,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace llamatune
