#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/fault_injection.h"
#include "src/common/serde.h"
#include "src/knobs/config_space.h"
#include "src/net/frame.h"
#include "src/net/message.h"
#include "src/net/tuning_client.h"
#include "src/net/tuning_server.h"
#include "src/service/tuning_service.h"

namespace llamatune {
namespace net {
namespace {

using service::SessionSpec;
using service::TuningService;

/// Same deterministic "external DBMS" surface as service_test.cc: the
/// wire-vs-in-process equality pins depend on both sides measuring
/// identically.
double ExternalMeasure(int job, const Configuration& config) {
  double x = config[0] / 100.0;
  double y = config[1];
  double peak_x = 0.2 + 0.08 * job;
  double peak_y = 0.9 - 0.07 * job;
  return 1000.0 - 900.0 * ((x - peak_x) * (x - peak_x) +
                           (y - peak_y) * (y - peak_y)) +
         25.0 * job;
}

std::vector<KnobSpec> TestKnobs() {
  return {IntegerKnob("cache_mb", 0, 100, 50),
          RealKnob("target_ratio", 0.0, 1.0, 0.5)};
}

WireSessionSpec ExternalWireSpec(int job) {
  WireSessionSpec spec;
  spec.space_knobs = TestKnobs();
  spec.maximize = true;
  spec.optimizer_key = "random";
  spec.adapter_key = "identity";
  spec.seed = 100 + job;
  spec.num_iterations = 12;
  return spec;
}

/// A checkpoint's "state" line carries accumulated wall-clock
/// optimizer seconds — the only non-deterministic bytes in an
/// otherwise bit-exact trajectory. Zero that token so equality means
/// "identical trial history".
std::string Trajectory(const std::string& checkpoint) {
  std::istringstream in(checkpoint);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("state ", 0) == 0) {
      line = line.substr(0, line.find_last_of(' ')) + " <wall-clock>";
    }
    out << line << '\n';
  }
  return out.str();
}

std::string FreshDir(const std::string& tag) {
  static int counter = 0;
  std::string dir = ::testing::TempDir() + "llamatune-" + tag + "-" +
                    std::to_string(::getpid()) + "-" +
                    std::to_string(counter++);
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

/// Drives an external session over the wire until Ask says the budget
/// is gone.
void DriveOverWire(TuningClient& client, const std::string& name, int job) {
  for (;;) {
    Result<Trial> trial = client.Ask(name);
    if (!trial.ok()) break;
    TrialResult result;
    result.trial_id = trial->id;
    result.value = ExternalMeasure(job, trial->config);
    ASSERT_TRUE(client.Tell(name, result).ok());
  }
}

/// In-process reference: same spec, same measure, plain TuningService.
std::string ReferenceCheckpoint(int job, int rounds_before_checkpoint = -1) {
  static ConfigSpace space = *ConfigSpace::Create(TestKnobs());
  TuningService service;
  SessionSpec spec;
  spec.space = &space;
  spec.optimizer_key = "random";
  spec.adapter_key = "identity";
  spec.seed = 100 + job;
  spec.num_iterations = 12;
  EXPECT_TRUE(service.CreateSession("ref", spec).ok());
  int round = 0;
  for (;;) {
    if (rounds_before_checkpoint >= 0 && round == rounds_before_checkpoint) {
      break;
    }
    Result<Trial> trial = service.Ask("ref");
    if (!trial.ok()) break;
    TrialResult result;
    result.trial_id = trial->id;
    result.value = ExternalMeasure(job, trial->config);
    EXPECT_TRUE(service.Tell("ref", result).ok());
    ++round;
  }
  Result<std::string> checkpoint = service.Checkpoint("ref");
  EXPECT_TRUE(checkpoint.ok());
  return checkpoint.ok() ? *checkpoint : std::string();
}

/// Raw-socket caller for protocol-level tests the typed client cannot
/// express (garbage kinds, oversized frames).
class RawConn {
 public:
  bool Connect(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
           0;
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool Send(const std::string& bytes) {
    return ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL) ==
           static_cast<ssize_t>(bytes.size());
  }

  /// Reads until one frame decodes (or the peer closes / errors).
  Result<Frame> ReadFrame() {
    char buf[4096];
    for (;;) {
      Result<std::optional<Frame>> next = decoder_.Next();
      if (!next.ok()) return next.status();
      if (next->has_value()) return std::move(**next);
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return Status::Internal("raw: connection closed");
      decoder_.Feed(buf, static_cast<size_t>(n));
    }
  }

  /// True when the server hangs up (recv sees EOF).
  bool WaitForClose() {
    char buf[256];
    for (;;) {
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n == 0) return true;
      if (n < 0) return false;
    }
  }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

TEST(ServerTest, WireDrivenSessionMatchesInProcessBitForBit) {
  TuningServer server;
  ASSERT_TRUE(server.Start().ok());

  TuningClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.Ping().ok());
  ASSERT_TRUE(client.Hello("tenant-a").ok());

  ASSERT_TRUE(client.CreateSession("job", ExternalWireSpec(3)).ok());
  DriveOverWire(client, "job", 3);

  Result<WireSessionStatus> status = client.GetStatus("job");
  ASSERT_TRUE(status.ok());
  EXPECT_TRUE(status->status.finished);
  EXPECT_EQ(status->status.iterations_run, 12);
  EXPECT_GT(status->status.created_unix_ms, 0);
  EXPECT_GE(status->status.last_activity_unix_ms,
            status->status.created_unix_ms);

  // The end-to-end determinism pin: the wire-driven trial history is
  // byte-identical to the in-process one.
  Result<std::string> remote = client.Checkpoint("job");
  ASSERT_TRUE(remote.ok());
  EXPECT_EQ(Trajectory(*remote), Trajectory(ReferenceCheckpoint(3)));

  Result<WireCloseResult> closed = client.Close("job");
  ASSERT_TRUE(closed.ok());
  EXPECT_EQ(closed->iterations_run, 12);
  server.Stop();
}

TEST(ServerTest, BatchAskTellOverWire) {
  TuningServer server;
  ASSERT_TRUE(server.Start().ok());
  TuningClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  WireSessionSpec spec = ExternalWireSpec(1);
  spec.batch_size = 3;
  ASSERT_TRUE(client.CreateSession("batched", spec).ok());

  // First batch is the baseline alone (protocol invariant).
  Result<std::vector<Trial>> first = client.AskBatch("batched", 3);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->size(), 1u);
  EXPECT_TRUE((*first)[0].is_baseline);
  std::vector<TrialResult> results;
  for (const Trial& trial : *first) {
    TrialResult r;
    r.trial_id = trial.id;
    r.value = ExternalMeasure(1, trial.config);
    results.push_back(r);
  }
  ASSERT_TRUE(client.TellBatch("batched", results).ok());

  Result<std::vector<Trial>> second = client.AskBatch("batched", 3);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->size(), 3u);

  Result<WireSessionStatus> status = client.GetStatus("batched");
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->status.pending_trials, 3);
  server.Stop();
}

TEST(ServerTest, StartDriveRunsWorkloadSessionInBackground) {
  TuningServer server;
  ASSERT_TRUE(server.Start().ok());
  TuningClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  WireSessionSpec spec;
  spec.workload = "YCSB-A";
  spec.optimizer_key = "random";
  spec.adapter_key = "llamatune";
  spec.seed = 5;
  spec.num_iterations = 6;
  ASSERT_TRUE(client.CreateSession("sim", spec).ok());
  ASSERT_TRUE(client.StartDrive("sim").ok());
  ASSERT_TRUE(client.StartDrive("sim").ok());  // idempotent while running

  // The drive runs on the pool; the connection stays responsive.
  ASSERT_TRUE(client.Ping().ok());
  for (int i = 0; i < 3000; ++i) {
    Result<WireSessionStatus> status = client.GetStatus("sim");
    ASSERT_TRUE(status.ok());
    if (status->status.finished && !status->driving) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  Result<WireSessionStatus> status = client.GetStatus("sim");
  ASSERT_TRUE(status.ok());
  EXPECT_TRUE(status->status.finished);
  EXPECT_FALSE(status->driving);
  EXPECT_EQ(status->status.iterations_run, 6);

  // Bit-for-bit against an in-process Drive of the same spec.
  Result<std::string> remote = client.Checkpoint("sim");
  ASSERT_TRUE(remote.ok());
  TuningService reference;
  SessionSpec ref_spec;
  ref_spec.workload = *dbsim::WorkloadByName("YCSB-A");
  ref_spec.optimizer_key = "random";
  ref_spec.adapter_key = "llamatune";
  ref_spec.seed = 5;
  ref_spec.num_iterations = 6;
  ASSERT_TRUE(reference.CreateSession("ref", ref_spec).ok());
  ASSERT_TRUE(reference.Drive("ref").ok());
  Result<std::string> local = reference.Checkpoint("ref");
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(Trajectory(*remote), Trajectory(*local));
  server.Stop();
}

TEST(ServerTest, TypedErrorsSurviveTheWire) {
  TuningServer server;
  ASSERT_TRUE(server.Start().ok());
  TuningClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  // Session-level codes arrive as themselves, not as strings.
  EXPECT_EQ(client.Ask("nope").status().code(), StatusCode::kSessionNotFound);
  EXPECT_EQ(client.Checkpoint("nope").status().code(),
            StatusCode::kSessionNotFound);

  ASSERT_TRUE(client.CreateSession("job", ExternalWireSpec(0)).ok());
  EXPECT_EQ(client.CreateSession("job", ExternalWireSpec(0)).code(),
            StatusCode::kSessionAlreadyExists);
  EXPECT_EQ(client.Step("job").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(client.StartDrive("job").code(), StatusCode::kFailedPrecondition);

  WireSessionSpec bad = ExternalWireSpec(0);
  bad.optimizer_key = "no-such-optimizer";
  EXPECT_EQ(client.CreateSession("other", bad).code(), StatusCode::kNotFound);

  WireSessionSpec bad_workload;
  bad_workload.workload = "NO-SUCH-WORKLOAD";
  EXPECT_EQ(client.CreateSession("other", bad_workload).code(),
            StatusCode::kNotFound);
  server.Stop();
}

TEST(ServerTest, NaNTellsAreRejectedOverTheWire) {
  TuningServer server;
  ASSERT_TRUE(server.Start().ok());
  TuningClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.CreateSession("nan", ExternalWireSpec(1)).ok());

  Result<Trial> baseline = client.Ask("nan");
  ASSERT_TRUE(baseline.ok());
  TrialResult bad;
  bad.trial_id = baseline->id;
  bad.value = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(client.Tell("nan", bad).code(), StatusCode::kInvalidArgument);
  bad.value = std::numeric_limits<double>::infinity();
  EXPECT_EQ(client.TellBatch("nan", {bad}).code(),
            StatusCode::kInvalidArgument);

  // The session is unharmed: the real measurement still lands.
  bad.value = ExternalMeasure(1, baseline->config);
  EXPECT_TRUE(client.Tell("nan", bad).ok());
  server.Stop();
}

TEST(ServerTest, DeadlineExpiryOverTheWire) {
  TuningServer server;
  ASSERT_TRUE(server.Start().ok());
  TuningClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  WireSessionSpec spec = ExternalWireSpec(2);
  spec.pending_deadline_ms = 30;
  ASSERT_TRUE(client.CreateSession("exp", spec).ok());
  Result<Trial> baseline = client.Ask("exp");
  ASSERT_TRUE(baseline.ok());
  TrialResult result;
  result.trial_id = baseline->id;
  result.value = ExternalMeasure(2, baseline->config);
  ASSERT_TRUE(client.Tell("exp", result).ok());

  Result<Trial> doomed = client.Ask("exp");
  ASSERT_TRUE(doomed.ok());

  // GetPending (the retry-adoption primitive) sees the open trial.
  int64_t next_id = 0;
  Result<std::vector<Trial>> pending = client.GetPending("exp", &next_id);
  ASSERT_TRUE(pending.ok());
  ASSERT_EQ(pending->size(), 1u);
  EXPECT_EQ((*pending)[0].id, doomed->id);
  EXPECT_GT(next_id, doomed->id);

  // Let the deadline lapse; the maintenance sweep expires the trial.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  server.RunMaintenance();

  result.trial_id = doomed->id;
  result.value = ExternalMeasure(2, doomed->config);
  EXPECT_EQ(client.Tell("exp", result).code(), StatusCode::kTrialExpired);

  // The expired trial's budget slot is free again.
  Result<Trial> fresh = client.Ask("exp");
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(fresh->id, doomed->id);
  server.Stop();
}

TEST(ServerTest, GarbageKindGetsUnknownKindReply) {
  TuningServer server;
  ASSERT_TRUE(server.Start().ok());
  RawConn raw;
  ASSERT_TRUE(raw.Connect(server.port()));
  ASSERT_TRUE(raw.Send(EncodeFrame(static_cast<MessageKind>(201), "junk")));
  Result<Frame> reply = raw.ReadFrame();
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->kind, MessageKind::kError);
  WireError code = WireError::kInternal;
  std::string message;
  ASSERT_TRUE(DecodeError(reply->payload, &code, &message).ok());
  EXPECT_EQ(code, WireError::kUnknownKind);
  server.Stop();
}

TEST(ServerTest, OversizedFrameGetsBadFrameThenDisconnect) {
  TuningServerOptions options;
  options.max_frame_payload = 1024;
  TuningServer server(options);
  ASSERT_TRUE(server.Start().ok());
  RawConn raw;
  ASSERT_TRUE(raw.Connect(server.port()));
  ASSERT_TRUE(raw.Send(EncodeFrame(MessageKind::kPing, std::string(2048, 'x'))));
  Result<Frame> reply = raw.ReadFrame();
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->kind, MessageKind::kError);
  WireError code = WireError::kInternal;
  std::string message;
  ASSERT_TRUE(DecodeError(reply->payload, &code, &message).ok());
  EXPECT_EQ(code, WireError::kBadFrame);
  // Framing faults are unrecoverable: the server hangs up.
  EXPECT_TRUE(raw.WaitForClose());
  server.Stop();
}

TEST(ServerTest, HalfWrittenFrameThenDisconnectLeavesServerHealthy) {
  TuningServer server;
  ASSERT_TRUE(server.Start().ok());

  // A client dies mid-frame: the header promises a payload that never
  // arrives, then the socket closes. The server must just drop the
  // connection — no reply, no stall, no poisoning of other clients.
  {
    RawConn raw;
    ASSERT_TRUE(raw.Connect(server.port()));
    std::string frame = EncodeFrame(MessageKind::kPing, "never finished");
    ASSERT_TRUE(raw.Send(frame.substr(0, frame.size() / 2)));
  }  // RawConn destructor closes the socket with the frame half-sent.

  // Same with a half-written *header* (fewer than kFrameHeaderBytes).
  {
    RawConn raw;
    ASSERT_TRUE(raw.Connect(server.port()));
    std::string frame = EncodeFrame(MessageKind::kAsk, EncodeNameOnly("j"));
    ASSERT_TRUE(raw.Send(frame.substr(0, 3)));
  }

  // A fresh client on the same server works immediately.
  TuningClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_EQ(client.Ask("ghost").status().code(), StatusCode::kSessionNotFound);
  server.Stop();
}

TEST(ServerTest, PerTenantQuotaIsEnforcedAndReleased) {
  TuningServerOptions options;
  options.max_sessions_per_tenant = 2;
  TuningServer server(options);
  ASSERT_TRUE(server.Start().ok());
  TuningClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.Hello("team-a").ok());

  ASSERT_TRUE(client.CreateSession("a1", ExternalWireSpec(0)).ok());
  ASSERT_TRUE(client.CreateSession("a2", ExternalWireSpec(1)).ok());
  EXPECT_EQ(client.CreateSession("a3", ExternalWireSpec(2)).code(),
            StatusCode::kResourceExhausted);

  // A different tenant has its own budget.
  TuningClient other;
  ASSERT_TRUE(other.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(other.Hello("team-b").ok());
  ASSERT_TRUE(other.CreateSession("b1", ExternalWireSpec(3)).ok());

  // Closing releases the slot.
  ASSERT_TRUE(client.Close("a1").ok());
  ASSERT_TRUE(client.CreateSession("a3", ExternalWireSpec(2)).ok());
  server.Stop();
}

TEST(ServerTest, BackpressureAnswersBusy) {
  TuningServerOptions options;
  options.max_pending_requests = 0;  // admit nothing: every request is Busy
  TuningServer server(options);
  ASSERT_TRUE(server.Start().ok());
  TuningClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  Status status = client.Ping();
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_GE(server.busy_rejections(), 1);
  server.Stop();
}

TEST(ServerTest, IdleEvictionAutosavesAndResumeSavedContinuesExactly) {
  TuningServerOptions options;
  options.autosave_dir = FreshDir("evict");
  options.idle_eviction_ms = 150;
  TuningServer server(options);
  ASSERT_TRUE(server.Start().ok());
  TuningClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.Hello("team-a").ok());

  // Drive 5 rounds, then go idle past the eviction horizon.
  ASSERT_TRUE(client.CreateSession("job", ExternalWireSpec(3)).ok());
  for (int round = 0; round < 5; ++round) {
    Result<Trial> trial = client.Ask("job");
    ASSERT_TRUE(trial.ok());
    TrialResult result;
    result.trial_id = trial->id;
    result.value = ExternalMeasure(3, trial->config);
    ASSERT_TRUE(client.Tell("job", result).ok());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  server.RunMaintenance();
  EXPECT_EQ(server.sessions_evicted(), 1);
  EXPECT_GE(server.autosaves_written(), 1);
  EXPECT_EQ(client.GetStatus("job").status().code(),
            StatusCode::kSessionNotFound);

  // ResumeSaved revives the session from the pre-eviction autosave and
  // the continuation is bit-for-bit the uninterrupted run.
  ASSERT_TRUE(client.ResumeSaved("job").ok());
  Result<WireSessionStatus> revived = client.GetStatus("job");
  ASSERT_TRUE(revived.ok());
  EXPECT_EQ(revived->status.iterations_run, 4);  // baseline + 4 counted
  DriveOverWire(client, "job", 3);
  Result<std::string> remote = client.Checkpoint("job");
  ASSERT_TRUE(remote.ok());
  EXPECT_EQ(Trajectory(*remote), Trajectory(ReferenceCheckpoint(3)));
  server.Stop();
}

TEST(ServerTest, StatusPollingDoesNotPreventEviction) {
  TuningServerOptions options;
  options.idle_eviction_ms = 100;
  TuningServer server(options);
  ASSERT_TRUE(server.Start().ok());
  TuningClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.CreateSession("job", ExternalWireSpec(0)).ok());

  // Poll status well past the horizon: polling is not activity.
  for (int i = 0; i < 15; ++i) {
    client.GetStatus("job");
    client.Checkpoint("job");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  server.RunMaintenance();
  EXPECT_EQ(server.sessions_evicted(), 1);
  server.Stop();
}

TEST(ServerTest, PeriodicAutosaveSweepWritesFiles) {
  TuningServerOptions options;
  options.autosave_dir = FreshDir("autosave");
  options.autosave_interval_ms = 50;
  TuningServer server(options);
  ASSERT_TRUE(server.Start().ok());
  TuningClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.CreateSession("job", ExternalWireSpec(2)).ok());

  std::string path = options.autosave_dir + "/" + EncodeBytes("job") +
                     ".autosave";
  struct stat sb;
  bool appeared = false;
  for (int i = 0; i < 300; ++i) {
    if (::stat(path.c_str(), &sb) == 0) {
      appeared = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(appeared);
  EXPECT_GE(server.autosaves_written(), 1);
  server.Stop();
}

TEST(ServerTest, StopIsSafeAgainstDoubleAndConcurrentInvocation) {
  TuningServer server;
  ASSERT_TRUE(server.Start().ok());
  TuningClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.CreateSession("job", ExternalWireSpec(0)).ok());

  // Several threads race Stop(); exactly one tears down, the others
  // block until it finishes — every caller returns to a fully stopped
  // server, and nothing double-closes or double-joins.
  std::vector<std::thread> stoppers;
  for (int i = 0; i < 3; ++i) {
    stoppers.emplace_back([&server] { server.Stop(); });
  }
  for (std::thread& t : stoppers) t.join();
  EXPECT_EQ(server.lifecycle(), ServerLifecycle::kStopped);
  EXPECT_FALSE(server.running());

  server.Stop();  // sequential double-Stop is a no-op
  EXPECT_EQ(server.lifecycle(), ServerLifecycle::kStopped);
}

TEST(ServerTest, RestartBindsSamePortAfterStop) {
  uint16_t port = 0;
  {
    TuningServer first;
    ASSERT_TRUE(first.Start().ok());
    port = first.port();
    TuningClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
    ASSERT_TRUE(client.Ping().ok());
    first.Stop();
  }
  // SO_REUSEADDR: a successor binds the drained predecessor's port
  // immediately, without waiting out TIME_WAIT.
  TuningServerOptions options;
  options.port = port;
  TuningServer second(options);
  ASSERT_TRUE(second.Start().ok());
  EXPECT_EQ(second.port(), port);
  TuningClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
  EXPECT_TRUE(client.Ping().ok());
  second.Stop();
}

TEST(ServerTest, DrainRefusesExpensiveAnswersCheapAndCompletesDrive) {
  TuningServerOptions server_options;
  server_options.autosave_dir = FreshDir("drain");
  TuningServer server(server_options);
  ASSERT_TRUE(server.Start().ok());
  TuningClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  // A background drive whose every step stalls 50ms (eval.hang) keeps
  // the server measurably mid-work while we drain it.
  WireSessionSpec sim;
  sim.workload = "YCSB-A";
  sim.optimizer_key = "random";
  sim.adapter_key = "llamatune";
  sim.seed = 9;
  sim.num_iterations = 6;
  ASSERT_TRUE(client.CreateSession("bg", sim).ok());
  ASSERT_TRUE(FaultInjection::Configure("seed=1;eval.hang=p1"));
  ASSERT_TRUE(client.StartDrive("bg").ok());

  // Establish a connection (and get it accepted) before the drain
  // closes the listen socket.
  RawConn raw;
  ASSERT_TRUE(raw.Connect(server.port()));
  ASSERT_TRUE(raw.Send(EncodeFrame(MessageKind::kPing, "warm")));
  ASSERT_TRUE(raw.ReadFrame().ok());

  server.Drain();
  EXPECT_EQ(server.lifecycle(), ServerLifecycle::kDraining);
  EXPECT_FALSE(server.running());

  // Expensive work is refused with the typed shutdown error and a
  // usable retry-after hint (roughly the remaining drain window).
  ASSERT_TRUE(raw.Send(EncodeFrame(MessageKind::kAsk, EncodeNameOnly("bg"))));
  Result<Frame> refused = raw.ReadFrame();
  ASSERT_TRUE(refused.ok());
  ASSERT_EQ(refused->kind, MessageKind::kError);
  WireError code = WireError::kInternal;
  std::string message;
  int64_t retry_ms = 0;
  ASSERT_TRUE(DecodeError(refused->payload, &code, &message, &retry_ms).ok());
  EXPECT_EQ(code, WireError::kShuttingDown);
  EXPECT_GT(retry_ms, 0);

  // Cheap requests still answer: health reports the drain, a second
  // drain is an idempotent OK, and status polling keeps working.
  ASSERT_TRUE(raw.Send(EncodeFrame(MessageKind::kHealthCheck, "")));
  Result<Frame> health_reply = raw.ReadFrame();
  ASSERT_TRUE(health_reply.ok());
  ASSERT_EQ(health_reply->kind, MessageKind::kHealthReply);
  Result<WireServerHealth> health = DecodeHealthReply(health_reply->payload);
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->lifecycle, ServerLifecycle::kDraining);

  ASSERT_TRUE(raw.Send(EncodeFrame(MessageKind::kDrain, "")));
  Result<Frame> again = raw.ReadFrame();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->kind, MessageKind::kOk);

  // Stop() finishes the drain: it waits for the drive to run to
  // completion (unstall it first), then runs the final durable
  // autosave sweep.
  FaultInjection::Reset();
  server.Stop();
  EXPECT_EQ(server.lifecycle(), ServerLifecycle::kStopped);
  EXPECT_GE(server.autosaves_written(), 1);

  // A successor on the same autosave dir proves the drive completed
  // *during* the drain: the startup sweep revives the session already
  // finished, with every iteration run.
  TuningServerOptions successor_options;
  successor_options.autosave_dir = server_options.autosave_dir;
  successor_options.resume_saved_on_start = true;
  TuningServer successor(successor_options);
  ASSERT_TRUE(successor.Start().ok());
  EXPECT_EQ(successor.sessions_restored(), 1);
  TuningClient reconnect;
  ASSERT_TRUE(reconnect.Connect("127.0.0.1", successor.port()).ok());
  Result<WireSessionStatus> revived = reconnect.GetStatus("bg");
  ASSERT_TRUE(revived.ok());
  EXPECT_TRUE(revived->status.finished);
  EXPECT_EQ(revived->status.iterations_run, 6);
  successor.Stop();
}

TEST(ServerTest, StopCompletesInFlightRequestBeforeTeardown) {
  TuningServer server;
  ASSERT_TRUE(server.Start().ok());
  TuningClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  WireSessionSpec sim;
  sim.workload = "YCSB-A";
  sim.optimizer_key = "random";
  sim.adapter_key = "llamatune";
  sim.seed = 4;
  sim.num_iterations = 4;
  ASSERT_TRUE(client.CreateSession("slow", sim).ok());

  // A kStep whose measurement stalls 50ms is in flight when Stop()
  // lands; the drain completes it and its reply reaches the socket
  // before teardown closes anything.
  ASSERT_TRUE(FaultInjection::Configure("seed=1;eval.hang=p1"));
  RawConn raw;
  ASSERT_TRUE(raw.Connect(server.port()));
  // The server decrements its pending gauge *after* sending a reply,
  // so the CreateSession above may still be counted; wait for true
  // quiescence so the next pending request is unambiguously our step.
  for (int i = 0; i < 500 && server.Health().pending_requests != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(
      raw.Send(EncodeFrame(MessageKind::kStep, EncodeNameOnly("slow"))));
  for (int i = 0; i < 500 && server.Health().pending_requests == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.Stop();
  FaultInjection::Reset();

  Result<Frame> reply = raw.ReadFrame();
  ASSERT_TRUE(reply.ok());
  if (reply->kind == MessageKind::kError) {
    WireError code = WireError::kInternal;
    std::string message;
    DecodeError(reply->payload, &code, &message).ok();
    FAIL() << "got kError " << static_cast<int>(code) << ": " << message;
  }
  ASSERT_EQ(reply->kind, MessageKind::kSteppedReply);
  Result<bool> progressed = DecodeSteppedReply(reply->payload);
  ASSERT_TRUE(progressed.ok());
  EXPECT_TRUE(*progressed);
}

TEST(ServerTest, ForcedShedAnswersOverloadedWithRetryHint) {
  TuningServer server;
  ASSERT_TRUE(server.Start().ok());
  RawConn raw;
  ASSERT_TRUE(raw.Connect(server.port()));
  ASSERT_TRUE(raw.Send(EncodeFrame(MessageKind::kPing, "warm")));
  ASSERT_TRUE(raw.ReadFrame().ok());

  // shed.force trips the expensive-budget check on the next expensive
  // admission, regardless of actual load.
  ASSERT_TRUE(FaultInjection::Configure("seed=1;shed.force=@0"));
  ASSERT_TRUE(
      raw.Send(EncodeFrame(MessageKind::kAsk, EncodeNameOnly("ghost"))));
  Result<Frame> shed = raw.ReadFrame();
  FaultInjection::Reset();
  ASSERT_TRUE(shed.ok());
  ASSERT_EQ(shed->kind, MessageKind::kError);
  WireError code = WireError::kInternal;
  std::string message;
  int64_t retry_ms = 0;
  ASSERT_TRUE(DecodeError(shed->payload, &code, &message, &retry_ms).ok());
  EXPECT_EQ(code, WireError::kOverloaded);
  EXPECT_GT(retry_ms, 0);
  EXPECT_GE(server.shed_overload(), 1);

  // The shed was per-request, not per-connection: the next request on
  // the same socket gets a normal (typed) answer.
  ASSERT_TRUE(
      raw.Send(EncodeFrame(MessageKind::kAsk, EncodeNameOnly("ghost"))));
  Result<Frame> normal = raw.ReadFrame();
  ASSERT_TRUE(normal.ok());
  ASSERT_EQ(normal->kind, MessageKind::kError);
  ASSERT_TRUE(DecodeError(normal->payload, &code, &message).ok());
  EXPECT_EQ(code, WireError::kSessionNotFound);
  server.Stop();
}

TEST(ServerTest, DeadlineShedDropsQueuedRequestBeforeDoingWork) {
  TuningServer server;
  ASSERT_TRUE(server.Start().ok());
  RawConn raw;
  ASSERT_TRUE(raw.Connect(server.port()));
  ASSERT_TRUE(raw.Send(EncodeFrame(MessageKind::kPing, "warm")));
  ASSERT_TRUE(raw.ReadFrame().ok());

  // shed.deadline.force makes the dispatcher treat the next request as
  // dead on arrival (its caller's deadline passed while it queued).
  ASSERT_TRUE(FaultInjection::Configure("seed=1;shed.deadline.force=@0"));
  ASSERT_TRUE(raw.Send(EncodeFrame(MessageKind::kPing, "doomed")));
  Result<Frame> shed = raw.ReadFrame();
  FaultInjection::Reset();
  ASSERT_TRUE(shed.ok());
  ASSERT_EQ(shed->kind, MessageKind::kError);
  WireError code = WireError::kInternal;
  std::string message;
  int64_t retry_ms = 0;
  ASSERT_TRUE(DecodeError(shed->payload, &code, &message, &retry_ms).ok());
  EXPECT_EQ(code, WireError::kOverloaded);
  EXPECT_GT(retry_ms, 0);
  EXPECT_GE(server.shed_deadline(), 1);

  // A real (future) deadline rider is invisible to handlers: the same
  // request with a generous ddl answers normally.
  std::string payload = EncodeNameOnly("ghost");
  AppendDeadlineRider(&payload, 60000);
  ASSERT_TRUE(raw.Send(EncodeFrame(MessageKind::kAsk, payload)));
  Result<Frame> normal = raw.ReadFrame();
  ASSERT_TRUE(normal.ok());
  ASSERT_EQ(normal->kind, MessageKind::kError);
  ASSERT_TRUE(DecodeError(normal->payload, &code, &message).ok());
  EXPECT_EQ(code, WireError::kSessionNotFound);
  server.Stop();
}

TEST(ServerTest, FairShareAdmissionMath) {
  // Single tenant: never fair-share-shed, whatever the pressure.
  EXPECT_FALSE(TuningServer::FairShareExceeded(5, 1, 8, 8));
  // Below half the expensive budget there is headroom: bursts pass.
  EXPECT_FALSE(TuningServer::FairShareExceeded(5, 2, 8, 3));
  // Under pressure, a tenant at its share (cap/active) is shed...
  EXPECT_TRUE(TuningServer::FairShareExceeded(4, 2, 8, 4));
  // ...and one under it is not.
  EXPECT_FALSE(TuningServer::FairShareExceeded(3, 2, 8, 4));
  // Many tenants: the share floors at 1 in-flight each.
  EXPECT_TRUE(TuningServer::FairShareExceeded(1, 8, 8, 8));
  EXPECT_FALSE(TuningServer::FairShareExceeded(0, 8, 8, 8));
}

TEST(ServerTest, HealthAndStatsOverTheWire) {
  TuningServer server;
  ASSERT_TRUE(server.Start().ok());
  TuningClient alpha;
  ASSERT_TRUE(alpha.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(alpha.Hello("alpha").ok());
  ASSERT_TRUE(alpha.CreateSession("a1", ExternalWireSpec(0)).ok());
  ASSERT_TRUE(alpha.CreateSession("a2", ExternalWireSpec(1)).ok());
  TuningClient beta;
  ASSERT_TRUE(beta.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(beta.Hello("beta").ok());
  ASSERT_TRUE(beta.CreateSession("b1", ExternalWireSpec(2)).ok());

  Result<WireServerHealth> health = alpha.HealthCheck();
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->lifecycle, ServerLifecycle::kRunning);
  EXPECT_EQ(health->sessions, 3);

  Result<WireServerStats> stats = beta.ServerStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->lifecycle, ServerLifecycle::kRunning);
  EXPECT_EQ(stats->sessions, 3);
  EXPECT_EQ(stats->busy_rejections, server.busy_rejections());
  EXPECT_EQ(stats->shed_overload, server.shed_overload());
  EXPECT_EQ(stats->sessions_evicted, server.sessions_evicted());
  EXPECT_EQ(stats->autosaves_written, server.autosaves_written());
  EXPECT_EQ(stats->sessions_restored, server.sessions_restored());
  ASSERT_EQ(stats->tenant_sessions.size(), 2u);
  EXPECT_EQ(stats->tenant_sessions[0].first, "alpha");
  EXPECT_EQ(stats->tenant_sessions[0].second, 2);
  EXPECT_EQ(stats->tenant_sessions[1].first, "beta");
  EXPECT_EQ(stats->tenant_sessions[1].second, 1);
  server.Stop();
}

TEST(ServerTest, ListSessionsOverWire) {
  TuningServer server;
  ASSERT_TRUE(server.Start().ok());
  TuningClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.CreateSession("a", ExternalWireSpec(0)).ok());
  ASSERT_TRUE(client.CreateSession("b", ExternalWireSpec(1)).ok());
  Result<std::vector<WireSessionStatus>> list = client.ListSessions();
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 2u);
  EXPECT_EQ((*list)[0].status.name, "a");
  EXPECT_EQ((*list)[1].status.name, "b");
  server.Stop();
}

}  // namespace
}  // namespace net
}  // namespace llamatune
