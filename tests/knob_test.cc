#include <gtest/gtest.h>

#include "src/dbsim/knob_catalog.h"
#include "src/knobs/knob.h"

namespace llamatune {
namespace {

TEST(KnobSpecTest, IntegerFactory) {
  KnobSpec k = IntegerKnob("commit_delay", 0, 100000, 0, "delay");
  EXPECT_EQ(k.type, KnobType::kInteger);
  EXPECT_EQ(k.min_value, 0);
  EXPECT_EQ(k.max_value, 100000);
  EXPECT_EQ(k.default_value, 0);
  EXPECT_FALSE(k.is_hybrid());
  EXPECT_TRUE(k.is_numeric());
  EXPECT_TRUE(k.Validate().ok());
}

TEST(KnobSpecTest, RealFactory) {
  KnobSpec k = RealKnob("bias", 1.5, 2.0, 2.0);
  EXPECT_EQ(k.type, KnobType::kReal);
  EXPECT_EQ(k.NumDistinctValues(), 0);
  EXPECT_TRUE(k.Validate().ok());
}

TEST(KnobSpecTest, BoolFactory) {
  KnobSpec k = BoolKnob("autovacuum", true);
  EXPECT_EQ(k.type, KnobType::kCategorical);
  ASSERT_EQ(k.categories.size(), 2u);
  EXPECT_EQ(k.categories[0], "off");
  EXPECT_EQ(k.categories[1], "on");
  EXPECT_EQ(k.default_value, 1.0);
  EXPECT_EQ(k.NumDistinctValues(), 2);
}

TEST(KnobSpecTest, CategoricalFactory) {
  KnobSpec k = CategoricalKnob("sync", {"off", "local", "on"}, 2);
  EXPECT_EQ(k.NumDistinctValues(), 3);
  EXPECT_FALSE(k.is_numeric());
  EXPECT_TRUE(k.Validate().ok());
}

TEST(KnobSpecTest, HybridSpecialValues) {
  KnobSpec k = WithSpecialValues(IntegerKnob("wal_buffers", -1, 262143, -1),
                                 {-1});
  EXPECT_TRUE(k.is_hybrid());
  EXPECT_TRUE(k.IsSpecialValue(-1));
  EXPECT_FALSE(k.IsSpecialValue(0));
  EXPECT_EQ(k.RegularMin(), 0);  // first non-special value
}

TEST(KnobSpecTest, RegularMinSkipsConsecutiveSpecials) {
  KnobSpec k = WithSpecialValues(IntegerKnob("x", -1, 100, 5), {-1, 0});
  EXPECT_EQ(k.RegularMin(), 1);
}

TEST(KnobSpecTest, RegularMinNoSpecials) {
  KnobSpec k = IntegerKnob("x", 10, 100, 50);
  EXPECT_EQ(k.RegularMin(), 10);
}

TEST(KnobSpecTest, NumDistinctValuesInteger) {
  EXPECT_EQ(IntegerKnob("x", 0, 256, 0).NumDistinctValues(), 257);
  EXPECT_EQ(IntegerKnob("x", -1, 1, 0).NumDistinctValues(), 3);
}

TEST(KnobSpecTest, ValidateRejectsBadRanges) {
  KnobSpec k = IntegerKnob("x", 10, 10, 10);
  EXPECT_FALSE(k.Validate().ok());
  k = IntegerKnob("x", 0, 5, 9);  // default out of range
  EXPECT_FALSE(k.Validate().ok());
  k = WithSpecialValues(IntegerKnob("x", 0, 5, 2), {77});
  EXPECT_FALSE(k.Validate().ok());  // special out of range
  KnobSpec c = CategoricalKnob("c", {"only"}, 0);
  EXPECT_FALSE(c.Validate().ok());  // needs >= 2 categories
  KnobSpec e;
  EXPECT_FALSE(e.Validate().ok());  // empty name
}

TEST(KnobSpecTest, ValidateRejectsCategoricalSpecials) {
  KnobSpec k = BoolKnob("b", true);
  k.special_values = {0};
  EXPECT_FALSE(k.Validate().ok());
}

TEST(KnobSpecTest, CanonicalizeClampsAndRounds) {
  KnobSpec k = IntegerKnob("x", 0, 10, 5);
  EXPECT_EQ(k.Canonicalize(3.4), 3.0);
  EXPECT_EQ(k.Canonicalize(3.6), 4.0);
  EXPECT_EQ(k.Canonicalize(-5.0), 0.0);
  EXPECT_EQ(k.Canonicalize(50.0), 10.0);
  KnobSpec r = RealKnob("r", 0.0, 1.0, 0.5);
  EXPECT_DOUBLE_EQ(r.Canonicalize(0.123), 0.123);
  KnobSpec c = CategoricalKnob("c", {"a", "b", "c"}, 0);
  EXPECT_EQ(c.Canonicalize(1.9), 1.0);
  EXPECT_EQ(c.Canonicalize(9.0), 2.0);
  EXPECT_EQ(c.Canonicalize(-1.0), 0.0);
}

// Property sweep: every knob in both catalogs is self-consistent.
struct CatalogCase {
  dbsim::PostgresVersion version;
  const char* name;
};

class CatalogKnobProperty : public ::testing::TestWithParam<CatalogCase> {};

TEST_P(CatalogKnobProperty, AllKnobsValidateAndDefaultsInDomain) {
  ConfigSpace space = dbsim::CatalogFor(GetParam().version);
  for (int i = 0; i < space.num_knobs(); ++i) {
    const KnobSpec& k = space.knob(i);
    EXPECT_TRUE(k.Validate().ok()) << k.name;
    EXPECT_EQ(k.Canonicalize(k.default_value), k.default_value) << k.name;
    if (k.is_numeric()) {
      EXPECT_GE(k.default_value, k.min_value) << k.name;
      EXPECT_LE(k.default_value, k.max_value) << k.name;
      for (double sv : k.special_values) {
        EXPECT_TRUE(k.IsSpecialValue(sv)) << k.name;
        // The regular minimum never collides with a special value.
        EXPECT_FALSE(k.IsSpecialValue(k.RegularMin())) << k.name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Catalogs, CatalogKnobProperty,
    ::testing::Values(CatalogCase{dbsim::PostgresVersion::kV96, "v96"},
                      CatalogCase{dbsim::PostgresVersion::kV136, "v136"}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace llamatune
