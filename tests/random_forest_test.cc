#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/model/random_forest.h"
#include "src/sampling/uniform.h"

namespace llamatune {
namespace {

SearchSpace Space2d() {
  return SearchSpace(
      {SearchDim::Continuous(0.0, 1.0), SearchDim::Continuous(0.0, 1.0)});
}

TEST(RandomForestTest, UnfittedFlag) {
  RandomForest rf(Space2d(), {}, 1);
  EXPECT_FALSE(rf.fitted());
}

TEST(RandomForestTest, FitsConstantFunction) {
  RandomForest rf(Space2d(), {}, 1);
  Rng rng(1);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 40; ++i) {
    xs.push_back({rng.Uniform(), rng.Uniform()});
    ys.push_back(7.0);
  }
  rf.Fit(xs, ys);
  EXPECT_TRUE(rf.fitted());
  double mean = 0.0, variance = 1.0;
  rf.Predict({0.5, 0.5}, &mean, &variance);
  EXPECT_NEAR(mean, 7.0, 1e-9);
  EXPECT_NEAR(variance, 0.0, 1e-9);
}

TEST(RandomForestTest, LearnsStepFunction) {
  RandomForestOptions options;
  options.num_trees = 20;
  RandomForest rf(Space2d(), options, 2);
  Rng rng(3);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 200; ++i) {
    double a = rng.Uniform(), b = rng.Uniform();
    xs.push_back({a, b});
    ys.push_back(a < 0.5 ? 0.0 : 10.0);
  }
  rf.Fit(xs, ys);
  EXPECT_LT(rf.PredictMean({0.1, 0.5}), 2.0);
  EXPECT_GT(rf.PredictMean({0.9, 0.5}), 8.0);
}

TEST(RandomForestTest, LearnsLinearTrendRanking) {
  RandomForestOptions options;
  options.num_trees = 20;
  RandomForest rf(Space2d(), options, 4);
  Rng rng(5);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 300; ++i) {
    double a = rng.Uniform(), b = rng.Uniform();
    xs.push_back({a, b});
    ys.push_back(3.0 * a + 0.1 * b);
  }
  rf.Fit(xs, ys);
  // Ranking along the important axis is preserved.
  EXPECT_LT(rf.PredictMean({0.1, 0.5}), rf.PredictMean({0.5, 0.5}));
  EXPECT_LT(rf.PredictMean({0.5, 0.5}), rf.PredictMean({0.9, 0.5}));
}

TEST(RandomForestTest, VarianceHigherAwayFromData) {
  RandomForestOptions options;
  options.num_trees = 30;
  RandomForest rf(Space2d(), options, 6);
  Rng rng(7);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  // Train only in the left half, with a slope so leaves differ.
  for (int i = 0; i < 100; ++i) {
    double a = rng.Uniform(0.0, 0.4), b = rng.Uniform();
    xs.push_back({a, b});
    ys.push_back(5.0 * a + rng.Gaussian(0.0, 0.1));
  }
  rf.Fit(xs, ys);
  double mean_in = 0, var_in = 0, mean_out = 0, var_out = 0;
  rf.Predict({0.2, 0.5}, &mean_in, &var_in);
  rf.Predict({0.95, 0.5}, &mean_out, &var_out);
  EXPECT_GE(var_out, 0.0);
  EXPECT_GE(var_in, 0.0);
}

TEST(RandomForestTest, HandlesCategoricalSplits) {
  SearchSpace space(
      {SearchDim::Categorical(3), SearchDim::Continuous(0.0, 1.0)});
  RandomForestOptions options;
  options.num_trees = 20;
  RandomForest rf(space, options, 8);
  Rng rng(9);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 240; ++i) {
    double cat = static_cast<double>(rng.UniformInt(0, 2));
    xs.push_back({cat, rng.Uniform()});
    ys.push_back(cat == 1.0 ? 20.0 : 1.0);  // category 1 stands out
  }
  rf.Fit(xs, ys);
  EXPECT_GT(rf.PredictMean({1.0, 0.5}), 10.0);
  EXPECT_LT(rf.PredictMean({0.0, 0.5}), 8.0);
  EXPECT_LT(rf.PredictMean({2.0, 0.5}), 8.0);
}

TEST(RandomForestTest, DeterministicGivenSeed) {
  Rng rng(10);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 60; ++i) {
    xs.push_back({rng.Uniform(), rng.Uniform()});
    ys.push_back(xs.back()[0] * 2.0);
  }
  RandomForest a(Space2d(), {}, 77), b(Space2d(), {}, 77);
  a.Fit(xs, ys);
  b.Fit(xs, ys);
  for (int i = 0; i < 20; ++i) {
    std::vector<double> x = {i / 20.0, 0.3};
    EXPECT_DOUBLE_EQ(a.PredictMean(x), b.PredictMean(x));
  }
}

TEST(RandomForestTest, RefitReplacesModel) {
  RandomForest rf(Space2d(), {}, 11);
  std::vector<std::vector<double>> xs = {{0.1, 0.1}, {0.9, 0.9}, {0.5, 0.5}};
  rf.Fit(xs, {1.0, 1.0, 1.0});
  EXPECT_NEAR(rf.PredictMean({0.5, 0.5}), 1.0, 1e-9);
  rf.Fit(xs, {5.0, 5.0, 5.0});
  EXPECT_NEAR(rf.PredictMean({0.5, 0.5}), 5.0, 1e-9);
}

// Property: law-of-total-variance output is always non-negative.
class RfVarianceProperty : public ::testing::TestWithParam<int> {};

TEST_P(RfVarianceProperty, NonNegativeVariance) {
  RandomForestOptions options;
  options.num_trees = 10;
  RandomForest rf(Space2d(), options, GetParam());
  Rng rng(GetParam());
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back({rng.Uniform(), rng.Uniform()});
    ys.push_back(rng.Gaussian(0.0, 3.0));
  }
  rf.Fit(xs, ys);
  for (int i = 0; i < 100; ++i) {
    double mean = 0, variance = -1;
    rf.Predict({rng.Uniform(), rng.Uniform()}, &mean, &variance);
    EXPECT_GE(variance, 0.0);
    EXPECT_TRUE(std::isfinite(mean));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RfVarianceProperty, ::testing::Range(1, 7));

}  // namespace
}  // namespace llamatune
