#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "src/core/adapter_registry.h"
#include "src/core/adapter_stages.h"
#include "src/dbsim/knob_catalog.h"
#include "src/dbsim/metrics.h"
#include "src/optimizer/ddpg.h"
#include "src/optimizer/optimizer_registry.h"
#include "src/optimizer/random_search.h"

namespace llamatune {
namespace {

class RegistryFixture : public ::testing::Test {
 protected:
  ConfigSpace space_ = dbsim::PostgresV96Catalog();
};

// ---------------------------------------------------------------------------
// AdapterRegistry
// ---------------------------------------------------------------------------

TEST_F(RegistryFixture, UnknownAdapterKeyIsNotFound) {
  auto result = AdapterRegistry::Global().Create("warp9", &space_, 1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  // The error names the offender and the known stages.
  EXPECT_NE(result.status().message().find("warp9"), std::string::npos);
  EXPECT_NE(result.status().message().find("hesbo"), std::string::npos);
}

TEST_F(RegistryFixture, UnknownComponentInsideKeyIsNotFound) {
  auto result = AdapterRegistry::Global().Create("hesbo16+frobnicate2",
                                                 &space_, 1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_NE(result.status().message().find("frobnicate2"), std::string::npos);
}

TEST_F(RegistryFixture, MalformedStageArguments) {
  for (const char* key : {"hesbo", "hesbox", "svb", "svb0.2.3", "bucket",
                          "bucketx", "identity4", ""}) {
    SCOPED_TRACE(key);
    auto result = AdapterRegistry::Global().Create(key, &space_, 1);
    EXPECT_FALSE(result.ok());
  }
}

TEST_F(RegistryFixture, SvbBiasRangeValidated) {
  EXPECT_FALSE(AdapterRegistry::Global().Create("svb1.5", &space_, 1).ok());
  EXPECT_FALSE(AdapterRegistry::Global().Create("svb-0.1", &space_, 1).ok());
  EXPECT_TRUE(AdapterRegistry::Global().Create("svb0", &space_, 1).ok());
}

TEST_F(RegistryFixture, BucketRequiresAtLeastTwoValues) {
  EXPECT_FALSE(AdapterRegistry::Global().Create("bucket1", &space_, 1).ok());
  EXPECT_TRUE(AdapterRegistry::Global().Create("bucket2", &space_, 1).ok());
}

TEST_F(RegistryFixture, BuiltinStagePrefixesListed) {
  auto prefixes = AdapterRegistry::Global().StagePrefixes();
  for (const char* expected :
       {"identity", "hesbo", "rembo", "svb", "bucket"}) {
    EXPECT_NE(std::find(prefixes.begin(), prefixes.end(), expected),
              prefixes.end())
        << expected;
  }
  auto aliases = AdapterRegistry::Global().Aliases();
  EXPECT_NE(std::find(aliases.begin(), aliases.end(), "llamatune"),
            aliases.end());
}

TEST_F(RegistryFixture, DuplicateStageAndAliasRejected) {
  EXPECT_EQ(AdapterRegistry::Global()
                .RegisterStage("hesbo", nullptr)
                .code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(AdapterRegistry::Global()
                .RegisterAlias("llamatune", "identity")
                .code(),
            StatusCode::kAlreadyExists);
}

// A user-defined stage becomes addressable by key, composed with the
// builtins, with no changes to any call site.
class DoublingStage : public AdapterStage {
 public:
  std::string name() const override { return "reg_test_double"; }
  Result<SearchSpace> Bind(const StageContext& /*ctx*/,
                           const SearchSpace& downstream) override {
    return downstream;
  }
};

TEST_F(RegistryFixture, OpenRegistryAcceptsCustomStagesAndAliases) {
  auto& registry = AdapterRegistry::Global();
  ASSERT_TRUE(registry
                  .RegisterStage("reg_test_double",
                                 [](const std::string& arg)
                                     -> Result<std::unique_ptr<AdapterStage>> {
                                   (void)arg;
                                   return std::unique_ptr<AdapterStage>(
                                       new DoublingStage());
                                 })
                  .ok());
  ASSERT_TRUE(
      registry.RegisterAlias("reg_test_alias", "reg_test_double+hesbo8").ok());

  auto adapter = registry.Create("reg_test_alias", &space_, 1);
  ASSERT_TRUE(adapter.ok()) << adapter.status().ToString();
  EXPECT_EQ((*adapter)->search_space().num_dims(), 8);
}

// ---------------------------------------------------------------------------
// OptimizerRegistry
// ---------------------------------------------------------------------------

TEST(OptimizerRegistryTest, UnknownKeyIsNotFound) {
  SearchSpace space({SearchDim::Continuous(0.0, 1.0)});
  auto result = OptimizerRegistry::Global().Create("gradient-descent", space,
                                                   /*seed=*/1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_NE(result.status().message().find("gradient-descent"),
            std::string::npos);
  EXPECT_NE(result.status().message().find("smac"), std::string::npos);
}

TEST(OptimizerRegistryTest, BuiltinsInstantiable) {
  SearchSpace space({SearchDim::Continuous(0.0, 1.0),
                     SearchDim::Continuous(0.0, 1.0, 16),
                     SearchDim::Categorical(3)});
  for (const char* key : {"smac", "gpbo", "gp-bo", "ddpg", "random",
                          "bestconfig"}) {
    SCOPED_TRACE(key);
    auto optimizer = OptimizerRegistry::Global().Create(key, space, 5);
    ASSERT_TRUE(optimizer.ok()) << optimizer.status().ToString();
    auto point = (*optimizer)->Suggest();
    EXPECT_TRUE(space.Contains(point));
  }
}

TEST(OptimizerRegistryTest, KeysSortedAndContains) {
  auto keys = OptimizerRegistry::Global().Keys();
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_TRUE(OptimizerRegistry::Global().Contains("smac"));
  EXPECT_FALSE(OptimizerRegistry::Global().Contains("SMAC"));
}

TEST(OptimizerRegistryTest, AliasesResolveButAreNotEnumerated) {
  auto& registry = OptimizerRegistry::Global();
  // "gp-bo" resolves like "gpbo"...
  EXPECT_TRUE(registry.Contains("gp-bo"));
  auto keys = registry.Keys();
  // ...but only the canonical key is enumerated, so drivers iterating
  // Keys() never run the same backend twice.
  EXPECT_EQ(std::find(keys.begin(), keys.end(), "gp-bo"), keys.end());
  EXPECT_NE(std::find(keys.begin(), keys.end(), "gpbo"), keys.end());
  auto aliases = registry.Aliases();
  EXPECT_NE(std::find(aliases.begin(), aliases.end(), "gp-bo"),
            aliases.end());

  // Aliases must target a registered key and cannot shadow one.
  EXPECT_EQ(registry.RegisterAlias("reg_test_ghost", "no-such-key").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(registry.RegisterAlias("smac", "gpbo").code(),
            StatusCode::kAlreadyExists);
}

// The registry builds DDPG with DdpgOptions defaults; this pins the
// default state dimension to the simulator's metric vector width,
// which the deleted harness wiring used to set explicitly.
TEST(OptimizerRegistryTest, DdpgDefaultStateDimMatchesSimulatorMetrics) {
  EXPECT_EQ(DdpgOptions{}.state_dim, dbsim::kNumMetrics);
}

TEST(OptimizerRegistryTest, OpenRegistryAcceptsCustomBackend) {
  auto& registry = OptimizerRegistry::Global();
  ASSERT_TRUE(registry
                  .Register("reg_test_random2",
                            [](const SearchSpace& space, uint64_t seed)
                                -> Result<std::unique_ptr<Optimizer>> {
                              return std::unique_ptr<Optimizer>(
                                  new RandomSearchOptimizer(space, seed));
                            })
                  .ok());
  EXPECT_EQ(registry.Register("reg_test_random2", nullptr).code(),
            StatusCode::kAlreadyExists);

  SearchSpace space({SearchDim::Continuous(0.0, 1.0)});
  auto optimizer = registry.Create("reg_test_random2", space, 3);
  ASSERT_TRUE(optimizer.ok());
  EXPECT_EQ((*optimizer)->name(), "RandomSearch");
}

}  // namespace
}  // namespace llamatune
