#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <utility>

#include "src/core/adapter_registry.h"
#include "src/core/tuning_session.h"
#include "src/optimizer/random_search.h"

namespace llamatune {
namespace {

// A tiny controllable objective over a 2-knob space.
class FakeObjective : public ObjectiveFunction {
 public:
  FakeObjective()
      : space_(*ConfigSpace::Create({IntegerKnob("a", 0, 100, 50),
                                     RealKnob("b", 0.0, 1.0, 0.5)})) {}

  EvalResult Evaluate(const Configuration& config) override {
    ++evaluations_;
    EvalResult result;
    if (crash_when_a_below_ >= 0 && config[0] < crash_when_a_below_) {
      result.crashed = true;
      return result;
    }
    result.value = config[0] + 10.0 * config[1];
    if (!maximize_) result.value = 100.0 - result.value;  // latency-ish
    result.metrics = {1.0, 2.0, 3.0};
    return result;
  }

  const ConfigSpace& config_space() const override { return space_; }
  bool maximize() const override { return maximize_; }

  int evaluations_ = 0;
  double crash_when_a_below_ = -1;
  bool maximize_ = true;

 private:
  ConfigSpace space_;
};

TEST(SessionTest, RunsConfiguredIterationsPlusBaseline) {
  FakeObjective objective;
  auto adapter = std::move(AdapterRegistry::Global().Create(
                            "identity", &objective.config_space(), 1))
                     .ValueOrDie();
  RandomSearchOptimizer optimizer(adapter->search_space(), 1);
  SessionOptions options;
  options.num_iterations = 25;
  TuningSession session(&objective, adapter.get(), &optimizer, options);
  SessionResult result = session.Run();
  EXPECT_EQ(result.iterations_run, 25);
  EXPECT_EQ(result.kb.size(), 25);
  // Baseline (default config) evaluation happens once, on top.
  EXPECT_EQ(objective.evaluations_, 26);
  EXPECT_EQ(result.default_performance, 50.0 + 10.0 * 0.5);
  EXPECT_GE(result.best_performance, result.kb.record(0).measured);
  EXPECT_GE(result.optimizer_seconds, 0.0);
}

// Drives the session through a fixed sequence of points.
class ScriptedOptimizer : public Optimizer {
 public:
  ScriptedOptimizer(SearchSpace space, std::vector<std::vector<double>> plan)
      : Optimizer(std::move(space)), plan_(std::move(plan)) {}
  std::vector<double> Suggest() override { return plan_[next_++]; }
  std::string name() const override { return "Scripted"; }

 private:
  std::vector<std::vector<double>> plan_;
  size_t next_ = 0;
};

TEST(SessionTest, CrashPenaltyIsQuarterOfWorst) {
  FakeObjective objective;
  objective.crash_when_a_below_ = 30;  // unit a < 0.3 crashes
  auto adapter = std::move(AdapterRegistry::Global().Create(
                            "identity", &objective.config_space(), 1))
                     .ValueOrDie();
  // crash, good (a=100,b=1 -> 110), crash again.
  ScriptedOptimizer optimizer(adapter->search_space(),
                              {{0.0, 0.0}, {1.0, 1.0}, {0.1, 0.0}});
  SessionOptions options;
  options.num_iterations = 3;
  TuningSession session(&objective, adapter.get(), &optimizer, options);
  SessionResult result = session.Run();
  ASSERT_EQ(result.kb.size(), 3);
  // Default (a=50, b=0.5 -> 55) sets the initial worst; both crashes
  // score a quarter of it, the good run stands as measured.
  EXPECT_TRUE(result.kb.record(0).crashed);
  EXPECT_DOUBLE_EQ(result.kb.record(0).objective, 55.0 / 4.0);
  EXPECT_FALSE(result.kb.record(1).crashed);
  EXPECT_DOUBLE_EQ(result.kb.record(1).objective, 110.0);
  EXPECT_TRUE(result.kb.record(2).crashed);
  EXPECT_DOUBLE_EQ(result.kb.record(2).objective, 55.0 / 4.0);
}

TEST(SessionTest, CrashPenaltyTracksWorseningWorst) {
  FakeObjective objective;
  objective.crash_when_a_below_ = 20;  // only low-a configs crash
  auto adapter = std::move(AdapterRegistry::Global().Create(
                            "identity", &objective.config_space(), 1))
                     .ValueOrDie();
  RandomSearchOptimizer optimizer(adapter->search_space(), 3);
  SessionOptions options;
  options.num_iterations = 60;
  TuningSession session(&objective, adapter.get(), &optimizer, options);
  SessionResult result = session.Run();
  bool saw_crash = false, saw_ok = false;
  double worst_ok = 55.0;
  for (int i = 0; i < result.kb.size(); ++i) {
    const IterationRecord& r = result.kb.record(i);
    if (r.crashed) {
      saw_crash = true;
      EXPECT_DOUBLE_EQ(r.objective, worst_ok / 4.0);
    } else {
      saw_ok = true;
      worst_ok = std::min(worst_ok, r.objective);
    }
  }
  EXPECT_TRUE(saw_crash);
  EXPECT_TRUE(saw_ok);
}

TEST(SessionTest, MinimizationNegatesObjective) {
  FakeObjective objective;
  objective.maximize_ = false;
  auto adapter = std::move(AdapterRegistry::Global().Create(
                            "identity", &objective.config_space(), 1))
                     .ValueOrDie();
  RandomSearchOptimizer optimizer(adapter->search_space(), 4);
  SessionOptions options;
  options.num_iterations = 30;
  TuningSession session(&objective, adapter.get(), &optimizer, options);
  SessionResult result = session.Run();
  // Internally maximizing -latency: best measured is the minimum.
  double min_measured = 1e18;
  for (int i = 0; i < result.kb.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.kb.record(i).objective,
                     -result.kb.record(i).measured);
    min_measured = std::min(min_measured, result.kb.record(i).measured);
  }
  EXPECT_DOUBLE_EQ(result.best_performance, min_measured);
}

TEST(SessionTest, EarlyStoppingShortensSession) {
  FakeObjective objective;
  auto adapter = std::move(AdapterRegistry::Global().Create(
                            "identity", &objective.config_space(), 1))
                     .ValueOrDie();
  RandomSearchOptimizer optimizer(adapter->search_space(), 5);
  SessionOptions options;
  options.num_iterations = 100;
  options.early_stopping = EarlyStoppingPolicy(5.0, 3);
  TuningSession session(&objective, adapter.get(), &optimizer, options);
  SessionResult result = session.Run();
  EXPECT_LT(result.iterations_run, 100);
  EXPECT_GE(result.iterations_run, 3);
}

TEST(SessionTest, StepApiMatchesRun) {
  FakeObjective objective;
  auto adapter = std::move(AdapterRegistry::Global().Create(
                            "identity", &objective.config_space(), 1))
                     .ValueOrDie();
  RandomSearchOptimizer optimizer(adapter->search_space(), 6);
  SessionOptions options;
  options.num_iterations = 10;
  TuningSession session(&objective, adapter.get(), &optimizer, options);
  int steps = 0;
  while (session.Step()) ++steps;
  EXPECT_EQ(steps, 11);  // baseline + 10 iterations
  EXPECT_EQ(session.iterations_run(), 10);
  EXPECT_FALSE(session.Step());  // exhausted
}

TEST(SessionTest, MetricsReachOptimizer) {
  // The RL hook: metrics from every run must be forwarded.
  class CountingOptimizer : public RandomSearchOptimizer {
   public:
    using RandomSearchOptimizer::RandomSearchOptimizer;
    void ObserveMetrics(const std::vector<double>& metrics) override {
      ++metric_calls_;
      last_metrics_ = metrics;
    }
    int metric_calls_ = 0;
    std::vector<double> last_metrics_;
  };
  FakeObjective objective;
  auto adapter = std::move(AdapterRegistry::Global().Create(
                            "identity", &objective.config_space(), 1))
                     .ValueOrDie();
  CountingOptimizer optimizer(adapter->search_space(), 7);
  SessionOptions options;
  options.num_iterations = 4;
  TuningSession session(&objective, adapter.get(), &optimizer, options);
  session.Run();
  EXPECT_EQ(optimizer.metric_calls_, 5);  // baseline + 4 iterations
  EXPECT_EQ(optimizer.last_metrics_, (std::vector<double>{1.0, 2.0, 3.0}));
}

}  // namespace
}  // namespace llamatune
