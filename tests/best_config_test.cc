#include <gtest/gtest.h>

#include "src/optimizer/best_config.h"
#include "src/optimizer/random_search.h"

namespace llamatune {
namespace {

SearchSpace Box2d() {
  return SearchSpace(
      {SearchDim::Continuous(0.0, 1.0), SearchDim::Continuous(0.0, 1.0)});
}

double Quadratic(const std::vector<double>& p) {
  double dx = p[0] - 0.6, dy = p[1] - 0.4;
  return 10.0 - 20.0 * (dx * dx + dy * dy);
}

TEST(BestConfigTest, SuggestionsInBounds) {
  BestConfigOptimizer opt(Box2d(), {}, 1);
  for (int i = 0; i < 50; ++i) {
    auto p = opt.Suggest();
    EXPECT_TRUE(opt.space().Contains(p));
    opt.Observe(p, Quadratic(p));
  }
}

TEST(BestConfigTest, BoxShrinksOnImprovingRound) {
  BestConfigOptions options;
  options.samples_per_round = 5;
  BestConfigOptimizer opt(Box2d(), options, 2);
  double initial_width = opt.box_hi()[0] - opt.box_lo()[0];
  // First round always "improves" (no prior incumbent).
  for (int i = 0; i < 5; ++i) {
    auto p = opt.Suggest();
    opt.Observe(p, Quadratic(p));
  }
  double width = opt.box_hi()[0] - opt.box_lo()[0];
  EXPECT_LT(width, initial_width);
}

TEST(BestConfigTest, DivergesWhenStuck) {
  BestConfigOptions options;
  options.samples_per_round = 4;
  BestConfigOptimizer opt(Box2d(), options, 3);
  // Round 1: establish an unbeatable incumbent.
  for (int i = 0; i < 4; ++i) {
    auto p = opt.Suggest();
    opt.Observe(p, 100.0);
  }
  // Round 2: strictly worse values -> the box resets to full space.
  for (int i = 0; i < 4; ++i) {
    auto p = opt.Suggest();
    opt.Observe(p, 0.0);
  }
  EXPECT_DOUBLE_EQ(opt.box_lo()[0], 0.0);
  EXPECT_DOUBLE_EQ(opt.box_hi()[0], 1.0);
}

TEST(BestConfigTest, FindsGoodRegionOnQuadratic) {
  double total = 0.0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    BestConfigOptimizer opt(Box2d(), {}, seed);
    for (int i = 0; i < 60; ++i) {
      auto p = opt.Suggest();
      opt.Observe(p, Quadratic(p));
    }
    total += opt.BestValue();
  }
  EXPECT_GT(total / 5.0, 9.3);  // near the optimum of 10
}

TEST(BestConfigTest, HandlesCategoricalDims) {
  SearchSpace space(
      {SearchDim::Continuous(0.0, 1.0), SearchDim::Categorical(3)});
  BestConfigOptimizer opt(space, {}, 4);
  for (int i = 0; i < 40; ++i) {
    auto p = opt.Suggest();
    EXPECT_TRUE(space.Contains(p));
    opt.Observe(p, p[1] == 2.0 ? 5.0 : 1.0);
  }
  EXPECT_EQ(opt.BestPoint()[1], 2.0);
}

TEST(BestConfigTest, DeterministicPerSeed) {
  BestConfigOptimizer a(Box2d(), {}, 9), b(Box2d(), {}, 9);
  for (int i = 0; i < 25; ++i) {
    auto pa = a.Suggest();
    auto pb = b.Suggest();
    EXPECT_EQ(pa, pb);
    a.Observe(pa, Quadratic(pa));
    b.Observe(pb, Quadratic(pb));
  }
}

TEST(BestConfigTest, RespectsBucketGrids) {
  SearchSpace space({SearchDim::Continuous(-1.0, 1.0, 21)});
  BestConfigOptimizer opt(space, {}, 5);
  for (int i = 0; i < 30; ++i) {
    auto p = opt.Suggest();
    EXPECT_TRUE(space.Contains(p));
    opt.Observe(p, -p[0] * p[0]);
  }
}

}  // namespace
}  // namespace llamatune
