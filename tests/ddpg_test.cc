#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/optimizer/ddpg.h"
#include "src/optimizer/replay_buffer.h"

namespace llamatune {
namespace {

TEST(ReplayBufferTest, GrowsThenWrapsFifo) {
  ReplayBuffer buffer(3);
  for (int i = 0; i < 5; ++i) {
    Transition t;
    t.reward = static_cast<double>(i);
    buffer.Add(std::move(t));
  }
  EXPECT_EQ(buffer.size(), 3u);
  // Oldest entries (0, 1) were overwritten by 3 and 4.
  Rng rng(1);
  bool saw_old = false;
  for (int i = 0; i < 100; ++i) {
    for (const Transition& t : buffer.Sample(3, &rng)) {
      if (t.reward < 2.0) saw_old = true;
    }
  }
  EXPECT_FALSE(saw_old);
}

TEST(ReplayBufferTest, SampleSizeCappedBySize) {
  ReplayBuffer buffer(10);
  Transition t;
  buffer.Add(t);
  buffer.Add(t);
  Rng rng(2);
  EXPECT_EQ(buffer.Sample(5, &rng).size(), 2u);
  ReplayBuffer empty(4);
  EXPECT_TRUE(empty.Sample(3, &rng).empty());
}

SearchSpace MixedSpace() {
  return SearchSpace({SearchDim::Continuous(0.0, 1.0),
                      SearchDim::Categorical(3),
                      SearchDim::Continuous(-2.0, 2.0, 41)});
}

DdpgOptions SmallOptions() {
  DdpgOptions options;
  options.state_dim = 4;
  options.actor_hidden = {8};
  options.critic_hidden = {8};
  options.updates_per_observe = 2;
  return options;
}

TEST(DdpgTest, SuggestionsValidWithoutState) {
  DdpgOptimizer opt(MixedSpace(), SmallOptions(), 1);
  for (int i = 0; i < 10; ++i) {
    auto p = opt.Suggest();
    EXPECT_TRUE(opt.space().Contains(p));
    opt.Observe(p, 1.0);
  }
}

TEST(DdpgTest, SuggestionsValidWithState) {
  DdpgOptimizer opt(MixedSpace(), SmallOptions(), 2);
  opt.ObserveMetrics({0.1, 0.2, 0.3, 0.4});
  for (int i = 0; i < 20; ++i) {
    auto p = opt.Suggest();
    EXPECT_TRUE(opt.space().Contains(p));
    opt.ObserveMetrics({0.1, 0.2, 0.3, 0.4});
    opt.Observe(p, static_cast<double>(i));
  }
  EXPECT_EQ(opt.history().size(), 20u);
}

TEST(DdpgTest, HandlesShortMetricsVector) {
  // Metrics shorter than state_dim are zero-padded.
  DdpgOptimizer opt(MixedSpace(), SmallOptions(), 3);
  opt.ObserveMetrics({1.0});
  auto p = opt.Suggest();
  EXPECT_TRUE(opt.space().Contains(p));
}

TEST(DdpgTest, DeterministicGivenSeed) {
  DdpgOptimizer a(MixedSpace(), SmallOptions(), 7);
  DdpgOptimizer b(MixedSpace(), SmallOptions(), 7);
  std::vector<double> metrics = {0.5, 0.5, 0.5, 0.5};
  a.ObserveMetrics(metrics);
  b.ObserveMetrics(metrics);
  for (int i = 0; i < 10; ++i) {
    auto pa = a.Suggest();
    auto pb = b.Suggest();
    EXPECT_EQ(pa, pb);
    a.ObserveMetrics(metrics);
    b.ObserveMetrics(metrics);
    a.Observe(pa, 1.0);
    b.Observe(pb, 1.0);
  }
}

TEST(DdpgTest, LearnsStateIndependentGoodAction) {
  // Bandit-style check: reward is highest when the first action
  // coordinate is large. After training, the deterministic policy
  // should push that coordinate up.
  SearchSpace space({SearchDim::Continuous(0.0, 1.0)});
  DdpgOptions options = SmallOptions();
  options.updates_per_observe = 40;
  options.noise_decay = 0.93;
  DdpgOptimizer opt(space, options, 11);
  std::vector<double> metrics = {0.5, 0.5, 0.5, 0.5};
  opt.ObserveMetrics(metrics);
  double last = 0.0;
  for (int i = 0; i < 60; ++i) {
    auto p = opt.Suggest();
    last = p[0];
    opt.ObserveMetrics(metrics);
    opt.Observe(p, p[0] * 100.0);
  }
  EXPECT_GT(last, 0.5);
}

}  // namespace
}  // namespace llamatune
