#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/harness/csv.h"

namespace llamatune {
namespace harness {
namespace {

TEST(CsvTest, CurvesHeaderAndRows) {
  CurveSummary a;
  a.mean = {1.0, 2.0};
  a.lo = {0.5, 1.5};
  a.hi = {1.5, 2.5};
  std::string csv = CurvesToCsv({"smac"}, {a});
  EXPECT_NE(csv.find("iteration,smac_mean,smac_p5,smac_p95"),
            std::string::npos);
  EXPECT_NE(csv.find("1,1,0.5,1.5"), std::string::npos);
  EXPECT_NE(csv.find("2,2,1.5,2.5"), std::string::npos);
}

TEST(CsvTest, RaggedCurvesPadded) {
  CurveSummary a;
  a.mean = {1.0};
  a.lo = {1.0};
  a.hi = {1.0};
  CurveSummary b;
  b.mean = {1.0, 2.0};
  b.lo = {1.0, 2.0};
  b.hi = {1.0, 2.0};
  std::string csv = CurvesToCsv({"a", "b"}, {a, b});
  EXPECT_NE(csv.find("2,,,,2,2,2"), std::string::npos);
}

TEST(CsvTest, SeedCurves) {
  std::string csv = SeedCurvesToCsv({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_NE(csv.find("iteration,seed0,seed1"), std::string::npos);
  EXPECT_NE(csv.find("1,1,3"), std::string::npos);
  EXPECT_NE(csv.find("2,2,4"), std::string::npos);
}

TEST(CsvTest, WriteFileRoundTrip) {
  std::string path = ::testing::TempDir() + "/llamatune_csv_test.csv";
  ASSERT_TRUE(WriteFile(path, "hello,world\n").ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "hello,world");
  std::remove(path.c_str());
}

TEST(CsvTest, WriteFileBadPathFails) {
  EXPECT_FALSE(WriteFile("/no/such/dir/x.csv", "x").ok());
}

}  // namespace
}  // namespace harness
}  // namespace llamatune
