#include <gtest/gtest.h>

#include <memory>

#include "src/common/rng.h"
#include "src/core/adapter_pipeline.h"
#include "src/core/adapter_registry.h"
#include "src/core/adapter_stages.h"
#include "src/core/identity_adapter.h"
#include "src/core/llamatune_adapter.h"
#include "src/dbsim/knob_catalog.h"
#include "src/sampling/uniform.h"

namespace llamatune {
namespace {

class PipelineFixture : public ::testing::Test {
 protected:
  static void ExpectSameSpace(const SearchSpace& a, const SearchSpace& b) {
    ASSERT_EQ(a.num_dims(), b.num_dims());
    for (int i = 0; i < a.num_dims(); ++i) {
      EXPECT_EQ(a.dim(i).type, b.dim(i).type) << "dim " << i;
      EXPECT_EQ(a.dim(i).lo, b.dim(i).lo) << "dim " << i;
      EXPECT_EQ(a.dim(i).hi, b.dim(i).hi) << "dim " << i;
      EXPECT_EQ(a.dim(i).num_categories, b.dim(i).num_categories)
          << "dim " << i;
      EXPECT_EQ(a.dim(i).num_buckets, b.dim(i).num_buckets) << "dim " << i;
    }
  }

  // Samples points from `reference`'s search space and checks that
  // both adapters project every one of them to the same configuration,
  // bit for bit.
  static void ExpectBitwiseEquivalent(const SpaceAdapter& reference,
                                      const SpaceAdapter& pipeline,
                                      uint64_t rng_seed, int n = 200) {
    ExpectSameSpace(reference.search_space(), pipeline.search_space());
    Rng rng(rng_seed);
    for (int i = 0; i < n; ++i) {
      auto p = UniformSample(reference.search_space(), &rng);
      Configuration a = reference.Project(p);
      Configuration b = pipeline.Project(p);
      ASSERT_EQ(a.size(), b.size());
      for (int k = 0; k < a.size(); ++k) {
        EXPECT_EQ(a[k], b[k]) << "knob " << k << ", sample " << i;
      }
    }
  }

  ConfigSpace space_ = dbsim::PostgresV96Catalog();
};

// The acceptance regression: the registry-built
// "hesbo16+svb0.2+bucket10000" pipeline reproduces the legacy
// LlamaTuneAdapter's configurations bit-for-bit.
TEST_F(PipelineFixture, PaperDefaultKeyMatchesLegacyLlamaTuneBitForBit) {
  LlamaTuneOptions options;  // paper defaults: HeSBO-16, 20%, K=10000
  options.projection_seed = 7;
  LlamaTuneAdapter legacy(&space_, options);

  auto pipeline = AdapterRegistry::Global().Create(
      "hesbo16+svb0.2+bucket10000", &space_, /*seed=*/7);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  ExpectBitwiseEquivalent(legacy, **pipeline, /*rng_seed=*/1);
}

TEST_F(PipelineFixture, LlamaTuneAliasMatchesExplicitKey) {
  auto a = AdapterRegistry::Global().Create("llamatune", &space_, 11);
  auto b = AdapterRegistry::Global().Create("hesbo16+svb0.2+bucket10000",
                                            &space_, 11);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectBitwiseEquivalent(**a, **b, /*rng_seed=*/2);
}

TEST_F(PipelineFixture, ComponentOrderDoesNotMatter) {
  auto a = AdapterRegistry::Global().Create("hesbo16+svb0.2+bucket10000",
                                            &space_, 3);
  auto b = AdapterRegistry::Global().Create("bucket10000+svb0.2+hesbo16",
                                            &space_, 3);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectBitwiseEquivalent(**a, **b, /*rng_seed=*/3);
}

TEST_F(PipelineFixture, LegacyEquivalenceAcrossVariants) {
  struct Case {
    ProjectionKind projection;
    int dim;
    double svb;
    int64_t buckets;
    const char* key;
  };
  const Case cases[] = {
      {ProjectionKind::kHesbo, 16, 0.0, 0, "hesbo16"},
      {ProjectionKind::kHesbo, 8, 0.2, 0, "hesbo8+svb0.2"},
      {ProjectionKind::kHesbo, 24, 0.0, 500, "hesbo24+bucket500"},
      {ProjectionKind::kRembo, 16, 0.2, 10000, "rembo16+svb0.2+bucket10000"},
      {ProjectionKind::kRembo, 8, 0.05, 0, "rembo8+svb0.05"},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.key);
    LlamaTuneOptions options;
    options.projection = c.projection;
    options.target_dim = c.dim;
    options.special_value_bias = c.svb;
    options.bucket_values = c.buckets;
    options.projection_seed = 19;
    LlamaTuneAdapter legacy(&space_, options);

    auto pipeline = AdapterRegistry::Global().Create(c.key, &space_, 19);
    ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
    ExpectBitwiseEquivalent(legacy, **pipeline, /*rng_seed=*/c.dim, 100);
  }
}

TEST_F(PipelineFixture, IdentityKeyMatchesLegacyIdentityAdapter) {
  struct Case {
    double svb;
    int64_t buckets;
    const char* key;
  };
  const Case cases[] = {
      {0.0, 0, "identity"},
      {0.2, 0, "identity+svb0.2"},
      {0.0, 1000, "identity+bucket1000"},
      {0.2, 1000, "identity+svb0.2+bucket1000"},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.key);
    IdentityAdapterOptions options;
    options.special_value_bias = c.svb;
    options.bucket_values = c.buckets;
    IdentityAdapter legacy(&space_, options);

    auto pipeline = AdapterRegistry::Global().Create(c.key, &space_, 1);
    ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
    ExpectBitwiseEquivalent(legacy, **pipeline, /*rng_seed=*/4, 100);
  }
}

TEST_F(PipelineFixture, SeedControlsProjectionMatrix) {
  auto a = AdapterRegistry::Global().Create("llamatune", &space_, 1);
  auto b = AdapterRegistry::Global().Create("llamatune", &space_, 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  Rng rng(5);
  bool any_difference = false;
  for (int i = 0; i < 50 && !any_difference; ++i) {
    auto p = UniformSample((*a)->search_space(), &rng);
    any_difference = !((*a)->Project(p) == (*b)->Project(p));
  }
  EXPECT_TRUE(any_difference) << "different seeds produced identical maps";
}

TEST_F(PipelineFixture, ProjectedConfigsAlwaysValid) {
  for (const char* key :
       {"llamatune", "identity", "rembo8+svb0.3", "hesbo24+bucket100",
        "identity+svb0.1+bucket50", "svb0.2"}) {
    SCOPED_TRACE(key);
    auto adapter = AdapterRegistry::Global().Create(key, &space_, 13);
    ASSERT_TRUE(adapter.ok()) << adapter.status().ToString();
    Rng rng(6);
    for (int i = 0; i < 100; ++i) {
      auto p = UniformSample((*adapter)->search_space(), &rng);
      Configuration c = (*adapter)->Project(p);
      EXPECT_TRUE(space_.ValidateConfiguration(c).ok());
    }
  }
}

TEST_F(PipelineFixture, PipelineWithoutBasisExposesUnitSpace) {
  // A bare decode stage bottoms out in the raw unit knob space.
  auto adapter = AdapterRegistry::Global().Create("svb0.2", &space_, 1);
  ASSERT_TRUE(adapter.ok());
  const SearchSpace& space = (*adapter)->search_space();
  ASSERT_EQ(space.num_dims(), space_.num_knobs());
  for (int i = 0; i < space.num_dims(); ++i) {
    EXPECT_EQ(space.dim(i).type, SearchDim::Type::kContinuous);
    EXPECT_EQ(space.dim(i).lo, 0.0);
    EXPECT_EQ(space.dim(i).hi, 1.0);
  }
}

TEST_F(PipelineFixture, BasisMustBeInnermost) {
  std::vector<std::unique_ptr<AdapterStage>> stages;
  stages.push_back(
      std::make_unique<ProjectionStage>(ProjectionKind::kHesbo, 16));
  stages.push_back(std::make_unique<BucketizerStage>(100));
  auto result = AdapterPipeline::Create(&space_, std::move(stages), 1);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PipelineFixture, TwoBasisStagesRejected) {
  auto result =
      AdapterRegistry::Global().Create("hesbo16+identity", &space_, 1);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PipelineFixture, NameListsStages) {
  auto adapter =
      AdapterRegistry::Global().Create("llamatune", &space_, 1);
  ASSERT_TRUE(adapter.ok());
  std::string name = (*adapter)->name();
  EXPECT_NE(name.find("hesbo16"), std::string::npos) << name;
  EXPECT_NE(name.find("svb0.2"), std::string::npos) << name;
  EXPECT_NE(name.find("bucket10000"), std::string::npos) << name;
}

TEST_F(PipelineFixture, ProjectionDimensionValidated) {
  for (const char* key : {"hesbo0", "hesbo1000", "rembo-3"}) {
    SCOPED_TRACE(key);
    auto result = AdapterRegistry::Global().Create(key, &space_, 1);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(PipelineFixture, WorksOnBothCatalogVersions) {
  ConfigSpace v136 = dbsim::PostgresV136Catalog();
  auto adapter = AdapterRegistry::Global().Create("llamatune", &v136, 21);
  ASSERT_TRUE(adapter.ok());
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    auto p = UniformSample((*adapter)->search_space(), &rng);
    EXPECT_TRUE(v136.ValidateConfiguration((*adapter)->Project(p)).ok());
  }
}

}  // namespace
}  // namespace llamatune
