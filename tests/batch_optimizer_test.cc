#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "src/common/rng.h"

#include "src/optimizer/optimizer.h"
#include "src/optimizer/random_search.h"
#include "src/optimizer/smac.h"

namespace llamatune {
namespace {

SearchSpace SmallSpace() {
  return SearchSpace({SearchDim::Continuous(0.0, 1.0),
                      SearchDim::Continuous(-1.0, 1.0, 100),
                      SearchDim::Categorical(4)});
}

// The fallback contract: SuggestBatch(n) on an unmodified optimizer is
// exactly n successive Suggest() calls.
TEST(SuggestBatchTest, FallbackMatchesSequentialSuggest) {
  RandomSearchOptimizer batched(SmallSpace(), /*seed=*/17);
  RandomSearchOptimizer sequential(SmallSpace(), /*seed=*/17);

  auto batch = batched.SuggestBatch(5);
  ASSERT_EQ(batch.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(batch[i], sequential.Suggest()) << "suggestion " << i;
  }
}

TEST(SuggestBatchTest, ZeroAndNegativeSizesYieldEmptyBatch) {
  RandomSearchOptimizer opt(SmallSpace(), 1);
  EXPECT_TRUE(opt.SuggestBatch(0).empty());
  EXPECT_TRUE(opt.SuggestBatch(-3).empty());
}

TEST(SuggestBatchTest, BatchPointsAreValid) {
  SearchSpace space = SmallSpace();
  SmacOptimizer opt(space, SmacOptions{}, /*seed=*/3);
  for (auto& point : opt.SuggestBatch(12)) {
    EXPECT_TRUE(space.Contains(point));
    opt.Observe(point, 1.0);
  }
  // Past the init design the model path also batches.
  for (auto& point : opt.SuggestBatch(3)) {
    EXPECT_TRUE(space.Contains(point));
  }
}

TEST(ObserveBatchTest, FallbackForwardsToObserveInOrder) {
  RandomSearchOptimizer batched(SmallSpace(), 1);
  RandomSearchOptimizer sequential(SmallSpace(), 1);

  std::vector<std::vector<double>> points = {
      {0.1, 0.0, 0.0}, {0.2, 0.5, 1.0}, {0.3, -0.5, 2.0}};
  std::vector<double> values = {3.0, 9.0, 5.0};

  batched.ObserveBatch(points, values);
  for (size_t i = 0; i < points.size(); ++i) {
    sequential.Observe(points[i], values[i]);
  }

  ASSERT_EQ(batched.history().size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(batched.history()[i].point, sequential.history()[i].point);
    EXPECT_EQ(batched.history()[i].value, sequential.history()[i].value);
  }
  EXPECT_EQ(batched.BestValue(), 9.0);
  EXPECT_EQ(batched.BestPoint(), points[1]);
}

TEST(ObserveBatchTest, MismatchedSizesObserveCommonPrefix) {
  RandomSearchOptimizer opt(SmallSpace(), 1);
  opt.ObserveBatch({{0.1, 0.0, 0.0}, {0.2, 0.0, 1.0}}, {1.0});
  EXPECT_EQ(opt.history().size(), 1u);
}

// The incumbent is tracked incrementally in Observe — these pin the
// semantics that used to come from a full history scan.
TEST(IncumbentTest, EmptyHistory) {
  RandomSearchOptimizer opt(SmallSpace(), 1);
  EXPECT_EQ(opt.BestValue(), -std::numeric_limits<double>::infinity());
  EXPECT_TRUE(opt.BestPoint().empty());
}

TEST(IncumbentTest, TracksRunningMaximum) {
  RandomSearchOptimizer opt(SmallSpace(), 1);
  opt.Observe({0.1, 0.0, 0.0}, 5.0);
  EXPECT_EQ(opt.BestValue(), 5.0);
  opt.Observe({0.2, 0.0, 1.0}, 3.0);  // worse: incumbent unchanged
  EXPECT_EQ(opt.BestValue(), 5.0);
  EXPECT_EQ(opt.BestPoint(), (std::vector<double>{0.1, 0.0, 0.0}));
  opt.Observe({0.3, 0.0, 2.0}, 8.0);  // better: incumbent moves
  EXPECT_EQ(opt.BestValue(), 8.0);
  EXPECT_EQ(opt.BestPoint(), (std::vector<double>{0.3, 0.0, 2.0}));
}

TEST(IncumbentTest, TiesKeepTheFirstObservation) {
  RandomSearchOptimizer opt(SmallSpace(), 1);
  opt.Observe({0.1, 0.0, 0.0}, 7.0);
  opt.Observe({0.9, 0.0, 3.0}, 7.0);
  EXPECT_EQ(opt.BestPoint(), (std::vector<double>{0.1, 0.0, 0.0}));
}

TEST(IncumbentTest, NegativeValuesHandled) {
  RandomSearchOptimizer opt(SmallSpace(), 1);
  opt.Observe({0.1, 0.0, 0.0}, -50.0);
  EXPECT_EQ(opt.BestValue(), -50.0);
  opt.Observe({0.2, 0.0, 1.0}, -10.0);
  EXPECT_EQ(opt.BestValue(), -10.0);
}

TEST(IncumbentTest, MatchesHistoryScanUnderRandomWorkload) {
  RandomSearchOptimizer opt(SmallSpace(), 23);
  Rng rng(29);
  for (int i = 0; i < 500; ++i) {
    auto point = opt.Suggest();
    opt.Observe(point, rng.Gaussian(0.0, 10.0));
    // Reference: the old full-history scan.
    double best = -std::numeric_limits<double>::infinity();
    for (const Observation& obs : opt.history()) {
      best = std::max(best, obs.value);
    }
    ASSERT_EQ(opt.BestValue(), best) << "iteration " << i;
  }
}

}  // namespace
}  // namespace llamatune
