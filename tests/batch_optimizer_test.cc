#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"

#include "src/optimizer/gp_bo.h"
#include "src/optimizer/optimizer.h"
#include "src/optimizer/optimizer_registry.h"
#include "src/optimizer/random_search.h"
#include "src/optimizer/smac.h"

namespace llamatune {
namespace {

SearchSpace SmallSpace() {
  return SearchSpace({SearchDim::Continuous(0.0, 1.0),
                      SearchDim::Continuous(-1.0, 1.0, 100),
                      SearchDim::Categorical(4)});
}

/// Smooth deterministic objective for driving model-based optimizers.
double Smooth(const std::vector<double>& x) {
  double acc = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    acc += std::sin(2.0 * x[i] + static_cast<double>(i));
  }
  return acc;
}

// The fallback contract: SuggestBatch(n) on an unmodified optimizer is
// exactly n successive Suggest() calls.
TEST(SuggestBatchTest, FallbackMatchesSequentialSuggest) {
  RandomSearchOptimizer batched(SmallSpace(), /*seed=*/17);
  RandomSearchOptimizer sequential(SmallSpace(), /*seed=*/17);

  auto batch = batched.SuggestBatch(5);
  ASSERT_EQ(batch.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(batch[i], sequential.Suggest()) << "suggestion " << i;
  }
}

TEST(SuggestBatchTest, ZeroAndNegativeSizesYieldEmptyBatch) {
  RandomSearchOptimizer opt(SmallSpace(), 1);
  EXPECT_TRUE(opt.SuggestBatch(0).empty());
  EXPECT_TRUE(opt.SuggestBatch(-3).empty());
}

TEST(SuggestBatchTest, BatchPointsAreValid) {
  SearchSpace space = SmallSpace();
  SmacOptimizer opt(space, SmacOptions{}, /*seed=*/3);
  for (auto& point : opt.SuggestBatch(12)) {
    EXPECT_TRUE(space.Contains(point));
    opt.Observe(point, 1.0);
  }
  // Past the init design the model path also batches.
  for (auto& point : opt.SuggestBatch(3)) {
    EXPECT_TRUE(space.Contains(point));
  }
}

TEST(ObserveBatchTest, FallbackForwardsToObserveInOrder) {
  RandomSearchOptimizer batched(SmallSpace(), 1);
  RandomSearchOptimizer sequential(SmallSpace(), 1);

  std::vector<std::vector<double>> points = {
      {0.1, 0.0, 0.0}, {0.2, 0.5, 1.0}, {0.3, -0.5, 2.0}};
  std::vector<double> values = {3.0, 9.0, 5.0};

  batched.ObserveBatch(points, values);
  for (size_t i = 0; i < points.size(); ++i) {
    sequential.Observe(points[i], values[i]);
  }

  ASSERT_EQ(batched.history().size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(batched.history()[i].point, sequential.history()[i].point);
    EXPECT_EQ(batched.history()[i].value, sequential.history()[i].value);
  }
  EXPECT_EQ(batched.BestValue(), 9.0);
  EXPECT_EQ(batched.BestPoint(), points[1]);
}

TEST(ObserveBatchTest, MismatchedSizesObserveCommonPrefix) {
  RandomSearchOptimizer opt(SmallSpace(), 1);
  opt.ObserveBatch({{0.1, 0.0, 0.0}, {0.2, 0.0, 1.0}}, {1.0});
  EXPECT_EQ(opt.history().size(), 1u);
}

// The incumbent is tracked incrementally in Observe — these pin the
// semantics that used to come from a full history scan.
TEST(IncumbentTest, EmptyHistory) {
  RandomSearchOptimizer opt(SmallSpace(), 1);
  EXPECT_EQ(opt.BestValue(), -std::numeric_limits<double>::infinity());
  EXPECT_TRUE(opt.BestPoint().empty());
}

TEST(IncumbentTest, TracksRunningMaximum) {
  RandomSearchOptimizer opt(SmallSpace(), 1);
  opt.Observe({0.1, 0.0, 0.0}, 5.0);
  EXPECT_EQ(opt.BestValue(), 5.0);
  opt.Observe({0.2, 0.0, 1.0}, 3.0);  // worse: incumbent unchanged
  EXPECT_EQ(opt.BestValue(), 5.0);
  EXPECT_EQ(opt.BestPoint(), (std::vector<double>{0.1, 0.0, 0.0}));
  opt.Observe({0.3, 0.0, 2.0}, 8.0);  // better: incumbent moves
  EXPECT_EQ(opt.BestValue(), 8.0);
  EXPECT_EQ(opt.BestPoint(), (std::vector<double>{0.3, 0.0, 2.0}));
}

TEST(IncumbentTest, TiesKeepTheFirstObservation) {
  RandomSearchOptimizer opt(SmallSpace(), 1);
  opt.Observe({0.1, 0.0, 0.0}, 7.0);
  opt.Observe({0.9, 0.0, 3.0}, 7.0);
  EXPECT_EQ(opt.BestPoint(), (std::vector<double>{0.1, 0.0, 0.0}));
}

TEST(IncumbentTest, NegativeValuesHandled) {
  RandomSearchOptimizer opt(SmallSpace(), 1);
  opt.Observe({0.1, 0.0, 0.0}, -50.0);
  EXPECT_EQ(opt.BestValue(), -50.0);
  opt.Observe({0.2, 0.0, 1.0}, -10.0);
  EXPECT_EQ(opt.BestValue(), -10.0);
}

// ---------------------------------------------------------------------------
// SuggestBatch(1) == Suggest(), bit for bit, for every registered
// optimizer — including the batch-aware ones, whose qEI / local
// penalization / diversification modes must degrade to the plain
// acquisition at q = 1.
// ---------------------------------------------------------------------------

class SuggestBatchOfOnePin : public ::testing::TestWithParam<const char*> {};

TEST_P(SuggestBatchOfOnePin, BitForBitMatchesSuggest) {
  const std::string key = GetParam();
  SearchSpace space = SmallSpace();
  std::unique_ptr<Optimizer> batched =
      std::move(OptimizerRegistry::Global().Create(key, space, 99))
          .ValueOrDie();
  std::unique_ptr<Optimizer> sequential =
      std::move(OptimizerRegistry::Global().Create(key, space, 99))
          .ValueOrDie();
  for (int i = 0; i < 16; ++i) {
    auto batch = batched->SuggestBatch(1);
    ASSERT_EQ(batch.size(), 1u) << key << " iteration " << i;
    auto point = sequential->Suggest();
    ASSERT_EQ(batch[0], point) << key << " iteration " << i;
    double value = Smooth(point);
    batched->ObserveBatch({batch[0]}, {value});
    sequential->Observe(point, value);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOptimizers, SuggestBatchOfOnePin,
                         ::testing::Values("random", "smac", "gpbo",
                                           "gpbo-qei", "gpbo-lp", "ddpg",
                                           "bestconfig"));

// The batch-mode keys are pure SuggestBatch variants: under Suggest()
// (and hence SuggestBatch(1)) they are indistinguishable from plain
// "gpbo" at the same seed.
TEST(SuggestBatchOfOneTest, QeiAndLpDegradeToPlainGpBo) {
  SearchSpace space = SmallSpace();
  auto plain = std::move(OptimizerRegistry::Global().Create("gpbo", space, 5))
                   .ValueOrDie();
  auto qei =
      std::move(OptimizerRegistry::Global().Create("gpbo-qei", space, 5))
          .ValueOrDie();
  auto lp = std::move(OptimizerRegistry::Global().Create("gpbo-lp", space, 5))
                .ValueOrDie();
  for (int i = 0; i < 14; ++i) {
    auto expected = plain->Suggest();
    ASSERT_EQ(qei->SuggestBatch(1)[0], expected) << "iteration " << i;
    ASSERT_EQ(lp->SuggestBatch(1)[0], expected) << "iteration " << i;
    double value = Smooth(expected);
    plain->Observe(expected, value);
    qei->Observe(expected, value);
    lp->Observe(expected, value);
  }
}

// ---------------------------------------------------------------------------
// Batch-aware behavior: valid points, full batches across the init
// boundary, and within-round diversity past the init design.
// ---------------------------------------------------------------------------

class BatchAwareValidity : public ::testing::TestWithParam<const char*> {};

TEST_P(BatchAwareValidity, FullValidBatchesAcrossInitBoundary) {
  const std::string key = GetParam();
  SearchSpace space = SmallSpace();
  std::unique_ptr<Optimizer> opt =
      std::move(OptimizerRegistry::Global().Create(key, space, 3))
          .ValueOrDie();
  // Rounds of 4 straddle the 10-point init design (picks 8..11 mix
  // init and model-based suggestions).
  for (int round = 0; round < 5; ++round) {
    auto batch = opt->SuggestBatch(4);
    ASSERT_EQ(batch.size(), 4u) << key << " round " << round;
    std::vector<double> values;
    for (const auto& point : batch) {
      EXPECT_TRUE(space.Contains(point)) << key << " round " << round;
      values.push_back(Smooth(point));
    }
    opt->ObserveBatch(batch, values);
  }
}

INSTANTIATE_TEST_SUITE_P(BatchAwareKeys, BatchAwareValidity,
                         ::testing::Values("gpbo-qei", "gpbo-lp", "smac"));

TEST(BatchDiversityTest, SmacExcludesNearDuplicateChallengers) {
  SearchSpace space = SmallSpace();
  SmacOptions options;
  // The min-distance guarantee covers model-based picks only; disable
  // the random interleave so every post-init pick is model-based.
  options.random_interleave = 0;
  SmacOptimizer opt(space, options, 11);
  // Get past the init design with single suggestions.
  for (int i = 0; i < options.n_init; ++i) {
    auto point = opt.Suggest();
    opt.Observe(point, Smooth(point));
  }
  for (int round = 0; round < 3; ++round) {
    auto batch = opt.SuggestBatch(4);
    ASSERT_EQ(batch.size(), 4u);
    for (size_t a = 0; a < batch.size(); ++a) {
      for (size_t b = a + 1; b < batch.size(); ++b) {
        EXPECT_GE(NormalizedDistance(space, batch[a], batch[b]),
                  options.batch_min_distance)
            << "round " << round << " picks " << a << "," << b;
      }
    }
    std::vector<double> values;
    for (const auto& point : batch) values.push_back(Smooth(point));
    opt.ObserveBatch(batch, values);
  }
}

class GpBatchDiversity : public ::testing::TestWithParam<const char*> {};

TEST_P(GpBatchDiversity, ModelPicksWithinARoundAreDistinct) {
  SearchSpace space = SmallSpace();
  std::unique_ptr<Optimizer> opt =
      std::move(OptimizerRegistry::Global().Create(GetParam(), space, 21))
          .ValueOrDie();
  for (int i = 0; i < 10; ++i) {
    auto point = opt->Suggest();
    opt->Observe(point, Smooth(point));
  }
  for (int round = 0; round < 3; ++round) {
    auto batch = opt->SuggestBatch(4);
    ASSERT_EQ(batch.size(), 4u);
    for (size_t a = 0; a < batch.size(); ++a) {
      for (size_t b = a + 1; b < batch.size(); ++b) {
        EXPECT_GT(NormalizedDistance(space, batch[a], batch[b]), 0.0)
            << "round " << round << " picks " << a << "," << b
            << " collapsed onto the same point";
      }
    }
    std::vector<double> values;
    for (const auto& point : batch) values.push_back(Smooth(point));
    opt->ObserveBatch(batch, values);
  }
}

INSTANTIATE_TEST_SUITE_P(GpBatchKeys, GpBatchDiversity,
                         ::testing::Values("gpbo-qei", "gpbo-lp"));

TEST(NormalizedDistanceTest, RmsMetricBasics) {
  SearchSpace space = SmallSpace();
  std::vector<double> a{0.0, -1.0, 0.0};
  EXPECT_EQ(NormalizedDistance(space, a, a), 0.0);
  // Max distance in every dimension -> 1.
  std::vector<double> b{1.0, 1.0, 3.0};
  EXPECT_NEAR(NormalizedDistance(space, a, b), 1.0, 1e-12);
  // One categorical mismatch out of three dims -> sqrt(1/3).
  std::vector<double> c{0.0, -1.0, 2.0};
  EXPECT_NEAR(NormalizedDistance(space, a, c), std::sqrt(1.0 / 3.0), 1e-12);
}

TEST(IncumbentTest, MatchesHistoryScanUnderRandomWorkload) {
  RandomSearchOptimizer opt(SmallSpace(), 23);
  Rng rng(29);
  for (int i = 0; i < 500; ++i) {
    auto point = opt.Suggest();
    opt.Observe(point, rng.Gaussian(0.0, 10.0));
    // Reference: the old full-history scan.
    double best = -std::numeric_limits<double>::infinity();
    for (const Observation& obs : opt.history()) {
      best = std::max(best, obs.value);
    }
    ASSERT_EQ(opt.BestValue(), best) << "iteration " << i;
  }
}

}  // namespace
}  // namespace llamatune
