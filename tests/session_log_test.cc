#include <gtest/gtest.h>

#include <cstdio>

#include "src/core/session_log.h"
#include "src/dbsim/knob_catalog.h"

namespace llamatune {
namespace {

KnowledgeBase SampleKb(const ConfigSpace& space) {
  KnowledgeBase kb;
  for (int i = 1; i <= 3; ++i) {
    IterationRecord record;
    record.iteration = i;
    record.objective = 1000.0 * i + 0.125;
    record.measured = record.objective;
    record.crashed = (i == 2);
    Configuration config = space.DefaultConfiguration();
    config[0] = space.knob(0).Canonicalize(space.knob(0).min_value + i);
    record.config = config;
    kb.Add(std::move(record));
  }
  return kb;
}

TEST(SessionLogTest, RoundTripPreservesRecords) {
  ConfigSpace space = dbsim::PostgresV96Catalog();
  KnowledgeBase kb = SampleKb(space);
  std::string text = SerializeKnowledgeBase(space, kb);
  auto loaded = ParseKnowledgeBase(space, text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ((*loaded).size(), 3);
  for (int i = 0; i < 3; ++i) {
    const IterationRecord& a = kb.record(i);
    const IterationRecord& b = (*loaded).record(i);
    EXPECT_EQ(a.iteration, b.iteration);
    EXPECT_DOUBLE_EQ(a.objective, b.objective);
    EXPECT_EQ(a.crashed, b.crashed);
    EXPECT_EQ(a.config, b.config);
  }
}

TEST(SessionLogTest, HeaderNamesEveryKnob) {
  ConfigSpace space = dbsim::PostgresV96Catalog();
  std::string text = SerializeKnowledgeBase(space, KnowledgeBase());
  EXPECT_NE(text.find("shared_buffers"), std::string::npos);
  EXPECT_NE(text.find("backend_flush_after"), std::string::npos);
}

TEST(SessionLogTest, RejectsCatalogMismatch) {
  ConfigSpace v96 = dbsim::PostgresV96Catalog();
  ConfigSpace v136 = dbsim::PostgresV136Catalog();
  std::string text = SerializeKnowledgeBase(v96, SampleKb(v96));
  auto loaded = ParseKnowledgeBase(v136, text);
  EXPECT_FALSE(loaded.ok());
}

TEST(SessionLogTest, RejectsMalformedRows) {
  ConfigSpace space = dbsim::PostgresV96Catalog();
  std::string text = SerializeKnowledgeBase(space, KnowledgeBase());
  EXPECT_FALSE(ParseKnowledgeBase(space, text + "1,2,3\n").ok());
  EXPECT_FALSE(ParseKnowledgeBase(space, "").ok());
}

TEST(SessionLogTest, RejectsOutOfRangeValues) {
  ConfigSpace space = dbsim::PostgresV96Catalog();
  KnowledgeBase kb = SampleKb(space);
  std::string text = SerializeKnowledgeBase(space, kb);
  // Corrupt the first knob value of the first row to an absurd number.
  size_t header_end = text.find('\n');
  size_t row_start = header_end + 1;
  // Skip the 4 bookkeeping fields.
  size_t pos = row_start;
  for (int commas = 0; commas < 4; ++pos) {
    if (text[pos] == ',') ++commas;
  }
  size_t value_end = text.find(',', pos);
  text.replace(pos, value_end - pos, "9e18");
  EXPECT_FALSE(ParseKnowledgeBase(space, text).ok());
}

TEST(SessionLogTest, FileRoundTrip) {
  ConfigSpace space = dbsim::PostgresV96Catalog();
  KnowledgeBase kb = SampleKb(space);
  std::string path = ::testing::TempDir() + "/llamatune_kb_test.csv";
  ASSERT_TRUE(SaveKnowledgeBase(space, kb, path).ok());
  auto loaded = LoadKnowledgeBase(space, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded).size(), kb.size());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadKnowledgeBase(space, path).ok());  // gone
}

}  // namespace
}  // namespace llamatune
