#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>
#include <vector>

#include "src/dbsim/des/des_engine.h"
#include "src/dbsim/des/event_queue.h"
#include "src/dbsim/des/zipf.h"
#include "src/dbsim/simulated_postgres.h"

namespace llamatune {
namespace dbsim {
namespace des {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue;
  queue.Push(3.0, 1, 0);
  queue.Push(1.0, 2, 1);
  queue.Push(2.0, 3, 2);
  EXPECT_EQ(queue.Pop().actor, 1);
  EXPECT_EQ(queue.Pop().actor, 2);
  EXPECT_EQ(queue.Pop().actor, 0);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueTest, EqualTimesAreFifo) {
  EventQueue queue;
  queue.Push(1.0, 0, 10);
  queue.Push(1.0, 0, 11);
  queue.Push(1.0, 0, 12);
  EXPECT_EQ(queue.Pop().actor, 10);
  EXPECT_EQ(queue.Pop().actor, 11);
  EXPECT_EQ(queue.Pop().actor, 12);
}

TEST(EventQueueTest, PeekTime) {
  EventQueue queue;
  EXPECT_TRUE(std::isinf(queue.PeekTime()));
  queue.Push(5.5, 0, 0);
  EXPECT_DOUBLE_EQ(queue.PeekTime(), 5.5);
}

TEST(ZipfTest, UniformWhenThetaZero) {
  ZipfianGenerator zipf(100, 0.0);
  Rng rng(1);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 20000; ++i) counts[zipf.Next(&rng)]++;
  EXPECT_GT(counts.size(), 95u);
  for (auto& [k, c] : counts) EXPECT_NEAR(c, 200, 80);
}

TEST(ZipfTest, SkewConcentratesOnLowKeys) {
  ZipfianGenerator zipf(10000, 0.9);
  Rng rng(2);
  int head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Next(&rng) < 100) ++head;  // hottest 1% of keys
  }
  // With theta=0.9 the hottest 1% draws far more than 1% of accesses.
  EXPECT_GT(static_cast<double>(head) / n, 0.3);
}

TEST(ZipfTest, KeysInRange) {
  ZipfianGenerator zipf(50, 0.7);
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    int64_t k = zipf.Next(&rng);
    EXPECT_GE(k, 0);
    EXPECT_LT(k, 50);
  }
}

class DesFixture : public ::testing::Test {
 protected:
  DesFixture()
      : space_(PostgresV96Catalog()),
        model_(&space_, YcsbA(), PostgresVersion::kV96) {}

  ConfigSpace space_;
  PerfModel model_;
};

TEST_F(DesFixture, MeasuredMeanTracksAnalyticMean) {
  ModelOutput analytic = model_.Run(space_.DefaultConfiguration());
  DesOptions options;
  options.seed = 7;
  DesResult run = SimulateRun(analytic, YcsbA(), options);
  EXPECT_GT(run.completed, 10000);
  EXPECT_NEAR(run.avg_latency_ms, analytic.avg_latency_ms,
              analytic.avg_latency_ms * 0.25);
  EXPECT_NEAR(run.throughput, analytic.throughput,
              analytic.throughput * 0.25);
}

TEST_F(DesFixture, TailAboveMean) {
  ModelOutput analytic = model_.Run(space_.DefaultConfiguration());
  DesResult run = SimulateRun(analytic, YcsbA(), {});
  EXPECT_GT(run.p95_latency_ms, run.avg_latency_ms);
  EXPECT_GE(run.p99_latency_ms, run.p95_latency_ms);
}

TEST_F(DesFixture, DeterministicPerSeedNoisyAcrossSeeds) {
  ModelOutput analytic = model_.Run(space_.DefaultConfiguration());
  DesOptions a, b;
  a.seed = 1;
  b.seed = 1;
  EXPECT_DOUBLE_EQ(SimulateRun(analytic, YcsbA(), a).throughput,
                   SimulateRun(analytic, YcsbA(), b).throughput);
  b.seed = 2;
  EXPECT_NE(SimulateRun(analytic, YcsbA(), a).throughput,
            SimulateRun(analytic, YcsbA(), b).throughput);
}

TEST_F(DesFixture, CrashedAnalyticYieldsEmptyRun) {
  ModelOutput crashed;
  crashed.crashed = true;
  DesResult run = SimulateRun(crashed, YcsbA(), {});
  EXPECT_EQ(run.completed, 0);
  EXPECT_EQ(run.throughput, 0.0);
}

TEST_F(DesFixture, LowCompletionTargetWorsensTail) {
  // Checkpoint smoothing: cct 0.1 (bursty) vs 0.9 (spread) on a
  // write-heavy workload.
  ConfigSpace space = PostgresV96Catalog();
  PerfModel tpcc(&space, TpcC(), PostgresVersion::kV96);
  Configuration bursty = space.DefaultConfiguration();
  bursty[space.IndexOf("checkpoint_completion_target")] = 0.1;
  Configuration smooth = space.DefaultConfiguration();
  smooth[space.IndexOf("checkpoint_completion_target")] = 0.9;
  DesOptions options;
  options.seed = 5;
  options.max_transactions = 30000;
  DesResult run_bursty = SimulateRun(tpcc.Run(bursty), TpcC(), options);
  DesResult run_smooth = SimulateRun(tpcc.Run(smooth), TpcC(), options);
  EXPECT_GT(run_bursty.p95_latency_ms / run_bursty.avg_latency_ms,
            run_smooth.p95_latency_ms / run_smooth.avg_latency_ms);
}

// --- Variable-length-run prefix property ---------------------------------
//
// Racing evaluates the same configuration at several fidelities
// (max_transactions scaled down), so the relationship between a short
// run and the full run under the same seed is part of the determinism
// contract:
//
//  * Without checkpoint activity (both checkpoint counters ~0),
//    window_s == 0 and every per-transaction latency draw depends only
//    on the seeded rng stream and run-length-independent constants.
//    The phase-offset draw still consumes exactly one rng value (its
//    value is unused), so a short run's latency vector is a
//    bit-for-bit prefix of the full run's.
//
//  * With checkpoints active and a cadence slower than horizon/8, the
//    engine compresses the checkpoint period to horizon_s/8 — which
//    couples period_s (and the phase offset scaled by it) to
//    max_transactions. Divergence between run lengths is then the
//    documented behavior, not a determinism bug; racing rungs at
//    different fidelities are distinct measurements of the same
//    configuration, not truncations of one measurement.

bool IsBitPrefix(const std::vector<double>& prefix,
                 const std::vector<double>& full) {
  if (prefix.size() > full.size()) return false;
  return std::memcmp(prefix.data(), full.data(),
                     prefix.size() * sizeof(double)) == 0;
}

TEST_F(DesFixture, ShortRunIsBitForBitPrefixWithoutCheckpoints) {
  ModelOutput analytic = model_.Run(space_.DefaultConfiguration());
  // Force the no-checkpoint regime: window_s == 0, so the one
  // phase-offset draw is consumed but never read.
  analytic.counters.checkpoints_timed_per_min = 0.0;
  analytic.counters.checkpoints_req_per_min = 0.0;

  DesOptions long_run;
  long_run.seed = 17;
  long_run.max_transactions = 8000;
  long_run.capture_latencies = true;
  DesOptions short_run = long_run;
  short_run.max_transactions = 2000;

  DesResult full = SimulateRun(analytic, YcsbA(), long_run);
  DesResult prefix = SimulateRun(analytic, YcsbA(), short_run);
  ASSERT_EQ(full.latencies.size(), 8000u);
  ASSERT_EQ(prefix.latencies.size(), 2000u);
  EXPECT_TRUE(IsBitPrefix(prefix.latencies, full.latencies));

  // Different seed, same lengths: the streams must differ, or the
  // prefix check above would be vacuous.
  DesOptions other_seed = short_run;
  other_seed.seed = 18;
  DesResult reseeded = SimulateRun(analytic, YcsbA(), other_seed);
  EXPECT_FALSE(IsBitPrefix(reseeded.latencies, full.latencies));
}

TEST_F(DesFixture, CheckpointCadenceCouplesPeriodToRunLength) {
  ConfigSpace space = PostgresV96Catalog();
  PerfModel tpcc(&space, TpcC(), PostgresVersion::kV96);
  ModelOutput analytic = tpcc.Run(space.DefaultConfiguration());

  // Preconditions for the coupled regime, computed exactly as the
  // engine does: checkpoints are active, and their interval exceeds
  // horizon/8 for the long run, so period_s = horizon_s/8 depends on
  // max_transactions.
  double ckpt_per_min = analytic.counters.checkpoints_timed_per_min +
                        analytic.counters.checkpoints_req_per_min;
  ASSERT_GT(ckpt_per_min, 1e-6);
  double ckpt_interval_s = 60.0 / ckpt_per_min;
  double mean_latency_s = analytic.avg_latency_ms / 1000.0;
  double long_horizon_s = 8000 * mean_latency_s / TpcC().clients;
  ASSERT_GT(ckpt_interval_s, long_horizon_s / 8.0)
      << "TpcC default no longer exercises the horizon-coupled regime; "
         "pick a config with a slower checkpoint cadence";

  DesOptions long_run;
  long_run.seed = 17;
  long_run.max_transactions = 8000;
  long_run.capture_latencies = true;
  DesOptions short_run = long_run;
  short_run.max_transactions = 2000;

  DesResult full = SimulateRun(analytic, TpcC(), long_run);
  DesResult prefix = SimulateRun(analytic, TpcC(), short_run);
  ASSERT_EQ(full.latencies.size(), 8000u);
  ASSERT_EQ(prefix.latencies.size(), 2000u);
  // Divergence is the contract here, not a bug: the checkpoint phase
  // and period differ between run lengths.
  EXPECT_FALSE(IsBitPrefix(prefix.latencies, full.latencies));

  // Each length remains bit-for-bit reproducible under its own seed.
  DesResult again = SimulateRun(analytic, TpcC(), short_run);
  EXPECT_TRUE(IsBitPrefix(again.latencies, prefix.latencies));
  EXPECT_EQ(again.latencies.size(), prefix.latencies.size());
}

TEST(DesEngineIntegration, SimulatedPostgresDiscreteEventEngine) {
  SimulatedPostgresOptions options;
  options.engine = EngineKind::kDiscreteEvent;
  options.des_transactions = 8000;
  SimulatedPostgres db(YcsbB(), options);
  Configuration def = db.config_space().DefaultConfiguration();
  EvalResult a = db.Evaluate(def);
  EvalResult b = db.Evaluate(def);
  EXPECT_GT(a.value, 0.0);
  EXPECT_NE(a.value, b.value);  // sampling noise across repeats
  // Measured throughput stays near the analytic rate.
  double analytic = db.RunNoiseless(def).throughput;
  EXPECT_NEAR(a.value, analytic, analytic * 0.3);
}

}  // namespace
}  // namespace des
}  // namespace dbsim
}  // namespace llamatune
