#include <gtest/gtest.h>

#include "src/harness/experiment.h"

namespace llamatune {
namespace harness {
namespace {

MultiSeedResult FromCurves(std::vector<std::vector<double>> curves) {
  MultiSeedResult result;
  result.objective_curves = curves;
  result.measured_curves = curves;
  double total = 0.0;
  for (const auto& c : curves) total += c.back();
  result.mean_final_objective = total / curves.size();
  result.mean_final_measured = result.mean_final_objective;
  return result;
}

TEST(CompareTest, ImprovementPercent) {
  auto baseline = FromCurves({{1, 2, 10}, {1, 2, 10}});
  auto treatment = FromCurves({{1, 2, 12}, {1, 2, 12}});
  Comparison cmp = Compare(baseline, treatment);
  EXPECT_NEAR(cmp.mean_improvement_pct, 20.0, 1e-9);
}

TEST(CompareTest, TimeToOptimalSpeedup) {
  // Baseline tops out at 10 after 10 iterations; the treatment crosses
  // 10 at iteration 2 => 5x speedup.
  auto baseline =
      FromCurves({{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}});
  auto treatment =
      FromCurves({{5, 10, 10, 10, 10, 10, 10, 10, 10, 10}});
  Comparison cmp = Compare(baseline, treatment);
  EXPECT_NEAR(cmp.mean_speedup, 5.0, 1e-9);
  EXPECT_NEAR(cmp.mean_iterations_to_optimal, 2.0, 1e-9);
}

TEST(CompareTest, NeverReachingGivesUnitSpeedupFloor) {
  auto baseline = FromCurves({{10, 10, 10, 10}});
  auto treatment = FromCurves({{1, 2, 3, 4}});
  Comparison cmp = Compare(baseline, treatment);
  EXPECT_NEAR(cmp.mean_speedup, 1.0, 1e-9);
  EXPECT_LT(cmp.mean_improvement_pct, 0.0);
}

TEST(CompareTest, CiCoversSpreadAcrossSeeds) {
  auto baseline = FromCurves({{10, 10}, {10, 10}});
  auto treatment = FromCurves({{11, 11}, {13, 13}});
  Comparison cmp = Compare(baseline, treatment);
  EXPECT_NEAR(cmp.mean_improvement_pct, 20.0, 1e-9);
  EXPECT_LT(cmp.improvement_ci_lo, cmp.improvement_ci_hi);
  EXPECT_GE(cmp.improvement_ci_lo, 9.9);
  EXPECT_LE(cmp.improvement_ci_hi, 30.1);
}

TEST(CurveSummaryTest, MeanAndEnvelope) {
  CurveSummary s = SummarizeCurves({{1, 2, 3}, {3, 4, 5}});
  ASSERT_EQ(s.mean.size(), 3u);
  EXPECT_DOUBLE_EQ(s.mean[0], 2.0);
  EXPECT_DOUBLE_EQ(s.mean[2], 4.0);
  EXPECT_LE(s.lo[0], s.mean[0]);
  EXPECT_GE(s.hi[0], s.mean[0]);
}

TEST(CurveSummaryTest, TruncatesToShortest) {
  CurveSummary s = SummarizeCurves({{1, 2, 3, 4}, {1, 2}});
  EXPECT_EQ(s.mean.size(), 2u);
  EXPECT_TRUE(SummarizeCurves({}).mean.empty());
}

TEST(ConvergenceMappingTest, MapsToEarliestEqualIteration) {
  CurveSummary treatment;
  treatment.mean = {5.0, 9.0, 10.0};
  CurveSummary baseline;
  baseline.mean = {1.0, 5.0, 6.0, 9.0, 9.5, 10.0};
  auto mapping = ConvergenceMapping(treatment, baseline);
  ASSERT_EQ(mapping.size(), 3u);
  EXPECT_EQ(mapping[0], 2);  // baseline reaches 5.0 at iteration 2
  EXPECT_EQ(mapping[1], 4);
  EXPECT_EQ(mapping[2], 6);
}

TEST(ConvergenceMappingTest, UnreachedClampsToLengthPlusOne) {
  CurveSummary treatment;
  treatment.mean = {100.0};
  CurveSummary baseline;
  baseline.mean = {1.0, 2.0};
  auto mapping = ConvergenceMapping(treatment, baseline);
  EXPECT_EQ(mapping[0], 2);  // clamped to baseline length
}

TEST(RunExperimentTest, ShapesAndDeterminism) {
  ExperimentSpec spec;
  spec.workload = dbsim::YcsbA();
  spec.num_seeds = 2;
  spec.num_iterations = 12;
  spec.optimizer_key = "random";
  MultiSeedResult a = RunExperiment(spec);
  EXPECT_EQ(a.sessions.size(), 2u);
  EXPECT_EQ(a.objective_curves[0].size(), 12u);
  EXPECT_GT(a.mean_final_measured, 0.0);
  MultiSeedResult b = RunExperiment(spec);
  EXPECT_EQ(a.objective_curves, b.objective_curves);  // reproducible
}

TEST(RunExperimentTest, SeedShardingMatchesSerial) {
  // Seeds shard across the thread pool by default (num_threads = 0);
  // results must be identical to the fully serial run.
  ExperimentSpec spec;
  spec.workload = dbsim::YcsbA();
  spec.num_seeds = 3;
  spec.num_iterations = 10;
  spec.optimizer_key = "random";
  spec.num_threads = 0;
  MultiSeedResult sharded = RunExperiment(spec);
  spec.num_threads = 1;
  MultiSeedResult serial = RunExperiment(spec);
  EXPECT_EQ(sharded.objective_curves, serial.objective_curves);
  EXPECT_EQ(sharded.measured_curves, serial.measured_curves);
  EXPECT_EQ(sharded.mean_final_objective, serial.mean_final_objective);
}

TEST(RunExperimentTest, LlamaTuneVariantRuns) {
  ExperimentSpec spec;
  spec.workload = dbsim::YcsbB();
  spec.num_seeds = 1;
  spec.num_iterations = 15;
  spec.adapter_key = "llamatune";
  MultiSeedResult r = RunExperiment(spec);
  EXPECT_EQ(r.objective_curves[0].size(), 15u);
  // Best-so-far is monotone.
  for (size_t i = 1; i < r.objective_curves[0].size(); ++i) {
    EXPECT_GE(r.objective_curves[0][i], r.objective_curves[0][i - 1]);
  }
}

TEST(RunExperimentTest, EarlyStoppingPropagates) {
  ExperimentSpec spec;
  spec.workload = dbsim::YcsbA();
  spec.num_seeds = 1;
  spec.num_iterations = 100;
  spec.optimizer_key = "random";
  spec.early_stopping = EarlyStoppingPolicy(5.0, 5);
  MultiSeedResult r = RunExperiment(spec);
  EXPECT_LT(r.sessions[0].iterations_run, 100);
}

}  // namespace
}  // namespace harness
}  // namespace llamatune
