#include <gtest/gtest.h>

#include <set>

#include "src/dbsim/knob_catalog.h"

namespace llamatune {
namespace {

using dbsim::PostgresV136Catalog;
using dbsim::PostgresV96Catalog;

TEST(CatalogTest, V96HasNinetyKnobs) {
  EXPECT_EQ(PostgresV96Catalog().num_knobs(), 90);
}

TEST(CatalogTest, V96HasSeventeenHybridKnobs) {
  EXPECT_EQ(PostgresV96Catalog().hybrid_knob_indices().size(), 17u);
}

TEST(CatalogTest, V136HasOneHundredTwelveKnobs) {
  EXPECT_EQ(PostgresV136Catalog().num_knobs(), 112);
}

TEST(CatalogTest, V136HasTwentyThreeHybridKnobs) {
  EXPECT_EQ(PostgresV136Catalog().hybrid_knob_indices().size(), 23u);
}

TEST(CatalogTest, PaperHeadlineKnobsPresentInV96) {
  ConfigSpace space = PostgresV96Catalog();
  for (const char* name :
       {"shared_buffers", "backend_flush_after", "commit_delay",
        "wal_buffers", "geqo_pool_size", "wal_writer_flush_after",
        "max_wal_size", "autovacuum_vacuum_scale_factor",
        "autovacuum_analyze_scale_factor", "full_page_writes",
        "geqo_selection_bias", "enable_seqscan", "synchronous_commit",
        "work_mem", "max_files_per_process"}) {
    EXPECT_GE(space.IndexOf(name), 0) << name;
  }
}

TEST(CatalogTest, Table2SpecialValues) {
  // The paper's Table 2 examples with their documented specials.
  ConfigSpace space = PostgresV96Catalog();
  const KnobSpec& bfa = space.knob(space.IndexOf("backend_flush_after"));
  EXPECT_TRUE(bfa.IsSpecialValue(0));
  EXPECT_EQ(bfa.min_value, 0);
  EXPECT_EQ(bfa.max_value, 256);
  const KnobSpec& pool = space.knob(space.IndexOf("geqo_pool_size"));
  EXPECT_TRUE(pool.IsSpecialValue(0));
  const KnobSpec& wb = space.knob(space.IndexOf("wal_buffers"));
  EXPECT_TRUE(wb.IsSpecialValue(-1));
  EXPECT_EQ(wb.default_value, -1);
}

TEST(CatalogTest, AboutHalfOfHybridDefaultsAreSpecial) {
  // Paper §4.1: "for about half of the hybrid knobs, the special value
  // is used in the default configuration".
  ConfigSpace space = PostgresV96Catalog();
  int special_defaults = 0;
  for (int idx : space.hybrid_knob_indices()) {
    const KnobSpec& spec = space.knob(idx);
    if (spec.IsSpecialValue(spec.default_value)) ++special_defaults;
  }
  double fraction =
      static_cast<double>(special_defaults) / space.hybrid_knob_indices().size();
  EXPECT_GT(fraction, 0.3);
  EXPECT_LT(fraction, 0.75);
}

TEST(CatalogTest, V136AddsJitAndParallelKnobs) {
  ConfigSpace space = PostgresV136Catalog();
  for (const char* name :
       {"jit", "jit_above_cost", "max_parallel_workers",
        "enable_parallel_hash", "hash_mem_multiplier", "wal_recycle",
        "maintenance_io_concurrency",
        "autovacuum_vacuum_insert_threshold"}) {
    EXPECT_GE(space.IndexOf(name), 0) << name;
  }
  // Removed in PostgreSQL 11.
  EXPECT_EQ(space.IndexOf("replacement_sort_tuples"), -1);
}

TEST(CatalogTest, V136ParallelOnByDefault) {
  ConfigSpace space = PostgresV136Catalog();
  const KnobSpec& k =
      space.knob(space.IndexOf("max_parallel_workers_per_gather"));
  EXPECT_EQ(k.default_value, 2);
  // v9.6 defaults to parallel query disabled.
  ConfigSpace v96 = PostgresV96Catalog();
  EXPECT_EQ(v96.knob(v96.IndexOf("max_parallel_workers_per_gather"))
                .default_value,
            0);
}

TEST(CatalogTest, NamesUniqueAcrossBothCatalogs) {
  for (auto version :
       {dbsim::PostgresVersion::kV96, dbsim::PostgresVersion::kV136}) {
    ConfigSpace space = dbsim::CatalogFor(version);
    std::set<std::string> names;
    for (int i = 0; i < space.num_knobs(); ++i) {
      names.insert(space.knob(i).name);
    }
    EXPECT_EQ(static_cast<int>(names.size()), space.num_knobs());
  }
}

TEST(CatalogTest, DefaultConfigurationsValidate) {
  for (auto version :
       {dbsim::PostgresVersion::kV96, dbsim::PostgresVersion::kV136}) {
    ConfigSpace space = dbsim::CatalogFor(version);
    EXPECT_TRUE(
        space.ValidateConfiguration(space.DefaultConfiguration()).ok());
  }
}

TEST(CatalogTest, MixOfKnobTypes) {
  ConfigSpace space = PostgresV96Catalog();
  int integers = 0, reals = 0, categoricals = 0;
  for (int i = 0; i < space.num_knobs(); ++i) {
    switch (space.knob(i).type) {
      case KnobType::kInteger: ++integers; break;
      case KnobType::kReal: ++reals; break;
      case KnobType::kCategorical: ++categoricals; break;
    }
  }
  EXPECT_GT(integers, 30);
  EXPECT_GT(reals, 5);
  EXPECT_GT(categoricals, 15);  // the enable_* family and friends
}

}  // namespace
}  // namespace llamatune
