#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/projection/hesbo.h"
#include "src/projection/rembo.h"
#include "src/sampling/uniform.h"

namespace llamatune {
namespace {

TEST(HesboTest, Dimensions) {
  HesboProjection proj(90, 16, 1);
  EXPECT_EQ(proj.high_dim(), 90);
  EXPECT_EQ(proj.low_dim(), 16);
  EXPECT_EQ(proj.name(), "HeSBO");
}

TEST(HesboTest, LowDimSpaceIsUnitBox) {
  HesboProjection proj(90, 16, 1);
  SearchSpace s = proj.LowDimSpace();
  ASSERT_EQ(s.num_dims(), 16);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(s.dim(i).lo, -1.0);
    EXPECT_EQ(s.dim(i).hi, 1.0);
    EXPECT_EQ(s.dim(i).type, SearchDim::Type::kContinuous);
  }
}

TEST(HesboTest, EachOutputIsSignedCopyOfOneInput) {
  HesboProjection proj(30, 8, 5);
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> p(8);
    for (double& v : p) v = rng.Uniform(-1.0, 1.0);
    auto out = proj.Project(p);
    ASSERT_EQ(out.size(), 30u);
    for (int i = 0; i < 30; ++i) {
      EXPECT_DOUBLE_EQ(out[i], proj.sign(i) * p[proj.bucket(i)]);
      EXPECT_GE(out[i], -1.0);  // never leaves the box: no clipping
      EXPECT_LE(out[i], 1.0);
    }
  }
}

TEST(HesboTest, BucketsAndSignsValid) {
  HesboProjection proj(200, 16, 9);
  for (int i = 0; i < 200; ++i) {
    EXPECT_GE(proj.bucket(i), 0);
    EXPECT_LT(proj.bucket(i), 16);
    EXPECT_TRUE(proj.sign(i) == 1 || proj.sign(i) == -1);
  }
}

TEST(HesboTest, DeterministicPerSeedDistinctAcrossSeeds) {
  HesboProjection a(50, 8, 42), b(50, 8, 42), c(50, 8, 43);
  int same_ac = 0;
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.bucket(i), b.bucket(i));
    EXPECT_EQ(a.sign(i), b.sign(i));
    if (a.bucket(i) == c.bucket(i) && a.sign(i) == c.sign(i)) ++same_ac;
  }
  EXPECT_LT(same_ac, 25);  // different seed => different sketch
}

TEST(RemboTest, Dimensions) {
  RemboProjection proj(90, 16, 1);
  EXPECT_EQ(proj.high_dim(), 90);
  EXPECT_EQ(proj.low_dim(), 16);
  EXPECT_EQ(proj.name(), "REMBO");
}

TEST(RemboTest, LowDimSpaceIsSqrtDBox) {
  RemboProjection proj(90, 16, 1);
  SearchSpace s = proj.LowDimSpace();
  double bound = std::sqrt(16.0);
  for (int i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(s.dim(i).lo, -bound);
    EXPECT_DOUBLE_EQ(s.dim(i).hi, bound);
  }
}

TEST(RemboTest, ProjectionIsClippedToBox) {
  RemboProjection proj(60, 8, 3);
  Rng rng(2);
  SearchSpace low = proj.LowDimSpace();
  for (int trial = 0; trial < 100; ++trial) {
    auto p = UniformSample(low, &rng);
    auto out = proj.Project(p);
    for (double v : out) {
      EXPECT_GE(v, -1.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(RemboTest, ClippingPathologyAtBoxCorners) {
  // The clipping weakness the paper observes (§3.2): away from the
  // origin most coordinates saturate onto the facets of [-1,1]^D.
  RemboProjection proj(90, 16, 7);
  std::vector<double> corner(16, std::sqrt(16.0));
  EXPECT_GT(proj.ClippedFraction(corner), 0.8);
  std::vector<double> origin(16, 0.0);
  EXPECT_EQ(proj.ClippedFraction(origin), 0.0);
}

TEST(RemboTest, LinearityBeforeClipping) {
  RemboProjection proj(40, 4, 11);
  std::vector<double> p(4, 0.01);  // small: no clipping anywhere
  std::vector<double> p2(4, 0.02);
  auto out1 = proj.Project(p);
  auto out2 = proj.Project(p2);
  for (int i = 0; i < 40; ++i) {
    EXPECT_NEAR(out2[i], 2.0 * out1[i], 1e-12);
  }
}

// Property: both projections map any valid low-dim point into the
// [-1,1]^D box, across target dims.
class ProjectionBoxProperty : public ::testing::TestWithParam<int> {};

TEST_P(ProjectionBoxProperty, AlwaysInsideBox) {
  int d = GetParam();
  HesboProjection hesbo(90, d, 13);
  RemboProjection rembo(90, d, 13);
  Rng rng(d);
  for (const Projection* proj :
       std::vector<const Projection*>{&hesbo, &rembo}) {
    SearchSpace low = proj->LowDimSpace();
    for (int trial = 0; trial < 50; ++trial) {
      auto p = UniformSample(low, &rng);
      for (double v : proj->Project(p)) {
        EXPECT_GE(v, -1.0);
        EXPECT_LE(v, 1.0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, ProjectionBoxProperty,
                         ::testing::Values(2, 4, 8, 16, 24, 32));

}  // namespace
}  // namespace llamatune
