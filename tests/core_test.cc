#include <gtest/gtest.h>

#include "src/core/early_stopping.h"
#include "src/core/knowledge_base.h"

namespace llamatune {
namespace {

IterationRecord Record(int iter, double objective, double measured) {
  IterationRecord r;
  r.iteration = iter;
  r.objective = objective;
  r.measured = measured;
  return r;
}

TEST(KnowledgeBaseTest, EmptyState) {
  KnowledgeBase kb;
  EXPECT_TRUE(kb.empty());
  EXPECT_EQ(kb.BestIndex(), -1);
  EXPECT_TRUE(kb.BestSoFarObjective().empty());
}

TEST(KnowledgeBaseTest, BestIndexTracksMaxObjective) {
  KnowledgeBase kb;
  kb.Add(Record(1, 5.0, 5.0));
  kb.Add(Record(2, 9.0, 9.0));
  kb.Add(Record(3, 7.0, 7.0));
  EXPECT_EQ(kb.BestIndex(), 1);
  EXPECT_EQ(kb.size(), 3);
}

TEST(KnowledgeBaseTest, BestSoFarCurves) {
  KnowledgeBase kb;
  kb.Add(Record(1, 3.0, 3.0));
  kb.Add(Record(2, 1.0, 1.0));
  kb.Add(Record(3, 4.0, 4.0));
  EXPECT_EQ(kb.BestSoFarObjective(), (std::vector<double>{3.0, 3.0, 4.0}));
  EXPECT_EQ(kb.BestSoFarMeasured(), (std::vector<double>{3.0, 3.0, 4.0}));
}

TEST(KnowledgeBaseTest, MeasuredFollowsObjectiveForMinimization) {
  // Latency tuning: objective = -latency, measured = latency.
  KnowledgeBase kb;
  kb.Add(Record(1, -10.0, 10.0));
  kb.Add(Record(2, -20.0, 20.0));  // worse
  kb.Add(Record(3, -5.0, 5.0));    // better
  EXPECT_EQ(kb.BestSoFarMeasured(), (std::vector<double>{10.0, 10.0, 5.0}));
}

TEST(EarlyStoppingTest, StopsAfterPatienceWithoutImprovement) {
  EarlyStoppingPolicy policy(1.0, 3);
  EXPECT_FALSE(policy.Update(100.0));  // reference
  EXPECT_FALSE(policy.Update(100.0));  // 1 stale
  EXPECT_FALSE(policy.Update(100.5));  // 2 stale (0.5% < 1%)
  EXPECT_TRUE(policy.Update(100.6));   // 3 stale -> stop
}

TEST(EarlyStoppingTest, ImprovementResetsPatience) {
  EarlyStoppingPolicy policy(1.0, 2);
  EXPECT_FALSE(policy.Update(100.0));
  EXPECT_FALSE(policy.Update(100.0));
  EXPECT_FALSE(policy.Update(102.0));  // +2% resets
  EXPECT_FALSE(policy.Update(102.0));
  EXPECT_TRUE(policy.Update(102.0));
}

TEST(EarlyStoppingTest, AggregateImprovementCounts) {
  // Small per-step gains that add up past the threshold reset the
  // window (the policy compares against the last reference, not the
  // previous step).
  EarlyStoppingPolicy policy(1.0, 5);
  policy.Update(100.0);
  EXPECT_FALSE(policy.Update(100.4));
  EXPECT_FALSE(policy.Update(100.8));
  EXPECT_FALSE(policy.Update(101.2));  // aggregate +1.2% -> reset
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(policy.Update(101.2));
  EXPECT_TRUE(policy.Update(101.2));
}

TEST(EarlyStoppingTest, ResetStartsOver) {
  EarlyStoppingPolicy policy(1.0, 1);
  policy.Update(50.0);
  EXPECT_TRUE(policy.Update(50.0));
  policy.Reset();
  EXPECT_FALSE(policy.Update(50.0));  // new reference after reset
}

TEST(EarlyStoppingTest, AccessorsEcho) {
  EarlyStoppingPolicy policy(0.5, 10);
  EXPECT_EQ(policy.min_improvement_pct(), 0.5);
  EXPECT_EQ(policy.patience(), 10);
}

}  // namespace
}  // namespace llamatune
