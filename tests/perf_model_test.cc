#include <gtest/gtest.h>

#include "src/dbsim/perf_model.h"

namespace llamatune {
namespace dbsim {
namespace {

class PerfModelFixture : public ::testing::Test {
 protected:
  PerfModelFixture()
      : space_(PostgresV96Catalog()),
        model_(&space_, YcsbA(), PostgresVersion::kV96) {}

  Configuration WithKnob(const std::string& name, double value) const {
    Configuration c = space_.DefaultConfiguration();
    c[space_.IndexOf(name)] = value;
    return c;
  }

  ConfigSpace space_;
  PerfModel model_;
};

TEST_F(PerfModelFixture, DefaultHitsCalibrationAnchor) {
  ModelOutput out = model_.Run(space_.DefaultConfiguration());
  EXPECT_FALSE(out.crashed);
  EXPECT_NEAR(out.throughput, YcsbA().default_throughput, 1.0);
}

TEST_F(PerfModelFixture, Deterministic) {
  Configuration c = WithKnob("shared_buffers", 262144);
  EXPECT_DOUBLE_EQ(model_.Run(c).throughput, model_.Run(c).throughput);
}

TEST_F(PerfModelFixture, OomCrash) {
  // 16 GB of shared buffers on a 16 GB box cannot start.
  ModelOutput out = model_.Run(WithKnob("shared_buffers", 2097152));
  EXPECT_TRUE(out.crashed);
  EXPECT_NE(out.crash_reason.find("memory"), std::string::npos);
}

TEST_F(PerfModelFixture, ConnectionCrash) {
  ModelOutput out = model_.Run(WithKnob("max_connections", 10));
  EXPECT_TRUE(out.crashed);
}

TEST_F(PerfModelFixture, LockTableCrashOnManyTables) {
  ConfigSpace space = PostgresV96Catalog();
  PerfModel tpcc(&space, TpcC(), PostgresVersion::kV96);
  Configuration c = space.DefaultConfiguration();
  c[space.IndexOf("max_locks_per_transaction")] = 10;  // 9 tables + 4 > 10
  EXPECT_TRUE(tpcc.Run(c).crashed);
  // YCSB (single table) tolerates the same setting.
  EXPECT_FALSE(model_.Run(c).crashed);
}

TEST_F(PerfModelFixture, SharedBuffersImproveThroughput) {
  double small = model_.Run(WithKnob("shared_buffers", 16384)).throughput;
  double large = model_.Run(WithKnob("shared_buffers", 786432)).throughput;
  EXPECT_GT(large, small);
}

TEST_F(PerfModelFixture, AsyncCommitHelps) {
  double sync_on = model_.Run(space_.DefaultConfiguration()).throughput;
  double sync_off = model_.Run(WithKnob("synchronous_commit", 0)).throughput;
  EXPECT_GT(sync_off, sync_on);
}

TEST_F(PerfModelFixture, AutovacuumOffCausesBloat) {
  double on = model_.Run(space_.DefaultConfiguration()).throughput;
  double off = model_.Run(WithKnob("autovacuum", 0)).throughput;
  EXPECT_LT(off, on * 0.95);
}

TEST_F(PerfModelFixture, AggressiveVacuumScaleFactorHelps) {
  double lazy =
      model_.Run(WithKnob("autovacuum_vacuum_scale_factor", 0.9)).throughput;
  double eager =
      model_.Run(WithKnob("autovacuum_vacuum_scale_factor", 0.01)).throughput;
  EXPECT_GT(eager, lazy);
}

TEST_F(PerfModelFixture, DisablingIndexScansIsBad) {
  double on = model_.Run(space_.DefaultConfiguration()).throughput;
  double off = model_.Run(WithKnob("enable_indexscan", 0)).throughput;
  EXPECT_LT(off, on * 0.95);
}

TEST_F(PerfModelFixture, P95AboveAverageLatency) {
  ModelOutput out = model_.Run(space_.DefaultConfiguration());
  EXPECT_GT(out.p95_latency_ms, out.avg_latency_ms);
}

TEST_F(PerfModelFixture, FixedRateOverloadExplodesTail) {
  Configuration def = space_.DefaultConfiguration();
  ModelOutput closed = model_.Run(def);
  ModelOutput light = model_.RunAtFixedRate(def, closed.throughput * 0.5);
  ModelOutput heavy = model_.RunAtFixedRate(def, closed.throughput * 1.2);
  EXPECT_LT(light.p95_latency_ms, heavy.p95_latency_ms);
  EXPECT_GT(heavy.p95_latency_ms, closed.p95_latency_ms * 5.0);
}

TEST_F(PerfModelFixture, FixedRateThroughputCappedByCapacity) {
  Configuration def = space_.DefaultConfiguration();
  ModelOutput closed = model_.Run(def);
  ModelOutput over = model_.RunAtFixedRate(def, closed.throughput * 3.0);
  EXPECT_LE(over.throughput, closed.throughput * 1.001);
}

// Fig. 4 shape: on YCSB-B the special value 0 beats every regular
// value, small regular values are worst, large ones recover.
TEST(PerfModelYcsbB, BackendFlushAfterShape) {
  ConfigSpace space = PostgresV96Catalog();
  PerfModel model(&space, YcsbB(), PostgresVersion::kV96);
  int idx = space.IndexOf("backend_flush_after");
  auto tput = [&](double bfa) {
    Configuration c = space.DefaultConfiguration();
    c[idx] = bfa;
    return model.Run(c).throughput;
  };
  double at0 = tput(0), at1 = tput(1), at32 = tput(32), at256 = tput(256);
  EXPECT_GT(at0, at256);
  EXPECT_GT(at256, at32);
  EXPECT_GT(at32, at1);
  // The discontinuity: the special value roughly doubles the worst.
  EXPECT_GT(at0, at1 * 1.5);
}

TEST(PerfModelVersions, V136ShiftsBehaviour) {
  ConfigSpace v96 = PostgresV96Catalog();
  ConfigSpace v136 = PostgresV136Catalog();
  PerfModel m96(&v96, YcsbB(), PostgresVersion::kV96);
  PerfModel m136(&v136, YcsbB(), PostgresVersion::kV136);
  // The writeback penalty narrows on the newer version: the relative
  // gap between worst regular bfa and the special value shrinks.
  auto gap = [](PerfModel& m, ConfigSpace& s) {
    Configuration c = s.DefaultConfiguration();
    int idx = s.IndexOf("backend_flush_after");
    c[idx] = 0;
    double best = m.Run(c).throughput;
    c[idx] = 8;
    double worst = m.Run(c).throughput;
    return best / worst;
  };
  EXPECT_GT(gap(m96, v96), gap(m136, v136));
}

TEST(PerfModelMetrics, CountersAreConsistent) {
  ConfigSpace space = PostgresV96Catalog();
  PerfModel model(&space, TpcC(), PostgresVersion::kV96);
  ModelOutput out = model.Run(space.DefaultConfiguration());
  const RunCounters& c = out.counters;
  EXPECT_NEAR(c.throughput + c.rollback_rate, out.throughput, 1e-6);
  EXPECT_GT(c.blks_hit_per_s + c.blks_read_per_s, 0.0);
  EXPECT_GT(c.wal_bytes_per_s, 0.0);
  EXPECT_GT(c.wal_fsyncs_per_s, 0.0);
  EXPECT_GE(c.cpu_utilization, 0.0);
  EXPECT_LE(c.cpu_utilization, 1.0);
  EXPECT_EQ(CountersToMetrics(c).size(), static_cast<size_t>(kNumMetrics));
  EXPECT_EQ(MetricNames().size(), static_cast<size_t>(kNumMetrics));
}

// Property: the default configuration of every workload runs without
// crashing and hits its calibration anchor on both versions.
class WorkloadAnchors : public ::testing::TestWithParam<int> {};

TEST_P(WorkloadAnchors, DefaultAnchorsHold) {
  WorkloadSpec w = AllWorkloads()[GetParam()];
  ConfigSpace space = PostgresV96Catalog();
  PerfModel model(&space, w, PostgresVersion::kV96);
  ModelOutput out = model.Run(space.DefaultConfiguration());
  ASSERT_FALSE(out.crashed) << w.name;
  EXPECT_NEAR(out.throughput, w.default_throughput,
              w.default_throughput * 0.01)
      << w.name;
  EXPECT_GT(out.avg_latency_ms, 0.0);
  // v13.6 also runs the default cleanly (different anchor is fine).
  ConfigSpace space136 = PostgresV136Catalog();
  PerfModel model136(&space136, w, PostgresVersion::kV136);
  EXPECT_FALSE(model136.Run(space136.DefaultConfiguration()).crashed)
      << w.name;
}

INSTANTIATE_TEST_SUITE_P(AllSix, WorkloadAnchors, ::testing::Range(0, 6));

}  // namespace
}  // namespace dbsim
}  // namespace llamatune
