// Chaos test: drives full tuning sessions over the wire while the
// deterministic fault-injection registry (src/common/fault_injection.h)
// tears connections, shortens reads, drops replies and crashes
// evaluations — then pins the surviving session history bit-for-bit
// against the fault-free run. A resilient client (retry + dedup +
// adoption) must make every injected transport fault invisible to the
// recorded trajectory.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/common/fault_injection.h"
#include "src/knobs/config_space.h"
#include "src/net/tuning_client.h"
#include "src/net/tuning_server.h"
#include "src/service/tuning_service.h"

namespace llamatune {
namespace net {
namespace {

double ExternalMeasure(const Configuration& config) {
  double x = config[0] / 100.0;
  double y = config[1];
  return 1000.0 - 900.0 * ((x - 0.31) * (x - 0.31) + (y - 0.77) * (y - 0.77));
}

std::vector<KnobSpec> TestKnobs() {
  return {IntegerKnob("cache_mb", 0, 100, 50),
          RealKnob("target_ratio", 0.0, 1.0, 0.5)};
}

WireSessionSpec ChaosWireSpec() {
  WireSessionSpec spec;
  spec.space_knobs = TestKnobs();
  spec.maximize = true;
  spec.optimizer_key = "random";
  spec.adapter_key = "identity";
  spec.seed = 9001;
  spec.num_iterations = 10;
  return spec;
}

/// Zeroes the wall-clock token of the checkpoint "state" line so
/// equality means "identical trial history" (same normalizer as
/// server_test.cc).
std::string Trajectory(const std::string& checkpoint) {
  std::istringstream in(checkpoint);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("state ", 0) == 0) {
      line = line.substr(0, line.find_last_of(' ')) + " <wall-clock>";
    }
    out << line << '\n';
  }
  return out.str();
}

TuningClientOptions ResilientOptions() {
  TuningClientOptions opts;
  opts.call_timeout_ms = 5000;
  opts.retry.max_attempts = 10;
  opts.retry.initial_backoff_ms = 1;
  opts.retry.max_backoff_ms = 50;
  opts.retry.retry_budget_ms = 20000;
  opts.retry.jitter_seed = 7;
  return opts;
}

/// Runs one full external ask/tell session against an in-process
/// server with `fault_spec` armed (empty = fault-free) and a
/// retry-enabled client, and returns the normalized final history.
std::string RunChaosSession(const std::string& fault_spec) {
  FaultInjection::Reset();
  TuningServer server;
  EXPECT_TRUE(server.Start().ok());
  TuningClient client(ResilientOptions());
  EXPECT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  if (!fault_spec.empty()) {
    EXPECT_TRUE(FaultInjection::Configure(fault_spec));
  }
  EXPECT_TRUE(client.CreateSession("chaos", ChaosWireSpec()).ok());
  for (;;) {
    Result<Trial> trial = client.Ask("chaos");
    if (!trial.ok()) break;
    TrialResult result;
    result.trial_id = trial->id;
    result.value = ExternalMeasure(trial->config);
    EXPECT_TRUE(client.Tell("chaos", result).ok());
  }
  // The history is fully formed; disarm injection so the final read
  // cannot be the one call whose retries run dry.
  FaultInjection::Reset();
  Result<std::string> checkpoint = client.Checkpoint("chaos");
  EXPECT_TRUE(checkpoint.ok());
  std::string trajectory = checkpoint.ok() ? Trajectory(*checkpoint) : "";
  server.Stop();
  return trajectory;
}

class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjection::Reset(); }
};

TEST_F(ChaosTest, TransportChaosPreservesHistoryBitForBit) {
  const std::string baseline = RunChaosSession("");
  ASSERT_FALSE(baseline.empty());

  // Every transport fault site at once, probability-triggered: client
  // writes reset, client reads shortened, server reads shortened,
  // server replies dropped after commit. Retry + Tell dedup + Ask
  // adoption must reassemble the exact same history.
  const std::string chaotic = RunChaosSession(
      "seed=42;client.send.reset=p0.15;client.recv.short=p0.2;"
      "server.recv.short=p0.2;server.send.reset=p0.1");
  EXPECT_EQ(chaotic, baseline);
}

TEST_F(ChaosTest, SecondSeedStillConverges) {
  const std::string baseline = RunChaosSession("");
  const std::string chaotic = RunChaosSession(
      "seed=1337;client.send.reset=p0.2;server.send.reset=p0.15");
  EXPECT_EQ(chaotic, baseline);
}

TEST_F(ChaosTest, DroppedTellReplyIsDeduplicated) {
  const std::string baseline = RunChaosSession("");

  // Reply hit indices on the single connection: CreateSession = 0,
  // first Ask = 1, first Tell = 2. Dropping exactly the Tell reply
  // commits the observation but loses the acknowledgment; the retried
  // Tell earns AlreadyExists and the client dedups it back to OK.
  const std::string chaotic = RunChaosSession("server.send.reset=@2");
  EXPECT_EQ(chaotic, baseline);
}

TEST_F(ChaosTest, DroppedAskReplyIsAdoptedNotRedrawn) {
  const std::string baseline = RunChaosSession("");

  // Hit 1 is the first Ask's reply: the trial is drawn and pending on
  // the server, but the client never sees it. The resilient Ask must
  // adopt the orphaned pending trial via GetPending instead of asking
  // again — a fresh draw would double-advance the optimizer stream
  // and the trajectories would diverge.
  const std::string chaotic = RunChaosSession("server.send.reset=@1");
  EXPECT_EQ(chaotic, baseline);
}

/// Drives a workload-backed session via wire Step calls to completion
/// and returns its normalized history.
std::string RunWorkloadSession(const std::string& fault_spec) {
  FaultInjection::Reset();
  TuningServer server;
  EXPECT_TRUE(server.Start().ok());
  TuningClient client;
  EXPECT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  WireSessionSpec spec;
  spec.workload = "YCSB-A";
  spec.optimizer_key = "random";
  spec.adapter_key = "llamatune";
  spec.seed = 7;
  spec.num_iterations = 6;
  EXPECT_TRUE(client.CreateSession("sim", spec).ok());
  if (!fault_spec.empty()) {
    EXPECT_TRUE(FaultInjection::Configure(fault_spec));
  }
  for (;;) {
    bool progressed = false;
    Status status = client.Step("sim", &progressed);
    if (!status.ok() || !progressed) break;
  }
  FaultInjection::Reset();
  Result<std::string> checkpoint = client.Checkpoint("sim");
  EXPECT_TRUE(checkpoint.ok());
  std::string trajectory = checkpoint.ok() ? Trajectory(*checkpoint) : "";
  server.Stop();
  return trajectory;
}

TEST_F(ChaosTest, EvaluationFaultScheduleIsDeterministic) {
  // Crash evaluation #1 and time out evaluation #3: the injected
  // failures land in the recorded history (failed outcomes, penalty
  // values), so the faulted run must differ from the clean run — but
  // identically-scheduled runs must be bit-for-bit equal.
  const std::string spec = "eval.crash=@1;eval.timeout=@3";
  const std::string first = RunWorkloadSession(spec);
  const std::string second = RunWorkloadSession(spec);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);

  const std::string clean = RunWorkloadSession("");
  EXPECT_NE(first, clean);
}

TEST_F(ChaosTest, DisabledInjectionIsInert) {
  FaultInjection::Reset();
  ASSERT_FALSE(FaultInjection::enabled());
  bool fired = false;
  for (int i = 0; i < 1000000; ++i) {
    fired |= FaultInjection::ShouldFail("hot.site");
  }
  EXPECT_FALSE(fired);
  // Disabled, ShouldFail must not even count hits — zero bookkeeping
  // on the hot path.
  EXPECT_EQ(FaultInjection::HitCount("hot.site"), 0u);
}

TEST_F(ChaosTest, SpecGrammarAndCounters) {
  // Schedule trigger: exactly hits 0 and 2 fire.
  ASSERT_TRUE(FaultInjection::Configure("seed=5;site.a=@0,2"));
  EXPECT_TRUE(FaultInjection::ShouldFail("site.a"));
  EXPECT_FALSE(FaultInjection::ShouldFail("site.a"));
  EXPECT_TRUE(FaultInjection::ShouldFail("site.a"));
  EXPECT_FALSE(FaultInjection::ShouldFail("site.a"));
  EXPECT_EQ(FaultInjection::HitCount("site.a"), 4u);
  EXPECT_EQ(FaultInjection::FireCount("site.a"), 2u);
  // Unconfigured sites never fire and stay untracked (no bookkeeping
  // grows for sites the spec didn't name).
  EXPECT_FALSE(FaultInjection::ShouldFail("site.b"));
  EXPECT_EQ(FaultInjection::HitCount("site.b"), 0u);

  // Probability triggers are deterministic in (seed, site, hit): the
  // same spec replayed yields the same fault sequence.
  auto sequence = [] {
    FaultInjection::Reset();
    EXPECT_TRUE(FaultInjection::Configure("seed=11;site.p=p0.5"));
    std::string bits;
    for (int i = 0; i < 64; ++i) {
      bits += FaultInjection::ShouldFail("site.p") ? '1' : '0';
    }
    return bits;
  };
  const std::string first = sequence();
  const std::string second = sequence();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find('1'), std::string::npos);
  EXPECT_NE(first.find('0'), std::string::npos);
}

TEST_F(ChaosTest, MalformedSpecsAreRejected) {
  EXPECT_FALSE(FaultInjection::Configure("site.a=p1.5"));   // p out of range
  EXPECT_FALSE(FaultInjection::Configure("site.a=banana")); // no trigger
  EXPECT_FALSE(FaultInjection::Configure("=p0.5"));         // empty name
  EXPECT_FALSE(FaultInjection::Configure("site.a=@x"));     // bad index
  // A failed Configure leaves injection disabled.
  EXPECT_FALSE(FaultInjection::enabled());
}

}  // namespace
}  // namespace net
}  // namespace llamatune
