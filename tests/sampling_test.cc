#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/sampling/latin_hypercube.h"
#include "src/sampling/uniform.h"

namespace llamatune {
namespace {

SearchSpace ContinuousSpace(int d) {
  std::vector<SearchDim> dims(d, SearchDim::Continuous(0.0, 1.0));
  return SearchSpace(std::move(dims));
}

TEST(LhsTest, RightNumberOfPointsAndArity) {
  SearchSpace s = ContinuousSpace(4);
  Rng rng(1);
  auto points = LatinHypercubeSample(s, 10, &rng);
  ASSERT_EQ(points.size(), 10u);
  for (const auto& p : points) EXPECT_EQ(p.size(), 4u);
}

TEST(LhsTest, StratificationOneSamplePerStratum) {
  SearchSpace s = ContinuousSpace(3);
  Rng rng(2);
  const int n = 20;
  auto points = LatinHypercubeSample(s, n, &rng);
  for (int j = 0; j < 3; ++j) {
    std::set<int> strata;
    for (const auto& p : points) {
      int stratum = std::min(n - 1, static_cast<int>(p[j] * n));
      strata.insert(stratum);
    }
    // Exactly one sample per stratum => all n strata present.
    EXPECT_EQ(strata.size(), static_cast<size_t>(n));
  }
}

TEST(LhsTest, CategoricalRoundRobinCoverage) {
  SearchSpace s({SearchDim::Categorical(4)});
  Rng rng(3);
  auto points = LatinHypercubeSample(s, 12, &rng);
  std::map<int, int> counts;
  for (const auto& p : points) counts[static_cast<int>(p[0])]++;
  ASSERT_EQ(counts.size(), 4u);  // every category appears
  for (auto& [cat, count] : counts) EXPECT_EQ(count, 3);  // 12/4 each
}

TEST(LhsTest, RespectsBucketGrid) {
  SearchSpace s({SearchDim::Continuous(0.0, 1.0, 11)});
  Rng rng(4);
  auto points = LatinHypercubeSample(s, 30, &rng);
  for (const auto& p : points) {
    EXPECT_TRUE(s.Contains(p));
  }
}

TEST(LhsTest, Deterministic) {
  SearchSpace s = ContinuousSpace(5);
  Rng a(7), b(7);
  EXPECT_EQ(LatinHypercubeSample(s, 10, &a), LatinHypercubeSample(s, 10, &b));
}

TEST(LhsTest, NonOverlappingBounds) {
  SearchSpace s({SearchDim::Continuous(-3.0, 5.0)});
  Rng rng(8);
  for (const auto& p : LatinHypercubeSample(s, 50, &rng)) {
    EXPECT_GE(p[0], -3.0);
    EXPECT_LE(p[0], 5.0);
  }
}

TEST(UniformTest, InBoundsAndContained) {
  SearchSpace s({SearchDim::Continuous(0.0, 2.0, 9),
                 SearchDim::Categorical(5),
                 SearchDim::Continuous(-1.0, 1.0)});
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(s.Contains(UniformSample(s, &rng)));
  }
}

TEST(UniformTest, BatchSize) {
  SearchSpace s = ContinuousSpace(2);
  Rng rng(10);
  EXPECT_EQ(UniformSamples(s, 33, &rng).size(), 33u);
}

TEST(UniformTest, CategoricalUniformity) {
  SearchSpace s({SearchDim::Categorical(3)});
  Rng rng(11);
  std::map<int, int> counts;
  for (int i = 0; i < 3000; ++i) {
    counts[static_cast<int>(UniformSample(s, &rng)[0])]++;
  }
  for (auto& [cat, count] : counts) EXPECT_NEAR(count, 1000, 120);
}

// Property: LHS marginal means approach 0.5 (balanced design) faster
// than uniform sampling would guarantee.
class LhsBalance : public ::testing::TestWithParam<int> {};

TEST_P(LhsBalance, MarginalMeansBalanced) {
  SearchSpace s = ContinuousSpace(3);
  Rng rng(GetParam());
  int n = 40;
  auto points = LatinHypercubeSample(s, n, &rng);
  for (int j = 0; j < 3; ++j) {
    double sum = 0.0;
    for (const auto& p : points) sum += p[j];
    EXPECT_NEAR(sum / n, 0.5, 0.02);  // stratification bounds the error
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LhsBalance, ::testing::Range(1, 9));

}  // namespace
}  // namespace llamatune
