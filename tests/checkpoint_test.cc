#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <cstdio>

#include "src/core/adapter_registry.h"
#include "src/core/session_log.h"
#include "src/core/tuning_session.h"
#include "src/dbsim/simulated_postgres.h"
#include "src/optimizer/gp_bo.h"
#include "src/dbsim/workloads.h"
#include "src/optimizer/optimizer_registry.h"

namespace llamatune {
namespace {

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

::testing::AssertionResult ResultsBitIdentical(const SessionResult& a,
                                               const SessionResult& b) {
  if (a.iterations_run != b.iterations_run) {
    return ::testing::AssertionFailure()
           << "iterations_run " << a.iterations_run << " vs "
           << b.iterations_run;
  }
  if (!SameBits(a.default_performance, b.default_performance) ||
      !SameBits(a.best_performance, b.best_performance) ||
      !(a.best_config == b.best_config) || a.kb.size() != b.kb.size()) {
    return ::testing::AssertionFailure() << "summary fields differ";
  }
  for (int i = 0; i < a.kb.size(); ++i) {
    const IterationRecord& ra = a.kb.record(i);
    const IterationRecord& rb = b.kb.record(i);
    if (ra.crashed != rb.crashed || !SameBits(ra.measured, rb.measured) ||
        !SameBits(ra.objective, rb.objective) || !(ra.config == rb.config) ||
        ra.point.size() != rb.point.size()) {
      return ::testing::AssertionFailure() << "record " << i << " differs";
    }
    for (size_t j = 0; j < ra.point.size(); ++j) {
      if (!SameBits(ra.point[j], rb.point[j])) {
        return ::testing::AssertionFailure()
               << "record " << i << " point[" << j << "] differs";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

struct Stack {
  std::unique_ptr<ObjectiveFunction> objective;
  std::unique_ptr<SpaceAdapter> adapter;
  std::unique_ptr<Optimizer> optimizer;
  std::unique_ptr<TuningSession> session;
};

/// A sparse-switchover GP-BO arm with a threshold small enough for a
/// short session to cross: iterations past ~14 observations score
/// through the inducing-point model. Registered on first use (the
/// registry is open; same pattern as bm_batch's "smac-seq" arm).
void RegisterSparseTestKey() {
  const char* kKey = "gpbo-sparse-ckpt";
  if (OptimizerRegistry::Global().Contains(kKey)) return;
  OptimizerRegistry::Global().Register(
      kKey,
      [](const SearchSpace& space,
         uint64_t seed) -> Result<std::unique_ptr<Optimizer>> {
        GpBoOptions options;
        options.gp.sparse_threshold = 14;
        options.gp.num_inducing = 8;
        return std::unique_ptr<Optimizer>(
            new GpBoOptimizer(space, options, seed));
      });
}

Stack MakeStack(const std::string& optimizer_key,
                const std::string& adapter_key, uint64_t seed,
                SessionOptions options) {
  RegisterSparseTestKey();
  Stack stack;
  dbsim::SimulatedPostgresOptions db_options;
  db_options.noise_seed = seed;
  stack.objective = std::make_unique<dbsim::SimulatedPostgres>(
      dbsim::YcsbA(), db_options);
  stack.adapter = std::move(AdapterRegistry::Global().Create(
                                adapter_key,
                                &stack.objective->config_space(), seed))
                      .ValueOrDie();
  stack.optimizer = std::move(OptimizerRegistry::Global().Create(
                                  optimizer_key,
                                  stack.adapter->search_space(), seed))
                        .ValueOrDie();
  stack.session = std::make_unique<TuningSession>(
      stack.objective.get(), stack.adapter.get(), stack.optimizer.get(),
      options);
  return stack;
}

struct CheckpointCase {
  const char* optimizer_key;
  const char* adapter_key;
  int batch_size;
  int total_iterations;
  int checkpoint_after_steps;  // Step() calls before Save (incl. baseline)
};

class CheckpointResume : public ::testing::TestWithParam<CheckpointCase> {};

// Save mid-session, restore into a fresh identically seeded stack (a
// new process would construct exactly this), and require the remaining
// trajectory to be bit-for-bit identical to an uninterrupted run.
TEST_P(CheckpointResume, ResumedTrajectoryIsBitForBit) {
  const CheckpointCase& c = GetParam();
  SessionOptions options;
  options.num_iterations = c.total_iterations;
  options.batch_size = c.batch_size;
  const uint64_t seed = 42;

  // Uninterrupted reference run.
  Stack reference = MakeStack(c.optimizer_key, c.adapter_key, seed, options);
  SessionResult uninterrupted = reference.session->Run();

  // Interrupted run: step partway, checkpoint, abandon.
  Stack first = MakeStack(c.optimizer_key, c.adapter_key, seed, options);
  for (int i = 0; i < c.checkpoint_after_steps; ++i) {
    ASSERT_TRUE(first.session->Step());
  }
  std::string checkpoint = first.session->Save();

  // "Fresh process": a brand-new stack wired with the same seeds and
  // keys, restored from the text checkpoint, run to completion.
  Stack resumed = MakeStack(c.optimizer_key, c.adapter_key, seed, options);
  Status restored = resumed.session->Restore(checkpoint);
  ASSERT_TRUE(restored.ok()) << restored.ToString();
  EXPECT_EQ(resumed.session->iterations_run(),
            first.session->iterations_run());
  SessionResult final_result = resumed.session->Run();

  EXPECT_TRUE(ResultsBitIdentical(uninterrupted, final_result));
}

INSTANTIATE_TEST_SUITE_P(
    PerOptimizer, CheckpointResume,
    ::testing::Values(
        // Random: pure RNG-stream optimizer.
        CheckpointCase{"random", "llamatune", 1, 20, 9},
        // SMAC: checkpoint past the initial design, inside the
        // model-based phase (n_init = 10), so the RF refit + EI
        // scoring path replays.
        CheckpointCase{"smac", "llamatune", 1, 16, 13},
        // GP-BO: same, exercising incremental GP refit replay.
        CheckpointCase{"gpbo", "llamatune", 1, 16, 13},
        // Batched rounds (SuggestBatch/ObserveBatch replay).
        CheckpointCase{"smac", "identity", 4, 16, 4},
        CheckpointCase{"random", "hesbo8+svb0.1", 3, 18, 3},
        // Batch-aware SuggestBatch overrides: replay must re-drive the
        // fantasy-conditioned / penalized picks bit-for-bit past the
        // init design.
        CheckpointCase{"gpbo-qei", "hesbo8", 4, 20, 4},
        CheckpointCase{"gpbo-lp", "llamatune", 4, 20, 4},
        // Sparse switchover (threshold 14, see RegisterSparseTestKey):
        // a session that crosses into the inducing-point regime must
        // replay bit-for-bit whether the checkpoint lands after the
        // crossing (exact AND sparse iterations replayed) ...
        CheckpointCase{"gpbo-sparse-ckpt", "hesbo8", 1, 26, 21},
        // ... or before it (the restored process re-crosses on its
        // own during the remaining iterations).
        CheckpointCase{"gpbo-sparse-ckpt", "hesbo8", 1, 26, 9}));

TEST(CheckpointTest, BaselineOnlyCheckpointRestores) {
  SessionOptions options;
  options.num_iterations = 8;
  Stack first = MakeStack("random", "identity", 7, options);
  ASSERT_TRUE(first.session->Step());  // baseline only
  std::string checkpoint = first.session->Save();

  Stack resumed = MakeStack("random", "identity", 7, options);
  ASSERT_TRUE(resumed.session->Restore(checkpoint).ok());
  SessionResult via_resume = resumed.session->Run();

  Stack reference = MakeStack("random", "identity", 7, options);
  SessionResult uninterrupted = reference.session->Run();
  EXPECT_TRUE(ResultsBitIdentical(uninterrupted, via_resume));
}

TEST(CheckpointTest, FreshSessionCheckpointIsEmptyButValid) {
  SessionOptions options;
  options.num_iterations = 5;
  Stack first = MakeStack("random", "identity", 3, options);
  std::string checkpoint = first.session->Save();

  Stack resumed = MakeStack("random", "identity", 3, options);
  ASSERT_TRUE(resumed.session->Restore(checkpoint).ok());
  EXPECT_EQ(resumed.session->iterations_run(), 0);
  SessionResult via_resume = resumed.session->Run();
  Stack reference = MakeStack("random", "identity", 3, options);
  EXPECT_TRUE(ResultsBitIdentical(reference.session->Run(), via_resume));
}

TEST(CheckpointTest, PendingTrialsAreRegeneratedIdenticallyAfterRestore) {
  SessionOptions options;
  options.num_iterations = 10;
  Stack first = MakeStack("random", "llamatune", 17, options);
  ASSERT_TRUE(first.session->Step());  // baseline
  ASSERT_TRUE(first.session->Step());
  // Ask a batch but do not tell it: these pending trials are excluded
  // from the checkpoint.
  Result<std::vector<Trial>> pending = first.session->AskBatch(3);
  ASSERT_TRUE(pending.ok());
  std::string checkpoint = first.session->Save();

  Stack resumed = MakeStack("random", "llamatune", 17, options);
  ASSERT_TRUE(resumed.session->Restore(checkpoint).ok());
  EXPECT_EQ(resumed.session->pending_trials(), 0);
  // Re-asking regenerates the same points (fresh ids).
  Result<std::vector<Trial>> reasked = resumed.session->AskBatch(3);
  ASSERT_TRUE(reasked.ok());
  ASSERT_EQ(reasked->size(), pending->size());
  for (size_t i = 0; i < pending->size(); ++i) {
    ASSERT_EQ((*reasked)[i].point.size(), (*pending)[i].point.size());
    for (size_t j = 0; j < (*pending)[i].point.size(); ++j) {
      EXPECT_TRUE(
          SameBits((*reasked)[i].point[j], (*pending)[i].point[j]));
    }
    EXPECT_EQ((*reasked)[i].config, (*pending)[i].config);
  }
}

TEST(CheckpointTest, RestoreRejectsWrongSeed) {
  SessionOptions options;
  options.num_iterations = 12;
  Stack first = MakeStack("random", "llamatune", 42, options);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(first.session->Step());
  std::string checkpoint = first.session->Save();

  // A stack wired with a different seed replays a different
  // trajectory; the history pin must catch it.
  Stack wrong = MakeStack("random", "llamatune", 43, options);
  Status restored = wrong.session->Restore(checkpoint);
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(restored.code(), StatusCode::kInternal);
}

TEST(CheckpointTest, RestoreRejectsMismatchedOptions) {
  SessionOptions options;
  options.num_iterations = 12;
  Stack first = MakeStack("random", "identity", 42, options);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(first.session->Step());
  std::string checkpoint = first.session->Save();

  SessionOptions other = options;
  other.num_iterations = 20;
  Stack mismatched = MakeStack("random", "identity", 42, other);
  Status restored = mismatched.session->Restore(checkpoint);
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(restored.code(), StatusCode::kFailedPrecondition);
}

TEST(CheckpointTest, RestoreRequiresFreshSession) {
  SessionOptions options;
  options.num_iterations = 12;
  Stack first = MakeStack("random", "identity", 42, options);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(first.session->Step());
  std::string checkpoint = first.session->Save();

  Stack used = MakeStack("random", "identity", 42, options);
  ASSERT_TRUE(used.session->Step());
  Status restored = used.session->Restore(checkpoint);
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(restored.code(), StatusCode::kFailedPrecondition);
}

TEST(CheckpointTest, RestoreRejectsGarbage) {
  SessionOptions options;
  Stack fresh = MakeStack("random", "identity", 1, options);
  EXPECT_FALSE(fresh.session->Restore("").ok());
  EXPECT_FALSE(fresh.session->Restore("not a checkpoint").ok());
  EXPECT_FALSE(
      fresh.session->Restore("llamatune-checkpoint v99\nmaximize 1\n").ok());
}

TEST(CheckpointTest, CheckpointFileRoundTrips) {
  SessionOptions options;
  options.num_iterations = 14;
  Stack first = MakeStack("random", "llamatune", 23, options);
  for (int i = 0; i < 7; ++i) ASSERT_TRUE(first.session->Step());

  std::string path = ::testing::TempDir() + "/llamatune_checkpoint.txt";
  ASSERT_TRUE(SaveCheckpointFile(first.session->Save(), path).ok());
  Result<std::string> loaded = LoadCheckpointFile(path);
  ASSERT_TRUE(loaded.ok());

  Stack resumed = MakeStack("random", "llamatune", 23, options);
  ASSERT_TRUE(resumed.session->Restore(*loaded).ok());
  SessionResult via_file = resumed.session->Run();

  Stack reference = MakeStack("random", "llamatune", 23, options);
  EXPECT_TRUE(ResultsBitIdentical(reference.session->Run(), via_file));
  std::remove(path.c_str());

  EXPECT_EQ(LoadCheckpointFile("/no/such/dir/ckpt").status().code(),
            StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Checkpoint v3: the racing block and rung rounds
// ---------------------------------------------------------------------------

RacingOptions CkptRacing() {
  RacingOptions racing;
  racing.cohort = 4;
  racing.rungs = 3;
  racing.min_fidelity = 0.25;
  racing.eta = 2.0;
  racing.ci_z = 1.96;
  return racing;
}

/// Removes the trailing " racing ..." block from the options line —
/// reconstructing the exact bytes a v2 (pre-fidelity) build wrote.
std::string StripRacingToken(const std::string& checkpoint) {
  size_t line = checkpoint.find("\noptions ");
  size_t racing = checkpoint.find(" racing ", line);
  size_t eol = checkpoint.find('\n', racing);
  std::string out = checkpoint;
  out.erase(racing, eol - racing);
  return out;
}

std::string SwapVersion(const std::string& checkpoint, const char* from,
                        const char* to) {
  std::string out = checkpoint;
  size_t pos = out.find(from);
  out.replace(pos, std::strlen(from), to);
  return out;
}

// Save mid-race (between rungs of an uncommitted race) and on race
// boundaries; the restored session must finish bit-for-bit identical
// to the uninterrupted run, including the simulated-work accounting
// (recomputed during replay, never serialized).
TEST(RacingCheckpointTest, MidRaceResumeIsBitForBit) {
  SessionOptions options;
  options.num_iterations = 4;
  options.racing = CkptRacing();
  const uint64_t seed = 42;
  Stack reference = MakeStack("random", "llamatune", seed, options);
  SessionResult uninterrupted = reference.session->Run();
  ASSERT_EQ(uninterrupted.iterations_run, 4);

  // One Step = one rung, so with 3 rungs per race, step 1 is the
  // baseline, steps 2-4 are race 1's rungs, steps 5-7 race 2's:
  // save points 2, 3, and 5 land mid-race, 4 and 7 on race boundaries.
  for (int steps : {1, 2, 3, 4, 5, 7}) {
    Stack first = MakeStack("random", "llamatune", seed, options);
    for (int i = 0; i < steps; ++i) ASSERT_TRUE(first.session->Step());
    std::string checkpoint = first.session->Save();

    Stack resumed = MakeStack("random", "llamatune", seed, options);
    Status restored = resumed.session->Restore(checkpoint);
    ASSERT_TRUE(restored.ok())
        << "steps=" << steps << ": " << restored.ToString();
    SessionResult final_result = resumed.session->Run();
    EXPECT_TRUE(ResultsBitIdentical(uninterrupted, final_result))
        << "steps=" << steps;
    EXPECT_TRUE(SameBits(final_result.simulated_work,
                         uninterrupted.simulated_work))
        << "steps=" << steps << ": simulated_work "
        << final_result.simulated_work << " vs "
        << uninterrupted.simulated_work;
  }
}

TEST(RacingCheckpointTest, CheckpointGrammarAndV2Compat) {
  SessionOptions options;
  options.num_iterations = 6;
  Stack first = MakeStack("random", "identity", 11, options);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(first.session->Step());
  std::string v3 = first.session->Save();
  // A non-racing v3 file differs from v2 only in the version number
  // and the "racing 0" token.
  EXPECT_NE(v3.find("llamatune-checkpoint v3\n"), std::string::npos);
  EXPECT_NE(v3.find(" racing 0\n"), std::string::npos);

  // The reconstructed v2 bytes (old build's output) still restore...
  std::string v2 =
      SwapVersion(StripRacingToken(v3), "checkpoint v3", "checkpoint v2");
  Stack resumed = MakeStack("random", "identity", 11, options);
  Status restored = resumed.session->Restore(v2);
  ASSERT_TRUE(restored.ok()) << restored.ToString();
  SessionResult via_v2 = resumed.session->Run();
  Stack reference = MakeStack("random", "identity", 11, options);
  EXPECT_TRUE(ResultsBitIdentical(reference.session->Run(), via_v2));

  // ...but never into a racing session: a pre-fidelity file cannot
  // seed a race, and the refusal must be loud, not a silent restart.
  SessionOptions racing_options = options;
  racing_options.racing = CkptRacing();
  Stack racing_stack = MakeStack("random", "identity", 11, racing_options);
  Status refused = racing_stack.session->Restore(v2);
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition)
      << refused.ToString();
}

TEST(RacingCheckpointTest, RungRoundsRequireV3) {
  SessionOptions options;
  options.num_iterations = 2;
  options.racing = CkptRacing();
  Stack first = MakeStack("random", "llamatune", 5, options);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(first.session->Step());
  std::string v3 = first.session->Save();
  ASSERT_NE(v3.find("\nround R "), std::string::npos);

  // A doctored pre-v3 file containing rung rounds is structurally
  // invalid — the parser rejects it instead of misreading the slots.
  std::string v2 =
      SwapVersion(StripRacingToken(v3), "checkpoint v3", "checkpoint v2");
  SessionOptions plain;
  plain.num_iterations = 2;
  Stack fresh = MakeStack("random", "llamatune", 5, plain);
  Status refused = fresh.session->Restore(v2);
  EXPECT_EQ(refused.code(), StatusCode::kInvalidArgument)
      << refused.ToString();
}

TEST(RacingCheckpointTest, RestoreRejectsMismatchedRacingOptions) {
  SessionOptions options;
  options.num_iterations = 3;
  options.racing = CkptRacing();
  Stack first = MakeStack("random", "llamatune", 42, options);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(first.session->Step());
  std::string checkpoint = first.session->Save();

  // Different racing geometry replays a different tournament.
  SessionOptions other = options;
  other.racing->cohort = 6;
  Stack mismatched = MakeStack("random", "llamatune", 42, other);
  Status restored = mismatched.session->Restore(checkpoint);
  EXPECT_EQ(restored.code(), StatusCode::kFailedPrecondition);

  // A racing checkpoint cannot restore into a non-racing session.
  SessionOptions plain;
  plain.num_iterations = 3;
  Stack non_racing = MakeStack("random", "llamatune", 42, plain);
  Status refused = non_racing.session->Restore(checkpoint);
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition);
}

TEST(CheckpointTest, EarlyStoppedSessionRoundTrips) {
  SessionOptions options;
  options.num_iterations = 60;
  options.early_stopping = EarlyStoppingPolicy(5.0, 3);
  Stack first = MakeStack("random", "llamatune", 9, options);
  SessionResult stopped = first.session->Run();
  ASSERT_LT(stopped.iterations_run, 60);
  std::string checkpoint = first.session->Save();

  Stack resumed = MakeStack("random", "llamatune", 9, options);
  Status restored = resumed.session->Restore(checkpoint);
  ASSERT_TRUE(restored.ok()) << restored.ToString();
  EXPECT_TRUE(resumed.session->finished());
  EXPECT_TRUE(ResultsBitIdentical(stopped, resumed.session->Snapshot()));
}

}  // namespace
}  // namespace llamatune
