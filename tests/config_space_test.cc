#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/dbsim/knob_catalog.h"
#include "src/knobs/config_space.h"

namespace llamatune {
namespace {

std::vector<KnobSpec> TinyKnobs() {
  return {
      IntegerKnob("int_knob", 0, 100, 50),
      RealKnob("real_knob", 1.0, 3.0, 2.0),
      CategoricalKnob("cat_knob", {"a", "b", "c", "d"}, 1),
      WithLogScale(IntegerKnob("log_knob", 16, 2097152, 16384)),
      WithSpecialValues(IntegerKnob("hybrid_knob", -1, 1000, -1), {-1}),
  };
}

TEST(ConfigSpaceTest, CreateValidates) {
  auto r = ConfigSpace::Create(TinyKnobs());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r).num_knobs(), 5);
}

TEST(ConfigSpaceTest, CreateRejectsEmpty) {
  EXPECT_FALSE(ConfigSpace::Create({}).ok());
}

TEST(ConfigSpaceTest, CreateRejectsDuplicates) {
  auto knobs = TinyKnobs();
  knobs.push_back(IntegerKnob("int_knob", 0, 1, 0));
  auto r = ConfigSpace::Create(std::move(knobs));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAlreadyExists);
}

TEST(ConfigSpaceTest, IndexOf) {
  ConfigSpace space = *ConfigSpace::Create(TinyKnobs());
  EXPECT_EQ(space.IndexOf("int_knob"), 0);
  EXPECT_EQ(space.IndexOf("cat_knob"), 2);
  EXPECT_EQ(space.IndexOf("missing"), -1);
}

TEST(ConfigSpaceTest, HybridIndices) {
  ConfigSpace space = *ConfigSpace::Create(TinyKnobs());
  ASSERT_EQ(space.hybrid_knob_indices().size(), 1u);
  EXPECT_EQ(space.hybrid_knob_indices()[0], 4);
}

TEST(ConfigSpaceTest, DefaultConfigurationMatchesSpecs) {
  ConfigSpace space = *ConfigSpace::Create(TinyKnobs());
  Configuration def = space.DefaultConfiguration();
  ASSERT_EQ(def.size(), 5);
  EXPECT_EQ(def[0], 50);
  EXPECT_EQ(def[1], 2.0);
  EXPECT_EQ(def[2], 1.0);
  EXPECT_EQ(def[3], 16384);
  EXPECT_EQ(def[4], -1);
  EXPECT_TRUE(space.ValidateConfiguration(def).ok());
}

TEST(ConfigSpaceTest, UnitToValueEndpoints) {
  ConfigSpace space = *ConfigSpace::Create(TinyKnobs());
  EXPECT_EQ(space.UnitToValue(0, 0.0), 0);
  EXPECT_EQ(space.UnitToValue(0, 1.0), 100);
  EXPECT_EQ(space.UnitToValue(0, 0.5), 50);
  EXPECT_DOUBLE_EQ(space.UnitToValue(1, 0.5), 2.0);
  // Log-scaled knob: endpoints hit the bounds, midpoint is geometric.
  EXPECT_EQ(space.UnitToValue(3, 0.0), 16);
  EXPECT_EQ(space.UnitToValue(3, 1.0), 2097152);
  double mid = space.UnitToValue(3, 0.5);
  EXPECT_NEAR(mid, std::sqrt(16.0 * 2097152.0), mid * 0.01);
}

TEST(ConfigSpaceTest, CategoricalBinning) {
  ConfigSpace space = *ConfigSpace::Create(TinyKnobs());
  // Four categories: equal-width bins over [0,1].
  EXPECT_EQ(space.UnitToValue(2, 0.0), 0);
  EXPECT_EQ(space.UnitToValue(2, 0.26), 1);
  EXPECT_EQ(space.UnitToValue(2, 0.51), 2);
  EXPECT_EQ(space.UnitToValue(2, 0.99), 3);
  EXPECT_EQ(space.UnitToValue(2, 1.0), 3);  // u == 1 falls in last bin
}

TEST(ConfigSpaceTest, UnitToValueClampsOutOfRangeInput) {
  ConfigSpace space = *ConfigSpace::Create(TinyKnobs());
  EXPECT_EQ(space.UnitToValue(0, -0.5), 0);
  EXPECT_EQ(space.UnitToValue(0, 1.5), 100);
}

TEST(ConfigSpaceTest, ValidateConfigurationRejects) {
  ConfigSpace space = *ConfigSpace::Create(TinyKnobs());
  Configuration c = space.DefaultConfiguration();
  c[0] = 500;  // out of range
  EXPECT_FALSE(space.ValidateConfiguration(c).ok());
  c = space.DefaultConfiguration();
  c[0] = 3.5;  // non-integral
  EXPECT_FALSE(space.ValidateConfiguration(c).ok());
  c = space.DefaultConfiguration();
  c[2] = 4;  // category index out of range
  EXPECT_FALSE(space.ValidateConfiguration(c).ok());
  Configuration wrong_size(std::vector<double>{1.0});
  EXPECT_FALSE(space.ValidateConfiguration(wrong_size).ok());
}

TEST(ConfigSpaceTest, ToStringMentionsNamesAndCategories) {
  ConfigSpace space = *ConfigSpace::Create(TinyKnobs());
  std::string s = space.ToString(space.DefaultConfiguration());
  EXPECT_NE(s.find("int_knob=50"), std::string::npos);
  EXPECT_NE(s.find("cat_knob=b"), std::string::npos);
}

TEST(ConfigSpaceTest, SubUnityLogRangeIsNotDegenerate) {
  // Regression: log-scaled knobs with range below 1 (e.g. the vacuum
  // scale factors at [0.005, 1]) must span the full range, not pin to
  // the top.
  auto space = *ConfigSpace::Create(
      {WithLogScale(RealKnob("sf", 0.005, 1.0, 0.2))});
  EXPECT_NEAR(space.UnitToValue(0, 0.0), 0.005, 1e-9);
  EXPECT_NEAR(space.UnitToValue(0, 1.0), 1.0, 1e-9);
  double mid = space.UnitToValue(0, 0.5);
  EXPECT_GT(mid, 0.01);
  EXPECT_LT(mid, 0.3);
}

// Property sweep over every knob of both catalogs: unit round-trips.
class UnitRoundTrip
    : public ::testing::TestWithParam<dbsim::PostgresVersion> {};

TEST_P(UnitRoundTrip, ValueToUnitInvertsUnitToValue) {
  ConfigSpace space = dbsim::CatalogFor(GetParam());
  Rng rng(99);
  for (int i = 0; i < space.num_knobs(); ++i) {
    const KnobSpec& spec = space.knob(i);
    for (int trial = 0; trial < 8; ++trial) {
      double u = rng.Uniform(0.0, 1.0);
      double value = space.UnitToValue(i, u);
      EXPECT_EQ(spec.Canonicalize(value), value) << spec.name;
      double u2 = space.ValueToUnit(i, value);
      double value2 = space.UnitToValue(i, u2);
      // Round-trip through unit space is idempotent (within rounding).
      if (spec.type == KnobType::kCategorical) {
        EXPECT_EQ(value, value2) << spec.name;
      } else {
        double span = spec.max_value - spec.min_value;
        EXPECT_NEAR(value, value2, std::max(1.0, span * 1e-6)) << spec.name;
      }
    }
  }
}

TEST_P(UnitRoundTrip, UnitToValueIsMonotoneForNumerics) {
  ConfigSpace space = dbsim::CatalogFor(GetParam());
  for (int i = 0; i < space.num_knobs(); ++i) {
    const KnobSpec& spec = space.knob(i);
    if (!spec.is_numeric()) continue;
    double prev = space.UnitToValue(i, 0.0);
    for (double u = 0.05; u <= 1.0; u += 0.05) {
      double cur = space.UnitToValue(i, u);
      EXPECT_GE(cur, prev) << spec.name << " at u=" << u;
      prev = cur;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Catalogs, UnitRoundTrip,
                         ::testing::Values(dbsim::PostgresVersion::kV96,
                                           dbsim::PostgresVersion::kV136));

}  // namespace
}  // namespace llamatune
