#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/rng.h"
#include "src/model/gp.h"
#include "src/model/sparse_gp.h"
#include "src/optimizer/gp_bo.h"
#include "src/optimizer/optimizer_registry.h"

namespace llamatune {
namespace {

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

TEST(SparseGpTest, RejectsEmptyOrMismatched) {
  SearchSpace space({SearchDim::Continuous(0.0, 1.0)});
  SparseGaussianProcess gp(space, {}, 1);
  EXPECT_FALSE(gp.Fit({}, {}).ok());
  EXPECT_FALSE(gp.Fit({{0.5}}, {1.0, 2.0}).ok());
  EXPECT_FALSE(gp.Refit().ok());
}

TEST(SparseGpTest, InterpolatesWithFullInducingSet) {
  // m = n: FITC collapses to the exact posterior (up to the inducing
  // jitter), so training targets are recovered like the exact GP's
  // interpolation test.
  SearchSpace space({SearchDim::Continuous(0.0, 1.0)});
  GpOptions options;
  options.num_inducing = 64;
  SparseGaussianProcess gp(space, options, 2);
  std::vector<std::vector<double>> xs = {{0.0}, {0.25}, {0.5}, {0.75}, {1.0}};
  std::vector<double> ys = {0.0, 1.0, 0.0, -1.0, 0.0};
  ASSERT_TRUE(gp.Fit(xs, ys).ok());
  EXPECT_EQ(gp.num_inducing(), 5);
  for (size_t i = 0; i < xs.size(); ++i) {
    double mean = 0, variance = 0;
    gp.Predict(xs[i], &mean, &variance);
    EXPECT_NEAR(mean, ys[i], 0.25);
    EXPECT_GE(variance, 0.0);
  }
}

TEST(SparseGpTest, SubsetInducingStillTracksSmoothFunction) {
  SearchSpace space({SearchDim::Continuous(0.0, 1.0)});
  GpOptions options;
  options.num_inducing = 12;
  SparseGaussianProcess gp(space, options, 3);
  Rng rng(3);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 80; ++i) {
    xs.push_back({rng.Uniform()});
    ys.push_back(std::sin(4.0 * xs.back()[0]));
  }
  ASSERT_TRUE(gp.Fit(xs, ys).ok());
  EXPECT_EQ(gp.num_inducing(), 12);
  double max_err = 0.0;
  for (double p = 0.05; p < 1.0; p += 0.1) {
    double mean = 0, variance = 0;
    gp.Predict({p}, &mean, &variance);
    max_err = std::max(max_err, std::abs(mean - std::sin(4.0 * p)));
  }
  EXPECT_LT(max_err, 0.25);
}

TEST(SparseGpTest, VarianceGrowsAwayFromData) {
  SearchSpace space({SearchDim::Continuous(0.0, 1.0)});
  GpOptions options;
  options.num_inducing = 8;
  SparseGaussianProcess gp(space, options, 4);
  Rng rng(4);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 30; ++i) {
    xs.push_back({rng.Uniform(0.0, 0.3)});
    ys.push_back(xs.back()[0] * 2.0);
  }
  ASSERT_TRUE(gp.Fit(xs, ys).ok());
  double mean_near = 0, var_near = 0, mean_far = 0, var_far = 0;
  gp.Predict({0.15}, &mean_near, &var_near);
  gp.Predict({0.95}, &mean_far, &var_far);
  EXPECT_GT(var_far, var_near);
}

TEST(SparseGpTest, InducingSelectionIsDeterministicAndDistinct) {
  SearchSpace space({SearchDim::Continuous(0.0, 1.0),
                     SearchDim::Categorical(3)});
  GpOptions options;
  options.num_inducing = 10;
  SparseGaussianProcess a(space, options, 5);
  SparseGaussianProcess b(space, options, 5);
  Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    std::vector<double> x = {rng.Uniform(),
                             static_cast<double>(rng.UniformInt(0, 2))};
    double y = x[0] + x[1];
    a.AddObservation(x, y);
    b.AddObservation(x, y);
  }
  ASSERT_TRUE(a.Refit().ok());
  ASSERT_TRUE(b.Refit().ok());
  EXPECT_EQ(a.inducing_indices(), b.inducing_indices());
  std::set<int> distinct(a.inducing_indices().begin(),
                         a.inducing_indices().end());
  EXPECT_EQ(distinct.size(), a.inducing_indices().size());
  EXPECT_EQ(a.inducing_indices().front(), 0);  // seeded at the first point
  for (int idx : a.inducing_indices()) {
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, 40);
  }
}

TEST(SparseGpTest, PredictBatchMatchesPredictBitForBit) {
  SearchSpace space({SearchDim::Continuous(0.0, 1.0),
                     SearchDim::Continuous(-2.0, 2.0),
                     SearchDim::Categorical(2)});
  GpOptions options;
  options.num_inducing = 16;
  SparseGaussianProcess gp(space, options, 6);
  Rng rng(6);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 60; ++i) {
    xs.push_back({rng.Uniform(), rng.Uniform(-2, 2),
                  static_cast<double>(rng.UniformInt(0, 1))});
    ys.push_back(std::sin(3.0 * xs.back()[0]) + xs.back()[1] * xs.back()[2]);
  }
  ASSERT_TRUE(gp.Fit(xs, ys).ok());
  std::vector<std::vector<double>> queries;
  for (int i = 0; i < 300; ++i) {
    queries.push_back({rng.Uniform(), rng.Uniform(-2, 2),
                       static_cast<double>(rng.UniformInt(0, 1))});
  }
  std::vector<double> means, variances;
  gp.PredictBatch(queries, &means, &variances);
  ASSERT_EQ(means.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    double mean = 0, variance = 0;
    gp.Predict(queries[i], &mean, &variance);
    ASSERT_TRUE(SameBits(means[i], mean)) << "query " << i;
    ASSERT_TRUE(SameBits(variances[i], variance)) << "query " << i;
  }
}

TEST(SparseGpTest, DeterministicAtAnyThreadCount) {
  SearchSpace space({SearchDim::Continuous(0.0, 1.0),
                     SearchDim::Continuous(0.0, 1.0)});
  GpOptions serial;
  serial.num_inducing = 12;
  serial.num_threads = 1;
  GpOptions pooled = serial;
  pooled.num_threads = 0;
  SparseGaussianProcess a(space, serial, 7);
  SparseGaussianProcess b(space, pooled, 7);
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    std::vector<double> x = {rng.Uniform(), rng.Uniform()};
    double y = x[0] * x[1];
    a.AddObservation(x, y);
    b.AddObservation(x, y);
    ASSERT_TRUE(a.Refit().ok());
    ASSERT_TRUE(b.Refit().ok());
  }
  for (int i = 0; i < 20; ++i) {
    std::vector<double> q = {rng.Uniform(), rng.Uniform()};
    double mean_a = 0, var_a = 0, mean_b = 0, var_b = 0;
    a.Predict(q, &mean_a, &var_a);
    b.Predict(q, &mean_b, &var_b);
    ASSERT_TRUE(SameBits(mean_a, mean_b)) << "query " << i;
    ASSERT_TRUE(SameBits(var_a, var_b)) << "query " << i;
  }
  ASSERT_TRUE(
      SameBits(a.log_marginal_likelihood(), b.log_marginal_likelihood()));
}

// Property: finite predictions, non-negative variance, across seeds.
class SparseGpSanity : public ::testing::TestWithParam<int> {};

TEST_P(SparseGpSanity, FinitePredictions) {
  SearchSpace space({SearchDim::Continuous(0.0, 1.0),
                     SearchDim::Continuous(-5.0, 5.0),
                     SearchDim::Categorical(3)});
  GpOptions options;
  options.num_inducing = 9;
  SparseGaussianProcess gp(space, options, GetParam());
  Rng rng(GetParam());
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 35; ++i) {
    xs.push_back({rng.Uniform(), rng.Uniform(-5, 5),
                  static_cast<double>(rng.UniformInt(0, 2))});
    ys.push_back(rng.Gaussian(0.0, 100.0));
  }
  ASSERT_TRUE(gp.Fit(xs, ys).ok());
  for (int i = 0; i < 40; ++i) {
    double mean = 0, variance = -1;
    gp.Predict({rng.Uniform(), rng.Uniform(-5, 5),
                static_cast<double>(rng.UniformInt(0, 2))},
               &mean, &variance);
    EXPECT_TRUE(std::isfinite(mean));
    EXPECT_GE(variance, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseGpSanity, ::testing::Range(1, 6));

TEST(SparseGpTest, SurvivesDuplicateAndConstantData) {
  SearchSpace space({SearchDim::Continuous(0.0, 1.0)});
  GpOptions options;
  options.num_inducing = 4;
  SparseGaussianProcess gp(space, options, 8);
  // Duplicates collapse the max-min traversal early and stress the
  // inducing-block jitter escalation; constant targets collapse the
  // standardization to its floor.
  std::vector<std::vector<double>> xs = {{0.5}, {0.5}, {0.5}, {0.9}, {0.9}};
  std::vector<double> ys = {1.0, 1.0, 1.0, 1.0, 1.0};
  ASSERT_TRUE(gp.Fit(xs, ys).ok());
  EXPECT_LE(gp.num_inducing(), 2);  // only two distinct sites
  double mean = 0, variance = 0;
  gp.Predict({0.7}, &mean, &variance);
  EXPECT_TRUE(std::isfinite(mean));
  EXPECT_GE(variance, 0.0);
}

// --- Large-n quality on the fixed-seed simulator grid ---------------------

// The ISSUE 5 acceptance tolerance: on the noiseless TPC-C / hesbo8
// grid (the same cells bm_largen emits into BENCH_largen.json), a
// sparse arm whose switchover engages right after the init design must
// stay within 5% mean final best-so-far of the exact "gpbo" arm.
// Per-seed gaps swing both ways by ~±13% on this needle landscape
// (sparse wins some seeds outright) — divergent trajectories land on
// different needles — so the pin is on the seed-grid mean, which
// currently measures ~1.2%. The grid is bit-for-bit deterministic at
// any thread count, so this is a pinned inequality: it either holds
// exactly or the sparse math changed.
TEST(SparseGpGridQualityTest, BestSoFarWithinToleranceOfExact) {
  constexpr int kIterations = 64;
  constexpr int kNumSeeds = 5;
  const char* kSparseKey = "gpbo-sparse-gridtest";
  if (!OptimizerRegistry::Global().Contains(kSparseKey)) {
    OptimizerRegistry::Global().Register(
        kSparseKey,
        [](const SearchSpace& space,
           uint64_t seed) -> Result<std::unique_ptr<Optimizer>> {
          GpBoOptions options;
          options.gp.sparse_threshold = 16;  // engages just past n_init
          options.gp.num_inducing = 20;
          return std::unique_ptr<Optimizer>(
              new GpBoOptimizer(space, options, seed));
        });
  }
  double exact_mean = 0.0, sparse_mean = 0.0;
  for (int s = 0; s < kNumSeeds; ++s) {
    uint64_t seed = bench::kBatchGridBaseSeed + static_cast<uint64_t>(s);
    exact_mean +=
        bench::RunBatchGridCell("gpbo", seed, kIterations, 1).kb
            .BestSoFarObjective()
            .back();
    sparse_mean +=
        bench::RunBatchGridCell(kSparseKey, seed, kIterations, 1).kb
            .BestSoFarObjective()
            .back();
  }
  exact_mean /= kNumSeeds;
  sparse_mean /= kNumSeeds;
  EXPECT_GE(sparse_mean, exact_mean - 0.05 * std::abs(exact_mean))
      << "sparse mean best " << sparse_mean << " vs exact " << exact_mean;
}

}  // namespace
}  // namespace llamatune
