// Cross-workload property sweeps over the performance model and the
// full adapter pipeline: invariants that must hold for *every*
// workload and catalog version, not just the ones unit tests probe.

#include <gtest/gtest.h>

#include <cmath>

#include <memory>
#include <utility>

#include "src/common/rng.h"
#include "src/core/adapter_registry.h"
#include "src/dbsim/perf_model.h"
#include "src/dbsim/simulated_postgres.h"
#include "src/sampling/uniform.h"

namespace llamatune {
namespace dbsim {
namespace {

class WorkloadSweep : public ::testing::TestWithParam<int> {
 protected:
  WorkloadSweep()
      : workload_(AllWorkloads()[GetParam()]),
        space_(PostgresV96Catalog()),
        model_(&space_, workload_, PostgresVersion::kV96) {}

  Configuration WithKnob(const std::string& name, double value) const {
    Configuration c = space_.DefaultConfiguration();
    c[space_.IndexOf(name)] = value;
    return c;
  }

  WorkloadSpec workload_;
  ConfigSpace space_;
  PerfModel model_;
};

TEST_P(WorkloadSweep, ThroughputPositiveAndLatencyConsistent) {
  ModelOutput out = model_.Run(space_.DefaultConfiguration());
  ASSERT_FALSE(out.crashed);
  EXPECT_GT(out.throughput, 0.0);
  // Closed loop: throughput * mean latency == client count.
  EXPECT_NEAR(out.throughput * out.avg_latency_ms / 1000.0,
              workload_.clients, workload_.clients * 1e-6);
  EXPECT_GT(out.p95_latency_ms, out.avg_latency_ms);
}

TEST_P(WorkloadSweep, MoreBufferPoolNeverCollapses) {
  // Growing the buffer pool may trade a few percent against checkpoint
  // flush burden (double buffering is real), but must never collapse
  // throughput below the small-pool level.
  double prev = model_.Run(WithKnob("shared_buffers", 4096)).throughput;
  for (double sb : {65536.0, 262144.0, 786432.0}) {
    ModelOutput out = model_.Run(WithKnob("shared_buffers", sb));
    ASSERT_FALSE(out.crashed) << workload_.name << " sb=" << sb;
    EXPECT_GE(out.throughput, prev * 0.95) << workload_.name;
    prev = std::max(prev, out.throughput);
  }
}

TEST_P(WorkloadSweep, AsyncCommitNeverHurts) {
  double sync_on = model_.Run(space_.DefaultConfiguration()).throughput;
  double sync_off =
      model_.Run(WithKnob("synchronous_commit", 0)).throughput;
  EXPECT_GE(sync_off, sync_on * 0.999) << workload_.name;
}

TEST_P(WorkloadSweep, AutovacuumOffNeverHelps) {
  double on = model_.Run(space_.DefaultConfiguration()).throughput;
  double off = model_.Run(WithKnob("autovacuum", 0)).throughput;
  EXPECT_LE(off, on * 1.001) << workload_.name;
}

TEST_P(WorkloadSweep, CrashRulesFireEverywhere) {
  EXPECT_TRUE(model_.Run(WithKnob("shared_buffers", 2097152)).crashed);
  EXPECT_TRUE(model_.Run(WithKnob("max_connections", 10)).crashed);
}

TEST_P(WorkloadSweep, MetricsAlwaysFiniteAndSized) {
  SimulatedPostgres db(workload_, {});
  Rng rng(GetParam() + 1);
  auto adapter = std::move(AdapterRegistry::Global().Create(
                               "identity", &db.config_space(), 1))
                     .ValueOrDie();
  for (int i = 0; i < 25; ++i) {
    auto point = UniformSample(adapter->search_space(), &rng);
    EvalResult result = db.Evaluate(adapter->Project(point));
    ASSERT_EQ(result.metrics.size(), static_cast<size_t>(kNumMetrics));
    for (double m : result.metrics) {
      EXPECT_TRUE(std::isfinite(m));
    }
    if (!result.crashed) {
      EXPECT_GT(result.value, 0.0);
    }
  }
}

TEST_P(WorkloadSweep, FixedRateLatencyMonotoneInRate) {
  Configuration def = space_.DefaultConfiguration();
  double capacity = model_.Run(def).throughput;
  double prev = 0.0;
  for (double fraction : {0.3, 0.6, 0.9}) {
    ModelOutput out = model_.RunAtFixedRate(def, capacity * fraction);
    EXPECT_GE(out.p95_latency_ms, prev) << workload_.name;
    prev = out.p95_latency_ms;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSix, WorkloadSweep, ::testing::Range(0, 6),
                         [](const auto& info) {
                           // gtest names must be alphanumeric. Hold the
                           // workload list in a local: range-for over
                           // AllWorkloads()[i].name would iterate a
                           // member of an already-destroyed temporary.
                           std::vector<WorkloadSpec> workloads =
                               AllWorkloads();
                           std::string name;
                           for (char c : workloads[info.param].name) {
                             if (std::isalnum(static_cast<unsigned char>(c))) {
                               name.push_back(c);
                             }
                           }
                           return name;
                         });

// Projection-seed variance: across many HeSBO seeds, the pipeline
// keeps producing valid configurations and the special-value mass
// stays calibrated — the robustness property behind running 5 seeds
// per experiment.
class ProjectionSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProjectionSeedSweep, PipelineValidAndCalibrated) {
  ConfigSpace space = PostgresV96Catalog();
  auto adapter = std::move(AdapterRegistry::Global().Create(
                               "llamatune", &space, GetParam()))
                     .ValueOrDie();
  Rng rng(GetParam());
  int bfa = space.IndexOf("backend_flush_after");
  int specials = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    auto point = UniformSample(adapter->search_space(), &rng);
    Configuration config = adapter->Project(point);
    ASSERT_TRUE(space.ValidateConfiguration(config).ok());
    if (config[bfa] == 0.0) ++specials;
  }
  EXPECT_NEAR(static_cast<double>(specials) / n, 0.2, 0.06);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProjectionSeedSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace dbsim
}  // namespace llamatune
