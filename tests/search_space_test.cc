#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/common/rng.h"
#include "src/optimizer/search_space.h"

namespace llamatune {
namespace {

SearchSpace MixedSpace() {
  return SearchSpace({SearchDim::Continuous(0.0, 1.0),
                      SearchDim::Continuous(-1.0, 1.0, 5),
                      SearchDim::Categorical(3)});
}

TEST(SearchSpaceTest, DimCounts) {
  SearchSpace s = MixedSpace();
  EXPECT_EQ(s.num_dims(), 3);
  EXPECT_EQ(s.num_continuous(), 2);
  EXPECT_EQ(s.num_categorical(), 1);
}

TEST(SearchSpaceTest, SnapClampsContinuous) {
  SearchSpace s = MixedSpace();
  EXPECT_EQ(s.Snap(0, 1.7), 1.0);
  EXPECT_EQ(s.Snap(0, -0.3), 0.0);
  EXPECT_EQ(s.Snap(0, 0.42), 0.42);
}

TEST(SearchSpaceTest, SnapBucketGrid) {
  SearchSpace s = MixedSpace();
  // 5 buckets over [-1,1]: grid {-1, -0.5, 0, 0.5, 1}.
  EXPECT_DOUBLE_EQ(s.Snap(1, -0.6), -0.5);
  EXPECT_DOUBLE_EQ(s.Snap(1, 0.2), 0.0);
  EXPECT_DOUBLE_EQ(s.Snap(1, 0.9), 1.0);
  EXPECT_DOUBLE_EQ(s.Snap(1, -2.0), -1.0);
}

TEST(SearchSpaceTest, SnapCategoricalFloors) {
  SearchSpace s = MixedSpace();
  EXPECT_EQ(s.Snap(2, 1.9), 1.0);
  EXPECT_EQ(s.Snap(2, 7.0), 2.0);
  EXPECT_EQ(s.Snap(2, -3.0), 0.0);
}

TEST(SearchSpaceTest, SingleBucketPinsToLo) {
  SearchSpace s({SearchDim::Continuous(2.0, 8.0, 1)});
  EXPECT_EQ(s.Snap(0, 7.0), 2.0);
}

TEST(SearchSpaceTest, ContainsChecksEverything) {
  SearchSpace s = MixedSpace();
  EXPECT_TRUE(s.Contains({0.5, 0.5, 2.0}));
  EXPECT_FALSE(s.Contains({0.5, 0.5}));          // arity
  EXPECT_FALSE(s.Contains({1.5, 0.5, 2.0}));     // out of bounds
  EXPECT_FALSE(s.Contains({0.5, 0.3, 2.0}));     // off the bucket grid
  EXPECT_FALSE(s.Contains({0.5, 0.5, 1.5}));     // non-integral category
  EXPECT_FALSE(s.Contains({0.5, 0.5, 3.0}));     // category out of range
}

TEST(SearchSpaceTest, SnapPointMakesContained) {
  SearchSpace s = MixedSpace();
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> raw = {rng.Uniform(-3, 3), rng.Uniform(-3, 3),
                               rng.Uniform(0, 3)};
    EXPECT_TRUE(s.Contains(s.SnapPoint(raw)));
  }
}

TEST(SearchSpaceTest, BucketizedLimitsOnlyFinerDims) {
  SearchSpace s({SearchDim::Continuous(0, 1),          // continuum
                 SearchDim::Continuous(0, 1, 3),       // already coarse
                 SearchDim::Continuous(0, 1, 500000),  // finer than K
                 SearchDim::Categorical(4)});
  SearchSpace b = s.Bucketized(10000);
  EXPECT_EQ(b.dim(0).num_buckets, 10000);
  EXPECT_EQ(b.dim(1).num_buckets, 3);
  EXPECT_EQ(b.dim(2).num_buckets, 10000);
  EXPECT_EQ(b.dim(3).type, SearchDim::Type::kCategorical);
}

// Parameterized property: any snapped value lies on the K-grid and
// there are at most K distinct snapped values.
class BucketGridProperty : public ::testing::TestWithParam<int> {};

TEST_P(BucketGridProperty, SnappedValuesOnGrid) {
  int k = GetParam();
  SearchSpace s({SearchDim::Continuous(-1.0, 1.0, k)});
  Rng rng(k);
  std::set<double> distinct;
  for (int i = 0; i < 2000; ++i) {
    double v = s.Snap(0, rng.Uniform(-1.0, 1.0));
    distinct.insert(v);
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
    if (k > 1) {
      double width = 2.0 / (k - 1);
      double steps = (v + 1.0) / width;
      EXPECT_NEAR(steps, std::round(steps), 1e-9);
    }
  }
  EXPECT_LE(static_cast<int>(distinct.size()), k);
}

INSTANTIATE_TEST_SUITE_P(Ks, BucketGridProperty,
                         ::testing::Values(1, 2, 3, 7, 50, 1000, 10000));

}  // namespace
}  // namespace llamatune
