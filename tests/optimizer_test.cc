#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/optimizer/gp_bo.h"
#include "src/optimizer/random_search.h"
#include "src/optimizer/smac.h"

namespace llamatune {
namespace {

SearchSpace Box2d() {
  return SearchSpace(
      {SearchDim::Continuous(0.0, 1.0), SearchDim::Continuous(0.0, 1.0)});
}

// Smooth test objective with optimum at (0.7, 0.3).
double Quadratic(const std::vector<double>& p) {
  double dx = p[0] - 0.7, dy = p[1] - 0.3;
  return 10.0 - 25.0 * (dx * dx + dy * dy);
}

template <typename Opt>
double RunLoop(Opt* opt, int iters) {
  for (int i = 0; i < iters; ++i) {
    auto p = opt->Suggest();
    opt->Observe(p, Quadratic(p));
  }
  return opt->BestValue();
}

TEST(RandomSearchTest, SuggestionsInBounds) {
  RandomSearchOptimizer opt(Box2d(), 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(opt.space().Contains(opt.Suggest()));
  }
}

TEST(RandomSearchTest, BestTracking) {
  RandomSearchOptimizer opt(Box2d(), 2);
  EXPECT_EQ(opt.BestPoint().size(), 0u);
  opt.Observe({0.1, 0.1}, 1.0);
  opt.Observe({0.2, 0.2}, 5.0);
  opt.Observe({0.3, 0.3}, 3.0);
  EXPECT_EQ(opt.BestValue(), 5.0);
  EXPECT_EQ(opt.BestPoint(), (std::vector<double>{0.2, 0.2}));
  EXPECT_EQ(opt.history().size(), 3u);
}

TEST(SmacTest, InitialDesignIsLhsOfConfiguredSize) {
  SmacOptions options;
  options.n_init = 8;
  SmacOptimizer opt(Box2d(), options, 3);
  std::set<int> strata;
  for (int i = 0; i < 8; ++i) {
    auto p = opt.Suggest();
    EXPECT_TRUE(opt.space().Contains(p));
    strata.insert(std::min(7, static_cast<int>(p[0] * 8)));
    opt.Observe(p, Quadratic(p));
  }
  EXPECT_EQ(strata.size(), 8u);  // LHS stratification on dim 0
}

TEST(SmacTest, BeatsRandomSearchOnQuadratic) {
  double smac_total = 0.0, random_total = 0.0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    SmacOptimizer smac(Box2d(), {}, seed);
    RandomSearchOptimizer random(Box2d(), seed);
    smac_total += RunLoop(&smac, 40);
    random_total += RunLoop(&random, 40);
  }
  EXPECT_GT(smac_total, random_total);
  EXPECT_GT(smac_total / 5.0, 9.5);  // near the optimum of 10
}

TEST(SmacTest, DeterministicGivenSeed) {
  SmacOptimizer a(Box2d(), {}, 17), b(Box2d(), {}, 17);
  for (int i = 0; i < 25; ++i) {
    auto pa = a.Suggest();
    auto pb = b.Suggest();
    EXPECT_EQ(pa, pb);
    a.Observe(pa, Quadratic(pa));
    b.Observe(pb, Quadratic(pb));
  }
}

TEST(SmacTest, SuggestionsStayValidWithCategoricalDims) {
  SearchSpace space({SearchDim::Continuous(0.0, 1.0),
                     SearchDim::Categorical(4),
                     SearchDim::Continuous(-1.0, 1.0, 101)});
  SmacOptimizer opt(space, {}, 4);
  for (int i = 0; i < 40; ++i) {
    auto p = opt.Suggest();
    EXPECT_TRUE(space.Contains(p));
    // Reward category 2 so the model has something to chase.
    opt.Observe(p, (p[1] == 2.0 ? 5.0 : 0.0) - p[0]);
  }
}

TEST(SmacTest, RandomInterleaveDisabledWorks) {
  SmacOptions options;
  options.random_interleave = 0;
  SmacOptimizer opt(Box2d(), options, 5);
  EXPECT_GT(RunLoop(&opt, 30), 8.0);
}

TEST(GpBoTest, BeatsRandomSearchOnQuadratic) {
  double gp_total = 0.0, random_total = 0.0;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    GpBoOptimizer gp(Box2d(), {}, seed);
    RandomSearchOptimizer random(Box2d(), seed);
    gp_total += RunLoop(&gp, 35);
    random_total += RunLoop(&random, 35);
  }
  EXPECT_GT(gp_total, random_total);
  EXPECT_GT(gp_total / 3.0, 9.5);
}

TEST(GpBoTest, HandlesMixedSpace) {
  SearchSpace space(
      {SearchDim::Continuous(0.0, 1.0), SearchDim::Categorical(3)});
  GpBoOptimizer opt(space, {}, 6);
  for (int i = 0; i < 25; ++i) {
    auto p = opt.Suggest();
    EXPECT_TRUE(space.Contains(p));
    opt.Observe(p, (p[1] == 1.0 ? 3.0 : 0.0) + p[0]);
  }
  EXPECT_GT(opt.BestValue(), 3.0);
}

// Regression for the ArgmaxEi degenerate-pool guard: a constant
// objective collapses the target stddev to its floor, every pool
// variance to ~0, and every EI to exactly 0 — suggestions must stay
// valid points (never a NaN-comparison winner, never a crash), in
// every batch mode.
TEST(GpBoTest, SurvivesConstantObjective) {
  for (GpBatchMode mode :
       {GpBatchMode::kSequential, GpBatchMode::kFantasyQei,
        GpBatchMode::kLocalPenalization}) {
    GpBoOptions options;
    options.batch_mode = mode;
    GpBoOptimizer opt(Box2d(), options, 9);
    for (int i = 0; i < 8; ++i) {
      for (const auto& p : opt.SuggestBatch(2)) {
        EXPECT_TRUE(opt.space().Contains(p));
        for (double v : p) EXPECT_TRUE(std::isfinite(v));
        opt.Observe(p, 7.0);  // constant objective
      }
    }
  }
}

TEST(GpBoTest, SparseSwitchoverKeepsSuggestionsValid) {
  // Tiny threshold: the inducing-point path takes over a few
  // iterations past the init design and must keep producing valid,
  // deterministic suggestions.
  GpBoOptions options;
  options.gp.sparse_threshold = 14;
  options.gp.num_inducing = 8;
  GpBoOptimizer opt(Box2d(), options, 12);
  GpBoOptimizer twin(Box2d(), options, 12);
  for (int i = 0; i < 30; ++i) {
    auto p = opt.Suggest();
    auto q = twin.Suggest();
    EXPECT_EQ(p, q) << "iteration " << i;
    EXPECT_TRUE(opt.space().Contains(p));
    opt.Observe(p, Quadratic(p));
    twin.Observe(q, Quadratic(q));
  }
  EXPECT_GT(opt.BestValue(), 8.0);
}

// Below the threshold the sparse-enabled optimizer is bit-for-bit the
// plain one — enabling the switchover cannot change small-n runs.
TEST(GpBoTest, SparseConfigIdenticalBelowThreshold) {
  GpBoOptions sparse_options;
  sparse_options.gp.sparse_threshold = 100;  // never reached here
  sparse_options.gp.num_inducing = 8;
  GpBoOptimizer sparse(Box2d(), sparse_options, 23);
  GpBoOptimizer plain(Box2d(), {}, 23);
  for (int i = 0; i < 20; ++i) {
    auto ps = sparse.Suggest();
    auto pp = plain.Suggest();
    EXPECT_EQ(ps, pp) << "iteration " << i;
    sparse.Observe(ps, Quadratic(ps));
    plain.Observe(pp, Quadratic(pp));
  }
}

TEST(GpBoTest, DeterministicGivenSeed) {
  GpBoOptimizer a(Box2d(), {}, 23), b(Box2d(), {}, 23);
  for (int i = 0; i < 15; ++i) {
    auto pa = a.Suggest();
    auto pb = b.Suggest();
    EXPECT_EQ(pa, pb);
    a.Observe(pa, Quadratic(pa));
    b.Observe(pb, Quadratic(pb));
  }
}

// Property: on a bucketized space, every SMAC suggestion sits on the
// grid — the optimizer is truly aware of the coarser space (paper §5
// design requirement).
class SmacBucketProperty : public ::testing::TestWithParam<int> {};

TEST_P(SmacBucketProperty, SuggestionsOnBucketGrid) {
  int k = GetParam();
  SearchSpace space({SearchDim::Continuous(-1.0, 1.0, k),
                     SearchDim::Continuous(-1.0, 1.0, k)});
  SmacOptimizer opt(space, {}, 100 + k);
  for (int i = 0; i < 30; ++i) {
    auto p = opt.Suggest();
    EXPECT_TRUE(space.Contains(p)) << "k=" << k;
    opt.Observe(p, -(p[0] * p[0] + p[1] * p[1]));
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, SmacBucketProperty,
                         ::testing::Values(3, 11, 101, 10000));

}  // namespace
}  // namespace llamatune
