#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/nn/adam.h"
#include "src/nn/layers.h"
#include "src/common/matrix.h"
#include "src/nn/mlp.h"

namespace llamatune {
namespace {

TEST(MatrixTest, ApplyAndTransposed) {
  Matrix m(2, 3);
  // [[1,2,3],[4,5,6]]
  m.at(0, 0) = 1; m.at(0, 1) = 2; m.at(0, 2) = 3;
  m.at(1, 0) = 4; m.at(1, 1) = 5; m.at(1, 2) = 6;
  std::vector<double> x = {1.0, 1.0, 1.0};
  auto y = m.Apply(x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
  std::vector<double> z = {1.0, 1.0};
  auto t = m.ApplyTransposed(z);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t[0], 5.0);
  EXPECT_DOUBLE_EQ(t[1], 7.0);
  EXPECT_DOUBLE_EQ(t[2], 9.0);
}

TEST(LinearLayerTest, ForwardMatchesManual) {
  Rng rng(1);
  LinearLayer layer(2, 1, &rng);
  layer.weights().at(0, 0) = 2.0;
  layer.weights().at(0, 1) = -1.0;
  layer.bias()[0] = 0.5;
  auto y = layer.Forward({3.0, 4.0});
  EXPECT_DOUBLE_EQ(y[0], 2.0 * 3.0 - 4.0 + 0.5);
}

TEST(LinearLayerTest, NumericalGradientCheck) {
  Rng rng(2);
  LinearLayer layer(3, 2, &rng);
  std::vector<double> x = {0.3, -0.7, 1.1};
  // Loss = sum(outputs); d(loss)/d(out) = ones.
  layer.ZeroGrad();
  layer.Forward(x);
  std::vector<double> grad_in = layer.Backward({1.0, 1.0});

  const double eps = 1e-6;
  // Check dW numerically for a few entries.
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) {
      double orig = layer.weights().at(r, c);
      layer.weights().at(r, c) = orig + eps;
      auto up = layer.Forward(x);
      layer.weights().at(r, c) = orig - eps;
      auto down = layer.Forward(x);
      layer.weights().at(r, c) = orig;
      double numeric =
          ((up[0] + up[1]) - (down[0] + down[1])) / (2.0 * eps);
      EXPECT_NEAR(layer.weight_grads().at(r, c), numeric, 1e-5);
    }
  }
  // Gradient wrt input equals column sums of W.
  for (int c = 0; c < 3; ++c) {
    double expected = layer.weights().at(0, c) + layer.weights().at(1, c);
    EXPECT_NEAR(grad_in[c], expected, 1e-9);
  }
}

TEST(ActivationTest, TanhBackward) {
  TanhLayer tanh_layer;
  auto y = tanh_layer.Forward({0.5, -0.5});
  EXPECT_NEAR(y[0], std::tanh(0.5), 1e-12);
  auto g = tanh_layer.Backward({1.0, 1.0});
  double expected = 1.0 - std::tanh(0.5) * std::tanh(0.5);
  EXPECT_NEAR(g[0], expected, 1e-12);
  EXPECT_NEAR(g[1], expected, 1e-12);
}

TEST(ActivationTest, ReluMask) {
  ReluLayer relu;
  auto y = relu.Forward({1.5, -2.0, 0.0});
  EXPECT_EQ(y[0], 1.5);
  EXPECT_EQ(y[1], 0.0);
  auto g = relu.Backward({1.0, 1.0, 1.0});
  EXPECT_EQ(g[0], 1.0);
  EXPECT_EQ(g[1], 0.0);
  EXPECT_EQ(g[2], 0.0);  // x == 0 counts as inactive
}

TEST(AdamTest, MinimizesQuadratic) {
  std::vector<double> params = {5.0, -3.0};
  std::vector<double> grads(2, 0.0);
  AdamOptimizer adam(0.1);
  adam.Register(&params, &grads);
  for (int step = 0; step < 500; ++step) {
    grads[0] = 2.0 * params[0];
    grads[1] = 2.0 * params[1];
    adam.Step();
  }
  EXPECT_NEAR(params[0], 0.0, 0.05);
  EXPECT_NEAR(params[1], 0.0, 0.05);
  EXPECT_EQ(adam.step_count(), 500);
}

TEST(MlpTest, ForwardShapes) {
  Rng rng(5);
  Mlp mlp(4, {8, 8}, 3, OutputActivation::kTanh, &rng);
  auto y = mlp.Forward({0.1, 0.2, 0.3, 0.4});
  ASSERT_EQ(y.size(), 3u);
  for (double v : y) {
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(MlpTest, LearnsSimpleRegression) {
  Rng rng(6);
  Mlp mlp(1, {16}, 1, OutputActivation::kLinear, &rng);
  AdamOptimizer adam(0.01);
  mlp.RegisterParams(&adam);
  // Fit y = 2x - 1 on [0,1].
  for (int epoch = 0; epoch < 2000; ++epoch) {
    double x = rng.Uniform();
    double target = 2.0 * x - 1.0;
    mlp.ZeroGrad();
    double y = mlp.Forward({x})[0];
    mlp.Backward({2.0 * (y - target)});
    adam.Step();
  }
  EXPECT_NEAR(mlp.Forward({0.0})[0], -1.0, 0.15);
  EXPECT_NEAR(mlp.Forward({0.5})[0], 0.0, 0.15);
  EXPECT_NEAR(mlp.Forward({1.0})[0], 1.0, 0.15);
}

TEST(MlpTest, CopyAndSoftUpdate) {
  Rng rng(7);
  Mlp a(2, {4}, 1, OutputActivation::kLinear, &rng);
  Mlp b(2, {4}, 1, OutputActivation::kLinear, &rng);
  std::vector<double> x = {0.3, 0.7};
  b.CopyFrom(a);
  EXPECT_DOUBLE_EQ(a.Forward(x)[0], b.Forward(x)[0]);

  Mlp c(2, {4}, 1, OutputActivation::kLinear, &rng);
  double before = c.Forward(x)[0];
  c.SoftUpdateFrom(a, 0.5);
  double after = c.Forward(x)[0];
  // Soft update moved the output toward a's (not a full copy).
  EXPECT_NE(after, before);
  EXPECT_NE(after, a.Forward(x)[0]);
  // Repeated soft updates converge to a.
  for (int i = 0; i < 200; ++i) c.SoftUpdateFrom(a, 0.2);
  EXPECT_NEAR(c.Forward(x)[0], a.Forward(x)[0], 1e-6);
}

// Property: end-to-end MLP gradient check against numerical
// differentiation for several seeds.
class MlpGradCheck : public ::testing::TestWithParam<int> {};

TEST_P(MlpGradCheck, BackpropMatchesNumericalInputGradient) {
  Rng rng(GetParam());
  Mlp mlp(3, {5}, 1, OutputActivation::kTanh, &rng);
  std::vector<double> x = {0.2, -0.4, 0.9};
  mlp.ZeroGrad();
  mlp.Forward(x);
  std::vector<double> grad_in = mlp.Backward({1.0});
  const double eps = 1e-6;
  for (int i = 0; i < 3; ++i) {
    std::vector<double> xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    double numeric = (mlp.Forward(xp)[0] - mlp.Forward(xm)[0]) / (2 * eps);
    EXPECT_NEAR(grad_in[i], numeric, 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MlpGradCheck, ::testing::Range(1, 7));

}  // namespace
}  // namespace llamatune
