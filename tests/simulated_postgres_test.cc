#include <gtest/gtest.h>

#include <cmath>

#include "src/dbsim/simulated_postgres.h"

namespace llamatune {
namespace dbsim {
namespace {

TEST(SimulatedPostgresTest, MaximizeFlagFollowsTarget) {
  SimulatedPostgres tput(YcsbA(), {});
  EXPECT_TRUE(tput.maximize());
  SimulatedPostgresOptions options;
  options.target = TuningTarget::kP95Latency;
  options.fixed_rate = 5000;
  SimulatedPostgres latency(TpcC(), options);
  EXPECT_FALSE(latency.maximize());
}

TEST(SimulatedPostgresTest, NoiseIsSmallAndMultiplicative) {
  SimulatedPostgres db(YcsbA(), {});
  Configuration def = db.config_space().DefaultConfiguration();
  double noiseless = db.RunNoiseless(def).throughput;
  for (int i = 0; i < 20; ++i) {
    double v = db.Evaluate(def).value;
    EXPECT_NEAR(v, noiseless, noiseless * 0.2);
    EXPECT_GT(v, 0.0);
  }
}

TEST(SimulatedPostgresTest, RepeatEvaluationsDiffer) {
  SimulatedPostgres db(YcsbA(), {});
  Configuration def = db.config_space().DefaultConfiguration();
  double a = db.Evaluate(def).value;
  double b = db.Evaluate(def).value;
  EXPECT_NE(a, b);  // noisy objective
}

TEST(SimulatedPostgresTest, SameSeedSameSequence) {
  SimulatedPostgresOptions options;
  options.noise_seed = 1234;
  SimulatedPostgres a(YcsbA(), options), b(YcsbA(), options);
  Configuration def = a.config_space().DefaultConfiguration();
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.Evaluate(def).value, b.Evaluate(def).value);
  }
}

TEST(SimulatedPostgresTest, ZeroNoiseIsExact) {
  SimulatedPostgresOptions options;
  options.noise_sigma = 0.0;
  SimulatedPostgres db(YcsbA(), options);
  Configuration def = db.config_space().DefaultConfiguration();
  EXPECT_DOUBLE_EQ(db.Evaluate(def).value, db.RunNoiseless(def).throughput);
}

TEST(SimulatedPostgresTest, CrashedRunsReportNoMetricsValue) {
  SimulatedPostgres db(YcsbA(), {});
  Configuration c = db.config_space().DefaultConfiguration();
  c[db.config_space().IndexOf("max_connections")] = 10;
  EvalResult result = db.Evaluate(c);
  EXPECT_TRUE(result.crashed);
  EXPECT_EQ(result.metrics.size(), static_cast<size_t>(kNumMetrics));
}

TEST(SimulatedPostgresTest, LatencyTargetReturnsP95) {
  SimulatedPostgresOptions options;
  options.target = TuningTarget::kP95Latency;
  options.fixed_rate = 700;
  options.noise_sigma = 0.0;
  SimulatedPostgres db(TpcC(), options);
  Configuration def = db.config_space().DefaultConfiguration();
  EXPECT_DOUBLE_EQ(db.Evaluate(def).value,
                   db.RunNoiseless(def).p95_latency_ms);
  EXPECT_GT(db.Evaluate(def).value, 0.0);
}

TEST(SimulatedPostgresTest, MetricsVectorShape) {
  SimulatedPostgres db(Twitter(), {});
  EvalResult result =
      db.Evaluate(db.config_space().DefaultConfiguration());
  ASSERT_EQ(result.metrics.size(), static_cast<size_t>(kNumMetrics));
  for (double m : result.metrics) EXPECT_TRUE(std::isfinite(m));
}

TEST(SimulatedPostgresTest, EvaluationCounterAdvances) {
  SimulatedPostgres db(YcsbA(), {});
  EXPECT_EQ(db.evaluations(), 0);
  db.Evaluate(db.config_space().DefaultConfiguration());
  db.Evaluate(db.config_space().DefaultConfiguration());
  EXPECT_EQ(db.evaluations(), 2);
}

TEST(SimulatedPostgresTest, WorkloadByNameLookup) {
  EXPECT_TRUE(WorkloadByName("TPC-C").ok());
  EXPECT_TRUE(WorkloadByName("RS").ok());
  EXPECT_FALSE(WorkloadByName("TPC-H").ok());
  EXPECT_EQ(AllWorkloads().size(), 6u);
}

TEST(SimulatedPostgresTest, WorkloadTableFourProperties) {
  // Spot-check against the paper's Table 4.
  WorkloadSpec ycsb_a = *WorkloadByName("YCSB-A");
  EXPECT_EQ(ycsb_a.num_tables, 1);
  EXPECT_EQ(ycsb_a.num_columns, 11);
  EXPECT_DOUBLE_EQ(ycsb_a.read_only_txn_fraction, 0.50);
  WorkloadSpec tpcc = *WorkloadByName("TPC-C");
  EXPECT_EQ(tpcc.num_tables, 9);
  EXPECT_DOUBLE_EQ(tpcc.read_only_txn_fraction, 0.08);
  WorkloadSpec seats = *WorkloadByName("SEATS");
  EXPECT_EQ(seats.num_tables, 10);
  WorkloadSpec twitter = *WorkloadByName("Twitter");
  EXPECT_EQ(twitter.num_tables, 5);
  EXPECT_DOUBLE_EQ(twitter.read_only_txn_fraction, 0.01);
  for (const WorkloadSpec& w : AllWorkloads()) {
    EXPECT_EQ(w.db_size_gb, 20.0) << w.name;  // all databases are 20 GB
    EXPECT_EQ(w.clients, 40) << w.name;       // 40 clients
  }
}

}  // namespace
}  // namespace dbsim
}  // namespace llamatune
