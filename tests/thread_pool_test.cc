#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/dbsim/workloads.h"
#include "src/harness/tuner.h"

namespace llamatune {
namespace {

TEST(ThreadPoolTest, SubmitReturnsResultThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { return 21 * 2; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto future =
      pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  int n = 1000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(n, [&](int i) { hits[i].fetch_add(1); });
  for (int i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, ParallelForSerialCapBypassesPool) {
  ThreadPool pool(4);
  std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> executor(64);
  pool.ParallelFor(
      64, [&](int i) { executor[i] = std::this_thread::get_id(); },
      /*max_parallelism=*/1);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(executor[i], caller);
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestIndexException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.ParallelFor(100, [&](int i) {
      if (i == 13 || i == 7 || i == 90) {
        throw std::runtime_error("failed at " + std::to_string(i));
      }
      completed.fetch_add(1);
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "failed at 7");
  }
  // The loop drains fully before rethrowing: every non-throwing index
  // still ran, so caller state is consistent.
  EXPECT_EQ(completed.load(), 97);
}

TEST(ThreadPoolTest, NestedParallelForCompletes) {
  // Caller participation guarantees progress even when every worker is
  // occupied by the outer loop.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](int) {
    pool.ParallelFor(50, [&](int) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 8 * 50);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(1);
    for (int i = 0; i < 8; ++i) {
      futures.push_back(pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        ran.fetch_add(1);
      }));
    }
  }  // clean shutdown: joins after draining
  EXPECT_EQ(ran.load(), 8);
  for (auto& f : futures) f.get();  // all futures are satisfied
}

// --- Determinism of thread-pooled sessions -------------------------------

harness::TunerBuilder BatchSessionBuilder(int num_threads) {
  harness::TunerBuilder builder;
  builder.Workload(dbsim::YcsbA())
      .Optimizer("smac")
      .Adapter("llamatune")
      .Seed(1234)
      .Iterations(16)
      .BatchSize(4)
      .Threads(num_threads);
  return builder;
}

void ExpectIdenticalSessions(const SessionResult& a, const SessionResult& b) {
  ASSERT_EQ(a.kb.size(), b.kb.size());
  for (int i = 0; i < a.kb.size(); ++i) {
    EXPECT_EQ(a.kb.record(i).point, b.kb.record(i).point) << "iteration " << i;
    EXPECT_EQ(a.kb.record(i).measured, b.kb.record(i).measured);
    EXPECT_EQ(a.kb.record(i).objective, b.kb.record(i).objective);
    EXPECT_EQ(a.kb.record(i).crashed, b.kb.record(i).crashed);
  }
  EXPECT_EQ(a.best_performance, b.best_performance);
}

TEST(ThreadPoolSessionTest, FixedSeedAndBatchSizeIsReproducible) {
  SessionResult first = (*BatchSessionBuilder(0).Build())->Run();
  SessionResult second = (*BatchSessionBuilder(0).Build())->Run();
  ExpectIdenticalSessions(first, second);
}

TEST(ThreadPoolSessionTest, ParallelBatchMatchesSerialBatch) {
  // The thread-pool swap must not change any record: slot i always
  // evaluates on clone i, and scoring happens in suggestion order.
  SessionResult parallel = (*BatchSessionBuilder(0).Build())->Run();
  SessionResult serial = (*BatchSessionBuilder(1).Build())->Run();
  ExpectIdenticalSessions(parallel, serial);
}

}  // namespace
}  // namespace llamatune
