// Property battery for the multi-fidelity racing stage (ISSUE 9):
//
//  * RunningStat matches a two-pass batch oracle (same shift) to 1 ulp
//    and serializes bit-exactly, so checkpointed races resume on the
//    identical accumulator state.
//  * A racing session is bit-for-bit deterministic at any thread count
//    and under any Tell interleaving — same survivors, same champions,
//    same committed trajectory, same simulated work.
//  * The degenerate race (cohort 1, rungs 1) reduces bit-for-bit to
//    the non-racing session.
//  * Rung trials are exempt from pending-deadline expiry (a rung must
//    complete for the race to stay deterministic).
//  * On the shared bench grid (bench/bench_common.h — the same
//    definition bench/bm_racing.cc regression-tracks), racing matches
//    the fixed-budget session's best-found within 2% at <= 0.5x the
//    simulated measurement work.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <numeric>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/serde.h"
#include "src/core/adapter_registry.h"
#include "src/core/running_stat.h"
#include "src/core/tuning_session.h"
#include "src/dbsim/simulated_postgres.h"
#include "src/dbsim/workloads.h"
#include "src/optimizer/optimizer_registry.h"

namespace llamatune {
namespace {

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// ---------------------------------------------------------------------------
// RunningStat vs the two-pass batch oracle
// ---------------------------------------------------------------------------

/// Maps a double to a monotonically ordered integer so adjacent
/// representable values differ by exactly 1.
int64_t OrderedBits(double x) {
  int64_t i;
  std::memcpy(&i, &x, sizeof(double));
  return i >= 0 ? i
               : static_cast<int64_t>(0x8000000000000000ull -
                                      static_cast<uint64_t>(i));
}

uint64_t UlpDistance(double a, double b) {
  int64_t ia = OrderedBits(a);
  int64_t ib = OrderedBits(b);
  return ia >= ib ? static_cast<uint64_t>(ia) - static_cast<uint64_t>(ib)
                  : static_cast<uint64_t>(ib) - static_cast<uint64_t>(ia);
}

struct BatchOracle {
  double mean = 0.0;
  double variance = 0.0;
  /// The exact (extended-precision) batch sums, rounded to double —
  /// what the Neumaier-compensated running sums are pinned against.
  double sum = 0.0;
  double sum_sq = 0.0;
};

/// Two-pass batch reference with the same shift (the first value) and
/// the same per-observation terms RunningStat::Push sums — the terms
/// accumulate in extended precision, so the oracle sums are exact
/// where the accumulator's are Neumaier-compensated. The final
/// arithmetic mirrors Mean()/Variance() operation for operation.
BatchOracle TwoPassOracle(const std::vector<double>& xs) {
  BatchOracle oracle;
  if (xs.empty()) return oracle;
  const double shift = xs[0];
  long double s1 = 0.0L;
  long double s2 = 0.0L;
  for (double x : xs) {
    double d = x - shift;
    double sq = d * d;
    s1 += static_cast<long double>(d);
    s2 += static_cast<long double>(sq);
  }
  const double s = static_cast<double>(s1);
  const double ss = static_cast<double>(s2);
  const double n = static_cast<double>(xs.size());
  oracle.sum = s;
  oracle.sum_sq = ss;
  oracle.mean = shift + s / n;
  if (xs.size() >= 2) {
    double var = (ss - s * s / n) / (n - 1.0);
    oracle.variance = var > 0.0 ? var : 0.0;
  }
  return oracle;
}

struct RawSums {
  double sum = 0.0;
  double sum_sq = 0.0;
};

/// Reads the compensated running sums back through the serialized form
/// ("stat <count> <shift> <sum> <sum_c> <sum_sq> <sum_sq_c> <min>
/// <max>" as bit tokens) — the accumulator's only public window onto
/// its internal state, and exactly what a checkpoint persists.
RawSums ExtractSums(const RunningStat& stat) {
  std::istringstream in(stat.Serialize());
  std::string tag;
  int64_t count = 0;
  in >> tag >> count;
  double fields[7] = {};
  std::string token;
  for (double& field : fields) {
    in >> token;
    field = DecodeDoubleBits(token).ValueOrDie();
  }
  RawSums sums;
  sums.sum = fields[1] + fields[2];
  sums.sum_sq = fields[3] + fields[4];
  return sums;
}

// The documented numeric contract: the compensated running sums match
// the exact batch sums of the same per-observation terms to 1 ulp (and
// so does the mean). The variance pin is cancellation-aware: the
// subtraction (ss - s^2/n) amplifies a 1-ulp sum error by ss/variance,
// so its tolerance scales with the uncentered moment, not the result.
TEST(RunningStatTest, MatchesBatchOracleToOneUlp) {
  std::mt19937_64 rng(20260808);
  struct StreamSpec {
    const char* name;
    double center;
    double spread;
    int n;
  };
  // DES-throughput-like (narrow, far from zero — the distribution the
  // shift exists for), a brutally narrow large-offset stream, and a
  // zero-centered mixed-sign stream.
  const StreamSpec specs[] = {
      {"des-throughput", 3000.0, 40.0, 200},
      {"narrow-offset", 8.5e6, 1e-3, 333},
      {"mixed-sign", 0.0, 1.0, 500},
  };
  constexpr double kEps = std::numeric_limits<double>::epsilon();
  for (const StreamSpec& spec : specs) {
    std::normal_distribution<double> dist(spec.center, spec.spread);
    std::vector<double> xs;
    RunningStat stat;
    for (int i = 0; i < spec.n; ++i) {
      double x = dist(rng);
      xs.push_back(x);
      stat.Push(x);
      BatchOracle oracle = TwoPassOracle(xs);
      RawSums sums = ExtractSums(stat);
      EXPECT_LE(UlpDistance(sums.sum, oracle.sum), 1u)
          << spec.name << " sum diverged at n=" << xs.size();
      EXPECT_LE(UlpDistance(sums.sum_sq, oracle.sum_sq), 1u)
          << spec.name << " sum_sq diverged at n=" << xs.size();
      EXPECT_LE(UlpDistance(stat.Mean(), oracle.mean), 1u)
          << spec.name << " mean diverged at n=" << xs.size();
      if (xs.size() >= 2) {
        double scale = oracle.sum_sq / (static_cast<double>(xs.size()) - 1.0);
        EXPECT_NEAR(stat.Variance(), oracle.variance, 16.0 * kEps * scale)
            << spec.name << " variance diverged at n=" << xs.size();
      }
    }
    EXPECT_EQ(stat.count(), spec.n);
  }
}

TEST(RunningStatTest, DegenerateCounts) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0);
  EXPECT_EQ(stat.Mean(), 0.0);
  EXPECT_EQ(stat.Variance(), 0.0);
  EXPECT_TRUE(std::isinf(stat.CiHalfWidth(1.96)));

  stat.Push(12.75);
  EXPECT_TRUE(SameBits(stat.Mean(), 12.75));
  EXPECT_EQ(stat.Variance(), 0.0);
  // One sample: the CI half-width is infinite, so a candidate measured
  // once can never be eliminated on CI overlap.
  EXPECT_TRUE(std::isinf(stat.CiHalfWidth(1.96)));

  stat.Push(12.75);
  EXPECT_TRUE(SameBits(stat.Mean(), 12.75));
  // A constant stream clamps to exactly zero variance.
  EXPECT_EQ(stat.Variance(), 0.0);
  EXPECT_EQ(stat.CiHalfWidth(1.96), 0.0);
  EXPECT_TRUE(SameBits(stat.Min(), 12.75));
  EXPECT_TRUE(SameBits(stat.Max(), 12.75));
}

TEST(RunningStatTest, SerializeParseRoundTripsBitExact) {
  std::mt19937_64 rng(7);
  std::normal_distribution<double> dist(2800.0, 55.0);
  RunningStat stat;
  for (int i = 0; i < 17; ++i) stat.Push(dist(rng));

  std::string line = stat.Serialize();
  Result<RunningStat> parsed = RunningStat::Parse(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Serialize(), line);
  EXPECT_EQ(parsed->count(), stat.count());
  EXPECT_TRUE(SameBits(parsed->Mean(), stat.Mean()));
  EXPECT_TRUE(SameBits(parsed->Variance(), stat.Variance()));
  EXPECT_TRUE(SameBits(parsed->CiHalfWidth(1.96), stat.CiHalfWidth(1.96)));
  EXPECT_TRUE(SameBits(parsed->Min(), stat.Min()));
  EXPECT_TRUE(SameBits(parsed->Max(), stat.Max()));

  // A resumed accumulator must continue bit-for-bit, not just report
  // the same summary at the restore point.
  RunningStat resumed = std::move(parsed).ValueOrDie();
  for (int i = 0; i < 9; ++i) {
    double x = dist(rng);
    stat.Push(x);
    resumed.Push(x);
  }
  EXPECT_EQ(resumed.Serialize(), stat.Serialize());

  EXPECT_FALSE(RunningStat::Parse("").ok());
  EXPECT_FALSE(RunningStat::Parse("stat 3 deadbeef").ok());
  EXPECT_FALSE(RunningStat::Parse("stats 0").ok());
  EXPECT_FALSE(RunningStat::Parse("stat -1 0 0 0 0 0 0 0").ok());
}

// ---------------------------------------------------------------------------
// Racing session determinism
// ---------------------------------------------------------------------------

::testing::AssertionResult ResultsBitIdentical(const SessionResult& a,
                                               const SessionResult& b) {
  if (a.iterations_run != b.iterations_run) {
    return ::testing::AssertionFailure()
           << "iterations_run " << a.iterations_run << " vs "
           << b.iterations_run;
  }
  if (!SameBits(a.default_performance, b.default_performance) ||
      !SameBits(a.best_performance, b.best_performance) ||
      !(a.best_config == b.best_config) || a.kb.size() != b.kb.size()) {
    return ::testing::AssertionFailure() << "summary fields differ";
  }
  if (!SameBits(a.simulated_work, b.simulated_work)) {
    return ::testing::AssertionFailure()
           << "simulated_work " << a.simulated_work << " vs "
           << b.simulated_work;
  }
  for (int i = 0; i < a.kb.size(); ++i) {
    const IterationRecord& ra = a.kb.record(i);
    const IterationRecord& rb = b.kb.record(i);
    if (ra.crashed != rb.crashed || !SameBits(ra.measured, rb.measured) ||
        !SameBits(ra.objective, rb.objective) || !(ra.config == rb.config) ||
        ra.point.size() != rb.point.size()) {
      return ::testing::AssertionFailure() << "record " << i << " differs";
    }
    for (size_t j = 0; j < ra.point.size(); ++j) {
      if (!SameBits(ra.point[j], rb.point[j])) {
        return ::testing::AssertionFailure()
               << "record " << i << " point[" << j << "] differs";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

struct Stack {
  std::unique_ptr<dbsim::SimulatedPostgres> objective;
  std::unique_ptr<SpaceAdapter> adapter;
  std::unique_ptr<Optimizer> optimizer;
  std::unique_ptr<TuningSession> session;
};

/// Noisy TPC-C through the discrete-event engine (short runs genuinely
/// noisier), hesbo8, random search — the racing grid's shape at a CI
/// friendly transaction count. `detached` builds an ask/tell-only
/// session; the test then drives evaluation itself.
Stack MakeRacingStack(uint64_t seed, SessionOptions options,
                      bool detached = false) {
  Stack stack;
  dbsim::SimulatedPostgresOptions db_options;
  db_options.engine = dbsim::EngineKind::kDiscreteEvent;
  db_options.des_transactions = 2000;
  db_options.noise_seed = seed;
  stack.objective = std::make_unique<dbsim::SimulatedPostgres>(
      dbsim::TpcC(), db_options);
  stack.adapter = std::move(AdapterRegistry::Global().Create(
                                "hesbo8", &stack.objective->config_space(),
                                seed))
                      .ValueOrDie();
  stack.optimizer = std::move(OptimizerRegistry::Global().Create(
                                  "random", stack.adapter->search_space(),
                                  seed))
                        .ValueOrDie();
  if (detached) {
    stack.session = std::make_unique<TuningSession>(
        &stack.objective->config_space(), stack.objective->maximize(),
        stack.adapter.get(), stack.optimizer.get(), options);
  } else {
    stack.session = std::make_unique<TuningSession>(
        stack.objective.get(), stack.adapter.get(), stack.optimizer.get(),
        options);
  }
  return stack;
}

RacingOptions SmallRacing() {
  RacingOptions racing;
  racing.cohort = 4;
  racing.rungs = 3;
  racing.min_fidelity = 0.25;
  racing.eta = 2.0;
  racing.ci_z = 1.96;
  return racing;
}

// Results are recorded in suggestion order and rung commits happen in
// draw order regardless of evaluation scheduling, so a fixed seed must
// produce one bit pattern at every executor width.
TEST(RacingDeterminismTest, BitIdenticalAcrossThreadCounts) {
  SessionOptions options;
  options.num_iterations = 3;
  options.racing = SmallRacing();
  std::vector<SessionResult> results;
  for (int threads : {1, 2, 8}) {
    options.num_threads = threads;
    Stack stack = MakeRacingStack(/*seed=*/42, options);
    results.push_back(stack.session->Run());
  }
  EXPECT_TRUE(ResultsBitIdentical(results[0], results[1]));
  EXPECT_TRUE(ResultsBitIdentical(results[0], results[2]));
  // Racing actually raced: three races committed exactly three
  // observations (plus the baseline) while spending more than three
  // full-run units of measurement on the tournament.
  EXPECT_EQ(results[0].iterations_run, 3);
  EXPECT_EQ(results[0].kb.size(), 3);
  EXPECT_GT(results[0].simulated_work, 4.0);
}

enum class TellOrder { kForward, kReverse, kEvensThenOdds, kSingleAsks };

/// Drives a detached racing session to completion: trials are always
/// *evaluated* in ask (slot) order on the one shared simulator — so
/// every variant measures identical values — and then told back in the
/// permuted order under test. Only the Tell interleaving differs.
void DriveDetached(uint64_t seed, const SessionOptions& options,
                   TellOrder order, SessionResult* out) {
  Stack stack = MakeRacingStack(seed, options, /*detached=*/true);
  TuningSession& session = *stack.session;

  Result<Trial> baseline = session.Ask();
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  {
    EvalResult eval = stack.objective->Evaluate(baseline->config);
    TrialResult result;
    result.trial_id = baseline->id;
    result.value = eval.value;
    result.outcome = eval.EffectiveOutcome();
    result.metrics = eval.metrics;
    result.fidelity = eval.fidelity;
    Status told = session.Tell(result);
    ASSERT_TRUE(told.ok()) << told.ToString();
  }

  while (!session.finished()) {
    std::vector<Trial> rung;
    if (order == TellOrder::kSingleAsks) {
      // Drain the rung one Ask at a time; the session answers
      // FailedPrecondition once the rung is fully handed out.
      for (;;) {
        Result<Trial> trial = session.Ask();
        if (!trial.ok()) break;
        rung.push_back(std::move(trial).ValueOrDie());
      }
    } else {
      Result<std::vector<Trial>> batch = session.AskBatch(64);
      if (!batch.ok()) break;
      rung = std::move(batch).ValueOrDie();
    }
    if (rung.empty()) break;

    std::vector<TrialResult> results;
    results.reserve(rung.size());
    for (const Trial& trial : rung) {
      EvalResult eval = trial.fidelity < 1.0
                            ? stack.objective->EvaluateAt(trial.config,
                                                          trial.fidelity)
                            : stack.objective->Evaluate(trial.config);
      TrialResult result;
      result.trial_id = trial.id;
      result.value = eval.value;
      result.outcome = eval.EffectiveOutcome();
      result.metrics = eval.metrics;
      result.fidelity = eval.fidelity;
      results.push_back(std::move(result));
    }

    std::vector<size_t> tell_order(results.size());
    std::iota(tell_order.begin(), tell_order.end(), size_t{0});
    switch (order) {
      case TellOrder::kReverse:
        std::reverse(tell_order.begin(), tell_order.end());
        break;
      case TellOrder::kEvensThenOdds:
        std::stable_partition(tell_order.begin(), tell_order.end(),
                              [](size_t i) { return i % 2 == 0; });
        break;
      default:
        break;
    }
    for (size_t i : tell_order) {
      Status told = session.Tell(results[i]);
      ASSERT_TRUE(told.ok()) << told.ToString();
    }
  }
  *out = session.Snapshot();
}

// Rung results may arrive in any order; the session buffers them and
// commits in slot (= draw) order, so survivors, champions, and the
// committed trajectory are invariant under the Tell interleaving.
TEST(RacingDeterminismTest, TellInterleavingDoesNotChangeTrajectory) {
  SessionOptions options;
  options.num_iterations = 3;
  options.racing = SmallRacing();
  SessionResult forward;
  DriveDetached(42, options, TellOrder::kForward, &forward);
  ASSERT_EQ(forward.iterations_run, 3);
  ASSERT_EQ(forward.kb.size(), 3);
  for (TellOrder order : {TellOrder::kReverse, TellOrder::kEvensThenOdds,
                          TellOrder::kSingleAsks}) {
    SessionResult permuted;
    DriveDetached(42, options, order, &permuted);
    EXPECT_TRUE(ResultsBitIdentical(forward, permuted))
        << "tell order " << static_cast<int>(order);
  }
}

// cohort 1 + rungs 1 degenerates to one full-fidelity candidate per
// iteration drawn through Suggest() — the identical optimizer call
// sequence and evaluation stream as the non-racing session, so the
// whole trajectory (and the simulated work) must be bit-for-bit equal.
TEST(RacingDeterminismTest, DegenerateRaceReducesToNonRacingSession) {
  SessionOptions plain;
  plain.num_iterations = 6;
  Stack plain_stack = MakeRacingStack(/*seed=*/42, plain);
  SessionResult plain_result = plain_stack.session->Run();

  SessionOptions degenerate = plain;
  RacingOptions racing;
  racing.cohort = 1;
  racing.rungs = 1;
  degenerate.racing = racing;
  Stack racing_stack = MakeRacingStack(/*seed=*/42, degenerate);
  SessionResult racing_result = racing_stack.session->Run();

  EXPECT_TRUE(ResultsBitIdentical(plain_result, racing_result));
  // Every committed trial ran at full fidelity: work = baseline + 6.
  EXPECT_TRUE(SameBits(racing_result.simulated_work, 7.0));
}

TEST(RacingDeterminismTest, RungTrialsAreExemptFromExpiry) {
  SessionOptions options;
  options.num_iterations = 2;
  options.racing = SmallRacing();
  options.pending_deadline_ms = 1;
  Stack stack = MakeRacingStack(/*seed=*/42, options, /*detached=*/true);
  TuningSession& session = *stack.session;

  Result<Trial> baseline = session.Ask();
  ASSERT_TRUE(baseline.ok());
  TrialResult baseline_result;
  baseline_result.trial_id = baseline->id;
  baseline_result.value = 1000.0;
  ASSERT_TRUE(session.Tell(baseline_result).ok());

  Result<std::vector<Trial>> rung = session.AskBatch(64);
  ASSERT_TRUE(rung.ok());
  ASSERT_EQ(rung->size(), 4u);

  // Explicit expiry of a rung slot is refused...
  Status expired = session.Expire(rung->front().id);
  EXPECT_EQ(expired.code(), StatusCode::kFailedPrecondition)
      << expired.ToString();
  // ...and the deadline sweep skips rung trials no matter how overdue
  // (9e12 ms is far past any wall clock this test runs under).
  EXPECT_TRUE(session.ExpireOverdue(9'000'000'000'000).empty());

  // The rung still completes normally: telling every slot commits it
  // and opens the next rung (survivors become the new pending trials —
  // the race has not committed its champion yet).
  for (const Trial& trial : *rung) {
    TrialResult result;
    result.trial_id = trial.id;
    result.value = 900.0;
    ASSERT_TRUE(session.Tell(result).ok());
  }
  EXPECT_GT(session.pending_trials(), 0);
  EXPECT_EQ(session.iterations_run(), 0);
  EXPECT_FALSE(session.finished());
}

// ---------------------------------------------------------------------------
// The work/quality acceptance pin on the shared bench grid
// ---------------------------------------------------------------------------

// Racing must reach the fixed-budget session's best-found quality
// (within 2%, by noise-free model throughput of the best config) at no
// more than half the simulated measurement work. Same grid definition
// bench/bm_racing.cc emits to BENCH_racing.json, so this pin and the
// CI regression baseline cannot drift apart.
TEST(RacingGridTest, HalfTheWorkWithinTwoPercentOfFixedBudget) {
  constexpr int kSeeds = 5;
  constexpr int kFixedIters = 40;
  constexpr int kRaces = 5;
  double sum_work_ratio = 0.0;
  double sum_quality_ratio = 0.0;
  for (int s = 0; s < kSeeds; ++s) {
    uint64_t seed = bench::kRacingGridBaseSeed + s;
    bench::RacingCell fixed =
        bench::RunRacingGridCell(seed, kFixedIters, /*racing=*/false);
    bench::RacingCell racing =
        bench::RunRacingGridCell(seed, kRaces, /*racing=*/true);
    ASSERT_GT(fixed.session.simulated_work, 0.0);
    ASSERT_GT(racing.true_best, 0.0);
    double work_ratio =
        racing.session.simulated_work / fixed.session.simulated_work;
    // Each seed individually stays under the work target with slack
    // for grid evolution (the committed baseline tracks exact values).
    EXPECT_LT(work_ratio, 0.5)
        << "seed " << seed << ": racing spent " << work_ratio
        << "x the fixed-budget simulated work";
    sum_work_ratio += work_ratio;
    sum_quality_ratio += fixed.true_best / racing.true_best;
  }
  EXPECT_LE(sum_work_ratio / kSeeds, 0.5);
  EXPECT_LE(sum_quality_ratio / kSeeds, 1.02);
}

}  // namespace
}  // namespace llamatune
