#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/dbsim/workloads.h"
#include "src/harness/tuner.h"
#include "src/knobs/config_space.h"
#include "src/service/tuning_service.h"

namespace llamatune {
namespace {

using service::SessionSpec;
using service::SessionStatus;
using service::TuningService;

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// The "external DBMS" of these tests: a deterministic closed-form
/// performance surface per job, measured outside the service.
double ExternalMeasure(int job, const Configuration& config) {
  double x = config[0] / 100.0;
  double y = config[1];
  double peak_x = 0.2 + 0.08 * job;
  double peak_y = 0.9 - 0.07 * job;
  return 1000.0 - 900.0 * ((x - peak_x) * (x - peak_x) +
                           (y - peak_y) * (y - peak_y)) +
         25.0 * job;
}

class ServiceFixture : public ::testing::Test {
 protected:
  ServiceFixture()
      : space_(*ConfigSpace::Create({IntegerKnob("cache_mb", 0, 100, 50),
                                     RealKnob("target_ratio", 0.0, 1.0, 0.5)})) {
  }

  SessionSpec ExternalSpec(int job) const {
    SessionSpec spec;
    spec.space = &space_;
    spec.optimizer_key = "random";
    spec.adapter_key = "identity";
    spec.seed = 100 + job;
    spec.num_iterations = 20;
    return spec;
  }

  /// Drives one external session to completion through ask/tell.
  static void DriveExternal(TuningService& service, const std::string& name,
                            int job) {
    while (true) {
      Result<Trial> trial = service.Ask(name);
      if (!trial.ok()) break;
      TrialResult result;
      result.trial_id = trial->id;
      result.value = ExternalMeasure(job, trial->config);
      Status told = service.Tell(name, result);
      ASSERT_TRUE(told.ok()) << told.ToString();
    }
  }

  ConfigSpace space_;
};

TEST_F(ServiceFixture, EightConcurrentExternalSessionsAreDeterministic) {
  // Reference results: each job driven alone through a plain detached
  // tuner stack.
  std::vector<SessionResult> solo;
  for (int job = 0; job < 8; ++job) {
    Result<std::unique_ptr<harness::Tuner>> tuner =
        harness::TunerBuilder()
            .Space(&space_)
            .Optimizer("random")
            .Adapter("identity")
            .Seed(100 + job)
            .Iterations(20)
            .BuildDetached();
    ASSERT_TRUE(tuner.ok());
    while (true) {
      Result<Trial> trial = (*tuner)->Ask();
      if (!trial.ok()) break;
      TrialResult result;
      result.trial_id = trial->id;
      result.value = ExternalMeasure(job, trial->config);
      ASSERT_TRUE((*tuner)->Tell(result).ok());
    }
    solo.push_back((*tuner)->session().Snapshot());
  }

  // The service hosts all 8 sessions at once, each driven by its own
  // thread (asks/tells from different sessions interleave freely).
  TuningService service;
  for (int job = 0; job < 8; ++job) {
    ASSERT_TRUE(
        service.CreateSession("job-" + std::to_string(job), ExternalSpec(job))
            .ok());
  }
  EXPECT_EQ(service.session_count(), 8);

  std::vector<std::thread> workers;
  for (int job = 0; job < 8; ++job) {
    workers.emplace_back([&service, job] {
      DriveExternal(service, "job-" + std::to_string(job), job);
    });
  }
  for (std::thread& worker : workers) worker.join();

  // Per-session results are bit-for-bit identical to the solo runs,
  // regardless of the concurrent interleaving.
  for (int job = 0; job < 8; ++job) {
    Result<SessionResult> closed = service.Close("job-" + std::to_string(job));
    ASSERT_TRUE(closed.ok());
    EXPECT_EQ(closed->iterations_run, solo[job].iterations_run);
    EXPECT_TRUE(
        SameBits(closed->best_performance, solo[job].best_performance));
    EXPECT_TRUE(SameBits(closed->default_performance,
                         solo[job].default_performance));
    ASSERT_EQ(closed->kb.size(), solo[job].kb.size());
    for (int i = 0; i < closed->kb.size(); ++i) {
      EXPECT_TRUE(SameBits(closed->kb.record(i).measured,
                           solo[job].kb.record(i).measured));
      EXPECT_EQ(closed->kb.record(i).config, solo[job].kb.record(i).config);
    }
  }
  EXPECT_EQ(service.session_count(), 0);
}

TEST_F(ServiceFixture, CheckpointResumeThroughService) {
  TuningService service;
  SessionSpec spec = ExternalSpec(3);
  ASSERT_TRUE(service.CreateSession("job", spec).ok());

  // Drive half the budget, checkpoint, abandon the session.
  for (int round = 0; round < 11; ++round) {
    Result<Trial> trial = service.Ask("job");
    ASSERT_TRUE(trial.ok());
    TrialResult result;
    result.trial_id = trial->id;
    result.value = ExternalMeasure(3, trial->config);
    ASSERT_TRUE(service.Tell("job", result).ok());
  }
  Result<std::string> checkpoint = service.Checkpoint("job");
  ASSERT_TRUE(checkpoint.ok());
  ASSERT_TRUE(service.Close("job").ok());

  // Resume under a new name and finish.
  ASSERT_TRUE(service.Resume("job-resumed", spec, *checkpoint).ok());
  Result<SessionStatus> status = service.GetStatus("job-resumed");
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->iterations_run, 10);  // 11 rounds = baseline + 10
  DriveExternal(service, "job-resumed", 3);
  Result<SessionResult> resumed = service.Close("job-resumed");
  ASSERT_TRUE(resumed.ok());

  // Reference: the same job driven to completion without interruption.
  TuningService reference_service;
  ASSERT_TRUE(reference_service.CreateSession("ref", spec).ok());
  DriveExternal(reference_service, "ref", 3);
  Result<SessionResult> reference = reference_service.Close("ref");
  ASSERT_TRUE(reference.ok());

  ASSERT_EQ(resumed->kb.size(), reference->kb.size());
  for (int i = 0; i < resumed->kb.size(); ++i) {
    EXPECT_TRUE(SameBits(resumed->kb.record(i).measured,
                         reference->kb.record(i).measured));
  }
  EXPECT_TRUE(
      SameBits(resumed->best_performance, reference->best_performance));
}

TEST_F(ServiceFixture, WorkloadSessionsStepAndDrive) {
  TuningService service;
  SessionSpec spec;
  spec.workload = dbsim::YcsbA();
  spec.optimizer_key = "random";
  spec.adapter_key = "llamatune";
  spec.seed = 5;
  spec.num_iterations = 6;
  ASSERT_TRUE(service.CreateSession("sim", spec).ok());

  bool progressed = false;
  ASSERT_TRUE(service.Step("sim", &progressed).ok());  // baseline
  EXPECT_TRUE(progressed);
  ASSERT_TRUE(service.Drive("sim").ok());

  Result<SessionStatus> status = service.GetStatus("sim");
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->iterations_run, 6);
  EXPECT_TRUE(status->finished);
  EXPECT_FALSE(status->external);
  EXPECT_GT(status->best_performance, 0.0);

  ASSERT_TRUE(service.Step("sim", &progressed).ok());
  EXPECT_FALSE(progressed);
  ASSERT_TRUE(service.Close("sim").ok());
}

TEST_F(ServiceFixture, ErrorsSurfaceAsStatuses) {
  TuningService service;
  SessionSpec spec = ExternalSpec(0);

  // Unknown names carry the session-specific code — distinct from the
  // generic kNotFound a bad registry key produces below, so remote
  // callers can tell them apart without string matching.
  EXPECT_EQ(service.Ask("nope").status().code(), StatusCode::kSessionNotFound);
  EXPECT_EQ(service.Checkpoint("nope").status().code(),
            StatusCode::kSessionNotFound);
  EXPECT_EQ(service.Close("nope").status().code(),
            StatusCode::kSessionNotFound);
  EXPECT_EQ(service.GetStatus("nope").status().code(),
            StatusCode::kSessionNotFound);

  // Duplicate create.
  ASSERT_TRUE(service.CreateSession("job", spec).ok());
  EXPECT_EQ(service.CreateSession("job", spec).code(),
            StatusCode::kSessionAlreadyExists);

  // Step on an external session.
  EXPECT_EQ(service.Step("job").code(), StatusCode::kFailedPrecondition);

  // Bad specs.
  SessionSpec empty;
  EXPECT_EQ(service.CreateSession("bad", empty).code(),
            StatusCode::kInvalidArgument);
  SessionSpec both = spec;
  both.workload = dbsim::YcsbA();
  EXPECT_EQ(service.CreateSession("bad", both).code(),
            StatusCode::kInvalidArgument);
  SessionSpec bad_key = spec;
  bad_key.optimizer_key = "no-such-optimizer";
  EXPECT_EQ(service.CreateSession("bad", bad_key).code(),
            StatusCode::kNotFound);

  // Resume with a mismatched spec fails loudly and registers nothing.
  Result<Trial> baseline = service.Ask("job");
  ASSERT_TRUE(baseline.ok());
  TrialResult result;
  result.trial_id = baseline->id;
  result.value = ExternalMeasure(0, baseline->config);
  ASSERT_TRUE(service.Tell("job", result).ok());
  Result<std::string> checkpoint = service.Checkpoint("job");
  ASSERT_TRUE(checkpoint.ok());
  SessionSpec other_options = spec;
  other_options.num_iterations = 99;
  EXPECT_FALSE(service.Resume("resumed", other_options, *checkpoint).ok());
  EXPECT_EQ(service.GetStatus("resumed").status().code(),
            StatusCode::kSessionNotFound);

  // Resume into a live name is a session collision, not a generic
  // AlreadyExists.
  EXPECT_EQ(service.Resume("job", spec, *checkpoint).code(),
            StatusCode::kSessionAlreadyExists);
}

TEST_F(ServiceFixture, StatusCarriesTimestampsAndActivity) {
  TuningService service;
  int64_t before = service::NowUnixMillis();
  ASSERT_TRUE(service.CreateSession("job", ExternalSpec(0)).ok());

  Result<SessionStatus> created = service.GetStatus("job");
  ASSERT_TRUE(created.ok());
  EXPECT_GE(created->created_unix_ms, before);
  EXPECT_EQ(created->last_activity_unix_ms, created->created_unix_ms);

  // Status polling is not activity; asking is.
  Result<SessionStatus> polled = service.GetStatus("job");
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(polled->last_activity_unix_ms, created->last_activity_unix_ms);

  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_TRUE(service.Ask("job").ok());
  Result<SessionStatus> asked = service.GetStatus("job");
  ASSERT_TRUE(asked.ok());
  EXPECT_GT(asked->last_activity_unix_ms, created->last_activity_unix_ms);
  EXPECT_EQ(asked->created_unix_ms, created->created_unix_ms);
  EXPECT_EQ(asked->pending_trials, 1);
}

TEST_F(ServiceFixture, ListSessionsReportsAll) {
  TuningService service;
  for (int job = 0; job < 3; ++job) {
    ASSERT_TRUE(
        service.CreateSession("job-" + std::to_string(job), ExternalSpec(job))
            .ok());
  }
  std::vector<SessionStatus> statuses = service.ListSessions();
  ASSERT_EQ(statuses.size(), 3u);
  EXPECT_EQ(statuses[0].name, "job-0");
  EXPECT_EQ(statuses[2].name, "job-2");
  for (const SessionStatus& status : statuses) {
    EXPECT_TRUE(status.external);
    EXPECT_EQ(status.iterations_run, 0);
    EXPECT_EQ(status.num_iterations, 20);
    EXPECT_FALSE(status.finished);
    EXPECT_EQ(status.optimizer_key, "random");
    EXPECT_EQ(status.adapter_key, "identity");
  }
}

}  // namespace
}  // namespace llamatune
