#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "src/common/serde.h"
#include "src/core/trial.h"
#include "src/optimizer/history_io.h"

namespace llamatune {
namespace {

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

TEST(SerdeTest, DoubleBitsRoundTripExactly) {
  const double values[] = {0.0,
                           -0.0,
                           1.0,
                           -1.0,
                           1.0 / 3.0,
                           -1e308,
                           5e-324,  // smallest denormal
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN()};
  for (double v : values) {
    Result<double> back = DecodeDoubleBits(EncodeDoubleBits(v));
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(SameBits(v, *back)) << "value " << v;
  }
  EXPECT_EQ(EncodeDoubleBits(1.0), "3ff0000000000000");
}

TEST(SerdeTest, DecodeRejectsMalformedTokens) {
  EXPECT_FALSE(DecodeDoubleBits("").ok());
  EXPECT_FALSE(DecodeDoubleBits("3ff").ok());
  EXPECT_FALSE(DecodeDoubleBits("3ff000000000000g").ok());
  EXPECT_FALSE(DecodeDoubleBits("3ff00000000000000").ok());  // 17 digits
}

TEST(SerdeTest, ParseInt64RejectsJunk) {
  ASSERT_TRUE(ParseInt64("-42").ok());
  EXPECT_EQ(*ParseInt64("-42"), -42);
  EXPECT_FALSE(ParseInt64("42x").ok());
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("abc").ok());
}

TEST(TrialTest, TrialRoundTrips) {
  Trial trial;
  trial.id = 17;
  trial.point = {0.25, -0.5, 1.0 / 3.0};
  trial.config = Configuration({128.0, 0.875, 3.0});
  trial.is_baseline = false;

  Result<Trial> back = ParseTrial(SerializeTrial(trial));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->id, trial.id);
  EXPECT_EQ(back->is_baseline, trial.is_baseline);
  ASSERT_EQ(back->point.size(), trial.point.size());
  for (size_t i = 0; i < trial.point.size(); ++i) {
    EXPECT_TRUE(SameBits(back->point[i], trial.point[i]));
  }
  EXPECT_EQ(back->config, trial.config);
}

TEST(TrialTest, BaselineTrialRoundTrips) {
  Trial trial;
  trial.id = 1;
  trial.is_baseline = true;
  trial.config = Configuration({50.0, 0.5});

  Result<Trial> back = ParseTrial(SerializeTrial(trial));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->is_baseline);
  EXPECT_TRUE(back->point.empty());
  EXPECT_EQ(back->config, trial.config);
}

TEST(TrialTest, TrialResultRoundTrips) {
  TrialResult result;
  result.trial_id = 99;
  result.value = 1234.5678;
  result.outcome = TrialOutcome::kCrashed;
  result.metrics = {1.0, -0.0, 2.5};

  Result<TrialResult> back = ParseTrialResult(SerializeTrialResult(result));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->trial_id, result.trial_id);
  EXPECT_EQ(back->outcome, result.outcome);
  EXPECT_TRUE(back->crashed());
  EXPECT_TRUE(SameBits(back->value, result.value));
  ASSERT_EQ(back->metrics.size(), result.metrics.size());
  for (size_t i = 0; i < result.metrics.size(); ++i) {
    EXPECT_TRUE(SameBits(back->metrics[i], result.metrics[i]));
  }
}

TEST(TrialTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseTrial("").ok());
  EXPECT_FALSE(ParseTrial("result 1 0 0000000000000000 metrics 0").ok());
  EXPECT_FALSE(ParseTrial("trial 1 0 point 2 3ff0000000000000").ok());
  EXPECT_FALSE(ParseTrialResult("trial 1 0 point 0 config 0").ok());
  EXPECT_FALSE(ParseTrialResult("result 1 0").ok());
}

TEST(HistoryIoTest, HistoryRoundTripsBitForBit) {
  std::vector<Observation> history;
  history.push_back({{0.1, 0.2, 0.3}, 55.5});
  history.push_back({{1.0 / 7.0, -0.0}, -1e-9});
  history.push_back({{}, 0.0});

  std::string text = SerializeHistory(history);
  Result<std::vector<Observation>> back =
      ParseHistory(text, static_cast<int>(history.size()));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(HistoryBitsEqual(history, *back));
}

TEST(HistoryIoTest, CountMismatchAndGarbageFail) {
  std::vector<Observation> history = {{{0.5}, 1.0}};
  std::string text = SerializeHistory(history);
  EXPECT_FALSE(ParseHistory(text, 2).ok());
  EXPECT_FALSE(ParseHistory("obs 1 zzz", 1).ok());
  EXPECT_FALSE(ParseHistory("nonsense", -1).ok());
}

TEST(HistoryIoTest, BitsEqualDistinguishesValues) {
  std::vector<Observation> a = {{{0.5}, 1.0}};
  std::vector<Observation> b = {{{0.5}, 1.0}};
  EXPECT_TRUE(HistoryBitsEqual(a, b));
  b[0].value = std::nextafter(1.0, 2.0);
  EXPECT_FALSE(HistoryBitsEqual(a, b));
  b[0].value = 1.0;
  b[0].point[0] = -0.5;
  EXPECT_FALSE(HistoryBitsEqual(a, b));
  b.clear();
  EXPECT_FALSE(HistoryBitsEqual(a, b));
}

}  // namespace
}  // namespace llamatune
