#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/optimizer/gp_bo.h"
#include "src/optimizer/optimizer.h"
#include "src/optimizer/smac.h"

// Batch determinism: for the batch-aware optimizers, a fixed (seed,
// batch size) must produce bit-for-bit identical batches at ANY
// executor count. The shared ThreadPool is sized once per process by
// LLAMATUNE_NUM_THREADS, so the sweep here varies the per-optimizer
// executor caps (GpOptions::num_threads / SmacOptions::num_threads) —
// the exact knob that decides how many pool workers score candidates —
// across serial, two-executor, and full-pool settings. The pinned
// contract is the one the README states: RNG draws happen before
// parallel sections, slot i writes only slot i, and reductions run in
// index order, so executor scheduling can never leak into results.

namespace llamatune {
namespace {

SearchSpace TestSpace() {
  return SearchSpace({SearchDim::Continuous(0.0, 1.0),
                      SearchDim::Continuous(-2.0, 2.0),
                      SearchDim::Continuous(0.0, 10.0, 1000),
                      SearchDim::Categorical(3)});
}

double Objective(const std::vector<double>& x) {
  double acc = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    acc += std::cos(1.7 * x[i] + static_cast<double>(i)) -
           0.05 * x[i] * x[i];
  }
  return acc;
}

bool BitsEqual(const std::vector<std::vector<double>>& a,
               const std::vector<std::vector<double>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    if (!a[i].empty() &&
        std::memcmp(a[i].data(), b[i].data(),
                    a[i].size() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

/// Runs `rounds` SuggestBatch/ObserveBatch rounds and returns every
/// suggested batch, concatenated in order.
std::vector<std::vector<double>> DriveRounds(Optimizer* opt, int rounds,
                                             int batch_size) {
  std::vector<std::vector<double>> all;
  for (int r = 0; r < rounds; ++r) {
    std::vector<std::vector<double>> batch = opt->SuggestBatch(batch_size);
    EXPECT_EQ(batch.size(), static_cast<size_t>(batch_size)) << "round " << r;
    std::vector<double> values;
    values.reserve(batch.size());
    for (const auto& point : batch) values.push_back(Objective(point));
    opt->ObserveBatch(batch, values);
    for (auto& point : batch) all.push_back(std::move(point));
  }
  return all;
}

std::unique_ptr<Optimizer> MakeGpBo(GpBatchMode mode, int num_threads,
                                    uint64_t seed) {
  GpBoOptions options;
  options.batch_mode = mode;
  options.gp.num_threads = num_threads;
  return std::make_unique<GpBoOptimizer>(TestSpace(), options, seed);
}

std::unique_ptr<Optimizer> MakeSmac(int num_threads, uint64_t seed) {
  SmacOptions options;
  options.num_threads = num_threads;
  return std::make_unique<SmacOptimizer>(TestSpace(), options, seed);
}

struct DeterminismCase {
  const char* name;
  std::unique_ptr<Optimizer> (*make)(int num_threads, uint64_t seed);
};

std::unique_ptr<Optimizer> MakeQei(int t, uint64_t s) {
  return MakeGpBo(GpBatchMode::kFantasyQei, t, s);
}
std::unique_ptr<Optimizer> MakeLp(int t, uint64_t s) {
  return MakeGpBo(GpBatchMode::kLocalPenalization, t, s);
}

class BatchDeterminism : public ::testing::TestWithParam<DeterminismCase> {};

TEST_P(BatchDeterminism, IdenticalBatchesAtAnyExecutorCap) {
  const DeterminismCase& c = GetParam();
  // 8 rounds of 4 = 32 suggestions: init design, the init/model
  // boundary, and many model-based rounds all covered.
  constexpr int kRounds = 8;
  constexpr int kBatch = 4;
  constexpr uint64_t kSeed = 1234;
  auto serial = c.make(/*num_threads=*/1, kSeed);
  std::vector<std::vector<double>> expected =
      DriveRounds(serial.get(), kRounds, kBatch);
  for (int executors : {2, 0 /* full pool */}) {
    auto opt = c.make(executors, kSeed);
    std::vector<std::vector<double>> got =
        DriveRounds(opt.get(), kRounds, kBatch);
    EXPECT_TRUE(BitsEqual(expected, got))
        << c.name << ": batches diverged at executor cap " << executors;
  }
}

TEST_P(BatchDeterminism, RepeatRunsAreIdentical) {
  const DeterminismCase& c = GetParam();
  auto a = c.make(0, 77);
  auto b = c.make(0, 77);
  EXPECT_TRUE(BitsEqual(DriveRounds(a.get(), 6, 4), DriveRounds(b.get(), 6, 4)))
      << c.name;
}

TEST_P(BatchDeterminism, DifferentSeedsDiverge) {
  const DeterminismCase& c = GetParam();
  auto a = c.make(0, 1);
  auto b = c.make(0, 2);
  EXPECT_FALSE(BitsEqual(DriveRounds(a.get(), 4, 4), DriveRounds(b.get(), 4, 4)))
      << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    BatchAwareOptimizers, BatchDeterminism,
    ::testing::Values(DeterminismCase{"gpbo-qei", MakeQei},
                      DeterminismCase{"gpbo-lp", MakeLp},
                      DeterminismCase{"smac", MakeSmac}),
    [](const ::testing::TestParamInfo<DeterminismCase>& info) {
      std::string name = info.param.name;
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace llamatune
