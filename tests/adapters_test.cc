// Adapter behavior through the registry pipeline (the legacy
// IdentityAdapter/LlamaTuneAdapter classes survive only as bit-for-bit
// regression oracles in tests/adapter_pipeline_test.cc).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/common/rng.h"
#include "src/core/adapter_registry.h"
#include "src/core/subset_adapter.h"
#include "src/dbsim/knob_catalog.h"
#include "src/sampling/uniform.h"

namespace llamatune {
namespace {

std::unique_ptr<SpaceAdapter> MakeAdapter(const std::string& key,
                                          const ConfigSpace* space,
                                          uint64_t seed = 1) {
  return std::move(AdapterRegistry::Global().Create(key, space, seed))
      .ValueOrDie();
}

class AdapterFixture : public ::testing::Test {
 protected:
  ConfigSpace space_ = dbsim::PostgresV96Catalog();
};

TEST_F(AdapterFixture, IdentityDimensionPerKnob) {
  auto adapter = MakeAdapter("identity", &space_);
  EXPECT_EQ(adapter->search_space().num_dims(), space_.num_knobs());
}

TEST_F(AdapterFixture, IdentityProjectsValidConfigs) {
  auto adapter = MakeAdapter("identity", &space_);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    auto p = UniformSample(adapter->search_space(), &rng);
    Configuration c = adapter->Project(p);
    EXPECT_TRUE(space_.ValidateConfiguration(c).ok());
  }
}

TEST_F(AdapterFixture, IdentityWithSvbBiasesHybridKnobs) {
  auto adapter = MakeAdapter("identity+svb0.2", &space_);
  Rng rng(2);
  int bfa_idx = space_.IndexOf("backend_flush_after");
  ASSERT_GE(bfa_idx, 0);
  int specials = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    auto p = UniformSample(adapter->search_space(), &rng);
    Configuration c = adapter->Project(p);
    if (c[bfa_idx] == 0.0) ++specials;
  }
  EXPECT_NEAR(static_cast<double>(specials) / n, 0.2, 0.03);
  EXPECT_NE(adapter->name().find("svb0.2"), std::string::npos);
}

TEST_F(AdapterFixture, IdentityBucketizedSpace) {
  auto adapter = MakeAdapter("identity+bucket1000", &space_);
  for (int i = 0; i < adapter->search_space().num_dims(); ++i) {
    const SearchDim& d = adapter->search_space().dim(i);
    if (d.type == SearchDim::Type::kContinuous) {
      EXPECT_LE(d.num_buckets, 1000);
      EXPECT_GT(d.num_buckets, 0);
    }
  }
}

TEST_F(AdapterFixture, LlamaTuneSpaceIsBucketizedLowDim) {
  // "llamatune" = paper defaults: HeSBO-16, 20% SVB, K=10000.
  auto adapter = MakeAdapter("llamatune", &space_);
  ASSERT_EQ(adapter->search_space().num_dims(), 16);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(adapter->search_space().dim(i).num_buckets, 10000);
    EXPECT_EQ(adapter->search_space().dim(i).lo, -1.0);
    EXPECT_EQ(adapter->search_space().dim(i).hi, 1.0);
  }
  EXPECT_NE(adapter->name().find("hesbo16"), std::string::npos);
}

TEST_F(AdapterFixture, LlamaTuneProjectsValidConfigs) {
  for (const char* key : {"hesbo16+svb0.2+bucket10000",
                          "rembo16+svb0.2+bucket10000"}) {
    auto adapter = MakeAdapter(key, &space_, 3);
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
      auto p = UniformSample(adapter->search_space(), &rng);
      Configuration c = adapter->Project(p);
      EXPECT_TRUE(space_.ValidateConfiguration(c).ok());
    }
  }
}

TEST_F(AdapterFixture, LlamaTuneSpecialValueMassOnHybrids) {
  auto adapter = MakeAdapter("llamatune", &space_);
  Rng rng(4);
  int bfa_idx = space_.IndexOf("backend_flush_after");
  int specials = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    auto p = UniformSample(adapter->search_space(), &rng);
    if (adapter->Project(p)[bfa_idx] == 0.0) ++specials;
  }
  // The projected marginal is uniform-ish, so the special band should
  // receive roughly the configured 20% mass.
  EXPECT_NEAR(static_cast<double>(specials) / n, 0.2, 0.04);
}

TEST_F(AdapterFixture, ZeroSvbOnlyHitsSpecialAtBoundary) {
  auto adapter = MakeAdapter("hesbo16+bucket10000", &space_);
  Rng rng(5);
  int bfa_idx = space_.IndexOf("backend_flush_after");
  int specials = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    auto p = UniformSample(adapter->search_space(), &rng);
    if (adapter->Project(p)[bfa_idx] == 0.0) ++specials;
  }
  EXPECT_LT(static_cast<double>(specials) / n, 0.02);
}

TEST_F(AdapterFixture, PipelineDeterministicPerSeed) {
  auto a = MakeAdapter("llamatune", &space_, 99);
  auto b = MakeAdapter("llamatune", &space_, 99);
  Rng rng(6);
  for (int i = 0; i < 20; ++i) {
    auto p = UniformSample(a->search_space(), &rng);
    EXPECT_EQ(a->Project(p), b->Project(p));
  }
}

TEST_F(AdapterFixture, RemboNameAndBounds) {
  auto adapter = MakeAdapter("rembo8", &space_);
  EXPECT_NE(adapter->name().find("rembo8"), std::string::npos);
  EXPECT_NEAR(adapter->search_space().dim(0).hi, std::sqrt(8.0), 1e-12);
}

TEST_F(AdapterFixture, SubsetAdapterOnlyTouchesSelectedKnobs) {
  auto result = SubsetAdapter::Create(
      &space_, {"shared_buffers", "commit_delay", "enable_seqscan"});
  ASSERT_TRUE(result.ok());
  const SubsetAdapter& adapter = *result;
  EXPECT_EQ(adapter.search_space().num_dims(), 3);
  Rng rng(7);
  Configuration def = space_.DefaultConfiguration();
  for (int i = 0; i < 50; ++i) {
    auto p = UniformSample(adapter.search_space(), &rng);
    Configuration c = adapter.Project(p);
    EXPECT_TRUE(space_.ValidateConfiguration(c).ok());
    for (int j = 0; j < space_.num_knobs(); ++j) {
      bool selected = j == space_.IndexOf("shared_buffers") ||
                      j == space_.IndexOf("commit_delay") ||
                      j == space_.IndexOf("enable_seqscan");
      if (!selected) EXPECT_EQ(c[j], def[j]) << space_.knob(j).name;
    }
  }
}

TEST_F(AdapterFixture, SubsetAdapterRejectsUnknownKnob) {
  auto result = SubsetAdapter::Create(&space_, {"no_such_knob"});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(SubsetAdapter::Create(&space_, {}).ok());
}

// Property sweep: the full LlamaTune pipeline stays valid across
// projection dimensions and both catalog versions.
struct PipelineCase {
  dbsim::PostgresVersion version;
  int dim;
};

class PipelineProperty : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineProperty, ProjectedConfigsAlwaysValid) {
  ConfigSpace space = dbsim::CatalogFor(GetParam().version);
  std::string key = "hesbo" + std::to_string(GetParam().dim) +
                    "+svb0.2+bucket10000";
  auto adapter = MakeAdapter(key, &space, GetParam().dim);
  Rng rng(GetParam().dim);
  for (int i = 0; i < 100; ++i) {
    auto p = UniformSample(adapter->search_space(), &rng);
    EXPECT_TRUE(space.ValidateConfiguration(adapter->Project(p)).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PipelineProperty,
    ::testing::Values(PipelineCase{dbsim::PostgresVersion::kV96, 8},
                      PipelineCase{dbsim::PostgresVersion::kV96, 16},
                      PipelineCase{dbsim::PostgresVersion::kV96, 24},
                      PipelineCase{dbsim::PostgresVersion::kV136, 16}));

}  // namespace
}  // namespace llamatune
