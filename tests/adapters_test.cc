#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/identity_adapter.h"
#include "src/core/llamatune_adapter.h"
#include "src/core/subset_adapter.h"
#include "src/dbsim/knob_catalog.h"
#include "src/sampling/uniform.h"

namespace llamatune {
namespace {

class AdapterFixture : public ::testing::Test {
 protected:
  ConfigSpace space_ = dbsim::PostgresV96Catalog();
};

TEST_F(AdapterFixture, IdentityDimensionPerKnob) {
  IdentityAdapter adapter(&space_);
  EXPECT_EQ(adapter.search_space().num_dims(), space_.num_knobs());
}

TEST_F(AdapterFixture, IdentityProjectsValidConfigs) {
  IdentityAdapter adapter(&space_);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    auto p = UniformSample(adapter.search_space(), &rng);
    Configuration c = adapter.Project(p);
    EXPECT_TRUE(space_.ValidateConfiguration(c).ok());
  }
}

TEST_F(AdapterFixture, IdentityWithSvbBiasesHybridKnobs) {
  IdentityAdapterOptions options;
  options.special_value_bias = 0.2;
  IdentityAdapter adapter(&space_, options);
  Rng rng(2);
  int bfa_idx = space_.IndexOf("backend_flush_after");
  ASSERT_GE(bfa_idx, 0);
  int specials = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    auto p = UniformSample(adapter.search_space(), &rng);
    Configuration c = adapter.Project(p);
    if (c[bfa_idx] == 0.0) ++specials;
  }
  EXPECT_NEAR(static_cast<double>(specials) / n, 0.2, 0.03);
  EXPECT_NE(adapter.name().find("SVB"), std::string::npos);
}

TEST_F(AdapterFixture, IdentityBucketizedSpace) {
  IdentityAdapterOptions options;
  options.bucket_values = 1000;
  IdentityAdapter adapter(&space_, options);
  for (int i = 0; i < adapter.search_space().num_dims(); ++i) {
    const SearchDim& d = adapter.search_space().dim(i);
    if (d.type == SearchDim::Type::kContinuous) {
      EXPECT_LE(d.num_buckets, 1000);
      EXPECT_GT(d.num_buckets, 0);
    }
  }
}

TEST_F(AdapterFixture, LlamaTuneSpaceIsBucketizedLowDim) {
  LlamaTuneOptions options;  // paper defaults: HeSBO-16, 20%, K=10000
  LlamaTuneAdapter adapter(&space_, options);
  ASSERT_EQ(adapter.search_space().num_dims(), 16);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(adapter.search_space().dim(i).num_buckets, 10000);
    EXPECT_EQ(adapter.search_space().dim(i).lo, -1.0);
    EXPECT_EQ(adapter.search_space().dim(i).hi, 1.0);
  }
  EXPECT_NE(adapter.name().find("HeSBO-16"), std::string::npos);
}

TEST_F(AdapterFixture, LlamaTuneProjectsValidConfigs) {
  for (auto kind : {ProjectionKind::kHesbo, ProjectionKind::kRembo}) {
    LlamaTuneOptions options;
    options.projection = kind;
    LlamaTuneAdapter adapter(&space_, options);
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
      auto p = UniformSample(adapter.search_space(), &rng);
      Configuration c = adapter.Project(p);
      EXPECT_TRUE(space_.ValidateConfiguration(c).ok());
    }
  }
}

TEST_F(AdapterFixture, LlamaTuneSpecialValueMassOnHybrids) {
  LlamaTuneOptions options;
  LlamaTuneAdapter adapter(&space_, options);
  Rng rng(4);
  int bfa_idx = space_.IndexOf("backend_flush_after");
  int specials = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    auto p = UniformSample(adapter.search_space(), &rng);
    if (adapter.Project(p)[bfa_idx] == 0.0) ++specials;
  }
  // The projected marginal is uniform-ish, so the special band should
  // receive roughly the configured 20% mass.
  EXPECT_NEAR(static_cast<double>(specials) / n, 0.2, 0.04);
}

TEST_F(AdapterFixture, LlamaTuneZeroSvbOnlyHitsSpecialAtBoundary) {
  LlamaTuneOptions options;
  options.special_value_bias = 0.0;
  LlamaTuneAdapter adapter(&space_, options);
  Rng rng(5);
  int bfa_idx = space_.IndexOf("backend_flush_after");
  int specials = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    auto p = UniformSample(adapter.search_space(), &rng);
    if (adapter.Project(p)[bfa_idx] == 0.0) ++specials;
  }
  EXPECT_LT(static_cast<double>(specials) / n, 0.02);
}

TEST_F(AdapterFixture, LlamaTuneDeterministicPerSeed) {
  LlamaTuneOptions options;
  options.projection_seed = 99;
  LlamaTuneAdapter a(&space_, options), b(&space_, options);
  Rng rng(6);
  for (int i = 0; i < 20; ++i) {
    auto p = UniformSample(a.search_space(), &rng);
    EXPECT_EQ(a.Project(p), b.Project(p));
  }
}

TEST_F(AdapterFixture, RemboNameAndBounds) {
  LlamaTuneOptions options;
  options.projection = ProjectionKind::kRembo;
  options.target_dim = 8;
  LlamaTuneAdapter adapter(&space_, options);
  EXPECT_NE(adapter.name().find("REMBO-8"), std::string::npos);
  EXPECT_NEAR(adapter.search_space().dim(0).hi, std::sqrt(8.0), 1e-12);
}

TEST_F(AdapterFixture, SubsetAdapterOnlyTouchesSelectedKnobs) {
  auto result = SubsetAdapter::Create(
      &space_, {"shared_buffers", "commit_delay", "enable_seqscan"});
  ASSERT_TRUE(result.ok());
  const SubsetAdapter& adapter = *result;
  EXPECT_EQ(adapter.search_space().num_dims(), 3);
  Rng rng(7);
  Configuration def = space_.DefaultConfiguration();
  for (int i = 0; i < 50; ++i) {
    auto p = UniformSample(adapter.search_space(), &rng);
    Configuration c = adapter.Project(p);
    EXPECT_TRUE(space_.ValidateConfiguration(c).ok());
    for (int j = 0; j < space_.num_knobs(); ++j) {
      bool selected = j == space_.IndexOf("shared_buffers") ||
                      j == space_.IndexOf("commit_delay") ||
                      j == space_.IndexOf("enable_seqscan");
      if (!selected) EXPECT_EQ(c[j], def[j]) << space_.knob(j).name;
    }
  }
}

TEST_F(AdapterFixture, SubsetAdapterRejectsUnknownKnob) {
  auto result = SubsetAdapter::Create(&space_, {"no_such_knob"});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(SubsetAdapter::Create(&space_, {}).ok());
}

// Property sweep: the full LlamaTune pipeline stays valid across
// projection dimensions and both catalog versions.
struct PipelineCase {
  dbsim::PostgresVersion version;
  int dim;
};

class PipelineProperty : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineProperty, ProjectedConfigsAlwaysValid) {
  ConfigSpace space = dbsim::CatalogFor(GetParam().version);
  LlamaTuneOptions options;
  options.target_dim = GetParam().dim;
  LlamaTuneAdapter adapter(&space, options);
  Rng rng(GetParam().dim);
  for (int i = 0; i < 100; ++i) {
    auto p = UniformSample(adapter.search_space(), &rng);
    EXPECT_TRUE(space.ValidateConfiguration(adapter.Project(p)).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PipelineProperty,
    ::testing::Values(PipelineCase{dbsim::PostgresVersion::kV96, 8},
                      PipelineCase{dbsim::PostgresVersion::kV96, 16},
                      PipelineCase{dbsim::PostgresVersion::kV96, 24},
                      PipelineCase{dbsim::PostgresVersion::kV136, 16}));

}  // namespace
}  // namespace llamatune
