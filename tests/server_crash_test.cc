// Crash/kill/resume integration test: forks the serve_remote example
// as a real server process, drives a session over the wire, kills the
// server with SIGKILL (no shutdown path runs — only the periodic
// autosave can have persisted state), restarts it on the same autosave
// directory, resumes, and verifies the continuation is bit-for-bit the
// uninterrupted run.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/serde.h"
#include "src/knobs/config_space.h"
#include "src/net/tuning_client.h"
#include "src/service/tuning_service.h"

namespace llamatune {
namespace net {
namespace {

double ExternalMeasure(const Configuration& config) {
  double x = config[0] / 100.0;
  double y = config[1];
  return 1000.0 - 900.0 * ((x - 0.44) * (x - 0.44) + (y - 0.69) * (y - 0.69));
}

std::vector<KnobSpec> TestKnobs() {
  return {IntegerKnob("cache_mb", 0, 100, 50),
          RealKnob("target_ratio", 0.0, 1.0, 0.5)};
}

WireSessionSpec CrashWireSpec() {
  WireSessionSpec spec;
  spec.space_knobs = TestKnobs();
  spec.optimizer_key = "random";
  spec.adapter_key = "identity";
  spec.seed = 4242;
  spec.num_iterations = 16;
  return spec;
}

/// A checkpoint's "state" line carries accumulated wall-clock
/// optimizer seconds — the only non-deterministic bytes in an
/// otherwise bit-exact trajectory. Zero that token so equality means
/// "identical trial history".
std::string Trajectory(const std::string& checkpoint) {
  std::istringstream in(checkpoint);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("state ", 0) == 0) {
      line = line.substr(0, line.find_last_of(' ')) + " <wall-clock>";
    }
    out << line << '\n';
  }
  return out.str();
}

class ServerProcess {
 public:
  /// Forks serve_remote --serve on an ephemeral port. Returns the
  /// bound port via the port-file handshake, or -1. `faults`, when
  /// non-empty, arms the child's fault-injection registry through the
  /// LLAMATUNE_FAULTS environment variable.
  int Launch(const std::string& bin, const std::string& autosave_dir,
             const std::string& port_file, const std::string& faults = "") {
    ::unlink(port_file.c_str());
    pid_ = ::fork();
    if (pid_ == 0) {
      if (!faults.empty()) {
        ::setenv("LLAMATUNE_FAULTS", faults.c_str(), 1);
      } else {
        ::unsetenv("LLAMATUNE_FAULTS");
      }
      ::execl(bin.c_str(), bin.c_str(), "--serve", "--port", "0",
              "--port-file", port_file.c_str(), "--autosave-dir",
              autosave_dir.c_str(), "--autosave-interval-ms", "25",
              static_cast<char*>(nullptr));
      _exit(127);  // exec failed
    }
    if (pid_ < 0) return -1;
    for (int i = 0; i < 1000; ++i) {
      FILE* in = std::fopen(port_file.c_str(), "r");
      if (in != nullptr) {
        int port = -1;
        if (std::fscanf(in, "%d", &port) != 1) port = -1;
        std::fclose(in);
        if (port > 0) return port;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return -1;
  }

  void Kill9() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      ::waitpid(pid_, &status, 0);
      pid_ = -1;
    }
  }

  ~ServerProcess() { Kill9(); }

 private:
  pid_t pid_ = -1;
};

TEST(ServerCrashTest, Kill9ThenResumeSavedMatchesUninterruptedRun) {
#ifndef LLAMATUNE_SERVE_REMOTE_BIN
  GTEST_SKIP() << "serve_remote example not built";
#else
  const std::string bin = LLAMATUNE_SERVE_REMOTE_BIN;
  struct stat sb;
  if (::stat(bin.c_str(), &sb) != 0) {
    GTEST_SKIP() << "serve_remote binary missing at " << bin;
  }
  const std::string dir = ::testing::TempDir() + "llamatune-crash-" +
                          std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  const std::string port_file = dir + "/port";
  const std::string autosave =
      dir + "/" + EncodeBytes("crash-job") + ".autosave";

  // --- Phase 1: drive half the budget against a live server.
  ServerProcess first;
  int port = first.Launch(bin, dir, port_file);
  ASSERT_GT(port, 0) << "server did not come up";

  TuningClient client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", static_cast<uint16_t>(port)).ok());
  ASSERT_TRUE(client.Hello("crash-tenant").ok());
  ASSERT_TRUE(client.CreateSession("crash-job", CrashWireSpec()).ok());
  for (int round = 0; round < 8; ++round) {
    Result<Trial> trial = client.Ask("crash-job");
    ASSERT_TRUE(trial.ok()) << trial.status().ToString();
    TrialResult result;
    result.trial_id = trial->id;
    result.value = ExternalMeasure(trial->config);
    ASSERT_TRUE(client.Tell("crash-job", result).ok());
  }
  // Wait until the autosave sweep has captured all 8 rounds: the file
  // must exist AND its checkpoint must be the current one.
  Result<std::string> at_kill = client.Checkpoint("crash-job");
  ASSERT_TRUE(at_kill.ok());
  bool captured = false;
  for (int i = 0; i < 1000 && !captured; ++i) {
    FILE* in = std::fopen(autosave.c_str(), "r");
    if (in != nullptr) {
      std::string content;
      char buf[4096];
      size_t n;
      while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
        content.append(buf, n);
      }
      std::fclose(in);
      captured = content.find(*at_kill) != std::string::npos;
    }
    if (!captured) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_TRUE(captured) << "autosave never caught up before the kill";

  // --- The crash: SIGKILL, no graceful shutdown of any kind.
  first.Kill9();
  client.Disconnect();

  // --- Phase 2: new server process, same autosave dir, resume.
  ServerProcess second;
  port = second.Launch(bin, dir, port_file);
  ASSERT_GT(port, 0) << "restarted server did not come up";
  TuningClient revived;
  ASSERT_TRUE(
      revived.Connect("127.0.0.1", static_cast<uint16_t>(port)).ok());
  ASSERT_TRUE(revived.Hello("crash-tenant").ok());
  Status resumed = revived.ResumeSaved("crash-job");
  ASSERT_TRUE(resumed.ok()) << resumed.ToString();

  Result<WireSessionStatus> status = revived.GetStatus("crash-job");
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->status.iterations_run, 7);  // baseline + 7 counted

  for (;;) {
    Result<Trial> trial = revived.Ask("crash-job");
    if (!trial.ok()) break;
    TrialResult result;
    result.trial_id = trial->id;
    result.value = ExternalMeasure(trial->config);
    ASSERT_TRUE(revived.Tell("crash-job", result).ok());
  }
  Result<std::string> after_crash = revived.Checkpoint("crash-job");
  ASSERT_TRUE(after_crash.ok());
  second.Kill9();

  // --- Reference: the same session never interrupted, in-process.
  ConfigSpace space = *ConfigSpace::Create(TestKnobs());
  service::TuningService reference;
  service::SessionSpec spec;
  spec.space = &space;
  spec.optimizer_key = "random";
  spec.adapter_key = "identity";
  spec.seed = 4242;
  spec.num_iterations = 16;
  ASSERT_TRUE(reference.CreateSession("ref", spec).ok());
  for (;;) {
    Result<Trial> trial = reference.Ask("ref");
    if (!trial.ok()) break;
    TrialResult result;
    result.trial_id = trial->id;
    result.value = ExternalMeasure(trial->config);
    ASSERT_TRUE(reference.Tell("ref", result).ok());
  }
  Result<std::string> uninterrupted = reference.Checkpoint("ref");
  ASSERT_TRUE(uninterrupted.ok());

  // The pin: kill -9 plus autosave-based resume loses nothing — the
  // final trajectory is byte-identical to never having crashed.
  EXPECT_EQ(Trajectory(*after_crash), Trajectory(*uninterrupted));
#endif
}

// SIGKILL *between* autosaves: rounds committed after the last durable
// snapshot exist only in the per-tell WAL, and ResumeSaved must replay
// that tail on top of the stale autosave — recovering every committed
// round, not just the snapshotted ones.
TEST(ServerCrashTest, Kill9BetweenAutosavesRecoversTailFromWal) {
#ifndef LLAMATUNE_SERVE_REMOTE_BIN
  GTEST_SKIP() << "serve_remote example not built";
#else
  const std::string bin = LLAMATUNE_SERVE_REMOTE_BIN;
  struct stat sb;
  if (::stat(bin.c_str(), &sb) != 0) {
    GTEST_SKIP() << "serve_remote binary missing at " << bin;
  }
  const std::string dir = ::testing::TempDir() + "llamatune-walcrash-" +
                          std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  const std::string port_file = dir + "/port";
  const std::string autosave =
      dir + "/" + EncodeBytes("wal-job") + ".autosave";

  auto drive_rounds = [](TuningClient& client, const std::string& name,
                         int rounds) {
    for (int round = 0; round < rounds; ++round) {
      Result<Trial> trial = client.Ask(name);
      ASSERT_TRUE(trial.ok()) << trial.status().ToString();
      TrialResult result;
      result.trial_id = trial->id;
      result.value = ExternalMeasure(trial->config);
      ASSERT_TRUE(client.Tell(name, result).ok());
    }
  };

  // --- Phase 1: 4 rounds, wait until the autosave captures them.
  ServerProcess first;
  int port = first.Launch(bin, dir, port_file);
  ASSERT_GT(port, 0) << "server did not come up";
  TuningClient client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", static_cast<uint16_t>(port)).ok());
  ASSERT_TRUE(client.CreateSession("wal-job", CrashWireSpec()).ok());
  drive_rounds(client, "wal-job", 4);
  Result<std::string> phase1 = client.Checkpoint("wal-job");
  ASSERT_TRUE(phase1.ok());
  bool captured = false;
  for (int i = 0; i < 1000 && !captured; ++i) {
    FILE* in = std::fopen(autosave.c_str(), "r");
    if (in != nullptr) {
      std::string content;
      char buf[4096];
      size_t n;
      while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
        content.append(buf, n);
      }
      std::fclose(in);
      captured = content.find(*phase1) != std::string::npos;
    }
    if (!captured) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_TRUE(captured) << "autosave never caught up";
  first.Kill9();
  client.Disconnect();

  // --- Phase 2: resume on a server whose every autosave write is
  // torn mid-file (LLAMATUNE_FAULTS). The durable snapshot stays
  // frozen at phase 1 while 4 more rounds commit — those rounds live
  // only in the fsync'd WAL when SIGKILL lands.
  ServerProcess torn;
  port = torn.Launch(bin, dir, port_file, "autosave.torn=p1");
  ASSERT_GT(port, 0) << "torn-autosave server did not come up";
  TuningClient mid;
  ASSERT_TRUE(mid.Connect("127.0.0.1", static_cast<uint16_t>(port)).ok());
  ASSERT_TRUE(mid.ResumeSaved("wal-job").ok());
  drive_rounds(mid, "wal-job", 4);
  Result<std::string> at_kill = mid.Checkpoint("wal-job");
  ASSERT_TRUE(at_kill.ok());
  EXPECT_NE(Trajectory(*at_kill), Trajectory(*phase1));
  torn.Kill9();
  mid.Disconnect();

  // The autosave on disk must still be the phase-1 snapshot: the torn
  // writes never replaced it.
  {
    FILE* in = std::fopen(autosave.c_str(), "r");
    ASSERT_NE(in, nullptr);
    std::string content;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
      content.append(buf, n);
    }
    std::fclose(in);
    EXPECT_NE(content.find(*phase1), std::string::npos);
    EXPECT_EQ(content.find(*at_kill), std::string::npos);
  }

  // --- Phase 3: clean restart. ResumeSaved = stale autosave + WAL
  // tail; the revived session must sit exactly where the kill left it.
  ServerProcess third;
  port = third.Launch(bin, dir, port_file);
  ASSERT_GT(port, 0) << "restarted server did not come up";
  TuningClient revived;
  ASSERT_TRUE(
      revived.Connect("127.0.0.1", static_cast<uint16_t>(port)).ok());
  Status resumed = revived.ResumeSaved("wal-job");
  ASSERT_TRUE(resumed.ok()) << resumed.ToString();
  Result<std::string> recovered = revived.Checkpoint("wal-job");
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(Trajectory(*recovered), Trajectory(*at_kill));

  // Drive out the budget and pin against the uninterrupted run.
  for (;;) {
    Result<Trial> trial = revived.Ask("wal-job");
    if (!trial.ok()) break;
    TrialResult result;
    result.trial_id = trial->id;
    result.value = ExternalMeasure(trial->config);
    ASSERT_TRUE(revived.Tell("wal-job", result).ok());
  }
  Result<std::string> final_run = revived.Checkpoint("wal-job");
  ASSERT_TRUE(final_run.ok());
  third.Kill9();

  ConfigSpace space = *ConfigSpace::Create(TestKnobs());
  service::TuningService reference;
  service::SessionSpec spec;
  spec.space = &space;
  spec.optimizer_key = "random";
  spec.adapter_key = "identity";
  spec.seed = 4242;
  spec.num_iterations = 16;
  ASSERT_TRUE(reference.CreateSession("ref", spec).ok());
  for (;;) {
    Result<Trial> trial = reference.Ask("ref");
    if (!trial.ok()) break;
    TrialResult result;
    result.trial_id = trial->id;
    result.value = ExternalMeasure(trial->config);
    ASSERT_TRUE(reference.Tell("ref", result).ok());
  }
  Result<std::string> uninterrupted = reference.Checkpoint("ref");
  ASSERT_TRUE(uninterrupted.ok());
  EXPECT_EQ(Trajectory(*final_run), Trajectory(*uninterrupted));
#endif
}

// SIGKILL in the middle of a race (race 2's first rung committed, its
// second rung pending): the autosaved mid-race checkpoint must rebuild
// the tournament — accumulated candidate statistics, eliminations, the
// open rung — and the continuation must be byte-identical to a server
// that never crashed. The driving client never sets a result fidelity
// (a pre-fidelity client can't), which also pins that full-fidelity-
// only clients can answer racing trials: the server treats the asked
// trial's fidelity as authoritative.
TEST(ServerCrashTest, Kill9MidRaceResumesTournamentBitForBit) {
#ifndef LLAMATUNE_SERVE_REMOTE_BIN
  GTEST_SKIP() << "serve_remote example not built";
#else
  const std::string bin = LLAMATUNE_SERVE_REMOTE_BIN;
  struct stat sb;
  if (::stat(bin.c_str(), &sb) != 0) {
    GTEST_SKIP() << "serve_remote binary missing at " << bin;
  }
  const std::string dir = ::testing::TempDir() + "llamatune-racecrash-" +
                          std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  const std::string port_file = dir + "/port";
  const std::string autosave =
      dir + "/" + EncodeBytes("race-job") + ".autosave";

  WireSessionSpec spec_wire;
  spec_wire.space_knobs = TestKnobs();
  spec_wire.optimizer_key = "random";
  spec_wire.adapter_key = "identity";
  spec_wire.seed = 777;
  spec_wire.num_iterations = 4;
  spec_wire.racing = true;
  spec_wire.racing_cohort = 4;
  spec_wire.racing_rungs = 3;
  spec_wire.racing_min_fidelity = 0.25;
  spec_wire.racing_eta = 2.0;
  spec_wire.racing_ci_z = 1.96;

  // Asks out the current round — the baseline, or one whole rung (the
  // server answers FailedPrecondition once the rung is fully handed
  // out) — and tells every result. Sets `empty` when the budget is
  // done and nothing was handed out.
  auto drive_round = [](TuningClient& client, const std::string& name,
                        bool* empty) {
    std::vector<Trial> trials;
    for (;;) {
      Result<Trial> trial = client.Ask(name);
      if (!trial.ok()) break;
      bool is_baseline = trial->is_baseline;
      trials.push_back(std::move(trial).ValueOrDie());
      if (is_baseline) break;
    }
    *empty = trials.empty();
    for (const Trial& trial : trials) {
      TrialResult result;
      result.trial_id = trial.id;
      result.value = ExternalMeasure(trial.config);
      ASSERT_TRUE(client.Tell(name, result).ok());
    }
  };

  // --- Phase 1: baseline + race 1 (3 rungs) + race 2's first rung.
  ServerProcess first;
  int port = first.Launch(bin, dir, port_file);
  ASSERT_GT(port, 0) << "server did not come up";
  TuningClient client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", static_cast<uint16_t>(port)).ok());
  ASSERT_TRUE(client.CreateSession("race-job", spec_wire).ok());
  for (int round = 0; round < 5; ++round) {
    bool empty = true;
    drive_round(client, "race-job", &empty);
    ASSERT_FALSE(empty) << "round " << round << " handed out no trials";
  }
  // Mid-race: exactly one race (one budget iteration) has committed.
  Result<WireSessionStatus> mid_status = client.GetStatus("race-job");
  ASSERT_TRUE(mid_status.ok());
  EXPECT_EQ(mid_status->status.iterations_run, 1);

  Result<std::string> at_kill = client.Checkpoint("race-job");
  ASSERT_TRUE(at_kill.ok());
  bool captured = false;
  for (int i = 0; i < 1000 && !captured; ++i) {
    FILE* in = std::fopen(autosave.c_str(), "r");
    if (in != nullptr) {
      std::string content;
      char buf[4096];
      size_t n;
      while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
        content.append(buf, n);
      }
      std::fclose(in);
      captured = content.find(*at_kill) != std::string::npos;
    }
    if (!captured) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_TRUE(captured) << "autosave never caught up before the kill";
  first.Kill9();
  client.Disconnect();

  // --- Phase 2: restart, resume the half-run race, drive it out.
  ServerProcess second;
  port = second.Launch(bin, dir, port_file);
  ASSERT_GT(port, 0) << "restarted server did not come up";
  TuningClient revived;
  ASSERT_TRUE(
      revived.Connect("127.0.0.1", static_cast<uint16_t>(port)).ok());
  Status resumed = revived.ResumeSaved("race-job");
  ASSERT_TRUE(resumed.ok()) << resumed.ToString();
  Result<WireSessionStatus> status = revived.GetStatus("race-job");
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->status.iterations_run, 1);
  for (;;) {
    bool empty = true;
    drive_round(revived, "race-job", &empty);
    if (empty) break;
  }
  Result<std::string> after_crash = revived.Checkpoint("race-job");
  ASSERT_TRUE(after_crash.ok());
  second.Kill9();

  // --- Reference: same racing session, never interrupted, in-process.
  ConfigSpace space = *ConfigSpace::Create(TestKnobs());
  service::TuningService reference;
  service::SessionSpec spec;
  spec.space = &space;
  spec.optimizer_key = "random";
  spec.adapter_key = "identity";
  spec.seed = 777;
  spec.num_iterations = 4;
  RacingOptions racing;
  racing.cohort = 4;
  racing.rungs = 3;
  racing.min_fidelity = 0.25;
  racing.eta = 2.0;
  racing.ci_z = 1.96;
  spec.racing = racing;
  ASSERT_TRUE(reference.CreateSession("ref", spec).ok());
  for (;;) {
    std::vector<Trial> trials;
    for (;;) {
      Result<Trial> trial = reference.Ask("ref");
      if (!trial.ok()) break;
      bool is_baseline = trial->is_baseline;
      trials.push_back(std::move(trial).ValueOrDie());
      if (is_baseline) break;
    }
    if (trials.empty()) break;
    for (const Trial& trial : trials) {
      TrialResult result;
      result.trial_id = trial.id;
      result.value = ExternalMeasure(trial.config);
      ASSERT_TRUE(reference.Tell("ref", result).ok());
    }
  }
  Result<std::string> uninterrupted = reference.Checkpoint("ref");
  ASSERT_TRUE(uninterrupted.ok());
  EXPECT_EQ(Trajectory(*after_crash), Trajectory(*uninterrupted));
#endif
}

}  // namespace
}  // namespace net
}  // namespace llamatune
