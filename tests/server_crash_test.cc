// Crash/kill/resume and drain/restart integration tests: fork the
// serve_remote example as a real server process, drive sessions over
// the wire, then take the process down two ways —
//
//  * SIGKILL (no shutdown path runs — only the periodic autosave can
//    have persisted state), restart, ResumeSaved;
//  * graceful drain (SIGTERM or a wire kDrain): the dying server
//    itself finishes in-flight work, durably autosaves every session
//    and exits 0, and a successor with --resume-on-start revives them
//    without any client-side recovery call.
//
// Either way the continuation must be bit-for-bit the uninterrupted
// run.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/serde.h"
#include "src/knobs/config_space.h"
#include "src/net/tuning_client.h"
#include "src/service/tuning_service.h"

namespace llamatune {
namespace net {
namespace {

double ExternalMeasure(const Configuration& config) {
  double x = config[0] / 100.0;
  double y = config[1];
  return 1000.0 - 900.0 * ((x - 0.44) * (x - 0.44) + (y - 0.69) * (y - 0.69));
}

std::vector<KnobSpec> TestKnobs() {
  return {IntegerKnob("cache_mb", 0, 100, 50),
          RealKnob("target_ratio", 0.0, 1.0, 0.5)};
}

WireSessionSpec CrashWireSpec() {
  WireSessionSpec spec;
  spec.space_knobs = TestKnobs();
  spec.optimizer_key = "random";
  spec.adapter_key = "identity";
  spec.seed = 4242;
  spec.num_iterations = 16;
  return spec;
}

WireSessionSpec DrainWireSpec(uint64_t seed, int num_iterations) {
  WireSessionSpec spec;
  spec.space_knobs = TestKnobs();
  spec.optimizer_key = "random";
  spec.adapter_key = "identity";
  spec.seed = seed;
  spec.num_iterations = num_iterations;
  return spec;
}

void DriveRounds(TuningClient& client, const std::string& name, int rounds) {
  for (int round = 0; round < rounds; ++round) {
    Result<Trial> trial = client.Ask(name);
    ASSERT_TRUE(trial.ok()) << trial.status().ToString();
    TrialResult result;
    result.trial_id = trial->id;
    result.value = ExternalMeasure(trial->config);
    ASSERT_TRUE(client.Tell(name, result).ok());
  }
}

void DriveOut(TuningClient& client, const std::string& name) {
  for (;;) {
    Result<Trial> trial = client.Ask(name);
    if (!trial.ok()) break;  // budget exhausted
    TrialResult result;
    result.trial_id = trial->id;
    result.value = ExternalMeasure(trial->config);
    ASSERT_TRUE(client.Tell(name, result).ok());
  }
}

/// The never-interrupted reference: the same spec driven in-process.
/// Returns the raw checkpoint; run it through Trajectory() to compare.
std::string UninterruptedCheckpoint(uint64_t seed, int num_iterations) {
  ConfigSpace space = *ConfigSpace::Create(TestKnobs());
  service::TuningService reference;
  service::SessionSpec spec;
  spec.space = &space;
  spec.optimizer_key = "random";
  spec.adapter_key = "identity";
  spec.seed = seed;
  spec.num_iterations = num_iterations;
  EXPECT_TRUE(reference.CreateSession("ref", spec).ok());
  for (;;) {
    Result<Trial> trial = reference.Ask("ref");
    if (!trial.ok()) break;
    TrialResult result;
    result.trial_id = trial->id;
    result.value = ExternalMeasure(trial->config);
    EXPECT_TRUE(reference.Tell("ref", result).ok());
  }
  Result<std::string> checkpoint = reference.Checkpoint("ref");
  EXPECT_TRUE(checkpoint.ok());
  return checkpoint.ok() ? *checkpoint : std::string();
}

/// A checkpoint's "state" line carries accumulated wall-clock
/// optimizer seconds — the only non-deterministic bytes in an
/// otherwise bit-exact trajectory. Zero that token so equality means
/// "identical trial history".
std::string Trajectory(const std::string& checkpoint) {
  std::istringstream in(checkpoint);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("state ", 0) == 0) {
      line = line.substr(0, line.find_last_of(' ')) + " <wall-clock>";
    }
    out << line << '\n';
  }
  return out.str();
}

class ServerProcess {
 public:
  /// Forks serve_remote --serve on an ephemeral port (unless
  /// `extra_args` pins one with --port). Returns the bound port via
  /// the port-file handshake, or -1. `faults`, when non-empty, arms
  /// the child's fault-injection registry through the LLAMATUNE_FAULTS
  /// environment variable.
  int Launch(const std::string& bin, const std::string& autosave_dir,
             const std::string& port_file, const std::string& faults = "",
             const std::vector<std::string>& extra_args = {}) {
    ::unlink(port_file.c_str());
    pid_ = ::fork();
    if (pid_ == 0) {
      if (!faults.empty()) {
        ::setenv("LLAMATUNE_FAULTS", faults.c_str(), 1);
      } else {
        ::unsetenv("LLAMATUNE_FAULTS");
      }
      std::vector<std::string> args = {bin,
                                       "--serve",
                                       "--port-file",
                                       port_file,
                                       "--autosave-dir",
                                       autosave_dir,
                                       "--autosave-interval-ms",
                                       "25"};
      bool port_pinned = false;
      for (const std::string& arg : extra_args) {
        if (arg == "--port") port_pinned = true;
        args.push_back(arg);
      }
      if (!port_pinned) {
        args.push_back("--port");
        args.push_back("0");
      }
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& arg : args) argv.push_back(&arg[0]);
      argv.push_back(nullptr);
      ::execv(bin.c_str(), argv.data());
      _exit(127);  // exec failed
    }
    if (pid_ < 0) return -1;
    for (int i = 0; i < 1000; ++i) {
      FILE* in = std::fopen(port_file.c_str(), "r");
      if (in != nullptr) {
        int port = -1;
        if (std::fscanf(in, "%d", &port) != 1) port = -1;
        std::fclose(in);
        if (port > 0) return port;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return -1;
  }

  void Kill9() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      ::waitpid(pid_, &status, 0);
      pid_ = -1;
    }
  }

  /// Waits (bounded) for the child to exit of its own accord. True iff
  /// it exited — was not signaled — with status 0. A child still alive
  /// at the timeout is SIGKILLed and reported as failure.
  bool WaitExit(int64_t timeout_ms = 15000) {
    if (pid_ <= 0) return false;
    for (int64_t waited = 0; waited < timeout_ms; waited += 10) {
      int status = 0;
      pid_t done = ::waitpid(pid_, &status, WNOHANG);
      if (done == pid_) {
        pid_ = -1;
        return WIFEXITED(status) && WEXITSTATUS(status) == 0;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    Kill9();
    return false;
  }

  /// The graceful path: SIGTERM, then the clean-exit-0 wait.
  bool Terminate(int64_t timeout_ms = 15000) {
    if (pid_ <= 0) return false;
    ::kill(pid_, SIGTERM);
    return WaitExit(timeout_ms);
  }

  ~ServerProcess() { Kill9(); }

 private:
  pid_t pid_ = -1;
};

TEST(ServerCrashTest, Kill9ThenResumeSavedMatchesUninterruptedRun) {
#ifndef LLAMATUNE_SERVE_REMOTE_BIN
  GTEST_SKIP() << "serve_remote example not built";
#else
  const std::string bin = LLAMATUNE_SERVE_REMOTE_BIN;
  struct stat sb;
  if (::stat(bin.c_str(), &sb) != 0) {
    GTEST_SKIP() << "serve_remote binary missing at " << bin;
  }
  const std::string dir = ::testing::TempDir() + "llamatune-crash-" +
                          std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  const std::string port_file = dir + "/port";
  const std::string autosave =
      dir + "/" + EncodeBytes("crash-job") + ".autosave";

  // --- Phase 1: drive half the budget against a live server.
  ServerProcess first;
  int port = first.Launch(bin, dir, port_file);
  ASSERT_GT(port, 0) << "server did not come up";

  TuningClient client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", static_cast<uint16_t>(port)).ok());
  ASSERT_TRUE(client.Hello("crash-tenant").ok());
  ASSERT_TRUE(client.CreateSession("crash-job", CrashWireSpec()).ok());
  for (int round = 0; round < 8; ++round) {
    Result<Trial> trial = client.Ask("crash-job");
    ASSERT_TRUE(trial.ok()) << trial.status().ToString();
    TrialResult result;
    result.trial_id = trial->id;
    result.value = ExternalMeasure(trial->config);
    ASSERT_TRUE(client.Tell("crash-job", result).ok());
  }
  // Wait until the autosave sweep has captured all 8 rounds: the file
  // must exist AND its checkpoint must be the current one.
  Result<std::string> at_kill = client.Checkpoint("crash-job");
  ASSERT_TRUE(at_kill.ok());
  bool captured = false;
  for (int i = 0; i < 1000 && !captured; ++i) {
    FILE* in = std::fopen(autosave.c_str(), "r");
    if (in != nullptr) {
      std::string content;
      char buf[4096];
      size_t n;
      while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
        content.append(buf, n);
      }
      std::fclose(in);
      captured = content.find(*at_kill) != std::string::npos;
    }
    if (!captured) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_TRUE(captured) << "autosave never caught up before the kill";

  // --- The crash: SIGKILL, no graceful shutdown of any kind.
  first.Kill9();
  client.Disconnect();

  // --- Phase 2: new server process, same autosave dir, resume.
  ServerProcess second;
  port = second.Launch(bin, dir, port_file);
  ASSERT_GT(port, 0) << "restarted server did not come up";
  TuningClient revived;
  ASSERT_TRUE(
      revived.Connect("127.0.0.1", static_cast<uint16_t>(port)).ok());
  ASSERT_TRUE(revived.Hello("crash-tenant").ok());
  Status resumed = revived.ResumeSaved("crash-job");
  ASSERT_TRUE(resumed.ok()) << resumed.ToString();

  Result<WireSessionStatus> status = revived.GetStatus("crash-job");
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->status.iterations_run, 7);  // baseline + 7 counted

  for (;;) {
    Result<Trial> trial = revived.Ask("crash-job");
    if (!trial.ok()) break;
    TrialResult result;
    result.trial_id = trial->id;
    result.value = ExternalMeasure(trial->config);
    ASSERT_TRUE(revived.Tell("crash-job", result).ok());
  }
  Result<std::string> after_crash = revived.Checkpoint("crash-job");
  ASSERT_TRUE(after_crash.ok());
  second.Kill9();

  // --- Reference: the same session never interrupted, in-process.
  ConfigSpace space = *ConfigSpace::Create(TestKnobs());
  service::TuningService reference;
  service::SessionSpec spec;
  spec.space = &space;
  spec.optimizer_key = "random";
  spec.adapter_key = "identity";
  spec.seed = 4242;
  spec.num_iterations = 16;
  ASSERT_TRUE(reference.CreateSession("ref", spec).ok());
  for (;;) {
    Result<Trial> trial = reference.Ask("ref");
    if (!trial.ok()) break;
    TrialResult result;
    result.trial_id = trial->id;
    result.value = ExternalMeasure(trial->config);
    ASSERT_TRUE(reference.Tell("ref", result).ok());
  }
  Result<std::string> uninterrupted = reference.Checkpoint("ref");
  ASSERT_TRUE(uninterrupted.ok());

  // The pin: kill -9 plus autosave-based resume loses nothing — the
  // final trajectory is byte-identical to never having crashed.
  EXPECT_EQ(Trajectory(*after_crash), Trajectory(*uninterrupted));
#endif
}

// SIGKILL *between* autosaves: rounds committed after the last durable
// snapshot exist only in the per-tell WAL, and ResumeSaved must replay
// that tail on top of the stale autosave — recovering every committed
// round, not just the snapshotted ones.
TEST(ServerCrashTest, Kill9BetweenAutosavesRecoversTailFromWal) {
#ifndef LLAMATUNE_SERVE_REMOTE_BIN
  GTEST_SKIP() << "serve_remote example not built";
#else
  const std::string bin = LLAMATUNE_SERVE_REMOTE_BIN;
  struct stat sb;
  if (::stat(bin.c_str(), &sb) != 0) {
    GTEST_SKIP() << "serve_remote binary missing at " << bin;
  }
  const std::string dir = ::testing::TempDir() + "llamatune-walcrash-" +
                          std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  const std::string port_file = dir + "/port";
  const std::string autosave =
      dir + "/" + EncodeBytes("wal-job") + ".autosave";

  auto drive_rounds = [](TuningClient& client, const std::string& name,
                         int rounds) {
    for (int round = 0; round < rounds; ++round) {
      Result<Trial> trial = client.Ask(name);
      ASSERT_TRUE(trial.ok()) << trial.status().ToString();
      TrialResult result;
      result.trial_id = trial->id;
      result.value = ExternalMeasure(trial->config);
      ASSERT_TRUE(client.Tell(name, result).ok());
    }
  };

  // --- Phase 1: 4 rounds, wait until the autosave captures them.
  ServerProcess first;
  int port = first.Launch(bin, dir, port_file);
  ASSERT_GT(port, 0) << "server did not come up";
  TuningClient client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", static_cast<uint16_t>(port)).ok());
  ASSERT_TRUE(client.CreateSession("wal-job", CrashWireSpec()).ok());
  drive_rounds(client, "wal-job", 4);
  Result<std::string> phase1 = client.Checkpoint("wal-job");
  ASSERT_TRUE(phase1.ok());
  bool captured = false;
  for (int i = 0; i < 1000 && !captured; ++i) {
    FILE* in = std::fopen(autosave.c_str(), "r");
    if (in != nullptr) {
      std::string content;
      char buf[4096];
      size_t n;
      while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
        content.append(buf, n);
      }
      std::fclose(in);
      captured = content.find(*phase1) != std::string::npos;
    }
    if (!captured) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_TRUE(captured) << "autosave never caught up";
  first.Kill9();
  client.Disconnect();

  // --- Phase 2: resume on a server whose every autosave write is
  // torn mid-file (LLAMATUNE_FAULTS). The durable snapshot stays
  // frozen at phase 1 while 4 more rounds commit — those rounds live
  // only in the fsync'd WAL when SIGKILL lands.
  ServerProcess torn;
  port = torn.Launch(bin, dir, port_file, "autosave.torn=p1");
  ASSERT_GT(port, 0) << "torn-autosave server did not come up";
  TuningClient mid;
  ASSERT_TRUE(mid.Connect("127.0.0.1", static_cast<uint16_t>(port)).ok());
  ASSERT_TRUE(mid.ResumeSaved("wal-job").ok());
  drive_rounds(mid, "wal-job", 4);
  Result<std::string> at_kill = mid.Checkpoint("wal-job");
  ASSERT_TRUE(at_kill.ok());
  EXPECT_NE(Trajectory(*at_kill), Trajectory(*phase1));
  torn.Kill9();
  mid.Disconnect();

  // The autosave on disk must still be the phase-1 snapshot: the torn
  // writes never replaced it.
  {
    FILE* in = std::fopen(autosave.c_str(), "r");
    ASSERT_NE(in, nullptr);
    std::string content;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
      content.append(buf, n);
    }
    std::fclose(in);
    EXPECT_NE(content.find(*phase1), std::string::npos);
    EXPECT_EQ(content.find(*at_kill), std::string::npos);
  }

  // --- Phase 3: clean restart. ResumeSaved = stale autosave + WAL
  // tail; the revived session must sit exactly where the kill left it.
  ServerProcess third;
  port = third.Launch(bin, dir, port_file);
  ASSERT_GT(port, 0) << "restarted server did not come up";
  TuningClient revived;
  ASSERT_TRUE(
      revived.Connect("127.0.0.1", static_cast<uint16_t>(port)).ok());
  Status resumed = revived.ResumeSaved("wal-job");
  ASSERT_TRUE(resumed.ok()) << resumed.ToString();
  Result<std::string> recovered = revived.Checkpoint("wal-job");
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(Trajectory(*recovered), Trajectory(*at_kill));

  // Drive out the budget and pin against the uninterrupted run.
  for (;;) {
    Result<Trial> trial = revived.Ask("wal-job");
    if (!trial.ok()) break;
    TrialResult result;
    result.trial_id = trial->id;
    result.value = ExternalMeasure(trial->config);
    ASSERT_TRUE(revived.Tell("wal-job", result).ok());
  }
  Result<std::string> final_run = revived.Checkpoint("wal-job");
  ASSERT_TRUE(final_run.ok());
  third.Kill9();

  ConfigSpace space = *ConfigSpace::Create(TestKnobs());
  service::TuningService reference;
  service::SessionSpec spec;
  spec.space = &space;
  spec.optimizer_key = "random";
  spec.adapter_key = "identity";
  spec.seed = 4242;
  spec.num_iterations = 16;
  ASSERT_TRUE(reference.CreateSession("ref", spec).ok());
  for (;;) {
    Result<Trial> trial = reference.Ask("ref");
    if (!trial.ok()) break;
    TrialResult result;
    result.trial_id = trial->id;
    result.value = ExternalMeasure(trial->config);
    ASSERT_TRUE(reference.Tell("ref", result).ok());
  }
  Result<std::string> uninterrupted = reference.Checkpoint("ref");
  ASSERT_TRUE(uninterrupted.ok());
  EXPECT_EQ(Trajectory(*final_run), Trajectory(*uninterrupted));
#endif
}

// SIGKILL in the middle of a race (race 2's first rung committed, its
// second rung pending): the autosaved mid-race checkpoint must rebuild
// the tournament — accumulated candidate statistics, eliminations, the
// open rung — and the continuation must be byte-identical to a server
// that never crashed. The driving client never sets a result fidelity
// (a pre-fidelity client can't), which also pins that full-fidelity-
// only clients can answer racing trials: the server treats the asked
// trial's fidelity as authoritative.
TEST(ServerCrashTest, Kill9MidRaceResumesTournamentBitForBit) {
#ifndef LLAMATUNE_SERVE_REMOTE_BIN
  GTEST_SKIP() << "serve_remote example not built";
#else
  const std::string bin = LLAMATUNE_SERVE_REMOTE_BIN;
  struct stat sb;
  if (::stat(bin.c_str(), &sb) != 0) {
    GTEST_SKIP() << "serve_remote binary missing at " << bin;
  }
  const std::string dir = ::testing::TempDir() + "llamatune-racecrash-" +
                          std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  const std::string port_file = dir + "/port";
  const std::string autosave =
      dir + "/" + EncodeBytes("race-job") + ".autosave";

  WireSessionSpec spec_wire;
  spec_wire.space_knobs = TestKnobs();
  spec_wire.optimizer_key = "random";
  spec_wire.adapter_key = "identity";
  spec_wire.seed = 777;
  spec_wire.num_iterations = 4;
  spec_wire.racing = true;
  spec_wire.racing_cohort = 4;
  spec_wire.racing_rungs = 3;
  spec_wire.racing_min_fidelity = 0.25;
  spec_wire.racing_eta = 2.0;
  spec_wire.racing_ci_z = 1.96;

  // Asks out the current round — the baseline, or one whole rung (the
  // server answers FailedPrecondition once the rung is fully handed
  // out) — and tells every result. Sets `empty` when the budget is
  // done and nothing was handed out.
  auto drive_round = [](TuningClient& client, const std::string& name,
                        bool* empty) {
    std::vector<Trial> trials;
    for (;;) {
      Result<Trial> trial = client.Ask(name);
      if (!trial.ok()) break;
      bool is_baseline = trial->is_baseline;
      trials.push_back(std::move(trial).ValueOrDie());
      if (is_baseline) break;
    }
    *empty = trials.empty();
    for (const Trial& trial : trials) {
      TrialResult result;
      result.trial_id = trial.id;
      result.value = ExternalMeasure(trial.config);
      ASSERT_TRUE(client.Tell(name, result).ok());
    }
  };

  // --- Phase 1: baseline + race 1 (3 rungs) + race 2's first rung.
  ServerProcess first;
  int port = first.Launch(bin, dir, port_file);
  ASSERT_GT(port, 0) << "server did not come up";
  TuningClient client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", static_cast<uint16_t>(port)).ok());
  ASSERT_TRUE(client.CreateSession("race-job", spec_wire).ok());
  for (int round = 0; round < 5; ++round) {
    bool empty = true;
    drive_round(client, "race-job", &empty);
    ASSERT_FALSE(empty) << "round " << round << " handed out no trials";
  }
  // Mid-race: exactly one race (one budget iteration) has committed.
  Result<WireSessionStatus> mid_status = client.GetStatus("race-job");
  ASSERT_TRUE(mid_status.ok());
  EXPECT_EQ(mid_status->status.iterations_run, 1);

  Result<std::string> at_kill = client.Checkpoint("race-job");
  ASSERT_TRUE(at_kill.ok());
  bool captured = false;
  for (int i = 0; i < 1000 && !captured; ++i) {
    FILE* in = std::fopen(autosave.c_str(), "r");
    if (in != nullptr) {
      std::string content;
      char buf[4096];
      size_t n;
      while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
        content.append(buf, n);
      }
      std::fclose(in);
      captured = content.find(*at_kill) != std::string::npos;
    }
    if (!captured) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_TRUE(captured) << "autosave never caught up before the kill";
  first.Kill9();
  client.Disconnect();

  // --- Phase 2: restart, resume the half-run race, drive it out.
  ServerProcess second;
  port = second.Launch(bin, dir, port_file);
  ASSERT_GT(port, 0) << "restarted server did not come up";
  TuningClient revived;
  ASSERT_TRUE(
      revived.Connect("127.0.0.1", static_cast<uint16_t>(port)).ok());
  Status resumed = revived.ResumeSaved("race-job");
  ASSERT_TRUE(resumed.ok()) << resumed.ToString();
  Result<WireSessionStatus> status = revived.GetStatus("race-job");
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->status.iterations_run, 1);
  for (;;) {
    bool empty = true;
    drive_round(revived, "race-job", &empty);
    if (empty) break;
  }
  Result<std::string> after_crash = revived.Checkpoint("race-job");
  ASSERT_TRUE(after_crash.ok());
  second.Kill9();

  // --- Reference: same racing session, never interrupted, in-process.
  ConfigSpace space = *ConfigSpace::Create(TestKnobs());
  service::TuningService reference;
  service::SessionSpec spec;
  spec.space = &space;
  spec.optimizer_key = "random";
  spec.adapter_key = "identity";
  spec.seed = 777;
  spec.num_iterations = 4;
  RacingOptions racing;
  racing.cohort = 4;
  racing.rungs = 3;
  racing.min_fidelity = 0.25;
  racing.eta = 2.0;
  racing.ci_z = 1.96;
  spec.racing = racing;
  ASSERT_TRUE(reference.CreateSession("ref", spec).ok());
  for (;;) {
    std::vector<Trial> trials;
    for (;;) {
      Result<Trial> trial = reference.Ask("ref");
      if (!trial.ok()) break;
      bool is_baseline = trial->is_baseline;
      trials.push_back(std::move(trial).ValueOrDie());
      if (is_baseline) break;
    }
    if (trials.empty()) break;
    for (const Trial& trial : trials) {
      TrialResult result;
      result.trial_id = trial.id;
      result.value = ExternalMeasure(trial.config);
      ASSERT_TRUE(reference.Tell("ref", result).ok());
    }
  }
  Result<std::string> uninterrupted = reference.Checkpoint("ref");
  ASSERT_TRUE(uninterrupted.ok());
  EXPECT_EQ(Trajectory(*after_crash), Trajectory(*uninterrupted));
#endif
}

// Graceful drain is stronger than crash recovery: SIGTERM makes the
// dying server itself finish in-flight work and durably autosave every
// session — including a pending (asked, untold) trial that only the
// drain's final sweep can capture — before exiting 0. No "wait for the
// periodic autosave to catch up" dance is needed, and the successor's
// --resume-on-start sweep revives the session without any explicit
// ResumeSaved from the client.
TEST(ServerDrainTest, SigtermDrainSavesPendingWorkAndHotRestartResumes) {
#ifndef LLAMATUNE_SERVE_REMOTE_BIN
  GTEST_SKIP() << "serve_remote example not built";
#else
  const std::string bin = LLAMATUNE_SERVE_REMOTE_BIN;
  struct stat sb;
  if (::stat(bin.c_str(), &sb) != 0) {
    GTEST_SKIP() << "serve_remote binary missing at " << bin;
  }
  const std::string dir = ::testing::TempDir() + "llamatune-drain-" +
                          std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  const std::string port_file = dir + "/port";

  // --- Phase 1: half the budget, plus one trial left pending.
  ServerProcess first;
  int port = first.Launch(bin, dir, port_file);
  ASSERT_GT(port, 0) << "server did not come up";
  TuningClient client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", static_cast<uint16_t>(port)).ok());
  ASSERT_TRUE(client.Hello("drain-tenant").ok());
  ASSERT_TRUE(client.CreateSession("drain-job", CrashWireSpec()).ok());
  DriveRounds(client, "drain-job", 8);
  Result<Trial> held = client.Ask("drain-job");
  ASSERT_TRUE(held.ok()) << held.status().ToString();

  // --- The drain: SIGTERM, clean exit 0. Deliberately no autosave
  // wait — durability on this path is the server's job, not the
  // test's.
  ASSERT_TRUE(first.Terminate()) << "SIGTERM did not produce exit 0";
  client.Disconnect();

  // --- Phase 2: hot restart. The startup sweep revives the session;
  // the client goes straight to GetStatus, answers the trial it was
  // holding across the restart, and drives out the budget.
  ServerProcess second;
  port = second.Launch(bin, dir, port_file, "", {"--resume-on-start"});
  ASSERT_GT(port, 0) << "hot-restarted server did not come up";
  TuningClient revived;
  ASSERT_TRUE(
      revived.Connect("127.0.0.1", static_cast<uint16_t>(port)).ok());
  ASSERT_TRUE(revived.Hello("drain-tenant").ok());
  Result<WireSessionStatus> status = revived.GetStatus("drain-job");
  ASSERT_TRUE(status.ok()) << status.status().ToString();
  EXPECT_EQ(status->status.iterations_run, 7);  // baseline + 7 counted

  TrialResult held_result;
  held_result.trial_id = held->id;
  held_result.value = ExternalMeasure(held->config);
  ASSERT_TRUE(revived.Tell("drain-job", held_result).ok());
  DriveOut(revived, "drain-job");
  Result<std::string> after_drain = revived.Checkpoint("drain-job");
  ASSERT_TRUE(after_drain.ok());
  ASSERT_TRUE(second.Terminate());

  // The pin: drain → hot restart loses nothing, the final trajectory
  // is byte-identical to never having restarted.
  EXPECT_EQ(Trajectory(*after_drain),
            Trajectory(UninterruptedCheckpoint(4242, 16)));
#endif
}

// The wire path to the same outcome: a client kDrain moves the server
// out of Running on its own, serve_remote's loop notices and the
// process exits 0 with no signal involved. The drained state
// hot-restarts cleanly.
TEST(ServerDrainTest, WireDrainSelfExitsZeroAndSuccessorResumes) {
#ifndef LLAMATUNE_SERVE_REMOTE_BIN
  GTEST_SKIP() << "serve_remote example not built";
#else
  const std::string bin = LLAMATUNE_SERVE_REMOTE_BIN;
  struct stat sb;
  if (::stat(bin.c_str(), &sb) != 0) {
    GTEST_SKIP() << "serve_remote binary missing at " << bin;
  }
  const std::string dir = ::testing::TempDir() + "llamatune-wiredrain-" +
                          std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  const std::string port_file = dir + "/port";

  ServerProcess first;
  int port = first.Launch(bin, dir, port_file);
  ASSERT_GT(port, 0) << "server did not come up";
  TuningClient client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", static_cast<uint16_t>(port)).ok());
  ASSERT_TRUE(client.Hello("drain-tenant").ok());
  ASSERT_TRUE(
      client.CreateSession("wire-drain-job", DrainWireSpec(9090, 12)).ok());
  DriveRounds(client, "wire-drain-job", 5);

  Status drained = client.Drain();
  ASSERT_TRUE(drained.ok()) << drained.ToString();
  ASSERT_TRUE(first.WaitExit()) << "server did not self-exit 0 after kDrain";
  client.Disconnect();

  ServerProcess second;
  port = second.Launch(bin, dir, port_file, "", {"--resume-on-start"});
  ASSERT_GT(port, 0) << "hot-restarted server did not come up";
  TuningClient revived;
  ASSERT_TRUE(
      revived.Connect("127.0.0.1", static_cast<uint16_t>(port)).ok());
  ASSERT_TRUE(revived.Hello("drain-tenant").ok());
  Result<WireSessionStatus> status = revived.GetStatus("wire-drain-job");
  ASSERT_TRUE(status.ok()) << status.status().ToString();
  EXPECT_EQ(status->status.iterations_run, 4);
  DriveOut(revived, "wire-drain-job");
  Result<std::string> after_drain = revived.Checkpoint("wire-drain-job");
  ASSERT_TRUE(after_drain.ok());
  ASSERT_TRUE(second.Terminate());

  EXPECT_EQ(Trajectory(*after_drain),
            Trajectory(UninterruptedCheckpoint(9090, 12)));
#endif
}

// Chaos soak: a seeded fault schedule resets server→client sends at
// random while a resilient client drives three sessions; mid-run the
// server is SIGTERM-drained and a successor hot-restarts ON THE SAME
// PORT, so the client's transparent reconnect (re-dial + Hello replay
// inside the retry loop) carries it across the restart without the
// test ever touching the connection. Every final history must be
// bit-for-bit the uninterrupted run — resets, retries, drain and
// restart all invisible in the trajectory. CI soaks this test with
// --gtest_repeat to vary scheduling.
TEST(ServerDrainTest, ChaosSoakDrainRestartUnderFaultsKeepsHistoriesExact) {
#ifndef LLAMATUNE_SERVE_REMOTE_BIN
  GTEST_SKIP() << "serve_remote example not built";
#else
  const std::string bin = LLAMATUNE_SERVE_REMOTE_BIN;
  struct stat sb;
  if (::stat(bin.c_str(), &sb) != 0) {
    GTEST_SKIP() << "serve_remote binary missing at " << bin;
  }
  const std::string dir = ::testing::TempDir() + "llamatune-chaos-" +
                          std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  const std::string port_file = dir + "/port";
  const std::string kFaults = "seed=7;server.send.reset=p0.15";
  const int kSessions = 3;
  const int kIterations = 12;

  TuningClientOptions copts;
  copts.retry.max_attempts = 8;
  copts.retry.initial_backoff_ms = 5;
  copts.retry.max_backoff_ms = 200;
  copts.retry.retry_budget_ms = 30000;
  copts.retry.jitter_seed = 3;

  // --- Phase 1: three sessions half-driven under send-reset chaos,
  // one trial held pending across the drain.
  ServerProcess first;
  int port = first.Launch(bin, dir, port_file, kFaults);
  ASSERT_GT(port, 0) << "server did not come up";
  TuningClient client(copts);
  ASSERT_TRUE(
      client.Connect("127.0.0.1", static_cast<uint16_t>(port)).ok());
  ASSERT_TRUE(client.Hello("chaos-tenant").ok());
  for (int s = 0; s < kSessions; ++s) {
    const std::string name = "chaos-" + std::to_string(s);
    ASSERT_TRUE(
        client.CreateSession(name, DrainWireSpec(5000 + s, kIterations))
            .ok());
    DriveRounds(client, name, 6);
  }
  Result<Trial> held = client.Ask("chaos-0");
  ASSERT_TRUE(held.ok()) << held.status().ToString();

  ASSERT_TRUE(first.Terminate())
      << "drain under faults did not produce exit 0";

  // --- Phase 2: successor on the SAME port, same fault schedule. The
  // client object is reused as-is: its next call fails on the dead
  // connection and the retry layer re-dials and replays Hello.
  ServerProcess second;
  int port2 = second.Launch(bin, dir, port_file, kFaults,
                            {"--resume-on-start", "--port",
                             std::to_string(port)});
  ASSERT_EQ(port2, port) << "successor did not bind the same port";

  TrialResult held_result;
  held_result.trial_id = held->id;
  held_result.value = ExternalMeasure(held->config);
  ASSERT_TRUE(client.Tell("chaos-0", held_result).ok());
  for (int s = 0; s < kSessions; ++s) {
    DriveOut(client, "chaos-" + std::to_string(s));
  }
  std::vector<std::string> finals;
  for (int s = 0; s < kSessions; ++s) {
    Result<std::string> checkpoint =
        client.Checkpoint("chaos-" + std::to_string(s));
    ASSERT_TRUE(checkpoint.ok());
    finals.push_back(*checkpoint);
  }
  ASSERT_TRUE(second.Terminate());

  for (int s = 0; s < kSessions; ++s) {
    EXPECT_EQ(Trajectory(finals[s]),
              Trajectory(UninterruptedCheckpoint(5000 + s, kIterations)))
        << "session chaos-" << s << " diverged";
  }
#endif
}

}  // namespace
}  // namespace net
}  // namespace llamatune
