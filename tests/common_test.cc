#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/common/math_util.h"
#include "src/common/rng.h"
#include "src/common/status.h"

namespace llamatune {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad knob");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad knob");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad knob");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(), Status::OutOfRange("").code(),
      Status::NotFound("").code(),        Status::AlreadyExists("").code(),
      Status::FailedPrecondition("").code(), Status::Internal("").code(),
      Status::NotImplemented("").code()};
  EXPECT_EQ(codes.size(), 7u);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyFriendly) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1000000) == b.UniformInt(0, 1000000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(3);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.2) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.2, 0.02);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(5);
  std::vector<int> perm = rng.Permutation(50);
  std::set<int> seen(perm.begin(), perm.end());
  EXPECT_EQ(perm.size(), 50u);
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 49);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(5);
  std::vector<int> s = rng.SampleWithoutReplacement(20, 8);
  std::set<int> seen(s.begin(), s.end());
  EXPECT_EQ(s.size(), 8u);
  EXPECT_EQ(seen.size(), 8u);
  for (int v : s) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 20);
  }
}

TEST(HashTest, StableAndOrderSensitive) {
  EXPECT_EQ(HashDoubles({1.0, 2.0}), HashDoubles({1.0, 2.0}));
  EXPECT_NE(HashDoubles({1.0, 2.0}), HashDoubles({2.0, 1.0}));
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

// ------------------------------------------------------------- math_util

TEST(MathTest, ClampAndRescale) {
  EXPECT_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(Rescale(0.5, 0.0, 1.0, 10.0, 20.0), 15.0);
  EXPECT_DOUBLE_EQ(Rescale(2.0, 2.0, 4.0, 0.0, 1.0), 0.0);
  // Degenerate source range maps to target lo.
  EXPECT_DOUBLE_EQ(Rescale(3.0, 2.0, 2.0, 7.0, 9.0), 7.0);
}

TEST(MathTest, MeanVarianceStddev) {
  std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(Variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(Stddev(xs), 2.0);
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(Variance({1.0}), 0.0);
}

TEST(MathTest, PercentileInterpolates) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 25.0), 2.0);
  EXPECT_EQ(Percentile({}, 50.0), 0.0);
}

TEST(MathTest, NormCdfPdfProperties) {
  EXPECT_NEAR(NormCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormCdf(3.0) + NormCdf(-3.0), 1.0, 1e-12);
  EXPECT_GT(NormPdf(0.0), NormPdf(1.0));
  EXPECT_NEAR(NormPdf(0.0), 0.3989422804014327, 1e-12);
}

TEST(MathTest, ArgMaxArgMin) {
  std::vector<double> xs = {3.0, 1.0, 4.0, 1.0, 5.0};
  EXPECT_EQ(ArgMax(xs), 4);
  EXPECT_EQ(ArgMin(xs), 1);
  EXPECT_EQ(ArgMax({}), -1);
}

TEST(MathTest, BestSoFarTransforms) {
  std::vector<double> xs = {3.0, 1.0, 4.0, 2.0};
  std::vector<double> mx = BestSoFarMax(xs);
  std::vector<double> mn = BestSoFarMin(xs);
  EXPECT_EQ(mx, (std::vector<double>{3.0, 3.0, 4.0, 4.0}));
  EXPECT_EQ(mn, (std::vector<double>{3.0, 1.0, 1.0, 1.0}));
}

TEST(MathTest, SaturatingShape) {
  EXPECT_EQ(Saturating(0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Saturating(1.0, 1.0), 0.5);
  EXPECT_LT(Saturating(100.0, 1.0), 1.0);
  EXPECT_GT(Saturating(2.0, 1.0), Saturating(1.0, 1.0));
}

// Property: percentile is monotone in p (parameterized sweep).
class PercentileMonotone : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotone, MonotoneInP) {
  Rng rng(GetParam());
  std::vector<double> xs;
  for (int i = 0; i < 37; ++i) xs.push_back(rng.Uniform(-100, 100));
  double prev = Percentile(xs, 0);
  for (double p = 5; p <= 100; p += 5) {
    double cur = Percentile(xs, p);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotone,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace llamatune
