#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "src/common/rng.h"
#include "src/model/gp.h"

namespace llamatune {
namespace {

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

TEST(CholeskyTest, FactorsKnownMatrix) {
  // A = [[4,2],[2,3]] => L = [[2,0],[1,sqrt(2)]]
  std::vector<std::vector<double>> a = {{4.0, 2.0}, {2.0, 3.0}};
  std::vector<std::vector<double>> l;
  ASSERT_TRUE(CholeskyFactor(a, &l).ok());
  EXPECT_NEAR(l[0][0], 2.0, 1e-12);
  EXPECT_NEAR(l[1][0], 1.0, 1e-12);
  EXPECT_NEAR(l[1][1], std::sqrt(2.0), 1e-12);
  EXPECT_EQ(l[0][1], 0.0);
}

TEST(CholeskyTest, RejectsIndefinite) {
  std::vector<std::vector<double>> a = {{1.0, 2.0}, {2.0, 1.0}};
  std::vector<std::vector<double>> l;
  EXPECT_FALSE(CholeskyFactor(a, &l).ok());
}

TEST(CholeskyTest, SolvesRoundTrip) {
  std::vector<std::vector<double>> a = {
      {6.0, 2.0, 1.0}, {2.0, 5.0, 2.0}, {1.0, 2.0, 4.0}};
  std::vector<std::vector<double>> l;
  ASSERT_TRUE(CholeskyFactor(a, &l).ok());
  std::vector<double> b = {1.0, 2.0, 3.0};
  std::vector<double> z = ForwardSolve(l, b);
  std::vector<double> x = BackwardSolve(l, z);
  // Check A x == b.
  for (int i = 0; i < 3; ++i) {
    double acc = 0.0;
    for (int j = 0; j < 3; ++j) acc += a[i][j] * x[j];
    EXPECT_NEAR(acc, b[i], 1e-10);
  }
}

TEST(KernelTest, Matern52Properties) {
  EXPECT_DOUBLE_EQ(Matern52(0.0), 1.0);
  EXPECT_GT(Matern52(0.5), Matern52(1.0));
  EXPECT_GT(Matern52(1.0), Matern52(2.0));
  EXPECT_GT(Matern52(5.0), 0.0);
}

TEST(KernelTest, MixedKernelSelfCovariance) {
  SearchSpace space(
      {SearchDim::Continuous(0.0, 1.0), SearchDim::Categorical(3)});
  KernelParams params;
  params.signal_variance = 2.0;
  std::vector<double> x = {0.5, 1.0};
  EXPECT_DOUBLE_EQ(MixedKernel(space, params, x, x), 2.0);
}

TEST(KernelTest, HammingPenalizesCategoryMismatch) {
  SearchSpace space(
      {SearchDim::Continuous(0.0, 1.0), SearchDim::Categorical(3)});
  KernelParams params;
  std::vector<double> a = {0.5, 0.0};
  std::vector<double> b = {0.5, 1.0};
  EXPECT_LT(MixedKernel(space, params, a, b),
            MixedKernel(space, params, a, a));
}

TEST(KernelTest, MatrixIsSymmetricWithNoiseOnDiagonal) {
  SearchSpace space({SearchDim::Continuous(0.0, 1.0)});
  KernelParams params;
  params.noise_variance = 0.5;
  std::vector<std::vector<double>> xs = {{0.1}, {0.5}, {0.9}};
  auto gram = KernelMatrix(space, params, xs);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(gram[i][i], params.signal_variance + 0.5, 1e-12);
    for (int j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(gram[i][j], gram[j][i]);
  }
}

class GpFixture : public ::testing::Test {
 protected:
  SearchSpace space_{{SearchDim::Continuous(0.0, 1.0)}};
};

TEST_F(GpFixture, RejectsEmptyOrMismatched) {
  GaussianProcess gp(space_, {}, 1);
  EXPECT_FALSE(gp.Fit({}, {}).ok());
  EXPECT_FALSE(gp.Fit({{0.5}}, {1.0, 2.0}).ok());
}

TEST_F(GpFixture, InterpolatesTrainingData) {
  GaussianProcess gp(space_, {}, 2);
  std::vector<std::vector<double>> xs = {{0.0}, {0.25}, {0.5}, {0.75}, {1.0}};
  std::vector<double> ys = {0.0, 1.0, 0.0, -1.0, 0.0};
  ASSERT_TRUE(gp.Fit(xs, ys).ok());
  for (size_t i = 0; i < xs.size(); ++i) {
    double mean = 0, variance = 0;
    gp.Predict(xs[i], &mean, &variance);
    EXPECT_NEAR(mean, ys[i], 0.25);
  }
}

TEST_F(GpFixture, VarianceGrowsAwayFromData) {
  GaussianProcess gp(space_, {}, 3);
  std::vector<std::vector<double>> xs = {{0.1}, {0.15}, {0.2}};
  std::vector<double> ys = {1.0, 1.2, 1.1};
  ASSERT_TRUE(gp.Fit(xs, ys).ok());
  double mean_near = 0, var_near = 0, mean_far = 0, var_far = 0;
  gp.Predict({0.15}, &mean_near, &var_near);
  gp.Predict({0.95}, &mean_far, &var_far);
  EXPECT_GT(var_far, var_near);
}

TEST_F(GpFixture, LmlIsFinite) {
  GaussianProcess gp(space_, {}, 4);
  Rng rng(4);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back({rng.Uniform()});
    ys.push_back(std::sin(6.0 * xs.back()[0]));
  }
  ASSERT_TRUE(gp.Fit(xs, ys).ok());
  EXPECT_TRUE(std::isfinite(gp.log_marginal_likelihood()));
}

TEST_F(GpFixture, SurvivesDuplicatePoints) {
  // Duplicate rows make the Gram matrix singular without the nugget;
  // jitter escalation must keep the fit alive.
  GaussianProcess gp(space_, {}, 5);
  std::vector<std::vector<double>> xs = {{0.5}, {0.5}, {0.5}, {0.9}};
  std::vector<double> ys = {1.0, 1.01, 0.99, 2.0};
  EXPECT_TRUE(gp.Fit(xs, ys).ok());
  double mean = 0, variance = 0;
  gp.Predict({0.5}, &mean, &variance);
  EXPECT_NEAR(mean, 1.0, 0.3);
}

TEST_F(GpFixture, MixedSpacePrediction) {
  SearchSpace space(
      {SearchDim::Continuous(0.0, 1.0), SearchDim::Categorical(2)});
  GaussianProcess gp(space, {}, 6);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  Rng rng(6);
  for (int i = 0; i < 30; ++i) {
    double cat = static_cast<double>(rng.UniformInt(0, 1));
    double c = rng.Uniform();
    xs.push_back({c, cat});
    ys.push_back(cat == 1.0 ? 5.0 + c : c);
  }
  ASSERT_TRUE(gp.Fit(xs, ys).ok());
  double mean1 = 0, mean0 = 0, variance = 0;
  gp.Predict({0.5, 1.0}, &mean1, &variance);
  gp.Predict({0.5, 0.0}, &mean0, &variance);
  EXPECT_GT(mean1, mean0 + 2.0);
}

// Property: predictions are finite and variance non-negative for
// arbitrary data across seeds.
class GpSanity : public ::testing::TestWithParam<int> {};

TEST_P(GpSanity, FinitePredictions) {
  SearchSpace space({SearchDim::Continuous(0.0, 1.0),
                     SearchDim::Continuous(-5.0, 5.0),
                     SearchDim::Categorical(3)});
  GaussianProcess gp(space, {}, GetParam());
  Rng rng(GetParam());
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 25; ++i) {
    xs.push_back({rng.Uniform(), rng.Uniform(-5, 5),
                  static_cast<double>(rng.UniformInt(0, 2))});
    ys.push_back(rng.Gaussian(0.0, 100.0));
  }
  ASSERT_TRUE(gp.Fit(xs, ys).ok());
  for (int i = 0; i < 50; ++i) {
    double mean = 0, variance = -1;
    gp.Predict({rng.Uniform(), rng.Uniform(-5, 5),
                static_cast<double>(rng.UniformInt(0, 2))},
               &mean, &variance);
    EXPECT_TRUE(std::isfinite(mean));
    EXPECT_GE(variance, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GpSanity, ::testing::Range(1, 6));

// --- Incremental-fit equivalence suite -----------------------------------

// Pins the incremental-Cholesky GP to the full-refit GP over a
// 60-iteration seeded GP-BO-style session: both models see the same
// observation stream and Refit() schedule; the incremental one extends
// the cached factor between hyperparameter re-optimizations while the
// reference refactorizes from scratch every time. Divergence must stay
// within 1e-10 throughout (the extension arithmetic is in fact
// bit-for-bit identical).
TEST(GpIncrementalTest, MatchesFullRefitOverSession) {
  SearchSpace space({SearchDim::Continuous(0.0, 1.0),
                     SearchDim::Continuous(-5.0, 5.0),
                     SearchDim::Categorical(3)});
  GpOptions incremental_opts;
  incremental_opts.incremental = true;
  GpOptions full_opts;
  full_opts.incremental = false;
  GaussianProcess incremental(space, incremental_opts, 99);
  GaussianProcess full(space, full_opts, 99);

  Rng rng(99);
  auto draw_point = [&] {
    return std::vector<double>{rng.Uniform(), rng.Uniform(-5, 5),
                               static_cast<double>(rng.UniformInt(0, 2))};
  };
  std::vector<std::vector<double>> probes;
  for (int i = 0; i < 8; ++i) probes.push_back(draw_point());

  for (int iter = 0; iter < 60; ++iter) {
    std::vector<double> x = draw_point();
    double y = std::sin(3.0 * x[0]) + 0.1 * x[1] + x[2] +
               rng.Gaussian(0.0, 0.05);
    incremental.AddObservation(x, y);
    full.AddObservation(x, y);
    ASSERT_TRUE(incremental.Refit().ok()) << "iteration " << iter;
    ASSERT_TRUE(full.Refit().ok()) << "iteration " << iter;
    EXPECT_NEAR(incremental.log_marginal_likelihood(),
                full.log_marginal_likelihood(), 1e-10)
        << "iteration " << iter;
    for (const auto& probe : probes) {
      double mean_inc = 0, var_inc = 0, mean_full = 0, var_full = 0;
      incremental.Predict(probe, &mean_inc, &var_inc);
      full.Predict(probe, &mean_full, &var_full);
      ASSERT_NEAR(mean_inc, mean_full, 1e-10) << "iteration " << iter;
      ASSERT_NEAR(var_inc, var_full, 1e-10) << "iteration " << iter;
    }
  }
}

// The alpha-prefix invariant: the incremental path persists the
// forward-solve vector z = L^-1 y_std across CholeskyExtend steps and
// refreshes alpha with a single back-substitution, while the full path
// refactorizes and re-solves from scratch every Refit(). Both share
// the boundary-frozen target standardization, so every prediction and
// the log marginal likelihood must agree to the last bit over a
// GP-BO-style session — including across reopt boundaries (where both
// paths rebuild) and the in-between stretches (where only the
// incremental one resumes its cached prefix).
TEST(GpIncrementalTest, AlphaPrefixCacheIsBitForBitAgainstFullSolves) {
  SearchSpace space({SearchDim::Continuous(0.0, 1.0),
                     SearchDim::Continuous(-5.0, 5.0),
                     SearchDim::Categorical(3)});
  GpOptions incremental_opts;
  incremental_opts.incremental = true;
  GpOptions full_opts;
  full_opts.incremental = false;
  GaussianProcess incremental(space, incremental_opts, 321);
  GaussianProcess full(space, full_opts, 321);

  Rng rng(321);
  auto draw_point = [&] {
    return std::vector<double>{rng.Uniform(), rng.Uniform(-5, 5),
                               static_cast<double>(rng.UniformInt(0, 2))};
  };
  std::vector<std::vector<double>> probes;
  for (int i = 0; i < 6; ++i) probes.push_back(draw_point());

  for (int iter = 0; iter < 40; ++iter) {
    std::vector<double> x = draw_point();
    double y = std::cos(2.0 * x[0]) + 0.2 * x[1] - x[2];
    incremental.AddObservation(x, y);
    full.AddObservation(x, y);
    ASSERT_TRUE(incremental.Refit().ok()) << "iteration " << iter;
    ASSERT_TRUE(full.Refit().ok()) << "iteration " << iter;
    ASSERT_TRUE(SameBits(incremental.log_marginal_likelihood(),
                         full.log_marginal_likelihood()))
        << "iteration " << iter;
    for (const auto& probe : probes) {
      double mean_inc = 0, var_inc = 0, mean_full = 0, var_full = 0;
      incremental.Predict(probe, &mean_inc, &var_inc);
      full.Predict(probe, &mean_full, &var_full);
      ASSERT_TRUE(SameBits(mean_inc, mean_full)) << "iteration " << iter;
      ASSERT_TRUE(SameBits(var_inc, var_full)) << "iteration " << iter;
    }
  }
}

// A lost-positive-definiteness fallback mid-stretch (duplicate points
// force CholeskyExtend to fail and FactorFull to rebuild with jitter)
// must invalidate the cached prefix and still match the full path.
TEST(GpIncrementalTest, AlphaPrefixSurvivesExtensionFallback) {
  SearchSpace space({SearchDim::Continuous(0.0, 1.0)});
  GpOptions opts;
  opts.reopt_interval = 100;  // stay inside the incremental regime
  GaussianProcess gp(space, opts, 17);
  GpOptions full_opts = opts;
  full_opts.incremental = false;
  GaussianProcess full(space, full_opts, 17);
  auto observe_both = [&](double x, double y) {
    gp.AddObservation({x}, y);
    full.AddObservation({x}, y);
    ASSERT_TRUE(gp.Refit().ok());
    ASSERT_TRUE(full.Refit().ok());
  };
  observe_both(0.2, 1.0);
  observe_both(0.8, 2.0);
  // Duplicates: extension fails, FactorFull clears the z prefix.
  observe_both(0.5, 1.5);
  observe_both(0.5, 1.5);
  observe_both(0.6, 1.7);
  for (double p : {0.1, 0.5, 0.9}) {
    double mean_a = 0, var_a = 0, mean_b = 0, var_b = 0;
    gp.Predict({p}, &mean_a, &var_a);
    full.Predict({p}, &mean_b, &var_b);
    // The jitter-escalation entry point differs between the two paths
    // only in when it runs, not what it computes.
    EXPECT_TRUE(SameBits(mean_a, mean_b)) << "probe " << p;
    EXPECT_TRUE(SameBits(var_a, var_b)) << "probe " << p;
  }
}

TEST(GpIncrementalTest, AddObservationPlusRefitMatchesFit) {
  SearchSpace space({SearchDim::Continuous(0.0, 1.0)});
  Rng rng(5);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 15; ++i) {
    xs.push_back({rng.Uniform()});
    ys.push_back(std::cos(4.0 * xs.back()[0]));
  }
  GaussianProcess bulk(space, {}, 7);
  ASSERT_TRUE(bulk.Fit(xs, ys).ok());
  GaussianProcess streamed(space, {}, 7);
  for (size_t i = 0; i < xs.size(); ++i) streamed.AddObservation(xs[i], ys[i]);
  ASSERT_TRUE(streamed.Refit().ok());
  for (double p : {0.0, 0.3, 0.7, 1.0}) {
    double mean_a = 0, var_a = 0, mean_b = 0, var_b = 0;
    bulk.Predict({p}, &mean_a, &var_a);
    streamed.Predict({p}, &mean_b, &var_b);
    EXPECT_DOUBLE_EQ(mean_a, mean_b);
    EXPECT_DOUBLE_EQ(var_a, var_b);
  }
}

TEST(GpIncrementalTest, SurvivesDuplicateAppendsBetweenReopts) {
  // A duplicated point makes the Cholesky extension lose positive
  // definiteness; the fallback must rebuild with jitter escalation
  // instead of failing.
  SearchSpace space({SearchDim::Continuous(0.0, 1.0)});
  GpOptions opts;
  opts.reopt_interval = 100;  // stay inside the incremental regime
  GaussianProcess gp(space, opts, 13);
  gp.AddObservation({0.2}, 1.0);
  gp.AddObservation({0.8}, 2.0);
  ASSERT_TRUE(gp.Refit().ok());
  for (int i = 0; i < 4; ++i) {
    gp.AddObservation({0.5}, 1.5 + 1e-3 * i);
    ASSERT_TRUE(gp.Refit().ok()) << "append " << i;
  }
  double mean = 0, variance = 0;
  gp.Predict({0.5}, &mean, &variance);
  EXPECT_NEAR(mean, 1.5, 0.3);
  EXPECT_GE(variance, 0.0);
}

// Condition(): the greedy q-EI fantasy primitive. Conditioning a
// fitted GP on (x, y) must shrink the posterior variance at x, pull
// the mean toward y, and leave the original model untouched when the
// fantasy runs on a copy.
TEST(GpConditionTest, ShrinksVarianceAndPullsMeanAtConditionedPoint) {
  SearchSpace space({SearchDim::Continuous(0.0, 1.0)});
  GaussianProcess gp(space, {}, 11);
  std::vector<std::vector<double>> xs = {{0.1}, {0.3}, {0.9}};
  std::vector<double> ys = {1.0, 1.4, 0.2};
  ASSERT_TRUE(gp.Fit(xs, ys).ok());

  std::vector<double> x = {0.6};
  double mean_before = 0, var_before = 0;
  gp.Predict(x, &mean_before, &var_before);

  GaussianProcess fantasy = gp;  // the real model must never see fantasies
  double fantasy_y = mean_before + 1.0;
  ASSERT_TRUE(fantasy.Condition(x, fantasy_y).ok());
  EXPECT_EQ(fantasy.num_observations(), 4);

  double mean_after = 0, var_after = 0;
  fantasy.Predict(x, &mean_after, &var_after);
  EXPECT_LT(var_after, var_before);
  EXPECT_GT(mean_after, mean_before);  // pulled toward the higher fantasy

  // The copied-from model is untouched.
  EXPECT_EQ(gp.num_observations(), 3);
  double mean_orig = 0, var_orig = 0;
  gp.Predict(x, &mean_orig, &var_orig);
  EXPECT_EQ(mean_orig, mean_before);
  EXPECT_EQ(var_orig, var_before);
}

// AdvanceFitSchedule must not lose a hyperparameter-reopt boundary it
// jumps over: the next Refit() owes it, regardless of landing phase.
TEST(GpFitScheduleTest, AdvanceOwesSkippedReoptBoundary) {
  SearchSpace space({SearchDim::Continuous(0.0, 1.0)});
  GpOptions options;
  options.reopt_interval = 100;  // no natural boundary in this test
  GaussianProcess advanced(space, options, 5);
  GaussianProcess plain(space, options, 5);
  std::vector<std::vector<double>> xs = {{0.1}, {0.5}, {0.9}};
  std::vector<double> ys = {0.0, 1.0, 0.5};
  ASSERT_TRUE(advanced.Fit(xs, ys).ok());  // reopts (unfitted)
  ASSERT_TRUE(plain.Fit(xs, ys).ok());
  ASSERT_EQ(advanced.params().lengthscale, plain.params().lengthscale);

  // Jump over the boundary at fit call 100 without landing on one.
  advanced.AdvanceFitSchedule(150);
  advanced.AddObservation({0.3}, 2.0);
  plain.AddObservation({0.3}, 2.0);
  ASSERT_TRUE(advanced.Refit().ok());
  ASSERT_TRUE(plain.Refit().ok());
  // `plain` is still inside the interval: hyperparameters frozen.
  // `advanced` owed the skipped boundary: it re-optimized, and the
  // reopt RNG stream (seeded by fit count) draws different candidates.
  EXPECT_NE(advanced.params().lengthscale, plain.params().lengthscale);
}

TEST(GpConditionTest, RequiresFittedModel) {
  SearchSpace space({SearchDim::Continuous(0.0, 1.0)});
  GaussianProcess gp(space, {}, 12);
  EXPECT_FALSE(gp.Condition({0.5}, 1.0).ok());
  gp.AddObservation({0.2}, 1.0);
  // Observations added after the last Refit() are not covered by the
  // cached factor either.
  EXPECT_FALSE(gp.Condition({0.5}, 1.0).ok());
}

TEST(GpPredictBatchTest, MatchesSinglePredictions) {
  SearchSpace space({SearchDim::Continuous(0.0, 1.0),
                     SearchDim::Categorical(2)});
  GaussianProcess gp(space, {}, 21);
  Rng rng(21);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 40; ++i) {
    xs.push_back({rng.Uniform(), static_cast<double>(rng.UniformInt(0, 1))});
    ys.push_back(std::sin(5.0 * xs.back()[0]) + xs.back()[1]);
  }
  ASSERT_TRUE(gp.Fit(xs, ys).ok());
  std::vector<std::vector<double>> queries;
  for (int i = 0; i < 300; ++i) {
    queries.push_back(
        {rng.Uniform(), static_cast<double>(rng.UniformInt(0, 1))});
  }
  std::vector<double> means, variances;
  gp.PredictBatch(queries, &means, &variances);
  ASSERT_EQ(means.size(), queries.size());
  ASSERT_EQ(variances.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    double mean = 0, variance = 0;
    gp.Predict(queries[i], &mean, &variance);
    EXPECT_DOUBLE_EQ(means[i], mean) << "query " << i;
    EXPECT_DOUBLE_EQ(variances[i], variance) << "query " << i;
  }
}

// Pending observations (appended after the last Refit, mid-round) must
// not knock PredictBatch off the blockwise path: it solves against the
// factored prefix exactly as Predict() does, bit for bit.
TEST(GpPredictBatchTest, MatchesPredictWithPendingObservations) {
  SearchSpace space({SearchDim::Continuous(0.0, 1.0),
                     SearchDim::Categorical(2)});
  GaussianProcess gp(space, {}, 31);
  Rng rng(31);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back({rng.Uniform(), static_cast<double>(rng.UniformInt(0, 1))});
    ys.push_back(std::sin(5.0 * xs.back()[0]) + xs.back()[1]);
  }
  ASSERT_TRUE(gp.Fit(xs, ys).ok());
  // Mid-round: three observations stream in without a Refit.
  for (int i = 0; i < 3; ++i) {
    gp.AddObservation({rng.Uniform(), 0.0}, 0.5);
  }
  ASSERT_EQ(gp.num_observations(), 23);
  std::vector<std::vector<double>> queries;
  for (int i = 0; i < 200; ++i) {
    queries.push_back(
        {rng.Uniform(), static_cast<double>(rng.UniformInt(0, 1))});
  }
  std::vector<double> means, variances;
  gp.PredictBatch(queries, &means, &variances);
  for (size_t i = 0; i < queries.size(); ++i) {
    double mean = 0, variance = 0;
    gp.Predict(queries[i], &mean, &variance);
    ASSERT_TRUE(SameBits(means[i], mean)) << "query " << i;
    ASSERT_TRUE(SameBits(variances[i], variance)) << "query " << i;
  }
}

// The unfitted batch is a contiguous prior fill — still bit-for-bit
// what per-point Predict() returns.
TEST(GpPredictBatchTest, UnfittedBatchMatchesPredictPrior) {
  SearchSpace space({SearchDim::Continuous(0.0, 1.0)});
  GaussianProcess gp(space, {}, 32);
  gp.AddObservation({0.4}, 1.0);  // observations but no Refit yet
  std::vector<std::vector<double>> queries = {{0.1}, {0.5}, {0.9}};
  std::vector<double> means, variances;
  gp.PredictBatch(queries, &means, &variances);
  for (size_t i = 0; i < queries.size(); ++i) {
    double mean = 0, variance = 0;
    gp.Predict(queries[i], &mean, &variance);
    EXPECT_TRUE(SameBits(means[i], mean)) << "query " << i;
    EXPECT_TRUE(SameBits(variances[i], variance)) << "query " << i;
  }
}

}  // namespace
}  // namespace llamatune
