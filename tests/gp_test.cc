#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/model/gp.h"

namespace llamatune {
namespace {

TEST(CholeskyTest, FactorsKnownMatrix) {
  // A = [[4,2],[2,3]] => L = [[2,0],[1,sqrt(2)]]
  std::vector<std::vector<double>> a = {{4.0, 2.0}, {2.0, 3.0}};
  std::vector<std::vector<double>> l;
  ASSERT_TRUE(CholeskyFactor(a, &l).ok());
  EXPECT_NEAR(l[0][0], 2.0, 1e-12);
  EXPECT_NEAR(l[1][0], 1.0, 1e-12);
  EXPECT_NEAR(l[1][1], std::sqrt(2.0), 1e-12);
  EXPECT_EQ(l[0][1], 0.0);
}

TEST(CholeskyTest, RejectsIndefinite) {
  std::vector<std::vector<double>> a = {{1.0, 2.0}, {2.0, 1.0}};
  std::vector<std::vector<double>> l;
  EXPECT_FALSE(CholeskyFactor(a, &l).ok());
}

TEST(CholeskyTest, SolvesRoundTrip) {
  std::vector<std::vector<double>> a = {
      {6.0, 2.0, 1.0}, {2.0, 5.0, 2.0}, {1.0, 2.0, 4.0}};
  std::vector<std::vector<double>> l;
  ASSERT_TRUE(CholeskyFactor(a, &l).ok());
  std::vector<double> b = {1.0, 2.0, 3.0};
  std::vector<double> z = ForwardSolve(l, b);
  std::vector<double> x = BackwardSolve(l, z);
  // Check A x == b.
  for (int i = 0; i < 3; ++i) {
    double acc = 0.0;
    for (int j = 0; j < 3; ++j) acc += a[i][j] * x[j];
    EXPECT_NEAR(acc, b[i], 1e-10);
  }
}

TEST(KernelTest, Matern52Properties) {
  EXPECT_DOUBLE_EQ(Matern52(0.0), 1.0);
  EXPECT_GT(Matern52(0.5), Matern52(1.0));
  EXPECT_GT(Matern52(1.0), Matern52(2.0));
  EXPECT_GT(Matern52(5.0), 0.0);
}

TEST(KernelTest, MixedKernelSelfCovariance) {
  SearchSpace space(
      {SearchDim::Continuous(0.0, 1.0), SearchDim::Categorical(3)});
  KernelParams params;
  params.signal_variance = 2.0;
  std::vector<double> x = {0.5, 1.0};
  EXPECT_DOUBLE_EQ(MixedKernel(space, params, x, x), 2.0);
}

TEST(KernelTest, HammingPenalizesCategoryMismatch) {
  SearchSpace space(
      {SearchDim::Continuous(0.0, 1.0), SearchDim::Categorical(3)});
  KernelParams params;
  std::vector<double> a = {0.5, 0.0};
  std::vector<double> b = {0.5, 1.0};
  EXPECT_LT(MixedKernel(space, params, a, b),
            MixedKernel(space, params, a, a));
}

TEST(KernelTest, MatrixIsSymmetricWithNoiseOnDiagonal) {
  SearchSpace space({SearchDim::Continuous(0.0, 1.0)});
  KernelParams params;
  params.noise_variance = 0.5;
  std::vector<std::vector<double>> xs = {{0.1}, {0.5}, {0.9}};
  auto gram = KernelMatrix(space, params, xs);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(gram[i][i], params.signal_variance + 0.5, 1e-12);
    for (int j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(gram[i][j], gram[j][i]);
  }
}

class GpFixture : public ::testing::Test {
 protected:
  SearchSpace space_{{SearchDim::Continuous(0.0, 1.0)}};
};

TEST_F(GpFixture, RejectsEmptyOrMismatched) {
  GaussianProcess gp(space_, {}, 1);
  EXPECT_FALSE(gp.Fit({}, {}).ok());
  EXPECT_FALSE(gp.Fit({{0.5}}, {1.0, 2.0}).ok());
}

TEST_F(GpFixture, InterpolatesTrainingData) {
  GaussianProcess gp(space_, {}, 2);
  std::vector<std::vector<double>> xs = {{0.0}, {0.25}, {0.5}, {0.75}, {1.0}};
  std::vector<double> ys = {0.0, 1.0, 0.0, -1.0, 0.0};
  ASSERT_TRUE(gp.Fit(xs, ys).ok());
  for (size_t i = 0; i < xs.size(); ++i) {
    double mean = 0, variance = 0;
    gp.Predict(xs[i], &mean, &variance);
    EXPECT_NEAR(mean, ys[i], 0.25);
  }
}

TEST_F(GpFixture, VarianceGrowsAwayFromData) {
  GaussianProcess gp(space_, {}, 3);
  std::vector<std::vector<double>> xs = {{0.1}, {0.15}, {0.2}};
  std::vector<double> ys = {1.0, 1.2, 1.1};
  ASSERT_TRUE(gp.Fit(xs, ys).ok());
  double mean_near = 0, var_near = 0, mean_far = 0, var_far = 0;
  gp.Predict({0.15}, &mean_near, &var_near);
  gp.Predict({0.95}, &mean_far, &var_far);
  EXPECT_GT(var_far, var_near);
}

TEST_F(GpFixture, LmlIsFinite) {
  GaussianProcess gp(space_, {}, 4);
  Rng rng(4);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back({rng.Uniform()});
    ys.push_back(std::sin(6.0 * xs.back()[0]));
  }
  ASSERT_TRUE(gp.Fit(xs, ys).ok());
  EXPECT_TRUE(std::isfinite(gp.log_marginal_likelihood()));
}

TEST_F(GpFixture, SurvivesDuplicatePoints) {
  // Duplicate rows make the Gram matrix singular without the nugget;
  // jitter escalation must keep the fit alive.
  GaussianProcess gp(space_, {}, 5);
  std::vector<std::vector<double>> xs = {{0.5}, {0.5}, {0.5}, {0.9}};
  std::vector<double> ys = {1.0, 1.01, 0.99, 2.0};
  EXPECT_TRUE(gp.Fit(xs, ys).ok());
  double mean = 0, variance = 0;
  gp.Predict({0.5}, &mean, &variance);
  EXPECT_NEAR(mean, 1.0, 0.3);
}

TEST_F(GpFixture, MixedSpacePrediction) {
  SearchSpace space(
      {SearchDim::Continuous(0.0, 1.0), SearchDim::Categorical(2)});
  GaussianProcess gp(space, {}, 6);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  Rng rng(6);
  for (int i = 0; i < 30; ++i) {
    double cat = static_cast<double>(rng.UniformInt(0, 1));
    double c = rng.Uniform();
    xs.push_back({c, cat});
    ys.push_back(cat == 1.0 ? 5.0 + c : c);
  }
  ASSERT_TRUE(gp.Fit(xs, ys).ok());
  double mean1 = 0, mean0 = 0, variance = 0;
  gp.Predict({0.5, 1.0}, &mean1, &variance);
  gp.Predict({0.5, 0.0}, &mean0, &variance);
  EXPECT_GT(mean1, mean0 + 2.0);
}

// Property: predictions are finite and variance non-negative for
// arbitrary data across seeds.
class GpSanity : public ::testing::TestWithParam<int> {};

TEST_P(GpSanity, FinitePredictions) {
  SearchSpace space({SearchDim::Continuous(0.0, 1.0),
                     SearchDim::Continuous(-5.0, 5.0),
                     SearchDim::Categorical(3)});
  GaussianProcess gp(space, {}, GetParam());
  Rng rng(GetParam());
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 25; ++i) {
    xs.push_back({rng.Uniform(), rng.Uniform(-5, 5),
                  static_cast<double>(rng.UniformInt(0, 2))});
    ys.push_back(rng.Gaussian(0.0, 100.0));
  }
  ASSERT_TRUE(gp.Fit(xs, ys).ok());
  for (int i = 0; i < 50; ++i) {
    double mean = 0, variance = -1;
    gp.Predict({rng.Uniform(), rng.Uniform(-5, 5),
                static_cast<double>(rng.UniformInt(0, 2))},
               &mean, &variance);
    EXPECT_TRUE(std::isfinite(mean));
    EXPECT_GE(variance, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GpSanity, ::testing::Range(1, 6));

}  // namespace
}  // namespace llamatune
