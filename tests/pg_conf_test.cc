#include <gtest/gtest.h>

#include "src/dbsim/knob_catalog.h"
#include "src/dbsim/pg_conf.h"

namespace llamatune {
namespace dbsim {
namespace {

TEST(PgConfTest, FormatsByteUnits) {
  KnobSpec sb = WithLogScale(IntegerKnob("shared_buffers", 16, 2097152, 16384));
  sb.unit = "8kB";
  EXPECT_EQ(FormatKnobValue(sb, 16384), "128MB");
  EXPECT_EQ(FormatKnobValue(sb, 786432), "6GB");
  EXPECT_EQ(FormatKnobValue(sb, 100), "800kB");
}

TEST(PgConfTest, FormatsKbAndMbUnits) {
  KnobSpec wm = IntegerKnob("work_mem", 64, 2097152, 4096);
  wm.unit = "kB";
  EXPECT_EQ(FormatKnobValue(wm, 4096), "4MB");
  EXPECT_EQ(FormatKnobValue(wm, 100), "100kB");
  KnobSpec mws = IntegerKnob("max_wal_size", 32, 65536, 1024);
  mws.unit = "MB";
  EXPECT_EQ(FormatKnobValue(mws, 1024), "1GB");
  EXPECT_EQ(FormatKnobValue(mws, 100), "100MB");
}

TEST(PgConfTest, TimeUnitsAppended) {
  KnobSpec cd = IntegerKnob("commit_delay", 0, 100000, 0);
  cd.unit = "us";
  EXPECT_EQ(FormatKnobValue(cd, 500), "500us");
}

TEST(PgConfTest, SpecialValuesVerbatim) {
  KnobSpec wb = WithSpecialValues(IntegerKnob("wal_buffers", -1, 262143, -1),
                                  {-1});
  wb.unit = "8kB";
  EXPECT_EQ(FormatKnobValue(wb, -1), "-1");
  EXPECT_EQ(FormatKnobValue(wb, 512), "4MB");
}

TEST(PgConfTest, CategoricalAsString) {
  KnobSpec sc = CategoricalKnob("synchronous_commit",
                                {"off", "local", "remote_write", "on"}, 3);
  EXPECT_EQ(FormatKnobValue(sc, 0), "off");
  EXPECT_EQ(FormatKnobValue(sc, 3), "on");
}

TEST(PgConfTest, FullCatalogEmits) {
  ConfigSpace space = PostgresV96Catalog();
  std::string conf = EmitPostgresConf(space, space.DefaultConfiguration());
  EXPECT_NE(conf.find("shared_buffers = 128MB"), std::string::npos);
  EXPECT_NE(conf.find("autovacuum = on"), std::string::npos);
  EXPECT_NE(conf.find("wal_buffers = -1"), std::string::npos);
  // One line per knob plus the header.
  int lines = 0;
  for (char c : conf) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, space.num_knobs() + 1);
}

}  // namespace
}  // namespace dbsim
}  // namespace llamatune
