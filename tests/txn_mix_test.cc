#include <gtest/gtest.h>

#include <map>

#include "src/dbsim/des/txn_mix.h"

namespace llamatune {
namespace dbsim {
namespace des {
namespace {

TEST(TxnMixTest, CreateValidates) {
  EXPECT_FALSE(TxnMix::Create({}).ok());
  EXPECT_FALSE(TxnMix::Create({{"x", 0.0, 1.0, false}}).ok());
  EXPECT_FALSE(TxnMix::Create({{"x", 1.0, -1.0, false}}).ok());
  EXPECT_TRUE(TxnMix::Create({{"x", 1.0, 1.0, false}}).ok());
}

TEST(TxnMixTest, SampleFollowsWeights) {
  TxnMix mix = *TxnMix::Create({{"a", 80.0, 1.0, false},
                                {"b", 20.0, 1.0, true}});
  Rng rng(1);
  std::map<int, int> counts;
  const int n = 20000;
  for (int i = 0; i < n; ++i) counts[mix.Sample(&rng)]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.8, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.02);
}

TEST(TxnMixTest, MeanCostAndWriteFraction) {
  TxnMix mix = *TxnMix::Create({{"light", 50.0, 1.0, false},
                                {"heavy", 50.0, 3.0, true}});
  EXPECT_DOUBLE_EQ(mix.MeanCostMultiplier(), 2.0);
  EXPECT_DOUBLE_EQ(mix.WriteFraction(), 0.5);
}

TEST(TxnMixTest, TpcCMixMatchesBenchmarkShape) {
  TxnMix mix = TpcCMix();
  EXPECT_EQ(mix.num_types(), 5);  // the five TPC-C transactions
  // The standard mix is ~45% NewOrder and ~8% read-only.
  EXPECT_EQ(mix.type(0).name, "NewOrder");
  EXPECT_NEAR(mix.type(0).weight, 45.0, 1e-9);
  EXPECT_NEAR(1.0 - mix.WriteFraction(), 0.08, 0.001);
}

TEST(TxnMixTest, PaperWorkloadMixLookup) {
  EXPECT_EQ(MixForWorkload("TPC-C", 0.08).num_types(), 5);
  EXPECT_EQ(MixForWorkload("SEATS", 0.45).num_types(), 6);
  EXPECT_EQ(MixForWorkload("Twitter", 0.01).num_types(), 5);
  EXPECT_EQ(MixForWorkload("RS", 0.33).num_types(), 4);
  EXPECT_EQ(MixForWorkload("YCSB-A", 0.50).num_types(), 2);
  EXPECT_EQ(MixForWorkload("unknown", 0.5).num_types(), 1);
}

TEST(TxnMixTest, YcsbMixTracksReadFraction) {
  TxnMix a = YcsbMix(0.5);
  EXPECT_NEAR(a.WriteFraction(), 0.5, 1e-9);
  TxnMix b = YcsbMix(0.95);
  EXPECT_NEAR(b.WriteFraction(), 0.05, 1e-9);
}

TEST(TxnMixTest, HeavyTypesExist) {
  // Every multi-type benchmark mix has a type well above the mean —
  // the tail carrier the DES relies on.
  for (const TxnMix& mix : {TpcCMix(), SeatsMix()}) {
    double mean = mix.MeanCostMultiplier();
    double heaviest = 0.0;
    for (int i = 0; i < mix.num_types(); ++i) {
      heaviest = std::max(heaviest, mix.type(i).cost_multiplier);
    }
    EXPECT_GT(heaviest, 1.5 * mean);
  }
  // TPC-C specifically: StockLevel is >4x the mean transaction.
  TxnMix tpcc = TpcCMix();
  EXPECT_GT(tpcc.type(4).cost_multiplier,
            4.0 * tpcc.MeanCostMultiplier());
}

}  // namespace
}  // namespace des
}  // namespace dbsim
}  // namespace llamatune
