#include "src/service/tuning_service.h"

#include <chrono>
#include <utility>

namespace llamatune {
namespace service {

int64_t NowUnixMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

namespace {

Status NoSession(const std::string& name) {
  return Status::SessionNotFound("TuningService: no session '" + name + "'");
}

}  // namespace

Status TuningService::BuildEntry(const SessionSpec& spec,
                                 std::shared_ptr<Entry>* out) {
  int sources = (spec.workload.has_value() ? 1 : 0) +
                (spec.objective != nullptr ? 1 : 0) +
                (spec.space != nullptr ? 1 : 0);
  if (sources != 1) {
    return Status::InvalidArgument(
        "SessionSpec: set exactly one of workload, objective, space");
  }

  harness::TunerBuilder builder;
  if (spec.workload.has_value()) {
    builder.Workload(*spec.workload).DbOptions(spec.db_options);
  } else if (spec.objective != nullptr) {
    builder.Objective(spec.objective);
  } else {
    builder.Space(spec.space, spec.maximize);
  }
  builder.Optimizer(spec.optimizer_key)
      .Adapter(spec.adapter_key)
      .Seed(spec.seed)
      .Iterations(spec.num_iterations)
      .BatchSize(spec.batch_size)
      .Threads(spec.num_threads)
      .PendingDeadlineMs(spec.pending_deadline_ms);
  if (spec.early_stopping.has_value()) {
    builder.EarlyStopping(*spec.early_stopping);
  }
  if (spec.racing.has_value()) {
    builder.Racing(*spec.racing);
  }

  // Sessions are always built detached-capable: ask/tell is the
  // service's native protocol, and Step/Drive additionally work when
  // an evaluable objective exists.
  Result<std::unique_ptr<harness::Tuner>> tuner = builder.BuildDetached();
  if (!tuner.ok()) return tuner.status();

  auto entry = std::make_shared<Entry>();
  {
    // The entry is not yet published, but tuner is guarded by mu and
    // the analysis cannot see construction-time exclusivity; the
    // uncontended lock keeps the annotation honest.
    MutexLock lock(entry->mu);
    entry->tuner = std::move(tuner).ValueOrDie();
  }
  entry->optimizer_key = spec.optimizer_key;
  entry->adapter_key = spec.adapter_key;
  entry->external = spec.space != nullptr;
  entry->num_iterations = spec.num_iterations;
  entry->created_unix_ms = NowUnixMillis();
  entry->last_activity_unix_ms.store(entry->created_unix_ms,
                                     std::memory_order_relaxed);
  *out = std::move(entry);
  return Status::OK();
}

Status TuningService::CreateSession(const std::string& name,
                                    const SessionSpec& spec) {
  std::shared_ptr<Entry> entry;
  LT_RETURN_NOT_OK(BuildEntry(spec, &entry));
  MutexLock lock(mu_);
  if (!sessions_.emplace(name, std::move(entry)).second) {
    return Status::SessionAlreadyExists("TuningService: session '" + name +
                                        "' already exists");
  }
  return Status::OK();
}

Status TuningService::Resume(const std::string& name, const SessionSpec& spec,
                             const std::string& checkpoint) {
  std::shared_ptr<Entry> entry;
  LT_RETURN_NOT_OK(BuildEntry(spec, &entry));
  {
    MutexLock lock(entry->mu);
    LT_RETURN_NOT_OK(entry->tuner->Restore(checkpoint));
  }
  MutexLock lock(mu_);
  if (!sessions_.emplace(name, std::move(entry)).second) {
    return Status::SessionAlreadyExists("TuningService: session '" + name +
                                        "' already exists");
  }
  return Status::OK();
}

std::shared_ptr<TuningService::Entry> TuningService::Find(
    const std::string& name) const {
  MutexLock lock(mu_);
  auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : it->second;
}

Result<Trial> TuningService::Ask(const std::string& name) {
  std::shared_ptr<Entry> entry = Find(name);
  if (entry == nullptr) return NoSession(name);
  entry->last_activity_unix_ms.store(NowUnixMillis(),
                                     std::memory_order_relaxed);
  MutexLock lock(entry->mu);
  return entry->tuner->Ask();
}

Result<std::vector<Trial>> TuningService::AskBatch(const std::string& name,
                                                   int n) {
  std::shared_ptr<Entry> entry = Find(name);
  if (entry == nullptr) return NoSession(name);
  entry->last_activity_unix_ms.store(NowUnixMillis(),
                                     std::memory_order_relaxed);
  MutexLock lock(entry->mu);
  return entry->tuner->AskBatch(n);
}

Status TuningService::Tell(const std::string& name,
                           const TrialResult& result) {
  std::shared_ptr<Entry> entry = Find(name);
  if (entry == nullptr) return NoSession(name);
  entry->last_activity_unix_ms.store(NowUnixMillis(),
                                     std::memory_order_relaxed);
  MutexLock lock(entry->mu);
  return entry->tuner->Tell(result);
}

Status TuningService::TellBatch(const std::string& name,
                                const std::vector<TrialResult>& results) {
  std::shared_ptr<Entry> entry = Find(name);
  if (entry == nullptr) return NoSession(name);
  entry->last_activity_unix_ms.store(NowUnixMillis(),
                                     std::memory_order_relaxed);
  MutexLock lock(entry->mu);
  return entry->tuner->TellBatch(results);
}

Result<std::vector<Trial>> TuningService::GetPending(
    const std::string& name) const {
  std::shared_ptr<Entry> entry = Find(name);
  if (entry == nullptr) return NoSession(name);
  // Deliberately not an activity update: adoption polling by a
  // reconnecting client must not keep an abandoned session alive.
  MutexLock lock(entry->mu);
  return entry->tuner->PendingSnapshot();
}

Result<int64_t> TuningService::NextTrialId(const std::string& name) const {
  std::shared_ptr<Entry> entry = Find(name);
  if (entry == nullptr) return NoSession(name);
  MutexLock lock(entry->mu);
  return entry->tuner->next_trial_id();
}

Status TuningService::Expire(const std::string& name, int64_t trial_id) {
  std::shared_ptr<Entry> entry = Find(name);
  if (entry == nullptr) return NoSession(name);
  MutexLock lock(entry->mu);
  return entry->tuner->Expire(trial_id);
}

int TuningService::ExpireOverdue(int64_t now_ms) {
  std::vector<std::shared_ptr<Entry>> entries;
  {
    MutexLock lock(mu_);
    entries.reserve(sessions_.size());
    for (const auto& [name, entry] : sessions_) entries.push_back(entry);
  }
  int expired = 0;
  for (const auto& entry : entries) {
    MutexLock lock(entry->mu);
    expired += static_cast<int>(entry->tuner->ExpireOverdue(now_ms).size());
  }
  return expired;
}

Result<std::vector<int64_t>> TuningService::ExpireOverdueSession(
    const std::string& name, int64_t now_ms) {
  std::shared_ptr<Entry> entry = Find(name);
  if (entry == nullptr) return NoSession(name);
  MutexLock lock(entry->mu);
  return entry->tuner->ExpireOverdue(now_ms);
}

Status TuningService::Step(const std::string& name, bool* progressed) {
  std::shared_ptr<Entry> entry = Find(name);
  if (entry == nullptr) return NoSession(name);
  entry->last_activity_unix_ms.store(NowUnixMillis(),
                                     std::memory_order_relaxed);
  MutexLock lock(entry->mu);
  if (!entry->tuner->has_objective()) {
    return Status::FailedPrecondition(
        "TuningService: session '" + name +
        "' is external (space source) — drive it through Ask/Tell");
  }
  bool stepped = entry->tuner->Step();
  if (progressed != nullptr) *progressed = stepped;
  return Status::OK();
}

Status TuningService::Drive(const std::string& name) {
  std::shared_ptr<Entry> entry = Find(name);
  if (entry == nullptr) return NoSession(name);
  MutexLock lock(entry->mu);
  if (!entry->tuner->has_objective()) {
    return Status::FailedPrecondition(
        "TuningService: session '" + name +
        "' is external (space source) — drive it through Ask/Tell");
  }
  while (entry->tuner->Step()) {
    entry->last_activity_unix_ms.store(NowUnixMillis(),
                                       std::memory_order_relaxed);
  }
  return Status::OK();
}

Result<std::string> TuningService::Checkpoint(const std::string& name) const {
  std::shared_ptr<Entry> entry = Find(name);
  if (entry == nullptr) return NoSession(name);
  MutexLock lock(entry->mu);
  return entry->tuner->Save();
}

SessionStatus TuningService::StatusLocked(const std::string& name,
                                          const Entry& entry) const {
  const TuningSession& session = entry.tuner->session();
  SessionStatus status;
  status.name = name;
  status.optimizer_key = entry.optimizer_key;
  status.adapter_key = entry.adapter_key;
  status.external = entry.external;
  status.iterations_run = session.iterations_run();
  status.num_iterations = entry.num_iterations;
  status.pending_trials = session.pending_trials();
  status.finished = session.finished();
  // Scalar accessors, not Snapshot(): status polling must not copy
  // the whole knowledge base under the session lock.
  status.default_performance = session.default_performance();
  status.best_performance = session.best_performance();
  status.created_unix_ms = entry.created_unix_ms;
  status.last_activity_unix_ms =
      entry.last_activity_unix_ms.load(std::memory_order_relaxed);
  return status;
}

Result<SessionStatus> TuningService::GetStatus(const std::string& name) const {
  std::shared_ptr<Entry> entry = Find(name);
  if (entry == nullptr) return NoSession(name);
  MutexLock lock(entry->mu);
  return StatusLocked(name, *entry);
}

std::vector<SessionStatus> TuningService::ListSessions() const {
  std::vector<std::pair<std::string, std::shared_ptr<Entry>>> entries;
  {
    MutexLock lock(mu_);
    entries.assign(sessions_.begin(), sessions_.end());
  }
  std::vector<SessionStatus> statuses;
  statuses.reserve(entries.size());
  for (const auto& [name, entry] : entries) {
    MutexLock lock(entry->mu);
    statuses.push_back(StatusLocked(name, *entry));
  }
  return statuses;
}

Result<SessionResult> TuningService::Close(const std::string& name) {
  std::shared_ptr<Entry> entry;
  {
    MutexLock lock(mu_);
    auto it = sessions_.find(name);
    if (it == sessions_.end()) return NoSession(name);
    entry = std::move(it->second);
    sessions_.erase(it);
  }
  MutexLock lock(entry->mu);
  return entry->tuner->session().Snapshot();
}

int TuningService::session_count() const {
  MutexLock lock(mu_);
  return static_cast<int>(sessions_.size());
}

}  // namespace service
}  // namespace llamatune
