#include "src/service/trial_wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/common/fault_injection.h"

namespace llamatune {
namespace service {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::Internal("TrialWal: " + what + " failed for '" + path +
                          "': " + std::strerror(errno));
}

// Writes all of `data`, retrying short writes and EINTR.
bool WriteAllFd(int fd, const char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

TrialWal::~TrialWal() { Close(); }

Status TrialWal::Open(const std::string& path) {
  MutexLock lock(mu_);
  if (fd_ >= 0) ::close(fd_);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) return Errno("open", path);
  path_ = path;
  return Status::OK();
}

Status TrialWal::Append(const std::string& record) {
  MutexLock lock(mu_);
  if (fd_ < 0) return Status::FailedPrecondition("TrialWal: not open");
  std::string line = record;
  line.push_back('\n');
  if (FaultInjection::ShouldFail("wal.append.torn")) {
    // The crash-interrupted append: a prefix lands, the newline does
    // not. Recovery must drop this record (and everything after it).
    size_t half = line.size() / 2;
    WriteAllFd(fd_, line.data(), half);
    ::fsync(fd_);
    return Status::OK();
  }
  if (!WriteAllFd(fd_, line.data(), line.size())) {
    return Errno("write", path_);
  }
  if (::fsync(fd_) != 0) return Errno("fsync", path_);
  return Status::OK();
}

Status TrialWal::Truncate() {
  MutexLock lock(mu_);
  if (fd_ < 0) return Status::FailedPrecondition("TrialWal: not open");
  if (::ftruncate(fd_, 0) != 0) return Errno("ftruncate", path_);
  if (::fsync(fd_) != 0) return Errno("fsync", path_);
  return Status::OK();
}

void TrialWal::Close() {
  MutexLock lock(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::vector<std::string>> TrialWal::ReadRecords(
    const std::string& path) {
  std::vector<std::string> records;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return records;  // no log: nothing to replay
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string contents = buf.str();
  size_t pos = 0;
  while (pos < contents.size()) {
    size_t nl = contents.find('\n', pos);
    if (nl == std::string::npos) break;  // torn tail: drop
    records.push_back(contents.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return records;
}

}  // namespace service
}  // namespace llamatune
