#pragma once

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/sync.h"

namespace llamatune {
namespace service {

/// \brief Per-session write-ahead trial log.
///
/// The server appends one fsync'd record per committed state-changing
/// request (ask, tell, expire, step), so a crash between periodic
/// autosaves loses at most the request that was in flight: recovery
/// loads the last autosave checkpoint, then replays the WAL tail
/// idempotently on top (see docs/resilience.md for the record grammar
/// and the recovery order proof sketch).
///
/// One record is one '\n'-terminated line. Appends are serialized by
/// an internal mutex and each append is followed by fsync before the
/// call returns — a record the caller saw acknowledged is durable.
/// ReadRecords tolerates a torn tail: a final line without its
/// newline (the append that was racing the crash) is ignored.
///
/// The log is truncated by the autosave sweep once a checkpoint
/// covering every record has been persisted *and* the session has no
/// pending trials (a pending trial's ask record must survive until
/// its round commits into a checkpoint, or a tell recorded after the
/// checkpoint would reference an id recovery cannot rebuild).
class TrialWal {
 public:
  TrialWal() = default;
  ~TrialWal();
  TrialWal(const TrialWal&) = delete;
  TrialWal& operator=(const TrialWal&) = delete;

  /// Opens (creating if needed) the log at `path` for appending.
  Status Open(const std::string& path);

  /// Appends one record (a single line WITHOUT the trailing newline)
  /// and fsyncs. Fault site "wal.append.torn" simulates the
  /// crash-interrupted write: only a prefix of the record reaches the
  /// file and no newline terminates it.
  Status Append(const std::string& record);

  /// Truncates the log to empty (after an autosave made it
  /// redundant) and fsyncs.
  Status Truncate();

  void Close();
  bool is_open() const {
    MutexLock lock(mu_);
    return fd_ >= 0;
  }
  std::string path() const {
    MutexLock lock(mu_);
    return path_;
  }

  /// Reads every complete record from the log at `path`. A torn tail
  /// (final line with no newline) is dropped silently; a missing file
  /// yields an empty list.
  static Result<std::vector<std::string>> ReadRecords(
      const std::string& path);

 private:
  mutable Mutex mu_;
  int fd_ GUARDED_BY(mu_) = -1;
  std::string path_ GUARDED_BY(mu_);
};

}  // namespace service
}  // namespace llamatune
