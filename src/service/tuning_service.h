#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/sync.h"
#include "src/core/early_stopping.h"
#include "src/core/trial.h"
#include "src/core/tuning_session.h"
#include "src/dbsim/simulated_postgres.h"
#include "src/harness/tuner.h"

namespace llamatune {
namespace service {

/// \brief Everything needed to spin up one tuning job. Exactly one
/// objective source must be set:
///
///  * `workload`   — tune the bundled simulated PostgreSQL; the
///                   service can evaluate trials itself (Step/Drive).
///  * `objective`  — caller-owned external ObjectiveFunction; the
///                   service can still evaluate via Step/Drive.
///  * `space`      — external DBMS the service cannot call into: only
///                   the knob space is known and the caller measures
///                   every trial through Ask/Tell.
struct SessionSpec {
  std::optional<dbsim::WorkloadSpec> workload;
  dbsim::SimulatedPostgresOptions db_options;
  ObjectiveFunction* objective = nullptr;
  const ConfigSpace* space = nullptr;
  /// Objective convention for `space` sources (false = latency-style).
  bool maximize = true;

  /// OptimizerRegistry / AdapterRegistry keys.
  std::string optimizer_key = "smac";
  std::string adapter_key = "llamatune";
  uint64_t seed = 42;
  int num_iterations = 100;
  int batch_size = 1;
  /// Executor cap for this session's parallel batch evaluation over
  /// the shared thread pool (0 = pool size).
  int num_threads = 0;
  std::optional<EarlyStoppingPolicy> early_stopping;
  /// Deadline for pending (asked, untold) trials in milliseconds; 0
  /// disables. Overdue trials are expired by ExpireOverdue (the
  /// server's maintenance sweep calls it): budget reclaimed, late
  /// Tell answered with TrialExpired.
  int64_t pending_deadline_ms = 0;
  /// Racing (successive-halving) evaluation: each budget iteration
  /// races a cohort of configurations through rungs of short runs
  /// (see SessionOptions::racing).
  std::optional<RacingOptions> racing;
};

/// \brief A point-in-time view of one managed session.
struct SessionStatus {
  std::string name;
  std::string optimizer_key;
  std::string adapter_key;
  /// True when the caller drives evaluation (a `space` source).
  bool external = false;
  int iterations_run = 0;
  int num_iterations = 0;
  int pending_trials = 0;
  /// No further trials will be handed out (budget exhausted or early
  /// stop); pending trials may still need telling.
  bool finished = false;
  double default_performance = 0.0;
  double best_performance = 0.0;
  /// Wall-clock milliseconds since the Unix epoch when the session was
  /// created (CreateSession/Resume).
  int64_t created_unix_ms = 0;
  /// Wall-clock milliseconds of the last *driving* operation — ask,
  /// tell, step, or drive. Status polls and checkpoints deliberately
  /// do not count as activity, so idle-eviction sweeps that poll
  /// GetStatus (or autosave sweeps that call Checkpoint) cannot keep a
  /// dead session alive forever.
  int64_t last_activity_unix_ms = 0;
};

/// Wall-clock milliseconds since the Unix epoch (the timebase of the
/// SessionStatus timestamps).
int64_t NowUnixMillis();

/// \brief The serve-style entry point: a registry of named, concurrent
/// tuning sessions driven over the ask/tell protocol (ROADMAP
/// "long-running tuning service" item).
///
/// Each session owns a full tuner stack (objective/space + adapter +
/// optimizer + TuningSession) built through TunerBuilder from registry
/// keys. Calls on *different* sessions proceed concurrently — the
/// service holds one mutex per session plus a registry mutex, and all
/// heavy optimizer work (model refits, acquisition scoring, batch
/// evaluation) runs over the shared nest-safe ThreadPool, so N
/// sessions time-share the machine instead of oversubscribing it.
/// Calls on the *same* session serialize, preserving the session's
/// deterministic trajectory; per-session results are bit-for-bit
/// reproducible at any thread count and any cross-session
/// interleaving.
///
/// Checkpoint/Resume round-trip a session through the versioned text
/// format of TuningSession::Save/Restore: Resume(name, spec, text)
/// rebuilds the stack from `spec` (which must match the original
/// seed/keys/options — Restore verifies bit-for-bit and fails loudly
/// otherwise) and replays the trajectory, after which the session
/// continues exactly as the uninterrupted one would have.
class TuningService {
 public:
  TuningService() = default;
  TuningService(const TuningService&) = delete;
  TuningService& operator=(const TuningService&) = delete;

  /// Registers a new session under `name`. Fails with
  /// SessionAlreadyExists for duplicate names, or with the
  /// TunerBuilder error for bad specs/keys.
  Status CreateSession(const std::string& name, const SessionSpec& spec);

  /// CreateSession + TuningSession::Restore in one step.
  Status Resume(const std::string& name, const SessionSpec& spec,
                const std::string& checkpoint);

  /// \name Ask/tell (any session)
  /// @{
  Result<Trial> Ask(const std::string& name);
  Result<std::vector<Trial>> AskBatch(const std::string& name, int n);
  Status Tell(const std::string& name, const TrialResult& result);
  Status TellBatch(const std::string& name,
                   const std::vector<TrialResult>& results);

  /// The session's pending (asked, untold) trials in id order — lets
  /// a retrying remote caller adopt a trial whose Ask reply was lost
  /// instead of drawing a fresh (different) suggestion.
  Result<std::vector<Trial>> GetPending(const std::string& name) const;

  /// Expires one pending trial (see TuningSession::Expire).
  Status Expire(const std::string& name, int64_t trial_id);

  /// The id the session's next Ask will assign (the server's WAL
  /// replay cursor; see TuningSession::next_trial_id).
  Result<int64_t> NextTrialId(const std::string& name) const;

  /// Expires overdue pending trials on *every* session whose spec set
  /// pending_deadline_ms; returns the total expired. Called by the
  /// server's periodic maintenance sweep.
  int ExpireOverdue(int64_t now_ms);

  /// Per-session variant returning the expired ids, so the server can
  /// append matching records to the session's trial WAL.
  Result<std::vector<int64_t>> ExpireOverdueSession(const std::string& name,
                                                    int64_t now_ms);
  /// @}

  /// Runs one session-driven round (workload/objective sources only;
  /// `space` sessions fail with FailedPrecondition). Returns OK with
  /// `*progressed = false` once the session is done.
  Status Step(const std::string& name, bool* progressed = nullptr);

  /// Steps the session until it finishes (workload/objective sources).
  Status Drive(const std::string& name);

  /// Serializes the session's committed trajectory.
  Result<std::string> Checkpoint(const std::string& name) const;

  Result<SessionStatus> GetStatus(const std::string& name) const;

  /// Status of every live session, sorted by name.
  std::vector<SessionStatus> ListSessions() const;

  /// Removes the session and returns its final result snapshot.
  Result<SessionResult> Close(const std::string& name);

  int session_count() const;

 private:
  struct Entry {
    /// Serializes all operations on this session; taken *after*
    /// releasing the registry mutex so sessions never block each
    /// other.
    mutable Mutex mu;
    /// The whole tuner stack is mu-serialized: every Ask/Tell/Step/
    /// Save path mutates optimizer and session state behind this
    /// pointer.
    std::unique_ptr<harness::Tuner> tuner GUARDED_BY(mu);
    /// Immutable after BuildEntry publishes the entry.
    std::string optimizer_key;
    std::string adapter_key;
    bool external = false;
    int num_iterations = 0;
    int64_t created_unix_ms = 0;
    /// Updated lock-free by every driving operation (see
    /// SessionStatus::last_activity_unix_ms for what counts).
    std::atomic<int64_t> last_activity_unix_ms{0};
  };

  /// Looks up `name` under the registry lock; the returned shared_ptr
  /// keeps the entry alive even if Close() races.
  std::shared_ptr<Entry> Find(const std::string& name) const;
  SessionStatus StatusLocked(const std::string& name,
                             const Entry& entry) const REQUIRES(entry.mu);
  static Status BuildEntry(const SessionSpec& spec,
                           std::shared_ptr<Entry>* out);

  mutable Mutex mu_;
  std::map<std::string, std::shared_ptr<Entry>> sessions_ GUARDED_BY(mu_);
};

}  // namespace service
}  // namespace llamatune
