#include "src/optimizer/replay_buffer.h"

namespace llamatune {

void ReplayBuffer::Add(Transition transition) {
  if (buffer_.size() < capacity_) {
    buffer_.push_back(std::move(transition));
  } else {
    buffer_[next_] = std::move(transition);
    next_ = (next_ + 1) % capacity_;
  }
}

std::vector<Transition> ReplayBuffer::Sample(size_t batch_size,
                                             Rng* rng) const {
  std::vector<Transition> batch;
  if (buffer_.empty()) return batch;
  size_t n = std::min(batch_size, buffer_.size());
  batch.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    size_t idx = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(buffer_.size()) - 1));
    batch.push_back(buffer_[idx]);
  }
  return batch;
}

}  // namespace llamatune
