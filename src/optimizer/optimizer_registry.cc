#include "src/optimizer/optimizer_registry.h"

#include "src/optimizer/best_config.h"
#include "src/optimizer/ddpg.h"
#include "src/optimizer/gp_bo.h"
#include "src/optimizer/random_search.h"
#include "src/optimizer/smac.h"

namespace llamatune {

OptimizerRegistry::OptimizerRegistry() {
  Register("smac", [](const SearchSpace& space, uint64_t seed)
               -> Result<std::unique_ptr<Optimizer>> {
    return std::unique_ptr<Optimizer>(
        new SmacOptimizer(space, SmacOptions{}, seed));
  });
  Register("gpbo", [](const SearchSpace& space, uint64_t seed)
               -> Result<std::unique_ptr<Optimizer>> {
    return std::unique_ptr<Optimizer>(
        new GpBoOptimizer(space, GpBoOptions{}, seed));
  });
  RegisterAlias("gp-bo", "gpbo");
  // Batch-aware GP-BO variants: identical to "gpbo" at batch size 1
  // (and under Suggest()); they differ only in how SuggestBatch
  // diversifies picks 2..q of a round.
  Register("gpbo-qei", [](const SearchSpace& space, uint64_t seed)
               -> Result<std::unique_ptr<Optimizer>> {
    GpBoOptions options;
    options.batch_mode = GpBatchMode::kFantasyQei;
    return std::unique_ptr<Optimizer>(new GpBoOptimizer(space, options, seed));
  });
  Register("gpbo-lp", [](const SearchSpace& space, uint64_t seed)
               -> Result<std::unique_ptr<Optimizer>> {
    GpBoOptions options;
    options.batch_mode = GpBatchMode::kLocalPenalization;
    return std::unique_ptr<Optimizer>(new GpBoOptimizer(space, options, seed));
  });
  // Large-n GP-BO: identical to "gpbo" until the history reaches
  // GpOptions::sparse_threshold, then suggestion scoring switches to
  // the inducing-point sparse GP (O(n m^2) fit, O(m^2) predict) so
  // long sessions never hit the exact model's O(n^3) wall. The
  // "-sparse128" variant doubles the inducing budget for a closer
  // posterior at 4x the fit cost.
  Register("gpbo-sparse", [](const SearchSpace& space, uint64_t seed)
               -> Result<std::unique_ptr<Optimizer>> {
    GpBoOptions options;
    options.gp.sparse_threshold = 256;
    options.gp.num_inducing = 64;
    return std::unique_ptr<Optimizer>(new GpBoOptimizer(space, options, seed));
  });
  Register("gpbo-sparse128", [](const SearchSpace& space, uint64_t seed)
               -> Result<std::unique_ptr<Optimizer>> {
    GpBoOptions options;
    options.gp.sparse_threshold = 256;
    options.gp.num_inducing = 128;
    return std::unique_ptr<Optimizer>(new GpBoOptimizer(space, options, seed));
  });
  Register("ddpg", [](const SearchSpace& space, uint64_t seed)
               -> Result<std::unique_ptr<Optimizer>> {
    // DdpgOptions::state_dim must equal the simulator's metric count
    // (ObserveMetrics truncates/pads to it); registry_test pins
    // DdpgOptions{}.state_dim == dbsim::kNumMetrics so a metric-count
    // change cannot silently clip the RL state.
    return std::unique_ptr<Optimizer>(
        new DdpgOptimizer(space, DdpgOptions{}, seed));
  });
  Register("random", [](const SearchSpace& space, uint64_t seed)
               -> Result<std::unique_ptr<Optimizer>> {
    return std::unique_ptr<Optimizer>(new RandomSearchOptimizer(space, seed));
  });
  Register("bestconfig", [](const SearchSpace& space, uint64_t seed)
               -> Result<std::unique_ptr<Optimizer>> {
    return std::unique_ptr<Optimizer>(
        new BestConfigOptimizer(space, BestConfigOptions{}, seed));
  });
}

OptimizerRegistry& OptimizerRegistry::Global() {
  static OptimizerRegistry* registry = new OptimizerRegistry();
  return *registry;
}

Status OptimizerRegistry::Register(const std::string& key, Factory factory) {
  if (key.empty()) {
    return Status::InvalidArgument("empty optimizer key");
  }
  if (aliases_.count(key) > 0 ||
      !factories_.emplace(key, std::move(factory)).second) {
    return Status::AlreadyExists("optimizer '" + key + "' already registered");
  }
  return Status::OK();
}

Status OptimizerRegistry::RegisterAlias(const std::string& alias,
                                        const std::string& key) {
  if (alias.empty()) {
    return Status::InvalidArgument("empty optimizer alias");
  }
  if (factories_.count(alias) > 0 || aliases_.count(alias) > 0) {
    return Status::AlreadyExists("optimizer '" + alias +
                                 "' already registered");
  }
  if (factories_.count(key) == 0) {
    return Status::NotFound("optimizer alias '" + alias +
                            "' targets unknown key '" + key + "'");
  }
  aliases_[alias] = key;
  return Status::OK();
}

Result<std::unique_ptr<Optimizer>> OptimizerRegistry::Create(
    const std::string& key, const SearchSpace& space, uint64_t seed) const {
  auto alias = aliases_.find(key);
  auto it = factories_.find(alias == aliases_.end() ? key : alias->second);
  if (it == factories_.end()) {
    std::string known;
    for (const auto& [name, factory] : factories_) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    return Status::NotFound("unknown optimizer '" + key +
                            "' (known: " + known + ")");
  }
  return it->second(space, seed);
}

bool OptimizerRegistry::Contains(const std::string& key) const {
  return factories_.count(key) > 0 || aliases_.count(key) > 0;
}

std::vector<std::string> OptimizerRegistry::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) keys.push_back(name);
  return keys;
}

std::vector<std::string> OptimizerRegistry::Aliases() const {
  std::vector<std::string> names;
  names.reserve(aliases_.size());
  for (const auto& [alias, key] : aliases_) names.push_back(alias);
  return names;
}

}  // namespace llamatune
