#include "src/optimizer/history_io.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "src/common/serde.h"

namespace llamatune {

namespace {

bool BitsEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

}  // namespace

std::string SerializeHistory(const std::vector<Observation>& history) {
  std::ostringstream out;
  for (const Observation& obs : history) {
    out << "obs " << obs.point.size();
    for (double v : obs.point) out << ' ' << EncodeDoubleBits(v);
    out << ' ' << EncodeDoubleBits(obs.value) << '\n';
  }
  return out.str();
}

Result<std::vector<Observation>> ParseHistory(const std::string& text,
                                              int expected_count) {
  std::istringstream in(text);
  std::vector<Observation> history;
  // Clamped: counts come from untrusted text; oversized headers must
  // fail via the truncated-stream checks, not throw bad_alloc.
  history.reserve(std::min(std::max(expected_count, 0), 4096));
  std::string tag;
  while (in >> tag) {
    if (tag != "obs") {
      return Status::InvalidArgument("history: expected 'obs', got: " + tag);
    }
    std::string count_tok;
    if (!(in >> count_tok)) {
      return Status::InvalidArgument("history: truncated obs line");
    }
    Result<int64_t> dim = ParseInt64(count_tok);
    if (!dim.ok()) return dim.status();
    Observation obs;
    obs.point.reserve(static_cast<size_t>(
        std::min<int64_t>(std::max<int64_t>(*dim, 0), 4096)));
    std::string token;
    for (int64_t i = 0; i < *dim; ++i) {
      if (!(in >> token)) {
        return Status::InvalidArgument("history: truncated point");
      }
      Result<double> v = DecodeDoubleBits(token);
      if (!v.ok()) return v.status();
      obs.point.push_back(*v);
    }
    if (!(in >> token)) {
      return Status::InvalidArgument("history: missing value");
    }
    Result<double> value = DecodeDoubleBits(token);
    if (!value.ok()) return value.status();
    obs.value = *value;
    history.push_back(std::move(obs));
  }
  if (expected_count >= 0 &&
      static_cast<int>(history.size()) != expected_count) {
    return Status::InvalidArgument(
        "history: observation count mismatch: expected " +
        std::to_string(expected_count) + ", parsed " +
        std::to_string(history.size()));
  }
  return history;
}

bool HistoryBitsEqual(const std::vector<Observation>& a,
                      const std::vector<Observation>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].point.size() != b[i].point.size()) return false;
    if (!BitsEqual(a[i].value, b[i].value)) return false;
    for (size_t j = 0; j < a[i].point.size(); ++j) {
      if (!BitsEqual(a[i].point[j], b[i].point[j])) return false;
    }
  }
  return true;
}

}  // namespace llamatune
