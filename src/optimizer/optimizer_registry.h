#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/optimizer/optimizer.h"
#include "src/optimizer/search_space.h"

namespace llamatune {

/// \brief Open, string-keyed factory for optimizers.
///
/// Builtin keys: "smac", "gpbo" (alias "gp-bo"), "gpbo-qei", "gpbo-lp",
/// "gpbo-sparse", "gpbo-sparse128", "ddpg", "random", "bestconfig".
/// The "-qei" / "-lp" suffixed GP-BO keys select the batch-aware
/// SuggestBatch modes (greedy q-EI via fantasized observations / local
/// penalization; see GpBatchMode) and behave exactly like "gpbo" at
/// batch size 1. The "-sparse" keys enable the large-n inducing-point
/// switchover (GpOptions::sparse_threshold) and behave exactly like
/// "gpbo" below the threshold.
/// LlamaTune's claim is that its adapters compose with
/// *any* optimizer unchanged — the registry is how new backends become
/// addressable from the harness, benches, and TunerBuilder without
/// touching a switch statement.
class OptimizerRegistry {
 public:
  using Factory = std::function<Result<std::unique_ptr<Optimizer>>(
      const SearchSpace& space, uint64_t seed)>;

  /// The process-wide registry, pre-loaded with the builtins.
  static OptimizerRegistry& Global();

  /// Registers `factory` under `key` (fails with AlreadyExists on
  /// duplicates).
  Status Register(const std::string& key, Factory factory);

  /// Registers `alias` as another name for canonical key `key`.
  /// Aliases resolve in Create()/Contains() but are excluded from
  /// Keys(), so enumerating backends never runs one twice.
  Status RegisterAlias(const std::string& alias, const std::string& key);

  /// Instantiates the optimizer registered under `key` (canonical or
  /// alias) over `space`. Fails with NotFound for unknown keys
  /// (message lists known keys).
  Result<std::unique_ptr<Optimizer>> Create(const std::string& key,
                                            const SearchSpace& space,
                                            uint64_t seed) const;

  bool Contains(const std::string& key) const;

  /// All canonical keys (no aliases), sorted.
  std::vector<std::string> Keys() const;

  /// All registered aliases, sorted.
  std::vector<std::string> Aliases() const;

 private:
  OptimizerRegistry();

  std::map<std::string, Factory> factories_;
  std::map<std::string, std::string> aliases_;
};

}  // namespace llamatune
