#pragma once

#include <cstdint>

#include "src/common/rng.h"
#include "src/optimizer/optimizer.h"

namespace llamatune {

/// \brief Pure random search baseline: every suggestion is a uniform
/// draw from the space. Useful as a control and in tests.
class RandomSearchOptimizer : public Optimizer {
 public:
  RandomSearchOptimizer(SearchSpace space, uint64_t seed)
      : Optimizer(std::move(space)), rng_(seed) {}

  std::vector<double> Suggest() override;
  std::string name() const override { return "RandomSearch"; }

 private:
  Rng rng_;
};

}  // namespace llamatune
