#include "src/optimizer/gp_bo.h"

#include <algorithm>

#include "src/model/acquisition.h"
#include "src/sampling/latin_hypercube.h"
#include "src/sampling/uniform.h"

namespace llamatune {

GpBoOptimizer::GpBoOptimizer(SearchSpace space, GpBoOptions options,
                             uint64_t seed)
    : Optimizer(std::move(space)),
      options_(options),
      rng_(seed),
      gp_(space_, options.gp, HashCombine(seed, 0xfeedULL)) {}

std::vector<double> GpBoOptimizer::Suggest() {
  int iter = suggest_count_++;
  if (iter < options_.n_init) {
    if (init_design_.empty()) {
      init_design_ = LatinHypercubeSample(space_, options_.n_init, &rng_);
    }
    return init_design_[iter];
  }
  return SuggestByModel();
}

void GpBoOptimizer::Observe(const std::vector<double>& point, double value) {
  Optimizer::Observe(point, value);
  // Stream the observation into the GP now (O(d)); the next
  // model-based suggestion extends the cached fit instead of
  // rebuilding the training set from history.
  gp_.AddObservation(point, value);
}

std::vector<double> GpBoOptimizer::SuggestByModel() {
  if (history_.empty()) return UniformSample(space_, &rng_);
  Status st = gp_.Refit();
  if (!st.ok()) {
    // Degenerate Gram matrix: fall back to exploration.
    return UniformSample(space_, &rng_);
  }

  double best = BestValue();

  std::vector<std::vector<double>> candidates =
      UniformSamples(space_, options_.num_random_candidates, &rng_);
  std::vector<int> order(history_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return history_[a].value > history_[b].value;
  });
  int parents = std::min<int>(options_.num_local_parents,
                              static_cast<int>(order.size()));
  for (int p = 0; p < parents; ++p) {
    const std::vector<double>& parent = history_[order[p]].point;
    for (int k = 0; k < options_.num_neighbors_per_parent; ++k) {
      std::vector<double> child = parent;
      int d = space_.num_dims();
      int num_mutations = 1 + static_cast<int>(rng_.UniformInt(0, d / 32));
      for (int m = 0; m < num_mutations; ++m) {
        int j = static_cast<int>(rng_.UniformInt(0, d - 1));
        const SearchDim& dim = space_.dim(j);
        if (dim.type == SearchDim::Type::kCategorical) {
          child[j] =
              static_cast<double>(rng_.UniformInt(0, dim.num_categories - 1));
        } else {
          double width = (dim.hi - dim.lo) * options_.neighbor_stddev;
          child[j] = space_.Snap(j, parent[j] + rng_.Gaussian(0.0, width));
        }
      }
      candidates.push_back(std::move(child));
    }
  }

  std::vector<double> means, variances;
  gp_.PredictBatch(candidates, &means, &variances);
  double best_ei = -1.0;
  int best_idx = 0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    double ei = ExpectedImprovement(means[i], variances[i], best);
    if (ei > best_ei) {
      best_ei = ei;
      best_idx = static_cast<int>(i);
    }
  }
  return candidates[best_idx];
}

}  // namespace llamatune
