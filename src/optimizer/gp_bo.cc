#include "src/optimizer/gp_bo.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "src/common/math_util.h"
#include "src/model/acquisition.h"
#include "src/sampling/latin_hypercube.h"
#include "src/sampling/uniform.h"

namespace llamatune {

namespace {

bool ContainsPoint(const std::vector<std::vector<double>>& set,
                   const std::vector<double>& point) {
  for (const std::vector<double>& p : set) {
    if (p == point) return true;
  }
  return false;
}

}  // namespace

GpBoOptimizer::GpBoOptimizer(SearchSpace space, GpBoOptions options,
                             uint64_t seed)
    : Optimizer(std::move(space)),
      options_(options),
      rng_(seed),
      gp_(space_, options.gp, HashCombine(seed, 0xfeedULL)) {
  if (options_.gp.sparse_threshold > 0) {
    sparse_gp_ = std::make_unique<SparseGaussianProcess>(
        space_, options_.gp, HashCombine(seed, 0xfeedULL));
  }
}

bool GpBoOptimizer::UseSparse() const {
  return sparse_gp_ != nullptr &&
         static_cast<int>(history_.size()) >= options_.gp.sparse_threshold;
}

std::vector<double> GpBoOptimizer::InitPoint(int iter) {
  if (init_design_.empty()) {
    init_design_ = LatinHypercubeSample(space_, options_.n_init, &rng_);
  }
  return init_design_[iter];
}

std::vector<double> GpBoOptimizer::Suggest() {
  int iter = suggest_count_++;
  if (iter < options_.n_init) return InitPoint(iter);
  return SuggestByModel();
}

std::vector<std::vector<double>> GpBoOptimizer::SuggestBatch(int n) {
  // q == 1 degrades every mode to the plain EI suggestion: the
  // fallback is a single Suggest() call, bit-for-bit.
  if (n <= 1 || options_.batch_mode == GpBatchMode::kSequential) {
    return Optimizer::SuggestBatch(n);
  }
  return options_.batch_mode == GpBatchMode::kFantasyQei ? SuggestBatchQei(n)
                                                         : SuggestBatchLp(n);
}

void GpBoOptimizer::Observe(const std::vector<double>& point, double value) {
  Optimizer::Observe(point, value);
  // Stream the observation into the GP now (O(d)); the next
  // model-based suggestion extends the cached fit instead of
  // rebuilding the training set from history.
  gp_.AddObservation(point, value);
  if (sparse_gp_ != nullptr) sparse_gp_->AddObservation(point, value);
}

std::vector<std::vector<double>> GpBoOptimizer::GenerateCandidates(
    const std::vector<Observation>& extra) {
  std::vector<std::vector<double>> candidates =
      UniformSamples(space_, options_.num_random_candidates, &rng_);
  size_t n_hist = history_.size();
  auto value_at = [&](int i) {
    return static_cast<size_t>(i) < n_hist ? history_[i].value
                                           : extra[i - n_hist].value;
  };
  auto point_at = [&](int i) -> const std::vector<double>& {
    return static_cast<size_t>(i) < n_hist ? history_[i].point
                                           : extra[i - n_hist].point;
  };
  std::vector<int> order(n_hist + extra.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return value_at(a) > value_at(b); });
  int parents = std::min<int>(options_.num_local_parents,
                              static_cast<int>(order.size()));
  for (int p = 0; p < parents; ++p) {
    const std::vector<double>& parent = point_at(order[p]);
    for (int k = 0; k < options_.num_neighbors_per_parent; ++k) {
      std::vector<double> child = parent;
      int d = space_.num_dims();
      int num_mutations = 1 + static_cast<int>(rng_.UniformInt(0, d / 32));
      for (int m = 0; m < num_mutations; ++m) {
        int j = static_cast<int>(rng_.UniformInt(0, d - 1));
        const SearchDim& dim = space_.dim(j);
        if (dim.type == SearchDim::Type::kCategorical) {
          child[j] =
              static_cast<double>(rng_.UniformInt(0, dim.num_categories - 1));
        } else {
          double width = (dim.hi - dim.lo) * options_.neighbor_stddev;
          child[j] = space_.Snap(j, parent[j] + rng_.Gaussian(0.0, width));
        }
      }
      candidates.push_back(std::move(child));
    }
  }
  return candidates;
}

std::vector<double> GpBoOptimizer::SuggestByModel() {
  if (history_.empty()) return UniformSample(space_, &rng_);
  double best = BestValue();
  std::vector<double> means, variances;
  if (UseSparse()) {
    // Large-n path: the exact model keeps accumulating observations
    // (O(d) appends, no fit cost) but the O(n^3)/O(n^2 * pool) exact
    // fit+score is replaced by the O(n m^2)/O(m^2 * pool) sparse one.
    Status st = sparse_gp_->Refit();
    if (!st.ok()) return UniformSample(space_, &rng_);
    std::vector<std::vector<double>> candidates = GenerateCandidates({});
    sparse_gp_->PredictBatch(candidates, &means, &variances);
    return candidates[ArgmaxExpectedImprovement(means, variances, best)];
  }
  Status st = gp_.Refit();
  if (!st.ok()) {
    // Degenerate Gram matrix: fall back to exploration.
    return UniformSample(space_, &rng_);
  }

  std::vector<std::vector<double>> candidates = GenerateCandidates({});
  gp_.PredictBatch(candidates, &means, &variances);
  return candidates[ArgmaxExpectedImprovement(means, variances, best)];
}

std::vector<std::vector<double>> GpBoOptimizer::SuggestBatchQei(int n) {
  std::vector<std::vector<double>> batch;
  batch.reserve(n);
  // Fantasy state, built lazily at the round's first model-based pick:
  // the GP is refit once on the real history, then a copy of the
  // fitted model absorbs one hallucinated observation per pick.
  std::optional<GaussianProcess> fantasy;
  std::vector<Observation> fantasies;
  double fantasy_best = BestValue();
  bool model_ready = false;
  bool model_ok = true;
  for (int i = 0; i < n; ++i) {
    int iter = suggest_count_++;
    if (iter < options_.n_init) {
      batch.push_back(InitPoint(iter));
      continue;
    }
    if (!model_ready) {
      model_ready = true;
      if (history_.empty()) {
        model_ok = false;
      } else {
        model_ok = gp_.Refit().ok();
        // One Refit covers the round's n - i model picks; keep the
        // hyperparameter re-optimization cadence per *suggestion* in
        // step with the sequential path (which refits per Suggest).
        gp_.AdvanceFitSchedule(n - i - 1);
      }
    }
    if (!model_ok) {
      // Mirrors Suggest(): no history / degenerate Gram -> exploration.
      batch.push_back(UniformSample(space_, &rng_));
      continue;
    }
    const GaussianProcess& model = fantasy.has_value() ? *fantasy : gp_;
    std::vector<std::vector<double>> candidates = GenerateCandidates(fantasies);
    std::vector<double> means, variances;
    model.PredictBatch(candidates, &means, &variances);
    // One SoA pass scores the whole pool, then the exclusion scan
    // reads the contiguous EI array: highest-EI candidate at least
    // qei_min_distance away from every point the batch already holds
    // (conditioning alone cannot separate re-picks when the learned
    // noise floor keeps the posterior variance up — the fantasy only
    // collapses the epistemic part). Falls back to the unconstrained
    // maximum if the whole pool sits inside the exclusion balls.
    std::vector<double> ei =
        ExpectedImprovementBatch(means, variances, fantasy_best);
    int best_idx = -1;
    double best_ei = -1.0;
    for (size_t c = 0; c < candidates.size(); ++c) {
      // Non-finite EI (NaN *or* Inf from a degenerate surrogate
      // output) never wins — an Inf pick would poison the fantasy
      // model through Condition().
      if (!std::isfinite(ei[c]) || ei[c] <= best_ei) continue;
      bool excluded = false;
      for (const std::vector<double>& prev : batch) {
        if (NormalizedDistance(space_, candidates[c], prev) <
            options_.qei_min_distance) {
          excluded = true;
          break;
        }
      }
      if (excluded) continue;
      best_ei = ei[c];
      best_idx = static_cast<int>(c);
    }
    if (best_idx < 0) {
      // Whole pool excluded: unconstrained maximum over the EI vector
      // already in hand (same reduction ArgmaxExpectedImprovement
      // runs — index order, non-finite skipped).
      best_idx = 0;
      for (size_t c = 0; c < ei.size(); ++c) {
        if (!std::isfinite(ei[c])) continue;
        if (ei[c] > best_ei) {
          best_ei = ei[c];
          best_idx = static_cast<int>(c);
        }
      }
    }
    std::vector<double> pick = candidates[best_idx];
    if (i + 1 < n) {
      // Hallucinate the outcome at the posterior mean and condition the
      // fantasy model, collapsing its variance there so the next EI
      // maximum lands elsewhere. Deliberately unlike the classic
      // kriging believer, the EI incumbent (fantasy_best) is NOT
      // raised to the hallucinated mean: inflating the bar with
      // unverified lies made later picks flee to far high-variance
      // regions and measurably hurt sample efficiency on the
      // batch-quality grid; the separation radius below handles
      // re-pick pressure instead.
      if (!fantasy.has_value()) fantasy = gp_;
      double mu = means[best_idx];
      if (fantasy->Condition(pick, mu).ok()) {
        fantasies.push_back({pick, mu});
      } else {
        // Conditioning lost positive definiteness even after jitter
        // escalation: explore for the rest of the round.
        model_ok = false;
      }
    }
    batch.push_back(std::move(pick));
  }
  return batch;
}

double GpBoOptimizer::EstimateLipschitz() const {
  // Steepest observed slope over recent history pairs. The window cap
  // keeps the sweep O(min(n, 256)^2) — late in a session the recent
  // observations dominate the slope estimate anyway.
  constexpr int kWindow = 256;
  int n = static_cast<int>(history_.size());
  int start = n > kWindow ? n - kWindow : 0;
  double lipschitz = 0.0;
  for (int i = start; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      double dist = NormalizedDistance(space_, history_[i].point,
                                       history_[j].point);
      if (dist > 1e-12) {
        lipschitz = std::max(
            lipschitz, std::abs(history_[i].value - history_[j].value) / dist);
      }
    }
  }
  return std::max(lipschitz, options_.lp_min_lipschitz);
}

std::vector<std::vector<double>> GpBoOptimizer::SuggestBatchLp(int n) {
  std::vector<std::vector<double>> batch;
  batch.reserve(n);
  // Shared round state, built at the first model-based pick: one
  // candidate pool, one PredictBatch, one EI vector.
  std::vector<std::vector<double>> candidates;
  std::vector<double> means, variances, ei;
  /// One exclusion ball per point the round already holds — prior
  /// model picks AND any init-design picks of a straddling round
  /// (their predicted outcomes are unknown too, and a model pick
  /// epsilon-close to one wastes an evaluation just the same).
  struct PenaltyBall {
    std::vector<double> point;
    double mean = 0.0;
    double variance = 0.0;
  };
  std::vector<PenaltyBall> balls;
  double lipschitz = 0.0;
  double incumbent = BestValue();
  bool model_ready = false;
  bool model_ok = true;
  for (int i = 0; i < n; ++i) {
    int iter = suggest_count_++;
    if (iter < options_.n_init) {
      batch.push_back(InitPoint(iter));
      continue;
    }
    if (!model_ready) {
      model_ready = true;
      int model_picks = n - i;
      if (history_.empty()) {
        model_ok = false;
      } else {
        model_ok = gp_.Refit().ok();
        // One Refit covers all of the round's model picks (see
        // SuggestBatchQei).
        gp_.AdvanceFitSchedule(model_picks - 1);
      }
      if (model_ok) {
        // One candidate pool per model pick — the same total candidate
        // budget the sequential fallback scans across its q Suggest()
        // calls — scored in a single PredictBatch pass.
        for (int k = 0; k < model_picks; ++k) {
          std::vector<std::vector<double>> pool = GenerateCandidates({});
          for (auto& point : pool) candidates.push_back(std::move(point));
        }
        gp_.PredictBatch(candidates, &means, &variances);
        ei = ExpectedImprovementBatch(means, variances, incumbent);
        lipschitz = EstimateLipschitz();
        if (!batch.empty()) {
          // Seed balls around the round's init picks.
          std::vector<double> init_means, init_variances;
          gp_.PredictBatch(batch, &init_means, &init_variances);
          for (size_t b = 0; b < batch.size(); ++b) {
            balls.push_back({batch[b], init_means[b], init_variances[b]});
          }
        }
      }
    }
    if (!model_ok) {
      batch.push_back(UniformSample(space_, &rng_));
      continue;
    }
    // M approximates the objective's maximum: the exclusion radius
    // around ball b is ~ (M - mu_b) / L (González et al. 2016). Picks
    // predicted above the incumbent raise M so their own ball does not
    // invert.
    double m = incumbent;
    for (const PenaltyBall& ball : balls) m = std::max(m, ball.mean);
    int best_idx = -1;
    double best_score = -1.0;
    for (size_t c = 0; c < candidates.size(); ++c) {
      // Exclude any point the round already holds (picks and their
      // duplicates elsewhere in the pool — coarse grids repeat).
      if (ContainsPoint(batch, candidates[c])) continue;
      double score = ei[c];
      // Penalties only shrink the score, so candidates already below
      // the running maximum can be pruned before the distance loop.
      if (score <= best_score) continue;
      for (const PenaltyBall& ball : balls) {
        double sigma2 = std::max(ball.variance, 1e-12);
        double dist = NormalizedDistance(space_, candidates[c], ball.point);
        double z = (lipschitz * dist - std::max(m - ball.mean, 0.0)) /
                   std::sqrt(2.0 * sigma2);
        score *= NormCdf(z);
        if (score <= best_score) break;
      }
      if (score > best_score) {
        best_score = score;
        best_idx = static_cast<int>(c);
      }
    }
    if (best_idx < 0) {
      // Every candidate is already in the batch (q exceeds the pool):
      // fall back to exploration.
      batch.push_back(UniformSample(space_, &rng_));
      continue;
    }
    balls.push_back(
        {candidates[best_idx], means[best_idx], variances[best_idx]});
    batch.push_back(candidates[best_idx]);
  }
  return batch;
}

}  // namespace llamatune
