#include "src/optimizer/ddpg.h"

#include <algorithm>
#include <cmath>

#include "src/common/math_util.h"
#include "src/sampling/uniform.h"

namespace llamatune {

DdpgOptimizer::DdpgOptimizer(SearchSpace space, DdpgOptions options,
                             uint64_t seed)
    : Optimizer(std::move(space)),
      options_(options),
      rng_(seed),
      actor_adam_(options.actor_lr),
      critic_adam_(options.critic_lr),
      replay_(options.replay_capacity),
      noise_(options.noise_stddev) {
  int action_dim = space_.num_dims();
  actor_ = std::make_unique<Mlp>(options_.state_dim, options_.actor_hidden,
                                 action_dim, OutputActivation::kTanh, &rng_);
  actor_target_ = std::make_unique<Mlp>(options_.state_dim,
                                        options_.actor_hidden, action_dim,
                                        OutputActivation::kTanh, &rng_);
  critic_ = std::make_unique<Mlp>(options_.state_dim + action_dim,
                                  options_.critic_hidden, 1,
                                  OutputActivation::kLinear, &rng_);
  critic_target_ = std::make_unique<Mlp>(options_.state_dim + action_dim,
                                         options_.critic_hidden, 1,
                                         OutputActivation::kLinear, &rng_);
  actor_target_->CopyFrom(*actor_);
  critic_target_->CopyFrom(*critic_);
  actor_->RegisterParams(&actor_adam_);
  critic_->RegisterParams(&critic_adam_);
}

DdpgOptimizer::~DdpgOptimizer() = default;

std::vector<double> DdpgOptimizer::ActionToPoint(
    const std::vector<double>& action) const {
  std::vector<double> point(space_.num_dims());
  for (int j = 0; j < space_.num_dims(); ++j) {
    const SearchDim& dim = space_.dim(j);
    double u = Clamp((action[j] + 1.0) / 2.0, 0.0, 1.0);
    if (dim.type == SearchDim::Type::kCategorical) {
      int bin = static_cast<int>(std::floor(u * dim.num_categories));
      if (bin >= dim.num_categories) bin = static_cast<int>(dim.num_categories) - 1;
      point[j] = static_cast<double>(bin);
    } else {
      point[j] = space_.Snap(j, dim.lo + u * (dim.hi - dim.lo));
    }
  }
  return point;
}

std::vector<double> DdpgOptimizer::PointToAction(
    const std::vector<double>& point) const {
  std::vector<double> action(space_.num_dims());
  for (int j = 0; j < space_.num_dims(); ++j) {
    const SearchDim& dim = space_.dim(j);
    double u;
    if (dim.type == SearchDim::Type::kCategorical) {
      u = (point[j] + 0.5) / static_cast<double>(dim.num_categories);
    } else {
      u = dim.hi > dim.lo ? (point[j] - dim.lo) / (dim.hi - dim.lo) : 0.5;
    }
    action[j] = Clamp(2.0 * u - 1.0, -1.0, 1.0);
  }
  return action;
}

std::vector<double> DdpgOptimizer::Suggest() {
  std::vector<double> action;
  if (!have_state_) {
    // No DBMS state yet: explore uniformly.
    std::vector<double> point = UniformSample(space_, &rng_);
    last_action_ = PointToAction(point);
    prev_state_.assign(options_.state_dim, 0.0);
    have_pending_action_ = true;
    return point;
  }
  action = actor_->Forward(state_);
  for (double& a : action) {
    a = Clamp(a + rng_.Gaussian(0.0, noise_), -1.0, 1.0);
  }
  noise_ = std::max(options_.min_noise, noise_ * options_.noise_decay);
  last_action_ = action;
  prev_state_ = state_;
  have_pending_action_ = true;
  return ActionToPoint(action);
}

void DdpgOptimizer::ObserveMetrics(const std::vector<double>& metrics) {
  state_ = metrics;
  state_.resize(options_.state_dim, 0.0);
  have_state_ = true;
}

void DdpgOptimizer::Observe(const std::vector<double>& point, double value) {
  Optimizer::Observe(point, value);
  if (!have_initial_perf_) {
    initial_perf_ = value;
    prev_perf_ = value;
    have_initial_perf_ = true;
  }
  double denom = std::max(std::abs(initial_perf_), 1e-9);
  // CDBTune-style reward: improvement over the initial configuration
  // plus the step-to-step trend, both normalized by the initial perf.
  double r_initial = (value - initial_perf_) / denom;
  double r_trend = (value - prev_perf_) / denom;
  double reward = options_.reward_scale * (0.7 * r_initial + 0.3 * r_trend);
  prev_perf_ = value;

  if (have_pending_action_) {
    Transition transition;
    transition.state = prev_state_;
    transition.action = last_action_;
    transition.reward = reward;
    transition.next_state =
        have_state_ ? state_ : std::vector<double>(options_.state_dim, 0.0);
    transition.next_state.resize(options_.state_dim, 0.0);
    transition.state.resize(options_.state_dim, 0.0);
    transition.action = PointToAction(point);  // what actually ran
    replay_.Add(std::move(transition));
    have_pending_action_ = false;
  }
  for (int u = 0; u < options_.updates_per_observe; ++u) TrainStep();
}

void DdpgOptimizer::TrainStep() {
  if (replay_.size() < options_.batch_size / 2 || replay_.size() < 4) return;
  std::vector<Transition> batch = replay_.Sample(options_.batch_size, &rng_);
  double inv_n = 1.0 / static_cast<double>(batch.size());

  // --- Critic update: minimize (Q(s,a) - y)^2, y = r + gamma Q'(s',mu'(s')).
  critic_->ZeroGrad();
  for (const Transition& tr : batch) {
    std::vector<double> next_action = actor_target_->Forward(tr.next_state);
    std::vector<double> next_input = tr.next_state;
    next_input.insert(next_input.end(), next_action.begin(),
                      next_action.end());
    double q_next = critic_target_->Forward(next_input)[0];
    double y = tr.reward + options_.gamma * q_next;

    std::vector<double> input = tr.state;
    input.insert(input.end(), tr.action.begin(), tr.action.end());
    double q = critic_->Forward(input)[0];
    std::vector<double> grad_out = {2.0 * (q - y) * inv_n};
    critic_->Backward(grad_out);
  }
  critic_adam_.Step();

  // --- Actor update: maximize Q(s, mu(s)) => gradient ascent through
  // the (frozen) critic into the actor.
  actor_->ZeroGrad();
  critic_->ZeroGrad();  // reuse critic buffers for pass-through grads
  for (const Transition& tr : batch) {
    std::vector<double> action = actor_->Forward(tr.state);
    std::vector<double> input = tr.state;
    input.insert(input.end(), action.begin(), action.end());
    critic_->Forward(input);
    std::vector<double> grad_q = {-inv_n};  // ascend Q
    std::vector<double> grad_input = critic_->Backward(grad_q);
    std::vector<double> grad_action(grad_input.begin() + options_.state_dim,
                                    grad_input.end());
    actor_->Backward(grad_action);
  }
  actor_adam_.Step();
  critic_->ZeroGrad();  // discard pass-through critic grads

  // --- Soft target updates.
  actor_target_->SoftUpdateFrom(*actor_, options_.tau);
  critic_target_->SoftUpdateFrom(*critic_, options_.tau);
}

}  // namespace llamatune
