#pragma once

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/optimizer/optimizer.h"

namespace llamatune {

/// \brief Bit-exact text serialization of an optimizer's observed
/// history — the optimizer-visible trajectory of a tuning session.
///
/// The session checkpoint embeds this block and uses it two ways: as a
/// record of what the optimizer has seen, and as an integrity pin —
/// TuningSession::Restore replays the trajectory through a freshly
/// seeded optimizer and fails loudly if the replayed history does not
/// reproduce this block bit-for-bit (which would mean the restored
/// stack was wired with a different seed, optimizer, or adapter than
/// the one that produced the checkpoint).
///
/// Format: one "obs" line per observation, doubles encoded as IEEE-754
/// bit patterns (see EncodeDoubleBits in src/core/trial.h):
///
///   obs <point dim> <hex>... <value hex>
std::string SerializeHistory(const std::vector<Observation>& history);

/// Parses SerializeHistory output. `text` may carry surrounding
/// whitespace; anything that is not a well-formed "obs" line fails.
Result<std::vector<Observation>> ParseHistory(const std::string& text,
                                              int expected_count);

/// True when the two histories agree bit-for-bit (same length, and
/// every point coordinate and value has an identical bit pattern —
/// NaNs with equal payloads compare equal).
bool HistoryBitsEqual(const std::vector<Observation>& a,
                      const std::vector<Observation>& b);

}  // namespace llamatune
