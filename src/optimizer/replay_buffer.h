#pragma once

#include <cstddef>
#include <vector>

#include "src/common/rng.h"

namespace llamatune {

/// \brief One RL transition (s, a, r, s').
struct Transition {
  std::vector<double> state;
  std::vector<double> action;
  double reward = 0.0;
  std::vector<double> next_state;
};

/// \brief Bounded FIFO experience replay buffer with uniform sampling.
class ReplayBuffer {
 public:
  explicit ReplayBuffer(size_t capacity) : capacity_(capacity) {}

  void Add(Transition transition);

  /// Samples `batch_size` transitions uniformly with replacement.
  /// Returns fewer when the buffer holds fewer.
  std::vector<Transition> Sample(size_t batch_size, Rng* rng) const;

  size_t size() const { return buffer_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  size_t next_ = 0;
  std::vector<Transition> buffer_;
};

}  // namespace llamatune
