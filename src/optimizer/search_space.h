#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace llamatune {

/// \brief One dimension of an optimizer-facing search space.
///
/// This is deliberately decoupled from KnobSpec: the optimizer may be
/// tuning synthetic dimensions (paper §3.1) that map to many physical
/// knobs, or bucketized versions of real knobs. Continuous dimensions
/// may carry a finite grid (`num_buckets` > 0), in which case valid
/// coordinates are the `num_buckets` equally spaced values over
/// [lo, hi] — this is how search-space bucketization (paper §4.2) is
/// exposed to the optimizer so that it "is aware of the larger sampling
/// intervals".
struct SearchDim {
  enum class Type { kContinuous, kCategorical };

  Type type = Type::kContinuous;
  double lo = 0.0;
  double hi = 1.0;
  int64_t num_categories = 0;
  int64_t num_buckets = 0;  ///< 0 = continuum; else grid of this many values

  static SearchDim Continuous(double lo, double hi, int64_t num_buckets = 0);
  static SearchDim Categorical(int64_t num_categories);
};

/// \brief An ordered list of SearchDims; points are vectors of doubles
/// (categorical coordinates hold the category index).
class SearchSpace {
 public:
  SearchSpace() = default;
  explicit SearchSpace(std::vector<SearchDim> dims) : dims_(std::move(dims)) {}

  int num_dims() const { return static_cast<int>(dims_.size()); }
  const SearchDim& dim(int i) const { return dims_[i]; }
  const std::vector<SearchDim>& dims() const { return dims_; }

  /// Number of continuous (resp. categorical) dimensions.
  int num_continuous() const;
  int num_categorical() const;

  /// Snaps a single coordinate into the dimension's valid set: clamp to
  /// [lo, hi], round to the bucket grid, floor+clamp category indices.
  double Snap(int dim_idx, double value) const;

  /// Snaps every coordinate of `point` (size must match).
  std::vector<double> SnapPoint(const std::vector<double>& point) const;

  /// True iff `point` has the right arity and every coordinate is valid
  /// (within bounds, on-grid, integral category index).
  bool Contains(const std::vector<double>& point) const;

  /// Returns a space identical to this one but with every continuous
  /// dimension bucketized to at most `max_unique_values` values.
  /// Dimensions already quantized more coarsely are unaffected.
  SearchSpace Bucketized(int64_t max_unique_values) const;

 private:
  std::vector<SearchDim> dims_;
};

/// \brief Scale-free distance between two points of `space` in [0, 1]:
/// the RMS of per-dimension normalized deltas, where a continuous
/// delta is |a-b| / (hi-lo) and a categorical delta is 1 on mismatch.
/// 0 = identical points, 1 = maximally far in every dimension. This is
/// the metric the batch-aware optimizers share — SMAC's near-duplicate
/// exclusion and GP-BO's local-penalization radii (where a Lipschitz
/// constant estimated in this metric has the objective's units).
double NormalizedDistance(const SearchSpace& space,
                          const std::vector<double>& a,
                          const std::vector<double>& b);

}  // namespace llamatune
