#include "src/optimizer/search_space.h"

#include <cmath>

#include "src/common/math_util.h"

namespace llamatune {

SearchDim SearchDim::Continuous(double lo, double hi, int64_t num_buckets) {
  SearchDim dim;
  dim.type = Type::kContinuous;
  dim.lo = lo;
  dim.hi = hi;
  dim.num_buckets = num_buckets;
  return dim;
}

SearchDim SearchDim::Categorical(int64_t num_categories) {
  SearchDim dim;
  dim.type = Type::kCategorical;
  dim.num_categories = num_categories;
  dim.lo = 0.0;
  dim.hi = static_cast<double>(num_categories - 1);
  return dim;
}

int SearchSpace::num_continuous() const {
  int n = 0;
  for (const SearchDim& d : dims_) {
    if (d.type == SearchDim::Type::kContinuous) ++n;
  }
  return n;
}

int SearchSpace::num_categorical() const {
  return num_dims() - num_continuous();
}

double SearchSpace::Snap(int dim_idx, double value) const {
  const SearchDim& d = dims_[dim_idx];
  if (d.type == SearchDim::Type::kCategorical) {
    return Clamp(std::floor(value), 0.0,
                 static_cast<double>(d.num_categories - 1));
  }
  double v = Clamp(value, d.lo, d.hi);
  if (d.num_buckets > 1) {
    double width = (d.hi - d.lo) / static_cast<double>(d.num_buckets - 1);
    double steps = std::round((v - d.lo) / width);
    v = Clamp(d.lo + steps * width, d.lo, d.hi);
  } else if (d.num_buckets == 1) {
    v = d.lo;
  }
  return v;
}

std::vector<double> SearchSpace::SnapPoint(
    const std::vector<double>& point) const {
  std::vector<double> out(point.size());
  for (int i = 0; i < num_dims() && i < static_cast<int>(point.size()); ++i) {
    out[i] = Snap(i, point[i]);
  }
  return out;
}

bool SearchSpace::Contains(const std::vector<double>& point) const {
  if (static_cast<int>(point.size()) != num_dims()) return false;
  for (int i = 0; i < num_dims(); ++i) {
    const SearchDim& d = dims_[i];
    double v = point[i];
    if (d.type == SearchDim::Type::kCategorical) {
      if (v < 0 || v >= static_cast<double>(d.num_categories) ||
          v != std::floor(v)) {
        return false;
      }
    } else {
      if (v < d.lo || v > d.hi) return false;
      if (d.num_buckets > 1) {
        double width = (d.hi - d.lo) / static_cast<double>(d.num_buckets - 1);
        double steps = (v - d.lo) / width;
        if (std::abs(steps - std::round(steps)) > 1e-9) return false;
      }
    }
  }
  return true;
}

double NormalizedDistance(const SearchSpace& space,
                          const std::vector<double>& a,
                          const std::vector<double>& b) {
  int d = space.num_dims();
  if (d == 0) return 0.0;
  double sq = 0.0;
  for (int i = 0; i < d; ++i) {
    const SearchDim& dim = space.dim(i);
    if (dim.type == SearchDim::Type::kCategorical) {
      if (a[i] != b[i]) sq += 1.0;
    } else {
      double span = dim.hi - dim.lo;
      if (span > 0.0) {
        double delta = (a[i] - b[i]) / span;
        sq += delta * delta;
      }
    }
  }
  return std::sqrt(sq / static_cast<double>(d));
}

SearchSpace SearchSpace::Bucketized(int64_t max_unique_values) const {
  std::vector<SearchDim> dims = dims_;
  for (SearchDim& d : dims) {
    if (d.type != SearchDim::Type::kContinuous) continue;
    if (d.num_buckets == 0 || d.num_buckets > max_unique_values) {
      d.num_buckets = max_unique_values;
    }
  }
  return SearchSpace(std::move(dims));
}

}  // namespace llamatune
