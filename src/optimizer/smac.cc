#include "src/optimizer/smac.h"

#include <algorithm>

#include "src/common/thread_pool.h"
#include "src/model/acquisition.h"
#include "src/sampling/latin_hypercube.h"
#include "src/sampling/uniform.h"

namespace llamatune {

SmacOptimizer::SmacOptimizer(SearchSpace space, SmacOptions options,
                             uint64_t seed)
    : Optimizer(std::move(space)),
      options_(options),
      rng_(seed),
      forest_(space_, options.forest, HashCombine(seed, 0x5a5a5a5aULL)) {}

std::vector<double> SmacOptimizer::Suggest() {
  int iter = suggest_count_++;
  if (iter < options_.n_init) {
    if (init_design_.empty()) {
      init_design_ = LatinHypercubeSample(space_, options_.n_init, &rng_);
    }
    return init_design_[iter];
  }
  if (options_.random_interleave > 0 &&
      (iter - options_.n_init + 1) % options_.random_interleave == 0) {
    return UniformSample(space_, &rng_);
  }
  return SuggestByModel();
}

std::vector<double> SmacOptimizer::MutateNeighbor(
    const std::vector<double>& parent) {
  std::vector<double> child = parent;
  // SMAC's local search perturbs one parameter at a time; allow a
  // couple more in very high-dimensional spaces.
  int d = space_.num_dims();
  int num_mutations = 1 + static_cast<int>(rng_.UniformInt(0, d / 32));
  for (int m = 0; m < num_mutations; ++m) {
    int j = static_cast<int>(rng_.UniformInt(0, d - 1));
    const SearchDim& dim = space_.dim(j);
    if (dim.type == SearchDim::Type::kCategorical) {
      child[j] = static_cast<double>(rng_.UniformInt(0, dim.num_categories - 1));
    } else {
      double width = (dim.hi - dim.lo) * options_.neighbor_stddev;
      child[j] = space_.Snap(j, parent[j] + rng_.Gaussian(0.0, width));
    }
  }
  return child;
}

void SmacOptimizer::Observe(const std::vector<double>& point, double value) {
  Optimizer::Observe(point, value);
  train_x_.push_back(point);
  train_y_.push_back(value);
}

std::vector<double> SmacOptimizer::SuggestByModel() {
  // Fit the forest to the incrementally maintained training views.
  if (train_x_.empty()) return UniformSample(space_, &rng_);
  forest_.Fit(train_x_, train_y_);

  double best = BestValue();

  // Candidate pool: uniform random + local neighborhoods of the top
  // observed incumbents.
  std::vector<std::vector<double>> candidates =
      UniformSamples(space_, options_.num_random_candidates, &rng_);

  std::vector<int> order(history_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return history_[a].value > history_[b].value;
  });
  int parents = std::min<int>(options_.num_local_parents,
                              static_cast<int>(order.size()));
  for (int p = 0; p < parents; ++p) {
    const std::vector<double>& parent = history_[order[p]].point;
    for (int k = 0; k < options_.num_neighbors_per_parent; ++k) {
      candidates.push_back(MutateNeighbor(parent));
    }
  }

  // Score by Expected Improvement. Forest lookups are pure tree
  // traversals, so candidates score in parallel; the first-maximum
  // selection over the index-ordered results keeps the choice
  // independent of the executor count.
  int num_candidates = static_cast<int>(candidates.size());
  std::vector<double> ei(num_candidates, 0.0);
  ThreadPool::Global().ParallelFor(
      num_candidates,
      [&](int i) {
        double mean = 0.0, variance = 0.0;
        forest_.Predict(candidates[i], &mean, &variance);
        ei[i] = ExpectedImprovement(mean, variance, best);
      },
      options_.num_threads);
  double best_ei = -1.0;
  int best_idx = 0;
  for (int i = 0; i < num_candidates; ++i) {
    if (ei[i] > best_ei) {
      best_ei = ei[i];
      best_idx = i;
    }
  }
  return candidates[best_idx];
}

}  // namespace llamatune
