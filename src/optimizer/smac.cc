#include "src/optimizer/smac.h"

#include <algorithm>

#include "src/common/thread_pool.h"
#include "src/model/acquisition.h"
#include "src/sampling/latin_hypercube.h"
#include "src/sampling/uniform.h"

namespace llamatune {

SmacOptimizer::SmacOptimizer(SearchSpace space, SmacOptions options,
                             uint64_t seed)
    : Optimizer(std::move(space)),
      options_(options),
      rng_(seed),
      forest_(space_, options.forest, HashCombine(seed, 0x5a5a5a5aULL)) {}

std::vector<double> SmacOptimizer::InitPoint(int iter) {
  if (init_design_.empty()) {
    init_design_ = LatinHypercubeSample(space_, options_.n_init, &rng_);
  }
  return init_design_[iter];
}

bool SmacOptimizer::IsRandomInterleave(int iter) const {
  return options_.random_interleave > 0 &&
         (iter - options_.n_init + 1) % options_.random_interleave == 0;
}

std::vector<double> SmacOptimizer::Suggest() {
  int iter = suggest_count_++;
  if (iter < options_.n_init) return InitPoint(iter);
  if (IsRandomInterleave(iter)) return UniformSample(space_, &rng_);
  return SuggestByModel();
}

std::vector<std::vector<double>> SmacOptimizer::SuggestBatch(int n) {
  // q == 1 (or diversification disabled) is the plain sequential
  // fallback — bit-for-bit a single Suggest() call at n == 1.
  if (n <= 1 || !(options_.batch_min_distance > 0.0)) {
    return Optimizer::SuggestBatch(n);
  }
  std::vector<std::vector<double>> batch;
  batch.reserve(n);
  bool forest_ready = false;
  for (int i = 0; i < n; ++i) {
    int iter = suggest_count_++;
    if (iter < options_.n_init) {
      batch.push_back(InitPoint(iter));
    } else if (IsRandomInterleave(iter)) {
      batch.push_back(UniformSample(space_, &rng_));
    } else {
      batch.push_back(SuggestByModelDiverse(batch, &forest_ready));
    }
  }
  return batch;
}

std::vector<double> SmacOptimizer::MutateNeighbor(
    const std::vector<double>& parent) {
  std::vector<double> child = parent;
  // SMAC's local search perturbs one parameter at a time; allow a
  // couple more in very high-dimensional spaces.
  int d = space_.num_dims();
  int num_mutations = 1 + static_cast<int>(rng_.UniformInt(0, d / 32));
  for (int m = 0; m < num_mutations; ++m) {
    int j = static_cast<int>(rng_.UniformInt(0, d - 1));
    const SearchDim& dim = space_.dim(j);
    if (dim.type == SearchDim::Type::kCategorical) {
      child[j] = static_cast<double>(rng_.UniformInt(0, dim.num_categories - 1));
    } else {
      double width = (dim.hi - dim.lo) * options_.neighbor_stddev;
      child[j] = space_.Snap(j, parent[j] + rng_.Gaussian(0.0, width));
    }
  }
  return child;
}

void SmacOptimizer::Observe(const std::vector<double>& point, double value) {
  Optimizer::Observe(point, value);
  train_x_.push_back(point);
  train_y_.push_back(value);
}

std::vector<std::vector<double>> SmacOptimizer::ScoreCandidates(
    std::vector<double>* ei) {
  double best = BestValue();

  // Candidate pool: uniform random + local neighborhoods of the top
  // observed incumbents.
  std::vector<std::vector<double>> candidates =
      UniformSamples(space_, options_.num_random_candidates, &rng_);

  std::vector<int> order(history_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return history_[a].value > history_[b].value;
  });
  int parents = std::min<int>(options_.num_local_parents,
                              static_cast<int>(order.size()));
  for (int p = 0; p < parents; ++p) {
    const std::vector<double>& parent = history_[order[p]].point;
    for (int k = 0; k < options_.num_neighbors_per_parent; ++k) {
      candidates.push_back(MutateNeighbor(parent));
    }
  }

  // Score by Expected Improvement. Forest lookups are pure tree
  // traversals, so candidates score in parallel; consumers reduce the
  // index-ordered scores, keeping every pick independent of the
  // executor count.
  int num_candidates = static_cast<int>(candidates.size());
  ei->assign(num_candidates, 0.0);
  ThreadPool::Global().ParallelFor(
      num_candidates,
      [&](int i) {
        double mean = 0.0, variance = 0.0;
        forest_.Predict(candidates[i], &mean, &variance);
        (*ei)[i] = ExpectedImprovement(mean, variance, best);
      },
      options_.num_threads);
  return candidates;
}

std::vector<double> SmacOptimizer::SuggestByModel() {
  // Fit the forest to the incrementally maintained training views.
  if (train_x_.empty()) return UniformSample(space_, &rng_);
  forest_.Fit(train_x_, train_y_);

  std::vector<double> ei;
  std::vector<std::vector<double>> candidates = ScoreCandidates(&ei);
  double best_ei = -1.0;
  int best_idx = 0;
  for (size_t i = 0; i < ei.size(); ++i) {
    if (ei[i] > best_ei) {
      best_ei = ei[i];
      best_idx = static_cast<int>(i);
    }
  }
  return candidates[best_idx];
}

std::vector<double> SmacOptimizer::SuggestByModelDiverse(
    const std::vector<std::vector<double>>& taken, bool* forest_ready) {
  if (train_x_.empty()) return UniformSample(space_, &rng_);
  // One forest fit per round: no observations arrive between the picks
  // of a batch, so refitting per pick would train on identical data.
  if (!*forest_ready) {
    forest_.Fit(train_x_, train_y_);
    *forest_ready = true;
  }
  std::vector<double> ei;
  std::vector<std::vector<double>> candidates = ScoreCandidates(&ei);

  // One pass over the index-ordered scores: best challenger that is
  // not a near-duplicate of a point the round already holds, plus the
  // unconstrained maximum as fallback (the same first-maximum
  // tie-break Suggest() uses).
  int best_idx = -1;
  double best_ei = -1.0;
  int best_any_idx = 0;
  double best_any_ei = -1.0;
  for (size_t c = 0; c < candidates.size(); ++c) {
    if (ei[c] > best_any_ei) {
      best_any_ei = ei[c];
      best_any_idx = static_cast<int>(c);
    }
    if (ei[c] <= best_ei) continue;
    bool distinct = true;
    for (const std::vector<double>& prev : taken) {
      if (NormalizedDistance(space_, candidates[c], prev) <
          options_.batch_min_distance) {
        distinct = false;
        break;
      }
    }
    if (distinct) {
      best_ei = ei[c];
      best_idx = static_cast<int>(c);
    }
  }
  // Every challenger a near-duplicate (tiny spaces / huge q): the
  // unconstrained maximum is still the best answer.
  return candidates[best_idx >= 0 ? best_idx : best_any_idx];
}

}  // namespace llamatune
