#include "src/optimizer/random_search.h"

#include "src/sampling/uniform.h"

namespace llamatune {

std::vector<double> RandomSearchOptimizer::Suggest() {
  return UniformSample(space_, &rng_);
}

}  // namespace llamatune
