#include "src/optimizer/best_config.h"

#include <algorithm>

#include "src/common/math_util.h"
#include "src/sampling/latin_hypercube.h"

namespace llamatune {

BestConfigOptimizer::BestConfigOptimizer(SearchSpace space,
                                         BestConfigOptions options,
                                         uint64_t seed)
    : Optimizer(std::move(space)), options_(options), rng_(seed) {
  ResetBox();
}

void BestConfigOptimizer::ResetBox() {
  int d = space_.num_dims();
  box_lo_.resize(d);
  box_hi_.resize(d);
  for (int i = 0; i < d; ++i) {
    box_lo_[i] = space_.dim(i).lo;
    box_hi_[i] = space_.dim(i).hi;
  }
}

void BestConfigOptimizer::ShrinkBoxAround(const std::vector<double>& center) {
  for (int i = 0; i < space_.num_dims(); ++i) {
    const SearchDim& dim = space_.dim(i);
    if (dim.type == SearchDim::Type::kCategorical) continue;  // stay free
    double radius = (box_hi_[i] - box_lo_[i]) * options_.shrink / 2.0;
    box_lo_[i] = Clamp(center[i] - radius, dim.lo, dim.hi);
    box_hi_[i] = Clamp(center[i] + radius, dim.lo, dim.hi);
    if (box_hi_[i] <= box_lo_[i]) {  // degenerate: reopen slightly
      box_lo_[i] = dim.lo;
      box_hi_[i] = dim.hi;
    }
  }
}

void BestConfigOptimizer::RefillRound() {
  // LHS over the current bounding box: build a box-shaped space with
  // the original dimension types so categorical/bucket semantics hold.
  std::vector<SearchDim> dims;
  dims.reserve(space_.num_dims());
  for (int i = 0; i < space_.num_dims(); ++i) {
    SearchDim dim = space_.dim(i);
    if (dim.type == SearchDim::Type::kContinuous) {
      dim.lo = box_lo_[i];
      dim.hi = box_hi_[i];
    }
    dims.push_back(dim);
  }
  SearchSpace box(std::move(dims));
  round_points_ = LatinHypercubeSample(box, options_.samples_per_round, &rng_);
  // Snap onto the *original* space's grids (box grids may differ).
  for (auto& point : round_points_) point = space_.SnapPoint(point);
  round_cursor_ = 0;
  round_start_best_ = BestValue();
  have_round_baseline_ = !history_.empty();
}

std::vector<double> BestConfigOptimizer::Suggest() {
  if (round_cursor_ >= round_points_.size()) RefillRound();
  return round_points_[round_cursor_++];
}

void BestConfigOptimizer::Observe(const std::vector<double>& point,
                                  double value) {
  Optimizer::Observe(point, value);
  if (round_cursor_ >= round_points_.size()) {
    // Round complete: bound around an improved incumbent, else diverge.
    if (!have_round_baseline_ || BestValue() > round_start_best_) {
      ShrinkBoxAround(BestPoint());
    } else {
      ResetBox();
    }
  }
}

}  // namespace llamatune
