#pragma once

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "src/optimizer/search_space.h"

namespace llamatune {

/// \brief One evaluated sample in the optimizer's knowledge base.
struct Observation {
  std::vector<double> point;
  double value = 0.0;
};

/// \brief Abstract configuration optimizer (paper Fig. 1, step 2).
///
/// The contract is a maximize-objective suggest/observe loop over a
/// SearchSpace. Optimizers never see physical DBMS knobs — the space
/// they tune may be the identity-scaled knob space or a synthetic
/// low-dimensional one; the SpaceAdapter owns that mapping. This is
/// what lets LlamaTune's techniques compose with any optimizer without
/// modification (paper §4.1: "requires no modifications to the
/// underlying optimizer").
class Optimizer {
 public:
  explicit Optimizer(SearchSpace space) : space_(std::move(space)) {}
  virtual ~Optimizer() = default;

  const SearchSpace& space() const { return space_; }

  /// Proposes the next point to evaluate (a valid point of space()).
  virtual std::vector<double> Suggest() = 0;

  /// Proposes `n` points to evaluate together (a batch the session may
  /// run in parallel across simulator instances). The default is the
  /// sequential fallback — n successive Suggest() calls — which keeps
  /// the optimizer-agnostic contract: batching requires no optimizer
  /// modifications, but batch-aware optimizers may override this to
  /// diversify within the batch (GP-BO's q-EI / local-penalization
  /// modes and SMAC's near-duplicate exclusion do; see
  /// docs/registry-keys.md). Overrides must degrade to a single
  /// Suggest() at n == 1, bit for bit — tests/batch_optimizer_test.cc
  /// pins this for every registered optimizer. Note the fallback
  /// issues n Suggest() calls before any Observe(): optimizers that
  /// carry per-suggestion state (DDPG's pending action, BestConfig's
  /// round cursor) should override this — or be run with batch size
  /// 1 — to keep their internal protocol intact.
  virtual std::vector<std::vector<double>> SuggestBatch(int n) {
    std::vector<std::vector<double>> batch;
    batch.reserve(n > 0 ? n : 0);
    for (int i = 0; i < n; ++i) batch.push_back(Suggest());
    return batch;
  }

  /// Records the objective value measured at `point`. Higher is
  /// better; sessions minimizing latency negate before calling.
  virtual void Observe(const std::vector<double>& point, double value) {
    if (value > best_value_) {
      best_value_ = value;
      best_point_ = point;
    }
    history_.push_back({point, value});
  }

  /// Records a batch of evaluations in order. The default sequential
  /// fallback forwards to Observe() one pair at a time; batch-aware
  /// optimizers may override to refit their model once per batch.
  /// `points` and `values` must have equal size.
  virtual void ObserveBatch(const std::vector<std::vector<double>>& points,
                            const std::vector<double>& values) {
    for (size_t i = 0; i < points.size() && i < values.size(); ++i) {
      Observe(points[i], values[i]);
    }
  }

  /// Optional hook for optimizers conditioning on DBMS internal
  /// metrics (the RL state vector). Called by the session after each
  /// workload run, before Observe.
  virtual void ObserveMetrics(const std::vector<double>& /*metrics*/) {}

  virtual std::string name() const = 0;

  const std::vector<Observation>& history() const { return history_; }

  /// Best observed value so far (-inf when empty). O(1): the incumbent
  /// is tracked incrementally in Observe, not re-scanned from history.
  double BestValue() const { return best_value_; }

  /// Point achieving BestValue() (empty when no history).
  const std::vector<double>& BestPoint() const { return best_point_; }

 protected:
  SearchSpace space_;
  std::vector<Observation> history_;

 private:
  double best_value_ = -std::numeric_limits<double>::infinity();
  std::vector<double> best_point_;
};

}  // namespace llamatune
