#pragma once

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "src/optimizer/search_space.h"

namespace llamatune {

/// \brief One evaluated sample in the optimizer's knowledge base.
struct Observation {
  std::vector<double> point;
  double value = 0.0;
};

/// \brief Abstract configuration optimizer (paper Fig. 1, step 2).
///
/// The contract is a maximize-objective suggest/observe loop over a
/// SearchSpace. Optimizers never see physical DBMS knobs — the space
/// they tune may be the identity-scaled knob space or a synthetic
/// low-dimensional one; the SpaceAdapter owns that mapping. This is
/// what lets LlamaTune's techniques compose with any optimizer without
/// modification (paper §4.1: "requires no modifications to the
/// underlying optimizer").
class Optimizer {
 public:
  explicit Optimizer(SearchSpace space) : space_(std::move(space)) {}
  virtual ~Optimizer() = default;

  const SearchSpace& space() const { return space_; }

  /// Proposes the next point to evaluate (a valid point of space()).
  virtual std::vector<double> Suggest() = 0;

  /// Records the objective value measured at `point`. Higher is
  /// better; sessions minimizing latency negate before calling.
  virtual void Observe(const std::vector<double>& point, double value) {
    history_.push_back({point, value});
  }

  /// Optional hook for optimizers conditioning on DBMS internal
  /// metrics (the RL state vector). Called by the session after each
  /// workload run, before Observe.
  virtual void ObserveMetrics(const std::vector<double>& /*metrics*/) {}

  virtual std::string name() const = 0;

  const std::vector<Observation>& history() const { return history_; }

  /// Best observed value so far (-inf when empty).
  double BestValue() const {
    double best = -std::numeric_limits<double>::infinity();
    for (const Observation& obs : history_) best = std::max(best, obs.value);
    return best;
  }

  /// Point achieving BestValue() (empty when no history).
  std::vector<double> BestPoint() const {
    std::vector<double> best_point;
    double best = -std::numeric_limits<double>::infinity();
    for (const Observation& obs : history_) {
      if (obs.value > best) {
        best = obs.value;
        best_point = obs.point;
      }
    }
    return best_point;
  }

 protected:
  SearchSpace space_;
  std::vector<Observation> history_;
};

}  // namespace llamatune
