#pragma once

#include <cstdint>

#include "src/common/rng.h"
#include "src/optimizer/optimizer.h"

namespace llamatune {

/// \brief BestConfig options.
struct BestConfigOptions {
  /// LHS samples evaluated per round (the paper's k).
  int samples_per_round = 10;
  /// Bound shrink factor applied around the incumbent each time a
  /// round improves it.
  double shrink = 0.5;
};

/// \brief BestConfig-style search (Zhu et al., SoCC'17) — the
/// search-based tuner the paper surveys (§2.2): divide-and-diverge
/// sampling plus recursive bound-and-search. No surrogate model and no
/// knowledge base: each round LHS-samples the current bounding box;
/// if the round improves the incumbent the box shrinks around it,
/// otherwise the search diverges back to the full space.
///
/// Included as a baseline beyond the paper's tables: it composes with
/// LlamaTune's adapters exactly like the model-based optimizers.
class BestConfigOptimizer : public Optimizer {
 public:
  BestConfigOptimizer(SearchSpace space, BestConfigOptions options,
                      uint64_t seed);

  std::vector<double> Suggest() override;
  void Observe(const std::vector<double>& point, double value) override;
  std::string name() const override { return "BestConfig"; }

  /// Current per-dimension bounding box (exposed for tests).
  const std::vector<double>& box_lo() const { return box_lo_; }
  const std::vector<double>& box_hi() const { return box_hi_; }

 private:
  void ResetBox();
  void ShrinkBoxAround(const std::vector<double>& center);
  void RefillRound();

  BestConfigOptions options_;
  Rng rng_;
  std::vector<double> box_lo_;
  std::vector<double> box_hi_;
  std::vector<std::vector<double>> round_points_;
  size_t round_cursor_ = 0;
  double round_start_best_ = 0.0;
  bool have_round_baseline_ = false;
};

}  // namespace llamatune
