#pragma once

#include <cstdint>
#include <memory>

#include "src/common/rng.h"
#include "src/model/gp.h"
#include "src/model/sparse_gp.h"
#include "src/optimizer/optimizer.h"

namespace llamatune {

/// \brief Batch-suggestion strategy for GpBoOptimizer::SuggestBatch.
///
/// At q == 1 every mode is the plain EI suggestion (bit-for-bit
/// identical to Suggest()); the modes only differ in how picks 2..q of
/// one round avoid collapsing onto the same acquisition maximum.
enum class GpBatchMode {
  /// The optimizer-agnostic fallback: q successive Suggest() calls.
  /// Without intermediate observations these tend to return
  /// near-duplicates of the same EI maximum.
  kSequential,
  /// Greedy q-EI via fantasized observations (Ginsbourger et al.'s
  /// "constant liar"/kriging-believer family): pick the EI maximum,
  /// hallucinate its outcome at the posterior mean, rank-1-condition a
  /// copy of the GP (GaussianProcess::Condition, O(n^2)), repeat. The
  /// strongest batch quality; costs one PredictBatch + one O(n^2)
  /// update per pick.
  kFantasyQei,
  /// Local penalization (González et al. 2016): score one shared
  /// candidate pool once, then multiply EI by a penalty that vanishes
  /// inside a Lipschitz-estimated exclusion ball around each point the
  /// batch already picked. Cheapest batch-aware mode — a single
  /// PredictBatch for the whole round.
  kLocalPenalization,
};

/// \brief GP-BO configuration.
struct GpBoOptions {
  int n_init = 10;
  int num_random_candidates = 500;
  int num_local_parents = 5;
  int num_neighbors_per_parent = 10;
  double neighbor_stddev = 0.15;
  /// How SuggestBatch diversifies within a round (registry keys:
  /// "gpbo" = kSequential, "gpbo-qei" = kFantasyQei, "gpbo-lp" =
  /// kLocalPenalization).
  GpBatchMode batch_mode = GpBatchMode::kSequential;
  /// Local penalization: floor on the Lipschitz estimate (guards the
  /// degenerate all-equal-observations case, where no exclusion radius
  /// is inferable).
  double lp_min_lipschitz = 1e-6;
  /// q-EI: minimum NormalizedDistance between the picks of one round.
  /// Fantasy conditioning only collapses the epistemic variance — with
  /// a large learned noise floor the EI maximum barely moves — so a
  /// hard separation radius backs it up (the unconstrained maximum is
  /// restored when the whole pool is inside the exclusion balls).
  double qei_min_distance = 0.05;
  GpOptions gp;
};

/// \brief Gaussian-process Bayesian optimization over a mixed space
/// (Ru et al. 2020; the paper's "GP-BO" baseline).
///
/// Uses the Matérn-5/2 x Hamming product-kernel GP as surrogate and
/// Expected Improvement as acquisition, with the same candidate
/// generation scheme as SMAC (random pool + local neighborhoods).
///
/// Observations stream into the GP as they arrive (Observe appends in
/// O(d)), so each model-based suggestion refits incrementally instead
/// of re-copying the full history, and candidates are scored in one
/// PredictBatch pass against the cached Cholesky factor.
///
/// SuggestBatch is batch-aware under GpBoOptions::batch_mode: the GP
/// is refit once per round and every candidate pool is scored through
/// PredictBatch over the shared pool, so a q-point round costs a small
/// constant factor of a single suggestion instead of q model refits.
/// All modes draw RNG serially and reduce scores in index order, so
/// batches are identical at any thread count.
///
/// Large-n path: with GpOptions::sparse_threshold > 0, plain EI
/// suggestions (Suggest() and the sequential-fallback batches built
/// from it) switch to the inducing-point SparseGaussianProcess once
/// the history reaches the threshold — O(n m^2) fit and O(m^2)
/// scoring instead of the exact O(n^3)/O(n^2 * pool). Below the
/// threshold the exact path runs unchanged, bit for bit. The fantasy-
/// conditioning (q-EI) and local-penalization batch modes keep the
/// exact model — Condition() is an exact-factor primitive.
class GpBoOptimizer : public Optimizer {
 public:
  GpBoOptimizer(SearchSpace space, GpBoOptions options, uint64_t seed);

  std::vector<double> Suggest() override;
  std::vector<std::vector<double>> SuggestBatch(int n) override;
  void Observe(const std::vector<double>& point, double value) override;
  std::string name() const override { return "GP-BO"; }

  const GpBoOptions& options() const { return options_; }

 private:
  /// The iter'th point of the lazily drawn LHS initial design.
  std::vector<double> InitPoint(int iter);
  std::vector<double> SuggestByModel();
  std::vector<std::vector<double>> SuggestBatchQei(int n);
  std::vector<std::vector<double>> SuggestBatchLp(int n);
  /// Candidate pool: uniform random + Gaussian neighborhoods around the
  /// best of history_ plus `extra` (within-batch fantasy observations).
  /// With `extra` empty this is byte-identical to the Suggest() path.
  std::vector<std::vector<double>> GenerateCandidates(
      const std::vector<Observation>& extra);
  /// Max |Δvalue| / NormalizedDistance over recent history pairs — the
  /// objective's steepest observed slope, which sizes the local
  /// penalization exclusion balls.
  double EstimateLipschitz() const;

  /// True once the history is large enough for the sparse model to
  /// take over plain-EI suggestion scoring.
  bool UseSparse() const;

  GpBoOptions options_;
  Rng rng_;
  GaussianProcess gp_;
  /// Inducing-point model for the large-n path; constructed only when
  /// GpOptions::sparse_threshold > 0 (observations stream into it in
  /// O(d) alongside the exact model; it never fits below the
  /// threshold).
  std::unique_ptr<SparseGaussianProcess> sparse_gp_;
  std::vector<std::vector<double>> init_design_;
  int suggest_count_ = 0;
};

}  // namespace llamatune
