#pragma once

#include <cstdint>

#include "src/common/rng.h"
#include "src/model/gp.h"
#include "src/optimizer/optimizer.h"

namespace llamatune {

/// \brief GP-BO configuration.
struct GpBoOptions {
  int n_init = 10;
  int num_random_candidates = 500;
  int num_local_parents = 5;
  int num_neighbors_per_parent = 10;
  double neighbor_stddev = 0.15;
  GpOptions gp;
};

/// \brief Gaussian-process Bayesian optimization over a mixed space
/// (Ru et al. 2020; the paper's "GP-BO" baseline).
///
/// Uses the Matérn-5/2 x Hamming product-kernel GP as surrogate and
/// Expected Improvement as acquisition, with the same candidate
/// generation scheme as SMAC (random pool + local neighborhoods).
///
/// Observations stream into the GP as they arrive (Observe appends in
/// O(d)), so each model-based suggestion refits incrementally instead
/// of re-copying the full history, and candidates are scored in one
/// PredictBatch pass against the cached Cholesky factor.
class GpBoOptimizer : public Optimizer {
 public:
  GpBoOptimizer(SearchSpace space, GpBoOptions options, uint64_t seed);

  std::vector<double> Suggest() override;
  void Observe(const std::vector<double>& point, double value) override;
  std::string name() const override { return "GP-BO"; }

 private:
  std::vector<double> SuggestByModel();

  GpBoOptions options_;
  Rng rng_;
  GaussianProcess gp_;
  std::vector<std::vector<double>> init_design_;
  int suggest_count_ = 0;
};

}  // namespace llamatune
