#pragma once

#include <cstdint>

#include "src/common/rng.h"
#include "src/model/random_forest.h"
#include "src/optimizer/optimizer.h"

namespace llamatune {

/// \brief SMAC configuration (defaults follow the paper's setup and
/// SMAC3's spirit at a scale appropriate for 100-iteration sessions).
struct SmacOptions {
  /// LHS-generated initial design size (paper: first 10 iterations).
  int n_init = 10;
  /// Interleave one uniformly random suggestion every this many
  /// model-based iterations ("random configurations proposed by the
  /// optimizer periodically", paper §4.1).
  int random_interleave = 10;
  /// Random candidates scored by EI each iteration.
  int num_random_candidates = 500;
  /// Local-search: neighbors drawn around each of the top incumbents.
  int num_local_parents = 5;
  int num_neighbors_per_parent = 20;
  /// Gaussian neighborhood width as a fraction of each dim's range.
  double neighbor_stddev = 0.15;
  /// Executor cap for parallel EI scoring over the shared pool
  /// (0 = pool size; 1 = serial).
  int num_threads = 0;
  RandomForestOptions forest;
};

/// \brief Sequential Model-based Algorithm Configuration (Hutter et
/// al. 2011) — random-forest Bayesian optimization, the paper's
/// strongest baseline and LlamaTune's default optimizer.
///
/// Loop: LHS initial design; then fit the RF to all observations,
/// generate candidates (uniform random + Gaussian neighborhoods of the
/// best observed points), and suggest the candidate maximizing
/// Expected Improvement. Periodically a pure random suggestion is
/// interleaved for exploration.
class SmacOptimizer : public Optimizer {
 public:
  SmacOptimizer(SearchSpace space, SmacOptions options, uint64_t seed);

  std::vector<double> Suggest() override;
  void Observe(const std::vector<double>& point, double value) override;
  std::string name() const override { return "SMAC"; }

  const SmacOptions& options() const { return options_; }

 private:
  std::vector<double> SuggestByModel();
  std::vector<double> MutateNeighbor(const std::vector<double>& parent);

  SmacOptions options_;
  Rng rng_;
  RandomForest forest_;
  std::vector<std::vector<double>> init_design_;
  /// Training views maintained incrementally in Observe, so each
  /// model-based suggestion passes the forest a stable buffer instead
  /// of re-copying the full history.
  std::vector<std::vector<double>> train_x_;
  std::vector<double> train_y_;
  int suggest_count_ = 0;
};

}  // namespace llamatune
