#pragma once

#include <cstdint>

#include "src/common/rng.h"
#include "src/model/random_forest.h"
#include "src/optimizer/optimizer.h"

namespace llamatune {

/// \brief SMAC configuration (defaults follow the paper's setup and
/// SMAC3's spirit at a scale appropriate for 100-iteration sessions).
struct SmacOptions {
  /// LHS-generated initial design size (paper: first 10 iterations).
  int n_init = 10;
  /// Interleave one uniformly random suggestion every this many
  /// model-based iterations ("random configurations proposed by the
  /// optimizer periodically", paper §4.1).
  int random_interleave = 10;
  /// Random candidates scored by EI each iteration.
  int num_random_candidates = 500;
  /// Local-search: neighbors drawn around each of the top incumbents.
  int num_local_parents = 5;
  int num_neighbors_per_parent = 20;
  /// Gaussian neighborhood width as a fraction of each dim's range.
  double neighbor_stddev = 0.15;
  /// Executor cap for parallel EI scoring over the shared pool
  /// (0 = pool size; 1 = serial).
  int num_threads = 0;
  /// Batch diversification: within one SuggestBatch round, challengers
  /// closer than this NormalizedDistance to an already-picked point of
  /// the round are excluded, and the best remaining EI wins (the
  /// unconstrained argmax is restored when every candidate is a
  /// near-duplicate). <= 0 disables, reverting to the sequential
  /// fallback, which tends to return q near-copies of the same EI
  /// maximum. Has no effect at q == 1. On by default, so batched
  /// "smac" trajectories differ from pre-diversification builds —
  /// checkpoints of batched SMAC sessions saved by those builds fail
  /// Restore's history pin loudly; set 0 to reproduce them.
  double batch_min_distance = 0.05;
  RandomForestOptions forest;
};

/// \brief Sequential Model-based Algorithm Configuration (Hutter et
/// al. 2011) — random-forest Bayesian optimization, the paper's
/// strongest baseline and LlamaTune's default optimizer.
///
/// Loop: LHS initial design; then fit the RF to all observations,
/// generate candidates (uniform random + Gaussian neighborhoods of the
/// best observed points), and suggest the candidate maximizing
/// Expected Improvement. Periodically a pure random suggestion is
/// interleaved for exploration.
///
/// SuggestBatch is batch-aware (SmacOptions::batch_min_distance): the
/// forest is fit once per round (no new observations arrive within a
/// round, so refitting per pick would only burn RNG), and each
/// model-based pick excludes challengers that are near-duplicates of
/// points the round already holds. Batches are identical at any
/// thread count: candidates are drawn serially, EI reduces in index
/// order, and the exclusion scan walks a deterministically sorted
/// index list.
class SmacOptimizer : public Optimizer {
 public:
  SmacOptimizer(SearchSpace space, SmacOptions options, uint64_t seed);

  std::vector<double> Suggest() override;
  std::vector<std::vector<double>> SuggestBatch(int n) override;
  void Observe(const std::vector<double>& point, double value) override;
  std::string name() const override { return "SMAC"; }

  const SmacOptions& options() const { return options_; }

 private:
  /// The iter'th point of the lazily drawn LHS initial design.
  std::vector<double> InitPoint(int iter);
  /// True when iter is one of the periodically interleaved pure-random
  /// suggestions (paper §4.1).
  bool IsRandomInterleave(int iter) const;
  std::vector<double> SuggestByModel();
  /// One model-based pick of a batch round: like SuggestByModel, but
  /// the forest fit is shared across the round (`*forest_ready`) and
  /// candidates within batch_min_distance of `taken` are excluded.
  std::vector<double> SuggestByModelDiverse(
      const std::vector<std::vector<double>>& taken, bool* forest_ready);
  /// Candidate pool + EI scores (shared by the single and batch
  /// paths; parallel scoring, index-ordered results).
  std::vector<std::vector<double>> ScoreCandidates(std::vector<double>* ei);
  std::vector<double> MutateNeighbor(const std::vector<double>& parent);

  SmacOptions options_;
  Rng rng_;
  RandomForest forest_;
  std::vector<std::vector<double>> init_design_;
  /// Training views maintained incrementally in Observe, so each
  /// model-based suggestion passes the forest a stable buffer instead
  /// of re-copying the full history.
  std::vector<std::vector<double>> train_x_;
  std::vector<double> train_y_;
  int suggest_count_ = 0;
};

}  // namespace llamatune
