#pragma once

#include <cstdint>
#include <memory>

#include "src/common/rng.h"
#include "src/nn/mlp.h"
#include "src/optimizer/optimizer.h"
#include "src/optimizer/replay_buffer.h"

namespace llamatune {

/// \brief DDPG configuration (network sizes follow CDBTune's spirit,
/// scaled for 100-iteration tuning sessions).
struct DdpgOptions {
  int state_dim = 27;  ///< number of DBMS internal metrics
  std::vector<int> actor_hidden = {64, 64};
  std::vector<int> critic_hidden = {64, 64};
  double actor_lr = 1e-3;
  double critic_lr = 1e-3;
  double gamma = 0.9;          ///< discount
  double tau = 0.01;           ///< soft target update rate
  size_t replay_capacity = 1000;
  size_t batch_size = 32;
  int updates_per_observe = 20;
  /// Exploration noise stddev (fraction of action range), decayed
  /// multiplicatively each suggestion.
  double noise_stddev = 0.4;
  double noise_decay = 0.985;
  double min_noise = 0.05;
  /// Reward scaling for the CDBTune-style delta-performance reward.
  double reward_scale = 10.0;
};

/// \brief Deep Deterministic Policy Gradient tuner (Lillicrap et al.;
/// used for DBMS tuning by CDBTune and QTune — paper §2.2, §6.4).
///
/// The actor maps the DBMS internal-metric state to an action in
/// [-1,1]^d which is affinely mapped onto the search space (categorical
/// dimensions are binned). The critic estimates Q(s, a). Rewards
/// follow CDBTune: scaled performance delta over the initial (default)
/// configuration, with a bonus for improving on the previous step.
class DdpgOptimizer : public Optimizer {
 public:
  DdpgOptimizer(SearchSpace space, DdpgOptions options, uint64_t seed);
  ~DdpgOptimizer() override;

  std::vector<double> Suggest() override;
  void Observe(const std::vector<double>& point, double value) override;
  void ObserveMetrics(const std::vector<double>& metrics) override;
  std::string name() const override { return "DDPG"; }

 private:
  std::vector<double> ActionToPoint(const std::vector<double>& action) const;
  std::vector<double> PointToAction(const std::vector<double>& point) const;
  void TrainStep();

  DdpgOptions options_;
  Rng rng_;

  std::unique_ptr<Mlp> actor_;
  std::unique_ptr<Mlp> actor_target_;
  std::unique_ptr<Mlp> critic_;
  std::unique_ptr<Mlp> critic_target_;
  AdamOptimizer actor_adam_;
  AdamOptimizer critic_adam_;
  ReplayBuffer replay_;

  std::vector<double> state_;       // current metrics (s_t)
  std::vector<double> prev_state_;  // metrics before last action
  std::vector<double> last_action_;
  bool have_state_ = false;
  bool have_pending_action_ = false;
  double initial_perf_ = 0.0;
  double prev_perf_ = 0.0;
  bool have_initial_perf_ = false;
  double noise_ = 0.0;
};

}  // namespace llamatune
