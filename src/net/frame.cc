#include "src/net/frame.h"

#include <cstring>

namespace llamatune {
namespace net {

std::string EncodeFrame(MessageKind kind, const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.push_back(static_cast<char>(kFrameMagic));
  out.push_back(static_cast<char>(kProtocolVersion));
  out.push_back(static_cast<char>(kind));
  out.push_back('\0');  // reserved
  uint32_t len = static_cast<uint32_t>(payload.size());
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((len >> shift) & 0xFF));
  }
  out.append(payload);
  return out;
}

void FrameDecoder::Feed(const char* data, size_t n) {
  buffer_.append(data, n);
}

Result<std::optional<Frame>> FrameDecoder::Next() {
  if (!error_.ok()) return error_;
  if (buffer_.size() < kFrameHeaderBytes) return std::optional<Frame>();

  const unsigned char* head =
      reinterpret_cast<const unsigned char*>(buffer_.data());
  if (head[0] != kFrameMagic) {
    error_ = Status::InvalidArgument("frame: bad magic byte");
    return error_;
  }
  if (head[1] != kProtocolVersion) {
    error_ = Status::FailedPrecondition(
        "frame: protocol version " + std::to_string(head[1]) +
        ", this build speaks " + std::to_string(kProtocolVersion));
    return error_;
  }
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(head[4 + i]) << (8 * i);
  }
  if (len > max_payload_) {
    error_ = Status::OutOfRange("frame: payload of " + std::to_string(len) +
                                " bytes exceeds the " +
                                std::to_string(max_payload_) + "-byte cap");
    return error_;
  }
  if (buffer_.size() < kFrameHeaderBytes + len) return std::optional<Frame>();

  Frame frame;
  frame.kind = static_cast<MessageKind>(head[2]);
  frame.payload.assign(buffer_, kFrameHeaderBytes, len);
  buffer_.erase(0, kFrameHeaderBytes + len);
  return std::optional<Frame>(std::move(frame));
}

}  // namespace net
}  // namespace llamatune
