#include "src/net/tuning_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace llamatune {
namespace net {

TuningClient::~TuningClient() { Disconnect(); }

Status TuningClient::Connect(const std::string& host, uint16_t port) {
  if (fd_ >= 0) return Status::FailedPrecondition("client: already connected");
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("client: bad IPv4 address '" + host + "'");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("client: socket(): ") +
                            std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::Internal("client: connect(" + host + ":" +
                                     std::to_string(port) +
                                     "): " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  fd_ = fd;
  decoder_ = FrameDecoder();
  return Status::OK();
}

void TuningClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status TuningClient::WriteAll(const std::string& bytes) {
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + written, bytes.size() - written,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("client: send(): ") +
                              std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<Frame> TuningClient::Call(MessageKind kind, const std::string& payload,
                                 MessageKind expected) {
  if (fd_ < 0) return Status::FailedPrecondition("client: not connected");
  LT_RETURN_NOT_OK(WriteAll(EncodeFrame(kind, payload)));
  char buf[4096];
  for (;;) {
    Result<std::optional<Frame>> next = decoder_.Next();
    if (!next.ok()) {
      Disconnect();
      return next.status();
    }
    if (next->has_value()) {
      Frame frame = std::move(**next);
      if (frame.kind == MessageKind::kError) {
        WireError code = WireError::kInternal;
        std::string message;
        Status parse = DecodeError(frame.payload, &code, &message);
        if (!parse.ok()) return parse;
        return StatusFromWireError(code, std::move(message));
      }
      if (frame.kind != expected) {
        Disconnect();
        return Status::Internal(
            "client: unexpected reply kind " +
            std::to_string(static_cast<int>(frame.kind)) + " (wanted " +
            std::to_string(static_cast<int>(expected)) + ")");
      }
      return frame;
    }
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      Disconnect();
      return Status::Internal("client: server closed the connection");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = Status::Internal(std::string("client: recv(): ") +
                                       std::strerror(errno));
      Disconnect();
      return status;
    }
    decoder_.Feed(buf, static_cast<size_t>(n));
  }
}

Status TuningClient::Hello(const std::string& tenant) {
  return Call(MessageKind::kHello, EncodeHello(tenant), MessageKind::kOk)
      .status();
}

Status TuningClient::CreateSession(const std::string& name,
                                   const WireSessionSpec& spec) {
  return Call(MessageKind::kCreateSession, EncodeCreateSession(name, spec),
              MessageKind::kOk)
      .status();
}

Status TuningClient::Resume(const std::string& name,
                            const WireSessionSpec& spec,
                            const std::string& checkpoint) {
  return Call(MessageKind::kResume, EncodeResume(name, spec, checkpoint),
              MessageKind::kOk)
      .status();
}

Status TuningClient::ResumeSaved(const std::string& name) {
  return Call(MessageKind::kResumeSaved, EncodeNameOnly(name), MessageKind::kOk)
      .status();
}

Result<Trial> TuningClient::Ask(const std::string& name) {
  Result<Frame> reply =
      Call(MessageKind::kAsk, EncodeNameOnly(name), MessageKind::kTrialReply);
  if (!reply.ok()) return reply.status();
  return DecodeTrialReply(reply->payload);
}

Result<std::vector<Trial>> TuningClient::AskBatch(const std::string& name,
                                                  int n) {
  Result<Frame> reply = Call(MessageKind::kAskBatch, EncodeAskBatch(name, n),
                             MessageKind::kTrialsReply);
  if (!reply.ok()) return reply.status();
  return DecodeTrialsReply(reply->payload);
}

Status TuningClient::Tell(const std::string& name, const TrialResult& result) {
  return Call(MessageKind::kTell, EncodeTell(name, result), MessageKind::kOk)
      .status();
}

Status TuningClient::TellBatch(const std::string& name,
                               const std::vector<TrialResult>& results) {
  return Call(MessageKind::kTellBatch, EncodeTellBatch(name, results),
              MessageKind::kOk)
      .status();
}

Status TuningClient::Step(const std::string& name, bool* progressed) {
  Result<Frame> reply = Call(MessageKind::kStep, EncodeNameOnly(name),
                             MessageKind::kSteppedReply);
  if (!reply.ok()) return reply.status();
  Result<bool> got = DecodeSteppedReply(reply->payload);
  if (!got.ok()) return got.status();
  if (progressed != nullptr) *progressed = *got;
  return Status::OK();
}

Status TuningClient::StartDrive(const std::string& name) {
  return Call(MessageKind::kStartDrive, EncodeNameOnly(name), MessageKind::kOk)
      .status();
}

Result<WireSessionStatus> TuningClient::GetStatus(const std::string& name) {
  Result<Frame> reply = Call(MessageKind::kGetStatus, EncodeNameOnly(name),
                             MessageKind::kStatusReply);
  if (!reply.ok()) return reply.status();
  return DecodeStatusReply(reply->payload);
}

Result<std::vector<WireSessionStatus>> TuningClient::ListSessions() {
  Result<Frame> reply = Call(MessageKind::kListSessions, "",
                             MessageKind::kStatusListReply);
  if (!reply.ok()) return reply.status();
  return DecodeStatusListReply(reply->payload);
}

Result<std::string> TuningClient::Checkpoint(const std::string& name) {
  Result<Frame> reply = Call(MessageKind::kCheckpoint, EncodeNameOnly(name),
                             MessageKind::kCheckpointReply);
  if (!reply.ok()) return reply.status();
  return DecodeCheckpointReply(reply->payload);
}

Result<WireCloseResult> TuningClient::Close(const std::string& name) {
  Result<Frame> reply = Call(MessageKind::kClose, EncodeNameOnly(name),
                             MessageKind::kClosedReply);
  if (!reply.ok()) return reply.status();
  return DecodeClosedReply(reply->payload);
}

Status TuningClient::Ping() {
  return Call(MessageKind::kPing, "", MessageKind::kPongReply).status();
}

}  // namespace net
}  // namespace llamatune
