#include "src/net/tuning_client.h"

#include <netdb.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "src/common/fault_injection.h"

namespace llamatune {
namespace net {

namespace {

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Milliseconds until `deadline_ms` (a SteadyNowMs value) for poll();
/// -1 (wait forever) when no deadline is set, 0 when it passed.
int PollBudget(int64_t deadline_ms) {
  if (deadline_ms <= 0) return -1;
  int64_t left = deadline_ms - SteadyNowMs();
  if (left <= 0) return 0;
  return static_cast<int>(std::min<int64_t>(left, 60000));
}

}  // namespace

TuningClient::~TuningClient() { Disconnect(); }

Status TuningClient::Connect(const std::string& host, uint16_t port) {
  if (fd_ >= 0) return Status::FailedPrecondition("client: already connected");
  host_ = host;
  port_ = port;
  have_endpoint_ = true;
  return ConnectInternal();
}

Status TuningClient::ConnectInternal() {
  addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  int rc = ::getaddrinfo(host_.c_str(), std::to_string(port_).c_str(), &hints,
                         &res);
  if (rc != 0) {
    return Status::InvalidArgument("client: getaddrinfo('" + host_ +
                                   "'): " + ::gai_strerror(rc));
  }
  Status last =
      Status::Unavailable("client: no usable address for '" + host_ + "'");
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_NONBLOCK,
                      ai->ai_protocol);
    if (fd < 0) {
      last = Status::Internal(std::string("client: socket(): ") +
                              std::strerror(errno));
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) != 0) {
      if (errno != EINPROGRESS) {
        last = Status::Unavailable("client: connect(" + host_ + ":" +
                                   std::to_string(port_) +
                                   "): " + std::strerror(errno));
        ::close(fd);
        continue;
      }
      // Non-blocking connect: wait for writability, then read the
      // final verdict from SO_ERROR.
      pollfd p;
      p.fd = fd;
      p.events = POLLOUT;
      p.revents = 0;
      int timeout = options_.connect_timeout_ms > 0
                        ? static_cast<int>(options_.connect_timeout_ms)
                        : -1;
      int pr = ::poll(&p, 1, timeout);
      if (pr <= 0) {
        last = Status::Unavailable("client: connect(" + host_ + ":" +
                                   std::to_string(port_) + ") timed out");
        ::close(fd);
        continue;
      }
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        last = Status::Unavailable("client: connect(" + host_ + ":" +
                                   std::to_string(port_) +
                                   "): " + std::strerror(err));
        ::close(fd);
        continue;
      }
    }
    // The socket stays non-blocking; every read/write below polls, so
    // per-call deadlines can interrupt a stuck peer.
    ::freeaddrinfo(res);
    fd_ = fd;
    decoder_ = FrameDecoder();
    return Status::OK();
  }
  ::freeaddrinfo(res);
  return last;
}

void TuningClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status TuningClient::EnsureConnected() {
  if (fd_ >= 0) return Status::OK();
  if (!have_endpoint_) {
    return Status::FailedPrecondition("client: not connected");
  }
  LT_RETURN_NOT_OK(ConnectInternal());
  if (hello_done_) {
    // The tenant declaration is per-connection state; replay it so
    // quota accounting survives the reconnect.
    Result<Frame> hello =
        CallOnce(MessageKind::kHello, EncodeHello(tenant_), MessageKind::kOk);
    if (!hello.ok()) {
      Disconnect();
      return hello.status();
    }
  }
  return Status::OK();
}

bool TuningClient::BackoffAndRetry(RetryState* state) {
  const RetryPolicy& policy = options_.retry;
  ++state->attempt;
  if (state->attempt >= std::max(1, policy.max_attempts)) return false;
  if (policy.retry_budget_ms > 0 &&
      state->slept_ms >= policy.retry_budget_ms) {
    return false;
  }
  if (jitter_state_ == 0) {
    jitter_state_ = Mix64(policy.jitter_seed ^ 0x636c69656e74ULL);
  }
  // Decorrelated jitter: uniform in [base, 3 * previous sleep].
  int64_t lo = std::max<int64_t>(policy.initial_backoff_ms, 1);
  int64_t hi = std::max(lo + 1, state->prev_sleep_ms * 3);
  uint64_t draw = Mix64(jitter_state_++);
  int64_t sleep =
      lo + static_cast<int64_t>(draw % static_cast<uint64_t>(hi - lo));
  sleep = std::min(sleep, policy.max_backoff_ms);
  if (pending_retry_hint_ms_ > 0) {
    // The server told us when to come back (its decorrelated shed
    // hint, or the remaining drain window) — better information than
    // our blind jitter, still bounded by our own caps.
    sleep = std::min(pending_retry_hint_ms_, policy.max_backoff_ms);
    pending_retry_hint_ms_ = 0;
    ++retry_hints_seen_;
  }
  if (policy.retry_budget_ms > 0) {
    sleep = std::min(sleep, policy.retry_budget_ms - state->slept_ms);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(sleep));
  state->slept_ms += sleep;
  state->prev_sleep_ms = sleep;
  return true;
}

Status TuningClient::WriteAll(const std::string& bytes, int64_t deadline_ms) {
  // Chaos hook: the connection resets before the request leaves.
  if (FaultInjection::ShouldFail("client.send.reset")) {
    Disconnect();
    return Status::Unavailable("client: injected send reset");
  }
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + written, bytes.size() - written,
                       MSG_NOSIGNAL);
    if (n >= 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      int budget = PollBudget(deadline_ms);
      if (budget == 0) {
        Disconnect();
        return Status::Unavailable("client: send deadline exceeded");
      }
      pollfd p;
      p.fd = fd_;
      p.events = POLLOUT;
      p.revents = 0;
      ::poll(&p, 1, budget);
      continue;
    }
    Status status = Status::Unavailable(std::string("client: send(): ") +
                                        std::strerror(errno));
    Disconnect();
    return status;
  }
  return Status::OK();
}

Result<Frame> TuningClient::CallOnce(MessageKind kind,
                                     const std::string& payload,
                                     MessageKind expected) {
  if (fd_ < 0) return Status::Unavailable("client: not connected");
  // A retry-after hint is advice for the backoff right after the reply
  // that carried it; a fresh attempt makes any unconsumed hint stale.
  pending_retry_hint_ms_ = 0;
  int64_t deadline_ms = options_.call_timeout_ms > 0
                            ? SteadyNowMs() + options_.call_timeout_ms
                            : 0;
  std::string wire_payload = payload;
  AppendDeadlineRider(&wire_payload, options_.request_deadline_ms);
  LT_RETURN_NOT_OK(WriteAll(EncodeFrame(kind, wire_payload), deadline_ms));
  char buf[4096];
  for (;;) {
    Result<std::optional<Frame>> next = decoder_.Next();
    if (!next.ok()) {
      Disconnect();
      return next.status();
    }
    if (next->has_value()) {
      Frame frame = std::move(**next);
      if (frame.kind == MessageKind::kError) {
        WireError code = WireError::kInternal;
        std::string message;
        int64_t retry_after_ms = 0;
        Status parse =
            DecodeError(frame.payload, &code, &message, &retry_after_ms);
        if (!parse.ok()) return parse;
        if (retry_after_ms > 0) pending_retry_hint_ms_ = retry_after_ms;
        return StatusFromWireError(code, std::move(message));
      }
      if (frame.kind != expected) {
        Disconnect();
        return Status::Internal(
            "client: unexpected reply kind " +
            std::to_string(static_cast<int>(frame.kind)) + " (wanted " +
            std::to_string(static_cast<int>(expected)) + ")");
      }
      return frame;
    }
    int budget = PollBudget(deadline_ms);
    if (budget == 0) {
      // The reply may still arrive after we stop waiting; reading it
      // on the next call would answer the wrong request, so the
      // connection cannot be reused.
      Disconnect();
      return Status::Unavailable("client: call deadline exceeded");
    }
    pollfd p;
    p.fd = fd_;
    p.events = POLLIN;
    p.revents = 0;
    int pr = ::poll(&p, 1, budget);
    if (pr < 0 && errno != EINTR) {
      Status status = Status::Unavailable(std::string("client: poll(): ") +
                                          std::strerror(errno));
      Disconnect();
      return status;
    }
    if (pr <= 0) continue;
    // Chaos hook: request a single byte so the decoder sees a torn
    // frame boundary; the remainder stays queued in the socket (a
    // short read, never data loss).
    size_t want = sizeof(buf);
    if (FaultInjection::ShouldFail("client.recv.short")) want = 1;
    ssize_t n = ::recv(fd_, buf, want, 0);
    if (n == 0) {
      Disconnect();
      return Status::Unavailable("client: server closed the connection");
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      Status status = Status::Unavailable(std::string("client: recv(): ") +
                                          std::strerror(errno));
      Disconnect();
      return status;
    }
    decoder_.Feed(buf, static_cast<size_t>(n));
  }
}

Result<Frame> TuningClient::Call(MessageKind kind, const std::string& payload,
                                 MessageKind expected, bool* retried) {
  if (retried != nullptr) *retried = false;
  RetryState state;
  for (;;) {
    Status conn = EnsureConnected();
    Status failure;
    if (conn.ok()) {
      Result<Frame> reply = CallOnce(kind, payload, expected);
      if (reply.ok()) return reply;
      // Only kUnavailable is transient (transport faults, Busy
      // backpressure, deadlines); every typed application error is an
      // answer, not a failure.
      if (reply.status().code() != StatusCode::kUnavailable) {
        return reply.status();
      }
      failure = reply.status();
    } else {
      if (conn.code() != StatusCode::kUnavailable) return conn;
      failure = conn;
    }
    if (!BackoffAndRetry(&state)) return failure;
    if (retried != nullptr) *retried = true;
  }
}

Status TuningClient::Hello(const std::string& tenant) {
  Status status =
      Call(MessageKind::kHello, EncodeHello(tenant), MessageKind::kOk)
          .status();
  if (status.ok()) {
    tenant_ = tenant;
    hello_done_ = true;
  }
  return status;
}

Status TuningClient::CreateSession(const std::string& name,
                                   const WireSessionSpec& spec) {
  bool retried = false;
  Status status = Call(MessageKind::kCreateSession,
                       EncodeCreateSession(name, spec), MessageKind::kOk,
                       &retried)
                      .status();
  if (status.ok()) {
    last_seen_trial_[name] = 0;
    return status;
  }
  // A lost reply whose create committed answers the retry with
  // SessionAlreadyExists — that is success, not a conflict.
  if (retried && status.code() == StatusCode::kSessionAlreadyExists) {
    last_seen_trial_[name] = 0;
    return Status::OK();
  }
  return status;
}

Status TuningClient::Resume(const std::string& name,
                            const WireSessionSpec& spec,
                            const std::string& checkpoint) {
  bool retried = false;
  Status status =
      Call(MessageKind::kResume, EncodeResume(name, spec, checkpoint),
           MessageKind::kOk, &retried)
          .status();
  if (retried && status.code() == StatusCode::kSessionAlreadyExists) {
    return Status::OK();
  }
  return status;
}

Status TuningClient::ResumeSaved(const std::string& name) {
  bool retried = false;
  Status status = Call(MessageKind::kResumeSaved, EncodeNameOnly(name),
                       MessageKind::kOk, &retried)
                      .status();
  if (retried && status.code() == StatusCode::kSessionAlreadyExists) {
    return Status::OK();
  }
  return status;
}

Result<Trial> TuningClient::Ask(const std::string& name) {
  RetryState state;
  // Set once an attempt fails after the request may have reached the
  // server: the ask could have committed with its reply lost, leaving
  // an orphaned pending trial we must adopt rather than re-draw.
  bool maybe_orphaned = false;
  for (;;) {
    Status conn = EnsureConnected();
    Status failure;
    if (!conn.ok()) {
      if (conn.code() != StatusCode::kUnavailable) return conn;
      failure = conn;
    } else if (maybe_orphaned) {
      Result<Frame> reply = CallOnce(MessageKind::kGetPending,
                                     EncodeNameOnly(name),
                                     MessageKind::kPendingReply);
      if (reply.ok()) {
        int64_t next = 0;
        std::vector<Trial> pending;
        Status parse = DecodePendingReply(reply->payload, &next, &pending);
        if (!parse.ok()) return parse;
        int64_t watermark = last_seen_trial_[name];
        const Trial* adopt = nullptr;
        for (const Trial& trial : pending) {
          if (trial.id > watermark &&
              (adopt == nullptr || trial.id < adopt->id)) {
            adopt = &trial;
          }
        }
        if (adopt != nullptr) {
          last_seen_trial_[name] = adopt->id;
          return *adopt;
        }
        // Nothing orphaned: the lost attempt never committed, so a
        // fresh ask is the *same* deterministic draw, not a skip.
        maybe_orphaned = false;
        continue;
      }
      if (reply.status().code() != StatusCode::kUnavailable) {
        return reply.status();
      }
      failure = reply.status();
    } else {
      Result<Frame> reply = CallOnce(MessageKind::kAsk, EncodeNameOnly(name),
                                     MessageKind::kTrialReply);
      if (reply.ok()) {
        Result<Trial> trial = DecodeTrialReply(reply->payload);
        if (trial.ok()) {
          int64_t& watermark = last_seen_trial_[name];
          watermark = std::max(watermark, trial->id);
        }
        return trial;
      }
      if (reply.status().code() != StatusCode::kUnavailable) {
        return reply.status();
      }
      failure = reply.status();
      maybe_orphaned = true;
    }
    if (!BackoffAndRetry(&state)) return failure;
  }
}

Result<std::vector<Trial>> TuningClient::AskBatch(const std::string& name,
                                                  int n) {
  RetryState state;
  bool maybe_orphaned = false;
  for (;;) {
    Status conn = EnsureConnected();
    Status failure;
    if (!conn.ok()) {
      if (conn.code() != StatusCode::kUnavailable) return conn;
      failure = conn;
    } else if (maybe_orphaned) {
      Result<Frame> reply = CallOnce(MessageKind::kGetPending,
                                     EncodeNameOnly(name),
                                     MessageKind::kPendingReply);
      if (reply.ok()) {
        int64_t next = 0;
        std::vector<Trial> pending;
        Status parse = DecodePendingReply(reply->payload, &next, &pending);
        if (!parse.ok()) return parse;
        int64_t watermark = last_seen_trial_[name];
        std::vector<Trial> orphans;
        for (const Trial& trial : pending) {
          if (trial.id > watermark) orphans.push_back(trial);
        }
        std::sort(orphans.begin(), orphans.end(),
                  [](const Trial& a, const Trial& b) { return a.id < b.id; });
        // A committed batch leaves exactly the asked trials orphaned
        // (this client is the only asker); adopt them wholesale. The
        // server may legitimately hand out fewer than n at the budget
        // boundary, so any non-empty orphan set is the lost batch.
        if (!orphans.empty() &&
            orphans.size() <= static_cast<size_t>(std::max(n, 1))) {
          last_seen_trial_[name] = orphans.back().id;
          return orphans;
        }
        maybe_orphaned = false;
        continue;
      }
      if (reply.status().code() != StatusCode::kUnavailable) {
        return reply.status();
      }
      failure = reply.status();
    } else {
      Result<Frame> reply = CallOnce(MessageKind::kAskBatch,
                                     EncodeAskBatch(name, n),
                                     MessageKind::kTrialsReply);
      if (reply.ok()) {
        Result<std::vector<Trial>> trials = DecodeTrialsReply(reply->payload);
        if (trials.ok() && !trials->empty()) {
          int64_t& watermark = last_seen_trial_[name];
          for (const Trial& trial : *trials) {
            watermark = std::max(watermark, trial.id);
          }
        }
        return trials;
      }
      if (reply.status().code() != StatusCode::kUnavailable) {
        return reply.status();
      }
      failure = reply.status();
      maybe_orphaned = true;
    }
    if (!BackoffAndRetry(&state)) return failure;
  }
}

Status TuningClient::Tell(const std::string& name, const TrialResult& result) {
  bool retried = false;
  Status status = Call(MessageKind::kTell, EncodeTell(name, result),
                       MessageKind::kOk, &retried)
                      .status();
  // AlreadyExists on a retried tell means the lost first attempt
  // committed — the result is in, which is what the caller asked for.
  if (retried && status.code() == StatusCode::kAlreadyExists) {
    return Status::OK();
  }
  return status;
}

Status TuningClient::TellBatch(const std::string& name,
                               const std::vector<TrialResult>& results) {
  bool retried = false;
  Status status = Call(MessageKind::kTellBatch, EncodeTellBatch(name, results),
                       MessageKind::kOk, &retried)
                      .status();
  if (!retried || status.code() != StatusCode::kAlreadyExists) return status;
  // The lost first attempt committed a *prefix* of the batch (the
  // server applies results in order, first error wins). Re-telling one
  // by one lets the committed prefix answer AlreadyExists while the
  // uncommitted tail still lands.
  for (const TrialResult& result : results) {
    Status one = Tell(name, result);
    if (!one.ok() && one.code() != StatusCode::kAlreadyExists) return one;
  }
  return Status::OK();
}

Result<std::vector<Trial>> TuningClient::GetPending(const std::string& name,
                                                    int64_t* next_trial_id) {
  Result<Frame> reply = Call(MessageKind::kGetPending, EncodeNameOnly(name),
                             MessageKind::kPendingReply);
  if (!reply.ok()) return reply.status();
  int64_t next = 0;
  std::vector<Trial> pending;
  Status parse = DecodePendingReply(reply->payload, &next, &pending);
  if (!parse.ok()) return parse;
  if (next_trial_id != nullptr) *next_trial_id = next;
  return pending;
}

Status TuningClient::Step(const std::string& name, bool* progressed) {
  Result<Frame> reply = Call(MessageKind::kStep, EncodeNameOnly(name),
                             MessageKind::kSteppedReply);
  if (!reply.ok()) return reply.status();
  Result<bool> got = DecodeSteppedReply(reply->payload);
  if (!got.ok()) return got.status();
  if (progressed != nullptr) *progressed = *got;
  return Status::OK();
}

Status TuningClient::StartDrive(const std::string& name) {
  return Call(MessageKind::kStartDrive, EncodeNameOnly(name), MessageKind::kOk)
      .status();
}

Result<WireSessionStatus> TuningClient::GetStatus(const std::string& name) {
  Result<Frame> reply = Call(MessageKind::kGetStatus, EncodeNameOnly(name),
                             MessageKind::kStatusReply);
  if (!reply.ok()) return reply.status();
  return DecodeStatusReply(reply->payload);
}

Result<std::vector<WireSessionStatus>> TuningClient::ListSessions() {
  Result<Frame> reply =
      Call(MessageKind::kListSessions, "", MessageKind::kStatusListReply);
  if (!reply.ok()) return reply.status();
  return DecodeStatusListReply(reply->payload);
}

Result<std::string> TuningClient::Checkpoint(const std::string& name) {
  Result<Frame> reply = Call(MessageKind::kCheckpoint, EncodeNameOnly(name),
                             MessageKind::kCheckpointReply);
  if (!reply.ok()) return reply.status();
  return DecodeCheckpointReply(reply->payload);
}

Result<WireCloseResult> TuningClient::Close(const std::string& name) {
  Result<Frame> reply = Call(MessageKind::kClose, EncodeNameOnly(name),
                             MessageKind::kClosedReply);
  if (!reply.ok()) return reply.status();
  return DecodeClosedReply(reply->payload);
}

Status TuningClient::Ping() {
  return Call(MessageKind::kPing, "", MessageKind::kPongReply).status();
}

Status TuningClient::Drain() {
  // kDrain is idempotent server-side (a drain is already in progress
  // on retry), so the plain retry loop is safe.
  return Call(MessageKind::kDrain, "", MessageKind::kOk).status();
}

Result<WireServerHealth> TuningClient::HealthCheck() {
  Result<Frame> reply =
      Call(MessageKind::kHealthCheck, "", MessageKind::kHealthReply);
  if (!reply.ok()) return reply.status();
  return DecodeHealthReply(reply->payload);
}

Result<WireServerStats> TuningClient::ServerStats() {
  Result<Frame> reply =
      Call(MessageKind::kServerStats, "", MessageKind::kStatsReply);
  if (!reply.ok()) return reply.status();
  return DecodeStatsReply(reply->payload);
}

}  // namespace net
}  // namespace llamatune
