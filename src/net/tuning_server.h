#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "src/common/status.h"
#include "src/common/sync.h"
#include "src/knobs/config_space.h"
#include "src/net/frame.h"
#include "src/net/message.h"
#include "src/service/trial_wal.h"
#include "src/service/tuning_service.h"

namespace llamatune {
namespace net {

/// \brief Knobs for one TuningServer instance.
struct TuningServerOptions {
  /// Numeric IPv4 bind address.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;

  /// Per-tenant cap on live sessions created over the wire
  /// (CreateSession / Resume / ResumeSaved); 0 = unlimited. Exceeding
  /// it earns a QuotaExceeded error reply.
  int max_sessions_per_tenant = 0;
  /// Server-wide cap on requests admitted but not yet answered.
  /// Overflow earns an immediate Busy error reply (which may overtake
  /// earlier in-flight replies on the same connection).
  int max_pending_requests = 256;
  /// Per-connection frame payload cap (oversized frames are a framing
  /// fault: one BadFrame error, then the connection closes).
  size_t max_frame_payload = kDefaultMaxFramePayload;

  /// Sessions with no driving activity (ask/tell/step/drive — status
  /// polls and checkpoints don't count) for this long are autosaved
  /// (if autosave_dir is set) and closed; 0 disables eviction.
  int64_t idle_eviction_ms = 0;
  /// Directory for autosave snapshots (created by Start if missing);
  /// empty disables autosave. Each wire-created session periodically
  /// saves to <hex(name)>.autosave — spec line + checkpoint text — and
  /// can be revived by ResumeSaved after a crash or eviction.
  ///
  /// When set, every wire-created session additionally keeps a
  /// per-tell write-ahead log at <hex(name)>.wal: each committed
  /// ask/tell/expire/step appends one fsync'd record, and ResumeSaved
  /// replays the WAL tail on top of the last autosave, bounding data
  /// loss after a crash to at most the request in flight (see
  /// docs/resilience.md).
  std::string autosave_dir;
  /// Autosave sweep period; 0 disables the periodic sweep (explicit
  /// RunMaintenance() calls still autosave).
  int64_t autosave_interval_ms = 0;
};

/// \brief TCP front-end for TuningService: one poll()-based event-loop
/// thread accepts connections and deframes requests; complete requests
/// run on the shared ThreadPool. Replies on one connection stay in
/// request order (per-connection FIFO — at most one in-flight handler
/// per connection), while different connections proceed concurrently,
/// mirroring the service's per-session concurrency contract.
///
/// Hardening beyond plain dispatch: per-tenant session quotas,
/// admission control with Busy backpressure, idle-session eviction,
/// periodic checkpoint autosave with ResumeSaved recovery, and
/// background drive-to-completion for workload-backed sessions.
class TuningServer {
 public:
  explicit TuningServer(TuningServerOptions options = TuningServerOptions());
  ~TuningServer();
  TuningServer(const TuningServer&) = delete;
  TuningServer& operator=(const TuningServer&) = delete;

  /// Binds, listens and starts the event loop.
  Status Start();
  /// Stops accepting, joins the loop, drains in-flight handlers and
  /// background drives, closes all connections. Sessions stay in the
  /// service (final autosave runs first when autosave is configured).
  void Stop();

  /// The bound port (valid after Start; useful with options.port = 0).
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(); }

  /// The underlying registry — in-process callers may drive sessions
  /// directly, but sessions created this way are invisible to autosave
  /// and quotas (the server has no wire spec for them).
  service::TuningService& service() { return service_; }

  /// Runs one autosave + eviction sweep synchronously (the same sweep
  /// the loop runs on its timers). Exposed so tests don't race timers.
  void RunMaintenance();

  /// \name Observability counters
  /// @{
  int64_t busy_rejections() const { return busy_rejections_.load(); }
  int64_t sessions_evicted() const { return sessions_evicted_.load(); }
  int64_t autosaves_written() const { return autosaves_written_.load(); }
  /// @}

 private:
  /// Per-connection state. Owned jointly by the event loop (poll set)
  /// and any in-flight handler via shared_ptr; the destructor closes
  /// the fd, so a handler can never write into a recycled descriptor.
  struct Conn {
    explicit Conn(int fd, size_t max_payload)
        : fd(fd), decoder(max_payload) {}
    ~Conn();
    const int fd;
    /// Fed and drained by the event loop only.
    FrameDecoder decoder;
    /// Tenant declared by kHello; "" until then. Written by the kHello
    /// handler and read by later handlers on the same connection —
    /// safe unguarded because the per-connection FIFO (busy flag under
    /// mu) puts every handler in a happens-before chain.
    std::string tenant;
    Mutex mu;
    /// Queued requests + the one-in-flight flag.
    std::deque<Frame> inbox GUARDED_BY(mu);
    bool busy GUARDED_BY(mu) = false;
    /// Serializes whole-frame writes so replies never interleave.
    Mutex write_mu;
    std::atomic<bool> closed{false};
  };
  using ConnPtr = std::shared_ptr<Conn>;

  /// Server-side record of a wire-created session (what the service
  /// itself doesn't know: the serializable spec, the owning tenant,
  /// the rebuilt ConfigSpace for space sources, the drive flag).
  struct SessionMeta {
    WireSessionSpec spec;
    std::string tenant;
    std::unique_ptr<ConfigSpace> owned_space;
    std::atomic<bool> driving{false};
    /// Per-session trial WAL (open only when autosave_dir is set).
    service::TrialWal wal;
    /// Serializes each (service call + WAL append) pair so WAL record
    /// order always matches the session's commit order. Taken before
    /// the service's per-session mutex; never the other way around.
    Mutex op_mu;
  };
  using MetaPtr = std::shared_ptr<SessionMeta>;

  void EventLoop();
  void HandleReadable(const ConnPtr& conn);
  /// Starts the next queued request if none is in flight (takes
  /// conn->mu).
  void Dispatch(const ConnPtr& conn);
  /// Runs on the pool: answers one request, then re-dispatches.
  void RunHandler(const ConnPtr& conn, Frame frame);
  std::string HandleRequest(const ConnPtr& conn, const Frame& frame);
  void WriteFrame(const ConnPtr& conn, MessageKind kind,
                  const std::string& payload);
  std::string ErrorReplyFrame(const Status& status) const;

  /// Request handlers (pool threads).
  std::string HandleCreateOrResume(const ConnPtr& conn, const Frame& frame);
  std::string HandleResumeSaved(const ConnPtr& conn, const std::string& name);
  std::string HandleStartDrive(const std::string& name);
  std::string HandleClose(const std::string& name);
  void DriveStep(const std::string& name, MetaPtr meta);

  /// Converts a wire spec into a live SessionSpec (resolving the
  /// workload name or rebuilding the knob space into *owned_space).
  static Status BuildSessionSpec(const WireSessionSpec& wire,
                                 std::unique_ptr<ConfigSpace>* owned_space,
                                 service::SessionSpec* out);

  /// Quota bookkeeping (meta_mu_).
  Status ReserveTenantSlot(const std::string& tenant) EXCLUDES(meta_mu_);
  void ReleaseTenantSlot(const std::string& tenant) EXCLUDES(meta_mu_);

  /// \name WAL-aware session operations
  ///
  /// Each successful mutation on a wire-created session appends one
  /// record to its WAL under meta->op_mu, keeping the log a faithful
  /// prefix of the session's committed history. Sessions without an
  /// open WAL (in-process, or autosave disabled) fall straight through
  /// to the service.
  /// @{
  MetaPtr FindMeta(const std::string& name) const EXCLUDES(meta_mu_);
  Result<Trial> DoAsk(const std::string& name);
  Result<std::vector<Trial>> DoAskBatch(const std::string& name, int n);
  Status DoTell(const std::string& name, const TrialResult& result);
  Status DoTellBatch(const std::string& name,
                     const std::vector<TrialResult>& results);
  Status DoStep(const std::string& name, bool* progressed);
  /// Expires overdue trials on every wire session with a deadline and
  /// WAL-logs each expiry.
  void ExpireSweep();
  /// Replays the WAL tail on top of a freshly resumed session (see
  /// docs/resilience.md for the cursor rules).
  Status ReplayWal(const std::string& name);
  /// @}

  std::string AutosavePath(const std::string& name) const;
  std::string WalPath(const std::string& name) const;
  Status AutosaveSession(const std::string& name, const MetaPtr& meta);
  void AutosaveSweep();
  void EvictionSweep();

  void TaskStarted() EXCLUDES(tasks_mu_);
  void TaskFinished() EXCLUDES(tasks_mu_);

  TuningServerOptions options_;
  service::TuningService service_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;
  /// The poll event loop owns a dedicated thread: its poll() blocks,
  /// so it must never run on (or starve) the shared worker pool.
  std::thread loop_;  // lint:allow(raw-thread)
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  /// fd -> connection, owned by the event loop (loop thread only after
  /// Start, so unguarded there; Stop joins the loop before clearing).
  std::map<int, ConnPtr> conns_;

  /// Wire-created sessions + per-tenant counts.
  mutable Mutex meta_mu_;
  std::map<std::string, MetaPtr> metas_ GUARDED_BY(meta_mu_);
  std::map<std::string, int> tenant_sessions_ GUARDED_BY(meta_mu_);

  /// One sweep at a time (loop timer vs RunMaintenance).
  Mutex maintenance_mu_;

  /// Admitted-but-unanswered requests, for backpressure.
  std::atomic<int> pending_requests_{0};
  /// In-flight pool tasks (handlers + drive steps), drained by Stop.
  Mutex tasks_mu_;
  CondVar tasks_cv_;
  int active_tasks_ GUARDED_BY(tasks_mu_) = 0;

  std::atomic<int64_t> busy_rejections_{0};
  std::atomic<int64_t> sessions_evicted_{0};
  std::atomic<int64_t> autosaves_written_{0};
};

}  // namespace net
}  // namespace llamatune
