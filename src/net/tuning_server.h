#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/common/sync.h"
#include "src/knobs/config_space.h"
#include "src/net/frame.h"
#include "src/net/message.h"
#include "src/service/trial_wal.h"
#include "src/service/tuning_service.h"

namespace llamatune {
namespace net {

/// \brief Knobs for one TuningServer instance.
struct TuningServerOptions {
  /// Numeric IPv4 bind address.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;

  /// Per-tenant cap on live sessions created over the wire
  /// (CreateSession / Resume / ResumeSaved); 0 = unlimited. Exceeding
  /// it earns a QuotaExceeded error reply.
  int max_sessions_per_tenant = 0;
  /// Server-wide cap on requests admitted but not yet answered.
  /// Overflow is answered immediately from the event loop: cheap
  /// requests get Busy, expensive ones get Overloaded with a
  /// retry-after hint (either may overtake earlier in-flight replies
  /// on the same connection).
  int max_pending_requests = 256;
  /// Per-connection frame payload cap (oversized frames are a framing
  /// fault: one BadFrame error, then the connection closes).
  size_t max_frame_payload = kDefaultMaxFramePayload;

  /// listen(2) backlog for the accept socket.
  int listen_backlog = 128;
  /// Event-loop poll() timeout when no timer is due sooner.
  int poll_timeout_ms = 1000;

  /// Sessions with no driving activity (ask/tell/step/drive — status
  /// polls and checkpoints don't count) for this long are autosaved
  /// (if autosave_dir is set) and closed; 0 disables eviction.
  int64_t idle_eviction_ms = 0;
  /// Directory for autosave snapshots (created by Start if missing);
  /// empty disables autosave. Each wire-created session periodically
  /// saves to <hex(name)>.autosave — spec line + checkpoint text — and
  /// can be revived by ResumeSaved after a crash or eviction.
  ///
  /// When set, every wire-created session additionally keeps a
  /// per-tell write-ahead log at <hex(name)>.wal: each committed
  /// ask/tell/expire/step appends one fsync'd record, and ResumeSaved
  /// replays the WAL tail on top of the last autosave, bounding data
  /// loss after a crash to at most the request in flight (see
  /// docs/resilience.md).
  std::string autosave_dir;
  /// Autosave sweep period; 0 disables the periodic sweep (explicit
  /// RunMaintenance() calls still autosave).
  int64_t autosave_interval_ms = 0;
  /// Revive every autosaved session found in autosave_dir during
  /// Start() — the hot-restart sweep. A successor process pointed at a
  /// drained predecessor's autosave_dir resumes its sessions without
  /// any client sending kResumeSaved.
  bool resume_saved_on_start = false;

  /// \name Graceful drain & load shedding (docs/resilience.md)
  /// @{

  /// How long a drain (Stop(), SIGTERM wiring, or a kDrain request)
  /// waits for in-flight handlers and background drives before forcing
  /// teardown. In-flight work that finishes sooner ends the drain
  /// early.
  int64_t drain_deadline_ms = 5000;
  /// Default server-side deadline applied to every admitted request
  /// that carries no explicit ` ddl N` rider; 0 = no deadline. A
  /// request still queued past its deadline is shed with Overloaded at
  /// dispatch instead of doing work nobody is waiting for.
  int64_t default_request_deadline_ms = 0;
  /// Slots of max_pending_requests reserved for cheap requests
  /// (status/health/ping class): expensive work (ask/tell/step/drive
  /// class) is shed with Overloaded once it alone fills
  /// max_pending_requests - cheap_admission_reserve, so operators can
  /// always probe an overloaded server.
  int cheap_admission_reserve = 32;
  /// Bounds for the decorrelated retry-after hint carried by
  /// Overloaded (and drain-time ShuttingDown) replies.
  int64_t shed_retry_base_ms = 25;
  int64_t shed_retry_max_ms = 1000;
  /// @}
};

/// \brief TCP front-end for TuningService: one poll()-based event-loop
/// thread accepts connections and deframes requests; complete requests
/// run on the shared ThreadPool. Replies on one connection stay in
/// request order (per-connection FIFO — at most one in-flight handler
/// per connection), while different connections proceed concurrently,
/// mirroring the service's per-session concurrency contract.
///
/// Hardening beyond plain dispatch: per-tenant session quotas,
/// cost-classified admission control with Busy/Overloaded
/// backpressure and per-tenant fair shares, per-request deadlines,
/// idle-session eviction, periodic checkpoint autosave with
/// ResumeSaved recovery (plus an optional hot-restart sweep at
/// startup), background drive-to-completion, and a Running → Draining
/// → Stopped lifecycle with graceful drain.
class TuningServer {
 public:
  explicit TuningServer(TuningServerOptions options = TuningServerOptions());
  ~TuningServer();
  TuningServer(const TuningServer&) = delete;
  TuningServer& operator=(const TuningServer&) = delete;

  /// Binds, listens, optionally runs the hot-restart resume sweep, and
  /// starts the event loop.
  Status Start();
  /// Graceful shutdown: initiates a drain (idempotent), waits for
  /// in-flight handlers and background drives up to drain_deadline_ms,
  /// runs a final autosave sweep, closes all connections and moves the
  /// lifecycle to Stopped. Safe to call from several threads at once —
  /// exactly one caller tears down, the rest block until it finishes.
  void Stop();
  /// Moves Running → Draining without blocking: the listen socket
  /// closes, expensive requests are refused with ShuttingDown, and the
  /// event loop exits on its own once in-flight work quiesces (or the
  /// drain deadline passes). Idempotent; a no-op once stopped. Callers
  /// that want the full teardown still call Stop().
  void Drain();

  /// The bound port (valid after Start; useful with options.port = 0).
  uint16_t port() const { return port_; }
  ServerLifecycle lifecycle() const {
    return static_cast<ServerLifecycle>(lifecycle_.load());
  }
  bool running() const { return lifecycle() == ServerLifecycle::kRunning; }
  bool draining() const { return lifecycle() == ServerLifecycle::kDraining; }

  /// The underlying registry — in-process callers may drive sessions
  /// directly, but sessions created this way are invisible to autosave
  /// and quotas (the server has no wire spec for them).
  service::TuningService& service() { return service_; }

  /// Runs one autosave + eviction sweep synchronously (the same sweep
  /// the loop runs on its timers). Exposed so tests don't race timers.
  void RunMaintenance();

  /// \name Observability counters (also served by kServerStats)
  /// @{
  int64_t busy_rejections() const { return busy_rejections_.load(); }
  int64_t sessions_evicted() const { return sessions_evicted_.load(); }
  int64_t autosaves_written() const { return autosaves_written_.load(); }
  int64_t shed_overload() const { return shed_overload_.load(); }
  int64_t shed_deadline() const { return shed_deadline_.load(); }
  int64_t sessions_restored() const { return sessions_restored_.load(); }
  /// @}

  /// In-process snapshots of what kHealthCheck / kServerStats serve.
  WireServerHealth Health() const;
  WireServerStats Stats() const EXCLUDES(meta_mu_);

  /// Pure fairness policy, exposed for unit tests: should a tenant
  /// with `tenant_inflight` expensive requests already admitted (of
  /// `active_tenants` tenants currently holding any) be shed, given
  /// the expensive-class budget and its current occupancy? Fairness
  /// only bites under pressure — below half the budget bursts are
  /// allowed through.
  static bool FairShareExceeded(int tenant_inflight, int active_tenants,
                                int expensive_cap, int pending_expensive);

 private:
  /// One admitted request waiting in (or running from) a connection's
  /// FIFO, with the admission metadata the dispatcher needs.
  struct PendingRequest {
    Frame frame;
    /// Absolute server-clock deadline; 0 = none. Set from the
    /// request's ` ddl N` rider or default_request_deadline_ms.
    int64_t deadline_unix_ms = 0;
    /// Expensive admission class (ask/tell/step/drive/...).
    bool expensive = false;
    /// Tenant at admission time, for fair-share release.
    std::string tenant;
  };

  /// Per-connection state. Owned jointly by the event loop (poll set)
  /// and any in-flight handler via shared_ptr; the destructor closes
  /// the fd, so a handler can never write into a recycled descriptor.
  struct Conn {
    explicit Conn(int fd, size_t max_payload)
        : fd(fd), decoder(max_payload) {}
    ~Conn();
    const int fd;
    /// Fed and drained by the event loop only.
    FrameDecoder decoder;
    Mutex mu;
    /// Tenant declared by kHello; "" until then. Written by the kHello
    /// handler, read by later handlers and by the event loop's
    /// admission classifier, so it lives under mu.
    std::string tenant GUARDED_BY(mu);
    /// Queued requests + the one-in-flight flag.
    std::deque<PendingRequest> inbox GUARDED_BY(mu);
    bool busy GUARDED_BY(mu) = false;
    /// Serializes whole-frame writes so replies never interleave.
    Mutex write_mu;
    std::atomic<bool> closed{false};
  };
  using ConnPtr = std::shared_ptr<Conn>;

  /// Server-side record of a wire-created session (what the service
  /// itself doesn't know: the serializable spec, the owning tenant,
  /// the rebuilt ConfigSpace for space sources, the drive flag).
  struct SessionMeta {
    WireSessionSpec spec;
    std::string tenant;
    std::unique_ptr<ConfigSpace> owned_space;
    std::atomic<bool> driving{false};
    /// Per-session trial WAL (open only when autosave_dir is set).
    service::TrialWal wal;
    /// Serializes each (service call + WAL append) pair so WAL record
    /// order always matches the session's commit order. Taken before
    /// the service's per-session mutex; never the other way around.
    Mutex op_mu;
  };
  using MetaPtr = std::shared_ptr<SessionMeta>;

  void EventLoop();
  void HandleReadable(const ConnPtr& conn);
  /// Admission control for one decoded frame: classify cost, apply
  /// drain/overload/fair-share shedding, stamp the deadline, and queue
  /// it (or answer the typed rejection inline). Runs on the loop.
  void AdmitFrame(const ConnPtr& conn, Frame frame);
  /// Starts the next queued request if none is in flight (takes
  /// conn->mu).
  void Dispatch(const ConnPtr& conn);
  /// Runs on the pool: answers one request, then re-dispatches.
  void RunHandler(const ConnPtr& conn, PendingRequest request);
  std::string HandleRequest(const ConnPtr& conn, const Frame& frame);
  void WriteFrame(const ConnPtr& conn, MessageKind kind,
                  const std::string& payload);
  std::string ErrorReplyFrame(const Status& status) const;

  /// Request handlers (pool threads).
  std::string HandleCreateOrResume(const ConnPtr& conn, const Frame& frame);
  std::string HandleResumeSaved(const ConnPtr& conn, const std::string& name);
  std::string HandleStartDrive(const std::string& name);
  std::string HandleClose(const std::string& name);
  void DriveStep(const std::string& name, MetaPtr meta);

  /// Converts a wire spec into a live SessionSpec (resolving the
  /// workload name or rebuilding the knob space into *owned_space).
  static Status BuildSessionSpec(const WireSessionSpec& wire,
                                 std::unique_ptr<ConfigSpace>* owned_space,
                                 service::SessionSpec* out);

  /// Quota bookkeeping (meta_mu_).
  Status ReserveTenantSlot(const std::string& tenant) EXCLUDES(meta_mu_);
  void ReleaseTenantSlot(const std::string& tenant) EXCLUDES(meta_mu_);

  /// \name WAL-aware session operations
  ///
  /// Each successful mutation on a wire-created session appends one
  /// record to its WAL under meta->op_mu, keeping the log a faithful
  /// prefix of the session's committed history. Sessions without an
  /// open WAL (in-process, or autosave disabled) fall straight through
  /// to the service.
  /// @{
  MetaPtr FindMeta(const std::string& name) const EXCLUDES(meta_mu_);
  Result<Trial> DoAsk(const std::string& name);
  Result<std::vector<Trial>> DoAskBatch(const std::string& name, int n);
  Status DoTell(const std::string& name, const TrialResult& result);
  Status DoTellBatch(const std::string& name,
                     const std::vector<TrialResult>& results);
  Status DoStep(const std::string& name, bool* progressed);
  /// Expires overdue trials on every wire session with a deadline and
  /// WAL-logs each expiry.
  void ExpireSweep();
  /// Replays the WAL tail on top of a freshly resumed session (see
  /// docs/resilience.md for the cursor rules).
  Status ReplayWal(const std::string& name);
  /// @}

  /// Core of kResumeSaved and the hot-restart sweep: loads the
  /// autosave (spec line + tenant token + checkpoint), resumes the
  /// session, replays the WAL tail, registers the meta. The wire path
  /// passes the connection's tenant; the startup sweep passes nullptr
  /// to adopt the tenant recorded in the file.
  Status ResumeSavedSession(const std::string& name,
                            const std::string* tenant_override);
  /// Revives every *.autosave in autosave_dir (hot restart). Sessions
  /// already live are skipped; names are processed in sorted order so
  /// the sweep is deterministic.
  void ResumeSavedStartupSweep();

  std::string AutosavePath(const std::string& name) const;
  std::string WalPath(const std::string& name) const;
  Status AutosaveSession(const std::string& name, const MetaPtr& meta);
  void AutosaveSweep();
  void EvictionSweep();

  void TaskStarted() EXCLUDES(tasks_mu_);
  void TaskFinished() EXCLUDES(tasks_mu_);
  int ActiveTasks() EXCLUDES(tasks_mu_);

  /// Expensive-class admission budget.
  int ExpensiveCap() const;
  /// Next decorrelated retry-after hint (shed_mu_): uniform in
  /// [shed_retry_base_ms, 3 * previous], capped at shed_retry_max_ms —
  /// the server-side mirror of the client's decorrelated-jitter
  /// backoff, so synchronized retry storms spread out.
  int64_t NextShedHintMs() EXCLUDES(shed_mu_);
  /// Hint for drain-time ShuttingDown replies: come back once the
  /// drain window has passed.
  int64_t DrainRetryHintMs(int64_t now_unix_ms) const;
  /// Encoded kError frame for a shed request.
  std::string OverloadedReplyFrame(const std::string& why);

  TuningServerOptions options_;
  service::TuningService service_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;
  /// The poll event loop owns a dedicated thread: its poll() blocks,
  /// so it must never run on (or starve) the shared worker pool.
  std::thread loop_;  // lint:allow(raw-thread)

  /// Lifecycle state machine: Running → Draining → Stopped, one-way
  /// per incarnation (Start resets a Stopped server to Running).
  std::atomic<int> lifecycle_{static_cast<int>(ServerLifecycle::kStopped)};
  /// Forced-teardown flag, set by Stop() after the loop exits: stops
  /// drive-step requeueing and makes still-queued handlers answer
  /// ShuttingDown instead of doing work.
  std::atomic<bool> hard_stop_{false};
  /// Exactly one Stop() caller performs the teardown; losers wait on
  /// lifecycle_cv_ until the lifecycle reaches Stopped.
  std::atomic<bool> teardown_claimed_{false};
  Mutex lifecycle_mu_;
  CondVar lifecycle_cv_;
  /// Absolute deadline of the current drain (valid while Draining).
  std::atomic<int64_t> drain_deadline_unix_ms_{0};

  /// fd -> connection, owned by the event loop (loop thread only after
  /// Start, so unguarded there; Stop joins the loop before clearing).
  std::map<int, ConnPtr> conns_;

  /// Wire-created sessions + per-tenant counts.
  mutable Mutex meta_mu_;
  std::map<std::string, MetaPtr> metas_ GUARDED_BY(meta_mu_);
  std::map<std::string, int> tenant_sessions_ GUARDED_BY(meta_mu_);
  /// Expensive requests currently admitted per tenant (fair shares).
  std::map<std::string, int> tenant_inflight_ GUARDED_BY(meta_mu_);

  /// One sweep at a time (loop timer vs RunMaintenance).
  Mutex maintenance_mu_;

  /// Admitted-but-unanswered requests, for backpressure.
  std::atomic<int> pending_requests_{0};
  /// The expensive-class subset of pending_requests_.
  std::atomic<int> pending_expensive_{0};
  /// In-flight pool tasks (handlers + drive steps), drained by Stop.
  Mutex tasks_mu_;
  CondVar tasks_cv_;
  int active_tasks_ GUARDED_BY(tasks_mu_) = 0;

  /// Decorrelated retry-after hint state.
  Mutex shed_mu_;
  uint64_t shed_rng_ GUARDED_BY(shed_mu_) = 0x5eedf00dcafe1234ULL;
  int64_t shed_prev_hint_ GUARDED_BY(shed_mu_) = 0;

  std::atomic<int64_t> busy_rejections_{0};
  std::atomic<int64_t> sessions_evicted_{0};
  std::atomic<int64_t> autosaves_written_{0};
  std::atomic<int64_t> shed_overload_{0};
  std::atomic<int64_t> shed_deadline_{0};
  std::atomic<int64_t> sessions_restored_{0};
};

}  // namespace net
}  // namespace llamatune
