#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/trial.h"
#include "src/net/frame.h"
#include "src/net/message.h"

namespace llamatune {
namespace net {

/// \brief Retry schedule for transient failures: exponential backoff
/// with decorrelated jitter (each sleep is drawn uniformly from
/// [initial_backoff, 3 * previous_sleep], capped), bounded both by an
/// attempt count and by a total-sleep budget.
struct RetryPolicy {
  /// Total tries per call, the first included; 1 disables retry (the
  /// default — every failure surfaces immediately, as the pre-retry
  /// client behaved).
  int max_attempts = 1;
  /// First sleep and the lower bound of every jittered draw.
  int64_t initial_backoff_ms = 10;
  /// Upper cap on any single sleep.
  int64_t max_backoff_ms = 2000;
  /// Cap on the summed sleep across one call's retries; 0 = only
  /// max_attempts bounds the loop.
  int64_t retry_budget_ms = 10000;
  /// Seeds the jitter stream, so tests can pin retry timing.
  uint64_t jitter_seed = 1;
};

/// \brief Connection and deadline knobs for TuningClient.
struct TuningClientOptions {
  /// Bound on establishing one TCP connection (getaddrinfo itself is
  /// not bounded — use numeric addresses where that matters); 0 waits
  /// forever.
  int64_t connect_timeout_ms = 5000;
  /// Per-attempt bound covering send + reply; 0 waits forever. A
  /// timed-out attempt abandons the connection (its reply would
  /// desynchronize the stream) and counts as retryable.
  int64_t call_timeout_ms = 0;
  /// Server-side deadline attached to every request (the ` ddl N`
  /// payload rider): the server sheds a request still queued after
  /// this many milliseconds with kOverloaded instead of doing work
  /// nobody is waiting for. 0 sends no rider. Relative to server
  /// receipt, so each retry attempt gets a fresh window.
  int64_t request_deadline_ms = 0;
  RetryPolicy retry;
};

/// \brief Blocking client for a TuningServer: the remote face of
/// TuningService, one method per request kind.
///
/// The client owns one TCP connection, sends one frame per call and
/// blocks until the matching reply arrives (kError replies come back
/// as the typed Status they encode, so remote error handling reads
/// exactly like in-process error handling). It is not thread-safe;
/// use one client per thread or serialize calls externally.
///
/// With retry enabled (RetryPolicy::max_attempts > 1) the client is
/// *resilient*: transient failures — connection resets, Busy
/// backpressure, call deadlines — are retried with backoff after
/// reconnecting (and re-sending Hello). Retries are made safe against
/// lost replies:
///
///  * a retried Tell whose first attempt actually committed is
///    answered AlreadyExists by the server and deduplicated back to
///    OK here (same for TellBatch, per result);
///  * a retried Ask first checks GetPending and *adopts* the trial
///    the lost reply carried instead of drawing a fresh suggestion,
///    so the optimizer's deterministic sequence is not perturbed;
///  * a retried CreateSession/Resume/ResumeSaved treats
///    SessionAlreadyExists as success.
///
/// Close is the one non-idempotent call left: a retried Close whose
/// first attempt won may answer SessionNotFound.
class TuningClient {
 public:
  explicit TuningClient(TuningClientOptions options = TuningClientOptions())
      : options_(options) {}
  ~TuningClient();
  TuningClient(const TuningClient&) = delete;
  TuningClient& operator=(const TuningClient&) = delete;

  /// Connects to `host:port`. `host` is resolved through getaddrinfo,
  /// so hostnames ("localhost") work alongside numeric IPv4/IPv6
  /// addresses; candidates are tried in resolver order, each bounded
  /// by options().connect_timeout_ms.
  Status Connect(const std::string& host, uint16_t port);
  void Disconnect();
  bool connected() const { return fd_ >= 0; }

  const TuningClientOptions& options() const { return options_; }

  /// Declares this connection's tenant for quota accounting. Optional;
  /// connections that never say hello share the "" tenant. Remembered
  /// and replayed automatically after a retry reconnect.
  Status Hello(const std::string& tenant);

  Status CreateSession(const std::string& name, const WireSessionSpec& spec);
  Status Resume(const std::string& name, const WireSessionSpec& spec,
                const std::string& checkpoint);
  /// Resumes from the server-side autosave of `name` (see
  /// TuningServerOptions::autosave_dir).
  Status ResumeSaved(const std::string& name);

  Result<Trial> Ask(const std::string& name);
  Result<std::vector<Trial>> AskBatch(const std::string& name, int n);
  Status Tell(const std::string& name, const TrialResult& result);
  Status TellBatch(const std::string& name,
                   const std::vector<TrialResult>& results);

  /// The session's pending (asked, untold) trials; optionally also the
  /// id its next Ask will assign. This is the adoption primitive the
  /// resilient Ask path uses — exposed for callers running their own
  /// recovery.
  Result<std::vector<Trial>> GetPending(const std::string& name,
                                        int64_t* next_trial_id = nullptr);

  Status Step(const std::string& name, bool* progressed = nullptr);
  /// Asks the server to drive the session to completion in the
  /// background; returns as soon as the drive is registered. Poll
  /// GetStatus() for progress (WireSessionStatus::driving).
  Status StartDrive(const std::string& name);

  Result<WireSessionStatus> GetStatus(const std::string& name);
  Result<std::vector<WireSessionStatus>> ListSessions();
  Result<std::string> Checkpoint(const std::string& name);
  Result<WireCloseResult> Close(const std::string& name);

  Status Ping();

  /// Asks the server to begin a graceful drain (lifecycle →
  /// Draining): it stops accepting connections, finishes in-flight
  /// work, autosaves every session and exits its event loop. Returns
  /// as soon as the drain is registered; poll HealthCheck() — or just
  /// watch the connection close — to see it complete.
  Status Drain();

  /// Cheap liveness probe: lifecycle state, admitted-request queue
  /// depth and live session count. Served even while draining.
  Result<WireServerHealth> HealthCheck();

  /// Full operational counters snapshot (docs/resilience.md).
  Result<WireServerStats> ServerStats();

  /// kOverloaded / kShuttingDown replies whose retry-after hint this
  /// client honored instead of its own jittered backoff. Monotonic;
  /// lets callers (and the overload bench) see shedding cooperation.
  int64_t retry_hints_seen() const { return retry_hints_seen_; }

 private:
  /// Tracks one call's retry loop: attempt count, summed sleep, and
  /// the decorrelated-jitter state.
  struct RetryState {
    int attempt = 0;
    int64_t slept_ms = 0;
    int64_t prev_sleep_ms = 0;
  };

  /// One dial attempt over every resolved address (used by Connect and
  /// by retry reconnects).
  Status ConnectInternal();
  /// Reconnects (and replays Hello) when a previous failure dropped
  /// the connection.
  Status EnsureConnected();
  /// True (after sleeping) when the policy allows another attempt.
  bool BackoffAndRetry(RetryState* state);

  /// Sends one request frame and blocks for one reply frame, bounded
  /// by call_timeout_ms. Transport-level failures (reset, deadline,
  /// injected faults) come back as kUnavailable with the connection
  /// dropped; a kError reply is decoded into its typed Status; a reply
  /// of any kind other than `expected` is an Internal error (protocol
  /// violation).
  Result<Frame> CallOnce(MessageKind kind, const std::string& payload,
                         MessageKind expected);
  /// CallOnce under the retry policy. `*retried` (optional) reports
  /// whether any attempt beyond the first ran — the dedup paths only
  /// forgive AlreadyExists when a lost reply makes it ambiguous.
  Result<Frame> Call(MessageKind kind, const std::string& payload,
                     MessageKind expected, bool* retried = nullptr);
  Status WriteAll(const std::string& bytes, int64_t deadline_ms);

  TuningClientOptions options_;
  int fd_ = -1;
  FrameDecoder decoder_;

  /// Remembered endpoint + tenant for retry reconnects.
  std::string host_;
  uint16_t port_ = 0;
  bool have_endpoint_ = false;
  std::string tenant_;
  bool hello_done_ = false;

  /// Highest trial id seen per session — the adoption watermark: a
  /// pending trial above it was drawn by an ask whose reply we lost.
  std::map<std::string, int64_t> last_seen_trial_;

  uint64_t jitter_state_ = 0;

  /// Retry-after hint from the most recent kError reply (0 = none);
  /// consumed by the next BackoffAndRetry in place of the jittered
  /// draw, then cleared.
  int64_t pending_retry_hint_ms_ = 0;
  int64_t retry_hints_seen_ = 0;
};

}  // namespace net
}  // namespace llamatune
