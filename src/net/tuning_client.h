#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/trial.h"
#include "src/net/frame.h"
#include "src/net/message.h"

namespace llamatune {
namespace net {

/// \brief Blocking client for a TuningServer: the remote face of
/// TuningService, one method per request kind.
///
/// The client is deliberately thin — it owns one TCP connection, sends
/// one frame per call and blocks until the matching reply arrives
/// (kError replies come back as the typed Status they encode, so
/// remote error handling reads exactly like in-process error
/// handling). It is not thread-safe; use one client per thread or
/// serialize calls externally.
class TuningClient {
 public:
  TuningClient() = default;
  ~TuningClient();
  TuningClient(const TuningClient&) = delete;
  TuningClient& operator=(const TuningClient&) = delete;

  /// Connects to `host:port`. `host` must be a numeric IPv4 address
  /// (the server binds "127.0.0.1" by default).
  Status Connect(const std::string& host, uint16_t port);
  void Disconnect();
  bool connected() const { return fd_ >= 0; }

  /// Declares this connection's tenant for quota accounting. Optional;
  /// connections that never say hello share the "" tenant.
  Status Hello(const std::string& tenant);

  Status CreateSession(const std::string& name, const WireSessionSpec& spec);
  Status Resume(const std::string& name, const WireSessionSpec& spec,
                const std::string& checkpoint);
  /// Resumes from the server-side autosave of `name` (see
  /// TuningServerOptions::autosave_dir).
  Status ResumeSaved(const std::string& name);

  Result<Trial> Ask(const std::string& name);
  Result<std::vector<Trial>> AskBatch(const std::string& name, int n);
  Status Tell(const std::string& name, const TrialResult& result);
  Status TellBatch(const std::string& name,
                   const std::vector<TrialResult>& results);

  Status Step(const std::string& name, bool* progressed = nullptr);
  /// Asks the server to drive the session to completion in the
  /// background; returns as soon as the drive is registered. Poll
  /// GetStatus() for progress (WireSessionStatus::driving).
  Status StartDrive(const std::string& name);

  Result<WireSessionStatus> GetStatus(const std::string& name);
  Result<std::vector<WireSessionStatus>> ListSessions();
  Result<std::string> Checkpoint(const std::string& name);
  Result<WireCloseResult> Close(const std::string& name);

  Status Ping();

 private:
  /// Sends one request frame, blocks for one reply frame. A kError
  /// reply is decoded into its typed Status; a reply of any kind other
  /// than `expected` is an Internal error (protocol violation).
  Result<Frame> Call(MessageKind kind, const std::string& payload,
                     MessageKind expected);
  Status WriteAll(const std::string& bytes);

  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace net
}  // namespace llamatune
