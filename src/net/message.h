#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/trial.h"
#include "src/knobs/knob.h"
#include "src/net/frame.h"
#include "src/service/tuning_service.h"

namespace llamatune {
namespace net {

/// \brief Typed error codes carried by kError replies
/// (docs/wire-protocol.md lists the full table).
///
/// Values are part of the protocol: never renumber, only append. The
/// codes mirror StatusCode where one exists — WireErrorFromStatus /
/// StatusFromWireError round-trip losslessly — plus the wire-only
/// conditions (malformed payloads, garbage kinds, framing faults).
enum class WireError : uint8_t {
  kMalformed = 1,    ///< frame was sound but the payload didn't parse
  kUnknownKind = 2,  ///< well-framed request with an unassigned kind byte
  kBadFrame = 3,     ///< framing fault; sent once, then the conn closes
  kBusy = 4,         ///< admission queue full — retry later
  kQuotaExceeded = 5,  ///< per-tenant session quota hit
  kSessionNotFound = 6,
  kSessionAlreadyExists = 7,
  kInvalidArgument = 8,
  kOutOfRange = 9,
  kNotFound = 10,
  kAlreadyExists = 11,
  kFailedPrecondition = 12,
  kInternal = 13,
  kNotImplemented = 14,
  kShuttingDown = 15,   ///< server is stopping; connection will close
  kTrialExpired = 16,   ///< tell for a pending trial whose deadline passed
  kOverloaded = 17,     ///< request shed under load; retry after the hint
};

WireError WireErrorFromStatus(const Status& status);

/// Rebuilds a Status from a kError reply (the client's view).
Status StatusFromWireError(WireError code, std::string message);

/// \brief A SessionSpec that can cross the wire. Exactly one source:
/// a workload *name* (resolved server-side via dbsim::WorkloadByName)
/// or a serialized knob space (the server owns the rebuilt ConfigSpace
/// for the session's lifetime). Pointer-based sources (external
/// ObjectiveFunction) and per-session simulator/early-stopping options
/// cannot cross a process boundary and stay API-only.
struct WireSessionSpec {
  /// Workload source ("YCSB-A", "TPC-C", ...); empty for space specs.
  std::string workload;
  /// Space source: the external DBMS's knob list (KnobSpec.description
  /// is not sent — it is cosmetic and can be large).
  std::vector<KnobSpec> space_knobs;
  /// Objective convention for space sources (false = latency-style).
  bool maximize = true;

  std::string optimizer_key = "smac";
  std::string adapter_key = "llamatune";
  uint64_t seed = 42;
  int num_iterations = 100;
  int batch_size = 1;
  int num_threads = 0;
  /// Deadline for pending (asked, untold) trials in milliseconds; 0
  /// disables (see service::SessionSpec::pending_deadline_ms). Added
  /// in spec section v2; v1 payloads decode with 0.
  int64_t pending_deadline_ms = 0;
  /// Racing (successive-halving) evaluation. Added in spec section
  /// v3; v1/v2 payloads decode with racing off, so pre-racing peers
  /// and autosave files keep their fixed-fidelity behavior. The
  /// parameter fields mirror core::RacingOptions.
  bool racing = false;
  int racing_cohort = 8;
  int racing_rungs = 3;
  double racing_min_fidelity = 0.25;
  double racing_eta = 2.0;
  double racing_ci_z = 1.96;
};

/// \brief Server lifecycle state machine (docs/resilience.md).
///
/// Running → Draining → Stopped, one-way. Draining servers refuse new
/// connections and answer expensive requests with kShuttingDown while
/// in-flight handlers and background drives run to completion, then
/// autosave every session and stop. Values travel in kHealthReply /
/// kStatsReply payloads: never renumber, only append.
enum class ServerLifecycle : int {
  kRunning = 0,
  kDraining = 1,
  kStopped = 2,
};

/// \brief kHealthReply payload: the cheap liveness probe.
struct WireServerHealth {
  ServerLifecycle lifecycle = ServerLifecycle::kRunning;
  int64_t pending_requests = 0;  ///< admitted-but-unfinished requests
  int64_t sessions = 0;          ///< live sessions
};

/// \brief kStatsReply payload: full operational counters snapshot.
///
/// Monotonic counters reset only on server restart; gauges (pending_*,
/// sessions) are instantaneous. Fields are append-only on the wire.
struct WireServerStats {
  ServerLifecycle lifecycle = ServerLifecycle::kRunning;
  int64_t pending_requests = 0;   ///< gauge: admitted, unfinished
  int64_t pending_expensive = 0;  ///< gauge: expensive class in flight
  int64_t sessions = 0;           ///< gauge: live sessions
  int64_t busy_rejections = 0;    ///< kBusy answers (queue full, cheap)
  int64_t shed_overload = 0;      ///< kOverloaded answers at admission
  int64_t shed_deadline = 0;      ///< requests dead on arrival at dispatch
  int64_t sessions_evicted = 0;   ///< idle-eviction autosave+close count
  int64_t autosaves_written = 0;  ///< durable autosave files written
  int64_t sessions_restored = 0;  ///< sessions revived by the startup sweep
  /// Live session count per tenant, sorted by tenant name so the
  /// encoding is deterministic.
  std::vector<std::pair<std::string, int64_t>> tenant_sessions;
};

/// \brief SessionStatus plus the server-side overlay.
struct WireSessionStatus {
  service::SessionStatus status;
  /// True while a background drive (kStartDrive) is running.
  bool driving = false;
};

/// \brief Final scalars returned by kClosedReply (the full
/// SessionResult knowledge base stays server-side; fetch a checkpoint
/// before closing if you need the trajectory).
struct WireCloseResult {
  int iterations_run = 0;
  double best_performance = 0.0;
  double default_performance = 0.0;
};

/// \name Payload codecs
///
/// Payloads are single-line whitespace-delimited token streams in the
/// style of the checkpoint format: doubles as bit-pattern hex
/// (serde.h), strings as 'x'-prefixed hex so empty strings survive
/// tokenization, nested structures (trials, results, checkpoints) as
/// one hex token of their own serialized form. Every decoder is total:
/// any byte sequence returns a Status, never crashes (fuzz-pinned by
/// tests/net_test.cc).
/// @{

std::string EncodeHello(const std::string& tenant);
Result<std::string> DecodeHello(const std::string& payload);

std::string EncodeSessionSpec(const WireSessionSpec& spec);
Result<WireSessionSpec> DecodeSessionSpec(const std::string& payload);

std::string EncodeCreateSession(const std::string& name,
                                const WireSessionSpec& spec);
Status DecodeCreateSession(const std::string& payload, std::string* name,
                           WireSessionSpec* spec);

std::string EncodeResume(const std::string& name, const WireSessionSpec& spec,
                         const std::string& checkpoint);
Status DecodeResume(const std::string& payload, std::string* name,
                    WireSessionSpec* spec, std::string* checkpoint);

/// kResumeSaved, kAsk, kStep, kStartDrive, kGetStatus, kCheckpoint and
/// kClose all carry just a session name.
std::string EncodeNameOnly(const std::string& name);
Result<std::string> DecodeNameOnly(const std::string& payload);

std::string EncodeAskBatch(const std::string& name, int n);
Status DecodeAskBatch(const std::string& payload, std::string* name, int* n);

std::string EncodeTell(const std::string& name, const TrialResult& result);
Status DecodeTell(const std::string& payload, std::string* name,
                  TrialResult* result);

std::string EncodeTellBatch(const std::string& name,
                            const std::vector<TrialResult>& results);
Status DecodeTellBatch(const std::string& payload, std::string* name,
                       std::vector<TrialResult>* results);

/// A kError payload is `error <code> <message>` plus, when
/// retry_after_ms > 0, an optional trailing ` retryms N` token — the
/// server's decorrelated retry-after hint on kOverloaded /
/// kShuttingDown replies. Decoders that stop after the required
/// fields (all pre-hint peers) ignore it, per the append-only
/// versioning rule.
std::string EncodeError(WireError code, const std::string& message,
                        int64_t retry_after_ms = 0);
Status DecodeError(const std::string& payload, WireError* code,
                   std::string* message, int64_t* retry_after_ms = nullptr);

std::string EncodeTrialReply(const Trial& trial);
Result<Trial> DecodeTrialReply(const std::string& payload);

std::string EncodeTrialsReply(const std::vector<Trial>& trials);
Result<std::vector<Trial>> DecodeTrialsReply(const std::string& payload);

std::string EncodeSteppedReply(bool progressed);
Result<bool> DecodeSteppedReply(const std::string& payload);

std::string EncodeStatusReply(const WireSessionStatus& status);
Result<WireSessionStatus> DecodeStatusReply(const std::string& payload);

std::string EncodeStatusListReply(const std::vector<WireSessionStatus>& list);
Result<std::vector<WireSessionStatus>> DecodeStatusListReply(
    const std::string& payload);

std::string EncodeCheckpointReply(const std::string& checkpoint);
Result<std::string> DecodeCheckpointReply(const std::string& payload);

std::string EncodeClosedReply(const WireCloseResult& result);
Result<WireCloseResult> DecodeClosedReply(const std::string& payload);

/// kPendingReply: the session's next trial id (the client's dedup
/// cursor — every id below it has already been drawn) plus the pending
/// trials themselves. The kGetPending request is EncodeNameOnly.
std::string EncodePendingReply(int64_t next_trial_id,
                               const std::vector<Trial>& trials);
Status DecodePendingReply(const std::string& payload, int64_t* next_trial_id,
                          std::vector<Trial>* trials);

std::string EncodeHealthReply(const WireServerHealth& health);
Result<WireServerHealth> DecodeHealthReply(const std::string& payload);

std::string EncodeStatsReply(const WireServerStats& stats);
Result<WireServerStats> DecodeStatsReply(const std::string& payload);

/// \name Per-request deadline rider
///
/// Any request payload may carry an optional trailing ` ddl N` token —
/// the caller's deadline for this request in milliseconds from server
/// receipt. Every request decoder stops after its required fields, so
/// the rider is invisible to handlers; the server's admission layer
/// strips it with DeadlineRiderMs before dispatch and sheds requests
/// that are dead on arrival with kOverloaded instead of doing the
/// work.
/// @{

/// Appends ` ddl N` to a request payload (no-op when deadline_ms <= 0).
void AppendDeadlineRider(std::string* payload, int64_t deadline_ms);

/// Returns the rider's deadline in ms, or 0 when the payload carries
/// none. Total: never fails on garbage, just returns 0.
int64_t DeadlineRiderMs(const std::string& payload);

/// @}

/// @}

}  // namespace net
}  // namespace llamatune
