#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "src/common/status.h"

namespace llamatune {
namespace net {

/// \brief Every request and reply on the wire (docs/wire-protocol.md).
///
/// Values are part of the protocol: never renumber, only append.
/// Requests live below 64, replies at 64 and above. A frame whose kind
/// byte maps to no enumerator is *well-framed garbage* — the decoder
/// hands it up (framing survives) and the server answers with a typed
/// kUnknownKind error instead of dropping the connection.
enum class MessageKind : uint8_t {
  // --- Requests.
  kHello = 1,          ///< declare tenant identity for this connection
  kCreateSession = 2,  ///< name + wire spec
  kResume = 3,         ///< name + wire spec + checkpoint text
  kResumeSaved = 4,    ///< name only; server loads its autosave file
  kAsk = 5,
  kAskBatch = 6,
  kTell = 7,
  kTellBatch = 8,
  kStep = 9,
  kStartDrive = 10,  ///< background drive-to-completion (returns at once)
  kGetStatus = 11,
  kListSessions = 12,
  kCheckpoint = 13,
  kClose = 14,
  kPing = 15,
  kGetPending = 16,  ///< pending trials of a session (retry adoption)
  kDrain = 17,       ///< begin graceful drain; server stops accepting work
  kHealthCheck = 18,  ///< cheap liveness probe (lifecycle + queue depth)
  kServerStats = 19,  ///< full operational counters snapshot

  // --- Replies.
  kOk = 64,            ///< empty success (create/resume/tell/drive/hello)
  kError = 65,         ///< WireError code + message
  kTrialReply = 66,    ///< one serialized Trial
  kTrialsReply = 67,   ///< n serialized Trials
  kSteppedReply = 68,  ///< progressed flag
  kStatusReply = 69,   ///< one wire SessionStatus
  kStatusListReply = 70,
  kCheckpointReply = 71,  ///< checkpoint text
  kClosedReply = 72,      ///< final result scalars
  kPongReply = 73,
  kPendingReply = 74,  ///< next trial id + n serialized pending Trials
  kHealthReply = 75,   ///< lifecycle state + queue depth + session count
  kStatsReply = 76,    ///< full WireServerStats snapshot
};

/// First byte on the wire; a connection speaking anything else is not
/// this protocol and is dropped after a typed error.
constexpr uint8_t kFrameMagic = 0xA7;

/// Bumped only for incompatible frame/payload changes; a frame
/// carrying a different version is a framing fault — the server
/// answers kBadFrame and hangs up (the versioning rule in
/// docs/wire-protocol.md).
constexpr uint8_t kProtocolVersion = 1;

/// Frame header: magic, version, kind, reserved, then the payload
/// length as 4 little-endian bytes.
constexpr size_t kFrameHeaderBytes = 8;

/// Default cap on a single frame's payload. Large enough for any
/// realistic checkpoint, small enough that a hostile length field
/// cannot make the server allocate unbounded memory.
constexpr size_t kDefaultMaxFramePayload = 16u << 20;

/// \brief One decoded frame: the kind byte (possibly an unknown value
/// — see MessageKind) and the raw payload bytes.
struct Frame {
  MessageKind kind = MessageKind::kPing;
  std::string payload;
};

/// Encodes a complete frame (header + payload), ready to write.
std::string EncodeFrame(MessageKind kind, const std::string& payload);

/// \brief Incremental frame parser for a byte stream.
///
/// Feed() arbitrary chunks as they arrive off a socket — single bytes,
/// half a header, three frames at once — and drain complete frames
/// with Next(). Framing errors (bad magic, version mismatch, payload
/// over the cap) are *sticky*: once the stream desynchronizes there is
/// no way to find the next frame boundary, so every later Next()
/// returns the same error and the connection must be torn down.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload = kDefaultMaxFramePayload)
      : max_payload_(max_payload) {}

  /// Appends raw bytes from the stream.
  void Feed(const char* data, size_t n);

  /// Returns the next complete frame, std::nullopt when more bytes are
  /// needed, or the (sticky) framing error.
  Result<std::optional<Frame>> Next();

  /// Bytes buffered but not yet consumed by a complete frame.
  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  size_t max_payload_;
  std::string buffer_;
  Status error_;  // sticky framing error
};

}  // namespace net
}  // namespace llamatune
