#include "src/net/tuning_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "src/common/serde.h"
#include "src/common/thread_pool.h"
#include "src/dbsim/workloads.h"

namespace llamatune {
namespace net {

namespace {

/// Writes all of [data, data+n) to a non-blocking socket, waiting for
/// writability when the send buffer fills. Returns false on error or
/// on a peer that stays unwritable for 5s (a stalled reader must not
/// wedge the server forever).
bool SendAll(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t rc = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (rc >= 0) {
      off += static_cast<size_t>(rc);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      pollfd p;
      p.fd = fd;
      p.events = POLLOUT;
      p.revents = 0;
      if (::poll(&p, 1, 5000) <= 0) return false;
      continue;
    }
    return false;
  }
  return true;
}

std::string MalformedReplyFrame(const Status& status) {
  return EncodeFrame(MessageKind::kError,
                     EncodeError(WireError::kMalformed, status.message()));
}

}  // namespace

TuningServer::Conn::~Conn() { ::close(fd); }

TuningServer::TuningServer(TuningServerOptions options)
    : options_(std::move(options)) {}

TuningServer::~TuningServer() { Stop(); }

Status TuningServer::Start() {
  if (running_.load()) {
    return Status::FailedPrecondition("server: already running");
  }
  if (!options_.autosave_dir.empty()) {
    ::mkdir(options_.autosave_dir.c_str(), 0755);
    struct stat sb;
    if (::stat(options_.autosave_dir.c_str(), &sb) != 0 ||
        !S_ISDIR(sb.st_mode)) {
      return Status::InvalidArgument("server: autosave dir '" +
                                     options_.autosave_dir +
                                     "' is not a usable directory");
    }
  }

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("server: bad IPv4 address '" +
                                   options_.host + "'");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    return Status::Internal(std::string("server: socket(): ") +
                            std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::Internal(
        "server: bind(" + options_.host + ":" +
        std::to_string(options_.port) + "): " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    Status status = Status::Internal(std::string("server: getsockname(): ") +
                                     std::strerror(errno));
    ::close(fd);
    return status;
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(fd, 128) != 0) {
    Status status = Status::Internal(std::string("server: listen(): ") +
                                     std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::pipe2(wake_pipe_, O_NONBLOCK) != 0) {
    Status status = Status::Internal(std::string("server: pipe2(): ") +
                                     std::strerror(errno));
    ::close(fd);
    return status;
  }

  listen_fd_ = fd;
  stopping_.store(false);
  running_.store(true);
  loop_ = std::thread(&TuningServer::EventLoop, this);
  return Status::OK();
}

void TuningServer::Stop() {
  if (!running_.load()) return;
  stopping_.store(true);
  char byte = 'x';
  ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
  (void)ignored;
  loop_.join();
  {
    std::unique_lock<std::mutex> lock(tasks_mu_);
    tasks_cv_.wait(lock, [this] { return active_tasks_ == 0; });
  }
  if (!options_.autosave_dir.empty()) {
    std::lock_guard<std::mutex> lock(maintenance_mu_);
    AutosaveSweep();
  }
  conns_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
  running_.store(false);
}

void TuningServer::EventLoop() {
  const int64_t autosave_period = options_.autosave_interval_ms;
  const int64_t evict_period =
      options_.idle_eviction_ms > 0
          ? std::max<int64_t>(options_.idle_eviction_ms / 4, 10)
          : 0;
  int64_t next_autosave = autosave_period > 0
                              ? service::NowUnixMillis() + autosave_period
                              : INT64_MAX;
  int64_t next_evict =
      evict_period > 0 ? service::NowUnixMillis() + evict_period : INT64_MAX;

  std::vector<pollfd> fds;
  while (!stopping_.load()) {
    fds.clear();
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& [fd, conn] : conns_) {
      fds.push_back({fd, POLLIN, 0});
    }

    int64_t now = service::NowUnixMillis();
    int64_t next_timer = std::min(next_autosave, next_evict);
    int timeout_ms = 1000;
    if (next_timer != INT64_MAX) {
      int64_t wait = next_timer - now;
      if (wait < 0) wait = 0;
      if (wait < timeout_ms) timeout_ms = static_cast<int>(wait);
    }
    int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
    if (stopping_.load()) break;
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }

    now = service::NowUnixMillis();
    if (now >= next_autosave) {
      std::lock_guard<std::mutex> lock(maintenance_mu_);
      AutosaveSweep();
      next_autosave = now + autosave_period;
    }
    if (now >= next_evict) {
      std::lock_guard<std::mutex> lock(maintenance_mu_);
      EvictionSweep();
      next_evict = now + evict_period;
    }
    if (rc == 0) continue;

    if (fds[0].revents & POLLIN) {
      char drain[64];
      while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
    }
    if (fds[1].revents & POLLIN) {
      for (;;) {
        int cfd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
        if (cfd < 0) break;
        conns_.emplace(
            cfd, std::make_shared<Conn>(cfd, options_.max_frame_payload));
      }
    }
    for (size_t i = 2; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      auto it = conns_.find(fds[i].fd);
      if (it == conns_.end()) continue;
      ConnPtr conn = it->second;
      bool alive = true;
      HandleReadable(conn);
      if (conn->closed.load()) alive = false;
      if (!alive) conns_.erase(it);
    }
  }
}

void TuningServer::HandleReadable(const ConnPtr& conn) {
  char buf[16384];
  for (;;) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->decoder.Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      conn->closed.store(true);
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn->closed.store(true);
    break;
  }

  for (;;) {
    Result<std::optional<Frame>> next = conn->decoder.Next();
    if (!next.ok()) {
      // Framing faults are unrecoverable (the stream has lost sync):
      // answer once with BadFrame, then drop the connection.
      WriteFrame(conn, MessageKind::kError,
                 EncodeError(WireError::kBadFrame, next.status().ToString()));
      conn->closed.store(true);
      return;
    }
    if (!next->has_value()) return;
    Frame frame = std::move(**next);

    if (pending_requests_.load() >= options_.max_pending_requests) {
      busy_rejections_.fetch_add(1);
      WriteFrame(conn, MessageKind::kError,
                 EncodeError(WireError::kBusy,
                             "server busy: pending-request queue is full"));
      continue;
    }
    pending_requests_.fetch_add(1);
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->inbox.push_back(std::move(frame));
    }
    Dispatch(conn);
  }
}

void TuningServer::Dispatch(const ConnPtr& conn) {
  Frame frame;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->busy || conn->inbox.empty()) return;
    conn->busy = true;
    frame = std::move(conn->inbox.front());
    conn->inbox.pop_front();
  }
  TaskStarted();
  ThreadPool::Global().Submit(
      [this, conn, frame = std::move(frame)]() mutable {
        RunHandler(conn, std::move(frame));
      });
}

void TuningServer::RunHandler(const ConnPtr& conn, Frame frame) {
  std::string reply = HandleRequest(conn, frame);
  {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    if (!conn->closed.load() &&
        !SendAll(conn->fd, reply.data(), reply.size())) {
      conn->closed.store(true);
    }
  }
  pending_requests_.fetch_sub(1);
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->busy = false;
  }
  Dispatch(conn);
  TaskFinished();
}

void TuningServer::WriteFrame(const ConnPtr& conn, MessageKind kind,
                              const std::string& payload) {
  std::string bytes = EncodeFrame(kind, payload);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->closed.load()) return;
  if (!SendAll(conn->fd, bytes.data(), bytes.size())) {
    conn->closed.store(true);
  }
}

std::string TuningServer::ErrorReplyFrame(const Status& status) const {
  return EncodeFrame(
      MessageKind::kError,
      EncodeError(WireErrorFromStatus(status), status.message()));
}

std::string TuningServer::HandleRequest(const ConnPtr& conn,
                                        const Frame& frame) {
  switch (frame.kind) {
    case MessageKind::kHello: {
      Result<std::string> tenant = DecodeHello(frame.payload);
      if (!tenant.ok()) return MalformedReplyFrame(tenant.status());
      conn->tenant = *tenant;
      return EncodeFrame(MessageKind::kOk, "");
    }
    case MessageKind::kCreateSession:
    case MessageKind::kResume:
      return HandleCreateOrResume(conn, frame);
    case MessageKind::kResumeSaved: {
      Result<std::string> name = DecodeNameOnly(frame.payload);
      if (!name.ok()) return MalformedReplyFrame(name.status());
      return HandleResumeSaved(conn, *name);
    }
    case MessageKind::kAsk: {
      Result<std::string> name = DecodeNameOnly(frame.payload);
      if (!name.ok()) return MalformedReplyFrame(name.status());
      Result<Trial> trial = service_.Ask(*name);
      if (!trial.ok()) return ErrorReplyFrame(trial.status());
      return EncodeFrame(MessageKind::kTrialReply, EncodeTrialReply(*trial));
    }
    case MessageKind::kAskBatch: {
      std::string name;
      int n = 0;
      Status parse = DecodeAskBatch(frame.payload, &name, &n);
      if (!parse.ok()) return MalformedReplyFrame(parse);
      Result<std::vector<Trial>> trials = service_.AskBatch(name, n);
      if (!trials.ok()) return ErrorReplyFrame(trials.status());
      return EncodeFrame(MessageKind::kTrialsReply,
                         EncodeTrialsReply(*trials));
    }
    case MessageKind::kTell: {
      std::string name;
      TrialResult result;
      Status parse = DecodeTell(frame.payload, &name, &result);
      if (!parse.ok()) return MalformedReplyFrame(parse);
      Status told = service_.Tell(name, result);
      if (!told.ok()) return ErrorReplyFrame(told);
      return EncodeFrame(MessageKind::kOk, "");
    }
    case MessageKind::kTellBatch: {
      std::string name;
      std::vector<TrialResult> results;
      Status parse = DecodeTellBatch(frame.payload, &name, &results);
      if (!parse.ok()) return MalformedReplyFrame(parse);
      Status told = service_.TellBatch(name, results);
      if (!told.ok()) return ErrorReplyFrame(told);
      return EncodeFrame(MessageKind::kOk, "");
    }
    case MessageKind::kStep: {
      Result<std::string> name = DecodeNameOnly(frame.payload);
      if (!name.ok()) return MalformedReplyFrame(name.status());
      bool progressed = false;
      Status stepped = service_.Step(*name, &progressed);
      if (!stepped.ok()) return ErrorReplyFrame(stepped);
      return EncodeFrame(MessageKind::kSteppedReply,
                         EncodeSteppedReply(progressed));
    }
    case MessageKind::kStartDrive: {
      Result<std::string> name = DecodeNameOnly(frame.payload);
      if (!name.ok()) return MalformedReplyFrame(name.status());
      return HandleStartDrive(*name);
    }
    case MessageKind::kGetStatus: {
      Result<std::string> name = DecodeNameOnly(frame.payload);
      if (!name.ok()) return MalformedReplyFrame(name.status());
      Result<service::SessionStatus> status = service_.GetStatus(*name);
      if (!status.ok()) return ErrorReplyFrame(status.status());
      WireSessionStatus wire;
      wire.status = *status;
      {
        std::lock_guard<std::mutex> lock(meta_mu_);
        auto it = metas_.find(*name);
        if (it != metas_.end()) wire.driving = it->second->driving.load();
      }
      return EncodeFrame(MessageKind::kStatusReply, EncodeStatusReply(wire));
    }
    case MessageKind::kListSessions: {
      std::vector<service::SessionStatus> statuses = service_.ListSessions();
      std::vector<WireSessionStatus> wire;
      wire.reserve(statuses.size());
      std::lock_guard<std::mutex> lock(meta_mu_);
      for (service::SessionStatus& status : statuses) {
        WireSessionStatus w;
        auto it = metas_.find(status.name);
        if (it != metas_.end()) w.driving = it->second->driving.load();
        w.status = std::move(status);
        wire.push_back(std::move(w));
      }
      return EncodeFrame(MessageKind::kStatusListReply,
                         EncodeStatusListReply(wire));
    }
    case MessageKind::kCheckpoint: {
      Result<std::string> name = DecodeNameOnly(frame.payload);
      if (!name.ok()) return MalformedReplyFrame(name.status());
      Result<std::string> checkpoint = service_.Checkpoint(*name);
      if (!checkpoint.ok()) return ErrorReplyFrame(checkpoint.status());
      return EncodeFrame(MessageKind::kCheckpointReply,
                         EncodeCheckpointReply(*checkpoint));
    }
    case MessageKind::kClose: {
      Result<std::string> name = DecodeNameOnly(frame.payload);
      if (!name.ok()) return MalformedReplyFrame(name.status());
      return HandleClose(*name);
    }
    case MessageKind::kPing:
      return EncodeFrame(MessageKind::kPongReply, frame.payload);
    default:
      return EncodeFrame(
          MessageKind::kError,
          EncodeError(WireError::kUnknownKind,
                      "unknown or non-request message kind " +
                          std::to_string(static_cast<int>(frame.kind))));
  }
}

std::string TuningServer::HandleCreateOrResume(const ConnPtr& conn,
                                               const Frame& frame) {
  std::string name, checkpoint;
  WireSessionSpec wire;
  Status parse =
      frame.kind == MessageKind::kCreateSession
          ? DecodeCreateSession(frame.payload, &name, &wire)
          : DecodeResume(frame.payload, &name, &wire, &checkpoint);
  if (!parse.ok()) return MalformedReplyFrame(parse);

  auto meta = std::make_shared<SessionMeta>();
  meta->spec = wire;
  meta->tenant = conn->tenant;
  service::SessionSpec spec;
  Status built = BuildSessionSpec(wire, &meta->owned_space, &spec);
  if (!built.ok()) return ErrorReplyFrame(built);

  Status quota = ReserveTenantSlot(meta->tenant);
  if (!quota.ok()) return ErrorReplyFrame(quota);
  Status registered = frame.kind == MessageKind::kCreateSession
                          ? service_.CreateSession(name, spec)
                          : service_.Resume(name, spec, checkpoint);
  if (!registered.ok()) {
    ReleaseTenantSlot(meta->tenant);
    return ErrorReplyFrame(registered);
  }
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    metas_[name] = std::move(meta);
  }
  return EncodeFrame(MessageKind::kOk, "");
}

std::string TuningServer::HandleResumeSaved(const ConnPtr& conn,
                                            const std::string& name) {
  if (options_.autosave_dir.empty()) {
    return ErrorReplyFrame(
        Status::FailedPrecondition("server: autosave is not configured"));
  }
  std::ifstream in(AutosavePath(name), std::ios::binary);
  if (!in) {
    return ErrorReplyFrame(
        Status::NotFound("server: no autosave for session '" + name + "'"));
  }
  std::ostringstream content;
  content << in.rdbuf();
  std::string text = content.str();
  size_t newline = text.find('\n');
  if (newline == std::string::npos) {
    return ErrorReplyFrame(
        Status::Internal("server: corrupt autosave for '" + name + "'"));
  }
  Result<WireSessionSpec> wire = DecodeSessionSpec(text.substr(0, newline));
  if (!wire.ok()) return ErrorReplyFrame(wire.status());
  std::string checkpoint = text.substr(newline + 1);

  auto meta = std::make_shared<SessionMeta>();
  meta->spec = *wire;
  meta->tenant = conn->tenant;
  service::SessionSpec spec;
  Status built = BuildSessionSpec(meta->spec, &meta->owned_space, &spec);
  if (!built.ok()) return ErrorReplyFrame(built);

  Status quota = ReserveTenantSlot(meta->tenant);
  if (!quota.ok()) return ErrorReplyFrame(quota);
  Status resumed = service_.Resume(name, spec, checkpoint);
  if (!resumed.ok()) {
    ReleaseTenantSlot(meta->tenant);
    return ErrorReplyFrame(resumed);
  }
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    metas_[name] = std::move(meta);
  }
  return EncodeFrame(MessageKind::kOk, "");
}

std::string TuningServer::HandleStartDrive(const std::string& name) {
  Result<service::SessionStatus> status = service_.GetStatus(name);
  if (!status.ok()) return ErrorReplyFrame(status.status());
  if (status->external) {
    return ErrorReplyFrame(Status::FailedPrecondition(
        "server: session '" + name +
        "' is caller-driven (space source); use Ask/Tell"));
  }
  MetaPtr meta;
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    auto it = metas_.find(name);
    if (it != metas_.end()) meta = it->second;
  }
  if (meta == nullptr) {
    // Session created in-process through service(): still driveable,
    // just invisible to autosave (no wire spec to persist).
    meta = std::make_shared<SessionMeta>();
    std::lock_guard<std::mutex> lock(meta_mu_);
    metas_.emplace(name, meta);
    meta = metas_[name];
  }
  if (meta->driving.exchange(true)) {
    return EncodeFrame(MessageKind::kOk, "");  // idempotent
  }
  TaskStarted();
  ThreadPool::Global().Submit([this, name, meta] { DriveStep(name, meta); });
  return EncodeFrame(MessageKind::kOk, "");
}

void TuningServer::DriveStep(const std::string& name, MetaPtr meta) {
  bool progressed = false;
  Status status = service_.Step(name, &progressed);
  if (stopping_.load() || !status.ok() || !progressed) {
    meta->driving.store(false);
    TaskFinished();
    return;
  }
  // Requeue one step at a time instead of looping: on a small pool
  // this interleaves fairly with request handlers and other drives.
  ThreadPool::Global().Submit([this, name, meta = std::move(meta)] {
    DriveStep(name, std::move(meta));
  });
}

std::string TuningServer::HandleClose(const std::string& name) {
  Result<SessionResult> closed = service_.Close(name);
  if (!closed.ok()) return ErrorReplyFrame(closed.status());
  MetaPtr meta;
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    auto it = metas_.find(name);
    if (it != metas_.end()) {
      meta = std::move(it->second);
      metas_.erase(it);
    }
  }
  if (meta != nullptr) {
    ReleaseTenantSlot(meta->tenant);
    if (!options_.autosave_dir.empty()) {
      ::unlink(AutosavePath(name).c_str());  // explicit close: done for good
    }
  }
  WireCloseResult result;
  result.iterations_run = closed->iterations_run;
  result.best_performance = closed->best_performance;
  result.default_performance = closed->default_performance;
  return EncodeFrame(MessageKind::kClosedReply, EncodeClosedReply(result));
}

Status TuningServer::BuildSessionSpec(const WireSessionSpec& wire,
                                      std::unique_ptr<ConfigSpace>* owned_space,
                                      service::SessionSpec* out) {
  if (!wire.workload.empty()) {
    Result<dbsim::WorkloadSpec> workload = dbsim::WorkloadByName(wire.workload);
    if (!workload.ok()) return workload.status();
    out->workload = *workload;
  } else {
    Result<ConfigSpace> space = ConfigSpace::Create(wire.space_knobs);
    if (!space.ok()) return space.status();
    *owned_space =
        std::make_unique<ConfigSpace>(std::move(space).ValueOrDie());
    out->space = owned_space->get();
    out->maximize = wire.maximize;
  }
  out->optimizer_key = wire.optimizer_key;
  out->adapter_key = wire.adapter_key;
  out->seed = wire.seed;
  out->num_iterations = wire.num_iterations;
  out->batch_size = wire.batch_size;
  out->num_threads = wire.num_threads;
  return Status::OK();
}

Status TuningServer::ReserveTenantSlot(const std::string& tenant) {
  if (options_.max_sessions_per_tenant <= 0) return Status::OK();
  std::lock_guard<std::mutex> lock(meta_mu_);
  int& count = tenant_sessions_[tenant];
  if (count >= options_.max_sessions_per_tenant) {
    return Status::ResourceExhausted(
        "tenant '" + tenant + "' is at its session quota (" +
        std::to_string(options_.max_sessions_per_tenant) + ")");
  }
  ++count;
  return Status::OK();
}

void TuningServer::ReleaseTenantSlot(const std::string& tenant) {
  if (options_.max_sessions_per_tenant <= 0) return;
  std::lock_guard<std::mutex> lock(meta_mu_);
  auto it = tenant_sessions_.find(tenant);
  if (it != tenant_sessions_.end() && --it->second <= 0) {
    tenant_sessions_.erase(it);
  }
}

std::string TuningServer::AutosavePath(const std::string& name) const {
  // Hex-encode the session name so arbitrary names can't escape the
  // autosave directory or collide with each other's files.
  return options_.autosave_dir + "/" + EncodeBytes(name) + ".autosave";
}

Status TuningServer::AutosaveSession(const std::string& name,
                                     const MetaPtr& meta) {
  Result<std::string> checkpoint = service_.Checkpoint(name);
  if (!checkpoint.ok()) return checkpoint.status();
  std::string path = AutosavePath(name);
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal("server: cannot write autosave tmp " + tmp);
    }
    out << EncodeSessionSpec(meta->spec) << '\n' << *checkpoint;
    if (!out.good()) {
      return Status::Internal("server: short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal(std::string("server: rename(): ") +
                            std::strerror(errno));
  }
  autosaves_written_.fetch_add(1);
  return Status::OK();
}

void TuningServer::AutosaveSweep() {
  if (options_.autosave_dir.empty()) return;
  for (const service::SessionStatus& status : service_.ListSessions()) {
    MetaPtr meta;
    {
      std::lock_guard<std::mutex> lock(meta_mu_);
      auto it = metas_.find(status.name);
      if (it != metas_.end()) meta = it->second;
    }
    // Only wire-created sessions carry a serializable spec; sessions
    // created in-process (or bare drive metas) cannot be autosaved.
    if (meta == nullptr ||
        (meta->spec.workload.empty() && meta->spec.space_knobs.empty())) {
      continue;
    }
    AutosaveSession(status.name, meta).ok();
  }
}

void TuningServer::EvictionSweep() {
  if (options_.idle_eviction_ms <= 0) return;
  int64_t now = service::NowUnixMillis();
  for (const service::SessionStatus& status : service_.ListSessions()) {
    MetaPtr meta;
    {
      std::lock_guard<std::mutex> lock(meta_mu_);
      auto it = metas_.find(status.name);
      if (it != metas_.end()) meta = it->second;
    }
    // The server only evicts sessions it created over the wire.
    if (meta == nullptr || meta->driving.load()) continue;
    if (now - status.last_activity_unix_ms < options_.idle_eviction_ms) {
      continue;
    }
    if (!options_.autosave_dir.empty() &&
        !(meta->spec.workload.empty() && meta->spec.space_knobs.empty())) {
      AutosaveSession(status.name, meta).ok();
    }
    if (service_.Close(status.name).ok()) {
      sessions_evicted_.fetch_add(1);
      ReleaseTenantSlot(meta->tenant);
      std::lock_guard<std::mutex> lock(meta_mu_);
      metas_.erase(status.name);
    }
  }
}

void TuningServer::RunMaintenance() {
  std::lock_guard<std::mutex> lock(maintenance_mu_);
  AutosaveSweep();
  EvictionSweep();
}

void TuningServer::TaskStarted() {
  std::lock_guard<std::mutex> lock(tasks_mu_);
  ++active_tasks_;
}

void TuningServer::TaskFinished() {
  std::lock_guard<std::mutex> lock(tasks_mu_);
  --active_tasks_;
  tasks_cv_.notify_all();
}

}  // namespace net
}  // namespace llamatune
