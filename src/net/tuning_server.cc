#include "src/net/tuning_server.h"

#include <arpa/inet.h>
#include <dirent.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "src/common/fault_injection.h"
#include "src/common/serde.h"
#include "src/common/thread_pool.h"
#include "src/dbsim/workloads.h"

namespace llamatune {
namespace net {

namespace {

/// Writes all of [data, data+n) to a non-blocking socket, waiting for
/// writability when the send buffer fills. Returns false on error or
/// on a peer that stays unwritable for 5s (a stalled reader must not
/// wedge the server forever).
bool SendAll(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t rc = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (rc >= 0) {
      off += static_cast<size_t>(rc);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      pollfd p;
      p.fd = fd;
      p.events = POLLOUT;
      p.revents = 0;
      if (::poll(&p, 1, 5000) <= 0) return false;
      continue;
    }
    return false;
  }
  return true;
}

std::string MalformedReplyFrame(const Status& status) {
  return EncodeFrame(MessageKind::kError,
                     EncodeError(WireError::kMalformed, status.message()));
}

/// Expensive admission class: requests that draw trials, mutate
/// sessions or start background work. Everything else — status polls,
/// health probes, ping, and unknown kinds (whose kUnknownKind reply
/// costs nothing) — is cheap and keeps working while the server drains
/// or sheds. kClose is expensive on purpose: a drain must not let a
/// close unlink the autosave the successor will resume from.
bool IsExpensiveKind(MessageKind kind) {
  switch (kind) {
    case MessageKind::kCreateSession:
    case MessageKind::kResume:
    case MessageKind::kResumeSaved:
    case MessageKind::kAsk:
    case MessageKind::kAskBatch:
    case MessageKind::kTell:
    case MessageKind::kTellBatch:
    case MessageKind::kStep:
    case MessageKind::kStartDrive:
    case MessageKind::kClose:
      return true;
    default:
      return false;
  }
}

/// splitmix64 finalizer — the same cheap deterministic mixer the
/// resilient client uses for its decorrelated jitter.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// The autosave header line is EncodeSessionSpec(spec) followed by a
/// trailing ` tenant xHEX` token (DecodeSessionSpec stops at the spec,
/// so files with and without the token both decode). Recovers the
/// owning tenant; pre-token files yield "".
std::string TenantFromAutosaveHeader(const std::string& header) {
  std::istringstream in(header);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) tokens.push_back(token);
  if (tokens.size() < 2 || tokens[tokens.size() - 2] != "tenant") return "";
  const std::string& value = tokens.back();
  if (value.empty() || value[0] != 'x') return "";
  Result<std::string> tenant = DecodeBytes(value.substr(1));
  return tenant.ok() ? *tenant : "";
}

}  // namespace

TuningServer::Conn::~Conn() { ::close(fd); }

TuningServer::TuningServer(TuningServerOptions options)
    : options_(std::move(options)) {}

TuningServer::~TuningServer() { Stop(); }

Status TuningServer::Start() {
  if (lifecycle() != ServerLifecycle::kStopped) {
    return Status::FailedPrecondition("server: already running");
  }
  if (!options_.autosave_dir.empty()) {
    ::mkdir(options_.autosave_dir.c_str(), 0755);
    struct stat sb;
    if (::stat(options_.autosave_dir.c_str(), &sb) != 0 ||
        !S_ISDIR(sb.st_mode)) {
      return Status::InvalidArgument("server: autosave dir '" +
                                     options_.autosave_dir +
                                     "' is not a usable directory");
    }
  }

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("server: bad IPv4 address '" +
                                   options_.host + "'");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    return Status::Internal(std::string("server: socket(): ") +
                            std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::Internal(
        "server: bind(" + options_.host + ":" +
        std::to_string(options_.port) + "): " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    Status status = Status::Internal(std::string("server: getsockname(): ") +
                                     std::strerror(errno));
    ::close(fd);
    return status;
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(fd, options_.listen_backlog) != 0) {
    Status status = Status::Internal(std::string("server: listen(): ") +
                                     std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::pipe2(wake_pipe_, O_NONBLOCK) != 0) {
    Status status = Status::Internal(std::string("server: pipe2(): ") +
                                     std::strerror(errno));
    ::close(fd);
    return status;
  }

  listen_fd_ = fd;
  hard_stop_.store(false);
  teardown_claimed_.store(false);
  drain_deadline_unix_ms_.store(0);
  // Hot restart: revive the predecessor's drained sessions before the
  // first connection can arrive, so a client's first GetStatus already
  // sees them.
  if (options_.resume_saved_on_start && !options_.autosave_dir.empty()) {
    ResumeSavedStartupSweep();
  }
  lifecycle_.store(static_cast<int>(ServerLifecycle::kRunning));
  // lint:allow(raw-thread) — dedicated poll-loop thread (see header)
  loop_ = std::thread(&TuningServer::EventLoop, this);
  return Status::OK();
}

void TuningServer::Drain() {
  int expected = static_cast<int>(ServerLifecycle::kRunning);
  if (!lifecycle_.compare_exchange_strong(
          expected, static_cast<int>(ServerLifecycle::kDraining))) {
    return;  // already draining or stopped
  }
  drain_deadline_unix_ms_.store(
      service::NowUnixMillis() +
      std::max<int64_t>(options_.drain_deadline_ms, 0));
  char byte = 'd';
  ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
  (void)ignored;
}

void TuningServer::Stop() {
  if (lifecycle() == ServerLifecycle::kStopped) return;
  Drain();
  if (teardown_claimed_.exchange(true)) {
    // Another Stop() owns the teardown; wait until it finishes so
    // every caller returns to a fully stopped server.
    MutexLock lock(lifecycle_mu_);
    lifecycle_cv_.Wait(lock, [this]() REQUIRES(lifecycle_mu_) {
      return lifecycle() == ServerLifecycle::kStopped;
    });
    return;
  }
  // The loop exits on its own once the drain quiesces or the drain
  // deadline passes.
  if (loop_.joinable()) loop_.join();
  hard_stop_.store(true);
  {
    MutexLock lock(tasks_mu_);
    tasks_cv_.Wait(lock,
                   [this]() REQUIRES(tasks_mu_) { return active_tasks_ == 0; });
  }
  // Chaos hook: teardown stalls (slow disk, wedged fsync) — shutdown
  // still completes, just later; nothing after this point can lose
  // committed work.
  if (FaultInjection::ShouldFail("drain.slow")) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (!options_.autosave_dir.empty()) {
    MutexLock lock(maintenance_mu_);
    AutosaveSweep();
  }
  conns_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
  {
    MutexLock lock(lifecycle_mu_);
    lifecycle_.store(static_cast<int>(ServerLifecycle::kStopped));
    lifecycle_cv_.NotifyAll();
  }
}

void TuningServer::EventLoop() {
  const int64_t autosave_period = options_.autosave_interval_ms;
  const int64_t evict_period =
      options_.idle_eviction_ms > 0
          ? std::max<int64_t>(options_.idle_eviction_ms / 4, 10)
          : 0;
  int64_t next_autosave = autosave_period > 0
                              ? service::NowUnixMillis() + autosave_period
                              : INT64_MAX;
  int64_t next_evict =
      evict_period > 0 ? service::NowUnixMillis() + evict_period : INT64_MAX;
  // Pending-trial deadlines are swept on a fixed cadence; the sweep
  // exits immediately when no wire session configured a deadline.
  const int64_t expire_period = 200;
  int64_t next_expire = service::NowUnixMillis() + expire_period;

  std::vector<pollfd> fds;
  while (!hard_stop_.load()) {
    const bool draining_now = draining();
    if (draining_now) {
      if (listen_fd_ >= 0) {
        // Stop accepting: connects refuse from here on, while live
        // connections keep getting (cheap) answers.
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      // Drain complete: every admitted request answered and every
      // background drive finished — or the deadline says stop waiting.
      if ((pending_requests_.load() == 0 && ActiveTasks() == 0) ||
          service::NowUnixMillis() >= drain_deadline_unix_ms_.load()) {
        break;
      }
    }

    fds.clear();
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    size_t listen_index = 0;
    if (listen_fd_ >= 0) {
      listen_index = fds.size();
      fds.push_back({listen_fd_, POLLIN, 0});
    }
    const size_t conn_base = fds.size();
    for (const auto& [fd, conn] : conns_) {
      fds.push_back({fd, POLLIN, 0});
    }

    int64_t now = service::NowUnixMillis();
    int64_t next_timer =
        std::min(std::min(next_autosave, next_evict), next_expire);
    int timeout_ms = std::max(options_.poll_timeout_ms, 0);
    // While draining, poll briefly: quiescence happens on the pool
    // (handlers and drive steps finishing), which poll can't see.
    if (draining_now) timeout_ms = std::min(timeout_ms, 10);
    if (next_timer != INT64_MAX) {
      int64_t wait = next_timer - now;
      if (wait < 0) wait = 0;
      if (wait < timeout_ms) timeout_ms = static_cast<int>(wait);
    }
    int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
    if (hard_stop_.load()) break;
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }

    now = service::NowUnixMillis();
    if (now >= next_autosave) {
      MutexLock lock(maintenance_mu_);
      AutosaveSweep();
      next_autosave = now + autosave_period;
    }
    if (now >= next_evict) {
      MutexLock lock(maintenance_mu_);
      EvictionSweep();
      next_evict = now + evict_period;
    }
    if (now >= next_expire) {
      ExpireSweep();
      next_expire = now + expire_period;
    }
    if (rc == 0) continue;

    if (fds[0].revents & POLLIN) {
      char drain[64];
      while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
    }
    if (listen_index != 0 && (fds[listen_index].revents & POLLIN)) {
      for (;;) {
        int cfd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
        if (cfd < 0) break;
        conns_.emplace(
            cfd, std::make_shared<Conn>(cfd, options_.max_frame_payload));
      }
    }
    for (size_t i = conn_base; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      auto it = conns_.find(fds[i].fd);
      if (it == conns_.end()) continue;
      ConnPtr conn = it->second;
      bool alive = true;
      HandleReadable(conn);
      if (conn->closed.load()) alive = false;
      if (!alive) conns_.erase(it);
    }
  }
}

void TuningServer::HandleReadable(const ConnPtr& conn) {
  char buf[16384];
  for (;;) {
    // Chaos hook: ask the kernel for a single byte so the decoder
    // sees a torn frame boundary. Shrinking the *request* (instead of
    // discarding part of what recv returned) keeps the remainder
    // queued in the socket — a short read, never data loss.
    size_t want = sizeof(buf);
    if (FaultInjection::ShouldFail("server.recv.short")) want = 1;
    ssize_t n = ::recv(conn->fd, buf, want, 0);
    if (n > 0) {
      conn->decoder.Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      conn->closed.store(true);
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn->closed.store(true);
    break;
  }

  for (;;) {
    Result<std::optional<Frame>> next = conn->decoder.Next();
    if (!next.ok()) {
      // Framing faults are unrecoverable (the stream has lost sync):
      // answer once with BadFrame, then drop the connection.
      WriteFrame(conn, MessageKind::kError,
                 EncodeError(WireError::kBadFrame, next.status().ToString()));
      conn->closed.store(true);
      return;
    }
    if (!next->has_value()) return;
    AdmitFrame(conn, std::move(**next));
  }
}

void TuningServer::AdmitFrame(const ConnPtr& conn, Frame frame) {
  const bool expensive = IsExpensiveKind(frame.kind);
  const int64_t now = service::NowUnixMillis();

  if (expensive && draining()) {
    WriteFrame(conn, MessageKind::kError,
               EncodeError(WireError::kShuttingDown,
                           "server draining: not accepting new work",
                           DrainRetryHintMs(now)));
    return;
  }
  if (pending_requests_.load() >= options_.max_pending_requests) {
    if (expensive) {
      shed_overload_.fetch_add(1);
      WriteFrame(
          conn, MessageKind::kError,
          EncodeError(WireError::kOverloaded,
                      "server overloaded: pending-request queue is full",
                      NextShedHintMs()));
    } else {
      busy_rejections_.fetch_add(1);
      WriteFrame(conn, MessageKind::kError,
                 EncodeError(WireError::kBusy,
                             "server busy: pending-request queue is full"));
    }
    return;
  }
  std::string tenant;
  {
    MutexLock lock(conn->mu);
    tenant = conn->tenant;
  }
  if (expensive) {
    const int cap = ExpensiveCap();
    std::string why;
    if (pending_expensive_.load() >= cap ||
        FaultInjection::ShouldFail("shed.force")) {
      why = "server overloaded: expensive-request budget is full";
    } else {
      // Fair admission: under pressure, a tenant already holding its
      // share of the expensive budget is shed so one hot tenant can't
      // starve the rest. The slot reservation happens under the same
      // lock as the check so concurrent admits can't oversubscribe.
      MutexLock lock(meta_mu_);
      auto it = tenant_inflight_.find(tenant);
      const int inflight = it == tenant_inflight_.end() ? 0 : it->second;
      const int active = static_cast<int>(tenant_inflight_.size()) +
                         (it == tenant_inflight_.end() ? 1 : 0);
      if (FairShareExceeded(inflight, active, cap,
                            pending_expensive_.load())) {
        why = "server overloaded: tenant '" + tenant +
              "' is over its fair share";
      } else {
        ++tenant_inflight_[tenant];
      }
    }
    if (!why.empty()) {
      shed_overload_.fetch_add(1);
      WriteFrame(conn, MessageKind::kError,
                 EncodeError(WireError::kOverloaded, why, NextShedHintMs()));
      return;
    }
    pending_expensive_.fetch_add(1);
  }

  PendingRequest request;
  int64_t deadline_ms = DeadlineRiderMs(frame.payload);
  if (deadline_ms <= 0) deadline_ms = options_.default_request_deadline_ms;
  request.deadline_unix_ms = deadline_ms > 0 ? now + deadline_ms : 0;
  request.expensive = expensive;
  request.tenant = std::move(tenant);
  request.frame = std::move(frame);
  pending_requests_.fetch_add(1);
  {
    MutexLock lock(conn->mu);
    conn->inbox.push_back(std::move(request));
  }
  Dispatch(conn);
}

void TuningServer::Dispatch(const ConnPtr& conn) {
  PendingRequest request;
  {
    MutexLock lock(conn->mu);
    if (conn->busy || conn->inbox.empty()) return;
    conn->busy = true;
    request = std::move(conn->inbox.front());
    conn->inbox.pop_front();
  }
  TaskStarted();
  ThreadPool::Global().Submit(
      [this, conn, request = std::move(request)]() mutable {
        RunHandler(conn, std::move(request));
      });
}

void TuningServer::RunHandler(const ConnPtr& conn, PendingRequest request) {
  std::string reply;
  const int64_t now = service::NowUnixMillis();
  if (hard_stop_.load()) {
    // Forced teardown after the drain deadline: answer, don't work.
    reply = EncodeFrame(MessageKind::kError,
                        EncodeError(WireError::kShuttingDown,
                                    "server stopping: request abandoned"));
  } else if ((request.deadline_unix_ms > 0 &&
              now > request.deadline_unix_ms) ||
             FaultInjection::ShouldFail("shed.deadline.force")) {
    // Dead on arrival: the caller stopped waiting while this request
    // sat in the queue; doing the work would burn budget for nobody.
    shed_deadline_.fetch_add(1);
    reply = OverloadedReplyFrame("request deadline passed while queued");
  } else {
    reply = HandleRequest(conn, request.frame);
  }
  // Chaos hook: the request committed server-side but its reply is
  // lost and the connection resets — the client must reconnect and
  // recover through retry + idempotent dedup.
  if (FaultInjection::ShouldFail("server.send.reset")) {
    conn->closed.store(true);
    ::shutdown(conn->fd, SHUT_RDWR);
  }
  {
    MutexLock lock(conn->write_mu);
    if (!conn->closed.load() &&
        !SendAll(conn->fd, reply.data(), reply.size())) {
      conn->closed.store(true);
    }
  }
  pending_requests_.fetch_sub(1);
  if (request.expensive) {
    pending_expensive_.fetch_sub(1);
    MutexLock lock(meta_mu_);
    auto it = tenant_inflight_.find(request.tenant);
    if (it != tenant_inflight_.end() && --it->second <= 0) {
      tenant_inflight_.erase(it);
    }
  }
  {
    MutexLock lock(conn->mu);
    conn->busy = false;
  }
  Dispatch(conn);
  TaskFinished();
}

void TuningServer::WriteFrame(const ConnPtr& conn, MessageKind kind,
                              const std::string& payload) {
  std::string bytes = EncodeFrame(kind, payload);
  MutexLock lock(conn->write_mu);
  if (conn->closed.load()) return;
  if (!SendAll(conn->fd, bytes.data(), bytes.size())) {
    conn->closed.store(true);
  }
}

std::string TuningServer::ErrorReplyFrame(const Status& status) const {
  return EncodeFrame(
      MessageKind::kError,
      EncodeError(WireErrorFromStatus(status), status.message()));
}

std::string TuningServer::OverloadedReplyFrame(const std::string& why) {
  return EncodeFrame(
      MessageKind::kError,
      EncodeError(WireError::kOverloaded, why, NextShedHintMs()));
}

std::string TuningServer::HandleRequest(const ConnPtr& conn,
                                        const Frame& frame) {
  switch (frame.kind) {
    case MessageKind::kHello: {
      Result<std::string> tenant = DecodeHello(frame.payload);
      if (!tenant.ok()) return MalformedReplyFrame(tenant.status());
      {
        MutexLock lock(conn->mu);
        conn->tenant = *tenant;
      }
      return EncodeFrame(MessageKind::kOk, "");
    }
    case MessageKind::kCreateSession:
    case MessageKind::kResume:
      return HandleCreateOrResume(conn, frame);
    case MessageKind::kResumeSaved: {
      Result<std::string> name = DecodeNameOnly(frame.payload);
      if (!name.ok()) return MalformedReplyFrame(name.status());
      return HandleResumeSaved(conn, *name);
    }
    case MessageKind::kAsk: {
      Result<std::string> name = DecodeNameOnly(frame.payload);
      if (!name.ok()) return MalformedReplyFrame(name.status());
      Result<Trial> trial = DoAsk(*name);
      if (!trial.ok()) return ErrorReplyFrame(trial.status());
      return EncodeFrame(MessageKind::kTrialReply, EncodeTrialReply(*trial));
    }
    case MessageKind::kAskBatch: {
      std::string name;
      int n = 0;
      Status parse = DecodeAskBatch(frame.payload, &name, &n);
      if (!parse.ok()) return MalformedReplyFrame(parse);
      Result<std::vector<Trial>> trials = DoAskBatch(name, n);
      if (!trials.ok()) return ErrorReplyFrame(trials.status());
      return EncodeFrame(MessageKind::kTrialsReply,
                         EncodeTrialsReply(*trials));
    }
    case MessageKind::kTell: {
      std::string name;
      TrialResult result;
      Status parse = DecodeTell(frame.payload, &name, &result);
      if (!parse.ok()) return MalformedReplyFrame(parse);
      Status told = DoTell(name, result);
      if (!told.ok()) return ErrorReplyFrame(told);
      return EncodeFrame(MessageKind::kOk, "");
    }
    case MessageKind::kTellBatch: {
      std::string name;
      std::vector<TrialResult> results;
      Status parse = DecodeTellBatch(frame.payload, &name, &results);
      if (!parse.ok()) return MalformedReplyFrame(parse);
      Status told = DoTellBatch(name, results);
      if (!told.ok()) return ErrorReplyFrame(told);
      return EncodeFrame(MessageKind::kOk, "");
    }
    case MessageKind::kStep: {
      Result<std::string> name = DecodeNameOnly(frame.payload);
      if (!name.ok()) return MalformedReplyFrame(name.status());
      bool progressed = false;
      Status stepped = DoStep(*name, &progressed);
      if (!stepped.ok()) return ErrorReplyFrame(stepped);
      return EncodeFrame(MessageKind::kSteppedReply,
                         EncodeSteppedReply(progressed));
    }
    case MessageKind::kGetPending: {
      Result<std::string> name = DecodeNameOnly(frame.payload);
      if (!name.ok()) return MalformedReplyFrame(name.status());
      MetaPtr meta = FindMeta(*name);
      auto snapshot = [&]() -> std::string {
        Result<int64_t> next = service_.NextTrialId(*name);
        if (!next.ok()) return ErrorReplyFrame(next.status());
        Result<std::vector<Trial>> pending = service_.GetPending(*name);
        if (!pending.ok()) return ErrorReplyFrame(pending.status());
        return EncodeFrame(MessageKind::kPendingReply,
                           EncodePendingReply(*next, *pending));
      };
      // Hold op_mu (when the session is wire-created) so the cursor
      // and the pending list are one consistent snapshot.
      if (meta != nullptr) {
        MutexLock op_lock(meta->op_mu);
        return snapshot();
      }
      return snapshot();
    }
    case MessageKind::kStartDrive: {
      Result<std::string> name = DecodeNameOnly(frame.payload);
      if (!name.ok()) return MalformedReplyFrame(name.status());
      return HandleStartDrive(*name);
    }
    case MessageKind::kGetStatus: {
      Result<std::string> name = DecodeNameOnly(frame.payload);
      if (!name.ok()) return MalformedReplyFrame(name.status());
      Result<service::SessionStatus> status = service_.GetStatus(*name);
      if (!status.ok()) return ErrorReplyFrame(status.status());
      WireSessionStatus wire;
      wire.status = *status;
      {
        MutexLock lock(meta_mu_);
        auto it = metas_.find(*name);
        if (it != metas_.end()) wire.driving = it->second->driving.load();
      }
      return EncodeFrame(MessageKind::kStatusReply, EncodeStatusReply(wire));
    }
    case MessageKind::kListSessions: {
      std::vector<service::SessionStatus> statuses = service_.ListSessions();
      std::vector<WireSessionStatus> wire;
      wire.reserve(statuses.size());
      MutexLock lock(meta_mu_);
      for (service::SessionStatus& status : statuses) {
        WireSessionStatus w;
        auto it = metas_.find(status.name);
        if (it != metas_.end()) w.driving = it->second->driving.load();
        w.status = std::move(status);
        wire.push_back(std::move(w));
      }
      return EncodeFrame(MessageKind::kStatusListReply,
                         EncodeStatusListReply(wire));
    }
    case MessageKind::kCheckpoint: {
      Result<std::string> name = DecodeNameOnly(frame.payload);
      if (!name.ok()) return MalformedReplyFrame(name.status());
      Result<std::string> checkpoint = service_.Checkpoint(*name);
      if (!checkpoint.ok()) return ErrorReplyFrame(checkpoint.status());
      return EncodeFrame(MessageKind::kCheckpointReply,
                         EncodeCheckpointReply(*checkpoint));
    }
    case MessageKind::kClose: {
      Result<std::string> name = DecodeNameOnly(frame.payload);
      if (!name.ok()) return MalformedReplyFrame(name.status());
      return HandleClose(*name);
    }
    case MessageKind::kPing:
      return EncodeFrame(MessageKind::kPongReply, frame.payload);
    case MessageKind::kDrain:
      // Begin draining and answer OK; the caller polls health (or just
      // watches its connection close) to see the drain complete. Never
      // Stop() from here — Stop waits for in-flight handlers, and this
      // handler is one of them.
      Drain();
      return EncodeFrame(MessageKind::kOk, "");
    case MessageKind::kHealthCheck:
      return EncodeFrame(MessageKind::kHealthReply,
                         EncodeHealthReply(Health()));
    case MessageKind::kServerStats:
      return EncodeFrame(MessageKind::kStatsReply, EncodeStatsReply(Stats()));
    default:
      return EncodeFrame(
          MessageKind::kError,
          EncodeError(WireError::kUnknownKind,
                      "unknown or non-request message kind " +
                          std::to_string(static_cast<int>(frame.kind))));
  }
}

WireServerHealth TuningServer::Health() const {
  WireServerHealth health;
  health.lifecycle = lifecycle();
  health.pending_requests = pending_requests_.load();
  health.sessions = service_.session_count();
  return health;
}

WireServerStats TuningServer::Stats() const {
  WireServerStats stats;
  stats.lifecycle = lifecycle();
  stats.pending_requests = pending_requests_.load();
  stats.pending_expensive = pending_expensive_.load();
  stats.sessions = service_.session_count();
  stats.busy_rejections = busy_rejections_.load();
  stats.shed_overload = shed_overload_.load();
  stats.shed_deadline = shed_deadline_.load();
  stats.sessions_evicted = sessions_evicted_.load();
  stats.autosaves_written = autosaves_written_.load();
  stats.sessions_restored = sessions_restored_.load();
  {
    MutexLock lock(meta_mu_);
    std::map<std::string, int64_t> by_tenant;
    for (const auto& [name, meta] : metas_) ++by_tenant[meta->tenant];
    stats.tenant_sessions.assign(by_tenant.begin(), by_tenant.end());
  }
  return stats;
}

bool TuningServer::FairShareExceeded(int tenant_inflight, int active_tenants,
                                     int expensive_cap,
                                     int pending_expensive) {
  if (active_tenants <= 1 || expensive_cap <= 0) return false;
  // Below half the budget there is headroom — let bursts through and
  // keep the single-tenant fast path unthrottled.
  if (pending_expensive * 2 < expensive_cap) return false;
  const int fair_share = std::max(1, expensive_cap / active_tenants);
  return tenant_inflight >= fair_share;
}

int TuningServer::ExpensiveCap() const {
  return std::max(1, options_.max_pending_requests -
                         std::max(options_.cheap_admission_reserve, 0));
}

int64_t TuningServer::NextShedHintMs() {
  MutexLock lock(shed_mu_);
  const int64_t lo = std::max<int64_t>(options_.shed_retry_base_ms, 1);
  const int64_t cap = std::max<int64_t>(options_.shed_retry_max_ms, lo);
  const int64_t hi =
      std::min(cap, std::max<int64_t>(lo + 1, shed_prev_hint_ * 3));
  shed_rng_ = Mix64(shed_rng_);
  const int64_t hint =
      lo +
      static_cast<int64_t>(shed_rng_ % static_cast<uint64_t>(hi - lo + 1));
  shed_prev_hint_ = hint;
  return hint;
}

int64_t TuningServer::DrainRetryHintMs(int64_t now_unix_ms) const {
  // Come back once the drain window has passed (a successor may be
  // listening by then); never hint below the shed base.
  const int64_t remaining = drain_deadline_unix_ms_.load() - now_unix_ms;
  return std::max<int64_t>(std::max<int64_t>(options_.shed_retry_base_ms, 1),
                           remaining);
}

TuningServer::MetaPtr TuningServer::FindMeta(const std::string& name) const {
  MutexLock lock(meta_mu_);
  auto it = metas_.find(name);
  return it == metas_.end() ? nullptr : it->second;
}

Result<Trial> TuningServer::DoAsk(const std::string& name) {
  MetaPtr meta = FindMeta(name);
  if (meta == nullptr || !meta->wal.is_open()) return service_.Ask(name);
  MutexLock lock(meta->op_mu);
  Result<Trial> trial = service_.Ask(name);
  if (trial.ok()) {
    meta->wal.Append("ask1 " + std::to_string(trial->id)).ok();
  }
  return trial;
}

Result<std::vector<Trial>> TuningServer::DoAskBatch(const std::string& name,
                                                    int n) {
  MetaPtr meta = FindMeta(name);
  if (meta == nullptr || !meta->wal.is_open()) {
    return service_.AskBatch(name, n);
  }
  MutexLock lock(meta->op_mu);
  Result<std::vector<Trial>> trials = service_.AskBatch(name, n);
  if (trials.ok() && !trials->empty()) {
    // Record the *request* (n), not the count handed out: replay must
    // re-issue the identical call to draw the identical batch.
    meta->wal
        .Append("askb " + std::to_string(n) + " " +
                std::to_string(trials->front().id))
        .ok();
  }
  return trials;
}

Status TuningServer::DoTell(const std::string& name,
                            const TrialResult& result) {
  MetaPtr meta = FindMeta(name);
  if (meta == nullptr || !meta->wal.is_open()) {
    return service_.Tell(name, result);
  }
  MutexLock lock(meta->op_mu);
  Status told = service_.Tell(name, result);
  if (told.ok()) {
    meta->wal.Append("tell x" + EncodeBytes(SerializeTrialResult(result)))
        .ok();
  }
  return told;
}

Status TuningServer::DoTellBatch(const std::string& name,
                                 const std::vector<TrialResult>& results) {
  MetaPtr meta = FindMeta(name);
  if (meta == nullptr || !meta->wal.is_open()) {
    return service_.TellBatch(name, results);
  }
  // TellBatch is defined as a sequential Tell loop (first error wins,
  // earlier results stay committed), so logging per result keeps the
  // WAL exact even on partial failure.
  MutexLock lock(meta->op_mu);
  for (const TrialResult& result : results) {
    Status told = service_.Tell(name, result);
    if (!told.ok()) return told;
    meta->wal.Append("tell x" + EncodeBytes(SerializeTrialResult(result)))
        .ok();
  }
  return Status::OK();
}

Status TuningServer::DoStep(const std::string& name, bool* progressed) {
  MetaPtr meta = FindMeta(name);
  if (meta == nullptr || !meta->wal.is_open()) {
    return service_.Step(name, progressed);
  }
  MutexLock lock(meta->op_mu);
  Result<service::SessionStatus> before = service_.GetStatus(name);
  bool stepped = false;
  Status status = service_.Step(name, &stepped);
  if (status.ok() && stepped && before.ok()) {
    meta->wal.Append("step " + std::to_string(before->iterations_run)).ok();
  }
  if (progressed != nullptr) *progressed = stepped;
  return status;
}

void TuningServer::ExpireSweep() {
  int64_t now = service::NowUnixMillis();
  std::vector<std::pair<std::string, MetaPtr>> candidates;
  {
    MutexLock lock(meta_mu_);
    for (const auto& [name, meta] : metas_) {
      if (meta->spec.pending_deadline_ms > 0) {
        candidates.emplace_back(name, meta);
      }
    }
  }
  for (const auto& [name, meta] : candidates) {
    MutexLock lock(meta->op_mu);
    Result<std::vector<int64_t>> expired =
        service_.ExpireOverdueSession(name, now);
    if (!expired.ok() || !meta->wal.is_open()) continue;
    for (int64_t id : *expired) {
      meta->wal.Append("expire " + std::to_string(id)).ok();
    }
  }
}

Status TuningServer::ReplayWal(const std::string& name) {
  Result<std::vector<std::string>> records =
      service::TrialWal::ReadRecords(WalPath(name));
  if (!records.ok()) return records.status();
  for (const std::string& record : *records) {
    std::istringstream in(record);
    std::string op;
    if (!(in >> op)) break;
    if (op == "ask1" || op == "askb") {
      int64_t requested = 1;
      if (op == "askb" && !(in >> requested)) break;
      int64_t first_id = 0;
      if (!(in >> first_id)) break;
      Result<int64_t> next = service_.NextTrialId(name);
      if (!next.ok()) return next.status();
      // Rounds commit whole, so the restored cursor always sits on a
      // round boundary: an ask record is either entirely inside the
      // checkpoint (skip), exactly at the cursor (re-issue the same
      // deterministic draw), or past it (a gap from a lost append —
      // nothing after it can be replayed either).
      if (first_id < *next) continue;
      if (first_id > *next) break;
      if (op == "ask1") {
        Result<Trial> trial = service_.Ask(name);
        if (!trial.ok()) return trial.status();
        if (trial->id != first_id) {
          return Status::Internal("wal replay: re-asked trial id " +
                                  std::to_string(trial->id) + " != logged " +
                                  std::to_string(first_id));
        }
      } else {
        Result<std::vector<Trial>> trials =
            service_.AskBatch(name, static_cast<int>(requested));
        if (!trials.ok()) return trials.status();
        if (trials->empty() || trials->front().id != first_id) {
          return Status::Internal(
              "wal replay: re-asked batch does not start at logged id " +
              std::to_string(first_id));
        }
      }
    } else if (op == "tell") {
      std::string token;
      if (!(in >> token) || token.empty() || token[0] != 'x') break;
      Result<std::string> line = DecodeBytes(token.substr(1));
      if (!line.ok()) break;
      Result<TrialResult> result = ParseTrialResult(*line);
      if (!result.ok()) break;
      Status told = service_.Tell(name, *result);
      // AlreadyExists: the autosave checkpoint had committed this
      // tell. TrialExpired: the trial expired and the checkpoint
      // recorded the expiry. Both mean "already applied".
      if (!told.ok() && told.code() != StatusCode::kAlreadyExists &&
          told.code() != StatusCode::kTrialExpired) {
        return told;
      }
    } else if (op == "expire") {
      int64_t id = 0;
      if (!(in >> id)) break;
      Status expired = service_.Expire(name, id);
      // AlreadyExists: the trial committed before this stale record.
      if (!expired.ok() && expired.code() != StatusCode::kAlreadyExists) {
        return expired;
      }
    } else if (op == "step") {
      int64_t iters_before = 0;
      if (!(in >> iters_before)) break;
      Result<service::SessionStatus> status = service_.GetStatus(name);
      if (!status.ok()) return status.status();
      if (status->iterations_run > iters_before) continue;
      bool progressed = false;
      Status stepped = service_.Step(name, &progressed);
      if (!stepped.ok()) return stepped;
    } else {
      break;  // unknown record: stop at the first thing we can't replay
    }
  }
  return Status::OK();
}

std::string TuningServer::HandleCreateOrResume(const ConnPtr& conn,
                                               const Frame& frame) {
  std::string name, checkpoint;
  WireSessionSpec wire;
  Status parse =
      frame.kind == MessageKind::kCreateSession
          ? DecodeCreateSession(frame.payload, &name, &wire)
          : DecodeResume(frame.payload, &name, &wire, &checkpoint);
  if (!parse.ok()) return MalformedReplyFrame(parse);

  auto meta = std::make_shared<SessionMeta>();
  meta->spec = wire;
  {
    MutexLock lock(conn->mu);
    meta->tenant = conn->tenant;
  }
  service::SessionSpec spec;
  Status built = BuildSessionSpec(wire, &meta->owned_space, &spec);
  if (!built.ok()) return ErrorReplyFrame(built);

  Status quota = ReserveTenantSlot(meta->tenant);
  if (!quota.ok()) return ErrorReplyFrame(quota);
  Status registered = frame.kind == MessageKind::kCreateSession
                          ? service_.CreateSession(name, spec)
                          : service_.Resume(name, spec, checkpoint);
  if (!registered.ok()) {
    ReleaseTenantSlot(meta->tenant);
    return ErrorReplyFrame(registered);
  }
  if (!options_.autosave_dir.empty()) {
    // Fresh incarnation: a stale WAL from an earlier same-named
    // session must not replay into this one.
    if (meta->wal.Open(WalPath(name)).ok()) meta->wal.Truncate().ok();
  }
  {
    MutexLock lock(meta_mu_);
    metas_[name] = std::move(meta);
  }
  return EncodeFrame(MessageKind::kOk, "");
}

std::string TuningServer::HandleResumeSaved(const ConnPtr& conn,
                                            const std::string& name) {
  std::string tenant;
  {
    MutexLock lock(conn->mu);
    tenant = conn->tenant;
  }
  Status resumed = ResumeSavedSession(name, &tenant);
  if (!resumed.ok()) return ErrorReplyFrame(resumed);
  return EncodeFrame(MessageKind::kOk, "");
}

Status TuningServer::ResumeSavedSession(const std::string& name,
                                        const std::string* tenant_override) {
  if (options_.autosave_dir.empty()) {
    return Status::FailedPrecondition("server: autosave is not configured");
  }
  std::ifstream in(AutosavePath(name), std::ios::binary);
  if (!in) {
    return Status::NotFound("server: no autosave for session '" + name + "'");
  }
  std::ostringstream content;
  content << in.rdbuf();
  std::string text = content.str();
  size_t newline = text.find('\n');
  if (newline == std::string::npos) {
    return Status::Internal("server: corrupt autosave for '" + name + "'");
  }
  const std::string header = text.substr(0, newline);
  Result<WireSessionSpec> wire = DecodeSessionSpec(header);
  if (!wire.ok()) return wire.status();
  std::string checkpoint = text.substr(newline + 1);

  auto meta = std::make_shared<SessionMeta>();
  meta->spec = *wire;
  meta->tenant = tenant_override != nullptr ? *tenant_override
                                            : TenantFromAutosaveHeader(header);
  service::SessionSpec spec;
  Status built = BuildSessionSpec(meta->spec, &meta->owned_space, &spec);
  if (!built.ok()) return built;

  Status quota = ReserveTenantSlot(meta->tenant);
  if (!quota.ok()) return quota;
  Status resumed = service_.Resume(name, spec, checkpoint);
  if (!resumed.ok()) {
    ReleaseTenantSlot(meta->tenant);
    return resumed;
  }
  // The autosave restored every committed round; the WAL tail holds
  // whatever was told after that snapshot. Replay it before answering
  // so the caller sees the post-crash state. A replay error stops at
  // the last applicable record — the session is still a valid prefix
  // of its pre-crash history (loss ≤ the request in flight), so the
  // resume itself still succeeds.
  ReplayWal(name).ok();
  // Keep appending to the same WAL (no truncation: its records stay
  // idempotent under a second replay, and truncating here would widen
  // the window where a crash loses the tail).
  meta->wal.Open(WalPath(name)).ok();
  {
    MutexLock lock(meta_mu_);
    metas_[name] = std::move(meta);
  }
  return Status::OK();
}

void TuningServer::ResumeSavedStartupSweep() {
  DIR* dir = ::opendir(options_.autosave_dir.c_str());
  if (dir == nullptr) return;
  std::vector<std::string> names;
  for (dirent* entry = ::readdir(dir); entry != nullptr;
       entry = ::readdir(dir)) {
    const std::string file = entry->d_name;
    const std::string suffix = ".autosave";
    if (file.size() <= suffix.size() ||
        file.compare(file.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    Result<std::string> name =
        DecodeBytes(file.substr(0, file.size() - suffix.size()));
    if (name.ok()) names.push_back(*name);
  }
  ::closedir(dir);
  // Directory order is filesystem-dependent; sorted order makes the
  // sweep (and any quota contention inside it) deterministic.
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    if (service_.GetStatus(name).ok()) continue;  // already live
    if (ResumeSavedSession(name, nullptr).ok()) {
      sessions_restored_.fetch_add(1);
    }
  }
}

std::string TuningServer::HandleStartDrive(const std::string& name) {
  Result<service::SessionStatus> status = service_.GetStatus(name);
  if (!status.ok()) return ErrorReplyFrame(status.status());
  if (status->external) {
    return ErrorReplyFrame(Status::FailedPrecondition(
        "server: session '" + name +
        "' is caller-driven (space source); use Ask/Tell"));
  }
  MetaPtr meta;
  {
    MutexLock lock(meta_mu_);
    auto it = metas_.find(name);
    if (it != metas_.end()) meta = it->second;
  }
  if (meta == nullptr) {
    // Session created in-process through service(): still driveable,
    // just invisible to autosave (no wire spec to persist).
    meta = std::make_shared<SessionMeta>();
    MutexLock lock(meta_mu_);
    metas_.emplace(name, meta);
    meta = metas_[name];
  }
  if (meta->driving.exchange(true)) {
    return EncodeFrame(MessageKind::kOk, "");  // idempotent
  }
  TaskStarted();
  ThreadPool::Global().Submit([this, name, meta] { DriveStep(name, meta); });
  return EncodeFrame(MessageKind::kOk, "");
}

void TuningServer::DriveStep(const std::string& name, MetaPtr meta) {
  bool progressed = false;
  Status status = service_.Step(name, &progressed);
  // A drain lets the drive run to completion (its session autosaves in
  // the final sweep either way); only the forced teardown after the
  // drain deadline halts it mid-run.
  if (hard_stop_.load() || !status.ok() || !progressed) {
    meta->driving.store(false);
    TaskFinished();
    return;
  }
  // Requeue one step at a time instead of looping: on a small pool
  // this interleaves fairly with request handlers and other drives.
  ThreadPool::Global().Submit([this, name, meta = std::move(meta)] {
    DriveStep(name, std::move(meta));
  });
}

std::string TuningServer::HandleClose(const std::string& name) {
  Result<SessionResult> closed = service_.Close(name);
  if (!closed.ok()) return ErrorReplyFrame(closed.status());
  MetaPtr meta;
  {
    MutexLock lock(meta_mu_);
    auto it = metas_.find(name);
    if (it != metas_.end()) {
      meta = std::move(it->second);
      metas_.erase(it);
    }
  }
  if (meta != nullptr) {
    ReleaseTenantSlot(meta->tenant);
    if (!options_.autosave_dir.empty()) {
      meta->wal.Close();
      // Explicit close: done for good — drop both recovery artifacts.
      ::unlink(AutosavePath(name).c_str());
      ::unlink(WalPath(name).c_str());
    }
  }
  WireCloseResult result;
  result.iterations_run = closed->iterations_run;
  result.best_performance = closed->best_performance;
  result.default_performance = closed->default_performance;
  return EncodeFrame(MessageKind::kClosedReply, EncodeClosedReply(result));
}

Status TuningServer::BuildSessionSpec(const WireSessionSpec& wire,
                                      std::unique_ptr<ConfigSpace>* owned_space,
                                      service::SessionSpec* out) {
  if (!wire.workload.empty()) {
    Result<dbsim::WorkloadSpec> workload = dbsim::WorkloadByName(wire.workload);
    if (!workload.ok()) return workload.status();
    out->workload = *workload;
  } else {
    Result<ConfigSpace> space = ConfigSpace::Create(wire.space_knobs);
    if (!space.ok()) return space.status();
    *owned_space =
        std::make_unique<ConfigSpace>(std::move(space).ValueOrDie());
    out->space = owned_space->get();
    out->maximize = wire.maximize;
  }
  out->optimizer_key = wire.optimizer_key;
  out->adapter_key = wire.adapter_key;
  out->seed = wire.seed;
  out->num_iterations = wire.num_iterations;
  out->batch_size = wire.batch_size;
  out->num_threads = wire.num_threads;
  out->pending_deadline_ms = wire.pending_deadline_ms;
  if (wire.racing) {
    RacingOptions racing;
    racing.cohort = wire.racing_cohort;
    racing.rungs = wire.racing_rungs;
    racing.min_fidelity = wire.racing_min_fidelity;
    racing.eta = wire.racing_eta;
    racing.ci_z = wire.racing_ci_z;
    out->racing = racing;
  }
  return Status::OK();
}

Status TuningServer::ReserveTenantSlot(const std::string& tenant) {
  if (options_.max_sessions_per_tenant <= 0) return Status::OK();
  MutexLock lock(meta_mu_);
  int& count = tenant_sessions_[tenant];
  if (count >= options_.max_sessions_per_tenant) {
    return Status::ResourceExhausted(
        "tenant '" + tenant + "' is at its session quota (" +
        std::to_string(options_.max_sessions_per_tenant) + ")");
  }
  ++count;
  return Status::OK();
}

void TuningServer::ReleaseTenantSlot(const std::string& tenant) {
  if (options_.max_sessions_per_tenant <= 0) return;
  MutexLock lock(meta_mu_);
  auto it = tenant_sessions_.find(tenant);
  if (it != tenant_sessions_.end() && --it->second <= 0) {
    tenant_sessions_.erase(it);
  }
}

std::string TuningServer::AutosavePath(const std::string& name) const {
  // Hex-encode the session name so arbitrary names can't escape the
  // autosave directory or collide with each other's files.
  return options_.autosave_dir + "/" + EncodeBytes(name) + ".autosave";
}

std::string TuningServer::WalPath(const std::string& name) const {
  return options_.autosave_dir + "/" + EncodeBytes(name) + ".wal";
}

Status TuningServer::AutosaveSession(const std::string& name,
                                     const MetaPtr& meta) {
  // op_mu makes checkpoint + pending-count + WAL truncation one
  // atomic snapshot: no tell can commit between capturing the
  // checkpoint and deciding whether its WAL records may be dropped.
  MutexLock op_lock(meta->op_mu);
  Result<std::string> checkpoint = service_.Checkpoint(name);
  if (!checkpoint.ok()) return checkpoint.status();
  Result<service::SessionStatus> status = service_.GetStatus(name);
  if (!status.ok()) return status.status();
  std::string path = AutosavePath(name);
  std::string tmp = path + ".tmp";
  // The tenant rides as a trailing token on the spec line so a
  // hot-restart sweep can rebuild ownership; DecodeSessionSpec stops
  // at the spec, so pre-token readers still load the file.
  std::string content = EncodeSessionSpec(meta->spec) + " tenant x" +
                        EncodeBytes(meta->tenant) + '\n' + *checkpoint;
  // Chaos hook: die mid-write — half the bytes land in the tmp file
  // and the rename never happens. The previous autosave must stay
  // untouched and fully loadable (this is what tmp+rename buys).
  if (FaultInjection::ShouldFail("autosave.torn")) {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size() / 2));
    return Status::OK();
  }
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal("server: cannot write autosave tmp " + tmp);
    }
    out << content;
    if (!out.good()) {
      return Status::Internal("server: short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal(std::string("server: rename(): ") +
                            std::strerror(errno));
  }
  autosaves_written_.fetch_add(1);
  // The WAL may only shrink once everything it describes is inside a
  // durable checkpoint. A pending trial's ask record is not — its
  // round is uncommitted — so any pending trial blocks truncation
  // (the tail replays idempotently instead).
  if (meta->wal.is_open() && status->pending_trials == 0) {
    meta->wal.Truncate().ok();
  }
  return Status::OK();
}

void TuningServer::AutosaveSweep() {
  if (options_.autosave_dir.empty()) return;
  for (const service::SessionStatus& status : service_.ListSessions()) {
    MetaPtr meta;
    {
      MutexLock lock(meta_mu_);
      auto it = metas_.find(status.name);
      if (it != metas_.end()) meta = it->second;
    }
    // Only wire-created sessions carry a serializable spec; sessions
    // created in-process (or bare drive metas) cannot be autosaved.
    if (meta == nullptr ||
        (meta->spec.workload.empty() && meta->spec.space_knobs.empty())) {
      continue;
    }
    AutosaveSession(status.name, meta).ok();
  }
}

void TuningServer::EvictionSweep() {
  if (options_.idle_eviction_ms <= 0) return;
  int64_t now = service::NowUnixMillis();
  for (const service::SessionStatus& status : service_.ListSessions()) {
    MetaPtr meta;
    {
      MutexLock lock(meta_mu_);
      auto it = metas_.find(status.name);
      if (it != metas_.end()) meta = it->second;
    }
    // The server only evicts sessions it created over the wire.
    if (meta == nullptr || meta->driving.load()) continue;
    if (now - status.last_activity_unix_ms < options_.idle_eviction_ms) {
      continue;
    }
    if (!options_.autosave_dir.empty() &&
        !(meta->spec.workload.empty() && meta->spec.space_knobs.empty())) {
      AutosaveSession(status.name, meta).ok();
    }
    if (service_.Close(status.name).ok()) {
      sessions_evicted_.fetch_add(1);
      ReleaseTenantSlot(meta->tenant);
      MutexLock lock(meta_mu_);
      metas_.erase(status.name);
    }
  }
}

void TuningServer::RunMaintenance() {
  MutexLock lock(maintenance_mu_);
  ExpireSweep();
  AutosaveSweep();
  EvictionSweep();
}

void TuningServer::TaskStarted() {
  MutexLock lock(tasks_mu_);
  ++active_tasks_;
}

void TuningServer::TaskFinished() {
  MutexLock lock(tasks_mu_);
  --active_tasks_;
  tasks_cv_.NotifyAll();
}

int TuningServer::ActiveTasks() {
  MutexLock lock(tasks_mu_);
  return active_tasks_;
}

}  // namespace net
}  // namespace llamatune
