#include "src/net/message.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "src/common/serde.h"

namespace llamatune {
namespace net {

WireError WireErrorFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return WireError::kInternal;  // callers must not encode OK as error
    case StatusCode::kInvalidArgument:
      return WireError::kInvalidArgument;
    case StatusCode::kOutOfRange:
      return WireError::kOutOfRange;
    case StatusCode::kNotFound:
      return WireError::kNotFound;
    case StatusCode::kAlreadyExists:
      return WireError::kAlreadyExists;
    case StatusCode::kFailedPrecondition:
      return WireError::kFailedPrecondition;
    case StatusCode::kInternal:
      return WireError::kInternal;
    case StatusCode::kNotImplemented:
      return WireError::kNotImplemented;
    case StatusCode::kSessionNotFound:
      return WireError::kSessionNotFound;
    case StatusCode::kSessionAlreadyExists:
      return WireError::kSessionAlreadyExists;
    case StatusCode::kUnavailable:
      return WireError::kBusy;
    case StatusCode::kResourceExhausted:
      return WireError::kQuotaExceeded;
    case StatusCode::kTrialExpired:
      return WireError::kTrialExpired;
  }
  return WireError::kInternal;
}

Status StatusFromWireError(WireError code, std::string message) {
  switch (code) {
    case WireError::kMalformed:
      return Status::InvalidArgument(std::move(message));
    case WireError::kUnknownKind:
      return Status::NotImplemented(std::move(message));
    case WireError::kBadFrame:
      return Status::InvalidArgument(std::move(message));
    case WireError::kBusy:
      return Status::Unavailable(std::move(message));
    case WireError::kQuotaExceeded:
      return Status::ResourceExhausted(std::move(message));
    case WireError::kSessionNotFound:
      return Status::SessionNotFound(std::move(message));
    case WireError::kSessionAlreadyExists:
      return Status::SessionAlreadyExists(std::move(message));
    case WireError::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case WireError::kOutOfRange:
      return Status::OutOfRange(std::move(message));
    case WireError::kNotFound:
      return Status::NotFound(std::move(message));
    case WireError::kAlreadyExists:
      return Status::AlreadyExists(std::move(message));
    case WireError::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(message));
    case WireError::kInternal:
      return Status::Internal(std::move(message));
    case WireError::kNotImplemented:
      return Status::NotImplemented(std::move(message));
    case WireError::kShuttingDown:
      return Status::Unavailable(std::move(message));
    case WireError::kTrialExpired:
      return Status::TrialExpired(std::move(message));
    case WireError::kOverloaded:
      return Status::Unavailable(std::move(message));
  }
  return Status::Internal("unknown wire error code: " + std::move(message));
}

namespace {

/// Strings travel as one 'x'-prefixed hex token so that empty strings
/// and strings with whitespace survive the token stream.
void PutStr(std::ostringstream* out, const char* tag, const std::string& s) {
  *out << ' ' << tag << " x" << EncodeBytes(s);
}

Result<std::string> GetStr(std::istringstream* in, const char* tag) {
  std::string got_tag, token;
  if (!(*in >> got_tag >> token) || got_tag != tag) {
    return Status::InvalidArgument(std::string("wire: expected '") + tag +
                                   "' string field");
  }
  if (token.empty() || token[0] != 'x') {
    return Status::InvalidArgument(std::string("wire: field '") + tag +
                                   "' is not an x-prefixed hex token");
  }
  return DecodeBytes(token.substr(1));
}

void PutInt(std::ostringstream* out, const char* tag, int64_t value) {
  *out << ' ' << tag << ' ' << value;
}

Result<int64_t> GetInt(std::istringstream* in, const char* tag) {
  std::string got_tag, token;
  if (!(*in >> got_tag >> token) || got_tag != tag) {
    return Status::InvalidArgument(std::string("wire: expected '") + tag +
                                   "' integer field");
  }
  return ParseInt64(token);
}

void PutU64(std::ostringstream* out, const char* tag, uint64_t value) {
  *out << ' ' << tag << ' ' << value;
}

Result<uint64_t> GetU64(std::istringstream* in, const char* tag) {
  std::string got_tag, token;
  if (!(*in >> got_tag >> token) || got_tag != tag) {
    return Status::InvalidArgument(std::string("wire: expected '") + tag +
                                   "' u64 field");
  }
  if (token.empty()) return Status::InvalidArgument("wire: empty u64 token");
  errno = 0;
  char* end = nullptr;
  unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  if (errno != 0 || end != token.c_str() + token.size() || token[0] == '-') {
    return Status::InvalidArgument("wire: bad u64 token: " + token);
  }
  return static_cast<uint64_t>(value);
}

void PutBits(std::ostringstream* out, const char* tag, double value) {
  *out << ' ' << tag << ' ' << EncodeDoubleBits(value);
}

Result<double> GetBits(std::istringstream* in, const char* tag) {
  std::string got_tag, token;
  if (!(*in >> got_tag >> token) || got_tag != tag) {
    return Status::InvalidArgument(std::string("wire: expected '") + tag +
                                   "' double field");
  }
  return DecodeDoubleBits(token);
}

void PutBool(std::ostringstream* out, const char* tag, bool value) {
  PutInt(out, tag, value ? 1 : 0);
}

Result<bool> GetBool(std::istringstream* in, const char* tag) {
  Result<int64_t> value = GetInt(in, tag);
  if (!value.ok()) return value.status();
  return *value != 0;
}

/// Clamp untrusted element counts before reserve() (idiom of
/// src/core/trial.cc): a corrupt count must fail through the
/// truncated-stream path, not throw bad_alloc.
size_t ClampReserve(int64_t count) {
  return static_cast<size_t>(
      std::min<int64_t>(std::max<int64_t>(count, 0), 4096));
}

Result<std::string> DecodeHeaderName(std::istringstream* in,
                                     const char* header) {
  std::string tag;
  if (!(*in >> tag) || tag != header) {
    return Status::InvalidArgument(std::string("wire: expected '") + header +
                                   "' payload");
  }
  return GetStr(in, "name");
}

void EncodeKnob(std::ostringstream* out, const KnobSpec& knob) {
  *out << " knob";
  PutStr(out, "name", knob.name);
  PutInt(out, "type", static_cast<int>(knob.type));
  PutBits(out, "min", knob.min_value);
  PutBits(out, "max", knob.max_value);
  PutBool(out, "log", knob.log_scale);
  PutBits(out, "default", knob.default_value);
  PutInt(out, "cats", static_cast<int64_t>(knob.categories.size()));
  for (const std::string& category : knob.categories) {
    *out << " x" << EncodeBytes(category);
  }
  PutInt(out, "specials", static_cast<int64_t>(knob.special_values.size()));
  for (double value : knob.special_values) {
    *out << ' ' << EncodeDoubleBits(value);
  }
  PutStr(out, "unit", knob.unit);
}

Result<KnobSpec> DecodeKnob(std::istringstream* in) {
  std::string tag;
  if (!(*in >> tag) || tag != "knob") {
    return Status::InvalidArgument("wire: expected 'knob' entry");
  }
  KnobSpec knob;
  Result<std::string> name = GetStr(in, "name");
  if (!name.ok()) return name.status();
  knob.name = *name;
  Result<int64_t> type = GetInt(in, "type");
  if (!type.ok()) return type.status();
  if (*type < 0 || *type > static_cast<int>(KnobType::kCategorical)) {
    return Status::InvalidArgument("wire: bad knob type " +
                                   std::to_string(*type));
  }
  knob.type = static_cast<KnobType>(*type);
  Result<double> min_value = GetBits(in, "min");
  if (!min_value.ok()) return min_value.status();
  knob.min_value = *min_value;
  Result<double> max_value = GetBits(in, "max");
  if (!max_value.ok()) return max_value.status();
  knob.max_value = *max_value;
  Result<bool> log_scale = GetBool(in, "log");
  if (!log_scale.ok()) return log_scale.status();
  knob.log_scale = *log_scale;
  Result<double> default_value = GetBits(in, "default");
  if (!default_value.ok()) return default_value.status();
  knob.default_value = *default_value;

  Result<int64_t> num_categories = GetInt(in, "cats");
  if (!num_categories.ok()) return num_categories.status();
  knob.categories.reserve(ClampReserve(*num_categories));
  for (int64_t i = 0; i < *num_categories; ++i) {
    std::string token;
    if (!(*in >> token) || token.empty() || token[0] != 'x') {
      return Status::InvalidArgument("wire: truncated knob categories");
    }
    Result<std::string> category = DecodeBytes(token.substr(1));
    if (!category.ok()) return category.status();
    knob.categories.push_back(*category);
  }

  Result<int64_t> num_specials = GetInt(in, "specials");
  if (!num_specials.ok()) return num_specials.status();
  knob.special_values.reserve(ClampReserve(*num_specials));
  for (int64_t i = 0; i < *num_specials; ++i) {
    std::string token;
    if (!(*in >> token)) {
      return Status::InvalidArgument("wire: truncated knob special values");
    }
    Result<double> value = DecodeDoubleBits(token);
    if (!value.ok()) return value.status();
    knob.special_values.push_back(*value);
  }

  Result<std::string> unit = GetStr(in, "unit");
  if (!unit.ok()) return unit.status();
  knob.unit = *unit;
  return knob;
}

void EncodeSpecInto(std::ostringstream* out, const WireSessionSpec& spec) {
  *out << " spec 3";
  PutStr(out, "workload", spec.workload);
  PutInt(out, "knobs", static_cast<int64_t>(spec.space_knobs.size()));
  for (const KnobSpec& knob : spec.space_knobs) EncodeKnob(out, knob);
  PutBool(out, "maximize", spec.maximize);
  PutStr(out, "optimizer", spec.optimizer_key);
  PutStr(out, "adapter", spec.adapter_key);
  PutU64(out, "seed", spec.seed);
  PutInt(out, "iterations", spec.num_iterations);
  PutInt(out, "batch", spec.batch_size);
  PutInt(out, "threads", spec.num_threads);
  PutInt(out, "deadline", spec.pending_deadline_ms);
  PutBool(out, "racing", spec.racing);
  if (spec.racing) {
    PutInt(out, "cohort", spec.racing_cohort);
    PutInt(out, "rungs", spec.racing_rungs);
    PutBits(out, "minfid", spec.racing_min_fidelity);
    PutBits(out, "eta", spec.racing_eta);
    PutBits(out, "ciz", spec.racing_ci_z);
  }
}

Result<WireSessionSpec> DecodeSpecFrom(std::istringstream* in) {
  // v2 appended the pending-deadline field, v3 the racing block; v1/v2
  // payloads (older peers, pre-upgrade autosave files) still decode,
  // with the deadline at 0 and racing off.
  std::string tag, version;
  if (!(*in >> tag >> version) || tag != "spec" ||
      (version != "1" && version != "2" && version != "3")) {
    return Status::InvalidArgument("wire: expected 'spec 1|2|3' section");
  }
  WireSessionSpec spec;
  Result<std::string> workload = GetStr(in, "workload");
  if (!workload.ok()) return workload.status();
  spec.workload = *workload;
  Result<int64_t> num_knobs = GetInt(in, "knobs");
  if (!num_knobs.ok()) return num_knobs.status();
  spec.space_knobs.reserve(ClampReserve(*num_knobs));
  for (int64_t i = 0; i < *num_knobs; ++i) {
    Result<KnobSpec> knob = DecodeKnob(in);
    if (!knob.ok()) return knob.status();
    spec.space_knobs.push_back(std::move(knob).ValueOrDie());
  }
  if (spec.workload.empty() == spec.space_knobs.empty()) {
    return Status::InvalidArgument(
        "wire: spec must carry exactly one source (workload name or knob "
        "space)");
  }
  Result<bool> maximize = GetBool(in, "maximize");
  if (!maximize.ok()) return maximize.status();
  spec.maximize = *maximize;
  Result<std::string> optimizer = GetStr(in, "optimizer");
  if (!optimizer.ok()) return optimizer.status();
  spec.optimizer_key = *optimizer;
  Result<std::string> adapter = GetStr(in, "adapter");
  if (!adapter.ok()) return adapter.status();
  spec.adapter_key = *adapter;
  Result<uint64_t> seed = GetU64(in, "seed");
  if (!seed.ok()) return seed.status();
  spec.seed = *seed;
  Result<int64_t> iterations = GetInt(in, "iterations");
  if (!iterations.ok()) return iterations.status();
  spec.num_iterations = static_cast<int>(*iterations);
  Result<int64_t> batch = GetInt(in, "batch");
  if (!batch.ok()) return batch.status();
  spec.batch_size = static_cast<int>(*batch);
  Result<int64_t> threads = GetInt(in, "threads");
  if (!threads.ok()) return threads.status();
  spec.num_threads = static_cast<int>(*threads);
  if (version == "2" || version == "3") {
    Result<int64_t> deadline = GetInt(in, "deadline");
    if (!deadline.ok()) return deadline.status();
    spec.pending_deadline_ms = *deadline;
  }
  if (version == "3") {
    Result<bool> racing = GetBool(in, "racing");
    if (!racing.ok()) return racing.status();
    spec.racing = *racing;
    if (spec.racing) {
      Result<int64_t> cohort = GetInt(in, "cohort");
      if (!cohort.ok()) return cohort.status();
      spec.racing_cohort = static_cast<int>(*cohort);
      Result<int64_t> rungs = GetInt(in, "rungs");
      if (!rungs.ok()) return rungs.status();
      spec.racing_rungs = static_cast<int>(*rungs);
      Result<double> minfid = GetBits(in, "minfid");
      if (!minfid.ok()) return minfid.status();
      spec.racing_min_fidelity = *minfid;
      Result<double> eta = GetBits(in, "eta");
      if (!eta.ok()) return eta.status();
      spec.racing_eta = *eta;
      Result<double> ciz = GetBits(in, "ciz");
      if (!ciz.ok()) return ciz.status();
      spec.racing_ci_z = *ciz;
    }
  }
  return spec;
}

void EncodeStatusInto(std::ostringstream* out, const WireSessionStatus& s) {
  *out << " status";
  PutStr(out, "name", s.status.name);
  PutStr(out, "optimizer", s.status.optimizer_key);
  PutStr(out, "adapter", s.status.adapter_key);
  PutBool(out, "external", s.status.external);
  PutInt(out, "iters", s.status.iterations_run);
  PutInt(out, "total", s.status.num_iterations);
  PutInt(out, "pending", s.status.pending_trials);
  PutBool(out, "finished", s.status.finished);
  PutBits(out, "defperf", s.status.default_performance);
  PutBits(out, "bestperf", s.status.best_performance);
  PutInt(out, "created", s.status.created_unix_ms);
  PutInt(out, "active", s.status.last_activity_unix_ms);
  PutBool(out, "driving", s.driving);
}

Result<WireSessionStatus> DecodeStatusFrom(std::istringstream* in) {
  std::string tag;
  if (!(*in >> tag) || tag != "status") {
    return Status::InvalidArgument("wire: expected 'status' section");
  }
  WireSessionStatus out;
  Result<std::string> name = GetStr(in, "name");
  if (!name.ok()) return name.status();
  out.status.name = *name;
  Result<std::string> optimizer = GetStr(in, "optimizer");
  if (!optimizer.ok()) return optimizer.status();
  out.status.optimizer_key = *optimizer;
  Result<std::string> adapter = GetStr(in, "adapter");
  if (!adapter.ok()) return adapter.status();
  out.status.adapter_key = *adapter;
  Result<bool> external = GetBool(in, "external");
  if (!external.ok()) return external.status();
  out.status.external = *external;
  Result<int64_t> iters = GetInt(in, "iters");
  if (!iters.ok()) return iters.status();
  out.status.iterations_run = static_cast<int>(*iters);
  Result<int64_t> total = GetInt(in, "total");
  if (!total.ok()) return total.status();
  out.status.num_iterations = static_cast<int>(*total);
  Result<int64_t> pending = GetInt(in, "pending");
  if (!pending.ok()) return pending.status();
  out.status.pending_trials = static_cast<int>(*pending);
  Result<bool> finished = GetBool(in, "finished");
  if (!finished.ok()) return finished.status();
  out.status.finished = *finished;
  Result<double> defperf = GetBits(in, "defperf");
  if (!defperf.ok()) return defperf.status();
  out.status.default_performance = *defperf;
  Result<double> bestperf = GetBits(in, "bestperf");
  if (!bestperf.ok()) return bestperf.status();
  out.status.best_performance = *bestperf;
  Result<int64_t> created = GetInt(in, "created");
  if (!created.ok()) return created.status();
  out.status.created_unix_ms = *created;
  Result<int64_t> active = GetInt(in, "active");
  if (!active.ok()) return active.status();
  out.status.last_activity_unix_ms = *active;
  Result<bool> driving = GetBool(in, "driving");
  if (!driving.ok()) return driving.status();
  out.driving = *driving;
  return out;
}

}  // namespace

std::string EncodeHello(const std::string& tenant) {
  std::ostringstream out;
  out << "hello";
  PutStr(&out, "tenant", tenant);
  return out.str();
}

Result<std::string> DecodeHello(const std::string& payload) {
  std::istringstream in(payload);
  std::string tag;
  if (!(in >> tag) || tag != "hello") {
    return Status::InvalidArgument("wire: expected 'hello' payload");
  }
  return GetStr(&in, "tenant");
}

std::string EncodeSessionSpec(const WireSessionSpec& spec) {
  std::ostringstream out;
  out << "specdoc";
  EncodeSpecInto(&out, spec);
  return out.str();
}

Result<WireSessionSpec> DecodeSessionSpec(const std::string& payload) {
  std::istringstream in(payload);
  std::string tag;
  if (!(in >> tag) || tag != "specdoc") {
    return Status::InvalidArgument("wire: expected 'specdoc' payload");
  }
  return DecodeSpecFrom(&in);
}

std::string EncodeCreateSession(const std::string& name,
                                const WireSessionSpec& spec) {
  std::ostringstream out;
  out << "create";
  PutStr(&out, "name", name);
  EncodeSpecInto(&out, spec);
  return out.str();
}

Status DecodeCreateSession(const std::string& payload, std::string* name,
                           WireSessionSpec* spec) {
  std::istringstream in(payload);
  Result<std::string> got_name = DecodeHeaderName(&in, "create");
  if (!got_name.ok()) return got_name.status();
  Result<WireSessionSpec> got_spec = DecodeSpecFrom(&in);
  if (!got_spec.ok()) return got_spec.status();
  *name = *got_name;
  *spec = std::move(got_spec).ValueOrDie();
  return Status::OK();
}

std::string EncodeResume(const std::string& name, const WireSessionSpec& spec,
                         const std::string& checkpoint) {
  std::ostringstream out;
  out << "resume";
  PutStr(&out, "name", name);
  PutStr(&out, "checkpoint", checkpoint);
  EncodeSpecInto(&out, spec);
  return out.str();
}

Status DecodeResume(const std::string& payload, std::string* name,
                    WireSessionSpec* spec, std::string* checkpoint) {
  std::istringstream in(payload);
  Result<std::string> got_name = DecodeHeaderName(&in, "resume");
  if (!got_name.ok()) return got_name.status();
  Result<std::string> got_checkpoint = GetStr(&in, "checkpoint");
  if (!got_checkpoint.ok()) return got_checkpoint.status();
  Result<WireSessionSpec> got_spec = DecodeSpecFrom(&in);
  if (!got_spec.ok()) return got_spec.status();
  *name = *got_name;
  *checkpoint = std::move(got_checkpoint).ValueOrDie();
  *spec = std::move(got_spec).ValueOrDie();
  return Status::OK();
}

std::string EncodeNameOnly(const std::string& name) {
  std::ostringstream out;
  out << "session";
  PutStr(&out, "name", name);
  return out.str();
}

Result<std::string> DecodeNameOnly(const std::string& payload) {
  std::istringstream in(payload);
  return DecodeHeaderName(&in, "session");
}

std::string EncodeAskBatch(const std::string& name, int n) {
  std::ostringstream out;
  out << "askbatch";
  PutStr(&out, "name", name);
  PutInt(&out, "n", n);
  return out.str();
}

Status DecodeAskBatch(const std::string& payload, std::string* name, int* n) {
  std::istringstream in(payload);
  Result<std::string> got_name = DecodeHeaderName(&in, "askbatch");
  if (!got_name.ok()) return got_name.status();
  Result<int64_t> got_n = GetInt(&in, "n");
  if (!got_n.ok()) return got_n.status();
  *name = *got_name;
  *n = static_cast<int>(*got_n);
  return Status::OK();
}

std::string EncodeTell(const std::string& name, const TrialResult& result) {
  std::ostringstream out;
  out << "tell";
  PutStr(&out, "name", name);
  PutStr(&out, "result", SerializeTrialResult(result));
  return out.str();
}

Status DecodeTell(const std::string& payload, std::string* name,
                  TrialResult* result) {
  std::istringstream in(payload);
  Result<std::string> got_name = DecodeHeaderName(&in, "tell");
  if (!got_name.ok()) return got_name.status();
  Result<std::string> line = GetStr(&in, "result");
  if (!line.ok()) return line.status();
  Result<TrialResult> got_result = ParseTrialResult(*line);
  if (!got_result.ok()) return got_result.status();
  *name = *got_name;
  *result = std::move(got_result).ValueOrDie();
  return Status::OK();
}

std::string EncodeTellBatch(const std::string& name,
                            const std::vector<TrialResult>& results) {
  std::ostringstream out;
  out << "tellbatch";
  PutStr(&out, "name", name);
  PutInt(&out, "n", static_cast<int64_t>(results.size()));
  for (const TrialResult& result : results) {
    out << " x" << EncodeBytes(SerializeTrialResult(result));
  }
  return out.str();
}

Status DecodeTellBatch(const std::string& payload, std::string* name,
                       std::vector<TrialResult>* results) {
  std::istringstream in(payload);
  Result<std::string> got_name = DecodeHeaderName(&in, "tellbatch");
  if (!got_name.ok()) return got_name.status();
  Result<int64_t> n = GetInt(&in, "n");
  if (!n.ok()) return n.status();
  std::vector<TrialResult> out;
  out.reserve(ClampReserve(*n));
  for (int64_t i = 0; i < *n; ++i) {
    std::string token;
    if (!(in >> token) || token.empty() || token[0] != 'x') {
      return Status::InvalidArgument("wire: truncated tellbatch results");
    }
    Result<std::string> line = DecodeBytes(token.substr(1));
    if (!line.ok()) return line.status();
    Result<TrialResult> result = ParseTrialResult(*line);
    if (!result.ok()) return result.status();
    out.push_back(std::move(result).ValueOrDie());
  }
  *name = *got_name;
  *results = std::move(out);
  return Status::OK();
}

std::string EncodeError(WireError code, const std::string& message,
                        int64_t retry_after_ms) {
  std::ostringstream out;
  out << "error";
  PutInt(&out, "code", static_cast<int>(code));
  PutStr(&out, "message", message);
  // Optional trailing hint: pre-hint decoders stop after 'message' and
  // never see it (the append-only payload evolution rule).
  if (retry_after_ms > 0) PutInt(&out, "retryms", retry_after_ms);
  return out.str();
}

Status DecodeError(const std::string& payload, WireError* code,
                   std::string* message, int64_t* retry_after_ms) {
  std::istringstream in(payload);
  std::string tag;
  if (!(in >> tag) || tag != "error") {
    return Status::InvalidArgument("wire: expected 'error' payload");
  }
  Result<int64_t> got_code = GetInt(&in, "code");
  if (!got_code.ok()) return got_code.status();
  Result<std::string> got_message = GetStr(&in, "message");
  if (!got_message.ok()) return got_message.status();
  if (retry_after_ms != nullptr) {
    *retry_after_ms = 0;
    Result<int64_t> hint = GetInt(&in, "retryms");
    if (hint.ok() && *hint > 0) *retry_after_ms = *hint;
  }
  *code = static_cast<WireError>(*got_code);
  *message = *got_message;
  return Status::OK();
}

std::string EncodeTrialReply(const Trial& trial) {
  std::ostringstream out;
  out << "trialreply";
  PutStr(&out, "trial", SerializeTrial(trial));
  return out.str();
}

Result<Trial> DecodeTrialReply(const std::string& payload) {
  std::istringstream in(payload);
  std::string tag;
  if (!(in >> tag) || tag != "trialreply") {
    return Status::InvalidArgument("wire: expected 'trialreply' payload");
  }
  Result<std::string> line = GetStr(&in, "trial");
  if (!line.ok()) return line.status();
  return ParseTrial(*line);
}

std::string EncodeTrialsReply(const std::vector<Trial>& trials) {
  std::ostringstream out;
  out << "trialsreply";
  PutInt(&out, "n", static_cast<int64_t>(trials.size()));
  for (const Trial& trial : trials) {
    out << " x" << EncodeBytes(SerializeTrial(trial));
  }
  return out.str();
}

Result<std::vector<Trial>> DecodeTrialsReply(const std::string& payload) {
  std::istringstream in(payload);
  std::string tag;
  if (!(in >> tag) || tag != "trialsreply") {
    return Status::InvalidArgument("wire: expected 'trialsreply' payload");
  }
  Result<int64_t> n = GetInt(&in, "n");
  if (!n.ok()) return n.status();
  std::vector<Trial> trials;
  trials.reserve(ClampReserve(*n));
  for (int64_t i = 0; i < *n; ++i) {
    std::string token;
    if (!(in >> token) || token.empty() || token[0] != 'x') {
      return Status::InvalidArgument("wire: truncated trials reply");
    }
    Result<std::string> line = DecodeBytes(token.substr(1));
    if (!line.ok()) return line.status();
    Result<Trial> trial = ParseTrial(*line);
    if (!trial.ok()) return trial.status();
    trials.push_back(std::move(trial).ValueOrDie());
  }
  return trials;
}

std::string EncodeSteppedReply(bool progressed) {
  std::ostringstream out;
  out << "stepped";
  PutBool(&out, "progressed", progressed);
  return out.str();
}

Result<bool> DecodeSteppedReply(const std::string& payload) {
  std::istringstream in(payload);
  std::string tag;
  if (!(in >> tag) || tag != "stepped") {
    return Status::InvalidArgument("wire: expected 'stepped' payload");
  }
  return GetBool(&in, "progressed");
}

std::string EncodeStatusReply(const WireSessionStatus& status) {
  std::ostringstream out;
  out << "statusreply";
  EncodeStatusInto(&out, status);
  return out.str();
}

Result<WireSessionStatus> DecodeStatusReply(const std::string& payload) {
  std::istringstream in(payload);
  std::string tag;
  if (!(in >> tag) || tag != "statusreply") {
    return Status::InvalidArgument("wire: expected 'statusreply' payload");
  }
  return DecodeStatusFrom(&in);
}

std::string EncodeStatusListReply(const std::vector<WireSessionStatus>& list) {
  std::ostringstream out;
  out << "statuslist";
  PutInt(&out, "n", static_cast<int64_t>(list.size()));
  for (const WireSessionStatus& status : list) {
    EncodeStatusInto(&out, status);
  }
  return out.str();
}

Result<std::vector<WireSessionStatus>> DecodeStatusListReply(
    const std::string& payload) {
  std::istringstream in(payload);
  std::string tag;
  if (!(in >> tag) || tag != "statuslist") {
    return Status::InvalidArgument("wire: expected 'statuslist' payload");
  }
  Result<int64_t> n = GetInt(&in, "n");
  if (!n.ok()) return n.status();
  std::vector<WireSessionStatus> list;
  list.reserve(ClampReserve(*n));
  for (int64_t i = 0; i < *n; ++i) {
    Result<WireSessionStatus> status = DecodeStatusFrom(&in);
    if (!status.ok()) return status.status();
    list.push_back(std::move(status).ValueOrDie());
  }
  return list;
}

std::string EncodeCheckpointReply(const std::string& checkpoint) {
  std::ostringstream out;
  out << "checkpointreply";
  PutStr(&out, "checkpoint", checkpoint);
  return out.str();
}

Result<std::string> DecodeCheckpointReply(const std::string& payload) {
  std::istringstream in(payload);
  std::string tag;
  if (!(in >> tag) || tag != "checkpointreply") {
    return Status::InvalidArgument("wire: expected 'checkpointreply' payload");
  }
  return GetStr(&in, "checkpoint");
}

std::string EncodeClosedReply(const WireCloseResult& result) {
  std::ostringstream out;
  out << "closed";
  PutInt(&out, "iterations", result.iterations_run);
  PutBits(&out, "best", result.best_performance);
  PutBits(&out, "default", result.default_performance);
  return out.str();
}

Result<WireCloseResult> DecodeClosedReply(const std::string& payload) {
  std::istringstream in(payload);
  std::string tag;
  if (!(in >> tag) || tag != "closed") {
    return Status::InvalidArgument("wire: expected 'closed' payload");
  }
  WireCloseResult result;
  Result<int64_t> iterations = GetInt(&in, "iterations");
  if (!iterations.ok()) return iterations.status();
  result.iterations_run = static_cast<int>(*iterations);
  Result<double> best = GetBits(&in, "best");
  if (!best.ok()) return best.status();
  result.best_performance = *best;
  Result<double> default_performance = GetBits(&in, "default");
  if (!default_performance.ok()) return default_performance.status();
  result.default_performance = *default_performance;
  return result;
}

std::string EncodePendingReply(int64_t next_trial_id,
                               const std::vector<Trial>& trials) {
  std::ostringstream out;
  out << "pendingreply";
  PutInt(&out, "next", next_trial_id);
  PutInt(&out, "n", static_cast<int64_t>(trials.size()));
  for (const Trial& trial : trials) {
    out << " x" << EncodeBytes(SerializeTrial(trial));
  }
  return out.str();
}

Status DecodePendingReply(const std::string& payload, int64_t* next_trial_id,
                          std::vector<Trial>* trials) {
  std::istringstream in(payload);
  std::string tag;
  if (!(in >> tag) || tag != "pendingreply") {
    return Status::InvalidArgument("wire: expected 'pendingreply' payload");
  }
  Result<int64_t> next = GetInt(&in, "next");
  if (!next.ok()) return next.status();
  Result<int64_t> n = GetInt(&in, "n");
  if (!n.ok()) return n.status();
  std::vector<Trial> out;
  out.reserve(ClampReserve(*n));
  for (int64_t i = 0; i < *n; ++i) {
    std::string token;
    if (!(in >> token) || token.empty() || token[0] != 'x') {
      return Status::InvalidArgument("wire: truncated pending reply");
    }
    Result<std::string> line = DecodeBytes(token.substr(1));
    if (!line.ok()) return line.status();
    Result<Trial> trial = ParseTrial(*line);
    if (!trial.ok()) return trial.status();
    out.push_back(std::move(trial).ValueOrDie());
  }
  *next_trial_id = *next;
  *trials = std::move(out);
  return Status::OK();
}

namespace {

Result<ServerLifecycle> GetLifecycle(std::istringstream* in) {
  Result<int64_t> raw = GetInt(in, "lifecycle");
  if (!raw.ok()) return raw.status();
  if (*raw < 0 || *raw > static_cast<int64_t>(ServerLifecycle::kStopped)) {
    return Status::InvalidArgument("wire: unknown lifecycle state");
  }
  return static_cast<ServerLifecycle>(*raw);
}

}  // namespace

std::string EncodeHealthReply(const WireServerHealth& health) {
  std::ostringstream out;
  out << "health";
  PutInt(&out, "lifecycle", static_cast<int>(health.lifecycle));
  PutInt(&out, "pending", health.pending_requests);
  PutInt(&out, "sessions", health.sessions);
  return out.str();
}

Result<WireServerHealth> DecodeHealthReply(const std::string& payload) {
  std::istringstream in(payload);
  std::string tag;
  if (!(in >> tag) || tag != "health") {
    return Status::InvalidArgument("wire: expected 'health' payload");
  }
  WireServerHealth health;
  Result<ServerLifecycle> lifecycle = GetLifecycle(&in);
  if (!lifecycle.ok()) return lifecycle.status();
  health.lifecycle = *lifecycle;
  Result<int64_t> pending = GetInt(&in, "pending");
  if (!pending.ok()) return pending.status();
  health.pending_requests = *pending;
  Result<int64_t> sessions = GetInt(&in, "sessions");
  if (!sessions.ok()) return sessions.status();
  health.sessions = *sessions;
  return health;
}

std::string EncodeStatsReply(const WireServerStats& stats) {
  std::ostringstream out;
  out << "stats";
  PutInt(&out, "lifecycle", static_cast<int>(stats.lifecycle));
  PutInt(&out, "pending", stats.pending_requests);
  PutInt(&out, "pendingexp", stats.pending_expensive);
  PutInt(&out, "sessions", stats.sessions);
  PutInt(&out, "busy", stats.busy_rejections);
  PutInt(&out, "shedover", stats.shed_overload);
  PutInt(&out, "shedddl", stats.shed_deadline);
  PutInt(&out, "evicted", stats.sessions_evicted);
  PutInt(&out, "autosaves", stats.autosaves_written);
  PutInt(&out, "restored", stats.sessions_restored);
  PutInt(&out, "tenants", static_cast<int64_t>(stats.tenant_sessions.size()));
  for (const auto& [tenant, count] : stats.tenant_sessions) {
    out << " x" << EncodeBytes(tenant) << ' ' << count;
  }
  return out.str();
}

Result<WireServerStats> DecodeStatsReply(const std::string& payload) {
  std::istringstream in(payload);
  std::string tag;
  if (!(in >> tag) || tag != "stats") {
    return Status::InvalidArgument("wire: expected 'stats' payload");
  }
  WireServerStats stats;
  Result<ServerLifecycle> lifecycle = GetLifecycle(&in);
  if (!lifecycle.ok()) return lifecycle.status();
  stats.lifecycle = *lifecycle;
  struct Field {
    const char* tag;
    int64_t* dst;
  };
  const Field fields[] = {
      {"pending", &stats.pending_requests},
      {"pendingexp", &stats.pending_expensive},
      {"sessions", &stats.sessions},
      {"busy", &stats.busy_rejections},
      {"shedover", &stats.shed_overload},
      {"shedddl", &stats.shed_deadline},
      {"evicted", &stats.sessions_evicted},
      {"autosaves", &stats.autosaves_written},
      {"restored", &stats.sessions_restored},
  };
  for (const Field& field : fields) {
    Result<int64_t> value = GetInt(&in, field.tag);
    if (!value.ok()) return value.status();
    *field.dst = *value;
  }
  Result<int64_t> tenants = GetInt(&in, "tenants");
  if (!tenants.ok()) return tenants.status();
  stats.tenant_sessions.reserve(ClampReserve(*tenants));
  for (int64_t i = 0; i < *tenants; ++i) {
    std::string token, count_token;
    if (!(in >> token >> count_token) || token.empty() || token[0] != 'x') {
      return Status::InvalidArgument("wire: truncated tenant stats");
    }
    Result<std::string> tenant = DecodeBytes(token.substr(1));
    if (!tenant.ok()) return tenant.status();
    Result<int64_t> count = ParseInt64(count_token);
    if (!count.ok()) return count.status();
    stats.tenant_sessions.emplace_back(*tenant, *count);
  }
  return stats;
}

void AppendDeadlineRider(std::string* payload, int64_t deadline_ms) {
  if (deadline_ms <= 0) return;
  std::ostringstream out;
  PutInt(&out, "ddl", deadline_ms);
  *payload += out.str();
}

int64_t DeadlineRiderMs(const std::string& payload) {
  // The rider is the last two whitespace-delimited tokens: 'ddl' N.
  // Scanning from the tail keeps this O(rider) on large payloads.
  size_t end = payload.find_last_not_of(" \t\n");
  if (end == std::string::npos) return 0;
  size_t value_start = payload.find_last_of(" \t\n", end);
  if (value_start == std::string::npos) return 0;
  size_t tag_end = payload.find_last_not_of(" \t\n", value_start);
  if (tag_end == std::string::npos) return 0;
  size_t tag_start = payload.find_last_of(" \t\n", tag_end);
  size_t tag_from = tag_start == std::string::npos ? 0 : tag_start + 1;
  if (payload.compare(tag_from, tag_end - tag_from + 1, "ddl") != 0) return 0;
  Result<int64_t> value =
      ParseInt64(payload.substr(value_start + 1, end - value_start));
  if (!value.ok() || *value <= 0) return 0;
  return *value;
}

}  // namespace net
}  // namespace llamatune
