#include "src/projection/rembo.h"

#include <cmath>

#include "src/common/math_util.h"
#include "src/common/rng.h"

namespace llamatune {

RemboProjection::RemboProjection(int high_dim, int low_dim, uint64_t seed)
    : high_dim_(high_dim), low_dim_(low_dim) {
  Rng rng(seed);
  matrix_.assign(high_dim_, std::vector<double>(low_dim_, 0.0));
  for (int i = 0; i < high_dim_; ++i) {
    for (int j = 0; j < low_dim_; ++j) {
      matrix_[i][j] = rng.Gaussian();
    }
  }
}

std::vector<double> RemboProjection::Project(
    const std::vector<double>& p) const {
  std::vector<double> out(high_dim_, 0.0);
  for (int i = 0; i < high_dim_; ++i) {
    double acc = 0.0;
    for (int j = 0; j < low_dim_; ++j) acc += matrix_[i][j] * p[j];
    out[i] = Clamp(acc, -1.0, 1.0);
  }
  return out;
}

SearchSpace RemboProjection::LowDimSpace() const {
  double bound = std::sqrt(static_cast<double>(low_dim_));
  std::vector<SearchDim> dims(low_dim_, SearchDim::Continuous(-bound, bound));
  return SearchSpace(std::move(dims));
}

double RemboProjection::ClippedFraction(const std::vector<double>& p) const {
  std::vector<double> projected = Project(p);
  int clipped = 0;
  for (double v : projected) {
    if (v == -1.0 || v == 1.0) ++clipped;
  }
  return static_cast<double>(clipped) / static_cast<double>(high_dim_);
}

}  // namespace llamatune
