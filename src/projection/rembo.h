#pragma once

#include <cstdint>
#include <vector>

#include "src/projection/projection.h"

namespace llamatune {

/// \brief REMBO random embedding (Wang et al. 2016).
///
/// The low-dimensional space is X_d = [-sqrt(d), sqrt(d)]^d and the
/// projection matrix A (D x d) has i.i.d. N(0,1) entries. Projected
/// points Ap that leave [-1,1]^D are clipped per-coordinate — the
/// behaviour responsible for REMBO's weakness on interior optima
/// (paper §3.2, Fig. 3): most points end up on the facets of X_D.
class RemboProjection : public Projection {
 public:
  RemboProjection(int high_dim, int low_dim, uint64_t seed);

  int low_dim() const override { return low_dim_; }
  int high_dim() const override { return high_dim_; }
  std::vector<double> Project(const std::vector<double>& p) const override;
  SearchSpace LowDimSpace() const override;
  std::string name() const override { return "REMBO"; }

  /// Fraction of coordinates of Project(p) that sit exactly on the
  /// [-1,1] boundary — instrumentation for the clipping pathology.
  double ClippedFraction(const std::vector<double>& p) const;

 private:
  int high_dim_;
  int low_dim_;
  std::vector<std::vector<double>> matrix_;  // D rows x d cols
};

}  // namespace llamatune
