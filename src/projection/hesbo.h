#pragma once

#include <cstdint>
#include <vector>

#include "src/projection/projection.h"

namespace llamatune {

/// \brief HeSBO count-sketch embedding (Nayebi, Munteanu & Poloczek 2019).
///
/// The low-dimensional space is X_d = [-1, 1]^d. Each high-dimensional
/// coordinate i is controlled by exactly one synthetic knob h(i) with a
/// random sign sigma(i): Project(p)[i] = sigma(i) * p[h(i)]. Because
/// every output coordinate is a signed copy of an in-range input
/// coordinate, the projection can never leave [-1,1]^D — no clipping,
/// interior points stay reachable (paper §3.2).
class HesboProjection : public Projection {
 public:
  HesboProjection(int high_dim, int low_dim, uint64_t seed);

  int low_dim() const override { return low_dim_; }
  int high_dim() const override { return high_dim_; }
  std::vector<double> Project(const std::vector<double>& p) const override;
  SearchSpace LowDimSpace() const override;
  std::string name() const override { return "HeSBO"; }

  /// The synthetic knob h(i) controlling high-dim coordinate i.
  int bucket(int i) const { return h_[i]; }
  /// The sign sigma(i) applied to high-dim coordinate i.
  int sign(int i) const { return sigma_[i]; }

 private:
  int high_dim_;
  int low_dim_;
  std::vector<int> h_;      // size D, values in [0, d)
  std::vector<int> sigma_;  // size D, values in {-1, +1}
};

}  // namespace llamatune
