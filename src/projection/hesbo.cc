#include "src/projection/hesbo.h"

#include "src/common/rng.h"

namespace llamatune {

HesboProjection::HesboProjection(int high_dim, int low_dim, uint64_t seed)
    : high_dim_(high_dim), low_dim_(low_dim) {
  Rng rng(seed);
  h_.resize(high_dim_);
  sigma_.resize(high_dim_);
  for (int i = 0; i < high_dim_; ++i) {
    h_[i] = static_cast<int>(rng.UniformInt(0, low_dim_ - 1));
    sigma_[i] = rng.Bernoulli(0.5) ? 1 : -1;
  }
}

std::vector<double> HesboProjection::Project(
    const std::vector<double>& p) const {
  std::vector<double> out(high_dim_, 0.0);
  for (int i = 0; i < high_dim_; ++i) {
    out[i] = static_cast<double>(sigma_[i]) * p[h_[i]];
  }
  return out;
}

SearchSpace HesboProjection::LowDimSpace() const {
  std::vector<SearchDim> dims(low_dim_, SearchDim::Continuous(-1.0, 1.0));
  return SearchSpace(std::move(dims));
}

}  // namespace llamatune
