#pragma once

#include <string>
#include <vector>

#include "src/optimizer/search_space.h"

namespace llamatune {

/// \brief A randomized linear embedding from a low-dimensional search
/// space X_d (tuned by the optimizer) into the scaled high-dimensional
/// knob space X_D = [-1, 1]^D (paper §3.2).
///
/// The projection matrix is generated once at construction from an
/// explicit seed and stays constant for the whole tuning session
/// (paper Algorithm 1, line 1).
class Projection {
 public:
  virtual ~Projection() = default;

  /// Dimensionality d of the optimizer-facing space.
  virtual int low_dim() const = 0;

  /// Dimensionality D of the physical knob space.
  virtual int high_dim() const = 0;

  /// Maps a low-dimensional point p in X_d to a point in [-1, 1]^D
  /// (clipping if the raw projection escapes the box).
  virtual std::vector<double> Project(const std::vector<double>& p) const = 0;

  /// The optimizer-facing low-dimensional box as a SearchSpace (all
  /// continuous dimensions).
  virtual SearchSpace LowDimSpace() const = 0;

  virtual std::string name() const = 0;
};

}  // namespace llamatune
