#pragma once

#include <limits>

namespace llamatune {

/// \brief Early-stopping policy from the paper's appendix (Prechelt's
/// classic ML criterion): stop when `patience` iterations pass without
/// an aggregate best-performance improvement of at least
/// `min_improvement_pct` percent.
class EarlyStoppingPolicy {
 public:
  /// \param min_improvement_pct x, in percent (e.g. 1.0 for 1%).
  /// \param patience k, the number of iterations to wait.
  EarlyStoppingPolicy(double min_improvement_pct, int patience)
      : min_improvement_pct_(min_improvement_pct), patience_(patience) {}

  /// Feeds the best-so-far value after an iteration; returns true when
  /// the session should stop *after* this iteration.
  bool Update(double best_so_far);

  void Reset();

  double min_improvement_pct() const { return min_improvement_pct_; }
  int patience() const { return patience_; }

 private:
  double min_improvement_pct_;
  int patience_;
  double reference_ = -std::numeric_limits<double>::infinity();
  int since_improvement_ = 0;
  bool started_ = false;
};

}  // namespace llamatune
