#include "src/core/subset_adapter.h"

namespace llamatune {

namespace {

SearchSpace BuildSubsetSpace(const ConfigSpace& config_space,
                             const std::vector<int>& indices) {
  std::vector<SearchDim> dims;
  dims.reserve(indices.size());
  for (int idx : indices) {
    const KnobSpec& spec = config_space.knob(idx);
    if (spec.type == KnobType::kCategorical) {
      dims.push_back(SearchDim::Categorical(
          static_cast<int64_t>(spec.categories.size())));
    } else {
      int64_t distinct = spec.NumDistinctValues();
      int64_t buckets = (distinct > 0 && distinct <= 4096) ? distinct : 0;
      dims.push_back(SearchDim::Continuous(0.0, 1.0, buckets));
    }
  }
  return SearchSpace(std::move(dims));
}

}  // namespace

SubsetAdapter::SubsetAdapter(const ConfigSpace* config_space,
                             std::vector<int> indices)
    : config_space_(config_space),
      indices_(std::move(indices)),
      space_(BuildSubsetSpace(*config_space, indices_)) {}

Result<SubsetAdapter> SubsetAdapter::Create(
    const ConfigSpace* config_space, const std::vector<std::string>& knobs) {
  std::vector<int> indices;
  indices.reserve(knobs.size());
  for (const std::string& name : knobs) {
    int idx = config_space->IndexOf(name);
    if (idx < 0) return Status::NotFound("knob '" + name + "' not in space");
    indices.push_back(idx);
  }
  if (indices.empty()) {
    return Status::InvalidArgument("subset adapter needs >= 1 knob");
  }
  return SubsetAdapter(config_space, std::move(indices));
}

Configuration SubsetAdapter::Project(const std::vector<double>& point) const {
  Configuration config = config_space_->DefaultConfiguration();
  for (size_t i = 0; i < indices_.size(); ++i) {
    int idx = indices_[i];
    const KnobSpec& spec = config_space_->knob(idx);
    if (spec.type == KnobType::kCategorical) {
      config[idx] = spec.Canonicalize(point[i]);
    } else {
      config[idx] = config_space_->UnitToValue(idx, point[i]);
    }
  }
  return config;
}

std::string SubsetAdapter::name() const {
  return "Subset(" + std::to_string(indices_.size()) + " knobs)";
}

}  // namespace llamatune
