#include "src/core/trial.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <sstream>

namespace llamatune {

namespace {

/// Reads `count` bit-encoded doubles from the token stream. The
/// reserve is clamped: `count` comes from untrusted text, and a
/// corrupt header must fail through the truncated-stream error path
/// below, not throw bad_alloc out of a Status-returning API.
Result<std::vector<double>> ReadDoubles(std::istringstream* in, int64_t count,
                                        const char* what) {
  std::vector<double> values;
  values.reserve(static_cast<size_t>(std::min<int64_t>(
      std::max<int64_t>(count, 0), 4096)));
  std::string token;
  for (int64_t i = 0; i < count; ++i) {
    if (!(*in >> token)) {
      return Status::InvalidArgument(std::string("truncated ") + what +
                                     " vector");
    }
    Result<double> v = DecodeDoubleBits(token);
    if (!v.ok()) return v.status();
    values.push_back(*v);
  }
  return values;
}

/// Consumes an optional trailing `fid <bits>` token pair. Absent token
/// means full fidelity (the only value pre-fidelity writers produced),
/// so old serialized trials/results parse unchanged; conversely the
/// writers below emit the token only for fidelity != 1.0, keeping the
/// full-fidelity encoding byte-identical to the pre-fidelity format.
Status ReadOptionalFidelity(std::istringstream* in, double* fidelity) {
  *fidelity = 1.0;
  std::string section;
  if (!(*in >> section)) return Status::OK();
  if (section != "fid") {
    return Status::InvalidArgument("unexpected trailing section '" + section +
                                   "'");
  }
  std::string bits;
  if (!(*in >> bits)) return Status::InvalidArgument("truncated fid token");
  Result<double> value = DecodeDoubleBits(bits);
  if (!value.ok()) return value.status();
  if (!(*value > 0.0) || *value > 1.0) {
    return Status::InvalidArgument("fidelity out of (0, 1]: " + bits);
  }
  std::string extra;
  if (*in >> extra) {
    return Status::InvalidArgument("unexpected trailing section '" + extra +
                                   "'");
  }
  *fidelity = *value;
  return Status::OK();
}

}  // namespace

std::string SerializeTrial(const Trial& trial) {
  std::ostringstream out;
  out << "trial " << trial.id << ' ' << (trial.is_baseline ? 1 : 0);
  out << " point " << trial.point.size();
  for (double v : trial.point) out << ' ' << EncodeDoubleBits(v);
  out << " config " << trial.config.size();
  for (double v : trial.config.values()) out << ' ' << EncodeDoubleBits(v);
  if (trial.fidelity != 1.0) out << " fid " << EncodeDoubleBits(trial.fidelity);
  return out.str();
}

Result<Trial> ParseTrial(const std::string& line) {
  std::istringstream in(line);
  std::string tag;
  if (!(in >> tag) || tag != "trial") {
    return Status::InvalidArgument("expected 'trial' line, got: " + line);
  }
  std::string id_tok, baseline_tok;
  if (!(in >> id_tok >> baseline_tok)) {
    return Status::InvalidArgument("truncated trial header");
  }
  Result<int64_t> id = ParseInt64(id_tok);
  if (!id.ok()) return id.status();
  Result<int64_t> baseline = ParseInt64(baseline_tok);
  if (!baseline.ok()) return baseline.status();

  Trial trial;
  trial.id = *id;
  trial.is_baseline = *baseline != 0;

  std::string section, count_tok;
  if (!(in >> section >> count_tok) || section != "point") {
    return Status::InvalidArgument("expected 'point' section");
  }
  Result<int64_t> n_point = ParseInt64(count_tok);
  if (!n_point.ok()) return n_point.status();
  Result<std::vector<double>> point = ReadDoubles(&in, *n_point, "point");
  if (!point.ok()) return point.status();
  trial.point = std::move(point).ValueOrDie();

  if (!(in >> section >> count_tok) || section != "config") {
    return Status::InvalidArgument("expected 'config' section");
  }
  Result<int64_t> n_config = ParseInt64(count_tok);
  if (!n_config.ok()) return n_config.status();
  Result<std::vector<double>> config = ReadDoubles(&in, *n_config, "config");
  if (!config.ok()) return config.status();
  trial.config = Configuration(std::move(config).ValueOrDie());
  Status fid = ReadOptionalFidelity(&in, &trial.fidelity);
  if (!fid.ok()) return fid;
  return trial;
}

std::string SerializeTrialResult(const TrialResult& result) {
  std::ostringstream out;
  out << "result " << result.trial_id << ' '
      << static_cast<int>(result.outcome) << ' '
      << EncodeDoubleBits(result.value);
  out << " metrics " << result.metrics.size();
  for (double v : result.metrics) out << ' ' << EncodeDoubleBits(v);
  if (result.fidelity != 1.0) {
    out << " fid " << EncodeDoubleBits(result.fidelity);
  }
  return out.str();
}

Result<TrialResult> ParseTrialResult(const std::string& line) {
  std::istringstream in(line);
  std::string tag;
  if (!(in >> tag) || tag != "result") {
    return Status::InvalidArgument("expected 'result' line, got: " + line);
  }
  std::string id_tok, outcome_tok, value_tok;
  if (!(in >> id_tok >> outcome_tok >> value_tok)) {
    return Status::InvalidArgument("truncated result header");
  }
  Result<int64_t> id = ParseInt64(id_tok);
  if (!id.ok()) return id.status();
  Result<int64_t> outcome = ParseInt64(outcome_tok);
  if (!outcome.ok()) return outcome.status();
  if (*outcome < 0 || *outcome > static_cast<int64_t>(TrialOutcome::kLost)) {
    return Status::InvalidArgument("unknown trial outcome code " +
                                   std::to_string(*outcome));
  }
  Result<double> value = DecodeDoubleBits(value_tok);
  if (!value.ok()) return value.status();

  TrialResult result;
  result.trial_id = *id;
  result.outcome = static_cast<TrialOutcome>(*outcome);
  result.value = *value;

  std::string section, count_tok;
  if (!(in >> section >> count_tok) || section != "metrics") {
    return Status::InvalidArgument("expected 'metrics' section");
  }
  Result<int64_t> n_metrics = ParseInt64(count_tok);
  if (!n_metrics.ok()) return n_metrics.status();
  Result<std::vector<double>> metrics = ReadDoubles(&in, *n_metrics, "metrics");
  if (!metrics.ok()) return metrics.status();
  result.metrics = std::move(metrics).ValueOrDie();
  Status fid = ReadOptionalFidelity(&in, &result.fidelity);
  if (!fid.ok()) return fid;
  return result;
}

}  // namespace llamatune
