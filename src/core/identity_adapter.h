#pragma once

#include <cstdint>
#include <memory>

#include "src/core/space_adapter.h"
#include "src/lowdim/special_value_bias.h"

namespace llamatune {

/// \brief Options for the baseline (non-projected) adapter.
struct IdentityAdapterOptions {
  /// 0 = expose the raw space; otherwise limit every knob to at most
  /// this many unique values (Fig. 7 "bucketized original space").
  int64_t bucket_values = 0;
  /// 0 = no special-value biasing; otherwise the bias mass p applied
  /// to hybrid knobs after suggestion (Fig. 6 on the original space).
  double special_value_bias = 0.0;
};

/// \brief One search dimension per knob — the baseline view of the
/// configuration space that vanilla SMAC / GP-BO / DDPG tune.
///
/// Numeric knobs become continuous unit dimensions [0,1] (integer
/// knobs carry an exact grid when their range is small enough for the
/// optimizer to see discreteness); categorical knobs stay categorical.
class IdentityAdapter : public SpaceAdapter {
 public:
  IdentityAdapter(const ConfigSpace* config_space,
                  IdentityAdapterOptions options = {});

  const SearchSpace& search_space() const override { return space_; }
  const ConfigSpace& config_space() const override { return *config_space_; }
  Configuration Project(const std::vector<double>& point) const override;
  std::string name() const override;

 private:
  const ConfigSpace* config_space_;
  IdentityAdapterOptions options_;
  SpecialValueBias svb_;
  SearchSpace space_;
};

}  // namespace llamatune
