#include "src/core/knowledge_base.h"

#include <limits>

namespace llamatune {

int KnowledgeBase::BestIndex() const {
  int best = -1;
  double best_value = -std::numeric_limits<double>::infinity();
  for (int i = 0; i < size(); ++i) {
    if (records_[i].objective > best_value) {
      best_value = records_[i].objective;
      best = i;
    }
  }
  return best;
}

std::vector<double> KnowledgeBase::BestSoFarMeasured() const {
  std::vector<double> out(records_.size());
  double best_obj = -std::numeric_limits<double>::infinity();
  double best_measured = 0.0;
  for (size_t i = 0; i < records_.size(); ++i) {
    if (records_[i].objective > best_obj) {
      best_obj = records_[i].objective;
      best_measured = records_[i].measured;
    }
    out[i] = best_measured;
  }
  return out;
}

std::vector<double> KnowledgeBase::BestSoFarObjective() const {
  std::vector<double> out(records_.size());
  double best = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < records_.size(); ++i) {
    best = std::max(best, records_[i].objective);
    out[i] = best;
  }
  return out;
}

}  // namespace llamatune
