#include "src/core/tuning_session.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace llamatune {

namespace {

double NowSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

}  // namespace

TuningSession::TuningSession(ObjectiveFunction* objective,
                             SpaceAdapter* adapter, Optimizer* optimizer,
                             SessionOptions options)
    : objective_(objective),
      adapter_(adapter),
      optimizer_(optimizer),
      options_(std::move(options)) {}

double TuningSession::Penalized(bool /*maximize*/) const {
  // Internal objectives are always maximize-convention; the paper
  // assigns a quarter of the worst seen so far.
  if (worst_objective_ >= 0.0) {
    return worst_objective_ / options_.crash_penalty_divisor;
  }
  return worst_objective_ * options_.crash_penalty_divisor;
}

bool TuningSession::Step() {
  if (stopped_) return false;
  const bool maximize = objective_->maximize();

  if (!baseline_done_) {
    // Iteration 0: evaluate the default configuration. Establishes the
    // crash-penalty floor and feeds the RL state, but is not an
    // optimizer observation (synthetic spaces have no preimage).
    Configuration def = objective_->config_space().DefaultConfiguration();
    EvalResult result = objective_->Evaluate(def);
    double objective_value = maximize ? result.value : -result.value;
    default_performance_ = result.value;
    worst_objective_ = objective_value;
    optimizer_->ObserveMetrics(result.metrics);
    baseline_done_ = true;
    return true;
  }

  if (iterations_run_ >= options_.num_iterations) {
    stopped_ = true;
    return false;
  }

  double t0 = NowSeconds();
  std::vector<double> point = optimizer_->Suggest();
  optimizer_seconds_ += NowSeconds() - t0;

  Configuration config = adapter_->Project(point);
  EvalResult result = objective_->Evaluate(config);

  double objective_value;
  double measured;
  if (result.crashed) {
    objective_value = Penalized(maximize);
    measured = maximize ? objective_value : -objective_value;
  } else {
    objective_value = maximize ? result.value : -result.value;
    measured = result.value;
    worst_objective_ = std::min(worst_objective_, objective_value);
  }

  t0 = NowSeconds();
  optimizer_->ObserveMetrics(result.metrics);
  optimizer_->Observe(point, objective_value);
  optimizer_seconds_ += NowSeconds() - t0;

  IterationRecord record;
  record.iteration = ++iterations_run_;
  record.point = point;
  record.config = config;
  record.measured = measured;
  record.objective = objective_value;
  record.crashed = result.crashed;
  record.metrics = result.metrics;
  kb_.Add(std::move(record));

  if (options_.early_stopping.has_value()) {
    double best = kb_.BestSoFarObjective().back();
    if (options_.early_stopping->Update(best)) {
      stopped_ = true;
    }
  }
  if (iterations_run_ >= options_.num_iterations) stopped_ = true;
  return true;
}

SessionResult TuningSession::Run() {
  if (options_.early_stopping.has_value()) options_.early_stopping->Reset();
  while (Step()) {
  }
  SessionResult result;
  result.kb = kb_;
  result.default_performance = default_performance_;
  result.iterations_run = iterations_run_;
  result.optimizer_seconds = optimizer_seconds_;
  int best = kb_.BestIndex();
  if (best >= 0) {
    result.best_performance = kb_.record(best).measured;
    result.best_config = kb_.record(best).config;
  }
  return result;
}

}  // namespace llamatune
