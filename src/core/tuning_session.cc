#include "src/core/tuning_session.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "src/common/serde.h"
#include "src/common/thread_pool.h"
#include "src/optimizer/history_io.h"

namespace llamatune {

namespace {

double NowSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

int64_t NowUnixMillis() {
  using Clock = std::chrono::system_clock;
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             Clock::now().time_since_epoch())
      .count();
}

constexpr char kCheckpointHeader[] = "llamatune-checkpoint";
// v2: per-outcome penalty options, pending-trial deadlines, "told"
// lines carry a typed outcome code, and expired round slots are
// recorded as "expired" so replay reproduces the drop.
// v3: the options line carries a trailing racing block, and racing
// rung rounds serialize as tag 'R' with per-slot "rung" lines
// (outcome, value, fidelity, metrics). Restore still accepts v2
// files — they simply predate racing and fidelity, so every recorded
// measurement is full-fidelity.
constexpr int kCheckpointVersion = 3;
constexpr int kMinCheckpointVersion = 2;

}  // namespace

Status RacingOptions::Validate() const {
  if (cohort < 1) {
    return Status::InvalidArgument("RacingOptions: cohort must be >= 1, got " +
                                   std::to_string(cohort));
  }
  if (rungs < 1) {
    return Status::InvalidArgument("RacingOptions: rungs must be >= 1, got " +
                                   std::to_string(rungs));
  }
  if (!(min_fidelity > 0.0) || min_fidelity > 1.0) {
    return Status::InvalidArgument(
        "RacingOptions: min_fidelity must be in (0, 1]");
  }
  if (!(eta > 1.0)) {
    return Status::InvalidArgument("RacingOptions: eta must be > 1");
  }
  if (ci_z < 0.0) {
    return Status::InvalidArgument("RacingOptions: ci_z must be >= 0");
  }
  return Status::OK();
}

Status SessionOptions::Validate() const {
  if (num_iterations < 0) {
    return Status::InvalidArgument(
        "SessionOptions: num_iterations must be >= 0, got " +
        std::to_string(num_iterations));
  }
  if (batch_size < 1) {
    return Status::InvalidArgument(
        "SessionOptions: batch_size must be >= 1, got " +
        std::to_string(batch_size));
  }
  if (num_threads < 0) {
    return Status::InvalidArgument(
        "SessionOptions: num_threads must be >= 0 (0 = shared pool size), "
        "got " +
        std::to_string(num_threads));
  }
  if (!(crash_penalty_divisor > 0.0)) {
    return Status::InvalidArgument(
        "SessionOptions: crash_penalty_divisor must be > 0");
  }
  if (!(timeout_penalty_divisor > 0.0)) {
    return Status::InvalidArgument(
        "SessionOptions: timeout_penalty_divisor must be > 0");
  }
  if (!(lost_penalty_divisor > 0.0)) {
    return Status::InvalidArgument(
        "SessionOptions: lost_penalty_divisor must be > 0");
  }
  if (pending_deadline_ms < 0) {
    return Status::InvalidArgument(
        "SessionOptions: pending_deadline_ms must be >= 0 (0 = no deadline), "
        "got " +
        std::to_string(pending_deadline_ms));
  }
  if (racing.has_value()) {
    LT_RETURN_NOT_OK(racing->Validate());
  }
  return Status::OK();
}

TuningSession::TuningSession(ObjectiveFunction* objective,
                             SpaceAdapter* adapter, Optimizer* optimizer,
                             SessionOptions options)
    : objective_(objective),
      config_space_(&objective->config_space()),
      maximize_(objective->maximize()),
      adapter_(adapter),
      optimizer_(optimizer),
      options_(std::move(options)),
      init_status_(options_.Validate()) {}

TuningSession::TuningSession(const ConfigSpace* config_space, bool maximize,
                             SpaceAdapter* adapter, Optimizer* optimizer,
                             SessionOptions options)
    : objective_(nullptr),
      config_space_(config_space),
      maximize_(maximize),
      adapter_(adapter),
      optimizer_(optimizer),
      options_(std::move(options)),
      init_status_(options_.Validate()) {}

double TuningSession::Penalized(double divisor) const {
  // Internal objectives are always maximize-convention; the paper
  // assigns a quarter of the worst seen so far.
  if (worst_objective_ >= 0.0) {
    return worst_objective_ / divisor;
  }
  return worst_objective_ * divisor;
}

double TuningSession::PenaltyDivisorFor(TrialOutcome outcome) const {
  switch (outcome) {
    case TrialOutcome::kTimedOut:
      return options_.timeout_penalty_divisor;
    case TrialOutcome::kLost:
      return options_.lost_penalty_divisor;
    case TrialOutcome::kCrashed:
    case TrialOutcome::kOk:
      break;
  }
  return options_.crash_penalty_divisor;
}

void TuningSession::ScoreResult(const TrialResult& result,
                                double* objective_value, double* measured) {
  if (IsFailure(result.outcome)) {
    *objective_value = Penalized(PenaltyDivisorFor(result.outcome));
    *measured = maximize_ ? *objective_value : -*objective_value;
  } else {
    *objective_value = maximize_ ? result.value : -result.value;
    *measured = result.value;
    worst_objective_ = std::min(worst_objective_, *objective_value);
  }
}

void TuningSession::AppendRecord(const Trial& trial, const TrialResult& result,
                                 double objective_value, double measured) {
  IterationRecord record;
  record.iteration = ++iterations_run_;
  record.point = trial.point;
  record.config = trial.config;
  record.measured = measured;
  record.objective = objective_value;
  record.crashed = result.crashed();
  record.outcome = result.outcome;
  record.metrics = result.metrics;
  kb_.Add(std::move(record));

  if (options_.early_stopping.has_value()) {
    double best = kb_.BestSoFarObjective().back();
    if (options_.early_stopping->Update(best)) {
      stopped_ = true;
    }
  }
  if (iterations_run_ >= options_.num_iterations) stopped_ = true;
}

int TuningSession::RemainingBudget() const {
  // A race is one budget iteration however many rung trials it holds
  // pending; in a racing session all non-baseline pending trials
  // belong to the active race.
  if (options_.racing.has_value()) {
    return options_.num_iterations - iterations_run_ -
           (race_.has_value() ? 1 : 0);
  }
  int pending = static_cast<int>(pending_.size());
  if (baseline_pending_) --pending;
  return options_.num_iterations - iterations_run_ - pending;
}

bool TuningSession::finished() const {
  if (!init_status_.ok()) return true;
  if (stopped_) return true;
  if (!baseline_done_) return false;
  // An active race counts as one budget iteration, so RemainingBudget
  // hits 0 while its later rungs still hand out trials — the session is
  // not finished until the champion commits.
  if (race_.has_value()) return false;
  return RemainingBudget() <= 0;
}

double TuningSession::RungFidelity(int rung) const {
  const RacingOptions& racing = *options_.racing;
  // Geometric ladder min_fidelity^((R-1-r)/(R-1)): rung 0 runs at
  // min_fidelity, the final rung at exactly 1.0 (the literal, not a
  // computed power — full-fidelity rung trials must evaluate
  // bit-identically to ordinary trials).
  if (racing.rungs <= 1 || rung >= racing.rungs - 1) return 1.0;
  double exponent = static_cast<double>(racing.rungs - 1 - rung) /
                    static_cast<double>(racing.rungs - 1);
  return std::pow(racing.min_fidelity, exponent);
}

Status TuningSession::StartRace() {
  const RacingOptions& racing = *options_.racing;
  double t0 = NowSeconds();
  std::vector<std::vector<double>> points;
  if (racing.cohort == 1) {
    // The single-candidate draw goes through Suggest(), exactly like a
    // non-racing Ask — the degenerate race must consume the identical
    // optimizer call sequence.
    points.push_back(optimizer_->Suggest());
  } else {
    points = optimizer_->SuggestBatch(racing.cohort);
    if (static_cast<int>(points.size()) > racing.cohort) {
      points.resize(racing.cohort);
    }
  }
  optimizer_seconds_ += NowSeconds() - t0;
  if (points.empty()) {
    stopped_ = true;
    return Status::OutOfRange("Ask: optimizer returned no race candidates");
  }
  race_.emplace();
  race_->candidates.reserve(points.size());
  for (auto& point : points) {
    RaceCandidate candidate;
    candidate.config = adapter_->Project(point);
    candidate.point = std::move(point);
    race_->candidates.push_back(std::move(candidate));
  }
  StartRung();
  return Status::OK();
}

void TuningSession::StartRung() {
  double fidelity = RungFidelity(race_->rung);
  Round round;
  round.kind = Round::Kind::kRung;
  race_->slot_candidates.clear();
  race_->slot_of_id.clear();
  race_->unserved.clear();
  for (size_t c = 0; c < race_->candidates.size(); ++c) {
    if (!race_->candidates[c].alive) continue;
    Trial trial;
    trial.id = next_trial_id_++;
    trial.point = race_->candidates[c].point;
    trial.config = race_->candidates[c].config;
    trial.fidelity = fidelity;
    int slot = static_cast<int>(round.ids.size());
    round.ids.push_back(trial.id);
    race_->slot_candidates.push_back(static_cast<int>(c));
    race_->slot_of_id.emplace(trial.id, slot);
    race_->unserved.push_back(trial.id);
    pending_.emplace(trial.id,
                     PendingTrial{std::move(trial), std::nullopt,
                                  NowUnixMillis()});
  }
  round.requested = static_cast<int>(round.ids.size());
  open_rounds_.push_back(std::move(round));
}

void TuningSession::EliminateAfterRung() {
  const RacingOptions& racing = *options_.racing;
  std::vector<int> alive;
  for (size_t c = 0; c < race_->candidates.size(); ++c) {
    if (race_->candidates[c].alive) alive.push_back(static_cast<int>(c));
  }
  if (alive.size() <= 1) return;
  // CI-overlap rule: a candidate whose upper confidence bound lies
  // below the best candidate's lower bound cannot win; drop it. With
  // fewer than two samples the half-width is infinite, so nothing is
  // eliminated on confidence alone — the rank cap below still bites.
  if (racing.ci_z > 0.0) {
    double best_lower = -std::numeric_limits<double>::infinity();
    for (int c : alive) {
      const RunningStat& stat = race_->candidates[c].stat;
      double lower = stat.Mean() - stat.CiHalfWidth(racing.ci_z);
      if (lower > best_lower) best_lower = lower;
    }
    for (int c : alive) {
      const RunningStat& stat = race_->candidates[c].stat;
      if (stat.Mean() + stat.CiHalfWidth(racing.ci_z) < best_lower) {
        race_->candidates[c].alive = false;
      }
    }
  }
  // Successive-halving cap: at most ceil(alive / eta) candidates
  // advance, ranked by accumulated mean; stable sort keeps draw order
  // on ties, so the cut is deterministic.
  int target = std::max(
      1, static_cast<int>(std::ceil(static_cast<double>(alive.size()) /
                                    racing.eta)));
  std::vector<int> survivors;
  for (int c : alive) {
    if (race_->candidates[c].alive) survivors.push_back(c);
  }
  if (static_cast<int>(survivors.size()) <= target) return;
  std::stable_sort(survivors.begin(), survivors.end(), [this](int a, int b) {
    return race_->candidates[a].stat.Mean() >
           race_->candidates[b].stat.Mean();
  });
  for (size_t rank = target; rank < survivors.size(); ++rank) {
    race_->candidates[survivors[rank]].alive = false;
  }
}

void TuningSession::CommitRungRound(Round& round) {
  const RacingOptions& racing = *options_.racing;
  int n = static_cast<int>(round.ids.size());
  std::vector<Trial> trials;
  trials.reserve(n);
  round.rung_results.reserve(n);
  for (int i = 0; i < n; ++i) {
    auto it = pending_.find(round.ids[i]);
    trials.push_back(std::move(it->second.trial));
    round.rung_results.push_back(std::move(*it->second.result));
    pending_.erase(it);
  }
  std::vector<int> slot_candidates = race_->slot_candidates;
  // Feed the accumulated statistics in slot (= draw) order; a failure
  // outcome kills the candidate outright. Rung measurements never
  // touch the penalty floor — only the committed champion does.
  for (int i = 0; i < n; ++i) {
    RaceCandidate& candidate = race_->candidates[slot_candidates[i]];
    const TrialResult& result = round.rung_results[i];
    simulated_work_ += trials[i].fidelity;
    if (IsFailure(result.outcome)) {
      candidate.alive = false;
    } else {
      candidate.stat.Push(maximize_ ? result.value : -result.value);
    }
  }
  bool final_rung = race_->rung >= racing.rungs - 1;
  bool any_alive = false;
  for (const RaceCandidate& candidate : race_->candidates) {
    if (candidate.alive) {
      any_alive = true;
      break;
    }
  }
  if (!final_rung && any_alive) {
    EliminateAfterRung();
    ++race_->rung;
    StartRung();
    return;
  }

  // Final rung (or every candidate failed): commit exactly ONE
  // observation for the whole race — the champion's full-fidelity
  // result, chosen by best accumulated mean among surviving candidates
  // (ties go to draw order). When nothing survived, the first slot's
  // failure commits instead and scores its outcome's penalty, so a
  // race always costs exactly one budget iteration.
  round.final_rung = true;
  int champion_slot = -1;
  for (int i = 0; i < n; ++i) {
    const RaceCandidate& candidate = race_->candidates[slot_candidates[i]];
    if (!candidate.alive || IsFailure(round.rung_results[i].outcome)) continue;
    if (champion_slot < 0 ||
        candidate.stat.Mean() >
            race_->candidates[slot_candidates[champion_slot]].stat.Mean()) {
      champion_slot = i;
    }
  }
  if (champion_slot < 0) champion_slot = 0;
  const Trial& champ_trial = trials[champion_slot];
  const TrialResult& champ_result = round.rung_results[champion_slot];
  double objective_value = 0.0;
  double measured = 0.0;
  ScoreResult(champ_result, &objective_value, &measured);
  double t0 = NowSeconds();
  optimizer_->ObserveMetrics(champ_result.metrics);
  optimizer_->Observe(champ_trial.point, objective_value);
  optimizer_seconds_ += NowSeconds() - t0;
  AppendRecord(champ_trial, champ_result, objective_value, measured);
  race_.reset();
}

Result<Trial> TuningSession::Ask() {
  if (!init_status_.ok()) return init_status_;
  if (!baseline_done_) {
    if (baseline_pending_) {
      return Status::FailedPrecondition(
          "Ask: the baseline trial is outstanding; Tell its result first");
    }
    Trial trial;
    trial.id = next_trial_id_++;
    trial.config = config_space_->DefaultConfiguration();
    trial.is_baseline = true;
    Round round;
    round.kind = Round::Kind::kBaseline;
    round.requested = 1;
    round.ids = {trial.id};
    pending_.emplace(trial.id,
                    PendingTrial{trial, std::nullopt, NowUnixMillis()});
    open_rounds_.push_back(std::move(round));
    baseline_pending_ = true;
    return trial;
  }
  if (stopped_ && !replaying_) {
    return Status::OutOfRange("Ask: session stopped (budget or early stop)");
  }
  if (options_.racing.has_value()) {
    if (!race_.has_value()) {
      if (RemainingBudget() <= 0) {
        return Status::OutOfRange(
            "Ask: iteration budget exhausted (counting the active race)");
      }
      LT_RETURN_NOT_OK(StartRace());
    }
    if (race_->unserved.empty()) {
      return Status::FailedPrecondition(
          "Ask: the current racing rung is fully handed out; Tell its "
          "results to open the next rung");
    }
    int64_t id = race_->unserved.front();
    race_->unserved.pop_front();
    return pending_.at(id).trial;
  }
  if (RemainingBudget() <= 0) {
    return Status::OutOfRange(
        "Ask: iteration budget exhausted (counting pending trials)");
  }
  double t0 = NowSeconds();
  std::vector<double> point = optimizer_->Suggest();
  optimizer_seconds_ += NowSeconds() - t0;

  Trial trial;
  trial.id = next_trial_id_++;
  trial.config = adapter_->Project(point);
  trial.point = std::move(point);
  Round round;
  round.kind = Round::Kind::kSingle;
  round.requested = 1;
  round.ids = {trial.id};
  pending_.emplace(trial.id,
                    PendingTrial{trial, std::nullopt, NowUnixMillis()});
  open_rounds_.push_back(std::move(round));
  return trial;
}

Result<std::vector<Trial>> TuningSession::AskBatch(int n) {
  if (!init_status_.ok()) return init_status_;
  if (n < 1) {
    return Status::InvalidArgument("AskBatch: n must be >= 1, got " +
                                   std::to_string(n));
  }
  if (!baseline_done_) {
    Result<Trial> baseline = Ask();
    if (!baseline.ok()) return baseline.status();
    return std::vector<Trial>{std::move(baseline).ValueOrDie()};
  }
  if (stopped_ && !replaying_) {
    return Status::OutOfRange("AskBatch: session stopped");
  }
  if (options_.racing.has_value()) {
    if (!race_.has_value()) {
      if (RemainingBudget() <= 0) {
        return Status::OutOfRange(
            "AskBatch: iteration budget exhausted (counting the active "
            "race)");
      }
      LT_RETURN_NOT_OK(StartRace());
    }
    if (race_->unserved.empty()) {
      return Status::FailedPrecondition(
          "AskBatch: the current racing rung is fully handed out; Tell its "
          "results to open the next rung");
    }
    std::vector<Trial> trials;
    while (!race_->unserved.empty() &&
           static_cast<int>(trials.size()) < n) {
      int64_t id = race_->unserved.front();
      race_->unserved.pop_front();
      trials.push_back(pending_.at(id).trial);
    }
    return trials;
  }
  int budget = RemainingBudget();
  if (budget <= 0) {
    return Status::OutOfRange(
        "AskBatch: iteration budget exhausted (counting pending trials)");
  }
  n = std::min(n, budget);

  double t0 = NowSeconds();
  std::vector<std::vector<double>> points = optimizer_->SuggestBatch(n);
  optimizer_seconds_ += NowSeconds() - t0;
  // An override may return fewer points than asked; never accept more
  // (extra points would overshoot the iteration budget, and in the
  // Run/Step path would share evaluation clones across threads).
  if (static_cast<int>(points.size()) > n) points.resize(n);
  if (points.empty()) {
    stopped_ = true;
    return Status::OutOfRange("AskBatch: optimizer returned no suggestions");
  }

  Round round;
  round.kind = Round::Kind::kBatch;
  round.requested = n;
  std::vector<Trial> trials;
  trials.reserve(points.size());
  for (auto& point : points) {
    Trial trial;
    trial.id = next_trial_id_++;
    trial.config = adapter_->Project(point);
    trial.point = std::move(point);
    round.ids.push_back(trial.id);
    pending_.emplace(trial.id,
                    PendingTrial{trial, std::nullopt, NowUnixMillis()});
    trials.push_back(std::move(trial));
  }
  open_rounds_.push_back(std::move(round));
  return trials;
}

Status TuningSession::Tell(const TrialResult& result) {
  if (!init_status_.ok()) return init_status_;
  auto it = pending_.find(result.trial_id);
  if (it == pending_.end()) {
    if (expired_ids_.count(result.trial_id) > 0) {
      return Status::TrialExpired(
          "Tell: trial " + std::to_string(result.trial_id) +
          " expired (deadline passed; its budget was reclaimed)");
    }
    if (result.trial_id >= 1 && result.trial_id < next_trial_id_) {
      return Status::AlreadyExists(
          "Tell: trial " + std::to_string(result.trial_id) +
          " was already told and committed");
    }
    return Status::NotFound("Tell: unknown trial id " +
                            std::to_string(result.trial_id));
  }
  if (it->second.result.has_value()) {
    return Status::AlreadyExists("Tell: trial " +
                                 std::to_string(result.trial_id) +
                                 " was already told (buffered)");
  }
  // A non-finite measurement would silently poison GP target
  // standardization (every standardized target becomes NaN); refuse it
  // at the boundary. Failure outcomes ignore `value`, so they pass.
  if (!IsFailure(result.outcome) && !std::isfinite(result.value)) {
    return Status::InvalidArgument(
        "Tell: non-finite value for trial " +
        std::to_string(result.trial_id) +
        " (report a failure outcome instead of NaN/Inf)");
  }
  it->second.result = result;
  // The asked Trial's fidelity is authoritative: a peer that predates
  // the fidelity token (or simply echoes the default) still answers
  // short-run trials correctly.
  it->second.result->fidelity = it->second.trial.fidelity;
  CommitReadyRounds();
  return Status::OK();
}

Status TuningSession::TellBatch(const std::vector<TrialResult>& results) {
  // Validate the whole batch before buffering anything: a non-finite
  // value in result k must not leave results [0, k) half-applied (the
  // caller would have to untangle which tells took).
  for (const TrialResult& result : results) {
    if (!IsFailure(result.outcome) && !std::isfinite(result.value)) {
      return Status::InvalidArgument(
          "TellBatch: non-finite value for trial " +
          std::to_string(result.trial_id) +
          " (use a failure outcome when there is no measurement)");
    }
  }
  for (const TrialResult& result : results) {
    LT_RETURN_NOT_OK(Tell(result));
  }
  return Status::OK();
}

Status TuningSession::Expire(int64_t trial_id) {
  if (!init_status_.ok()) return init_status_;
  auto it = pending_.find(trial_id);
  if (it == pending_.end()) {
    // Idempotent on already-expired ids: WAL replay may re-apply an
    // expiry record that the autosave already captured.
    if (expired_ids_.count(trial_id) > 0) return Status::OK();
    if (trial_id >= 1 && trial_id < next_trial_id_) {
      return Status::AlreadyExists("Expire: trial " +
                                   std::to_string(trial_id) +
                                   " was already told and committed");
    }
    return Status::NotFound("Expire: unknown trial id " +
                            std::to_string(trial_id));
  }
  if (it->second.trial.is_baseline) {
    return Status::FailedPrecondition(
        "Expire: the baseline trial cannot expire (no session can start "
        "without its crash-penalty floor)");
  }
  if (it->second.result.has_value()) {
    return Status::FailedPrecondition(
        "Expire: trial " + std::to_string(trial_id) +
        " already has a buffered result");
  }
  if (race_.has_value() && race_->slot_of_id.count(trial_id) > 0) {
    return Status::FailedPrecondition(
        "Expire: trial " + std::to_string(trial_id) +
        " belongs to the active racing rung; every rung slot must be told "
        "for the race to stay deterministic");
  }
  pending_.erase(it);
  expired_ids_.insert(trial_id);
  // Dropping the slot may complete its round (all other slots told).
  CommitReadyRounds();
  return Status::OK();
}

std::vector<int64_t> TuningSession::ExpireOverdue(int64_t now_ms) {
  if (!init_status_.ok() || options_.pending_deadline_ms <= 0) return {};
  std::vector<int64_t> overdue;
  for (const auto& [id, pending] : pending_) {
    if (pending.trial.is_baseline || pending.result.has_value()) continue;
    // Racing rung trials are exempt: dropping a slot would change the
    // race's elimination sequence, so rungs must complete.
    if (race_.has_value() && race_->slot_of_id.count(id) > 0) continue;
    if (now_ms - pending.asked_at_ms >= options_.pending_deadline_ms) {
      overdue.push_back(id);
    }
  }
  std::vector<int64_t> expired;
  expired.reserve(overdue.size());
  for (int64_t id : overdue) {
    if (Expire(id).ok()) expired.push_back(id);
  }
  return expired;
}

std::vector<Trial> TuningSession::PendingSnapshot() const {
  std::vector<Trial> trials;
  trials.reserve(pending_.size());
  for (const auto& [id, pending] : pending_) {
    if (!pending.result.has_value()) trials.push_back(pending.trial);
  }
  return trials;
}

void TuningSession::CommitReadyRounds() {
  while (!open_rounds_.empty()) {
    const Round& front = open_rounds_.front();
    bool complete = true;
    for (int64_t id : front.ids) {
      if (expired_ids_.count(id) > 0) continue;  // dropped slot
      auto it = pending_.find(id);
      if (it == pending_.end() || !it->second.result.has_value()) {
        complete = false;
        break;
      }
    }
    if (!complete) return;
    Round round = std::move(open_rounds_.front());
    open_rounds_.pop_front();
    CommitRound(round);
    committed_rounds_.push_back(std::move(round));
  }
}

void TuningSession::CommitRound(Round& round) {
  if (round.kind == Round::Kind::kRung) {
    CommitRungRound(round);
    return;
  }
  if (round.kind == Round::Kind::kBaseline) {
    auto it = pending_.find(round.ids[0]);
    TrialResult result = std::move(*it->second.result);
    pending_.erase(it);
    // Iteration 0: establishes the crash-penalty floor and feeds the
    // RL state, but is not an optimizer observation (synthetic spaces
    // have no preimage for the default configuration). The crashed
    // flag is ignored here, as in the classic loop.
    double objective_value = maximize_ ? result.value : -result.value;
    default_performance_ = result.value;
    worst_objective_ = objective_value;
    simulated_work_ += 1.0;  // the baseline is always a full run
    baseline_metrics_ = result.metrics;
    optimizer_->ObserveMetrics(baseline_metrics_);
    baseline_done_ = true;
    baseline_pending_ = false;
    return;
  }

  // Expired slots were dropped from the round: no trial, no result,
  // no observation. A round can even commit empty (every slot
  // expired) — the optimizer's suggest draw already happened at ask
  // time, so the draw sequence stays intact either way.
  std::vector<Trial> trials;
  std::vector<TrialResult> results;
  trials.reserve(round.ids.size());
  results.reserve(round.ids.size());
  for (int64_t id : round.ids) {
    if (expired_ids_.count(id) > 0) continue;
    auto it = pending_.find(id);
    trials.push_back(std::move(it->second.trial));
    results.push_back(std::move(*it->second.result));
    pending_.erase(it);
  }
  int n = static_cast<int>(trials.size());
  if (n == 0) return;

  // Score in suggestion order so crash penalties, best-so-far curves
  // and early stopping are independent of evaluation interleaving.
  std::vector<double> values(n);
  std::vector<double> measured(n);
  for (int i = 0; i < n; ++i) {
    simulated_work_ += trials[i].fidelity;
    ScoreResult(results[i], &values[i], &measured[i]);
  }
  // Only genuine optimizer work counts toward optimizer_seconds_
  // (Table 10 comparability).
  double t0 = NowSeconds();
  for (int i = 0; i < n; ++i) optimizer_->ObserveMetrics(results[i].metrics);
  if (round.kind == Round::Kind::kBatch) {
    std::vector<std::vector<double>> points(n);
    for (int i = 0; i < n; ++i) points[i] = trials[i].point;
    optimizer_->ObserveBatch(points, values);
  } else {
    optimizer_->Observe(trials[0].point, values[0]);
  }
  optimizer_seconds_ += NowSeconds() - t0;
  for (int i = 0; i < n; ++i) {
    AppendRecord(trials[i], results[i], values[i], measured[i]);
  }
}

std::vector<TrialResult> TuningSession::EvaluateTrials(
    const std::vector<Trial>& trials) {
  int n = static_cast<int>(trials.size());
  std::vector<TrialResult> results(n);
  auto to_result = [](const Trial& trial, const EvalResult& r) {
    TrialResult result;
    result.trial_id = trial.id;
    result.value = r.value;
    result.outcome = r.EffectiveOutcome();
    result.metrics = r.metrics;
    result.fidelity = r.fidelity;
    return result;
  };
  // Full-fidelity trials go through Evaluate() itself — the exact
  // pre-fidelity call — so existing sessions stay bit-identical even
  // against objectives that override only Evaluate.
  auto evaluate = [](ObjectiveFunction* fn, const Trial& trial) {
    return trial.fidelity < 1.0 ? fn->EvaluateAt(trial.config, trial.fidelity)
                                : fn->Evaluate(trial.config);
  };

  // The baseline and the sequential (batch_size == 1) path evaluate on
  // the objective itself, exactly like the classic loop.
  if (n == 1 && (trials[0].is_baseline || options_.batch_size <= 1)) {
    results[0] = to_result(trials[0], evaluate(objective_, trials[0]));
    return results;
  }

  // One clone per batch slot, built once and reused: each slot keeps
  // its own evaluation counter, so a session is deterministic for a
  // fixed (seed, batch size) pair. Racing rungs can be wider than the
  // batch size, so the pool covers the cohort too — two slots must
  // never share a clone concurrently.
  if (!clone_pool_built_) {
    clone_pool_built_ = true;
    int pool_size = options_.batch_size;
    if (options_.racing.has_value()) {
      pool_size = std::max(pool_size, options_.racing->cohort);
    }
    for (int i = 0; i < pool_size; ++i) {
      std::unique_ptr<ObjectiveFunction> clone = objective_->Clone();
      if (clone == nullptr) {
        clone_pool_.clear();
        break;
      }
      clone_pool_.push_back(std::move(clone));
    }
  }

  if (clone_pool_.empty()) {
    // Objective cannot be cloned: evaluate the batch sequentially.
    for (int i = 0; i < n; ++i) {
      results[i] = to_result(trials[i], evaluate(objective_, trials[i]));
    }
  } else {
    // Each batch slot evaluates on its own clone over the shared pool
    // (the caller participates, so nested parallelism — e.g. inside a
    // seed-sharded experiment — cannot deadlock). Slot i always maps
    // to clone i, so results are independent of scheduling.
    ThreadPool::Global().ParallelFor(
        n,
        [this, &trials, &results, &to_result, &evaluate](int i) {
          ObjectiveFunction* instance =
              clone_pool_[i % clone_pool_.size()].get();
          results[i] = to_result(trials[i], evaluate(instance, trials[i]));
        },
        options_.num_threads);
  }
  return results;
}

bool TuningSession::Step() {
  if (!init_status_.ok()) return false;
  if (objective_ == nullptr) return false;  // detached: caller drives Ask/Tell
  if (stopped_) return false;

  if (!baseline_done_) {
    Result<Trial> baseline = Ask();
    if (!baseline.ok()) return false;
    std::vector<TrialResult> results = EvaluateTrials({*baseline});
    Tell(results[0]);
    return true;
  }

  if (iterations_run_ >= options_.num_iterations) {
    stopped_ = true;
    return false;
  }

  if (options_.racing.has_value()) {
    // One Step = one rung: ask the whole rung, measure it (in parallel
    // across clones when the cohort is wide), and tell the results —
    // the commit path then eliminates candidates and opens the next
    // rung, or commits the race champion.
    Result<std::vector<Trial>> trials = AskBatch(options_.racing->cohort);
    if (!trials.ok()) return false;
    std::vector<TrialResult> results = EvaluateTrials(*trials);
    TellBatch(results);
    return true;
  }

  if (options_.batch_size > 1) {
    Result<std::vector<Trial>> trials = AskBatch(options_.batch_size);
    if (!trials.ok()) return false;
    std::vector<TrialResult> results = EvaluateTrials(*trials);
    TellBatch(results);
    return true;
  }

  Result<Trial> trial = Ask();
  if (!trial.ok()) return false;
  std::vector<TrialResult> results = EvaluateTrials({*trial});
  Tell(results[0]);
  return true;
}

SessionResult TuningSession::Run() {
  if (!init_status_.ok()) return SessionResult{};
  if (!baseline_done_ && options_.early_stopping.has_value()) {
    options_.early_stopping->Reset();
  }
  while (Step()) {
  }
  return Snapshot();
}

SessionResult TuningSession::Snapshot() const {
  SessionResult result;
  result.kb = kb_;
  result.default_performance = default_performance_;
  result.iterations_run = iterations_run_;
  result.optimizer_seconds = optimizer_seconds_;
  result.simulated_work = simulated_work_;
  int best = kb_.BestIndex();
  if (best >= 0) {
    result.best_performance = kb_.record(best).measured;
    result.best_config = kb_.record(best).config;
  }
  return result;
}

std::string TuningSession::Save() const {
  std::ostringstream out;
  out << kCheckpointHeader << " v" << kCheckpointVersion << '\n';
  out << "maximize " << (maximize_ ? 1 : 0) << '\n';
  out << "options " << options_.num_iterations << ' ' << options_.batch_size
      << ' ' << EncodeDoubleBits(options_.crash_penalty_divisor) << ' '
      << EncodeDoubleBits(options_.timeout_penalty_divisor) << ' '
      << EncodeDoubleBits(options_.lost_penalty_divisor) << ' '
      << options_.pending_deadline_ms << ' '
      << (options_.early_stopping.has_value() ? 1 : 0);
  if (options_.early_stopping.has_value()) {
    out << ' ' << EncodeDoubleBits(options_.early_stopping->min_improvement_pct())
        << ' ' << options_.early_stopping->patience();
  }
  // v3: trailing racing block. Everything a v3 file adds over v2 for a
  // non-racing session is the version number and this one token.
  out << " racing " << (options_.racing.has_value() ? 1 : 0);
  if (options_.racing.has_value()) {
    out << ' ' << options_.racing->cohort << ' ' << options_.racing->rungs
        << ' ' << EncodeDoubleBits(options_.racing->min_fidelity) << ' '
        << EncodeDoubleBits(options_.racing->eta) << ' '
        << EncodeDoubleBits(options_.racing->ci_z);
  }
  out << '\n';
  out << "state " << iterations_run_ << ' '
      << EncodeDoubleBits(optimizer_seconds_) << '\n';
  out << "baseline " << (baseline_done_ ? 1 : 0);
  if (baseline_done_) {
    out << ' ' << EncodeDoubleBits(default_performance_) << ' '
        << baseline_metrics_.size();
    for (double v : baseline_metrics_) out << ' ' << EncodeDoubleBits(v);
  }
  out << '\n';
  // Evaluation-side state: the attached objective's (and its batch
  // clones') serializable state, so the resumed session continues with
  // the identical noise stream. Detached and stateless objectives
  // write nothing to restore.
  auto write_state = [&out](const char* tag, const ObjectiveFunction* fn) {
    std::optional<std::string> state =
        fn == nullptr ? std::nullopt : fn->SaveState();
    out << tag << ' ' << (state.has_value() ? 1 : 0);
    if (state.has_value()) out << ' ' << state->size() << ' '
                               << EncodeBytes(*state);
    out << '\n';
  };
  write_state("objective", objective_);
  if (!clone_pool_built_) {
    out << "clones -1\n";
  } else {
    out << "clones " << clone_pool_.size() << '\n';
    for (const auto& clone : clone_pool_) write_state("clone", clone.get());
  }
  out << "rounds " << committed_rounds_.size() << '\n';
  int record_index = 0;
  for (const Round& round : committed_rounds_) {
    char tag = 'B';
    switch (round.kind) {
      case Round::Kind::kBaseline:
        tag = 'D';
        break;
      case Round::Kind::kSingle:
        tag = 'S';
        break;
      case Round::Kind::kBatch:
        tag = 'B';
        break;
      case Round::Kind::kRung:
        tag = 'R';
        break;
    }
    out << "round " << tag << ' ' << round.requested << ' '
        << round.ids.size() << '\n';
    if (round.kind == Round::Kind::kBaseline) continue;
    if (round.kind == Round::Kind::kRung) {
      // Rung measurements are not knowledge-base records (only the
      // race champion is); they were captured at commit. Replay
      // re-tells them through the race machinery, which re-derives
      // eliminations, the champion, and its KB record.
      for (const TrialResult& result : round.rung_results) {
        out << "rung " << static_cast<int>(result.outcome) << ' '
            << EncodeDoubleBits(result.value) << ' '
            << EncodeDoubleBits(result.fidelity) << ' '
            << result.metrics.size();
        for (double v : result.metrics) out << ' ' << EncodeDoubleBits(v);
        out << '\n';
      }
      // A final rung committed the champion's KB record; keep the
      // told-line cursor in sync for the rounds that follow.
      if (round.final_rung) ++record_index;
      continue;
    }
    for (size_t i = 0; i < round.ids.size(); ++i) {
      // Expired slots committed without an observation or a KB
      // record; replay must re-drop them, not re-tell them.
      if (expired_ids_.count(round.ids[i]) > 0) {
        out << "expired\n";
        continue;
      }
      const IterationRecord& record = kb_.record(record_index++);
      out << "told " << static_cast<int>(record.outcome) << ' '
          << EncodeDoubleBits(record.measured) << ' '
          << record.metrics.size();
      for (double v : record.metrics) out << ' ' << EncodeDoubleBits(v);
      out << '\n';
    }
  }
  out << "history " << optimizer_->history().size() << '\n';
  out << SerializeHistory(optimizer_->history());
  out << "end\n";
  return out.str();
}

Status TuningSession::Restore(const std::string& checkpoint) {
  if (!init_status_.ok()) return init_status_;
  if (baseline_done_ || baseline_pending_ || !pending_.empty() ||
      iterations_run_ > 0 || !kb_.empty()) {
    return Status::FailedPrecondition(
        "Restore: requires a freshly constructed session");
  }

  std::istringstream in(checkpoint);
  std::string token;

  // Header + version.
  std::string header, version;
  if (!(in >> header >> version) || header != kCheckpointHeader) {
    return Status::InvalidArgument("Restore: not a llamatune checkpoint");
  }
  int file_version = 0;
  for (int v = kMinCheckpointVersion; v <= kCheckpointVersion; ++v) {
    if (version == "v" + std::to_string(v)) file_version = v;
  }
  if (file_version == 0) {
    return Status::InvalidArgument("Restore: unsupported checkpoint version " +
                                   version);
  }

  auto expect = [&in](const char* tag) -> Status {
    std::string got;
    if (!(in >> got) || got != tag) {
      return Status::InvalidArgument(
          std::string("Restore: expected '") + tag + "' section, got '" +
          got + "'");
    }
    return Status::OK();
  };
  auto read_int = [&in](const char* what) -> Result<int64_t> {
    std::string tok;
    if (!(in >> tok)) {
      return Status::InvalidArgument(std::string("Restore: truncated ") +
                                     what);
    }
    return ParseInt64(tok);
  };
  auto read_double = [&in](const char* what) -> Result<double> {
    std::string tok;
    if (!(in >> tok)) {
      return Status::InvalidArgument(std::string("Restore: truncated ") +
                                     what);
    }
    return DecodeDoubleBits(tok);
  };

  LT_RETURN_NOT_OK(expect("maximize"));
  Result<int64_t> saved_maximize = read_int("maximize");
  if (!saved_maximize.ok()) return saved_maximize.status();
  if ((*saved_maximize != 0) != maximize_) {
    return Status::FailedPrecondition(
        "Restore: checkpoint maximize convention does not match this "
        "session's objective");
  }

  LT_RETURN_NOT_OK(expect("options"));
  Result<int64_t> saved_iters = read_int("num_iterations");
  if (!saved_iters.ok()) return saved_iters.status();
  Result<int64_t> saved_batch = read_int("batch_size");
  if (!saved_batch.ok()) return saved_batch.status();
  Result<double> saved_divisor = read_double("crash_penalty_divisor");
  if (!saved_divisor.ok()) return saved_divisor.status();
  Result<double> saved_timeout_divisor = read_double("timeout_penalty_divisor");
  if (!saved_timeout_divisor.ok()) return saved_timeout_divisor.status();
  Result<double> saved_lost_divisor = read_double("lost_penalty_divisor");
  if (!saved_lost_divisor.ok()) return saved_lost_divisor.status();
  Result<int64_t> saved_deadline = read_int("pending_deadline_ms");
  if (!saved_deadline.ok()) return saved_deadline.status();
  Result<int64_t> saved_has_es = read_int("early stopping flag");
  if (!saved_has_es.ok()) return saved_has_es.status();
  double saved_es_pct = 0.0;
  int64_t saved_es_patience = 0;
  if (*saved_has_es != 0) {
    Result<double> pct = read_double("early stopping pct");
    if (!pct.ok()) return pct.status();
    saved_es_pct = *pct;
    Result<int64_t> patience = read_int("early stopping patience");
    if (!patience.ok()) return patience.status();
    saved_es_patience = *patience;
  }
  // v3 racing block; a v2 file predates racing, so it can only restore
  // into a non-racing session.
  bool saved_racing = false;
  RacingOptions saved_racing_opts;
  if (file_version >= 3) {
    LT_RETURN_NOT_OK(expect("racing"));
    Result<int64_t> racing_flag = read_int("racing flag");
    if (!racing_flag.ok()) return racing_flag.status();
    saved_racing = *racing_flag != 0;
    if (saved_racing) {
      Result<int64_t> cohort = read_int("racing cohort");
      if (!cohort.ok()) return cohort.status();
      saved_racing_opts.cohort = static_cast<int>(*cohort);
      Result<int64_t> rungs = read_int("racing rungs");
      if (!rungs.ok()) return rungs.status();
      saved_racing_opts.rungs = static_cast<int>(*rungs);
      Result<double> min_fid = read_double("racing min_fidelity");
      if (!min_fid.ok()) return min_fid.status();
      saved_racing_opts.min_fidelity = *min_fid;
      Result<double> eta = read_double("racing eta");
      if (!eta.ok()) return eta.status();
      saved_racing_opts.eta = *eta;
      Result<double> ci_z = read_double("racing ci_z");
      if (!ci_z.ok()) return ci_z.status();
      saved_racing_opts.ci_z = *ci_z;
    }
  }
  if (saved_racing != options_.racing.has_value() ||
      (saved_racing &&
       (saved_racing_opts.cohort != options_.racing->cohort ||
        saved_racing_opts.rungs != options_.racing->rungs ||
        EncodeDoubleBits(saved_racing_opts.min_fidelity) !=
            EncodeDoubleBits(options_.racing->min_fidelity) ||
        EncodeDoubleBits(saved_racing_opts.eta) !=
            EncodeDoubleBits(options_.racing->eta) ||
        EncodeDoubleBits(saved_racing_opts.ci_z) !=
            EncodeDoubleBits(options_.racing->ci_z)))) {
    return Status::FailedPrecondition(
        "Restore: racing options do not match the checkpoint (rebuild the "
        "session with the saved racing settings, or without racing for a "
        "pre-racing checkpoint)");
  }
  if (*saved_iters != options_.num_iterations ||
      *saved_batch != options_.batch_size ||
      EncodeDoubleBits(*saved_divisor) !=
          EncodeDoubleBits(options_.crash_penalty_divisor) ||
      EncodeDoubleBits(*saved_timeout_divisor) !=
          EncodeDoubleBits(options_.timeout_penalty_divisor) ||
      EncodeDoubleBits(*saved_lost_divisor) !=
          EncodeDoubleBits(options_.lost_penalty_divisor) ||
      *saved_deadline != options_.pending_deadline_ms ||
      (*saved_has_es != 0) != options_.early_stopping.has_value() ||
      (options_.early_stopping.has_value() &&
       (EncodeDoubleBits(saved_es_pct) !=
            EncodeDoubleBits(options_.early_stopping->min_improvement_pct()) ||
        saved_es_patience != options_.early_stopping->patience()))) {
    return Status::FailedPrecondition(
        "Restore: SessionOptions do not match the checkpoint (rebuild the "
        "session with the saved iterations/batch/penalty/early-stopping "
        "settings)");
  }

  LT_RETURN_NOT_OK(expect("state"));
  Result<int64_t> saved_run = read_int("iterations_run");
  if (!saved_run.ok()) return saved_run.status();
  Result<double> saved_seconds = read_double("optimizer_seconds");
  if (!saved_seconds.ok()) return saved_seconds.status();

  LT_RETURN_NOT_OK(expect("baseline"));
  Result<int64_t> baseline_done = read_int("baseline flag");
  if (!baseline_done.ok()) return baseline_done.status();
  double saved_default = 0.0;
  std::vector<double> saved_baseline_metrics;
  if (*baseline_done != 0) {
    Result<double> def = read_double("default_performance");
    if (!def.ok()) return def.status();
    saved_default = *def;
    Result<int64_t> n_metrics = read_int("baseline metrics count");
    if (!n_metrics.ok()) return n_metrics.status();
    for (int64_t i = 0; i < *n_metrics; ++i) {
      Result<double> v = read_double("baseline metric");
      if (!v.ok()) return v.status();
      saved_baseline_metrics.push_back(*v);
    }
  }

  auto read_state =
      [&in, &expect, &read_int](
          const char* tag,
          std::optional<std::string>* state) -> Status {
    LT_RETURN_NOT_OK(expect(tag));
    Result<int64_t> has = read_int("state flag");
    if (!has.ok()) return has.status();
    state->reset();
    if (*has == 0) return Status::OK();
    Result<int64_t> size = read_int("state size");
    if (!size.ok()) return size.status();
    std::string payload;
    if (*size > 0) {
      std::string hex;
      if (!(in >> hex)) {
        return Status::InvalidArgument("Restore: truncated state payload");
      }
      Result<std::string> bytes = DecodeBytes(hex);
      if (!bytes.ok()) return bytes.status();
      payload = std::move(bytes).ValueOrDie();
    }
    if (static_cast<int64_t>(payload.size()) != *size) {
      return Status::InvalidArgument("Restore: state payload size mismatch");
    }
    *state = std::move(payload);
    return Status::OK();
  };

  std::optional<std::string> saved_objective_state;
  LT_RETURN_NOT_OK(read_state("objective", &saved_objective_state));
  LT_RETURN_NOT_OK(expect("clones"));
  Result<int64_t> saved_clone_count = read_int("clone count");
  if (!saved_clone_count.ok()) return saved_clone_count.status();
  std::vector<std::optional<std::string>> saved_clone_states;
  for (int64_t i = 0; i < *saved_clone_count; ++i) {
    std::optional<std::string> clone_state;
    LT_RETURN_NOT_OK(read_state("clone", &clone_state));
    saved_clone_states.push_back(std::move(clone_state));
  }

  LT_RETURN_NOT_OK(expect("rounds"));
  Result<int64_t> n_rounds = read_int("round count");
  if (!n_rounds.ok()) return n_rounds.status();

  struct SavedTold {
    bool expired = false;
    TrialOutcome outcome = TrialOutcome::kOk;
    double value = 0.0;
    double fidelity = 1.0;
    std::vector<double> metrics;
  };
  struct SavedRound {
    char tag = 'S';
    int requested = 1;
    int size = 1;
    std::vector<SavedTold> told;
  };
  std::vector<SavedRound> saved_rounds;
  // Clamped reserve: the count is untrusted checkpoint text; bad
  // values fail through the per-round parse errors below.
  saved_rounds.reserve(static_cast<size_t>(
      std::min<int64_t>(std::max<int64_t>(*n_rounds, 0), 4096)));
  for (int64_t r = 0; r < *n_rounds; ++r) {
    LT_RETURN_NOT_OK(expect("round"));
    std::string tag;
    if (!(in >> tag) || tag.size() != 1 ||
        (tag[0] != 'D' && tag[0] != 'S' && tag[0] != 'B' &&
         tag[0] != 'R')) {
      return Status::InvalidArgument("Restore: bad round kind tag");
    }
    if (tag[0] == 'R' && file_version < 3) {
      return Status::InvalidArgument(
          "Restore: rung round in a pre-v3 checkpoint");
    }
    SavedRound round;
    round.tag = tag[0];
    Result<int64_t> requested = read_int("round requested");
    if (!requested.ok()) return requested.status();
    round.requested = static_cast<int>(*requested);
    Result<int64_t> size = read_int("round size");
    if (!size.ok()) return size.status();
    round.size = static_cast<int>(*size);
    if (round.tag != 'D') {
      for (int i = 0; i < round.size; ++i) {
        // Rung slots carry their measurement inline (they are not KB
        // records) and are never expired.
        const bool is_rung = round.tag == 'R';
        std::string slot_tag;
        if (!(in >> slot_tag) ||
            (is_rung ? slot_tag != "rung"
                     : (slot_tag != "told" && slot_tag != "expired"))) {
          return Status::InvalidArgument(
              std::string("Restore: expected ") +
              (is_rung ? "'rung'" : "'told' or 'expired'") +
              " slot, got '" + slot_tag + "'");
        }
        SavedTold told;
        if (slot_tag == "expired") {
          told.expired = true;
          round.told.push_back(std::move(told));
          continue;
        }
        Result<int64_t> outcome = read_int("told outcome code");
        if (!outcome.ok()) return outcome.status();
        if (*outcome < 0 ||
            *outcome > static_cast<int64_t>(TrialOutcome::kLost)) {
          return Status::InvalidArgument(
              "Restore: unknown told outcome code " +
              std::to_string(*outcome));
        }
        told.outcome = static_cast<TrialOutcome>(*outcome);
        Result<double> value = read_double("told value");
        if (!value.ok()) return value.status();
        told.value = *value;
        if (is_rung) {
          Result<double> fid = read_double("rung fidelity");
          if (!fid.ok()) return fid.status();
          told.fidelity = *fid;
        }
        Result<int64_t> n_metrics = read_int("told metrics count");
        if (!n_metrics.ok()) return n_metrics.status();
        for (int64_t m = 0; m < *n_metrics; ++m) {
          Result<double> v = read_double("told metric");
          if (!v.ok()) return v.status();
          told.metrics.push_back(*v);
        }
        round.told.push_back(std::move(told));
      }
    }
    saved_rounds.push_back(std::move(round));
  }

  LT_RETURN_NOT_OK(expect("history"));
  Result<int64_t> n_history = read_int("history count");
  if (!n_history.ok()) return n_history.status();
  std::string rest;
  std::getline(in, rest);  // consume end of the "history" line
  std::ostringstream history_text;
  std::string line;
  while (std::getline(in, line)) {
    if (line == "end") break;
    history_text << line << '\n';
  }
  Result<std::vector<Observation>> saved_history =
      ParseHistory(history_text.str(), static_cast<int>(*n_history));
  if (!saved_history.ok()) return saved_history.status();

  // --- Replay. The optimizer re-derives its model state and RNG
  // position from the same deterministic call sequence the original
  // session issued; the history block then pins the result.
  if (options_.early_stopping.has_value()) options_.early_stopping->Reset();
  if (*baseline_done == 0) return Status::OK();  // nothing committed yet

  replaying_ = true;
  Status replay_status = Status::OK();
  for (const SavedRound& round : saved_rounds) {
    if (round.tag == 'D') {
      Result<Trial> baseline = Ask();
      if (!baseline.ok()) {
        replay_status = Status::Internal("Restore: baseline replay failed: " +
                                         baseline.status().ToString());
        break;
      }
      TrialResult result;
      result.trial_id = (*baseline).id;
      result.value = saved_default;
      result.metrics = saved_baseline_metrics;
      Status told = Tell(result);
      if (!told.ok()) {
        replay_status = told;
        break;
      }
      continue;
    }
    std::vector<Trial> trials;
    if (round.tag == 'S') {
      Result<Trial> trial = Ask();
      if (!trial.ok()) {
        replay_status = Status::Internal("Restore: replay Ask failed: " +
                                         trial.status().ToString());
        break;
      }
      trials.push_back(std::move(trial).ValueOrDie());
    } else {
      Result<std::vector<Trial>> batch = AskBatch(round.requested);
      if (!batch.ok()) {
        replay_status = Status::Internal("Restore: replay AskBatch failed: " +
                                         batch.status().ToString());
        break;
      }
      trials = std::move(batch).ValueOrDie();
    }
    if (static_cast<int>(trials.size()) != round.size) {
      replay_status = Status::Internal(
          "Restore: replay produced a different round size than the "
          "checkpoint (optimizer mismatch?)");
      break;
    }
    if (round.tag == 'R') {
      // The race machinery regenerates rung trials; their fidelities
      // must land exactly where the checkpoint recorded them.
      for (int i = 0; i < round.size; ++i) {
        if (EncodeDoubleBits(trials[i].fidelity) !=
            EncodeDoubleBits(round.told[i].fidelity)) {
          replay_status = Status::Internal(
              "Restore: replayed rung fidelity diverges from the "
              "checkpoint");
          break;
        }
      }
      if (!replay_status.ok()) break;
    }
    for (int i = 0; i < round.size; ++i) {
      if (round.told[i].expired) {
        Status dropped = Expire(trials[i].id);
        if (!dropped.ok()) {
          replay_status = Status::Internal("Restore: replay Expire failed: " +
                                           dropped.ToString());
          break;
        }
        continue;
      }
      TrialResult result;
      result.trial_id = trials[i].id;
      result.value = round.told[i].value;
      result.outcome = round.told[i].outcome;
      result.metrics = round.told[i].metrics;
      Status told = Tell(result);
      if (!told.ok()) {
        replay_status = told;
        break;
      }
    }
    if (!replay_status.ok()) break;
  }
  replaying_ = false;
  if (!replay_status.ok()) return replay_status;

  if (iterations_run_ != static_cast<int>(*saved_run)) {
    return Status::Internal(
        "Restore: replay reached iteration " +
        std::to_string(iterations_run_) + ", checkpoint recorded " +
        std::to_string(*saved_run));
  }
  if (!HistoryBitsEqual(optimizer_->history(), *saved_history)) {
    return Status::Internal(
        "Restore: replayed optimizer history diverges from the checkpoint — "
        "the session was rebuilt with a different seed, optimizer, or "
        "adapter than the one that saved it");
  }
  // Evaluation-side state: bring the attached objective (and the
  // batch clone pool) back to the saver's noise-stream position. A
  // detached restore ignores these — the external system owns its own
  // state.
  if (objective_ != nullptr) {
    if (saved_objective_state.has_value()) {
      Status restored = objective_->RestoreState(*saved_objective_state);
      if (!restored.ok()) {
        return Status::FailedPrecondition(
            "Restore: the attached objective rejected the checkpointed "
            "evaluation state: " +
            restored.ToString());
      }
    }
    if (*saved_clone_count >= 0) {
      clone_pool_.clear();
      clone_pool_built_ = true;
      for (size_t i = 0; i < saved_clone_states.size(); ++i) {
        std::unique_ptr<ObjectiveFunction> clone = objective_->Clone();
        if (clone == nullptr) {
          return Status::FailedPrecondition(
              "Restore: checkpoint recorded a clone pool but the attached "
              "objective does not support Clone()");
        }
        if (saved_clone_states[i].has_value()) {
          Status restored = clone->RestoreState(*saved_clone_states[i]);
          if (!restored.ok()) {
            return Status::FailedPrecondition(
                "Restore: clone rejected checkpointed state: " +
                restored.ToString());
          }
        }
        clone_pool_.push_back(std::move(clone));
      }
    }
  }

  // Replay recomputed suggestion/observation timing; report the
  // original session's accounting instead.
  optimizer_seconds_ = *saved_seconds;
  return Status::OK();
}

}  // namespace llamatune
