#include "src/core/tuning_session.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "src/common/thread_pool.h"

namespace llamatune {

namespace {

double NowSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

}  // namespace

TuningSession::TuningSession(ObjectiveFunction* objective,
                             SpaceAdapter* adapter, Optimizer* optimizer,
                             SessionOptions options)
    : objective_(objective),
      adapter_(adapter),
      optimizer_(optimizer),
      options_(std::move(options)) {}

double TuningSession::Penalized(bool /*maximize*/) const {
  // Internal objectives are always maximize-convention; the paper
  // assigns a quarter of the worst seen so far.
  if (worst_objective_ >= 0.0) {
    return worst_objective_ / options_.crash_penalty_divisor;
  }
  return worst_objective_ * options_.crash_penalty_divisor;
}

bool TuningSession::StepBaseline() {
  // Iteration 0: evaluate the default configuration. Establishes the
  // crash-penalty floor and feeds the RL state, but is not an
  // optimizer observation (synthetic spaces have no preimage).
  const bool maximize = objective_->maximize();
  Configuration def = objective_->config_space().DefaultConfiguration();
  EvalResult result = objective_->Evaluate(def);
  double objective_value = maximize ? result.value : -result.value;
  default_performance_ = result.value;
  worst_objective_ = objective_value;
  optimizer_->ObserveMetrics(result.metrics);
  baseline_done_ = true;
  return true;
}

void TuningSession::ScoreResult(const EvalResult& result,
                                double* objective_value, double* measured) {
  const bool maximize = objective_->maximize();
  if (result.crashed) {
    *objective_value = Penalized(maximize);
    *measured = maximize ? *objective_value : -*objective_value;
  } else {
    *objective_value = maximize ? result.value : -result.value;
    *measured = result.value;
    worst_objective_ = std::min(worst_objective_, *objective_value);
  }
}

void TuningSession::AppendRecord(const std::vector<double>& point,
                                 const Configuration& config,
                                 const EvalResult& result,
                                 double objective_value, double measured) {
  IterationRecord record;
  record.iteration = ++iterations_run_;
  record.point = point;
  record.config = config;
  record.measured = measured;
  record.objective = objective_value;
  record.crashed = result.crashed;
  record.metrics = result.metrics;
  kb_.Add(std::move(record));

  if (options_.early_stopping.has_value()) {
    double best = kb_.BestSoFarObjective().back();
    if (options_.early_stopping->Update(best)) {
      stopped_ = true;
    }
  }
  if (iterations_run_ >= options_.num_iterations) stopped_ = true;
}

bool TuningSession::StepBatch() {
  int n = std::min(options_.batch_size,
                   options_.num_iterations - iterations_run_);

  double t0 = NowSeconds();
  std::vector<std::vector<double>> points = optimizer_->SuggestBatch(n);
  optimizer_seconds_ += NowSeconds() - t0;
  // An override may return fewer points than asked; never accept more
  // (each batch slot maps to one clone, and extra points would both
  // overshoot the iteration budget and share clones across threads).
  if (static_cast<int>(points.size()) > n) points.resize(n);
  n = static_cast<int>(points.size());
  if (n == 0) {
    stopped_ = true;
    return false;
  }

  std::vector<Configuration> configs;
  configs.reserve(n);
  for (const auto& point : points) configs.push_back(adapter_->Project(point));

  // One clone per batch slot, built once and reused: each slot keeps
  // its own evaluation counter, so a session is deterministic for a
  // fixed (seed, batch size) pair.
  if (!clone_pool_built_) {
    clone_pool_built_ = true;
    for (int i = 0; i < options_.batch_size; ++i) {
      std::unique_ptr<ObjectiveFunction> clone = objective_->Clone();
      if (clone == nullptr) {
        clone_pool_.clear();
        break;
      }
      clone_pool_.push_back(std::move(clone));
    }
  }

  std::vector<EvalResult> results(n);
  if (clone_pool_.empty()) {
    // Objective cannot be cloned: evaluate the batch sequentially.
    for (int i = 0; i < n; ++i) results[i] = objective_->Evaluate(configs[i]);
  } else {
    // Each batch slot evaluates on its own clone over the shared pool
    // (the caller participates, so nested parallelism — e.g. inside a
    // seed-sharded experiment — cannot deadlock). Slot i always maps
    // to clone i, so results are independent of scheduling.
    ThreadPool::Global().ParallelFor(
        n,
        [this, &configs, &results](int i) {
          ObjectiveFunction* instance =
              clone_pool_[i % clone_pool_.size()].get();
          results[i] = instance->Evaluate(configs[i]);
        },
        options_.num_threads);
  }

  // Score in suggestion order so crash penalties, best-so-far curves
  // and early stopping are independent of evaluation interleaving.
  std::vector<double> values(n);
  std::vector<double> measured(n);
  for (int i = 0; i < n; ++i) {
    ScoreResult(results[i], &values[i], &measured[i]);
  }
  // Only genuine optimizer work counts toward optimizer_seconds_
  // (Table 10 comparability with the sequential path).
  t0 = NowSeconds();
  for (int i = 0; i < n; ++i) optimizer_->ObserveMetrics(results[i].metrics);
  optimizer_->ObserveBatch(points, values);
  optimizer_seconds_ += NowSeconds() - t0;
  for (int i = 0; i < n; ++i) {
    AppendRecord(points[i], configs[i], results[i], values[i], measured[i]);
  }
  return true;
}

bool TuningSession::Step() {
  if (stopped_) return false;
  if (!baseline_done_) return StepBaseline();

  if (iterations_run_ >= options_.num_iterations) {
    stopped_ = true;
    return false;
  }

  if (options_.batch_size > 1) return StepBatch();

  double t0 = NowSeconds();
  std::vector<double> point = optimizer_->Suggest();
  optimizer_seconds_ += NowSeconds() - t0;

  Configuration config = adapter_->Project(point);
  EvalResult result = objective_->Evaluate(config);

  double objective_value = 0.0;
  double measured = 0.0;
  ScoreResult(result, &objective_value, &measured);
  t0 = NowSeconds();
  optimizer_->ObserveMetrics(result.metrics);
  optimizer_->Observe(point, objective_value);
  optimizer_seconds_ += NowSeconds() - t0;
  AppendRecord(point, config, result, objective_value, measured);
  return true;
}

SessionResult TuningSession::Run() {
  if (options_.early_stopping.has_value()) options_.early_stopping->Reset();
  while (Step()) {
  }
  SessionResult result;
  result.kb = kb_;
  result.default_performance = default_performance_;
  result.iterations_run = iterations_run_;
  result.optimizer_seconds = optimizer_seconds_;
  int best = kb_.BestIndex();
  if (best >= 0) {
    result.best_performance = kb_.record(best).measured;
    result.best_config = kb_.record(best).config;
  }
  return result;
}

}  // namespace llamatune
