#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/adapter_stage.h"
#include "src/core/llamatune_adapter.h"
#include "src/lowdim/special_value_bias.h"
#include "src/projection/projection.h"

namespace llamatune {

/// \brief Basis stage exposing the knob-native baseline space: one
/// dimension per knob — categorical dims for categorical knobs, unit
/// dims (with an exact grid when the integer range is small) for
/// numerics. Apply() converts native coordinates to unit coordinates
/// (category index -> bin midpoint).
///
/// This is the vanilla-optimizer view that IdentityAdapter hard-wires.
class KnobNativeStage : public AdapterStage {
 public:
  KnobNativeStage() = default;

  std::string name() const override { return "identity"; }
  bool is_basis() const override { return true; }
  Result<SearchSpace> Bind(const StageContext& ctx,
                           const SearchSpace& downstream) override;
  std::vector<double> Apply(const std::vector<double>& point) const override;

  /// The knob-native search space over `config_space` (shared with the
  /// legacy IdentityAdapter so the two cannot drift).
  static SearchSpace NativeSpace(const ConfigSpace& config_space);

 private:
  const ConfigSpace* config_space_ = nullptr;
};

/// \brief Basis stage wrapping a random linear projection (HeSBO or
/// REMBO): exposes the synthetic low-dimensional space and maps its
/// points to unit knob coordinates (paper §3).
class ProjectionStage : public AdapterStage {
 public:
  ProjectionStage(ProjectionKind kind, int target_dim);

  std::string name() const override;
  bool is_basis() const override { return true; }
  Result<SearchSpace> Bind(const StageContext& ctx,
                           const SearchSpace& downstream) override;
  std::vector<double> Apply(const std::vector<double>& point) const override;

  const Projection& projection() const { return *projection_; }
  ProjectionKind kind() const { return kind_; }
  int target_dim() const { return target_dim_; }

 private:
  ProjectionKind kind_;
  int target_dim_;
  std::unique_ptr<Projection> projection_;
};

/// \brief Decode-override stage applying special-value biasing to
/// hybrid numeric knobs (paper §4.1). Space and points pass through
/// untouched; only the terminal unit->value mapping changes.
class SpecialValueBiasStage : public AdapterStage {
 public:
  explicit SpecialValueBiasStage(double bias);

  std::string name() const override;
  Result<SearchSpace> Bind(const StageContext& ctx,
                           const SearchSpace& downstream) override;
  bool DecodesKnob(const KnobSpec& spec) const override;
  double DecodeKnob(const KnobSpec& spec, double unit) const override;

  double bias() const { return svb_.bias(); }

 private:
  SpecialValueBias svb_;
};

/// \brief Space-shaping stage limiting every continuous downstream
/// dimension to at most K unique values (paper §4.2). Points pass
/// through: the pipeline snaps incoming points onto the exposed grid,
/// so the optimizer "is aware of the larger sampling intervals".
class BucketizerStage : public AdapterStage {
 public:
  explicit BucketizerStage(int64_t max_unique_values);

  std::string name() const override;
  Result<SearchSpace> Bind(const StageContext& ctx,
                           const SearchSpace& downstream) override;

  int64_t max_unique_values() const { return max_unique_values_; }

 private:
  int64_t max_unique_values_;
};

}  // namespace llamatune
