#pragma once

#include <string>
#include <vector>

#include "src/knobs/config_space.h"
#include "src/knobs/configuration.h"
#include "src/optimizer/search_space.h"

namespace llamatune {

/// \brief Bridges the optimizer-facing search space and physical DBMS
/// configurations.
///
/// The optimizer tunes `search_space()` (which may be the identity
/// unit-scaled knob space, a bucketized version of it, or a synthetic
/// low-dimensional space); `Project()` turns an optimizer point into a
/// concrete DBMS configuration. LlamaTune's whole contribution lives
/// in adapters — optimizers stay untouched.
class SpaceAdapter {
 public:
  virtual ~SpaceAdapter() = default;

  virtual const SearchSpace& search_space() const = 0;
  virtual const ConfigSpace& config_space() const = 0;

  /// Maps an optimizer point to a physical configuration.
  virtual Configuration Project(const std::vector<double>& point) const = 0;

  virtual std::string name() const = 0;
};

}  // namespace llamatune
